// Timer-core suite: net::TimerWheel boundary cases (level cascades,
// equal-tick FIFO, generation-stale ids, past-due reschedules, overflow
// parking), the bounded-storage churn invariant (meaningful under ASan via
// tools/sanitize_check.sh), fire-order parity against the retired
// LegacyTimerHeap on a randomized op sequence, and the InlineFunction
// small-buffer contract the wheel's no-allocation claim rests on.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/inline_function.hpp"
#include "common/runtime.hpp"
#include "common/time.hpp"
#include "net/legacy_timer_heap.hpp"
#include "net/timer_wheel.hpp"

namespace twfd::net {
namespace {

// Drains every timer due at or before `t`, appending fire order to `out`
// via the callbacks themselves (which push their tag).
void drain_due(TimerWheel& wheel, Tick t) {
  wheel.advance_to(t);
  InlineFunction fn;
  while (wheel.pop_due(fn)) {
    fn();
    fn.reset();
  }
}

class TimerWheelTest : public ::testing::Test {
 protected:
  TimerStats stats_;
  TimerWheel wheel_{0, &stats_};
};

// --- basic lifecycle -------------------------------------------------------

TEST_F(TimerWheelTest, FiresAtExactDeadline) {
  Tick fired_at = -1;
  wheel_.schedule(1000, [&] { fired_at = wheel_.now(); });
  EXPECT_EQ(wheel_.next_deadline(), 1000);
  drain_due(wheel_, 999);
  EXPECT_EQ(fired_at, -1);
  drain_due(wheel_, 1000);
  EXPECT_EQ(fired_at, 1000);
  EXPECT_EQ(wheel_.next_deadline(), kTickInfinity);
  EXPECT_EQ(stats_.fired, 1u);
  EXPECT_EQ(stats_.live, 0u);
}

TEST_F(TimerWheelTest, ScheduleAtOrBeforeNowPopsImmediately) {
  wheel_.advance_to(500);
  int fired = 0;
  wheel_.schedule(500, [&] { ++fired; });  // == now
  wheel_.schedule(100, [&] { ++fired; });  // < now
  EXPECT_EQ(wheel_.next_deadline(), 100);
  InlineFunction fn;
  ASSERT_TRUE(wheel_.pop_due(fn));
  fn();
  ASSERT_TRUE(wheel_.pop_due(fn));
  fn();
  EXPECT_FALSE(wheel_.pop_due(fn));
  EXPECT_EQ(fired, 2);
}

TEST_F(TimerWheelTest, CallbackMayRearmItself) {
  int fires = 0;
  // Self-re-arming chain: each firing schedules the next, three deep.
  std::function<void()> arm = [&] {
    ++fires;
    if (fires < 3) {
      wheel_.schedule(wheel_.now() + 10, [&] { arm(); });
    }
  };
  wheel_.schedule(10, [&] { arm(); });
  drain_due(wheel_, 10);
  EXPECT_EQ(fires, 1);
  drain_due(wheel_, 20);
  EXPECT_EQ(fires, 2);
  drain_due(wheel_, 1000);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(wheel_.size(), 0u);
}

// --- reschedule semantics --------------------------------------------------

TEST_F(TimerWheelTest, RescheduleToPastDueFiresOnNextDrain) {
  // The regression the satellite names: pulling a deadline into the past
  // must make the timer due NOW, not strand it in a slot the clock
  // already passed.
  wheel_.advance_to(ticks_from_ms(5));
  Tick fired_at = -1;
  const TimerId id =
      wheel_.schedule(ticks_from_sec(10), [&] { fired_at = wheel_.now(); });
  ASSERT_TRUE(wheel_.reschedule(id, ticks_from_ms(1)));  // already past
  EXPECT_EQ(wheel_.next_deadline(), ticks_from_ms(1));
  InlineFunction fn;
  ASSERT_TRUE(wheel_.pop_due(fn));  // no advance needed: due immediately
  fn();
  EXPECT_EQ(fired_at, ticks_from_ms(5));
}

TEST_F(TimerWheelTest, LazyPushOutFiresAtNewDeadlineOnly) {
  Tick fired_at = -1;
  const TimerId id =
      wheel_.schedule(1000, [&] { fired_at = wheel_.now(); });
  ASSERT_TRUE(wheel_.reschedule(id, 5000));
  EXPECT_EQ(wheel_.next_deadline(), 5000);
  drain_due(wheel_, 4999);
  EXPECT_EQ(fired_at, -1);
  drain_due(wheel_, 5000);
  EXPECT_EQ(fired_at, 5000);
  // Push-out stayed lazy: the placement key still covered the new
  // deadline, so nothing was superseded.
  EXPECT_EQ(stats_.rescheduled, 1u);
  EXPECT_EQ(stats_.superseded, 0u);
}

TEST_F(TimerWheelTest, EagerEarlierRescheduleCountsSuperseded) {
  Tick fired_at = -1;
  const TimerId id = wheel_.schedule(ticks_from_sec(10),
                                     [&] { fired_at = wheel_.now(); });
  // Below the placement key: must detach and re-place.
  ASSERT_TRUE(wheel_.reschedule(id, ticks_from_ms(3)));
  EXPECT_EQ(stats_.superseded, 1u);
  EXPECT_EQ(wheel_.next_deadline(), ticks_from_ms(3));
  drain_due(wheel_, ticks_from_ms(3));
  EXPECT_EQ(fired_at, ticks_from_ms(3));
}

TEST_F(TimerWheelTest, RepeatedPushOutNeverFiresEarly) {
  // The per-heartbeat pattern: one timer, re-armed many times; only the
  // final deadline fires.
  int fires = 0;
  const TimerId id = wheel_.schedule(ticks_from_ms(1), [&] { ++fires; });
  for (int hb = 2; hb <= 100; ++hb) {
    ASSERT_TRUE(wheel_.reschedule(id, ticks_from_ms(hb)));
    drain_due(wheel_, ticks_from_ms(hb) - 1);
    EXPECT_EQ(fires, 0) << "fired early on heartbeat " << hb;
  }
  drain_due(wheel_, ticks_from_ms(100));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(stats_.rescheduled, 99u);
}

// --- cancel + generation-stale ids -----------------------------------------

TEST_F(TimerWheelTest, CancelPreventsFire) {
  int fired = 0;
  const TimerId id = wheel_.schedule(100, [&] { ++fired; });
  EXPECT_TRUE(wheel_.cancel(id));
  drain_due(wheel_, 1000);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(stats_.cancelled, 1u);
  EXPECT_EQ(stats_.live, 0u);
}

TEST_F(TimerWheelTest, StaleIdsReturnFalse) {
  const TimerId id = wheel_.schedule(100, [] {});
  EXPECT_TRUE(wheel_.cancel(id));
  EXPECT_FALSE(wheel_.cancel(id));           // double cancel
  EXPECT_FALSE(wheel_.reschedule(id, 200));  // reschedule after cancel

  const TimerId fired_id = wheel_.schedule(100, [] {});
  drain_due(wheel_, 100);
  EXPECT_FALSE(wheel_.cancel(fired_id));  // cancel after fire
  EXPECT_FALSE(wheel_.reschedule(fired_id, 200));

  EXPECT_FALSE(wheel_.cancel(kInvalidTimer));
  EXPECT_FALSE(wheel_.reschedule(kInvalidTimer, 200));
}

TEST_F(TimerWheelTest, RecycledSlotDoesNotAliasOldId) {
  // Cancel a timer, then schedule another: the slab recycles the slot,
  // but the generation stamp must keep the dead id from touching the new
  // tenant.
  int old_fired = 0;
  int new_fired = 0;
  const TimerId old_id = wheel_.schedule(100, [&] { ++old_fired; });
  ASSERT_TRUE(wheel_.cancel(old_id));
  const TimerId new_id = wheel_.schedule(100, [&] { ++new_fired; });
  // Same storage slot, different generation (schedule after cancel reuses
  // the free list — storage stayed at one slot).
  EXPECT_EQ(wheel_.storage_slots(), 1u);
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(wheel_.cancel(old_id));
  EXPECT_FALSE(wheel_.reschedule(old_id, 500));
  drain_due(wheel_, 100);
  EXPECT_EQ(old_fired, 0);
  EXPECT_EQ(new_fired, 1);
}

// --- cascades across every level boundary ----------------------------------

TEST_F(TimerWheelTest, CascadeAcrossEveryLevelBoundary) {
  // One deadline per level: 2^10+3 lives at level 1, 2^20+3 at level 2,
  // ... 2^50+3 at level 5. Each must cascade down through every
  // intermediate level and still fire at its exact tick.
  struct Probe {
    Tick deadline;
    Tick fired_at = -1;
  };
  std::vector<std::unique_ptr<Probe>> probes;
  for (int level = 1; level < TimerWheel::kLevels; ++level) {
    const Tick d = (Tick{1} << (TimerWheel::kBitsPerLevel * level)) + 3;
    probes.push_back(std::make_unique<Probe>(Probe{d}));
    Probe* p = probes.back().get();
    wheel_.schedule(d, [this, p] { p->fired_at = wheel_.now(); });
  }
  for (const auto& p : probes) {
    drain_due(wheel_, p->deadline - 1);
    EXPECT_EQ(p->fired_at, -1) << "deadline " << p->deadline << " fired early";
    drain_due(wheel_, p->deadline);
    EXPECT_EQ(p->fired_at, p->deadline);
  }
  // Every probe above level 0 redistributed at least once (absolute
  // indexing re-hashes a record straight to the level of its remaining
  // offset, so +3 past a slot base lands on level 0 in one hop).
  EXPECT_GE(stats_.cascades, probes.size());
  EXPECT_EQ(stats_.fired, probes.size());
}

TEST_F(TimerWheelTest, CascadePreservesExactDeadlineUnderCoarseAdvance) {
  // Advance in one giant step PAST a high-level deadline: the cascade
  // must still deliver it (on the due list) rather than lose it.
  Tick fired_at = -1;
  const Tick d = (Tick{1} << 45) + 12345;
  wheel_.schedule(d, [&] { fired_at = wheel_.now(); });
  drain_due(wheel_, d + ticks_from_sec(1));
  EXPECT_EQ(fired_at, d + ticks_from_sec(1));  // now() when drained
  EXPECT_EQ(stats_.fired, 1u);
}

// --- equal-tick FIFO -------------------------------------------------------

TEST_F(TimerWheelTest, EqualTickFifoFireOrder) {
  std::vector<int> order;
  const Tick d = ticks_from_ms(7);
  for (int i = 0; i < 16; ++i) {
    wheel_.schedule(d, [&order, i] { order.push_back(i); });
  }
  drain_due(wheel_, d);
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_F(TimerWheelTest, EqualTickFifoSurvivesCascade) {
  // Same deadline, but far enough out that the records sit in a high
  // level and cascade down before firing: schedule order must still win.
  std::vector<int> order;
  const Tick d = (Tick{1} << 32) + 99;  // level 3 at schedule time
  for (int i = 0; i < 8; ++i) {
    wheel_.schedule(d, [&order, i] { order.push_back(i); });
  }
  // Walk the clock up in uneven steps so the group cascades level by
  // level instead of in one advance.
  drain_due(wheel_, Tick{1} << 31);
  drain_due(wheel_, (Tick{1} << 32) - 5);
  EXPECT_TRUE(order.empty());
  drain_due(wheel_, d);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_F(TimerWheelTest, EqualTickFifoAcrossMixedArrival) {
  // Ties between an original placement and a reschedule-onto-the-same-tick
  // fire in the order the *deadline* was established.
  std::vector<std::string> order;
  const Tick d = ticks_from_ms(3);
  wheel_.schedule(d, [&] { order.push_back("first"); });
  const TimerId id = wheel_.schedule(ticks_from_ms(1),
                                     [&] { order.push_back("second"); });
  ASSERT_TRUE(wheel_.reschedule(id, d));  // joins the tie after "first"
  drain_due(wheel_, d);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "second");
}

// --- next_deadline exactness -----------------------------------------------

TEST_F(TimerWheelTest, NextDeadlineSeesThroughLazyPushOut) {
  // A lazily postponed record must not make next_deadline() report the
  // stale placement key.
  const TimerId a = wheel_.schedule(1000, [] {});
  wheel_.schedule(8000, [] {});
  ASSERT_TRUE(wheel_.reschedule(a, 9000));  // lazy: slot still keyed at 1000
  EXPECT_EQ(wheel_.next_deadline(), 8000);
  drain_due(wheel_, 8000);
  EXPECT_EQ(wheel_.next_deadline(), 9000);
}

TEST_F(TimerWheelTest, NextDeadlineTracksCancellation) {
  const TimerId a = wheel_.schedule(100, [] {});
  wheel_.schedule(200, [] {});
  EXPECT_EQ(wheel_.next_deadline(), 100);
  ASSERT_TRUE(wheel_.cancel(a));
  EXPECT_EQ(wheel_.next_deadline(), 200);
}

// --- overflow (beyond the 2^60 horizon) ------------------------------------

TEST_F(TimerWheelTest, OverflowDeadlineParksAndCancels) {
  int fired = 0;
  const TimerId far = wheel_.schedule(kTickInfinity - 1, [&] { ++fired; });
  EXPECT_EQ(wheel_.next_deadline(), kTickInfinity - 1);
  wheel_.schedule(100, [&] { ++fired; });
  EXPECT_EQ(wheel_.next_deadline(), 100);
  drain_due(wheel_, ticks_from_sec(1));
  EXPECT_EQ(fired, 1);  // only the near timer
  EXPECT_EQ(wheel_.next_deadline(), kTickInfinity - 1);
  EXPECT_TRUE(wheel_.cancel(far));
  EXPECT_EQ(wheel_.next_deadline(), kTickInfinity);
  EXPECT_EQ(wheel_.size(), 0u);
}

TEST_F(TimerWheelTest, OverflowRescheduleIntoHorizonFires) {
  Tick fired_at = -1;
  const TimerId id =
      wheel_.schedule(kTickInfinity - 1, [&] { fired_at = wheel_.now(); });
  ASSERT_TRUE(wheel_.reschedule(id, ticks_from_ms(2)));
  drain_due(wheel_, ticks_from_ms(2));
  EXPECT_EQ(fired_at, ticks_from_ms(2));
}

// --- bounded storage under churn -------------------------------------------

TEST_F(TimerWheelTest, ChurnKeepsStorageFlat) {
  // 1M-op churn over a bounded live set: the slab's free list must
  // recycle slots so storage never exceeds the peak live count. This is
  // the ASan-lane stress (tools/sanitize_check.sh) — a leaked record or
  // a dangling intrusive link surfaces here.
  constexpr std::size_t kLive = 512;
  constexpr std::size_t kOps = 1'000'000;
  std::uint64_t fired = 0;
  std::uint64_t rng = 0x9E3779B97F4A7C15ULL;
  std::vector<TimerId> ids(kLive, kInvalidTimer);
  Tick now = 0;
  for (std::size_t i = 0; i < kLive; ++i) {
    ids[i] = wheel_.schedule(1 + static_cast<Tick>(i), [&] { ++fired; });
  }
  const std::size_t high_water = wheel_.storage_slots();
  EXPECT_EQ(high_water, kLive);
  for (std::size_t op = 0; op < kOps; ++op) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::size_t idx = (rng >> 33) % kLive;
    const Tick when = now + 1 + static_cast<Tick>((rng >> 13) % 1'000'000);
    switch ((rng >> 60) & 3) {
      case 0:  // cancel + fresh schedule
        wheel_.cancel(ids[idx]);
        ids[idx] = wheel_.schedule(when, [&] { ++fired; });
        break;
      case 1:  // reschedule (re-arm if already dead)
        if (!wheel_.reschedule(ids[idx], when)) {
          ids[idx] = wheel_.schedule(when, [&] { ++fired; });
        }
        break;
      default:  // let time move and drain
        now += static_cast<Tick>((rng >> 40) % 10'000);
        drain_due(wheel_, now);
        break;
    }
  }
  EXPECT_EQ(wheel_.storage_slots(), high_water)
      << "slab grew under churn — free-list recycling broke";
  EXPECT_LE(wheel_.size(), kLive);
  EXPECT_EQ(stats_.live, wheel_.size());
  EXPECT_GT(fired, 0u);
}

// --- wheel vs legacy heap parity -------------------------------------------

TEST_F(TimerWheelTest, FireOrderMatchesLegacyHeapOnRandomOps) {
  // Drive both cores through an identical randomized schedule / cancel /
  // reschedule sequence, then drain both: the set AND order of fired
  // timers must match (deadline order, FIFO ties by schedule order —
  // the contract call sites like Monitor re-arm depend on).
  TimerStats heap_stats;
  LegacyTimerHeap heap{&heap_stats};
  std::vector<int> wheel_order;
  std::vector<int> heap_order;
  std::vector<TimerId> wheel_ids;
  std::vector<TimerId> heap_ids;

  std::uint64_t rng = 0xDEADBEEFCAFEF00DULL;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 17;
  };
  constexpr int kTimers = 400;
  for (int i = 0; i < kTimers; ++i) {
    // Coarse deadlines force plenty of exact ties.
    const Tick d = 1 + static_cast<Tick>(next() % 64) * ticks_from_ms(1);
    wheel_ids.push_back(
        wheel_.schedule(d, [&wheel_order, i] { wheel_order.push_back(i); }));
    heap_ids.push_back(
        heap.schedule(d, [&heap_order, i] { heap_order.push_back(i); }));
  }
  for (int op = 0; op < 300; ++op) {
    const auto idx = static_cast<std::size_t>(next() % kTimers);
    const Tick d = 1 + static_cast<Tick>(next() % 64) * ticks_from_ms(1);
    if ((next() & 1) != 0) {
      wheel_.cancel(wheel_ids[idx]);
      heap.cancel(heap_ids[idx]);
    } else {
      const bool wr = wheel_.reschedule(wheel_ids[idx], d);
      const bool hr = heap.reschedule(heap_ids[idx], d);
      EXPECT_EQ(wr, hr);
    }
  }

  const Tick horizon = ticks_from_ms(64) + 1;
  drain_due(wheel_, horizon);
  std::function<void()> fn;
  while (heap.pop_due(horizon, fn)) fn();

  EXPECT_EQ(wheel_order, heap_order);
  EXPECT_EQ(wheel_.size(), heap.size());
  EXPECT_EQ(stats_.fired, heap_stats.fired);
}

// --- gauges ----------------------------------------------------------------

TEST_F(TimerWheelTest, OccupancyGaugeTracksSlots) {
  EXPECT_EQ(stats_.wheel_slots_occupied, 0u);
  const TimerId a = wheel_.schedule(100, [] {});
  wheel_.schedule(200, [] {});    // distinct level-0... actually same level
  wheel_.schedule(100, [] {});    // shares a's slot
  EXPECT_GE(stats_.wheel_slots_occupied, 1u);
  const std::uint64_t occupied = stats_.wheel_slots_occupied;
  wheel_.cancel(a);               // slot still holds the third timer
  EXPECT_EQ(stats_.wheel_slots_occupied, occupied);
  drain_due(wheel_, 1000);
  EXPECT_EQ(stats_.wheel_slots_occupied, 0u);
}

TEST_F(TimerWheelTest, MaxScanGaugeMovesOnSparseWheel) {
  // A lone far-out timer forces next_deadline() to walk bitmap words.
  wheel_.schedule((Tick{1} << 40) + 7, [] {});
  wheel_.next_deadline();
  EXPECT_GT(stats_.wheel_max_scan, 0u);
}

// --- InlineFunction --------------------------------------------------------

TEST(InlineFunctionTest, SmallCapturesStoreInline) {
  struct Small {
    std::uint64_t a, b, c;
    void operator()() const {}
  };
  struct Large {
    std::array<std::uint64_t, 9> payload;
    void operator()() const {}
  };
  static_assert(InlineFunction::fits_inline<Small>());
  static_assert(!InlineFunction::fits_inline<Large>());
  // The callbacks the runtimes actually arm — a pointer or two plus ids —
  // must fit, or the wheel's zero-alloc reschedule claim is void.
  int x = 0;
  auto probe = [&x, id = std::uint64_t{42}] { x = static_cast<int>(id); };
  static_assert(InlineFunction::fits_inline<decltype(probe)>());
  InlineFunction f{std::move(probe)};
  f();
  EXPECT_EQ(x, 42);
}

TEST(InlineFunctionTest, BoxedFallbackStillInvokes) {
  std::array<std::uint64_t, 12> big{};
  big[11] = 7;
  std::uint64_t got = 0;
  auto probe = [big, &got] { got = big[11]; };
  static_assert(!InlineFunction::fits_inline<decltype(probe)>());
  InlineFunction f{std::move(probe)};
  f();
  EXPECT_EQ(got, 7u);
}

TEST(InlineFunctionTest, MoveTransfersAndResetReleases) {
  auto counter = std::make_shared<int>(0);
  InlineFunction a{[counter] { ++*counter; }};
  EXPECT_EQ(counter.use_count(), 2);
  InlineFunction b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(counter.use_count(), 2);  // one owner moved, not copied
  b();
  EXPECT_EQ(*counter, 1);
  b.reset();
  EXPECT_FALSE(static_cast<bool>(b));
  EXPECT_EQ(counter.use_count(), 1);  // capture destroyed on reset
}

TEST(InlineFunctionTest, AssignReplacesExistingCapture) {
  auto first = std::make_shared<int>(0);
  auto second = std::make_shared<int>(0);
  InlineFunction f{[first] { ++*first; }};
  f = InlineFunction{[second] { ++*second; }};
  EXPECT_EQ(first.use_count(), 1);  // old capture destroyed by assignment
  f();
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(*first, 0);
}

}  // namespace
}  // namespace twfd::net

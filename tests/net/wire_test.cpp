#include "net/wire.hpp"

#include <gtest/gtest.h>

namespace twfd::net {
namespace {

TEST(Wire, HeartbeatRoundTrip) {
  HeartbeatMsg m;
  m.sender_id = 0xDEADBEEFCAFEF00DULL;
  m.seq = 123456789;
  m.send_time = ticks_from_sec(42) + 17;
  m.interval = ticks_from_ms(100);
  const auto data = encode(m);
  EXPECT_EQ(data.size(), HeartbeatMsg::kWireSize);
  const auto back = decode(data);
  ASSERT_TRUE(back.has_value());
  const auto* hb = std::get_if<HeartbeatMsg>(&*back);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->sender_id, m.sender_id);
  EXPECT_EQ(hb->seq, m.seq);
  EXPECT_EQ(hb->send_time, m.send_time);
  EXPECT_EQ(hb->interval, m.interval);
}

TEST(Wire, IntervalRequestRoundTrip) {
  IntervalRequestMsg m;
  m.requester_id = 7;
  m.requested_interval = ticks_from_ms(20);
  const auto data = encode(m);
  EXPECT_EQ(data.size(), IntervalRequestMsg::kWireSize);
  const auto back = decode(data);
  ASSERT_TRUE(back.has_value());
  const auto* ir = std::get_if<IntervalRequestMsg>(&*back);
  ASSERT_NE(ir, nullptr);
  EXPECT_EQ(ir->requester_id, 7u);
  EXPECT_EQ(ir->requested_interval, ticks_from_ms(20));
}

TEST(Wire, NegativeTimestampsSurvive) {
  HeartbeatMsg m;
  m.seq = 1;
  m.send_time = -ticks_from_sec(5);  // clocks can be behind epoch anchors
  m.interval = 1;
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<HeartbeatMsg>(*back).send_time, -ticks_from_sec(5));
}

TEST(Wire, RejectsBadMagic) {
  auto data = encode(HeartbeatMsg{1, 1, 0, 1});
  data[0] = std::byte{0x00};
  EXPECT_FALSE(decode(data).has_value());
}

TEST(Wire, RejectsBadVersion) {
  auto data = encode(HeartbeatMsg{1, 1, 0, 1});
  data[4] = std::byte{99};
  EXPECT_FALSE(decode(data).has_value());
}

TEST(Wire, RejectsUnknownType) {
  auto data = encode(HeartbeatMsg{1, 1, 0, 1});
  data[5] = std::byte{42};
  EXPECT_FALSE(decode(data).has_value());
}

TEST(Wire, RejectsTruncatedAndOversized) {
  auto data = encode(HeartbeatMsg{1, 1, 0, 1});
  auto trunc = data;
  trunc.pop_back();
  EXPECT_FALSE(decode(trunc).has_value());
  auto big = data;
  big.push_back(std::byte{0});
  EXPECT_FALSE(decode(big).has_value());
  EXPECT_FALSE(decode({}).has_value());
}

TEST(Wire, RejectsNonsenseFieldValues) {
  EXPECT_FALSE(decode(encode(HeartbeatMsg{1, 0, 0, 1})).has_value());   // seq 0
  EXPECT_FALSE(decode(encode(HeartbeatMsg{1, -3, 0, 1})).has_value());  // seq < 0
  EXPECT_FALSE(decode(encode(HeartbeatMsg{1, 1, 0, 0})).has_value());   // interval 0
  EXPECT_FALSE(
      decode(encode(IntervalRequestMsg{1, 0})).has_value());  // interval 0
}

TEST(Wire, LittleEndianLayoutStable) {
  // The wire format is a protocol: lock the byte layout.
  HeartbeatMsg m;
  m.sender_id = 0x0102030405060708ULL;
  m.seq = 1;
  m.send_time = 2;
  m.interval = 3;
  const auto data = encode(m);
  EXPECT_EQ(static_cast<unsigned char>(data[6]), 0x08);   // sender_id LSB first
  EXPECT_EQ(static_cast<unsigned char>(data[13]), 0x01);  // sender_id MSB last
  EXPECT_EQ(static_cast<unsigned char>(data[14]), 0x01);  // seq LSB
}

}  // namespace
}  // namespace twfd::net

#include "net/event_loop.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace twfd::net {
namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(EventLoop, ClockAdvances) {
  EventLoop loop;
  const Tick a = loop.now();
  loop.run_for(ticks_from_ms(20));
  EXPECT_GE(loop.now() - a, ticks_from_ms(15));
}

TEST(EventLoop, TimerFires) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_at(loop.now() + ticks_from_ms(20), [&] { fired = true; });
  loop.run_for(ticks_from_ms(200));
  EXPECT_TRUE(fired);
}

TEST(EventLoop, TimerOrderRespected) {
  EventLoop loop;
  std::vector<int> order;
  const Tick t0 = loop.now();
  loop.schedule_at(t0 + ticks_from_ms(40), [&] { order.push_back(2); });
  loop.schedule_at(t0 + ticks_from_ms(10), [&] { order.push_back(1); });
  loop.run_for(ticks_from_ms(200));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, CancelledTimerSilent) {
  EventLoop loop;
  bool fired = false;
  const TimerId id =
      loop.schedule_at(loop.now() + ticks_from_ms(10), [&] { fired = true; });
  loop.cancel(id);
  loop.run_for(ticks_from_ms(80));
  EXPECT_FALSE(fired);
}

TEST(EventLoop, PastDeadlineFiresImmediately) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_at(loop.now() - ticks_from_ms(5), [&] { fired = true; });
  loop.run_for(ticks_from_ms(30));
  EXPECT_TRUE(fired);
}

TEST(EventLoop, PeerRegistrationIdempotent) {
  EventLoop loop;
  const auto addr = SocketAddress::loopback(12345);
  const PeerId a = loop.add_peer(addr);
  const PeerId b = loop.add_peer(addr);
  EXPECT_EQ(a, b);
  const PeerId c = loop.add_peer(SocketAddress::loopback(12346));
  EXPECT_NE(a, c);
}

TEST(EventLoop, LoopbackTransportDelivers) {
  EventLoop rx;
  EventLoop tx;
  const PeerId rx_peer = tx.add_peer(SocketAddress::loopback(rx.local_port()));

  std::string got;
  Tick arrival = -1;
  rx.set_receive_handler([&](PeerId, std::span<const std::byte> data, Tick at) {
    got.assign(reinterpret_cast<const char*>(data.data()), data.size());
    arrival = at;
    rx.stop();
  });
  tx.send(rx_peer, bytes("over-the-wire"));
  const Tick before = rx.now();
  rx.run_for(ticks_from_sec(2));
  EXPECT_EQ(got, "over-the-wire");
  EXPECT_EQ(tx.datagrams_sent(), 1u);
  EXPECT_EQ(rx.datagrams_received(), 1u);
  // The arrival stamp lands inside the run window regardless of which
  // rung of the timestamp ladder produced it.
  EXPECT_GE(arrival, before - ticks_from_sec(1));
  EXPECT_LE(arrival, rx.now());
}

TEST(EventLoop, ReceiveIdentifiesSender) {
  EventLoop rx;
  EventLoop tx;
  const PeerId rx_peer = tx.add_peer(SocketAddress::loopback(rx.local_port()));
  // Pre-register the sender on the receiver side; the handler must see
  // the same id.
  const PeerId expected = rx.add_peer(SocketAddress::loopback(tx.local_port()));
  PeerId seen = 0;
  rx.set_receive_handler([&](PeerId from, std::span<const std::byte>, Tick) {
    seen = from;
    rx.stop();
  });
  tx.send(rx_peer, bytes("hi"));
  rx.run_for(ticks_from_sec(2));
  EXPECT_EQ(seen, expected);
}

TEST(EventLoop, UnknownPeerSendRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.send(42, bytes("x")), std::logic_error);
}

TEST(EventLoop, RescheduleLaterMovesFiringTime) {
  EventLoop loop;
  const Tick t0 = loop.now();
  Tick fired_at = 0;
  const TimerId id =
      loop.schedule_at(t0 + ticks_from_ms(10), [&] { fired_at = loop.now(); });
  EXPECT_TRUE(loop.reschedule(id, t0 + ticks_from_ms(60)));
  loop.run_for(ticks_from_ms(200));
  EXPECT_GE(fired_at, t0 + ticks_from_ms(60));
  EXPECT_EQ(loop.stats().timers.rescheduled, 1u);
  EXPECT_EQ(loop.stats().timers.fired, 1u);
}

TEST(EventLoop, RescheduleEarlierMovesFiringTime) {
  EventLoop loop;
  const Tick t0 = loop.now();
  Tick fired_at = 0;
  const TimerId id =
      loop.schedule_at(t0 + ticks_from_sec(30), [&] { fired_at = loop.now(); });
  EXPECT_TRUE(loop.reschedule(id, t0 + ticks_from_ms(20)));
  loop.run_for(ticks_from_ms(300));
  EXPECT_GE(fired_at, t0 + ticks_from_ms(20));
  EXPECT_LT(fired_at, t0 + ticks_from_ms(300));
}

TEST(EventLoop, RescheduleAfterFireOrCancelReturnsFalse) {
  EventLoop loop;
  const TimerId fired = loop.schedule_at(loop.now() - 1, [] {});
  loop.run_for(ticks_from_ms(30));
  EXPECT_FALSE(loop.reschedule(fired, loop.now() + ticks_from_ms(10)));

  const TimerId cancelled = loop.schedule_at(loop.now() + ticks_from_sec(5), [] {});
  loop.cancel(cancelled);
  EXPECT_FALSE(loop.reschedule(cancelled, loop.now() + ticks_from_ms(10)));
  EXPECT_FALSE(loop.reschedule(kInvalidTimer, loop.now()));
}

TEST(EventLoop, NextTimerAtSkipsCancelledTop) {
  EventLoop loop;
  const Tick t0 = loop.now();
  const TimerId a = loop.schedule_at(t0 + ticks_from_ms(10), [] {});
  const TimerId b = loop.schedule_at(t0 + ticks_from_ms(50), [] {});
  EXPECT_EQ(loop.next_timer_at(), t0 + ticks_from_ms(10));
  // Cancelling the top must not leave a phantom early wakeup behind.
  loop.cancel(a);
  EXPECT_EQ(loop.next_timer_at(), t0 + ticks_from_ms(50));
  loop.cancel(b);
  EXPECT_EQ(loop.next_timer_at(), kTickInfinity);
}

TEST(EventLoop, NextTimerAtTracksReschedule) {
  EventLoop loop;
  const Tick t0 = loop.now();
  const TimerId id = loop.schedule_at(t0 + ticks_from_ms(10), [] {});
  ASSERT_TRUE(loop.reschedule(id, t0 + ticks_from_ms(80)));
  EXPECT_EQ(loop.next_timer_at(), t0 + ticks_from_ms(80));
  ASSERT_TRUE(loop.reschedule(id, t0 + ticks_from_ms(5)));
  EXPECT_EQ(loop.next_timer_at(), t0 + ticks_from_ms(5));
}

// The Monitor hot path: every heartbeat cancels and re-arms one freshness
// timer per peer. Timer storage must stay O(peak live timers) across 100k
// such cycles — not O(heartbeats observed) — with the record slab's free
// list doing the bounding.
TEST(EventLoop, StressCancelRearmKeepsStorageBounded) {
  constexpr std::size_t kPeers = 64;
  constexpr std::size_t kCycles = 100'000;
  EventLoop loop;
  const Tick far = loop.now() + ticks_from_sec(3600);

  std::vector<TimerId> timers(kPeers);
  for (std::size_t i = 0; i < kPeers; ++i) {
    timers[i] = loop.schedule_at(far + static_cast<Tick>(i), [] {});
  }
  std::size_t max_slots = 0;
  for (std::size_t c = 0; c < kCycles; ++c) {
    const std::size_t i = c % kPeers;
    loop.cancel(timers[i]);
    timers[i] = loop.schedule_at(far + static_cast<Tick>(c), [] {});
    max_slots = std::max(max_slots, loop.timer_storage_slots());
  }
  EXPECT_EQ(loop.live_timer_count(), kPeers);
  // A cancel momentarily drops live to kPeers - 1, so a fresh slot is
  // never needed after warm-up: storage pins at exactly peak live.
  EXPECT_EQ(max_slots, kPeers);
  EXPECT_EQ(loop.timer_storage_slots(), kPeers);
  EXPECT_EQ(loop.stats().timers.scheduled, kPeers + kCycles);
  EXPECT_EQ(loop.stats().timers.cancelled, kCycles);
  EXPECT_EQ(loop.stats().timers.live, kPeers);
  EXPECT_EQ(loop.stats().timers.fired, 0u);
}

// The same workload through reschedule(): pushing a deadline out is a lazy
// rewrite (no re-placement at all), and pulling it in re-places within the
// same storage bound.
TEST(EventLoop, StressRescheduleKeepsStorageBounded) {
  constexpr std::size_t kPeers = 64;
  constexpr std::size_t kCycles = 100'000;
  EventLoop loop;
  const Tick far = loop.now() + ticks_from_sec(3600);

  std::vector<TimerId> timers(kPeers);
  for (std::size_t i = 0; i < kPeers; ++i) {
    timers[i] = loop.schedule_at(far + static_cast<Tick>(i), [] {});
  }
  // Later-reschedules are lazy: no record moves, storage stays at live.
  for (std::size_t c = 0; c < kCycles; ++c) {
    const std::size_t i = c % kPeers;
    ASSERT_TRUE(loop.reschedule(timers[i], far + ticks_from_sec(1) +
                                               static_cast<Tick>(c)));
    ASSERT_EQ(loop.timer_storage_slots(), kPeers);
  }
  EXPECT_EQ(loop.stats().timers.superseded, 0u);
  // Earlier-reschedules below the record's placement key re-place it in
  // place (superseding the old placement); storage is untouched.
  for (std::size_t c = 0; c < kCycles; ++c) {
    const std::size_t i = c % kPeers;
    ASSERT_TRUE(loop.reschedule(timers[i], far - static_cast<Tick>(c + 1)));
  }
  EXPECT_EQ(loop.live_timer_count(), kPeers);
  EXPECT_EQ(loop.timer_storage_slots(), kPeers);
  EXPECT_EQ(loop.stats().timers.rescheduled, 2 * kCycles);
  EXPECT_EQ(loop.stats().timers.superseded, kCycles);
  EXPECT_EQ(loop.stats().timers.fired, 0u);
}

// A sub-millisecond wait must sleep (rounded up to 1 ms), not degenerate
// into a poll(0) busy-spin until the deadline.
TEST(EventLoop, SubMillisecondWaitDoesNotBusySpin) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_at(loop.now() + ticks_from_us(500), [&] { fired = true; });
  loop.run_for(ticks_from_ms(5));
  EXPECT_TRUE(fired);
  const auto& s = loop.stats();
  // A spin would record thousands of wakeups in those 5 ms.
  EXPECT_LT(s.wakeups_io + s.wakeups_timer + s.wakeups_spurious, 100u);
  EXPECT_GE(s.wakeups_timer, 1u);
}

TEST(EventLoop, StatsCountDatagrams) {
  EventLoop rx;
  EventLoop tx;
  const PeerId rx_peer = tx.add_peer(SocketAddress::loopback(rx.local_port()));
  rx.set_receive_handler(
      [&](PeerId, std::span<const std::byte>, Tick) { rx.stop(); });
  tx.send(rx_peer, bytes("ping"));
  rx.run_for(ticks_from_sec(2));
  EXPECT_EQ(tx.stats().datagrams_sent, 1u);
  EXPECT_EQ(rx.stats().datagrams_received, 1u);
  EXPECT_EQ(rx.stats().rx_batches, 1u);
  EXPECT_EQ(rx.stats().rx_batch_min, 1u);
  EXPECT_EQ(rx.stats().rx_batch_max, 1u);
  EXPECT_EQ(rx.stats().rx_kernel_stamps + rx.stats().rx_clock_stamps, 1u);
  EXPECT_EQ(rx.stats().recv_errors, 0u);
}

TEST(EventLoop, SendManyFansOutOnePayload) {
  EventLoop rx1;
  EventLoop rx2;
  EventLoop tx;
  const PeerId p1 = tx.add_peer(SocketAddress::loopback(rx1.local_port()));
  const PeerId p2 = tx.add_peer(SocketAddress::loopback(rx2.local_port()));
  const std::vector<PeerId> targets{p1, p2};

  std::string got1;
  std::string got2;
  rx1.set_receive_handler([&](PeerId, std::span<const std::byte> d, Tick) {
    got1.assign(reinterpret_cast<const char*>(d.data()), d.size());
    rx1.stop();
  });
  rx2.set_receive_handler([&](PeerId, std::span<const std::byte> d, Tick) {
    got2.assign(reinterpret_cast<const char*>(d.data()), d.size());
    rx2.stop();
  });
  tx.send_many(targets, bytes("tick"));
  rx1.run_for(ticks_from_sec(2));
  rx2.run_for(ticks_from_sec(2));
  EXPECT_EQ(got1, "tick");
  EXPECT_EQ(got2, "tick");
  EXPECT_EQ(tx.stats().datagrams_sent, 2u);
}

TEST(EventLoop, StopFromTimer) {
  EventLoop loop;
  loop.schedule_at(loop.now() + ticks_from_ms(5), [&] { loop.stop(); });
  const Tick before = loop.now();
  loop.run_until(loop.now() + ticks_from_sec(30));  // stop() must cut this short
  EXPECT_LT(loop.now() - before, ticks_from_sec(5));
}

}  // namespace
}  // namespace twfd::net

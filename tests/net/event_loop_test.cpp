#include "net/event_loop.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace twfd::net {
namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(EventLoop, ClockAdvances) {
  EventLoop loop;
  const Tick a = loop.now();
  loop.run_for(ticks_from_ms(20));
  EXPECT_GE(loop.now() - a, ticks_from_ms(15));
}

TEST(EventLoop, TimerFires) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_at(loop.now() + ticks_from_ms(20), [&] { fired = true; });
  loop.run_for(ticks_from_ms(200));
  EXPECT_TRUE(fired);
}

TEST(EventLoop, TimerOrderRespected) {
  EventLoop loop;
  std::vector<int> order;
  const Tick t0 = loop.now();
  loop.schedule_at(t0 + ticks_from_ms(40), [&] { order.push_back(2); });
  loop.schedule_at(t0 + ticks_from_ms(10), [&] { order.push_back(1); });
  loop.run_for(ticks_from_ms(200));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, CancelledTimerSilent) {
  EventLoop loop;
  bool fired = false;
  const TimerId id =
      loop.schedule_at(loop.now() + ticks_from_ms(10), [&] { fired = true; });
  loop.cancel(id);
  loop.run_for(ticks_from_ms(80));
  EXPECT_FALSE(fired);
}

TEST(EventLoop, PastDeadlineFiresImmediately) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_at(loop.now() - ticks_from_ms(5), [&] { fired = true; });
  loop.run_for(ticks_from_ms(30));
  EXPECT_TRUE(fired);
}

TEST(EventLoop, PeerRegistrationIdempotent) {
  EventLoop loop;
  const auto addr = SocketAddress::loopback(12345);
  const PeerId a = loop.add_peer(addr);
  const PeerId b = loop.add_peer(addr);
  EXPECT_EQ(a, b);
  const PeerId c = loop.add_peer(SocketAddress::loopback(12346));
  EXPECT_NE(a, c);
}

TEST(EventLoop, LoopbackTransportDelivers) {
  EventLoop rx;
  EventLoop tx;
  const PeerId rx_peer = tx.add_peer(SocketAddress::loopback(rx.local_port()));

  std::string got;
  rx.set_receive_handler([&](PeerId, std::span<const std::byte> data) {
    got.assign(reinterpret_cast<const char*>(data.data()), data.size());
    rx.stop();
  });
  tx.send(rx_peer, bytes("over-the-wire"));
  rx.run_for(ticks_from_sec(2));
  EXPECT_EQ(got, "over-the-wire");
  EXPECT_EQ(tx.datagrams_sent(), 1u);
  EXPECT_EQ(rx.datagrams_received(), 1u);
}

TEST(EventLoop, ReceiveIdentifiesSender) {
  EventLoop rx;
  EventLoop tx;
  const PeerId rx_peer = tx.add_peer(SocketAddress::loopback(rx.local_port()));
  // Pre-register the sender on the receiver side; the handler must see
  // the same id.
  const PeerId expected = rx.add_peer(SocketAddress::loopback(tx.local_port()));
  PeerId seen = 0;
  rx.set_receive_handler([&](PeerId from, std::span<const std::byte>) {
    seen = from;
    rx.stop();
  });
  tx.send(rx_peer, bytes("hi"));
  rx.run_for(ticks_from_sec(2));
  EXPECT_EQ(seen, expected);
}

TEST(EventLoop, UnknownPeerSendRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.send(42, bytes("x")), std::logic_error);
}

TEST(EventLoop, StopFromTimer) {
  EventLoop loop;
  loop.schedule_at(loop.now() + ticks_from_ms(5), [&] { loop.stop(); });
  const Tick before = loop.now();
  loop.run_until(loop.now() + ticks_from_sec(30));  // stop() must cut this short
  EXPECT_LT(loop.now() - before, ticks_from_sec(5));
}

}  // namespace
}  // namespace twfd::net

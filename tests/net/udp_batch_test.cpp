// Batched RX/TX coverage. This file is compiled TWICE: into test_net
// against the default build of UdpSocket (recvmmsg/sendmmsg on Linux),
// and into test_net_fallback with TWFD_NO_RECVMMSG forcing the portable
// per-datagram implementation. Every assertion here must hold under
// both — that equivalence is the test.
#include "net/udp_socket.hpp"

#include <gtest/gtest.h>

#include <poll.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

namespace twfd::net {
namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

void wait_readable(const UdpSocket& s, int ms = 2000) {
  pollfd pfd{s.fd(), POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, ms), 0) << "datagram never arrived";
}

/// Drains `rx` until `expected` datagrams arrived (or tries run out),
/// appending every batch's items into `out` as owned copies.
struct ReceivedDatagram {
  SocketAddress from;
  std::string payload;
  std::int64_t kernel_time_ns = 0;
  bool truncated = false;
};

void drain_until(UdpSocket& rx, std::size_t expected,
                 std::vector<ReceivedDatagram>& out) {
  for (int tries = 0; tries < 200 && out.size() < expected; ++tries) {
    const auto batch = rx.receive_batch();
    if (batch.empty()) {
      pollfd pfd{rx.fd(), POLLIN, 0};
      ::poll(&pfd, 1, 50);
      continue;
    }
    for (const auto& item : batch) {
      ReceivedDatagram d;
      d.from = item.from;
      d.payload.assign(reinterpret_cast<const char*>(item.data.data()),
                       item.data.size());
      d.kernel_time_ns = item.kernel_time_ns;
      d.truncated = item.truncated;
      out.push_back(std::move(d));
    }
  }
}

TEST(UdpBatch, EmptySocketReturnsEmptyBatch) {
  UdpSocket s(0);
  EXPECT_TRUE(s.receive_batch().empty());
  EXPECT_EQ(s.recv_errors(), 0u);
}

// The tentpole blast test: many datagrams from several senders must all
// come through with correct sources and monotone non-decreasing kernel
// timestamps (trivially satisfied as all-zero on the portable path).
TEST(UdpBatch, BlastDeliversAllWithSourcesAndMonotoneStamps) {
  constexpr int kSenders = 3;
  constexpr int kPerSender = 40;
  UdpSocket rx(0);
  const auto dest = SocketAddress::loopback(rx.local_port());

  std::vector<UdpSocket> senders;
  for (int s = 0; s < kSenders; ++s) senders.emplace_back(std::uint16_t{0});
  for (int i = 0; i < kPerSender; ++i) {
    for (int s = 0; s < kSenders; ++s) {
      senders[s].send_to(dest, bytes("s" + std::to_string(s) + "#" +
                                     std::to_string(i)));
    }
  }

  wait_readable(rx);
  std::vector<ReceivedDatagram> got;
  drain_until(rx, kSenders * kPerSender, got);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kSenders * kPerSender));

  // Every datagram's source port identifies its sender, and each
  // sender's payloads arrive intact.
  std::set<std::uint16_t> sender_ports;
  for (const auto& s : senders) sender_ports.insert(s.local_port());
  std::int64_t last_stamp = 0;
  std::size_t seen_per_port[kSenders] = {};
  for (const auto& d : got) {
    EXPECT_TRUE(sender_ports.contains(d.from.port)) << d.from.to_string();
    EXPECT_FALSE(d.truncated);
    ASSERT_GE(d.payload.size(), 3u);
    const int s = d.payload[1] - '0';
    ASSERT_TRUE(s >= 0 && s < kSenders);
    ++seen_per_port[s];
    // Kernel stamps (when present) never run backwards across one
    // socket's delivery stream.
    EXPECT_GE(d.kernel_time_ns, last_stamp);
    last_stamp = d.kernel_time_ns;
  }
  for (int s = 0; s < kSenders; ++s) {
    EXPECT_EQ(seen_per_port[s], static_cast<std::size_t>(kPerSender));
  }
  EXPECT_EQ(rx.recv_errors(), 0u);
}

TEST(UdpBatch, OversizedDatagramIsTruncatedAndFlagged) {
  UdpSocket rx(0);
  UdpSocket tx(0);
  const std::string big(UdpSocket::kRecvSlotBytes + 512, 'x');
  tx.send_to(SocketAddress::loopback(rx.local_port()), bytes(big));
  tx.send_to(SocketAddress::loopback(rx.local_port()), bytes("small"));

  wait_readable(rx);
  std::vector<ReceivedDatagram> got;
  drain_until(rx, 2, got);
  ASSERT_EQ(got.size(), 2u);

  const auto* oversized = &got[0];
  const auto* small = &got[1];
  if (oversized->payload == "small") std::swap(oversized, small);
  EXPECT_TRUE(oversized->truncated);
  EXPECT_EQ(oversized->payload.size(), UdpSocket::kRecvSlotBytes);
  EXPECT_EQ(oversized->payload[0], 'x');
  EXPECT_FALSE(small->truncated);
  EXPECT_EQ(small->payload, "small");
}

TEST(UdpBatch, SendBatchFansOnePayloadToManyDestinations) {
  constexpr std::size_t kReceivers = 5;
  std::vector<UdpSocket> receivers;
  std::vector<SocketAddress> dests;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    receivers.emplace_back(std::uint16_t{0});
    dests.push_back(SocketAddress::loopback(receivers.back().local_port()));
  }
  UdpSocket tx(0);
  EXPECT_EQ(tx.send_batch(dests, bytes("beat")), kReceivers);
  EXPECT_EQ(tx.soft_send_failures(), 0u);

  for (auto& rx : receivers) {
    wait_readable(rx);
    const auto* d = rx.receive();
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(d->data.data()),
                          d->data.size()),
              "beat");
    EXPECT_EQ(d->from.port, tx.local_port());
  }
}

TEST(UdpBatch, SendBatchLargerThanOneChunk) {
  UdpSocket rx(0);
  UdpSocket tx(0);
  // More destinations than kBatchMax → several sendmmsg chunks, all to
  // the same receiver.
  const std::vector<SocketAddress> dests(
      UdpSocket::kBatchMax + 7, SocketAddress::loopback(rx.local_port()));
  EXPECT_EQ(tx.send_batch(dests, bytes("x")), dests.size());

  wait_readable(rx);
  std::vector<ReceivedDatagram> got;
  drain_until(rx, dests.size(), got);
  EXPECT_EQ(got.size(), dests.size());
}

// Steady state: after the first batch, neither receive() nor
// receive_batch() may allocate. (The bench asserts this with a real
// allocation counter; here we at least pin the view-not-copy contract —
// batch item spans point into the socket's pool, not fresh storage.)
TEST(UdpBatch, BatchSpansViewSocketPoolStorage) {
  UdpSocket rx(0);
  UdpSocket tx(0);
  const auto dest = SocketAddress::loopback(rx.local_port());
  tx.send_to(dest, bytes("one"));
  wait_readable(rx);
  auto batch = rx.receive_batch();
  ASSERT_EQ(batch.size(), 1u);
  const std::byte* slot0 = batch[0].data.data();

  tx.send_to(dest, bytes("two"));
  wait_readable(rx);
  batch = rx.receive_batch();
  ASSERT_EQ(batch.size(), 1u);
  // Same pool slot reused — the previous span was invalidated, not
  // leaked into a fresh allocation.
  EXPECT_EQ(batch[0].data.data(), slot0);
}

TEST(UdpBatch, PortableModeMatchesDefaultObservably) {
  UdpSocket::Options opts;
  opts.portable_batch_io = true;
  UdpSocket rx(opts);
  // Forcing the portable path disables the kernel-timestamp rung.
  EXPECT_FALSE(rx.kernel_timestamps());

  UdpSocket tx(0);
  const auto dest = SocketAddress::loopback(rx.local_port());
  for (int i = 0; i < 10; ++i) tx.send_to(dest, bytes(std::to_string(i)));
  wait_readable(rx);
  std::vector<ReceivedDatagram> got;
  drain_until(rx, 10, got);
  ASSERT_EQ(got.size(), 10u);
  for (const auto& d : got) {
    EXPECT_EQ(d.from.port, tx.local_port());
    EXPECT_EQ(d.kernel_time_ns, 0);
    EXPECT_FALSE(d.truncated);
  }
}

// Satellite: hard receive errors must be counted, not swallowed as "no
// datagram queued". A moved-from socket's fd is -1 → EBADF.
TEST(UdpBatch, HardReceiveErrorsAreCounted) {
  UdpSocket a(0);
  UdpSocket b(std::move(a));
  EXPECT_EQ(a.fd(), -1);

  EXPECT_EQ(a.receive(), nullptr);
  EXPECT_EQ(a.recv_errors(), 1u);
  EXPECT_TRUE(a.receive_batch().empty());
  EXPECT_EQ(a.recv_errors(), 2u);

  // The moved-to socket is healthy and unaffected.
  EXPECT_EQ(b.receive(), nullptr);
  EXPECT_TRUE(b.receive_batch().empty());
  EXPECT_EQ(b.recv_errors(), 0u);
}

TEST(UdpBatch, KernelTimestampsMatchBuildCapability) {
  UdpSocket s(0);
  if constexpr (UdpSocket::kBatchSyscalls) {
    // Linux always grants SO_TIMESTAMPNS on UDP sockets.
    EXPECT_TRUE(s.kernel_timestamps());
  } else {
    EXPECT_FALSE(s.kernel_timestamps());
  }
}

}  // namespace
}  // namespace twfd::net

#include "net/udp_socket.hpp"

#include <gtest/gtest.h>

#include <poll.h>

#include <cstring>
#include <string>

namespace twfd::net {
namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

void wait_readable(const UdpSocket& s, int ms = 2000) {
  pollfd pfd{s.fd(), POLLIN, 0};
  ASSERT_GT(::poll(&pfd, 1, ms), 0) << "datagram never arrived";
}

TEST(SocketAddress, ParseAndFormat) {
  const auto a = SocketAddress::parse("192.168.1.20", 8080);
  EXPECT_EQ(a.ip_host_order, 0xC0A80114u);
  EXPECT_EQ(a.port, 8080);
  EXPECT_EQ(a.to_string(), "192.168.1.20:8080");
  EXPECT_EQ(SocketAddress::loopback(9).ip_host_order, 0x7f000001u);
  EXPECT_THROW(SocketAddress::parse("not-an-ip", 1), std::invalid_argument);
}

TEST(SocketAddress, SockaddrRoundTrip) {
  const auto a = SocketAddress::parse("10.0.0.7", 1234);
  EXPECT_EQ(SocketAddress::from_sockaddr(a.to_sockaddr()), a);
}

TEST(SocketAddress, Ordering) {
  const auto a = SocketAddress::parse("10.0.0.1", 1);
  const auto b = SocketAddress::parse("10.0.0.1", 2);
  const auto c = SocketAddress::parse("10.0.0.2", 1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(UdpSocket, EphemeralBindGetsPort) {
  UdpSocket s(0);
  EXPECT_GT(s.local_port(), 0);
  EXPECT_GE(s.fd(), 0);
}

TEST(UdpSocket, LoopbackSendReceive) {
  UdpSocket rx(0);
  UdpSocket tx(0);
  tx.send_to(SocketAddress::loopback(rx.local_port()), bytes("ping"));
  wait_readable(rx);
  const auto* d = rx.receive();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(d->data.data()), d->data.size()),
            "ping");
  EXPECT_EQ(d->from.port, tx.local_port());
}

TEST(UdpSocket, NonBlockingReceiveReturnsNull) {
  UdpSocket s(0);
  EXPECT_EQ(s.receive(), nullptr);
  // An empty socket is not an error condition.
  EXPECT_EQ(s.recv_errors(), 0u);
}

TEST(UdpSocket, MoveTransfersOwnership) {
  UdpSocket a(0);
  const int fd = a.fd();
  const auto port = a.local_port();
  UdpSocket b(std::move(a));
  EXPECT_EQ(b.fd(), fd);
  EXPECT_EQ(b.local_port(), port);
  EXPECT_EQ(a.fd(), -1);
}

TEST(UdpSocket, MultipleDatagramsQueue) {
  UdpSocket rx(0);
  UdpSocket tx(0);
  const auto dest = SocketAddress::loopback(rx.local_port());
  tx.send_to(dest, bytes("a"));
  tx.send_to(dest, bytes("b"));
  tx.send_to(dest, bytes("c"));
  wait_readable(rx);
  int got = 0;
  for (int tries = 0; tries < 100 && got < 3; ++tries) {
    if (rx.receive() != nullptr) {
      ++got;
    } else {
      pollfd pfd{rx.fd(), POLLIN, 0};
      ::poll(&pfd, 1, 50);
    }
  }
  EXPECT_EQ(got, 3);
}

}  // namespace
}  // namespace twfd::net

#include "core/multi_window.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "detect/chen.hpp"

namespace twfd::core {
namespace {

constexpr Tick kI = ticks_from_ms(100);
constexpr Tick kMargin = ticks_from_ms(25);

MultiWindowDetector make(std::vector<std::size_t> windows = {1, 4}) {
  MultiWindowDetector::Params p;
  p.windows = std::move(windows);
  p.safety_margin = kMargin;
  p.interval = kI;
  return MultiWindowDetector(p);
}

TEST(MaxWindowEstimator, MaxOfBothWindows) {
  MaxWindowEstimator e({1, 3}, kI);
  // Offsets: 900 (old), then 100, 100 -> long mean 366, short last 100.
  e.add(1, 1 * kI + 900);
  e.add(2, 2 * kI + 100);
  e.add(3, 3 * kI + 100);
  const Tick long_ea = e.expected_arrival_of(1, 4);
  const Tick short_ea = e.expected_arrival_of(0, 4);
  EXPECT_EQ(short_ea, 4 * kI + 100);
  EXPECT_GT(long_ea, short_ea);  // the slow old sample lingers in the window
  EXPECT_EQ(e.expected_arrival(4), std::max(short_ea, long_ea));
}

TEST(MaxWindowEstimator, ShortWindowDominatesAfterSlowdown) {
  MaxWindowEstimator e({1, 8}, kI);
  for (std::int64_t s = 1; s <= 8; ++s) e.add(s, s * kI + 100);
  // Sudden slowdown: latest offset jumps to 50 ms.
  e.add(9, 9 * kI + ticks_from_ms(50));
  const Tick short_ea = e.expected_arrival_of(0, 10);
  const Tick long_ea = e.expected_arrival_of(1, 10);
  EXPECT_GT(short_ea, long_ea);  // short window reacts instantly
  EXPECT_EQ(e.expected_arrival(10), short_ea);
}

TEST(MaxWindowEstimator, RequiresAtLeastOneWindow) {
  EXPECT_THROW(MaxWindowEstimator({}, kI), std::logic_error);
  EXPECT_THROW(MaxWindowEstimator({0}, kI), std::logic_error);
}

TEST(MultiWindow, TrustsBeforeFirstHeartbeat) {
  auto d = make();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
}

TEST(MultiWindow, FreshnessIsMaxEaPlusMargin) {
  auto d = make({1, 2});
  d.on_heartbeat(1, kI, kI + 500);
  d.on_heartbeat(2, 2 * kI, 2 * kI + 100);
  // short EA_3 = 3I+100; long EA_3 = 3I+300 -> max is long.
  EXPECT_EQ(d.current_expected_arrival(), 3 * kI + 300);
  EXPECT_EQ(d.suspect_after(), 3 * kI + 300 + kMargin);
}

TEST(MultiWindow, NeverEarlierThanAnySingleWindowChen) {
  // 2W's freshness point is pointwise >= each constituent Chen detector's.
  detect::ChenDetector::Params cp;
  cp.safety_margin = kMargin;
  cp.interval = kI;
  cp.window = 1;
  detect::ChenDetector c1(cp);
  cp.window = 6;
  detect::ChenDetector c6(cp);
  auto d2w = make({1, 6});

  Xoshiro256 rng(17);
  for (std::int64_t s = 1; s <= 2000; ++s) {
    if (rng.bernoulli(0.1)) continue;  // losses
    const Tick arrival = s * kI + static_cast<Tick>(rng.exponential(5e6));
    c1.on_heartbeat(s, s * kI, arrival);
    c6.on_heartbeat(s, s * kI, arrival);
    d2w.on_heartbeat(s, s * kI, arrival);
    ASSERT_GE(d2w.suspect_after(), c1.suspect_after());
    ASSERT_GE(d2w.suspect_after(), c6.suspect_after());
    ASSERT_EQ(d2w.suspect_after(),
              std::max(c1.suspect_after(), c6.suspect_after()));
  }
}

TEST(MultiWindow, DegeneratesToChenWithOneWindow) {
  detect::ChenDetector::Params cp;
  cp.window = 4;
  cp.safety_margin = kMargin;
  cp.interval = kI;
  detect::ChenDetector chen(cp);
  auto mw = make({4});

  Xoshiro256 rng(23);
  for (std::int64_t s = 1; s <= 500; ++s) {
    const Tick arrival = s * kI + static_cast<Tick>(rng.uniform(0.0, 1e7));
    chen.on_heartbeat(s, s * kI, arrival);
    mw.on_heartbeat(s, s * kI, arrival);
    ASSERT_EQ(mw.suspect_after(), chen.suspect_after());
  }
}

TEST(MultiWindow, IdenticalWindowsEqualOneWindow) {
  auto a = make({3, 3});
  auto b = make({3});
  for (std::int64_t s = 1; s <= 100; ++s) {
    const Tick arrival = s * kI + (s % 7) * 1000;
    a.on_heartbeat(s, s * kI, arrival);
    b.on_heartbeat(s, s * kI, arrival);
    ASSERT_EQ(a.suspect_after(), b.suspect_after());
  }
}

TEST(MultiWindow, ThreeWindowsGeneralisation) {
  auto d = make({1, 4, 16});
  Xoshiro256 rng(29);
  for (std::int64_t s = 1; s <= 200; ++s) {
    d.on_heartbeat(s, s * kI, s * kI + static_cast<Tick>(rng.uniform(0.0, 1e7)));
  }
  EXPECT_EQ(d.name(), "mw(1,4,16)");
  EXPECT_NE(d.suspect_after(), kTickInfinity);
}

TEST(MultiWindow, StaleIgnored) {
  auto d = make();
  d.on_heartbeat(5, 5 * kI, 5 * kI);
  const Tick sa = d.suspect_after();
  d.on_heartbeat(4, 4 * kI, 5 * kI + 10);
  EXPECT_EQ(d.suspect_after(), sa);
}

TEST(MultiWindow, ResetRestoresInitialState) {
  auto d = make();
  d.on_heartbeat(1, kI, kI);
  d.reset();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_EQ(d.highest_seq(), 0);
}

TEST(MultiWindow, TwoWindowParamsHelper) {
  const auto p = two_window_params(1, 1000, kMargin, kI);
  ASSERT_EQ(p.windows.size(), 2u);
  EXPECT_EQ(p.windows[0], 1u);
  EXPECT_EQ(p.windows[1], 1000u);
  MultiWindowDetector d(p);
  EXPECT_EQ(d.name(), "2w(1,1000)");
}

}  // namespace
}  // namespace twfd::core

#include "core/adaptive_multi_window.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/factory.hpp"
#include "core/multi_window.hpp"

namespace twfd::core {
namespace {

constexpr Tick kI = ticks_from_ms(100);

AdaptiveMultiWindowDetector make(Tick floor = ticks_from_ms(10)) {
  AdaptiveMultiWindowDetector::Params p;
  p.windows = {1, 8};
  p.interval = kI;
  p.min_margin = floor;
  return AdaptiveMultiWindowDetector(p);
}

TEST(AdaptiveTwoWindow, FloorHoldsOnCalmStream) {
  auto d = make(ticks_from_ms(25));
  for (std::int64_t s = 1; s <= 50; ++s) d.on_heartbeat(s, s * kI, s * kI);
  // Zero prediction error: the adaptive part contributes nothing, the
  // floor is the whole margin.
  EXPECT_EQ(d.current_margin(), ticks_from_ms(25));
  EXPECT_EQ(d.suspect_after(), 51 * kI + ticks_from_ms(25));
}

TEST(AdaptiveTwoWindow, MarginGrowsUnderJitter) {
  auto calm = make();
  auto jittery = make();
  Xoshiro256 rng(9);
  for (std::int64_t s = 1; s <= 200; ++s) {
    calm.on_heartbeat(s, s * kI, s * kI);
    jittery.on_heartbeat(s, s * kI,
                         s * kI + static_cast<Tick>(rng.uniform(0.0, 3e7)));
  }
  EXPECT_GT(jittery.current_margin(), calm.current_margin());
  EXPECT_GE(calm.current_margin(), ticks_from_ms(10));
}

TEST(AdaptiveTwoWindow, NeverLessConservativeThanFixed2WAtFloor) {
  // With margin >= floor always, the adaptive detector's freshness point
  // is pointwise >= a fixed 2W-FD using the floor as its margin.
  MultiWindowDetector::Params fp;
  fp.windows = {1, 8};
  fp.interval = kI;
  fp.safety_margin = ticks_from_ms(10);
  MultiWindowDetector fixed(fp);
  auto adaptive = make(ticks_from_ms(10));

  Xoshiro256 rng(10);
  for (std::int64_t s = 1; s <= 1000; ++s) {
    if (rng.bernoulli(0.05)) continue;
    const Tick arrival = s * kI + static_cast<Tick>(rng.exponential(6e6));
    fixed.on_heartbeat(s, s * kI, arrival);
    adaptive.on_heartbeat(s, s * kI, arrival);
    ASSERT_GE(adaptive.suspect_after(), fixed.suspect_after()) << s;
  }
}

TEST(AdaptiveTwoWindow, ResetRestoresFloor) {
  auto d = make(ticks_from_ms(15));
  Xoshiro256 rng(11);
  for (std::int64_t s = 1; s <= 100; ++s) {
    d.on_heartbeat(s, s * kI, s * kI + static_cast<Tick>(rng.uniform(0.0, 2e7)));
  }
  d.reset();
  EXPECT_EQ(d.current_margin(), ticks_from_ms(15));
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_EQ(d.highest_seq(), 0);
}

TEST(AdaptiveTwoWindow, FactoryAndName) {
  const auto spec = core::DetectorSpec::adaptive_two_window(1, 1000, ticks_from_ms(5));
  EXPECT_EQ(spec.family_name(), "a2w(1,1000)");
  auto d = core::make_detector(spec, kI);
  EXPECT_EQ(d->name(), "a2w(1,1000)");
  d->on_heartbeat(1, kI, kI);
  d->on_heartbeat(2, 2 * kI, 2 * kI);
  EXPECT_NE(d->suspect_after(), kTickInfinity);
}

TEST(AdaptiveTwoWindow, ParameterValidation) {
  AdaptiveMultiWindowDetector::Params p;
  p.min_margin = -1;
  EXPECT_THROW(AdaptiveMultiWindowDetector{p}, std::logic_error);
  p.min_margin = 0;
  p.gamma = 0.0;
  EXPECT_THROW(AdaptiveMultiWindowDetector{p}, std::logic_error);
}

}  // namespace
}  // namespace twfd::core

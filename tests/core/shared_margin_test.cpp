#include "core/shared_margin.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/multi_window.hpp"

namespace twfd::core {
namespace {

constexpr Tick kI = ticks_from_ms(50);

TEST(SharedMargin, PerAppSuspicionOffsets) {
  SharedMarginDetector d({1, 4}, kI);
  const auto fast = d.add_application("fast", ticks_from_ms(10));
  const auto slow = d.add_application("slow", ticks_from_ms(200));
  d.on_heartbeat(1, kI, kI + 100);
  EXPECT_EQ(d.suspect_after(slow) - d.suspect_after(fast), ticks_from_ms(190));
}

TEST(SharedMargin, TrustsBeforeFirstHeartbeat) {
  SharedMarginDetector d({1, 4}, kI);
  const auto j = d.add_application("a", 0);
  EXPECT_EQ(d.suspect_after(j), kTickInfinity);
  EXPECT_EQ(d.output_at(j, ticks_from_sec(100)), detect::Output::Trust);
}

TEST(SharedMargin, EquivalentToDedicatedMultiWindow) {
  // The core service property: each app's output equals a dedicated
  // MW-FD with the same windows and its own margin.
  SharedMarginDetector shared({1, 8}, kI);
  const Tick margins[3] = {ticks_from_ms(5), ticks_from_ms(60), ticks_from_ms(240)};
  std::size_t idx[3];
  std::vector<std::unique_ptr<MultiWindowDetector>> dedicated;
  for (int j = 0; j < 3; ++j) {
    idx[j] = shared.add_application("app" + std::to_string(j), margins[j]);
    MultiWindowDetector::Params p;
    p.windows = {1, 8};
    p.safety_margin = margins[j];
    p.interval = kI;
    dedicated.push_back(std::make_unique<MultiWindowDetector>(p));
  }

  Xoshiro256 rng(31);
  for (std::int64_t s = 1; s <= 3000; ++s) {
    if (rng.bernoulli(0.05)) continue;
    const Tick arrival = s * kI + static_cast<Tick>(rng.exponential(3e6));
    shared.on_heartbeat(s, s * kI, arrival);
    for (int j = 0; j < 3; ++j) {
      dedicated[j]->on_heartbeat(s, s * kI, arrival);
      ASSERT_EQ(shared.suspect_after(idx[j]), dedicated[j]->suspect_after())
          << "app " << j << " at seq " << s;
    }
  }
}

TEST(SharedMargin, StaleIgnored) {
  SharedMarginDetector d({1, 2}, kI);
  const auto j = d.add_application("a", 0);
  d.on_heartbeat(2, 2 * kI, 2 * kI);
  const Tick sa = d.suspect_after(j);
  d.on_heartbeat(1, kI, 2 * kI + 5);
  EXPECT_EQ(d.suspect_after(j), sa);
  EXPECT_EQ(d.highest_seq(), 2);
}

TEST(SharedMargin, AppMetadataAccessible) {
  SharedMarginDetector d({1}, kI);
  const auto j = d.add_application("metrics-db", ticks_from_ms(7));
  EXPECT_EQ(d.app_count(), 1u);
  EXPECT_EQ(d.app_name(j), "metrics-db");
  EXPECT_EQ(d.margin(j), ticks_from_ms(7));
  EXPECT_EQ(d.interval(), kI);
}

TEST(SharedMargin, NegativeMarginRejected) {
  SharedMarginDetector d({1}, kI);
  EXPECT_THROW(d.add_application("bad", -1), std::logic_error);
}

TEST(SharedMargin, OutOfRangeAppRejected) {
  SharedMarginDetector d({1}, kI);
  EXPECT_THROW((void)d.suspect_after(0), std::logic_error);
}

TEST(SharedMargin, ResetKeepsRegistrations) {
  SharedMarginDetector d({1, 2}, kI);
  const auto j = d.add_application("a", ticks_from_ms(1));
  d.on_heartbeat(1, kI, kI);
  d.reset();
  EXPECT_EQ(d.app_count(), 1u);
  EXPECT_EQ(d.suspect_after(j), kTickInfinity);
  d.on_heartbeat(1, kI, kI);
  EXPECT_NE(d.suspect_after(j), kTickInfinity);
}

}  // namespace
}  // namespace twfd::core

#include "core/factory.hpp"

#include <gtest/gtest.h>

#include "core/multi_window.hpp"
#include "detect/bertier.hpp"
#include "detect/chen.hpp"
#include "detect/ed.hpp"
#include "detect/phi_accrual.hpp"

namespace twfd::core {
namespace {

constexpr Tick kI = ticks_from_ms(100);

TEST(Factory, BuildsEveryKind) {
  EXPECT_NE(dynamic_cast<detect::ChenDetector*>(
                make_detector(DetectorSpec::chen(10, ticks_from_ms(5)), kI).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<detect::BertierDetector*>(
                make_detector(DetectorSpec::bertier(), kI).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<detect::PhiAccrualDetector*>(
                make_detector(DetectorSpec::phi(1.5), kI).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<detect::EdDetector*>(
                make_detector(DetectorSpec::ed(0.9), kI).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<MultiWindowDetector*>(
                make_detector(DetectorSpec::two_window(1, 1000, 0), kI).get()),
            nullptr);
}

TEST(Factory, ParametersPropagate) {
  auto chen = make_detector(DetectorSpec::chen(7, ticks_from_ms(9)), kI);
  const auto* c = dynamic_cast<detect::ChenDetector*>(chen.get());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->params().window, 7u);
  EXPECT_EQ(c->params().safety_margin, ticks_from_ms(9));
  EXPECT_EQ(c->params().interval, kI);

  auto mw = make_detector(DetectorSpec::multi_window({2, 5, 9}, ticks_from_ms(3)), kI);
  const auto* m = dynamic_cast<MultiWindowDetector*>(mw.get());
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->params().windows, (std::vector<std::size_t>{2, 5, 9}));
}

TEST(Factory, FamilyNames) {
  EXPECT_EQ(DetectorSpec::chen(1000, 0).family_name(), "chen(1000)");
  EXPECT_EQ(DetectorSpec::bertier().family_name(), "bertier");
  EXPECT_EQ(DetectorSpec::phi(1.0).family_name(), "phi");
  EXPECT_EQ(DetectorSpec::ed(0.5).family_name(), "ed");
  EXPECT_EQ(DetectorSpec::two_window(1, 1000, 0).family_name(), "2w(1,1000)");
  EXPECT_EQ(DetectorSpec::multi_window({1, 2, 3}, 0).family_name(), "mw(1,2,3)");
}

TEST(Factory, BuiltDetectorsFunction) {
  for (const auto& spec :
       {DetectorSpec::chen(4, ticks_from_ms(10)), DetectorSpec::bertier(4),
        DetectorSpec::phi(1.0, 4), DetectorSpec::ed(0.9, 4),
        DetectorSpec::two_window(1, 4, ticks_from_ms(10))}) {
    auto d = make_detector(spec, kI);
    for (std::int64_t s = 1; s <= 10; ++s) {
      d->on_heartbeat(s, s * kI, s * kI + 1000);
    }
    EXPECT_NE(d->suspect_after(), kTickInfinity) << d->name();
    EXPECT_GT(d->suspect_after(), 10 * kI) << d->name();
  }
}

}  // namespace
}  // namespace twfd::core

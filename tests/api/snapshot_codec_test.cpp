// TWFS snapshot codec: roundtrips, the hostile-input surface (mirrors
// the control-codec fuzz coverage), version-skew rejection and the
// cross-process clock rebase. The snapshot file is parsed at daemon
// startup from whatever a crash left on disk — decode must reject,
// never crash, never over-read, and a truncated or bit-flipped file
// must land on a typed failure so the server cold-starts instead of
// resurrecting garbage verdicts.

#include "api/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace twfd {
namespace {

using namespace twfd::api;

SnapshotData rich_snapshot() {
  SnapshotData data;
  data.saved_wall_ns = 1'700'000'000'000'000'000;
  data.seeds.push_back({net::SocketAddress::parse("10.1.2.3", 4100), 42,
                        "dashboard", {0.8, 1e-3, 4.0}, detect::Output::Trust,
                        250'000'000});
  data.seeds.push_back({net::SocketAddress::parse("10.9.8.7", 4101), 43,
                        "alerting", {2.0, 1e-2, 8.0}, detect::Output::Suspect,
                        -1});
  data.seeds.push_back({net::SocketAddress::loopback(0), 0, "", {0, 0, 0},
                        detect::Output::Suspect, 0});
  data.fed_children = {1, 7, 0xffffffffffffffffULL};
  return data;
}

std::string temp_path(const char* tag) {
  return testing::TempDir() + "twfs_codec_" + tag + "_" +
         std::to_string(::getpid()) + ".snap";
}

/// Rewrites the trailing u64 checksum so forged structural damage is
/// exercised on its own (not masked by the integrity check).
void refresh_checksum(std::vector<std::byte>& bytes) {
  ASSERT_GE(bytes.size(), 8u);
  const auto sum = snapshot_checksum(
      std::span<const std::byte>(bytes).first(bytes.size() - 8));
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((sum >> (8 * i)) & 0xff);
  }
}

TEST(SnapshotCodec, RoundtripsRichState) {
  const SnapshotData data = rich_snapshot();
  const auto bytes = encode_snapshot(data);
  SnapshotData out;
  ASSERT_EQ(decode_snapshot(bytes, out), SnapshotLoadStatus::kOk);
  EXPECT_EQ(out.saved_wall_ns, data.saved_wall_ns);
  ASSERT_EQ(out.seeds.size(), data.seeds.size());
  for (std::size_t i = 0; i < data.seeds.size(); ++i) {
    EXPECT_EQ(out.seeds[i], data.seeds[i]) << "seed " << i;
  }
  EXPECT_EQ(out.fed_children, data.fed_children);
}

TEST(SnapshotCodec, RoundtripsEmptyState) {
  SnapshotData data;
  data.saved_wall_ns = 5;
  const auto bytes = encode_snapshot(data);
  SnapshotData out;
  ASSERT_EQ(decode_snapshot(bytes, out), SnapshotLoadStatus::kOk);
  EXPECT_TRUE(out.seeds.empty());
  EXPECT_TRUE(out.fed_children.empty());
}

TEST(SnapshotCodec, RejectsTruncationAtEveryLength) {
  const auto bytes = encode_snapshot(rich_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SnapshotData out;
    const auto status = decode_snapshot(
        std::span<const std::byte>(bytes).first(len), out);
    EXPECT_NE(status, SnapshotLoadStatus::kOk) << "accepted prefix " << len;
  }
}

TEST(SnapshotCodec, RejectsEverySingleBitFlip) {
  const auto pristine = encode_snapshot(rich_snapshot());
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bytes = pristine;
      bytes[i] ^= static_cast<std::byte>(1u << bit);
      SnapshotData out;
      EXPECT_NE(decode_snapshot(bytes, out), SnapshotLoadStatus::kOk)
          << "accepted flip of byte " << i << " bit " << bit;
    }
  }
}

TEST(SnapshotCodec, RejectsRandomGarbage) {
  Xoshiro256 rng(0xf00dU);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> bytes(rng() % 256);
    for (auto& b : bytes) b = static_cast<std::byte>(rng() & 0xff);
    SnapshotData out;
    EXPECT_NE(decode_snapshot(bytes, out), SnapshotLoadStatus::kOk);
  }
}

TEST(SnapshotCodec, DistinguishesBadMagicFromCorruption) {
  auto bytes = encode_snapshot(rich_snapshot());
  bytes[0] = static_cast<std::byte>(0x00);
  SnapshotData out;
  EXPECT_EQ(decode_snapshot(bytes, out), SnapshotLoadStatus::kBadMagic);
}

TEST(SnapshotCodec, VersionSkewIsGracefulRejectNotGuess) {
  // A snapshot from a FUTURE binary with a valid checksum: the loader
  // must land on kBadVersion (log + cold start), never attempt decode.
  auto bytes = encode_snapshot(rich_snapshot());
  bytes[4] = static_cast<std::byte>(kSnapshotVersion + 1);
  refresh_checksum(bytes);
  SnapshotData out;
  EXPECT_EQ(decode_snapshot(bytes, out), SnapshotLoadStatus::kBadVersion);
}

TEST(SnapshotCodec, HostileSeedCountNeverDrivesAllocation) {
  // Forge a body whose seed count claims 2^20 entries with 3 bytes of
  // payload behind it; checksum is made valid so the structural check
  // itself must reject.
  auto bytes = encode_snapshot(SnapshotData{});
  // Body starts after the u32+u8+i64+u32 header (17 bytes) and holds
  // [varint seed_count][varint child_count]. Rewrite it to a huge
  // varint count with nothing behind it.
  ASSERT_GE(bytes.size(), 17u + 2u + 8u);
  bytes[17] = static_cast<std::byte>(0xff);  // varint continuation
  bytes[18] = static_cast<std::byte>(0x7f);
  refresh_checksum(bytes);
  SnapshotData out;
  EXPECT_EQ(decode_snapshot(bytes, out), SnapshotLoadStatus::kCorrupt);
}

TEST(SnapshotCodec, FileRoundtripAndMissingFile) {
  const std::string path = temp_path("roundtrip");
  const SnapshotData data = rich_snapshot();
  ASSERT_TRUE(save_snapshot_file(path, data));
  const auto loaded = load_snapshot_file(path);
  ASSERT_TRUE(loaded.ok()) << to_string(loaded.status);
  EXPECT_EQ(loaded.data.seeds, data.seeds);
  EXPECT_EQ(loaded.data.fed_children, data.fed_children);
  std::remove(path.c_str());

  const auto missing = load_snapshot_file(path);
  EXPECT_EQ(missing.status, SnapshotLoadStatus::kMissing);
}

TEST(SnapshotCodec, CorruptFileOnDiskIsTypedNotFatal) {
  const std::string path = temp_path("corrupt");
  ASSERT_TRUE(save_snapshot_file(path, rich_snapshot()));
  // Truncate the file mid-body: simulates a torn disk after a crash.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::ftruncate(::fileno(f), 21), 0);
    std::fclose(f);
  }
  const auto loaded = load_snapshot_file(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status, SnapshotLoadStatus::kMissing);
  std::remove(path.c_str());
}

TEST(SnapshotCodec, FailedSaveLeavesPreviousSnapshotIntact) {
  const std::string path = temp_path("atomic");
  const SnapshotData good = rich_snapshot();
  ASSERT_TRUE(save_snapshot_file(path, good));
  // A save to an unwritable tmp location must fail without touching the
  // existing file: point the path into a directory that does not exist.
  const std::string bad_path = testing::TempDir() + "no_such_dir_twfs/x.snap";
  EXPECT_FALSE(save_snapshot_file(bad_path, good));
  const auto loaded = load_snapshot_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.data.seeds, good.seeds);
  std::remove(path.c_str());
}

TEST(SnapshotRebase, MapsAgesAcrossTheProcessBoundary) {
  const Tick steady_now = ticks_from_sec(100);
  const std::int64_t saved_wall = 1'000'000'000'000;
  // 2s of downtime, a transition that was 3s old at save: the reborn
  // `since` lands 5s in the past.
  const std::int64_t wall_now = saved_wall + ticks_from_sec(2);
  EXPECT_EQ(rebase_seed_since(ticks_from_sec(3), saved_wall, wall_now, steady_now),
            steady_now - ticks_from_sec(5));
  // No transition before the save: sentinel maps to 0 ("never").
  EXPECT_EQ(rebase_seed_since(-1, saved_wall, wall_now, steady_now), 0);
  // A skewed wall clock (restart "before" the save) cannot push since
  // into the future: downtime clamps to 0.
  EXPECT_EQ(rebase_seed_since(ticks_from_sec(1), saved_wall,
                              saved_wall - ticks_from_sec(30), steady_now),
            steady_now - ticks_from_sec(1));
  // Ages older than the process's own steady epoch clamp to 1, never 0
  // (0 means "no transition") and never negative.
  EXPECT_EQ(rebase_seed_since(ticks_from_sec(500), saved_wall, wall_now,
                              ticks_from_sec(10)),
            1);
}

}  // namespace
}  // namespace twfd

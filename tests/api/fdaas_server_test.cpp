// FdaasServer: the threaded end-to-end suite (CTest label `threaded`,
// the ThreadSanitizer target).
//
// Real TCP over loopback, real UDP heartbeats, real client threads.
// Covers the tentpole scenario — two remote applications with DIFFERENT
// QoS tuples watching the same peer through one shared service, each
// notified within its own detection bound and recovering to Trust when
// the peer returns — plus the session-defence mechanics: lease expiry
// for half-open clients, eviction of slow readers, and malformed-stream
// drops. Timing slack is generous (TSan slows everything); the bounds
// asserted are still the paper-level ones.

#include "api/fdaas_server.hpp"

#include <gtest/gtest.h>

#include <poll.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "net/event_loop.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "shard/sharded_monitor_service.hpp"

namespace twfd {
namespace {

using shard::ShardedMonitorService;

constexpr Tick kBeaconInterval = ticks_from_ms(200);

/// A monitored process (same shape as the shard suite's helper), with an
/// explicit bind port so a "recovered" process can reclaim its old UDP
/// address — the service identifies peers by source ip:port.
class Beacon {
 public:
  Beacon(std::uint64_t sender_id, std::uint16_t service_port,
         std::uint16_t bind_port = 0)
      : loop_(std::make_unique<net::EventLoop>(bind_port)) {
    port_ = loop_->local_port();
    thread_ = std::thread([this, sender_id, service_port] {
      service::Dispatcher dispatch(loop_->runtime());
      service::HeartbeatSender sender(
          loop_->runtime(),
          {.sender_id = sender_id, .base_interval = kBeaconInterval});
      dispatch.on_interval_request(
          [&](PeerId from, const net::IntervalRequestMsg& msg) {
            sender.handle_interval_request(from, msg);
          });
      sender.add_target(
          loop_->add_peer(net::SocketAddress::loopback(service_port)));
      sender.start();
      while (!stop_.load(std::memory_order_acquire)) {
        loop_->run_for(ticks_from_ms(50));
      }
      sender.stop();
    });
  }

  ~Beacon() { crash(); }

  void crash() {
    stop_.store(true, std::memory_order_release);
    loop_->wake();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] net::SocketAddress address() const {
    return net::SocketAddress::loopback(port_);
  }

 private:
  std::unique_ptr<net::EventLoop> loop_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// One remote application: its own thread owning one api::Client,
/// pumping events and recording the arrival instant of each transition.
class Subscriber {
 public:
  Subscriber(std::uint16_t api_port, net::SocketAddress peer,
             std::uint64_t sender_id, std::string app,
             config::QosRequirements qos) {
    thread_ = std::thread([this, api_port, peer, sender_id,
                           app = std::move(app), qos] {
      api::Client client(net::SocketAddress::loopback(api_port));
      client.set_event_handler([this](const api::EventMsg& event) {
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
        if (event.output == detect::Output::Suspect) {
          suspect_at_ns_.store(ns, std::memory_order_release);
        } else if (suspect_at_ns_.load(std::memory_order_acquire) != 0) {
          trust_after_suspect_at_ns_.store(ns, std::memory_order_release);
        }
      });
      sub_ = client.subscribe(peer, sender_id, app, qos);
      ready_.store(true, std::memory_order_release);
      while (!stop_.load(std::memory_order_acquire)) {
        if (!client.pump_for(ticks_from_ms(50))) {
          pump_failed_.store(true, std::memory_order_release);
          return;
        }
      }
      client.unsubscribe(sub_);
    });
  }

  ~Subscriber() { join(); }

  void join() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool ready() const {
    return ready_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::int64_t suspect_at_ns() const {
    return suspect_at_ns_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::int64_t trust_after_suspect_at_ns() const {
    return trust_after_suspect_at_ns_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool pump_failed() const {
    return pump_failed_.load(std::memory_order_acquire);
  }

 private:
  std::thread thread_;
  std::uint64_t sub_ = 0;
  std::atomic<bool> ready_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> pump_failed_{false};
  std::atomic<std::int64_t> suspect_at_ns_{0};
  std::atomic<std::int64_t> trust_after_suspect_at_ns_{0};
};

[[nodiscard]] std::int64_t now_ns() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
}

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

// The tentpole: two applications, one peer, two QoS tuples, one shared
// service — crash detected within each application's own T_D^U, Trust
// restored when the process returns on the same address.
TEST(FdaasServer, TwoClientsDifferentQosDetectCrashAndRecovery) {
  ShardedMonitorService service({.shards = 2});
  service.start();
  api::FdaasServer server(service, {});
  server.start();

  auto beacon = std::make_unique<Beacon>(1, service.port());
  const auto peer = beacon->address();
  const std::uint16_t beacon_port = beacon->port();

  constexpr double kTdTight = 0.8;  // application A: aggressive detection
  constexpr double kTdLoose = 2.0;  // application B: relaxed detection
  Subscriber a(server.port(), peer, 1, "appA", {kTdTight, 1e-3, 4.0});
  Subscriber b(server.port(), peer, 1, "appB", {kTdLoose, 1e-3, 6.0});
  ASSERT_TRUE(wait_until([&] { return a.ready() && b.ready(); },
                         std::chrono::milliseconds(5000)));

  // Warm-up: both seeded Trust, heartbeats flowing, no transition yet.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  EXPECT_EQ(a.suspect_at_ns(), 0);
  EXPECT_EQ(b.suspect_at_ns(), 0);

  const std::int64_t crash_ns = now_ns();
  beacon->crash();
  beacon.reset();

  ASSERT_TRUE(wait_until(
      [&] { return a.suspect_at_ns() != 0 && b.suspect_at_ns() != 0; },
      std::chrono::milliseconds(8000)))
      << "both subscribers must be told about the crash";

  // Wall-clock detection bound per application: T_D^U plus scheduler
  // slack (heartbeat cadence + poll cadence + CI/TSan stalls).
  const double kSlackS = 2.0;
  const double a_detect_s = static_cast<double>(a.suspect_at_ns() - crash_ns) / 1e9;
  const double b_detect_s = static_cast<double>(b.suspect_at_ns() - crash_ns) / 1e9;
  EXPECT_LT(a_detect_s, kTdTight + kSlackS);
  EXPECT_LT(b_detect_s, kTdLoose + kSlackS);

  // Recovery: the process returns on the SAME udp address; both
  // applications must see Trust again.
  auto revived = std::make_unique<Beacon>(1, service.port(), beacon_port);
  ASSERT_EQ(revived->port(), beacon_port);
  ASSERT_TRUE(wait_until(
      [&] {
        return a.trust_after_suspect_at_ns() != 0 &&
               b.trust_after_suspect_at_ns() != 0;
      },
      std::chrono::milliseconds(8000)))
      << "recovery must propagate to both subscribers";

  a.join();
  b.join();
  EXPECT_FALSE(a.pump_failed());
  EXPECT_FALSE(b.pump_failed());

  auto stats = server.stats();
  EXPECT_EQ(stats.sessions_accepted, 2u);
  EXPECT_GE(stats.events_pushed, 4u);  // >= 2 Suspect + 2 Trust
  EXPECT_EQ(stats.frames_malformed, 0u);
  EXPECT_EQ(stats.slow_evictions, 0u);
  EXPECT_EQ(stats.lease_expiries, 0u);

  revived.reset();
  server.stop();
  service.stop();
}

// A half-open client (network gone, no FIN — here: simply silent) must
// be reclaimed by the lease, its subscriptions released on the shards.
TEST(FdaasServer, SilentSessionExpiresAndReleasesSubscriptions) {
  ShardedMonitorService service({.shards = 2});
  service.start();
  api::FdaasServer server(service, {.lease = ticks_from_ms(600)});
  server.start();

  api::Client client(net::SocketAddress::loopback(server.port()));
  client.subscribe(net::SocketAddress::loopback(45100), 3, "halfopen",
                   {4.0, 1e-3, 4.0});
  service.poll_events();
  ASSERT_EQ(service.view()->entries.size(), 1u);

  // Go silent: no pings, no reads. The server must expire the session.
  ASSERT_TRUE(wait_until(
      [&] { return server.stats().lease_expiries >= 1; },
      std::chrono::milliseconds(5000)));

  auto stats = server.stats();
  EXPECT_EQ(stats.lease_expiries, 1u);
  EXPECT_EQ(stats.sessions_active, 0u);
  EXPECT_EQ(stats.subscriptions_active, 0u);

  // The shard-side subscription is gone too.
  service.poll_events();
  EXPECT_TRUE(service.view()->entries.empty());

  // The client finds out the moment it touches the connection again.
  EXPECT_FALSE(client.pump_for(ticks_from_ms(300)));

  server.stop();
  service.stop();
}

/// Blocking send over a raw non-blocking conn (test-side convenience).
void raw_send(net::TcpConn& conn, const std::vector<std::byte>& frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const auto w = conn.write_some(std::span(frame).subspan(sent));
    ASSERT_NE(w.status, net::TcpConn::IoStatus::kClosed);
    if (w.status == net::TcpConn::IoStatus::kWouldBlock) {
      pollfd pfd{conn.fd(), POLLOUT, 0};
      ::poll(&pfd, 1, 100);
    }
    sent += w.bytes;
  }
}

/// Blocks until one frame decodes from `conn` or `timeout` elapses.
std::optional<api::ControlMessage> raw_read_frame(
    net::TcpConn& conn, api::FrameAssembler& rx,
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (auto body = rx.next()) return api::decode_body(*body);
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    pollfd pfd{conn.fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    std::byte buf[4096];
    const auto r = conn.read_some(buf);
    if (r.status == net::TcpConn::IoStatus::kClosed) return std::nullopt;
    if (r.status == net::TcpConn::IoStatus::kOk) {
      rx.push(std::span<const std::byte>(buf, r.bytes));
    }
  }
}

// A subscriber that stops reading must be evicted the moment its backlog
// exceeds the cap — without delaying a healthy subscriber and without
// ever blocking the API thread or the shards.
TEST(FdaasServer, SlowClientIsEvictedWithoutHurtingHealthyOne) {
  ShardedMonitorService service({.shards = 2});
  service.start();
  // Tiny send budget so backpressure trips deterministically: the socket
  // buffers absorb a few KiB, then the 2 KiB user-space queue overflows
  // and the session is evicted.
  api::FdaasServer server(service,
                          {.max_send_queue_bytes = 2048,
                           .conn_sndbuf_bytes = 4096});
  server.start();

  // The slow client is a raw connection with a shrunken receive buffer
  // (so loopback TCP stops absorbing quickly): it subscribes, reads the
  // ack, then never reads again.
  auto slow = net::TcpConn::connect(net::SocketAddress::loopback(server.port()),
                                    ticks_from_sec(5));
  ASSERT_TRUE(slow.has_value());
  slow->set_recv_buffer(4096);
  raw_send(*slow, api::encode_frame(api::SubscribeRequest{
                      1, net::SocketAddress::loopback(45200), 5, "slow",
                      {4.0, 1e-3, 4.0}}));
  api::FrameAssembler slow_rx;
  const auto ack =
      raw_read_frame(*slow, slow_rx, std::chrono::milliseconds(5000));
  ASSERT_TRUE(ack.has_value());
  const auto* ok = std::get_if<api::SubscribeOk>(&*ack);
  ASSERT_NE(ok, nullptr);
  const std::uint64_t slow_sub = ok->subscription_id;

  // The healthy client keeps pumping on its own thread.
  std::atomic<std::uint64_t> healthy_received{0};
  std::atomic<std::uint64_t> healthy_sub{0};
  std::atomic<bool> healthy_ready{false};
  std::atomic<bool> stop{false};
  std::thread healthy_thread([&] {
    api::Client healthy(net::SocketAddress::loopback(server.port()));
    healthy.set_event_handler([&](const api::EventMsg&) {
      healthy_received.fetch_add(1, std::memory_order_relaxed);
    });
    healthy_sub.store(healthy.subscribe(net::SocketAddress::loopback(45201), 6,
                                        "healthy", {4.0, 1e-3, 4.0}),
                      std::memory_order_release);
    healthy_ready.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      if (!healthy.pump_for(ticks_from_ms(20))) return;
    }
  });
  ASSERT_TRUE(wait_until([&] { return healthy_ready.load(); },
                         std::chrono::milliseconds(5000)));

  // Push events at BOTH subscriptions through the real delivery path,
  // letting the healthy client catch up each round so only the
  // non-reading session builds backlog. Bounded rounds: the slow session
  // must trip the cap long before the budget runs out.
  std::uint64_t healthy_target = 0;
  bool evicted = false;
  int round = 0;
  for (; round < 100 && !evicted; ++round) {
    std::vector<ShardedMonitorService::StatusEvent> batch;
    for (int i = 0; i < 50; ++i) {
      const auto output =
          i % 2 == 0 ? detect::Output::Suspect : detect::Output::Trust;
      batch.push_back({slow_sub, "slow", output, ticks_from_ms(round), 0});
      batch.push_back({healthy_sub.load(std::memory_order_acquire), "healthy",
                       output, ticks_from_ms(round), 0});
      ++healthy_target;
    }
    server.inject_events(std::move(batch));
    ASSERT_TRUE(wait_until(
        [&] { return healthy_received.load(std::memory_order_acquire) >=
                     healthy_target; },
        std::chrono::milliseconds(10000)))
        << "healthy delivery stalled behind the slow session at round "
        << round << " (" << healthy_received.load() << "/" << healthy_target
        << ")";
    evicted = server.stats().slow_evictions >= 1;
  }
  EXPECT_TRUE(evicted) << "slow session never hit the send-queue cap";

  auto stats = server.stats();
  EXPECT_EQ(stats.slow_evictions, 1u);
  EXPECT_EQ(stats.sessions_active, 1u);  // slow gone, healthy alive
  // The slow client's subscription was released on the shards; the
  // healthy one is untouched.
  service.poll_events();
  ASSERT_EQ(service.view()->entries.size(), 1u);
  EXPECT_NE(service.view()->entries[0].subscription, slow_sub);

  // The evicted client observes the close once it drains the buffered
  // events.
  EXPECT_TRUE(wait_until(
      [&] {
        std::byte probe[4096];
        for (;;) {
          const auto r = slow->read_some(probe);
          if (r.status == net::TcpConn::IoStatus::kClosed) return true;
          if (r.status == net::TcpConn::IoStatus::kWouldBlock) return false;
        }
      },
      std::chrono::milliseconds(5000)));

  stop.store(true, std::memory_order_release);
  healthy_thread.join();
  server.stop();
  service.stop();
}

// A poisoned stream (hostile length prefix) must drop the session at
// once and count it; a well-formed garbage body likewise.
TEST(FdaasServer, MalformedFrameDropsSession) {
  ShardedMonitorService service({.shards = 1});
  service.start();
  api::FdaasServer server(service, {});
  server.start();

  auto conn = net::TcpConn::connect(net::SocketAddress::loopback(server.port()),
                                    ticks_from_sec(5));
  ASSERT_TRUE(conn.has_value());

  // Hostile length prefix: 2 GiB body.
  const std::uint8_t poison[] = {0xff, 0xff, 0xff, 0x7f, 0xde, 0xad};
  std::size_t sent = 0;
  const auto bytes = std::as_bytes(std::span(poison));
  while (sent < bytes.size()) {
    const auto w = conn->write_some(bytes.subspan(sent));
    ASSERT_NE(w.status, net::TcpConn::IoStatus::kClosed);
    sent += w.bytes;
  }

  // The server must close the connection (EOF on our side) promptly.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(5000);
  bool closed = false;
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{conn->fd(), POLLIN, 0};
    ::poll(&pfd, 1, 100);
    std::byte buf[256];
    const auto r = conn->read_some(buf);
    closed = r.status == net::TcpConn::IoStatus::kClosed;
  }
  EXPECT_TRUE(closed);

  auto stats = server.stats();
  EXPECT_GE(stats.frames_malformed, 1u);
  EXPECT_EQ(stats.sessions_active, 0u);

  server.stop();
  service.stop();
}

}  // namespace
}  // namespace twfd

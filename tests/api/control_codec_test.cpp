// TWFC control-protocol codec: roundtrips, wire-layout stability, and
// the hostile-input surface (mirrors the TWHD fuzz coverage in
// FailureInjection.WireDecodeSurvives*). The codec is the trust boundary
// of the FDaaS API — decode_body must reject, never crash, never
// over-read, and the FrameAssembler must reassemble bodies from ANY
// chunking of the byte stream while latching corrupt on hostile lengths.

#include "api/control.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace twfd {
namespace {

using namespace twfd::api;

/// encode_frame emits [u32 len][body]; decode_body wants just the body.
std::span<const std::byte> body_of(const std::vector<std::byte>& frame) {
  return std::span<const std::byte>(frame).subspan(4);
}

ControlMessage roundtrip(const ControlMessage& msg) {
  const auto frame = encode_frame(msg);
  const auto decoded = decode_body(body_of(frame));
  EXPECT_TRUE(decoded.has_value());
  return decoded.value_or(PingMsg{});
}

TEST(ControlCodec, RoundtripsEveryMessageType) {
  {
    const SubscribeRequest m{7, net::SocketAddress::parse("10.1.2.3", 4100), 42,
                             "dashboard", {0.8, 1e-3, 4.0}};
    const auto r = roundtrip(m);
    const auto& d = std::get<SubscribeRequest>(r);
    EXPECT_EQ(d.request_id, 7u);
    EXPECT_EQ(d.peer, m.peer);
    EXPECT_EQ(d.sender_id, 42u);
    EXPECT_EQ(d.app, "dashboard");
    EXPECT_DOUBLE_EQ(d.qos.td_upper_s, 0.8);
    EXPECT_DOUBLE_EQ(d.qos.tmr_upper_per_s, 1e-3);
    EXPECT_DOUBLE_EQ(d.qos.tm_upper_s, 4.0);
  }
  {
    const auto r = roundtrip(UnsubscribeRequest{8, 99});
    const auto& d = std::get<UnsubscribeRequest>(r);
    EXPECT_EQ(d.request_id, 8u);
    EXPECT_EQ(d.subscription_id, 99u);
  }
  {
    const auto r = roundtrip(SnapshotRequest{9});
    EXPECT_EQ(std::get<SnapshotRequest>(r).request_id, 9u);
  }
  {
    const auto r = roundtrip(PingMsg{0x1122334455667788ull});
    EXPECT_EQ(std::get<PingMsg>(r).nonce, 0x1122334455667788ull);
  }
  {
    const auto r = roundtrip(SubscribeOk{7, 1001});
    EXPECT_EQ(std::get<SubscribeOk>(r).subscription_id, 1001u);
  }
  {
    const auto r = roundtrip(UnsubscribeOk{8});
    EXPECT_EQ(std::get<UnsubscribeOk>(r).request_id, 8u);
  }
  {
    SnapshotReply m{9, {{1001, detect::Output::Suspect, ticks_from_sec(3)},
                        {1002, detect::Output::Trust, 0}}};
    const auto r = roundtrip(m);
    const auto& d = std::get<SnapshotReply>(r);
    ASSERT_EQ(d.entries.size(), 2u);
    EXPECT_EQ(d.entries[0].subscription_id, 1001u);
    EXPECT_EQ(d.entries[0].output, detect::Output::Suspect);
    EXPECT_EQ(d.entries[0].since, ticks_from_sec(3));
    EXPECT_EQ(d.entries[1].output, detect::Output::Trust);
  }
  {
    const auto r = roundtrip(PongMsg{5, 10'000});
    EXPECT_EQ(std::get<PongMsg>(r).lease_ms, 10'000u);
  }
  {
    const auto r = roundtrip(EventMsg{1001, detect::Output::Suspect,
                                      ticks_from_ms(1500)});
    const auto& d = std::get<EventMsg>(r);
    EXPECT_EQ(d.subscription_id, 1001u);
    EXPECT_EQ(d.output, detect::Output::Suspect);
    EXPECT_EQ(d.when, ticks_from_ms(1500));
  }
  {
    const auto r = roundtrip(ErrorMsg{7, ErrorCode::kInfeasibleQos, "no margin"});
    const auto& d = std::get<ErrorMsg>(r);
    EXPECT_EQ(d.code, ErrorCode::kInfeasibleQos);
    EXPECT_EQ(d.message, "no margin");
  }
}

// The wire layout is a published contract (docs/protocol.md): byte-exact
// golden frame, so an accidental field reorder or width change fails
// loudly instead of silently breaking cross-version clients.
TEST(ControlCodec, PingFrameLayoutIsStable) {
  const auto frame = encode_frame(PingMsg{0x1122334455667788ull});
  const std::uint8_t expected[] = {
      0x0e, 0x00, 0x00, 0x00,        // length prefix: 14-byte body, LE
      0x43, 0x46, 0x57, 0x54,        // magic 0x54574643 "TWFC", LE
      0x01,                          // version
      0x07,                          // type: Ping
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // nonce, LE
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

TEST(ControlCodec, RejectsBadMagicVersionAndType) {
  const auto frame = encode_frame(PingMsg{1});
  auto body = std::vector<std::byte>(body_of(frame).begin(), body_of(frame).end());
  {
    auto bad = body;
    bad[0] ^= std::byte{0xff};  // magic
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = body;
    bad[4] = std::byte{2};  // unknown version
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = body;
    bad[5] = std::byte{0};  // type 0 is invalid
    EXPECT_FALSE(decode_body(bad).has_value());
    bad[5] = std::byte{11};  // one past kTypeError
    EXPECT_FALSE(decode_body(bad).has_value());
  }
}

TEST(ControlCodec, RejectsTruncationAndTrailingGarbage) {
  const auto frame = encode_frame(
      SubscribeRequest{1, net::SocketAddress::loopback(9), 2, "a", {1, 1, 1}});
  auto body = std::vector<std::byte>(body_of(frame).begin(), body_of(frame).end());
  // Every proper prefix must be rejected (no over-read, no partial decode).
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(decode_body(std::span(body).first(len)).has_value())
        << "prefix of " << len << " bytes decoded";
  }
  // Exact length decodes; one trailing byte must reject.
  EXPECT_TRUE(decode_body(body).has_value());
  body.push_back(std::byte{0});
  EXPECT_FALSE(decode_body(body).has_value());
}

TEST(ControlCodec, RejectsNonFiniteQosAndBadEnums) {
  {
    SubscribeRequest m{1, net::SocketAddress::loopback(9), 2, "a", {1, 1, 1}};
    m.qos.td_upper_s = std::numeric_limits<double>::infinity();
    const auto frame = encode_frame(m);
    EXPECT_FALSE(decode_body(body_of(frame)).has_value());
  }
  {
    const auto frame = encode_frame(EventMsg{1, detect::Output::Trust, 0});
    auto body = std::vector<std::byte>(body_of(frame).begin(),
                                       body_of(frame).end());
    body[6 + 8] = std::byte{7};  // output byte past Suspect
    EXPECT_FALSE(decode_body(body).has_value());
  }
  {
    const auto frame = encode_frame(ErrorMsg{1, ErrorCode::kInternal, "x"});
    auto body = std::vector<std::byte>(body_of(frame).begin(),
                                       body_of(frame).end());
    body[6 + 8] = std::byte{0};  // error code 0 out of range
    EXPECT_FALSE(decode_body(body).has_value());
  }
}

TEST(ControlCodec, DecodeSurvivesRandomBytes) {
  Xoshiro256 rng(201);
  std::size_t decoded = 0;
  for (int i = 0; i < 50'000; ++i) {
    const std::size_t len = rng.uniform_int(64);
    std::vector<std::byte> data(len);
    for (auto& b : data) b = static_cast<std::byte>(rng.uniform_int(256));
    if (decode_body(data).has_value()) ++decoded;
  }
  // A random magic+version+type match is a ~2^-40 event per try.
  EXPECT_EQ(decoded, 0u);
}

TEST(ControlCodec, DecodeSurvivesBitFlips) {
  const auto frame = encode_frame(SubscribeRequest{
      3, net::SocketAddress::parse("192.168.1.50", 4100), 11, "svc",
      {0.8, 1e-3, 4.0}});
  const auto good =
      std::vector<std::byte>(body_of(frame).begin(), body_of(frame).end());
  Xoshiro256 rng(202);
  for (int i = 0; i < 10'000; ++i) {
    auto flipped = good;
    const std::size_t byte = rng.uniform_int(flipped.size());
    flipped[byte] ^= static_cast<std::byte>(1u << rng.uniform_int(8));
    const auto msg = decode_body(flipped);  // must not crash
    if (msg.has_value()) {
      // Flips in payload fields decode; the QoS doubles must stay finite
      // (the NaN/Inf bit patterns are rejected explicitly).
      if (const auto* sub = std::get_if<SubscribeRequest>(&*msg)) {
        EXPECT_TRUE(std::isfinite(sub->qos.td_upper_s));
        EXPECT_TRUE(std::isfinite(sub->qos.tmr_upper_per_s));
        EXPECT_TRUE(std::isfinite(sub->qos.tm_upper_s));
        EXPECT_LE(sub->app.size(), kMaxAppName);
      }
    }
  }
}

// Property: ANY chunking of a frame sequence reassembles to the same
// bodies. TCP is free to deliver one byte at a time or everything at once.
TEST(ControlCodec, AssemblerReassemblesUnderArbitrarySplits) {
  std::vector<std::byte> stream;
  std::vector<std::vector<std::byte>> expected;
  for (int i = 0; i < 32; ++i) {
    ControlMessage msg;
    switch (i % 4) {
      case 0: msg = PingMsg{static_cast<std::uint64_t>(i)}; break;
      case 1: msg = EventMsg{static_cast<std::uint64_t>(i),
                             detect::Output::Suspect, ticks_from_ms(i)}; break;
      case 2: msg = SubscribeRequest{static_cast<std::uint64_t>(i),
                                     net::SocketAddress::loopback(9), 1,
                                     std::string(static_cast<std::size_t>(i), 'x'),
                                     {1, 1, 1}}; break;
      default: msg = ErrorMsg{static_cast<std::uint64_t>(i),
                              ErrorCode::kInternal, "boom"}; break;
    }
    const auto frame = encode_frame(msg);
    expected.emplace_back(body_of(frame).begin(), body_of(frame).end());
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  Xoshiro256 rng(203);
  for (int trial = 0; trial < 200; ++trial) {
    FrameAssembler rx;
    std::vector<std::vector<std::byte>> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          std::min(stream.size() - pos, 1 + rng.uniform_int(37));
      rx.push(std::span(stream).subspan(pos, chunk));
      pos += chunk;
      while (auto body = rx.next()) got.push_back(std::move(*body));
    }
    EXPECT_FALSE(rx.corrupt());
    EXPECT_EQ(rx.buffered(), 0u);
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(got, expected);
  }
}

TEST(ControlCodec, AssemblerLatchesCorruptOnHostileLength) {
  FrameAssembler rx;
  // Length prefix far above kMaxFrameBody: a poisoned stream.
  const std::uint8_t hostile[] = {0xff, 0xff, 0xff, 0x7f, 0x00, 0x00};
  rx.push(std::as_bytes(std::span(hostile)));
  EXPECT_FALSE(rx.next().has_value());
  EXPECT_TRUE(rx.corrupt());
  // Once corrupt, further bytes are ignored and nothing ever decodes.
  const auto frame = encode_frame(PingMsg{1});
  rx.push(frame);
  EXPECT_FALSE(rx.next().has_value());
  EXPECT_TRUE(rx.corrupt());
}

TEST(ControlCodec, AssemblerHandlesEmptyAndZeroLengthBodies) {
  FrameAssembler rx;
  rx.push({});
  EXPECT_FALSE(rx.next().has_value());
  // A zero-length body is well-framed (decode_body then rejects it).
  const std::uint8_t zero[] = {0x00, 0x00, 0x00, 0x00};
  rx.push(std::as_bytes(std::span(zero)));
  const auto body = rx.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_TRUE(body->empty());
  EXPECT_FALSE(decode_body(*body).has_value());
}

}  // namespace
}  // namespace twfd

// TWFC control-protocol codec: roundtrips, wire-layout stability, and
// the hostile-input surface (mirrors the TWHD fuzz coverage in
// FailureInjection.WireDecodeSurvives*). The codec is the trust boundary
// of the FDaaS API — decode_body must reject, never crash, never
// over-read, and the FrameAssembler must reassemble bodies from ANY
// chunking of the byte stream while latching corrupt on hostile lengths.

#include "api/control.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace twfd {
namespace {

using namespace twfd::api;

/// encode_frame emits [u32 len][body]; decode_body wants just the body.
std::span<const std::byte> body_of(const std::vector<std::byte>& frame) {
  return std::span<const std::byte>(frame).subspan(4);
}

ControlMessage roundtrip(const ControlMessage& msg) {
  const auto frame = encode_frame(msg);
  const auto decoded = decode_body(body_of(frame));
  EXPECT_TRUE(decoded.has_value());
  return decoded.value_or(PingMsg{});
}

TEST(ControlCodec, RoundtripsEveryMessageType) {
  {
    const SubscribeRequest m{7, net::SocketAddress::parse("10.1.2.3", 4100), 42,
                             "dashboard", {0.8, 1e-3, 4.0}};
    const auto r = roundtrip(m);
    const auto& d = std::get<SubscribeRequest>(r);
    EXPECT_EQ(d.request_id, 7u);
    EXPECT_EQ(d.peer, m.peer);
    EXPECT_EQ(d.sender_id, 42u);
    EXPECT_EQ(d.app, "dashboard");
    EXPECT_DOUBLE_EQ(d.qos.td_upper_s, 0.8);
    EXPECT_DOUBLE_EQ(d.qos.tmr_upper_per_s, 1e-3);
    EXPECT_DOUBLE_EQ(d.qos.tm_upper_s, 4.0);
  }
  {
    const auto r = roundtrip(UnsubscribeRequest{8, 99});
    const auto& d = std::get<UnsubscribeRequest>(r);
    EXPECT_EQ(d.request_id, 8u);
    EXPECT_EQ(d.subscription_id, 99u);
  }
  {
    const auto r = roundtrip(SnapshotRequest{9});
    EXPECT_EQ(std::get<SnapshotRequest>(r).request_id, 9u);
  }
  {
    const auto r = roundtrip(PingMsg{0x1122334455667788ull});
    EXPECT_EQ(std::get<PingMsg>(r).nonce, 0x1122334455667788ull);
  }
  {
    const auto r = roundtrip(SubscribeOk{7, 1001});
    EXPECT_EQ(std::get<SubscribeOk>(r).subscription_id, 1001u);
  }
  {
    const auto r = roundtrip(UnsubscribeOk{8});
    EXPECT_EQ(std::get<UnsubscribeOk>(r).request_id, 8u);
  }
  {
    SnapshotReply m{9, {{1001, detect::Output::Suspect, ticks_from_sec(3)},
                        {1002, detect::Output::Trust, 0}}};
    const auto r = roundtrip(m);
    const auto& d = std::get<SnapshotReply>(r);
    ASSERT_EQ(d.entries.size(), 2u);
    EXPECT_EQ(d.entries[0].subscription_id, 1001u);
    EXPECT_EQ(d.entries[0].output, detect::Output::Suspect);
    EXPECT_EQ(d.entries[0].since, ticks_from_sec(3));
    EXPECT_EQ(d.entries[1].output, detect::Output::Trust);
  }
  {
    const auto r = roundtrip(PongMsg{5, 10'000});
    EXPECT_EQ(std::get<PongMsg>(r).lease_ms, 10'000u);
  }
  {
    const auto r = roundtrip(EventMsg{1001, detect::Output::Suspect,
                                      ticks_from_ms(1500)});
    const auto& d = std::get<EventMsg>(r);
    EXPECT_EQ(d.subscription_id, 1001u);
    EXPECT_EQ(d.output, detect::Output::Suspect);
    EXPECT_EQ(d.when, ticks_from_ms(1500));
  }
  {
    const auto r = roundtrip(ErrorMsg{7, ErrorCode::kInfeasibleQos, "no margin"});
    const auto& d = std::get<ErrorMsg>(r);
    EXPECT_EQ(d.code, ErrorCode::kInfeasibleQos);
    EXPECT_EQ(d.message, "no margin");
  }
}

// The wire layout is a published contract (docs/protocol.md): byte-exact
// golden frame, so an accidental field reorder or width change fails
// loudly instead of silently breaking cross-version clients.
TEST(ControlCodec, PingFrameLayoutIsStable) {
  const auto frame = encode_frame(PingMsg{0x1122334455667788ull});
  const std::uint8_t expected[] = {
      0x0e, 0x00, 0x00, 0x00,        // length prefix: 14-byte body, LE
      0x43, 0x46, 0x57, 0x54,        // magic 0x54574643 "TWFC", LE
      0x01,                          // version
      0x07,                          // type: Ping
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // nonce, LE
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

TEST(ControlCodec, RejectsBadMagicVersionAndType) {
  const auto frame = encode_frame(PingMsg{1});
  auto body = std::vector<std::byte>(body_of(frame).begin(), body_of(frame).end());
  {
    auto bad = body;
    bad[0] ^= std::byte{0xff};  // magic
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = body;
    bad[4] = std::byte{2};  // unknown version
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = body;
    bad[5] = std::byte{0};  // type 0 is invalid
    EXPECT_FALSE(decode_body(bad).has_value());
    bad[5] = std::byte{13};  // one past kTypeDelegate
    EXPECT_FALSE(decode_body(bad).has_value());
  }
}

TEST(ControlCodec, RoundtripsDigestAndDelegate) {
  {
    DigestMsg m;
    m.node_id = 0xfeedfacecafebeefull;
    m.digest_seq = 41;
    m.flags = DigestMsg::kFlagSnapshot;
    // Keys strictly ascend; `when` stamps go BACKWARDS between entries
    // (different origin leaves), exercising the zigzag delta path.
    m.entries = {{100, 7, detect::Output::Trust, ticks_from_ms(500)},
                 {101, 1, detect::Output::Suspect, ticks_from_ms(200)},
                 {5'000'000'000ull, 3, detect::Output::Trust, -ticks_from_ms(9)}};
    const auto r = roundtrip(m);
    const auto& d = std::get<DigestMsg>(r);
    EXPECT_EQ(d.node_id, m.node_id);
    EXPECT_EQ(d.digest_seq, 41u);
    EXPECT_EQ(d.flags, DigestMsg::kFlagSnapshot);
    ASSERT_EQ(d.entries.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(d.entries[i].peer_key, m.entries[i].peer_key) << i;
      EXPECT_EQ(d.entries[i].seq, m.entries[i].seq) << i;
      EXPECT_EQ(d.entries[i].output, m.entries[i].output) << i;
      EXPECT_EQ(d.entries[i].when, m.entries[i].when) << i;
    }
  }
  {
    // An empty delta digest is legal (pure liveness of the link).
    const auto r = roundtrip(DigestMsg{9, 1, 0, {}});
    EXPECT_TRUE(std::get<DigestMsg>(r).entries.empty());
  }
  {
    DelegateMsg m{2, 7, {{0, 99}, {200, 200}, {1000, ~0ull}}};
    const auto r = roundtrip(m);
    const auto& d = std::get<DelegateMsg>(r);
    EXPECT_EQ(d.node_id, 2u);
    EXPECT_EQ(d.delegation_seq, 7u);
    ASSERT_EQ(d.ranges.size(), 3u);
    EXPECT_EQ(d.ranges[1].lo, 200u);
    EXPECT_EQ(d.ranges[1].hi, 200u);
    EXPECT_EQ(d.ranges[2].hi, ~0ull);
  }
  {
    // Empty ranges = "own everything" — the documented reset form.
    const auto r = roundtrip(DelegateMsg{2, 8, {}});
    EXPECT_TRUE(std::get<DelegateMsg>(r).ranges.empty());
  }
}

// Golden Digest frame (docs/protocol.md): first entry absolute, later
// entries delta-coded — varint key deltas, zigzag varint `when` deltas.
TEST(ControlCodec, DigestFrameLayoutIsStable) {
  DigestMsg m;
  m.node_id = 5;
  m.digest_seq = 2;
  m.flags = DigestMsg::kFlagSnapshot;
  m.entries = {{100, 1, detect::Output::Trust, 1000},
               {260, 9, detect::Output::Suspect, 900}};
  const auto frame = encode_frame(ControlMessage{m});
  const std::uint8_t expected[] = {
      0x26, 0x00, 0x00, 0x00,        // length prefix: 38-byte body, LE
      0x43, 0x46, 0x57, 0x54,        // magic "TWFC", LE
      0x01,                          // version
      0x0b,                          // type: Digest
      0x05, 0, 0, 0, 0, 0, 0, 0,     // node_id, LE
      0x02, 0, 0, 0, 0, 0, 0, 0,     // digest_seq, LE
      0x01,                          // flags: snapshot
      0x02, 0x00, 0x00, 0x00,        // entry count, LE
      0x64,                          // key 100, absolute varint
      0x01,                          // seq 1
      0x00,                          // output: Trust
      0xd0, 0x0f,                    // when 1000 -> zigzag 2000
      0xa0, 0x01,                    // key delta 160 (-> 260)
      0x09,                          // seq 9
      0x01,                          // output: Suspect
      0xc7, 0x01,                    // when delta -100 -> zigzag 199
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

TEST(ControlCodec, DelegateFrameLayoutIsStable) {
  const auto frame =
      encode_frame(ControlMessage{DelegateMsg{2, 7, {{1, 10}, {20, 30}}}});
  const std::uint8_t expected[] = {
      0x3a, 0x00, 0x00, 0x00,        // length prefix: 58-byte body, LE
      0x43, 0x46, 0x57, 0x54,        // magic "TWFC", LE
      0x01,                          // version
      0x0c,                          // type: Delegate
      0x02, 0, 0, 0, 0, 0, 0, 0,     // node_id, LE
      0x07, 0, 0, 0, 0, 0, 0, 0,     // delegation_seq, LE
      0x02, 0x00, 0x00, 0x00,        // range count, LE
      0x01, 0, 0, 0, 0, 0, 0, 0,     // [1,
      0x0a, 0, 0, 0, 0, 0, 0, 0,     //     10]
      0x14, 0, 0, 0, 0, 0, 0, 0,     // [20,
      0x1e, 0, 0, 0, 0, 0, 0, 0,     //     30]
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

// Hand-built hostile Digest bodies: the decoder must enforce every
// documented invariant, not just "parses".
TEST(ControlCodec, RejectsHostileDigest) {
  // A minimal well-formed 2-entry digest, all varints one byte:
  // keys 5 and 6, seqs 1, when stamps 0.
  const std::uint8_t good[] = {
      0x43, 0x46, 0x57, 0x54, 0x01, 0x0b,  // magic, version, type
      0x09, 0, 0, 0, 0, 0, 0, 0,           // node_id 9
      0x01, 0, 0, 0, 0, 0, 0, 0,           // digest_seq 1
      0x00,                                // flags
      0x02, 0x00, 0x00, 0x00,              // count 2
      0x05, 0x01, 0x00, 0x00,              // entry 0: key 5
      0x01, 0x01, 0x01, 0x00,              // entry 1: key delta 1 -> 6
  };
  auto as_vec = [](std::span<const std::uint8_t> s) {
    std::vector<std::byte> v(s.size());
    std::memcpy(v.data(), s.data(), s.size());
    return v;
  };
  const auto base = as_vec(good);
  ASSERT_TRUE(decode_body(base).has_value()) << "baseline must be valid";

  {
    auto bad = base;
    bad[22] = std::byte{0x02};  // undefined flag bit
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = base;
    bad[31] = std::byte{0x00};  // key delta 0: duplicate key
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = base;
    bad[29] = std::byte{0x07};  // output byte past Suspect
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    // count claims 2047 entries but only 8 payload bytes remain: the
    // 4-bytes-per-entry lower bound must reject before any reserve.
    auto bad = base;
    bad[23] = std::byte{0xff};
    bad[24] = std::byte{0x07};
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = base;
    bad[24] = std::byte{0x08};  // count 2050 > kMaxDigestEntries
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    // First key = 2^64-1 (10-byte varint), then delta 1: peer_key wraps.
    const std::uint8_t wrap[] = {
        0x43, 0x46, 0x57, 0x54, 0x01, 0x0b,
        0x09, 0, 0, 0, 0, 0, 0, 0,
        0x01, 0, 0, 0, 0, 0, 0, 0,
        0x00,
        0x02, 0x00, 0x00, 0x00,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,  // key ~0
        0x01, 0x00, 0x00,                    // seq 1, Trust, when 0
        0x01, 0x01, 0x01, 0x00,              // delta 1: wraps past ~0
    };
    EXPECT_FALSE(decode_body(as_vec(wrap)).has_value());
  }
  // Every proper prefix must be rejected — varint boundaries included.
  for (std::size_t len = 0; len < base.size(); ++len) {
    EXPECT_FALSE(decode_body(std::span(base).first(len)).has_value())
        << "digest prefix of " << len << " bytes decoded";
  }
  {
    auto bad = base;
    bad.push_back(std::byte{0x00});  // trailing garbage
    EXPECT_FALSE(decode_body(bad).has_value());
  }
}

TEST(ControlCodec, RejectsHostileDelegate) {
  const auto frame =
      encode_frame(ControlMessage{DelegateMsg{2, 7, {{1, 10}, {20, 30}}}});
  const auto base =
      std::vector<std::byte>(body_of(frame).begin(), body_of(frame).end());
  ASSERT_TRUE(decode_body(base).has_value());

  {
    auto bad = base;
    bad[26] = std::byte{0x0b};  // range 0 becomes [11, 10]: lo > hi
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = base;
    bad[42] = std::byte{0x05};  // range 1 becomes [5, 30]: overlaps [1, 10]
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  {
    auto bad = base;
    bad[22] = std::byte{0xff};  // count 511 but nowhere near 511*16 bytes
    bad[23] = std::byte{0x01};
    EXPECT_FALSE(decode_body(bad).has_value());
  }
  for (std::size_t len = 0; len < base.size(); ++len) {
    EXPECT_FALSE(decode_body(std::span(base).first(len)).has_value())
        << "delegate prefix of " << len << " bytes decoded";
  }
}

// Bit-flip fuzz over a Digest body: whatever decodes must still satisfy
// the decoder's published invariants (ascending keys, legal flags).
TEST(ControlCodec, DigestDecodeSurvivesBitFlips) {
  DigestMsg m;
  m.node_id = 3;
  m.digest_seq = 12;
  m.entries = {{10, 1, detect::Output::Trust, ticks_from_ms(1)},
               {40, 2, detect::Output::Suspect, ticks_from_ms(2)},
               {41, 3, detect::Output::Trust, ticks_from_ms(3)},
               {500, 1, detect::Output::Suspect, 0}};
  const auto frame = encode_frame(ControlMessage{m});
  const auto good =
      std::vector<std::byte>(body_of(frame).begin(), body_of(frame).end());
  Xoshiro256 rng(204);
  for (int i = 0; i < 10'000; ++i) {
    auto flipped = good;
    const std::size_t byte = rng.uniform_int(flipped.size());
    flipped[byte] ^= static_cast<std::byte>(1u << rng.uniform_int(8));
    const auto msg = decode_body(flipped);  // must not crash
    if (!msg.has_value()) continue;
    if (const auto* d = std::get_if<DigestMsg>(&*msg)) {
      EXPECT_EQ(d->flags & ~DigestMsg::kFlagSnapshot, 0);
      EXPECT_LE(d->entries.size(), kMaxDigestEntries);
      for (std::size_t e = 1; e < d->entries.size(); ++e) {
        EXPECT_GT(d->entries[e].peer_key, d->entries[e - 1].peer_key);
      }
    }
  }
}

TEST(ControlCodec, RejectsTruncationAndTrailingGarbage) {
  const auto frame = encode_frame(
      SubscribeRequest{1, net::SocketAddress::loopback(9), 2, "a", {1, 1, 1}});
  auto body = std::vector<std::byte>(body_of(frame).begin(), body_of(frame).end());
  // Every proper prefix must be rejected (no over-read, no partial decode).
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(decode_body(std::span(body).first(len)).has_value())
        << "prefix of " << len << " bytes decoded";
  }
  // Exact length decodes; one trailing byte must reject.
  EXPECT_TRUE(decode_body(body).has_value());
  body.push_back(std::byte{0});
  EXPECT_FALSE(decode_body(body).has_value());
}

TEST(ControlCodec, RejectsNonFiniteQosAndBadEnums) {
  {
    SubscribeRequest m{1, net::SocketAddress::loopback(9), 2, "a", {1, 1, 1}};
    m.qos.td_upper_s = std::numeric_limits<double>::infinity();
    const auto frame = encode_frame(m);
    EXPECT_FALSE(decode_body(body_of(frame)).has_value());
  }
  {
    const auto frame = encode_frame(EventMsg{1, detect::Output::Trust, 0});
    auto body = std::vector<std::byte>(body_of(frame).begin(),
                                       body_of(frame).end());
    body[6 + 8] = std::byte{7};  // output byte past Suspect
    EXPECT_FALSE(decode_body(body).has_value());
  }
  {
    const auto frame = encode_frame(ErrorMsg{1, ErrorCode::kInternal, "x"});
    auto body = std::vector<std::byte>(body_of(frame).begin(),
                                       body_of(frame).end());
    body[6 + 8] = std::byte{0};  // error code 0 out of range
    EXPECT_FALSE(decode_body(body).has_value());
  }
}

TEST(ControlCodec, DecodeSurvivesRandomBytes) {
  Xoshiro256 rng(201);
  std::size_t decoded = 0;
  for (int i = 0; i < 50'000; ++i) {
    const std::size_t len = rng.uniform_int(64);
    std::vector<std::byte> data(len);
    for (auto& b : data) b = static_cast<std::byte>(rng.uniform_int(256));
    if (decode_body(data).has_value()) ++decoded;
  }
  // A random magic+version+type match is a ~2^-40 event per try.
  EXPECT_EQ(decoded, 0u);
}

TEST(ControlCodec, DecodeSurvivesBitFlips) {
  const auto frame = encode_frame(SubscribeRequest{
      3, net::SocketAddress::parse("192.168.1.50", 4100), 11, "svc",
      {0.8, 1e-3, 4.0}});
  const auto good =
      std::vector<std::byte>(body_of(frame).begin(), body_of(frame).end());
  Xoshiro256 rng(202);
  for (int i = 0; i < 10'000; ++i) {
    auto flipped = good;
    const std::size_t byte = rng.uniform_int(flipped.size());
    flipped[byte] ^= static_cast<std::byte>(1u << rng.uniform_int(8));
    const auto msg = decode_body(flipped);  // must not crash
    if (msg.has_value()) {
      // Flips in payload fields decode; the QoS doubles must stay finite
      // (the NaN/Inf bit patterns are rejected explicitly).
      if (const auto* sub = std::get_if<SubscribeRequest>(&*msg)) {
        EXPECT_TRUE(std::isfinite(sub->qos.td_upper_s));
        EXPECT_TRUE(std::isfinite(sub->qos.tmr_upper_per_s));
        EXPECT_TRUE(std::isfinite(sub->qos.tm_upper_s));
        EXPECT_LE(sub->app.size(), kMaxAppName);
      }
    }
  }
}

// Property: ANY chunking of a frame sequence reassembles to the same
// bodies. TCP is free to deliver one byte at a time or everything at once.
TEST(ControlCodec, AssemblerReassemblesUnderArbitrarySplits) {
  std::vector<std::byte> stream;
  std::vector<std::vector<std::byte>> expected;
  for (int i = 0; i < 32; ++i) {
    ControlMessage msg;
    switch (i % 6) {
      case 0: msg = PingMsg{static_cast<std::uint64_t>(i)}; break;
      case 1: msg = EventMsg{static_cast<std::uint64_t>(i),
                             detect::Output::Suspect, ticks_from_ms(i)}; break;
      case 2: msg = SubscribeRequest{static_cast<std::uint64_t>(i),
                                     net::SocketAddress::loopback(9), 1,
                                     std::string(static_cast<std::size_t>(i), 'x'),
                                     {1, 1, 1}}; break;
      case 3: msg = DigestMsg{static_cast<std::uint64_t>(i), 1, 0,
                              {{10, 1, detect::Output::Trust, ticks_from_ms(i)},
                               {20, 2, detect::Output::Suspect, 0}}}; break;
      case 4: msg = DelegateMsg{static_cast<std::uint64_t>(i), 1,
                                {{0, static_cast<std::uint64_t>(i) + 1}}}; break;
      default: msg = ErrorMsg{static_cast<std::uint64_t>(i),
                              ErrorCode::kInternal, "boom"}; break;
    }
    const auto frame = encode_frame(msg);
    expected.emplace_back(body_of(frame).begin(), body_of(frame).end());
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  Xoshiro256 rng(203);
  for (int trial = 0; trial < 200; ++trial) {
    FrameAssembler rx;
    std::vector<std::vector<std::byte>> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          std::min(stream.size() - pos, 1 + rng.uniform_int(37));
      rx.push(std::span(stream).subspan(pos, chunk));
      pos += chunk;
      while (auto body = rx.next()) got.push_back(std::move(*body));
    }
    EXPECT_FALSE(rx.corrupt());
    EXPECT_EQ(rx.buffered(), 0u);
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(got, expected);
  }
}

TEST(ControlCodec, AssemblerLatchesCorruptOnHostileLength) {
  FrameAssembler rx;
  // Length prefix far above kMaxFrameBody: a poisoned stream.
  const std::uint8_t hostile[] = {0xff, 0xff, 0xff, 0x7f, 0x00, 0x00};
  rx.push(std::as_bytes(std::span(hostile)));
  EXPECT_FALSE(rx.next().has_value());
  EXPECT_TRUE(rx.corrupt());
  // Once corrupt, further bytes are ignored and nothing ever decodes.
  const auto frame = encode_frame(PingMsg{1});
  rx.push(frame);
  EXPECT_FALSE(rx.next().has_value());
  EXPECT_TRUE(rx.corrupt());
}

TEST(ControlCodec, AssemblerHandlesEmptyAndZeroLengthBodies) {
  FrameAssembler rx;
  rx.push({});
  EXPECT_FALSE(rx.next().has_value());
  // A zero-length body is well-framed (decode_body then rejects it).
  const std::uint8_t zero[] = {0x00, 0x00, 0x00, 0x00};
  rx.push(std::as_bytes(std::span(zero)));
  const auto body = rx.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_TRUE(body->empty());
  EXPECT_FALSE(decode_body(*body).has_value());
}

}  // namespace
}  // namespace twfd

// Fleet config parser: the happy path, every default, and the reject
// surface (the file is hand-edited on real deployments — a typo must
// fail loudly with a line number, never half-apply).

#include "supervise/fleet_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace twfd::supervise {
namespace {

TEST(FleetConfig, ParsesFullSpec) {
  const auto config = parse_fleet_config(R"(
# the fleet
[service monitor]
exec = /usr/bin/twfd_monitor --port 4100 --sender-id 7
auto_restart = true
grace_ms = 1500
heartbeat_timeout_ms = 900
start_timeout_ms = 3000
backoff_min_ms = 50
backoff_max_ms = 800
backoff_reset_ms = 5000
fatal_exit_codes = 2, 78
stdout_log = /tmp/monitor.log

[service fdaas]
exec = /usr/bin/twfd_fdaasd
)");
  ASSERT_EQ(config.services.size(), 2u);
  const ServiceSpec* m = config.find("monitor");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->argv.size(), 5u);
  EXPECT_EQ(m->argv[0], "/usr/bin/twfd_monitor");
  EXPECT_EQ(m->argv[4], "7");
  EXPECT_TRUE(m->auto_restart);
  EXPECT_EQ(m->grace, ticks_from_ms(1500));
  EXPECT_EQ(m->heartbeat_timeout, ticks_from_ms(900));
  EXPECT_EQ(m->start_timeout, ticks_from_ms(3000));
  EXPECT_EQ(m->backoff_min, ticks_from_ms(50));
  EXPECT_EQ(m->backoff_max, ticks_from_ms(800));
  EXPECT_EQ(m->backoff_reset, ticks_from_ms(5000));
  EXPECT_EQ(m->fatal_exit_codes, (std::set<int>{2, 78}));
  EXPECT_EQ(m->stdout_log, "/tmp/monitor.log");

  const ServiceSpec* f = config.find("fdaas");
  ASSERT_NE(f, nullptr);
  // Defaults hold where keys are absent.
  EXPECT_EQ(f->heartbeat_timeout, 0);
  EXPECT_EQ(f->grace, ticks_from_ms(2000));
  EXPECT_EQ(f->fatal_exit_codes, (std::set<int>{2, 64, 78, 126, 127}));
  EXPECT_TRUE(f->stdout_log.empty());
}

void expect_reject(const std::string& text, const char* needle) {
  try {
    (void)parse_fleet_config(text);
    FAIL() << "accepted: " << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error '" << e.what() << "' missing '" << needle << "'";
  }
}

TEST(FleetConfig, RejectsMalformedInput) {
  expect_reject("", "no [service]");
  expect_reject("[service a]\n", "no exec");
  expect_reject("exec = /bin/true\n", "outside any [service]");
  expect_reject("[service a]\nexec = /bin/true\n[service a]\nexec = /bin/true\n",
                "duplicate");
  expect_reject("[service a]\nexec = /bin/true\nbogus_key = 1\n", "unknown key");
  expect_reject("[service a]\nexec = /bin/true\ngrace_ms = fast\n", "number");
  expect_reject("[service a]\nexec = /bin/true\nauto_restart = maybe\n", "boolean");
  expect_reject("[service a]\nexec = /bin/true\nfatal_exit_codes = 300\n", "0..255");
  expect_reject("[service a]\nexec =\n", "exec needs a command");
  expect_reject("[service a]\nexec = /bin/true\nbackoff_min_ms = 0\n", "backoff");
  expect_reject(
      "[service a]\nexec = /bin/true\nbackoff_min_ms = 100\nbackoff_max_ms = 50\n",
      "backoff");
  expect_reject("[widgets]\nexec = /bin/true\n", "[service <name>]");
  expect_reject("[servicefoo]\nexec = /bin/true\n", "[service <name>]");
  expect_reject("[service a\nexec = /bin/true\n", "unterminated");
  expect_reject("[service a]\nnot a kv line\n", "key = value");
}

TEST(FleetConfig, ErrorsNameTheLine) {
  try {
    (void)parse_fleet_config("[service a]\nexec = /bin/true\nnope = 1\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace twfd::supervise

// The zero-verdict-loss rolling restart, end to end (CTest label
// `chaos`): a real twfd_fdaasd child under a real supervise::Supervisor,
// crash-persisting its subscription registry to a snapshot file, watched
// by an in-test UDP beacon and one ReconnectingClient.
//
// Acceptance scenario (ISSUE 10):
//   * kill -9 the daemon mid-heartbeat-burst, three times: the
//     supervisor respawns it, the snapshot re-seeds the registry with
//     the persisted Trust verdict, the reconnecting client reclaims its
//     subscription — and observes NO spurious Suspect/Trust transition.
//   * crash the BEACON during a daemon outage: the net Suspect
//     transition that materialised across the crash window must reach
//     the client within its detection bound of the daemon coming back.
//   * revive the beacon at its old address: the recovery Trust arrives.
//   * SIGTERM the fleet: the daemon drains and exits 0 (graceful
//     shutdown), flushing a final snapshot.
//
// A connection/process loss may DELAY a verdict; it must never lose one.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/reconnecting_client.hpp"
#include "api/snapshot.hpp"
#include "net/event_loop.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "supervise/supervisor.hpp"

namespace twfd {
namespace {

constexpr config::QosRequirements kQos{0.8, 1e-3, 4.0};
constexpr Tick kBeaconInterval = ticks_from_ms(200);

/// Deterministic-per-run ports: derived from the pid so parallel ctest
/// instances do not collide, stable within the run so a restarted
/// daemon rebinds the same endpoints.
std::uint16_t base_port() {
  static const std::uint16_t base =
      static_cast<std::uint16_t>(20000 + (::getpid() * 7) % 20000);
  return base;
}
std::uint16_t api_port() { return base_port(); }
std::uint16_t service_port() { return static_cast<std::uint16_t>(base_port() + 1); }
std::uint16_t beacon_port() { return static_cast<std::uint16_t>(base_port() + 2); }

/// A monitored process (the shard/api/chaos suites' helper): explicit
/// bind port so a revived beacon reclaims its old UDP identity.
class Beacon {
 public:
  Beacon(std::uint64_t sender_id, std::uint16_t to_port, std::uint16_t bind_port)
      : loop_(std::make_unique<net::EventLoop>(bind_port)) {
    thread_ = std::thread([this, sender_id, to_port] {
      service::Dispatcher dispatch(loop_->runtime());
      service::HeartbeatSender sender(
          loop_->runtime(),
          {.sender_id = sender_id, .base_interval = kBeaconInterval});
      dispatch.on_interval_request(
          [&](PeerId from, const net::IntervalRequestMsg& msg) {
            sender.handle_interval_request(from, msg);
          });
      sender.add_target(loop_->add_peer(net::SocketAddress::loopback(to_port)));
      sender.start();
      while (!stop_.load(std::memory_order_acquire)) {
        loop_->run_for(ticks_from_ms(50));
      }
      sender.stop();
    });
  }

  ~Beacon() { crash(); }

  void crash() {
    stop_.store(true, std::memory_order_release);
    loop_->wake();
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::unique_ptr<net::EventLoop> loop_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

struct Event {
  detect::Output output;
  Tick at;  ///< steady-clock arrival at the client
};

class RollingRestartE2E : public testing::Test {
 protected:
  void SetUp() override {
    snapshot_path_ = testing::TempDir() + "rolling_restart_" +
                     std::to_string(::getpid()) + ".snap";
    std::remove(snapshot_path_.c_str());

    supervise::ServiceSpec spec;
    spec.name = "fdaasd";
    spec.argv = {std::string(TWFD_TOOLS_DIR) + "/twfd_fdaasd",
                 "--api-port", std::to_string(api_port()),
                 "--service-port", std::to_string(service_port()),
                 "--shards", "2",
                 "--lease-ms", "10000",
                 "--stats-interval-s", "0",
                 "--snapshot-path", snapshot_path_,
                 "--snapshot-interval-ms", "100"};
    // The daemon beats every main-loop slice (~200ms); 3s of silence
    // means wedged. Generous for sanitizer builds.
    spec.heartbeat_timeout = ticks_from_sec(3);
    spec.start_timeout = ticks_from_sec(20);
    spec.grace = ticks_from_sec(5);
    spec.backoff_min = ticks_from_ms(100);
    spec.backoff_max = ticks_from_ms(500);
    supervise::FleetConfig fleet;
    fleet.services.push_back(spec);

    sup_ = std::make_unique<supervise::Supervisor>(fleet,
                                                   supervise::Supervisor::Options{});
    sup_->start();
    ASSERT_TRUE(sup_->wait_all_up(ticks_from_sec(30))) << "daemon never came up";
  }

  void TearDown() override {
    if (sup_) sup_->stop();
    std::remove(snapshot_path_.c_str());
  }

  /// SIGKILLs the daemon and blocks until the supervisor has respawned
  /// it (new pid, kUp). Returns the steady instant it was back up.
  Tick crash_and_await_respawn() {
    const pid_t old_pid = sup_->pid_of("fdaasd");
    EXPECT_GT(old_pid, 0);
    EXPECT_TRUE(sup_->kill_child("fdaasd", SIGKILL));
    const Tick deadline = clock_.now() + ticks_from_sec(30);
    while (clock_.now() < deadline) {
      const auto status = sup_->status()[0];
      if (status.pid > 0 && status.pid != old_pid &&
          status.state == supervise::ChildState::kUp) {
        return clock_.now();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "daemon was not respawned in time";
    return clock_.now();
  }

  SteadyClock clock_;
  std::string snapshot_path_;
  std::unique_ptr<supervise::Supervisor> sup_;
};

TEST_F(RollingRestartE2E, KillNineLosesNoNetTransition) {
  auto beacon = std::make_unique<Beacon>(7, service_port(), beacon_port());

  api::ReconnectingClient::Options copts;
  copts.backoff_min = ticks_from_ms(50);
  copts.backoff_max = ticks_from_ms(400);
  copts.jitter_seed = 7;
  api::ReconnectingClient client(net::SocketAddress::loopback(api_port()),
                                 copts);
  std::vector<Event> events;
  client.set_event_handler([&](const api::EventMsg& e) {
    events.push_back({e.output, clock_.now()});
  });
  const std::uint64_t handle = client.subscribe(
      net::SocketAddress::loopback(beacon_port()), 7, "rolling", kQos);

  // Steady state: heartbeats flowing, verdict Trust, no transitions.
  ASSERT_TRUE(client.pump_for(ticks_from_sec(2)));
  ASSERT_EQ(client.verdict(handle), detect::Output::Trust);
  const std::size_t steady_events = events.size();

  // --- Rolling kill -9 storm: three crashes mid-heartbeat-burst. ------
  // The beacon never stops, so the TRUE verdict never changes; any
  // event reaching the client would be a spurious transition invented
  // by the crash/restore/reclaim path.
  for (int round = 0; round < 3; ++round) {
    crash_and_await_respawn();
    // Pump long enough to reconnect, reclaim and settle.
    client.pump_for(ticks_from_sec(2));
    EXPECT_EQ(client.verdict(handle), detect::Output::Trust)
        << "round " << round << " flipped the verdict";
  }
  EXPECT_EQ(events.size(), steady_events)
      << "the restart storm invented spurious transitions";
  EXPECT_GE(client.reconnects(), 3u);
  EXPECT_GE(sup_->stats().restarts_total, 3u);

  // --- Net transition across a crash window. --------------------------
  // The beacon dies, and before the (still running) daemon can be asked
  // anything the daemon itself is kill -9'd. The Suspect transition
  // materialises AFTER the restore, from the re-seeded warm registry —
  // and must reach the client within its detection bound of the daemon
  // being back, plus redial/reclaim slack.
  beacon->crash();
  beacon.reset();
  const Tick daemon_up = crash_and_await_respawn();
  const Tick suspect_deadline = daemon_up + ticks_from_seconds(kQos.td_upper_s) +
                                ticks_from_sec(4);  // redial + sanitizer slack
  bool suspected = false;
  while (clock_.now() < suspect_deadline && !suspected) {
    client.pump_for(ticks_from_ms(100));
    suspected = client.verdict(handle) == detect::Output::Suspect;
  }
  const Tick suspect_at = clock_.now();
  EXPECT_TRUE(suspected) << "net Suspect transition lost across the crash";
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().output, detect::Output::Suspect);

  // --- Recovery: the beacon returns at its old address. ----------------
  beacon = std::make_unique<Beacon>(7, service_port(), beacon_port());
  const Tick trust_deadline = suspect_at + ticks_from_sec(15);
  bool trusted = false;
  while (clock_.now() < trust_deadline && !trusted) {
    client.pump_for(ticks_from_ms(100));
    trusted = client.verdict(handle) == detect::Output::Trust;
  }
  EXPECT_TRUE(trusted) << "recovery Trust never arrived";
  EXPECT_EQ(events.back().output, detect::Output::Trust);

  // Exactly the net transitions, nothing else: one Suspect, one Trust.
  ASSERT_EQ(events.size(), steady_events + 2);

  client.close();

  // --- Graceful shutdown: SIGTERM drains, exits 0, snapshot flushed. ---
  sup_->stop();
  const auto final_status = sup_->status()[0];
  EXPECT_EQ(final_status.state, supervise::ChildState::kDown);
  ASSERT_TRUE(WIFEXITED(final_status.last_exit_status))
      << "daemon did not exit cleanly on SIGTERM";
  EXPECT_EQ(WEXITSTATUS(final_status.last_exit_status), 0);
  // The shutdown path left a loadable snapshot behind.
  const auto loaded = api::load_snapshot_file(snapshot_path_);
  EXPECT_TRUE(loaded.ok()) << api::to_string(loaded.status);
}

}  // namespace
}  // namespace twfd

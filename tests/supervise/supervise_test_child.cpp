// Scriptable child process for the supervisor suite. Modes:
//
//   beat            beat every 50ms; exit 0 on SIGTERM
//   beat-crash N    beat once, then _exit(N) after 100ms
//   exit N          _exit(N) immediately (no beat)
//   hang            never beat, never exit (start_timeout prey)
//   beat-then-hang  beat for ~300ms, then go silent (heartbeat prey)
//   stubborn        beat, ignore SIGTERM (SIGKILL-escalation prey)

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "supervise/daemon.hpp"

using namespace twfd::supervise;

int main(int argc, char** argv) {
  if (argc < 2) return 64;
  const char* mode = argv[1];
  ChildHeartbeat hb = ChildHeartbeat::from_env();

  if (std::strcmp(mode, "exit") == 0) {
    return argc > 2 ? std::atoi(argv[2]) : 0;
  }
  if (std::strcmp(mode, "hang") == 0) {
    install_shutdown_handlers();
    for (;;) ::usleep(50 * 1000);
  }
  if (std::strcmp(mode, "beat-crash") == 0) {
    hb.beat();
    ::usleep(100 * 1000);
    return argc > 2 ? std::atoi(argv[2]) : 1;
  }
  if (std::strcmp(mode, "beat-then-hang") == 0) {
    for (int i = 0; i < 6; ++i) {
      hb.beat();
      ::usleep(50 * 1000);
    }
    for (;;) ::usleep(50 * 1000);
  }
  if (std::strcmp(mode, "stubborn") == 0) {
    ::signal(SIGTERM, SIG_IGN);
    for (;;) {
      hb.beat();
      ::usleep(50 * 1000);
    }
  }
  if (std::strcmp(mode, "beat") == 0) {
    install_shutdown_handlers();
    while (!shutdown_requested()) {
      hb.beat();
      ::usleep(50 * 1000);
    }
    return 0;
  }
  return 64;
}

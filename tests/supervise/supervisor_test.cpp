// Supervisor state machine over real fork/exec children (the scriptable
// supervise_test_child binary): happy-path transitions, the 20-crash
// backoff envelope (every scheduled delay inside rung * [0.5, 1.0],
// rung doubling to the cap), hung-child SIGKILL via the heartbeat pipe,
// fatal-exit parking, and the SIGTERM -> grace -> SIGKILL escalation.
// CTest labels `supervise` + `threaded` (the TSan lane: fork from a
// multithreaded parent is exactly where allocation-after-fork bugs
// bite).

#include "supervise/supervisor.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "supervise/exit_codes.hpp"

namespace twfd::supervise {
namespace {

std::string child_path() { return TWFD_TEST_CHILD; }

ServiceSpec base_spec(const std::string& name, std::vector<std::string> argv) {
  ServiceSpec spec;
  spec.name = name;
  spec.argv = std::move(argv);
  spec.grace = ticks_from_ms(500);
  spec.backoff_min = ticks_from_ms(10);
  spec.backoff_max = ticks_from_ms(80);
  return spec;
}

/// Thread-safe recorder for the state/backoff hooks (they fire on the
/// supervisor thread and must not call back into the Supervisor).
struct HookLog {
  std::mutex mu;
  std::vector<std::pair<ChildState, ChildState>> transitions;
  std::vector<std::pair<Tick, Tick>> backoffs;  ///< (delay, rung)

  Supervisor::Options options() {
    Supervisor::Options opts;
    opts.state_hook = [this](const std::string&, ChildState from, ChildState to) {
      std::lock_guard lk(mu);
      transitions.emplace_back(from, to);
    };
    opts.backoff_hook = [this](const std::string&, Tick delay, Tick rung) {
      std::lock_guard lk(mu);
      backoffs.emplace_back(delay, rung);
    };
    return opts;
  }

  bool saw(ChildState from, ChildState to) {
    std::lock_guard lk(mu);
    return std::find(transitions.begin(), transitions.end(),
                     std::make_pair(from, to)) != transitions.end();
  }

  std::size_t backoff_count() {
    std::lock_guard lk(mu);
    return backoffs.size();
  }
};

bool wait_until(const std::function<bool()>& pred, Tick timeout) {
  SteadyClock clock;
  const Tick deadline = clock.now() + timeout;
  while (clock.now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(Supervisor, HeartbeatingChildWalksDownStartingUpStoppingDown) {
  FleetConfig fleet;
  auto spec = base_spec("beater", {child_path(), "beat"});
  spec.heartbeat_timeout = ticks_from_ms(1000);
  spec.start_timeout = ticks_from_sec(10);
  fleet.services.push_back(spec);

  HookLog log;
  Supervisor sup(fleet, log.options());
  sup.start();
  ASSERT_TRUE(sup.wait_all_up(ticks_from_sec(10)));
  EXPECT_TRUE(log.saw(ChildState::kDown, ChildState::kStarting));
  EXPECT_TRUE(log.saw(ChildState::kStarting, ChildState::kUp));
  EXPECT_GT(sup.pid_of("beater"), 0);
  EXPECT_EQ(sup.stats().up_children, 1u);

  sup.stop();
  EXPECT_TRUE(log.saw(ChildState::kUp, ChildState::kStopping));
  EXPECT_TRUE(log.saw(ChildState::kStopping, ChildState::kDown));
  const auto status = sup.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].state, ChildState::kDown);
  EXPECT_EQ(status[0].pid, 0);
  // A SIGTERM drain is a clean exit, not a crash: no restarts burned.
  EXPECT_EQ(status[0].restarts, 0u);
}

TEST(Supervisor, TwentyCrashLoopRespectsTheBackoffEnvelope) {
  constexpr std::size_t kCrashes = 20;
  FleetConfig fleet;
  fleet.services.push_back(base_spec("crasher", {child_path(), "exit", "1"}));

  HookLog log;
  auto opts = log.options();
  opts.jitter_seed = 0xc0ffee;
  Supervisor sup(fleet, std::move(opts));
  sup.start();
  ASSERT_TRUE(wait_until([&] { return log.backoff_count() >= kCrashes; },
                         ticks_from_sec(30)))
      << "only " << log.backoff_count() << " restarts scheduled";
  sup.stop();

  std::lock_guard lk(log.mu);
  Tick expected_rung = ticks_from_ms(10);
  bool reached_cap = false;
  for (std::size_t i = 0; i < kCrashes; ++i) {
    const auto [delay, rung] = log.backoffs[i];
    EXPECT_EQ(rung, expected_rung) << "crash " << i << " drew the wrong rung";
    EXPECT_GE(delay, rung / 2) << "crash " << i << " undercuts the jitter floor";
    EXPECT_LE(delay, rung) << "crash " << i << " exceeds its rung";
    EXPECT_LE(delay, ticks_from_ms(80)) << "crash " << i << " exceeds the cap";
    expected_rung = std::min(expected_rung * 2, ticks_from_ms(80));
    if (rung == ticks_from_ms(80)) reached_cap = true;
  }
  EXPECT_TRUE(reached_cap) << "20 crashes never exercised the cap";
  EXPECT_GE(sup.stats().restarts_total, kCrashes);
}

TEST(Supervisor, FatalExitCodeParksInsteadOfCrashLooping) {
  FleetConfig fleet;
  fleet.services.push_back(
      base_spec("misconfigured", {child_path(), "exit", "78"}));

  HookLog log;
  Supervisor sup(fleet, log.options());
  sup.start();
  ASSERT_TRUE(wait_until(
      [&] { return sup.status()[0].state == ChildState::kFatal; },
      ticks_from_sec(10)));
  // Parked means parked: no respawn attempts accumulate.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto status = sup.status()[0];
  EXPECT_EQ(status.state, ChildState::kFatal);
  EXPECT_EQ(status.spawns, 1u);
  EXPECT_EQ(status.restarts, 0u);
  EXPECT_EQ(sup.stats().fatal_children, 1u);
  EXPECT_TRUE(WIFEXITED(status.last_exit_status));
  EXPECT_EQ(WEXITSTATUS(status.last_exit_status), kExitConfig);
  // wait_all_up reports the hopeless fleet immediately.
  EXPECT_FALSE(sup.wait_all_up(ticks_from_sec(30)));
  sup.stop();
}

TEST(Supervisor, MissingBinaryParksAsExecFailure) {
  FleetConfig fleet;
  fleet.services.push_back(base_spec("ghost", {"/no/such/binary/anywhere"}));
  HookLog log;
  Supervisor sup(fleet, log.options());
  sup.start();
  ASSERT_TRUE(wait_until(
      [&] { return sup.status()[0].state == ChildState::kFatal; },
      ticks_from_sec(10)));
  const auto status = sup.status()[0];
  ASSERT_TRUE(WIFEXITED(status.last_exit_status));
  EXPECT_EQ(WEXITSTATUS(status.last_exit_status), kExitExecFailed);
  sup.stop();
}

TEST(Supervisor, HungChildIsKilledWithinTheHeartbeatDeadline) {
  FleetConfig fleet;
  auto spec = base_spec("wedger", {child_path(), "beat-then-hang"});
  spec.heartbeat_timeout = ticks_from_ms(400);
  spec.start_timeout = ticks_from_sec(10);
  fleet.services.push_back(spec);

  HookLog log;
  Supervisor sup(fleet, log.options());
  sup.start();
  ASSERT_TRUE(sup.wait_all_up(ticks_from_sec(10)));
  // The child beats ~300ms then wedges; within heartbeat_timeout the
  // supervisor must SIGKILL it and walk kUp -> kDegraded -> restart.
  ASSERT_TRUE(wait_until([&] { return sup.stats().hung_kills_total >= 1; },
                         ticks_from_sec(10)));
  EXPECT_TRUE(log.saw(ChildState::kUp, ChildState::kDegraded));
  ASSERT_TRUE(wait_until([&] { return log.saw(ChildState::kDegraded,
                                              ChildState::kRestarting); },
                         ticks_from_sec(10)));
  sup.stop();
}

TEST(Supervisor, SilentChildIsKilledOnStartTimeout) {
  FleetConfig fleet;
  auto spec = base_spec("mute", {child_path(), "hang"});
  spec.heartbeat_timeout = ticks_from_ms(300);
  spec.start_timeout = ticks_from_ms(300);
  fleet.services.push_back(spec);

  HookLog log;
  Supervisor sup(fleet, log.options());
  sup.start();
  // Never beats: never reaches kUp, dies from kStarting.
  ASSERT_TRUE(wait_until([&] { return sup.stats().hung_kills_total >= 1; },
                         ticks_from_sec(10)));
  EXPECT_TRUE(log.saw(ChildState::kStarting, ChildState::kDegraded));
  EXPECT_FALSE(log.saw(ChildState::kStarting, ChildState::kUp));
  sup.stop();
}

TEST(Supervisor, StopEscalatesSigtermToSigkillAfterGrace) {
  FleetConfig fleet;
  auto spec = base_spec("stubborn", {child_path(), "stubborn"});
  spec.grace = ticks_from_ms(300);
  // Gate kUp on the first beat: the child installs its SIGTERM ignore
  // before it beats, so stop() cannot win the race against signal(2)
  // and kill the child with the SIGTERM this test exists to survive.
  spec.heartbeat_timeout = ticks_from_ms(2000);
  spec.start_timeout = ticks_from_sec(10);
  fleet.services.push_back(spec);

  HookLog log;
  Supervisor sup(fleet, log.options());
  sup.start();
  ASSERT_TRUE(sup.wait_all_up(ticks_from_sec(10)));
  const pid_t pid = sup.pid_of("stubborn");
  ASSERT_GT(pid, 0);

  SteadyClock clock;
  const Tick t0 = clock.now();
  sup.stop();  // SIGTERM is ignored; only the SIGKILL escalation ends it
  const Tick elapsed = clock.now() - t0;
  EXPECT_GE(elapsed, ticks_from_ms(250)) << "stop returned before the grace ran";
  const auto status = sup.status()[0];
  EXPECT_EQ(status.state, ChildState::kDown);
  ASSERT_TRUE(WIFSIGNALED(status.last_exit_status));
  EXPECT_EQ(WTERMSIG(status.last_exit_status), SIGKILL);
  // The pid is really gone (ESRCH), not a zombie the test leaks.
  EXPECT_NE(::kill(pid, 0), 0);
}

TEST(Supervisor, KillChildSeamTriggersARestartWithANewPid) {
  FleetConfig fleet;
  auto spec = base_spec("phoenix", {child_path(), "beat"});
  spec.heartbeat_timeout = ticks_from_ms(1000);
  spec.start_timeout = ticks_from_sec(10);
  fleet.services.push_back(spec);

  HookLog log;
  Supervisor sup(fleet, log.options());
  sup.start();
  ASSERT_TRUE(sup.wait_all_up(ticks_from_sec(10)));
  const pid_t first = sup.pid_of("phoenix");
  ASSERT_GT(first, 0);

  ASSERT_TRUE(sup.kill_child("phoenix", SIGKILL));
  ASSERT_TRUE(wait_until(
      [&] {
        const pid_t now = sup.pid_of("phoenix");
        return now > 0 && now != first &&
               sup.status()[0].state == ChildState::kUp;
      },
      ticks_from_sec(10)));
  EXPECT_GE(sup.status()[0].restarts, 1u);
  sup.stop();
}

TEST(Supervisor, VoluntaryCleanExitGoesDownWithoutRestart) {
  FleetConfig fleet;
  fleet.services.push_back(base_spec("oneshot", {child_path(), "exit", "0"}));
  HookLog log;
  Supervisor sup(fleet, log.options());
  sup.start();
  ASSERT_TRUE(wait_until(
      [&] { return sup.status()[0].state == ChildState::kDown; },
      ticks_from_sec(10)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(sup.status()[0].spawns, 1u);
  EXPECT_EQ(sup.status()[0].restarts, 0u);
  sup.stop();
}

}  // namespace
}  // namespace twfd::supervise

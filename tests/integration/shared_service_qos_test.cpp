// Section V-C end-to-end property: when applications share one detector
// stream at Delta_i,min with per-app margins Delta_to,j = T_D,j - Delta_i,min,
//   (a) each app's detection time is preserved (T_D = Delta_i + Delta_to),
//   (b) adapted apps' mistake rate and mistake duration do not degrade,
//   (c) the network carries fewer heartbeats than one-detector-per-app.
// Verified by replaying generated traces at the dedicated and shared
// intervals through 2W-FD detectors.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "config/qos_config.hpp"
#include "core/multi_window.hpp"
#include "qos/evaluator.hpp"
#include "trace/generator.hpp"

namespace twfd {
namespace {

// A moderately lossy and jittery channel; the network behaviour constants
// below are chosen to match it so the configuration procedure sees
// (approximately) the truth.
trace::Trace make_channel_trace(Tick interval, std::uint64_t seed,
                                std::int64_t count) {
  trace::TraceGenerator gen("chan", interval, 0, seed);
  trace::Regime r;
  r.label = "main";
  r.count = count;
  r.delay = std::make_unique<trace::ExponentialDelay>(0.001, 0.010);
  r.loss = std::make_unique<trace::BernoulliLoss>(0.02);
  gen.add_regime(std::move(r));
  return gen.generate();
}

const config::NetworkBehaviour kNet{0.02, 1e-4};

qos::QosMetrics replay(Tick interval, Tick margin, std::uint64_t seed,
                       double duration_s) {
  const auto count = static_cast<std::int64_t>(duration_s / to_seconds(interval));
  const auto t = make_channel_trace(interval, seed, count);
  core::MultiWindowDetector::Params p;
  p.windows = {1, 1000};
  p.interval = interval;
  p.safety_margin = margin;
  core::MultiWindowDetector d(p);
  return qos::evaluate(d, t).metrics;
}

TEST(SharedServiceQos, AdaptedAppsImproveOrHold) {
  std::vector<config::AppRequest> apps = {
      {"strict", {0.5, 1e-4, 2.0}},
      {"medium", {1.5, 1e-3, 6.0}},
      {"relaxed", {4.0, 1e-2, 20.0}},
  };
  const auto combined = config::combine_requirements(apps, kNet);
  ASSERT_TRUE(combined.feasible);
  const Tick shared_interval = ticks_from_seconds(combined.shared_interval_s);

  constexpr double kDuration = 4000.0;  // seconds of simulated channel
  for (std::size_t j = 0; j < apps.size(); ++j) {
    const auto& app = combined.apps[j];
    const Tick ded_interval = ticks_from_seconds(app.dedicated.interval_s);
    const Tick ded_margin = ticks_from_seconds(app.dedicated.margin_s);
    const Tick shr_margin = ticks_from_seconds(app.shared_margin_s);

    // Same seed per app across modes: the strict app's configuration is
    // identical in both, so its comparison must not be rare-event noise.
    const auto dedicated = replay(ded_interval, ded_margin, 100 + j, kDuration);
    const auto shared = replay(shared_interval, shr_margin, 100 + j, kDuration);

    // (a) Detection time preserved: both runs target T_D,j. Measured T_D
    // includes the channel's mean delay; compare the two runs against
    // each other with generous slack for estimator noise.
    EXPECT_NEAR(shared.detection_time_s, dedicated.detection_time_s,
                0.15 * apps[j].qos.td_upper_s + 0.05)
        << apps[j].name;

    // (b) QoS does not degrade for adapted apps (more heartbeats per
    // deadline + larger margin). Allow trivial noise for the strict app,
    // which is unchanged by construction.
    EXPECT_LE(shared.mistake_rate_per_s,
              dedicated.mistake_rate_per_s * 1.10 + 1e-4)
        << apps[j].name;
    if (app.shared_margin_s > app.dedicated.margin_s * 1.5) {
      // Clearly adapted app: improvement should be strict and large.
      EXPECT_LT(shared.mistake_rate_per_s,
                dedicated.mistake_rate_per_s * 0.5 + 1e-6)
          << apps[j].name;
    }
  }

  // (c) Network load: shared sends at 1/Di_min; dedicated at sum of rates.
  EXPECT_LT(combined.shared_msgs_per_s, combined.dedicated_msgs_per_s);
}

TEST(SharedServiceQos, SharedLoadMatchesStrictestApp) {
  std::vector<config::AppRequest> apps = {
      {"a", {0.5, 1e-4, 2.0}},
      {"b", {0.5, 1e-4, 2.0}},
      {"c", {0.5, 1e-4, 2.0}},
  };
  const auto combined = config::combine_requirements(apps, kNet);
  ASSERT_TRUE(combined.feasible);
  // Three identical apps: shared service cuts load to a third.
  EXPECT_NEAR(combined.dedicated_msgs_per_s / combined.shared_msgs_per_s, 3.0, 1e-9);
}

TEST(SharedServiceQos, AchievedQosMeetsRequestedBounds) {
  // The configuration procedure's predictions must be honoured by the
  // actual replay (the bound is conservative, so achieved <= requested).
  const config::QosRequirements req{1.0, 1e-2, 5.0};
  const auto cfg = config::chen_configure(req, kNet);
  ASSERT_TRUE(cfg.feasible);
  const auto m = replay(ticks_from_seconds(cfg.interval_s),
                        ticks_from_seconds(cfg.margin_s), 42, 20'000.0);
  EXPECT_LE(m.mistake_rate_per_s, req.tmr_upper_per_s);
  if (m.mistake_count > 0) {
    EXPECT_LE(m.mistake_duration_s, req.tm_upper_s);
  }
}

}  // namespace
}  // namespace twfd

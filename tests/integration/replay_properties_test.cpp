// Cross-detector invariants over full scenario replays: metric sanity,
// tuning-parameter monotonicity, and the documented dominance properties.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/factory.hpp"
#include "qos/evaluator.hpp"
#include "trace/scenario.hpp"

namespace twfd {
namespace {

const trace::Trace& wan() {
  static const trace::Trace t = [] {
    trace::WanScenario::Params p;
    p.samples = 120'000;
    return trace::WanScenario(p).build();
  }();
  return t;
}

const trace::Trace& lan() {
  static const trace::Trace t = [] {
    trace::LanScenario::Params p;
    p.samples = 120'000;
    return trace::LanScenario(p).build();
  }();
  return t;
}

qos::QosMetrics run(const core::DetectorSpec& spec, const trace::Trace& t) {
  auto d = core::make_detector(spec, t.interval());
  return qos::evaluate(*d, t).metrics;
}

class MetricSanity : public testing::TestWithParam<core::DetectorSpec> {};

TEST_P(MetricSanity, WanReplayProducesValidMetrics) {
  const auto m = run(GetParam(), wan());
  EXPECT_GE(m.query_accuracy, 0.0);
  EXPECT_LE(m.query_accuracy, 1.0);
  EXPECT_GE(m.mistake_rate_per_s, 0.0);
  EXPECT_GE(m.mistake_duration_s, 0.0);
  EXPECT_GT(m.observed_s, 0.0);
  EXPECT_GT(m.detection_time_s, 0.0);
  EXPECT_GE(m.detection_time_max_s, m.detection_time_s);
  EXPECT_GT(m.detection_samples, 100'000u);
  // A mistake cannot outlast the observation window on average.
  if (m.mistake_count > 0) {
    EXPECT_LE(m.mistake_duration_s, m.observed_s);
  }
}

TEST_P(MetricSanity, LanReplayIsNearlyPerfect) {
  const auto m = run(GetParam(), lan());
  // The LAN trace has no loss and tiny jitter: accuracy must be extreme.
  EXPECT_GT(m.query_accuracy, 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, MetricSanity,
    testing::Values(core::DetectorSpec::chen(1, ticks_from_ms(115)),
                    core::DetectorSpec::chen(1000, ticks_from_ms(115)),
                    core::DetectorSpec::bertier(1000),
                    core::DetectorSpec::phi(2.0),
                    core::DetectorSpec::ed(0.99),
                    core::DetectorSpec::two_window(1, 1000, ticks_from_ms(115))),
    [](const testing::TestParamInfo<core::DetectorSpec>& info) {
      std::string n = info.param.family_name();
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_" + std::to_string(info.index);
    });

TEST(ReplayMonotonicity, ChenMarginTradesSpeedForAccuracy) {
  qos::QosMetrics prev{};
  bool first = true;
  for (int margin_ms : {40, 80, 160, 320, 640}) {
    const auto m = run(core::DetectorSpec::chen(1000, ticks_from_ms(margin_ms)), wan());
    if (!first) {
      EXPECT_GT(m.detection_time_s, prev.detection_time_s);
      EXPECT_LE(m.mistake_count, prev.mistake_count);
      EXPECT_GE(m.query_accuracy, prev.query_accuracy - 1e-9);
    }
    prev = m;
    first = false;
  }
}

TEST(ReplayMonotonicity, TwoWindowMarginTradesSpeedForAccuracy) {
  qos::QosMetrics prev{};
  bool first = true;
  for (int margin_ms : {40, 160, 640}) {
    const auto m =
        run(core::DetectorSpec::two_window(1, 1000, ticks_from_ms(margin_ms)), wan());
    if (!first) {
      EXPECT_GT(m.detection_time_s, prev.detection_time_s);
      EXPECT_LE(m.mistake_count, prev.mistake_count);
    }
    prev = m;
    first = false;
  }
}

TEST(ReplayMonotonicity, PhiThresholdTradesSpeedForAccuracy) {
  qos::QosMetrics prev{};
  bool first = true;
  for (double threshold : {0.5, 1.0, 2.0, 4.0}) {
    const auto m = run(core::DetectorSpec::phi(threshold), wan());
    if (!first) {
      EXPECT_GE(m.detection_time_s, prev.detection_time_s);
      EXPECT_LE(m.mistake_count, prev.mistake_count);
    }
    prev = m;
    first = false;
  }
}

TEST(ReplayMonotonicity, EdThresholdTradesSpeedForAccuracy) {
  qos::QosMetrics prev{};
  bool first = true;
  for (double k : {0.5, 1.0, 2.0}) {  // E = 1 - 10^-k
    const auto m = run(core::DetectorSpec::ed(1.0 - std::pow(10.0, -k)), wan());
    if (!first) {
      EXPECT_GE(m.detection_time_s, prev.detection_time_s);
      EXPECT_LE(m.mistake_count, prev.mistake_count);
    }
    prev = m;
    first = false;
  }
}

TEST(ReplayDominance, TwoWindowBeatsBothChenConstituents) {
  // The QoS corollary of Eq 13, on both scenarios. Suspicion time (hence
  // P_A) dominance is exact; the mistake COUNT can exceed the minimum by
  // an episode-boundary artefact (one constituent's long mistake can
  // contain several 2W mistakes), so the count gets a small tolerance.
  for (const trace::Trace* t : {&wan(), &lan()}) {
    const Tick margin = ticks_from_ms(65);
    const auto chen1 = run(core::DetectorSpec::chen(1, margin), *t);
    const auto chen1000 = run(core::DetectorSpec::chen(1000, margin), *t);
    const auto tw = run(core::DetectorSpec::two_window(1, 1000, margin), *t);
    const auto count_floor =
        std::min(chen1.mistake_count, chen1000.mistake_count);
    EXPECT_LE(static_cast<double>(tw.mistake_count),
              static_cast<double>(count_floor) * 1.02 + 3.0)
        << t->name();
    EXPECT_GE(tw.query_accuracy,
              std::max(chen1.query_accuracy, chen1000.query_accuracy) - 1e-9)
        << t->name();
  }
}

TEST(ReplayDominance, WiderLongWindowHelpsOnBalance) {
  // Figure 4 trend: growing the long window helps. (Not a per-mistake
  // set inclusion — Chen(100)'s mistakes are not a subset of Chen(10)'s —
  // so this asserts the aggregate trend with a small tolerance.)
  const Tick margin = ticks_from_ms(115);
  const auto m10 = run(core::DetectorSpec::two_window(1, 10, margin), wan());
  const auto m1000 = run(core::DetectorSpec::two_window(1, 1000, margin), wan());
  EXPECT_LE(static_cast<double>(m1000.mistake_count),
            static_cast<double>(m10.mistake_count) * 1.02 + 5.0);
}

TEST(ReplayDeterminism, SameSpecSameTraceSameMetrics) {
  const auto spec = core::DetectorSpec::two_window(1, 1000, ticks_from_ms(115));
  const auto a = run(spec, wan());
  const auto b = run(spec, wan());
  EXPECT_EQ(a.mistake_count, b.mistake_count);
  EXPECT_DOUBLE_EQ(a.detection_time_s, b.detection_time_s);
  EXPECT_DOUBLE_EQ(a.query_accuracy, b.query_accuracy);
}

}  // namespace
}  // namespace twfd

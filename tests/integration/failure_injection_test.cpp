// Failure injection: malformed datagrams, reordered delivery, duplicated
// heartbeats, clock drift, and an output-sampling oracle for the replay
// evaluator. These guard the paths a tidy unit test never exercises.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/multi_window.hpp"
#include "detect/chen.hpp"
#include "net/wire.hpp"
#include "qos/evaluator.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "service/monitor.hpp"
#include "sim/sim_world.hpp"
#include "trace/generator.hpp"

namespace twfd {
namespace {

// ---------------------------------------------------------------------------
// Wire fuzz: random bytes must never crash or decode into nonsense.
// ---------------------------------------------------------------------------

TEST(FailureInjection, WireDecodeSurvivesRandomBytes) {
  Xoshiro256 rng(101);
  std::size_t decoded = 0;
  for (int i = 0; i < 50'000; ++i) {
    const std::size_t len = rng.uniform_int(64);
    std::vector<std::byte> data(len);
    for (auto& b : data) b = static_cast<std::byte>(rng.uniform_int(256));
    const auto msg = net::decode(data);
    if (msg.has_value()) ++decoded;
  }
  // Random magic match is a ~2^-32 event per try; essentially none decode.
  EXPECT_EQ(decoded, 0u);
}

TEST(FailureInjection, WireDecodeSurvivesBitFlips) {
  net::HeartbeatMsg m{42, 7, ticks_from_sec(1), ticks_from_ms(100)};
  const auto good = net::encode(m);
  Xoshiro256 rng(102);
  for (int i = 0; i < 10'000; ++i) {
    auto flipped = good;
    const std::size_t byte = rng.uniform_int(flipped.size());
    flipped[byte] ^= static_cast<std::byte>(1u << rng.uniform_int(8));
    const auto msg = net::decode(flipped);  // must not crash
    if (msg.has_value()) {
      // A flip in the payload decodes but must still carry sane fields.
      if (const auto* hb = std::get_if<net::HeartbeatMsg>(&*msg)) {
        EXPECT_GT(hb->seq, 0);
        EXPECT_GT(hb->interval, 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Live monitor under a reordering link: stale heartbeats must not regress
// the detector or produce spurious transitions.
// ---------------------------------------------------------------------------

TEST(FailureInjection, MonitorSurvivesReorderingLink) {
  sim::SimWorld world(103);
  auto& p = world.add_endpoint("p");
  auto& q = world.add_endpoint("q");
  sim::LinkParams link;
  // Jitter comparable to the cadence, FIFO off: heavy reordering.
  link.delay = std::make_unique<trace::ExponentialDelay>(0.001, 0.060);
  link.loss = std::make_unique<trace::BernoulliLoss>(0.01);
  link.fifo = false;
  world.connect(p, q, std::move(link));

  service::Dispatcher dispatch(q.runtime());
  service::HeartbeatSender sender(p.runtime(), {1, ticks_from_ms(50)});
  sender.add_target(q.id());

  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 100};
  mp.interval = ticks_from_ms(50);
  mp.safety_margin = ticks_from_ms(400);  // generous: reordering tolerated

  int suspects = 0, trusts = 0;
  std::int64_t last_seen_seq = 0;
  service::Monitor monitor(q.runtime(), 1,
                           std::make_unique<core::MultiWindowDetector>(mp),
                           {[&](Tick) { ++suspects; }, [&](Tick) { ++trusts; }});
  dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    monitor.handle_heartbeat(from, m, at);
    // The detector's highest_seq must be monotone even when the link
    // delivers sequence numbers out of order.
    EXPECT_GE(monitor.detector().highest_seq(), last_seen_seq);
    last_seen_seq = monitor.detector().highest_seq();
  });

  sender.start();
  world.run_until(ticks_from_sec(60));
  sender.stop();
  world.run();

  EXPECT_GT(monitor.heartbeats_seen(), 1000u);
  // Balanced transitions (final suspicion after the stop may stay open).
  EXPECT_LE(suspects - trusts, 1);
  // The wide margin should keep reorder-induced false alarms rare.
  EXPECT_LT(suspects, 20);
}

// ---------------------------------------------------------------------------
// Duplicated datagrams: at-least-once delivery must be idempotent.
// ---------------------------------------------------------------------------

TEST(FailureInjection, DuplicatedHeartbeatsAreIdempotent) {
  detect::ChenDetector::Params cp;
  cp.window = 8;
  cp.interval = ticks_from_ms(100);
  cp.safety_margin = ticks_from_ms(50);
  detect::ChenDetector once(cp);
  detect::ChenDetector dup(cp);

  Xoshiro256 rng(104);
  for (std::int64_t s = 1; s <= 500; ++s) {
    const Tick arrival = s * ticks_from_ms(100) + static_cast<Tick>(rng.uniform(0, 5e6));
    once.on_heartbeat(s, 0, arrival);
    dup.on_heartbeat(s, 0, arrival);
    // Deliver 1-3 duplicates at later times.
    const int copies = static_cast<int>(rng.uniform_int(3));
    for (int c = 0; c < copies; ++c) {
      dup.on_heartbeat(s, 0, arrival + (c + 1) * 1000);
    }
    ASSERT_EQ(once.suspect_after(), dup.suspect_after()) << s;
  }
}

// ---------------------------------------------------------------------------
// Clock drift: sender and monitor clocks drifting apart must not break
// the service (Chen-style estimation only uses receiver-clock arrivals).
// ---------------------------------------------------------------------------

TEST(FailureInjection, MonitorToleratesClockDriftAndSkew) {
  sim::SimWorld world(105);
  // p runs 200 ppm fast with a huge skew; q runs 100 ppm slow.
  auto& p = world.add_endpoint("p", ticks_from_sec(12345), 200e-6);
  auto& q = world.add_endpoint("q", -ticks_from_sec(777), -100e-6);
  world.connect_both(p, q, sim::lan_link());

  service::Dispatcher dispatch(q.runtime());
  service::HeartbeatSender sender(p.runtime(), {1, ticks_from_ms(50)});
  sender.add_target(q.id());

  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 100};
  mp.interval = ticks_from_ms(50);
  mp.safety_margin = ticks_from_ms(40);

  int suspects = 0;
  service::Monitor monitor(q.runtime(), 1,
                           std::make_unique<core::MultiWindowDetector>(mp),
                           {[&](Tick) { ++suspects; }, {}});
  dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    monitor.handle_heartbeat(from, m, at);
  });

  sender.start();
  world.run_until(ticks_from_sec(120));
  EXPECT_GT(monitor.heartbeats_seen(), 2000u);
  EXPECT_EQ(suspects, 0);  // drift alone must not cause false alarms

  // And a real crash is still detected promptly on q's clock.
  const Tick crash_local = q.now();
  sender.stop();
  world.run_until(ticks_from_sec(125));
  EXPECT_EQ(suspects, 1);
  EXPECT_EQ(monitor.output(), detect::Output::Suspect);
  EXPECT_LT(monitor.suspect_after() - crash_local, ticks_from_ms(200));
}

// ---------------------------------------------------------------------------
// Evaluator oracle: P_A from the analytic timeline must match direct
// output sampling at random instants via a second, independent replay.
// ---------------------------------------------------------------------------

TEST(FailureInjection, EvaluatorAccuracyMatchesSampledOracle) {
  trace::TraceGenerator gen("oracle", ticks_from_ms(100), 0, 106);
  trace::Regime r;
  r.label = "a";
  r.count = 20'000;
  r.delay = std::make_unique<trace::ExponentialDelay>(0.002, 0.015);
  r.loss = std::make_unique<trace::BernoulliLoss>(0.03);
  gen.add_regime(std::move(r));
  const trace::Trace t = gen.generate();

  detect::ChenDetector::Params cp;
  cp.window = 4;
  cp.interval = t.interval();
  cp.safety_margin = ticks_from_ms(30);
  detect::ChenDetector d(cp);
  const auto result = qos::evaluate(d, t);

  // Oracle: replay again, sampling output_at at uniformly random times
  // strictly inside each inter-arrival segment.
  detect::ChenDetector d2(cp);
  d2.reset();
  const auto delivery = t.delivery_order();
  Xoshiro256 rng(107);
  Tick prev = kTickNegInfinity;
  // "Query at a random time" is time-weighted, so the Monte-Carlo samples
  // are stratified per segment and weighted by segment duration.
  double sampled_trust_time = 0.0;
  double weighted_trust_time = 0.0, weighted_total = 0.0;
  for (auto idx : delivery) {
    const auto& rec = t[idx];
    if (rec.seq <= d2.highest_seq()) continue;
    if (prev != kTickNegInfinity) {
      const Tick seg = rec.arrival_time - prev;
      int trust_hits = 0;
      for (int k = 0; k < 3; ++k) {
        const Tick when =
            prev + static_cast<Tick>(rng.uniform01() * static_cast<double>(seg));
        if (d2.output_at(when) == detect::Output::Trust) ++trust_hits;
      }
      sampled_trust_time += to_seconds(seg) * trust_hits / 3.0;
      // Exact per-segment trust time for a tighter check.
      const Tick sa = d2.suspect_after();
      const Tick suspect_in_seg =
          sa >= rec.arrival_time ? 0 : rec.arrival_time - std::max(sa, prev);
      weighted_trust_time += to_seconds(seg - suspect_in_seg);
      weighted_total += to_seconds(seg);
    }
    d2.on_heartbeat(rec.seq, rec.send_time, rec.arrival_time);
    prev = rec.arrival_time;
  }

  const double exact_pa = weighted_trust_time / weighted_total;
  EXPECT_NEAR(result.metrics.query_accuracy, exact_pa, 1e-6);
  const double sampled_pa = sampled_trust_time / weighted_total;
  EXPECT_NEAR(result.metrics.query_accuracy, sampled_pa, 0.01);
}

}  // namespace
}  // namespace twfd

// Real-socket end-to-end test: a heartbeat sender and a monitor run on
// two UDP event loops over loopback (sender on its own thread). The
// monitor must stay trusting while heartbeats flow and raise a suspicion
// promptly once the sender dies.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "core/multi_window.hpp"
#include "net/event_loop.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "service/monitor.hpp"

namespace twfd {
namespace {

TEST(UdpEndToEnd, DetectsRealProcessSilence) {
  net::EventLoop monitor_loop;

  // --- Monitor side ---
  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 50};
  mp.interval = ticks_from_ms(20);
  mp.safety_margin = ticks_from_ms(60);

  std::atomic<int> suspects{0};
  std::atomic<int> trusts{0};
  service::Dispatcher dispatch(monitor_loop.runtime());
  service::Monitor monitor(monitor_loop.runtime(), /*sender_id=*/1,
                           std::make_unique<core::MultiWindowDetector>(mp),
                           {[&](Tick) { ++suspects; }, [&](Tick) { ++trusts; }});
  dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    monitor.handle_heartbeat(from, m, at);
  });

  // --- Sender side, on its own thread with its own loop ---
  const std::uint16_t monitor_port = monitor_loop.local_port();
  std::thread sender_thread([monitor_port] {
    net::EventLoop sender_loop;
    service::HeartbeatSender sender(sender_loop.runtime(),
                                    {/*sender_id=*/1, ticks_from_ms(20)});
    sender.add_target(
        sender_loop.add_peer(net::SocketAddress::loopback(monitor_port)));
    sender.start();
    // The "process" lives for 900 ms, then dies (loop exits, sender with it).
    sender_loop.run_for(ticks_from_ms(900));
    sender.stop();
  });

  // Monitor observes for 2.5 s: ~0.9 s alive, then silence.
  monitor_loop.run_for(ticks_from_ms(2500));
  sender_thread.join();

  EXPECT_GT(monitor.heartbeats_seen(), 30u);
  EXPECT_EQ(suspects.load(), 1);
  EXPECT_EQ(trusts.load(), 0);
  EXPECT_EQ(monitor.output(), detect::Output::Suspect);
}

TEST(UdpEndToEnd, NoFalseAlarmOnHealthyLoopback) {
  net::EventLoop monitor_loop;

  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 50};
  mp.interval = ticks_from_ms(20);
  mp.safety_margin = ticks_from_ms(100);  // loopback jitter is tiny

  std::atomic<int> suspects{0};
  service::Dispatcher dispatch(monitor_loop.runtime());
  service::Monitor monitor(monitor_loop.runtime(), 1,
                           std::make_unique<core::MultiWindowDetector>(mp),
                           {[&](Tick) { ++suspects; }, {}});
  dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    monitor.handle_heartbeat(from, m, at);
  });

  const std::uint16_t monitor_port = monitor_loop.local_port();
  std::atomic<bool> stop{false};
  std::thread sender_thread([monitor_port, &stop] {
    net::EventLoop sender_loop;
    service::HeartbeatSender sender(sender_loop.runtime(), {1, ticks_from_ms(20)});
    sender.add_target(
        sender_loop.add_peer(net::SocketAddress::loopback(monitor_port)));
    sender.start();
    while (!stop.load()) sender_loop.run_for(ticks_from_ms(50));
    sender.stop();
  });

  monitor_loop.run_for(ticks_from_ms(1500));
  stop = true;
  sender_thread.join();

  EXPECT_GT(monitor.heartbeats_seen(), 40u);
  EXPECT_EQ(suspects.load(), 0);
  EXPECT_EQ(monitor.output(), detect::Output::Trust);
}

}  // namespace
}  // namespace twfd

// Golden regression: pins exact metric values for the seeded scenarios.
// Any change to the RNG, trace generators, estimators or evaluator that
// alters results will trip these — deliberately. Update the constants
// only for intentional behaviour changes, and say so in the commit.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/factory.hpp"
#include "qos/evaluator.hpp"
#include "trace/scenario.hpp"
#include "trace/trace_stats.hpp"

namespace twfd {
namespace {

const trace::Trace& wan_small() {
  static const trace::Trace t = [] {
    trace::WanScenario::Params p;
    p.samples = 100'000;  // default seed 42
    return trace::WanScenario(p).build();
  }();
  return t;
}

TEST(GoldenRegression, WanTraceFingerprint) {
  const auto& t = wan_small();
  ASSERT_EQ(t.size(), 100'000u);
  const auto s = trace::compute_stats(t);
  EXPECT_EQ(s.delivered, 99'101);
  // First and last delivered arrivals pin the whole RNG stream.
  EXPECT_EQ(t[0].seq, 1);
  EXPECT_FALSE(t[0].lost);
  EXPECT_EQ(t[0].arrival_time, 3'160'825'214);  // skew + first sampled delay
}

TEST(GoldenRegression, TwoWindowMetricsPinned) {
  auto d = core::make_detector(
      core::DetectorSpec::two_window(1, 1000, ticks_from_ms(115)),
      wan_small().interval());
  const auto m = qos::evaluate(*d, wan_small()).metrics;
  // Exact integer count: any estimator/evaluator drift trips this.
  EXPECT_EQ(m.mistake_count, 215u);
  EXPECT_NEAR(m.detection_time_s, 0.296132, 1e-5);
  EXPECT_NEAR(m.query_accuracy, 0.98634731, 1e-7);
}

TEST(GoldenRegression, ChenMetricsPinned) {
  auto d = core::make_detector(core::DetectorSpec::chen(1000, ticks_from_ms(115)),
                               wan_small().interval());
  const auto m = qos::evaluate(*d, wan_small()).metrics;
  EXPECT_EQ(m.mistake_count, 218u);
}

TEST(GoldenRegression, RngStreamPinned) {
  Xoshiro256 rng(42);
  const std::uint64_t v0 = rng();
  const std::uint64_t v1 = rng();
  EXPECT_EQ(v0, 15'021'278'609'987'233'951ULL);
  EXPECT_EQ(v1, 5'881'210'131'331'364'753ULL);
  EXPECT_DOUBLE_EQ(Xoshiro256(42).uniform01(), 0.81430514512290986);
  EXPECT_EQ(Xoshiro256(43).uniform_int(1'000'000), 168'053u);
}

}  // namespace
}  // namespace twfd

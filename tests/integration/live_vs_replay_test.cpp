// Cross-validation of the two measurement paths: the live Monitor (timer
// driven, in the simulator) and the offline QosEvaluator (analytic
// timeline reconstruction) must agree on the mistakes a detector makes,
// given the identical heartbeat observations.

#include <gtest/gtest.h>

#include <memory>

#include "core/multi_window.hpp"
#include "detect/chen.hpp"
#include "qos/evaluator.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "service/monitor.hpp"
#include "sim/sim_world.hpp"

namespace twfd {
namespace {

struct LiveRun {
  std::size_t suspects = 0;
  std::size_t trusts = 0;
  trace::Trace captured{"captured", ticks_from_ms(50), 0};
};

// Runs sender+monitor over a lossy, jittery link for `seconds`, capturing
// every heartbeat the monitor observes.
LiveRun run_live(std::unique_ptr<detect::FailureDetector> detector,
                 int seconds, std::uint64_t seed) {
  LiveRun out;
  sim::SimWorld world(seed);
  auto& p = world.add_endpoint("p");
  auto& q = world.add_endpoint("q");

  sim::LinkParams link;
  link.delay = std::make_unique<trace::ExponentialDelay>(0.002, 0.010);
  link.loss = std::make_unique<trace::GilbertElliottLoss>(0.02, 0.2, 0.01, 0.8);
  world.connect(p, q, std::move(link));
  world.connect(q, p, sim::lan_link());

  service::Dispatcher dispatch(q.runtime());
  service::HeartbeatSender sender(p.runtime(), {1, ticks_from_ms(50)});
  sender.add_target(q.id());

  service::Monitor monitor(q.runtime(), 1, std::move(detector),
                           {[&](Tick) { ++out.suspects; },
                            [&](Tick) { ++out.trusts; }});
  dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    out.captured.push({m.seq, m.send_time, at, false});
    monitor.handle_heartbeat(from, m, at);
  });

  sender.start();
  world.run_until(ticks_from_sec(seconds));
  sender.stop();
  world.run(); // drain in-flight deliveries and timers
  return out;
}

TEST(LiveVsReplay, ChenMistakeCountsAgree) {
  detect::ChenDetector::Params cp;
  cp.window = 1;
  cp.interval = ticks_from_ms(50);
  cp.safety_margin = ticks_from_ms(20);

  auto live = run_live(std::make_unique<detect::ChenDetector>(cp), 120, 5);
  ASSERT_GT(live.suspects, 5u);  // the lossy link must force mistakes

  detect::ChenDetector replay_detector(cp);
  qos::EvalOptions opt;
  opt.record_mistakes = true;
  const auto r = qos::evaluate(replay_detector, live.captured, opt);

  // The evaluator observes [first arrival, last arrival]; the live run
  // additionally sees the trailing window after the final heartbeat
  // (sender stopped), which contributes at most one extra S-transition.
  EXPECT_GE(live.suspects, r.metrics.mistake_count);
  EXPECT_LE(live.suspects, r.metrics.mistake_count + 1);
  // Every live suspicion except a trailing one recovered.
  EXPECT_GE(live.trusts + 1, live.suspects);
}

TEST(LiveVsReplay, TwoWindowMistakeCountsAgree) {
  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 100};
  mp.interval = ticks_from_ms(50);
  mp.safety_margin = ticks_from_ms(20);

  auto live = run_live(std::make_unique<core::MultiWindowDetector>(mp), 120, 6);

  core::MultiWindowDetector replay_detector(mp);
  const auto r = qos::evaluate(replay_detector, live.captured);

  EXPECT_GE(live.suspects, r.metrics.mistake_count);
  EXPECT_LE(live.suspects, r.metrics.mistake_count + 1);
}

TEST(LiveVsReplay, TwoWindowSuspectsNoMoreThanChen) {
  // Dominance holds live, not just in replay.
  detect::ChenDetector::Params cp;
  cp.window = 1;
  cp.interval = ticks_from_ms(50);
  cp.safety_margin = ticks_from_ms(20);
  auto chen_live = run_live(std::make_unique<detect::ChenDetector>(cp), 90, 7);

  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 100};
  mp.interval = ticks_from_ms(50);
  mp.safety_margin = ticks_from_ms(20);
  auto tw_live = run_live(std::make_unique<core::MultiWindowDetector>(mp), 90, 7);

  // Same seed -> identical trace observed by both detectors.
  ASSERT_EQ(chen_live.captured.size(), tw_live.captured.size());
  EXPECT_LE(tw_live.suspects, chen_live.suspects);
}

}  // namespace
}  // namespace twfd

// Property test for the paper's Equation 13 (Section III-C):
//   Mistakes(2W_{W1,W2}) = Mistakes(Chen_{W1}) /\ Mistakes(Chen_{W2})
//
// The exact, machine-checkable form is pointwise in time: because the
// 2W freshness point is the max of the constituents' and all three share
// the largest-sequence state, 2W suspects at instant t iff BOTH Chen
// detectors suspect at t. We assert:
//   (1) suspicion-interval sets: I(2W) == I(Chen_W1) /\ I(Chen_W2), exactly;
//   (2) identity sets: C1 /\ C2  subset-of  2W  subset-of  C1 \/ C2
//       (equality can break only at episode-merge boundaries, where one
//       long 2W suspicion spans a constituent's recovery+re-suspicion);
//   (3) the QoS corollaries: suspicion time and hence P_A dominate.
// Verified across window pairs, margins and both scenarios.

#include <gtest/gtest.h>

#include <tuple>

#include "core/multi_window.hpp"
#include "detect/chen.hpp"
#include "qos/evaluator.hpp"
#include "qos/intervals.hpp"
#include "qos/mistake_set.hpp"
#include "trace/scenario.hpp"

namespace twfd {
namespace {

using Param = std::tuple<std::size_t, std::size_t, int /*margin ms*/>;

class Eq13Property : public testing::TestWithParam<Param> {
 protected:
  static const trace::Trace& wan() {
    static const trace::Trace t = [] {
      trace::WanScenario::Params p;
      p.samples = 120'000;
      return trace::WanScenario(p).build();
    }();
    return t;
  }
};

TEST_P(Eq13Property, SuspicionIntervalsIntersectExactly) {
  const auto [w1, w2, margin_ms] = GetParam();
  const Tick margin = ticks_from_ms(margin_ms);
  const trace::Trace& t = wan();

  qos::EvalOptions opt;
  opt.record_mistakes = true;

  detect::ChenDetector::Params cp;
  cp.safety_margin = margin;
  cp.interval = t.interval();
  cp.window = w1;
  detect::ChenDetector chen1(cp);
  cp.window = w2;
  detect::ChenDetector chen2(cp);

  core::MultiWindowDetector::Params mp;
  mp.windows = {w1, w2};
  mp.safety_margin = margin;
  mp.interval = t.interval();
  core::MultiWindowDetector two_w(mp);

  const auto r1 = qos::evaluate(chen1, t, opt);
  const auto r2 = qos::evaluate(chen2, t, opt);
  const auto r2w = qos::evaluate(two_w, t, opt);

  // (1) The exact pointwise theorem.
  const auto i1 = qos::to_intervals(r1.mistakes);
  const auto i2 = qos::to_intervals(r2.mistakes);
  const auto i2w = qos::to_intervals(r2w.mistakes);
  EXPECT_EQ(i2w, qos::intersect_intervals(i1, i2));

  // (2) Identity-set sandwich.
  const auto s1 = qos::MistakeSet::from_records(r1.mistakes);
  const auto s2 = qos::MistakeSet::from_records(r2.mistakes);
  const auto s2w = qos::MistakeSet::from_records(r2w.mistakes);
  EXPECT_TRUE(s1.intersect(s2).is_subset_of(s2w));
  EXPECT_TRUE(s2w.is_subset_of(s1.unite(s2)));

  // (3) QoS corollaries: 2W suspects for no longer than either
  // constituent, so its query accuracy dominates both.
  EXPECT_LE(qos::total_duration(i2w), qos::total_duration(i1));
  EXPECT_LE(qos::total_duration(i2w), qos::total_duration(i2));
  EXPECT_GE(r2w.metrics.query_accuracy,
            std::max(r1.metrics.query_accuracy, r2.metrics.query_accuracy) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    WindowPairsAndMargins, Eq13Property,
    testing::Values(Param{1, 1000, 65}, Param{1, 1000, 115}, Param{1, 1000, 300},
                    Param{1, 100, 115}, Param{10, 1000, 115}, Param{2, 50, 65},
                    Param{1, 10, 500}, Param{100, 10000, 115}),
    [](const testing::TestParamInfo<Param>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param)) + "ms";
    });

}  // namespace
}  // namespace twfd

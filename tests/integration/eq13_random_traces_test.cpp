// Eq 13's pointwise form across RANDOM channels (not just the WAN
// scenario): for arbitrary delay/loss structures the 2W suspicion
// time-set must equal the intersection of its constituents'.

#include <gtest/gtest.h>

#include <memory>

#include "core/multi_window.hpp"
#include "detect/chen.hpp"
#include "qos/evaluator.hpp"
#include "qos/intervals.hpp"
#include "trace/generator.hpp"

namespace twfd {
namespace {

trace::Trace random_channel(std::uint64_t seed) {
  Xoshiro256 pick(seed);
  trace::TraceGenerator gen("rand", ticks_from_ms(50), 0, seed * 7919);
  trace::Regime r;
  r.label = "r";
  r.count = 40'000;
  switch (pick.uniform_int(4)) {
    case 0:
      r.delay = std::make_unique<trace::ExponentialDelay>(0.001,
                                                          pick.uniform(0.002, 0.03));
      break;
    case 1:
      r.delay = std::make_unique<trace::ParetoDelay>(0.005, 0.002,
                                                     pick.uniform(1.2, 3.0));
      break;
    case 2:
      r.delay = std::make_unique<trace::ArCongestionDelay>(
          0.01, 0.005, pick.uniform(0.5, 0.99), pick.uniform(0.3, 1.5), 0.2);
      break;
    default:
      r.delay = std::make_unique<trace::NormalDelay>(0.02, 0.01, 0.001);
      break;
  }
  if (pick.bernoulli(0.5)) {
    r.loss = std::make_unique<trace::BernoulliLoss>(pick.uniform(0.0, 0.1));
  } else {
    r.loss = std::make_unique<trace::GilbertElliottLoss>(
        pick.uniform(0.001, 0.05), pick.uniform(0.05, 0.5), 0.005,
        pick.uniform(0.3, 0.95));
  }
  if (pick.bernoulli(0.3)) {
    r.stall = {0.001, 0.1, 1.0};
  }
  gen.add_regime(std::move(r));
  return gen.generate();
}

class Eq13RandomTraces : public testing::TestWithParam<std::uint64_t> {};

TEST_P(Eq13RandomTraces, PointwiseIntersectionHolds) {
  const auto t = random_channel(GetParam());
  const Tick margin = ticks_from_ms(10 + 17 * (GetParam() % 11));

  qos::EvalOptions opt;
  opt.record_mistakes = true;

  detect::ChenDetector::Params cp;
  cp.interval = t.interval();
  cp.safety_margin = margin;
  cp.window = 1;
  detect::ChenDetector c1(cp);
  cp.window = 200;
  detect::ChenDetector c2(cp);

  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 200};
  mp.interval = t.interval();
  mp.safety_margin = margin;
  core::MultiWindowDetector tw(mp);

  const auto i1 = qos::to_intervals(qos::evaluate(c1, t, opt).mistakes);
  const auto i2 = qos::to_intervals(qos::evaluate(c2, t, opt).mistakes);
  const auto iw = qos::to_intervals(qos::evaluate(tw, t, opt).mistakes);
  EXPECT_EQ(iw, qos::intersect_intervals(i1, i2));
}

INSTANTIATE_TEST_SUITE_P(Channels, Eq13RandomTraces,
                         testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace twfd

// Deterministic federation-tier simulation: a 3-level tree (4 leaves,
// 2 interiors, 1 root) carrying 100k federated peers, driven entirely
// in virtual time over sim::SimWorld links — FederationCore instances
// exchange REAL encoded TWFC Digest frames (encode_frame/decode_body),
// so the wire codec is in the loop, but no socket is ever opened.
//
// Covers the two federation guarantees end to end:
//   * detection latency: a leaf-side Suspect surfaces at the root
//     within the digest budget (2 levels x flush interval + link
//     delays + flush-timer alignment);
//   * loss-free failover: killing an interior node mid-burst and
//     restarting it empty loses no net transition once its children
//     re-send full-state snapshot digests (seq-originates-at-leaf).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "api/control.hpp"
#include "federation/federation_core.hpp"
#include "sim/sim_world.hpp"
#include "trace/delay_model.hpp"
#include "trace/loss_model.hpp"

namespace twfd::federation {
namespace {

using detect::Output;

constexpr Tick kFlush = ticks_from_ms(50);
constexpr double kLinkDelayS = 1e-3;

sim::LinkParams fixed_link() {
  sim::LinkParams p;
  p.delay = std::make_unique<trace::ConstantJitterDelay>(kLinkDelayS, 0.0);
  p.loss = std::make_unique<trace::BernoulliLoss>(0.0);
  return p;
}

/// One federated node in the sim: a FederationCore plus the glue the
/// live runtime provides around it — a flush timer (half the flush
/// interval, like FdaasServer::arm_fed_flush_timer) and the digest
/// encode/send/decode/ingest path of the upstream link and server.
struct SimNode {
  sim::SimEndpoint* ep = nullptr;
  std::unique_ptr<FederationCore> core;
  PeerId parent = 0;
  bool has_parent = false;
  bool alive = true;  ///< a killed interior ignores traffic and timers

  void send_frames(const std::vector<api::DigestMsg>& frames) {
    for (const auto& f : frames) {
      const auto frame = api::encode_frame(api::ControlMessage{f});
      ep->send(parent, frame);
    }
  }
};

class SimFederation {
 public:
  explicit SimFederation(std::uint64_t seed = 1) : world_(seed) {}

  SimNode& add_node(const std::string& name, std::uint64_t node_id,
                    std::size_t expected_peers, bool emits_upstream) {
    auto node = std::make_unique<SimNode>();
    node->ep = &world_.add_endpoint(name);
    FederationCore::Params p;
    p.node_id = node_id;
    p.flush_interval = kFlush;
    p.emit_upstream = emits_upstream;
    p.expected_peers = expected_peers;
    node->core = std::make_unique<FederationCore>(p);
    SimNode& ref = *node;
    nodes_.push_back(std::move(node));
    install_receive(ref);
    return ref;
  }

  void link(SimNode& child, SimNode& parent) {
    child.parent = parent.ep->id();
    child.has_parent = true;
    world_.connect(*child.ep, *parent.ep, fixed_link());
    arm_flush_timer(child);
  }

  /// Kill: the node drops every frame and stops flushing (its TCP
  /// sessions died with it in the live runtime).
  static void kill(SimNode& n) { n.alive = false; }

  /// Restart: a fresh, EMPTY core under the same node id, then each
  /// child pushes a full-state snapshot digest — exactly what the
  /// UpstreamLink connect hook does after redialling.
  void restart(SimNode& n, std::size_t expected_peers, bool emits_upstream) {
    FederationCore::Params p;
    p.node_id = n.core->node_id();
    p.flush_interval = kFlush;
    p.emit_upstream = emits_upstream;
    p.expected_peers = expected_peers;
    n.core = std::make_unique<FederationCore>(p);
    n.alive = true;
    install_receive(n);  // rebind the handler to the fresh core
    for (auto& child : nodes_) {
      if (child->has_parent && child->parent == n.ep->id()) {
        child->send_frames(child->core->snapshot_digests());
      }
    }
  }

  void run_until(Tick deadline) { world_.run_until(deadline); }
  [[nodiscard]] Tick now() const { return world_.now(); }
  [[nodiscard]] sim::SimWorld& world() { return world_; }

 private:
  void install_receive(SimNode& n) {
    SimNode* node = &n;
    n.ep->set_receive_handler(
        [node](PeerId, std::span<const std::byte> data, Tick) {
          if (!node->alive) return;
          ASSERT_GE(data.size(), 4u);
          const auto msg = api::decode_body(data.subspan(4));
          ASSERT_TRUE(msg.has_value()) << "sim link carried a malformed frame";
          const auto* digest = std::get_if<api::DigestMsg>(&*msg);
          ASSERT_NE(digest, nullptr);
          node->core->ingest_digest(digest->node_id, *digest);
        });
  }

  void arm_flush_timer(SimNode& n) {
    SimNode* node = &n;
    n.ep->schedule_at(n.ep->now() + kFlush / 2, [this, node] {
      if (node->alive) {
        node->send_frames(node->core->flush(node->ep->now()));
      }
      arm_flush_timer(*node);
    });
  }

  sim::SimWorld world_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
};

/// The 3-level tree every test uses: root <- {i0, i1} <- 4 leaves.
struct Tree {
  static constexpr std::size_t kLeaves = 4;
  static constexpr std::size_t kPeersPerLeaf = 25'000;
  static constexpr std::size_t kTotalPeers = kLeaves * kPeersPerLeaf;

  SimFederation fed;
  SimNode* root;
  SimNode* interior[2];
  SimNode* leaf[kLeaves];

  Tree() {
    root = &fed.add_node("root", 1, kTotalPeers, /*emits_upstream=*/false);
    interior[0] = &fed.add_node("i0", 2, kTotalPeers / 2, true);
    interior[1] = &fed.add_node("i1", 3, kTotalPeers / 2, true);
    fed.link(*interior[0], *root);
    fed.link(*interior[1], *root);
    for (std::size_t l = 0; l < kLeaves; ++l) {
      leaf[l] = &fed.add_node("leaf" + std::to_string(l), 4 + l,
                              kPeersPerLeaf, true);
      fed.link(*leaf[l], *interior[l / 2]);
    }
  }

  [[nodiscard]] static std::uint64_t peer_key(std::size_t l, std::size_t i) {
    return l * kPeersPerLeaf + i + 1;
  }

  /// Seeds the initial Trust state for all 100k peers and propagates it
  /// to the root.
  void seed_all_trust() {
    for (std::size_t l = 0; l < kLeaves; ++l) {
      for (std::size_t i = 0; i < kPeersPerLeaf; ++i) {
        leaf[l]->core->note_local_transition(peer_key(l, i), Output::Trust,
                                             fed.now());
      }
    }
    // Worst case to drain 25k entries: 13 frames per leaf flush, one
    // flush per level per interval — a few intervals is ample.
    fed.run_until(fed.now() + 20 * kFlush);
  }
};

TEST(FederationSim, HundredThousandPeersReachRootAndCrashSurfacesInBudget) {
  Tree t;
  t.seed_all_trust();
  ASSERT_EQ(t.root->core->peer_count(), Tree::kTotalPeers);

  // Subscribe at the root (the transition sink is what FdaasServer fans
  // out to api::Client subscribers) and crash one peer at a leaf.
  const std::uint64_t victim = Tree::peer_key(2, 12'345);
  Tick suspect_seen_at = -1;
  t.root->core->set_transition_sink([&](const api::DigestEntry& e) {
    if (e.peer_key == victim && e.output == Output::Suspect &&
        suspect_seen_at < 0) {
      suspect_seen_at = t.fed.now();
    }
  });

  const Tick crash_at = t.fed.now();
  t.leaf[2]->core->note_local_transition(victim, Output::Suspect, crash_at);

  // T_D^U budget for two digest hops: each level contributes at most
  // flush_interval (due gate) + flush_interval/2 (timer alignment) +
  // link delay. Anything beyond that is a latency regression.
  const Tick budget =
      2 * (kFlush + kFlush / 2 + ticks_from_ms(2));
  t.fed.run_until(crash_at + budget);

  ASSERT_GE(suspect_seen_at, 0) << "Suspect never surfaced at the root";
  EXPECT_LE(suspect_seen_at - crash_at, budget);
  EXPECT_EQ(t.root->core->peer_state(victim)->output, Output::Suspect);
}

TEST(FederationSim, InteriorKillMidBurstLosesNoNetTransition) {
  Tree t;
  t.seed_all_trust();
  ASSERT_EQ(t.root->core->peer_count(), Tree::kTotalPeers);

  std::map<std::uint64_t, int> root_events;  // victim key -> sink count
  t.root->core->set_transition_sink([&](const api::DigestEntry& e) {
    const auto it = root_events.find(e.peer_key);
    if (it != root_events.end()) ++it->second;
  });

  // Kill interior 0 (parent of leaves 0 and 1) mid-burst: transitions
  // keep happening at its leaves while it is down, and their digest
  // frames vanish with it.
  SimFederation::kill(*t.interior[0]);

  const std::uint64_t crashed = Tree::peer_key(0, 7);      // Suspect, stays
  const std::uint64_t flapped = Tree::peer_key(1, 11);     // flaps back to Trust
  const std::uint64_t late_crash = Tree::peer_key(1, 900); // crashes later
  root_events[crashed] = 0;
  root_events[flapped] = 0;
  root_events[late_crash] = 0;

  t.leaf[0]->core->note_local_transition(crashed, Output::Suspect, t.fed.now());
  t.leaf[1]->core->note_local_transition(flapped, Output::Suspect, t.fed.now());
  t.fed.run_until(t.fed.now() + 4 * kFlush);  // frames die at the dead node
  t.leaf[1]->core->note_local_transition(flapped, Output::Trust, t.fed.now());
  t.leaf[1]->core->note_local_transition(late_crash, Output::Suspect, t.fed.now());
  t.fed.run_until(t.fed.now() + 4 * kFlush);

  EXPECT_EQ(root_events[crashed], 0) << "event leaked through a dead node";
  EXPECT_EQ(t.root->core->peer_state(crashed)->output, Output::Trust);

  // Restart the interior empty; its leaves push snapshot digests.
  t.fed.restart(*t.interior[0], Tree::kTotalPeers / 2, true);
  t.fed.run_until(t.fed.now() + 6 * kFlush);

  // Net transitions survived the failover...
  EXPECT_EQ(t.root->core->peer_state(crashed)->output, Output::Suspect);
  EXPECT_EQ(t.root->core->peer_state(late_crash)->output, Output::Suspect);
  EXPECT_EQ(t.root->core->peer_state(flapped)->output, Output::Trust);
  EXPECT_EQ(root_events[crashed], 1);
  EXPECT_EQ(root_events[late_crash], 1);
  // ...and the flap inside the outage collapsed to its net state: the
  // root never saw a transition for the peer that ended where it began.
  EXPECT_EQ(root_events[flapped], 0);
  // The snapshot replay re-offered 50k already-known entries; the root
  // dropped them by origin seq instead of double-applying.
  EXPECT_GT(t.root->core->stats().entries_stale, 0u);
  ASSERT_EQ(t.root->core->peer_count(), Tree::kTotalPeers);
}

TEST(FederationSim, DeterministicAcrossRuns) {
  auto run = [] {
    Tree t;
    t.seed_all_trust();
    t.leaf[0]->core->note_local_transition(Tree::peer_key(0, 1),
                                           Output::Suspect, t.fed.now());
    t.fed.run_until(t.fed.now() + 4 * kFlush);
    const auto& s = t.root->core->stats();
    return std::tuple{t.fed.world().datagrams_delivered(), s.entries_applied,
                      s.entries_stale, t.fed.now()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace twfd::federation

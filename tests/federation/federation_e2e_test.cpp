// Federation end-to-end over real sockets: a 3-level tree of
// FederatedMonitorNodes (leaf -> interior -> root) on loopback, a real
// api::Client subscribed at the root, and a chaos pass that kills the
// interior node mid-burst and restarts it on the same port — the leaf's
// UpstreamLink must redial, re-send its full-state snapshot digest, and
// the net transitions that happened during the outage must surface at
// the root subscriber with nothing lost and nothing double-delivered.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "federation/federated_node.hpp"

namespace twfd::federation {
namespace {

using detect::Output;

constexpr Tick kFlush = ticks_from_ms(10);

FederatedMonitorNode::Params node_params(std::uint64_t node_id,
                                         std::uint16_t api_port) {
  FederatedMonitorNode::Params p;
  p.node_id = node_id;
  p.service.shards = 1;
  p.service.port = 0;
  p.server.port = api_port;
  p.server.lease = ticks_from_sec(2);
  p.core.flush_interval = kFlush;
  // Fast failover so the kill/restart pass stays inside test budgets.
  p.link.client.backoff_min = ticks_from_ms(10);
  p.link.client.backoff_max = ticks_from_ms(100);
  p.link.client.client.connect_timeout = ticks_from_ms(500);
  p.link.pump_slice = ticks_from_ms(5);
  return p;
}

/// Pumps `client` until `pred()` holds or `timeout` elapses.
bool pump_until(api::Client& client, const std::function<bool()>& pred,
                Tick timeout = ticks_from_sec(10)) {
  SteadyClock clock;
  const Tick deadline = clock.now() + timeout;
  while (clock.now() < deadline) {
    if (pred()) return true;
    client.pump_for(ticks_from_ms(20));
  }
  return pred();
}

/// Polls `pred` (no client to pump) until it holds or `timeout` elapses.
bool wait_until(const std::function<bool()>& pred,
                Tick timeout = ticks_from_sec(10)) {
  SteadyClock clock;
  const Tick deadline = clock.now() + timeout;
  while (clock.now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(FederationE2E, SubtreeEventsReachRootSubscriberAndSurviveInteriorKill) {
  SteadyClock clock;

  FederatedMonitorNode root(node_params(1, 0));
  root.start();
  const auto root_addr = net::SocketAddress::loopback(root.api_port());

  auto interior_params = node_params(2, 0);
  interior_params.parent = root_addr;
  auto interior = std::make_unique<FederatedMonitorNode>(interior_params);
  interior->start();
  const std::uint16_t interior_port = interior->api_port();

  auto leaf_params = node_params(4, 0);
  leaf_params.parent = net::SocketAddress::loopback(interior_port);
  FederatedMonitorNode leaf(leaf_params);
  leaf.start();

  // A dashboard at the ROOT subscribes to two peers monitored by the
  // LEAF — zero peer address, federation peer key as sender_id.
  api::Client client(root_addr);
  std::map<std::uint64_t, std::vector<Output>> events;  // sub id -> outputs
  client.set_event_handler([&events](const api::EventMsg& e) {
    events[e.subscription_id].push_back(e.output);
  });
  config::QosRequirements qos;  // td_upper_s = 1s >> 2 x 10ms flush budget
  const std::uint64_t sub42 =
      client.subscribe(net::SocketAddress{}, /*peer key=*/42, "dash", qos);
  const std::uint64_t sub43 =
      client.subscribe(net::SocketAddress{}, /*peer key=*/43, "dash", qos);
  EXPECT_NE(sub42 & api::FdaasServer::kFedSubBit, 0u);
  EXPECT_NE(sub43 & api::FdaasServer::kFedSubBit, 0u);

  // Leaf-side transition propagates two levels up to the subscriber.
  leaf.inject_transition(42, Output::Suspect, clock.now());
  ASSERT_TRUE(pump_until(client, [&] { return !events[sub42].empty(); }))
      << "leaf Suspect never reached the root subscriber";
  EXPECT_EQ(events[sub42].back(), Output::Suspect);

  // The parent can direct its child's ownership once the child has
  // identified itself with a digest; the Delegate frame rides the same
  // reconnecting link downstream.
  ASSERT_TRUE(wait_until([&] {
    return root.delegate_to_child(2, {{0, 1'000'000}});
  })) << "interior never registered as a child of the root";
  FederatedMonitorNode* interior_ptr = interior.get();
  EXPECT_TRUE(wait_until([&] {
    return interior_ptr->core_stats().delegations_applied >= 1;
  }));

  // CHAOS: kill the interior mid-burst. Transitions keep happening at
  // the leaf while the middle of the tree is gone.
  interior->stop();
  interior.reset();
  leaf.inject_transition(42, Output::Trust, clock.now());
  leaf.inject_transition(43, Output::Suspect, clock.now());
  // Let several flush intervals die against the closed port.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(events[sub43].empty()) << "event leaked through a dead node";

  // Restart the interior EMPTY on the same port (fresh process in
  // production; SO_REUSEADDR makes the rebind immediate).
  interior_params.server.port = interior_port;
  interior = std::make_unique<FederatedMonitorNode>(interior_params);
  interior->start();

  // Failover contract: every net transition from the outage surfaces —
  // 42's flap back to Trust and 43's crash — via snapshot reconciliation.
  ASSERT_TRUE(pump_until(client, [&] {
    return !events[sub42].empty() && events[sub42].back() == Output::Trust &&
           !events[sub43].empty() && events[sub43].back() == Output::Suspect;
  })) << "net transitions lost across interior failover";

  // Nothing was double-delivered: the stale-drop rule means at most one
  // event per net transition per subscription.
  EXPECT_LE(events[sub42].size(), 2u);  // Suspect, then Trust
  EXPECT_EQ(events[sub43].size(), 1u);  // Suspect only

  client.close();
  leaf.stop();
  interior->stop();
  root.stop();
}

TEST(FederationE2E, LateSubscriberIsPrimedWithCurrentVerdict) {
  FederatedMonitorNode root(node_params(1, 0));
  root.start();

  auto leaf_params = node_params(4, 0);
  leaf_params.parent = net::SocketAddress::loopback(root.api_port());
  FederatedMonitorNode leaf(leaf_params);
  leaf.start();

  SteadyClock clock;
  leaf.inject_transition(77, Output::Suspect, clock.now());
  ASSERT_TRUE(wait_until([&] { return root.peer_count() >= 1; }))
      << "digest never reached the root";

  // Subscribe AFTER the transition: the subscriber must still learn the
  // current verdict (initial-state event), not wait for the next flap.
  api::Client client(net::SocketAddress::loopback(root.api_port()));
  std::vector<Output> seen;
  client.set_event_handler(
      [&seen](const api::EventMsg& e) { seen.push_back(e.output); });
  config::QosRequirements qos;
  client.subscribe(net::SocketAddress{}, 77, "late", qos);
  ASSERT_TRUE(pump_until(client, [&] { return !seen.empty(); }));
  EXPECT_EQ(seen.front(), Output::Suspect);

  // An infeasible T_D^U — inside the digest flush budget — is rejected
  // at subscribe time, like any other unachievable QoS tuple.
  config::QosRequirements tight = qos;
  tight.td_upper_s = 0.000'001;  // 1 us << 2 x 10ms
  EXPECT_THROW(client.subscribe(net::SocketAddress{}, 78, "late", tight),
               std::runtime_error);

  client.close();
  leaf.stop();
  root.stop();
}

}  // namespace
}  // namespace twfd::federation

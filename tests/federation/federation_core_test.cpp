// Unit coverage for the federation tier's deterministic heart: the
// DigestBuilder (coalescing, chunking) and the FederationCore (origin
// sequencing, stale-drop, delegation routing, snapshot reconciliation,
// flush cadence). Everything here is virtual-time, no sockets.
#include "federation/federation_core.hpp"

#include <gtest/gtest.h>

#include "federation/digest.hpp"

namespace twfd::federation {
namespace {

using detect::Output;

TEST(DigestBuilder, CoalescesFlapsToNetState) {
  DigestBuilder b(7);
  b.add(100, 1, Output::Suspect, ticks_from_ms(10));
  b.add(100, 2, Output::Trust, ticks_from_ms(20));  // flap back inside window
  b.add(200, 1, Output::Suspect, ticks_from_ms(15));
  EXPECT_EQ(b.pending(), 2u);

  const auto frames = b.take();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].node_id, 7u);
  EXPECT_EQ(frames[0].digest_seq, 1u);
  ASSERT_EQ(frames[0].entries.size(), 2u);
  // Sorted by peer key; peer 100 ships only its net state (Trust, seq 2).
  EXPECT_EQ(frames[0].entries[0].peer_key, 100u);
  EXPECT_EQ(frames[0].entries[0].seq, 2u);
  EXPECT_EQ(frames[0].entries[0].output, Output::Trust);
  EXPECT_EQ(frames[0].entries[1].peer_key, 200u);
  EXPECT_TRUE(b.empty());
}

TEST(DigestBuilder, IgnoresOutOfOrderSeqForSamePeer) {
  DigestBuilder b(1);
  b.add(5, 9, Output::Trust, ticks_from_ms(90));
  b.add(5, 3, Output::Suspect, ticks_from_ms(30));  // older origin seq
  const auto frames = b.take();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].entries[0].seq, 9u);
  EXPECT_EQ(frames[0].entries[0].output, Output::Trust);
}

TEST(DigestBuilder, ChunksAtMaxEntriesWithMonotoneDigestSeq) {
  DigestBuilder b(1);
  const std::size_t total = api::kMaxDigestEntries + 100;
  for (std::size_t i = 0; i < total; ++i) {
    b.add(i, 1, Output::Trust, ticks_from_ms(1));
  }
  const auto frames = b.take();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].entries.size(), api::kMaxDigestEntries);
  EXPECT_EQ(frames[1].entries.size(), 100u);
  EXPECT_EQ(frames[0].digest_seq + 1, frames[1].digest_seq);
  // Chunk boundary preserves global peer-key ordering.
  EXPECT_LT(frames[0].entries.back().peer_key, frames[1].entries.front().peer_key);
}

TEST(FederationCore, AssignsOriginSeqAndSkipsVerdictNoops) {
  FederationCore core({});
  core.note_local_transition(42, Output::Suspect, ticks_from_ms(10));
  core.note_local_transition(42, Output::Suspect, ticks_from_ms(20));  // no-op
  core.note_local_transition(42, Output::Trust, ticks_from_ms(30));

  const auto state = core.peer_state(42);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->seq, 2u);  // two real transitions, one no-op
  EXPECT_EQ(state->output, Output::Trust);
  EXPECT_EQ(core.stats().local_transitions, 2u);
}

TEST(FederationCore, StaleEntriesAreDroppedBySeq) {
  FederationCore core({});
  api::DigestMsg fresh;
  fresh.node_id = 9;
  fresh.entries = {{1, 5, Output::Suspect, ticks_from_ms(50)}};
  auto r = core.ingest_digest(9, fresh);
  EXPECT_EQ(r.applied, 1u);

  // A replay (same seq) and an older entry both drop.
  api::DigestMsg replay;
  replay.node_id = 9;
  replay.entries = {{1, 5, Output::Suspect, ticks_from_ms(50)},
                    {1, 3, Output::Trust, ticks_from_ms(30)}};
  r = core.ingest_digest(9, replay);
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(r.stale, 2u);
  EXPECT_EQ(core.peer_state(1)->output, Output::Suspect);
}

TEST(FederationCore, SinkFiresOnlyOnObservableTransitions) {
  FederationCore core({});
  std::vector<api::DigestEntry> seen;
  core.set_transition_sink([&seen](const api::DigestEntry& e) {
    seen.push_back(e);
  });
  api::DigestMsg d;
  d.node_id = 2;
  d.entries = {{7, 1, Output::Suspect, ticks_from_ms(10)}};
  core.ingest_digest(2, d);
  // A seq advance landing on the same verdict (coalesced flap pair)
  // refreshes the table but must not re-notify subscribers.
  d.entries = {{7, 3, Output::Suspect, ticks_from_ms(40)}};
  core.ingest_digest(2, d);
  d.entries = {{7, 4, Output::Trust, ticks_from_ms(60)}};
  core.ingest_digest(2, d);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].output, Output::Suspect);
  EXPECT_EQ(seen[1].output, Output::Trust);
  EXPECT_EQ(seen[1].seq, 4u);
}

TEST(FederationCore, DelegateRoutesForeignEntriesOut) {
  FederationCore core({});
  api::DelegateMsg assign;
  assign.node_id = 1;
  assign.delegation_seq = 1;
  assign.ranges = {{100, 199}, {300, 399}};
  core.apply_delegate(assign);
  EXPECT_TRUE(core.owns(150));
  EXPECT_TRUE(core.owns(300));
  EXPECT_FALSE(core.owns(200));
  EXPECT_FALSE(core.owns(99));

  api::DigestMsg d;
  d.node_id = 4;
  d.entries = {{150, 1, Output::Suspect, 0},
               {250, 1, Output::Suspect, 0},   // foreign
               {399, 1, Output::Trust, 0}};
  const auto r = core.ingest_digest(4, d);
  EXPECT_EQ(r.applied, 2u);
  EXPECT_EQ(r.foreign, 1u);
  EXPECT_FALSE(core.peer_state(250).has_value());

  // A stale delegation must not regress the assignment.
  api::DelegateMsg stale;
  stale.node_id = 1;
  stale.delegation_seq = 1;
  stale.ranges = {{0, 10}};
  core.apply_delegate(stale);
  EXPECT_TRUE(core.owns(150));
  EXPECT_EQ(core.stats().delegations_applied, 1u);
}

TEST(FederationCore, FlushHonoursIntervalAndSizeTrigger) {
  FederationCore::Params p;
  p.flush_interval = ticks_from_ms(100);
  p.flush_max_pending = 3;
  FederationCore core(p);

  core.note_local_transition(1, Output::Suspect, ticks_from_ms(1));
  // First flush is immediate (nothing flushed yet).
  EXPECT_TRUE(core.due(ticks_from_ms(1)));
  auto frames = core.flush(ticks_from_ms(1));
  ASSERT_EQ(frames.size(), 1u);

  core.note_local_transition(2, Output::Suspect, ticks_from_ms(2));
  EXPECT_FALSE(core.due(ticks_from_ms(50)));  // interval not yet elapsed
  EXPECT_TRUE(core.flush(ticks_from_ms(50)).empty());
  EXPECT_TRUE(core.due(ticks_from_ms(101)));

  // Size trigger: pending >= flush_max_pending flushes early.
  core.note_local_transition(3, Output::Suspect, ticks_from_ms(3));
  core.note_local_transition(4, Output::Suspect, ticks_from_ms(3));
  EXPECT_TRUE(core.due(ticks_from_ms(10)));
  frames = core.flush(ticks_from_ms(10));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].entries.size(), 3u);
}

TEST(FederationCore, SnapshotSupersedesPendingDeltas) {
  FederationCore core({});
  core.note_local_transition(1, Output::Suspect, ticks_from_ms(1));
  core.note_local_transition(2, Output::Trust, ticks_from_ms(2));
  EXPECT_EQ(core.pending(), 2u);

  const auto snap = core.snapshot_digests();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].flags, api::DigestMsg::kFlagSnapshot);
  EXPECT_EQ(snap[0].entries.size(), 2u);
  // The snapshot carried everything; the delta builder restarts clean.
  EXPECT_EQ(core.pending(), 0u);
}

TEST(FederationCore, RootEmitsNothingUpstream) {
  FederationCore::Params p;
  p.emit_upstream = false;
  FederationCore core(p);
  core.note_local_transition(1, Output::Suspect, ticks_from_ms(1));
  EXPECT_EQ(core.pending(), 0u);
  EXPECT_TRUE(core.flush(ticks_from_sec(10)).empty());
  EXPECT_EQ(core.peer_state(1)->output, Output::Suspect);
}

TEST(FederationCore, UnmappedLocalEventsAreCountedNotDigested) {
  FederationCore core({});
  core.map_local_subscription(11, 500);
  core.note_local_event(11, Output::Suspect, ticks_from_ms(5));
  core.note_local_event(0, Output::Suspect, ticks_from_ms(6));  // health sub
  core.note_local_event(99, Output::Trust, ticks_from_ms(7));   // unknown
  EXPECT_EQ(core.peer_state(500)->output, Output::Suspect);
  EXPECT_EQ(core.stats().local_unmapped, 2u);
  EXPECT_EQ(core.pending(), 1u);

  core.unmap_local_subscription(11);
  core.note_local_event(11, Output::Trust, ticks_from_ms(8));
  EXPECT_EQ(core.stats().local_unmapped, 3u);
}

}  // namespace
}  // namespace twfd::federation

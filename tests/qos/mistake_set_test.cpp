#include "qos/mistake_set.hpp"

#include <gtest/gtest.h>

namespace twfd::qos {
namespace {

MistakeSet set(std::vector<std::int64_t> ids) {
  return MistakeSet::from_ids(std::move(ids));
}

TEST(MistakeSet, FromRecordsDeduplicatesAndSorts) {
  std::vector<MistakeRecord> recs = {{10, 20, 5}, {30, 40, 3}, {50, 60, 5}};
  const auto s = MistakeSet::from_records(recs);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ids(), (std::vector<std::int64_t>{3, 5}));
}

TEST(MistakeSet, Intersection) {
  EXPECT_EQ(set({1, 2, 3, 5}).intersect(set({2, 3, 4})), set({2, 3}));
  EXPECT_TRUE(set({1}).intersect(set({2})).empty());
  EXPECT_EQ(set({}).intersect(set({1})), set({}));
}

TEST(MistakeSet, Union) {
  EXPECT_EQ(set({1, 3}).unite(set({2, 3})), set({1, 2, 3}));
  EXPECT_EQ(set({}).unite(set({})), set({}));
}

TEST(MistakeSet, Difference) {
  EXPECT_EQ(set({1, 2, 3}).subtract(set({2})), set({1, 3}));
  EXPECT_EQ(set({1}).subtract(set({1})), set({}));
}

TEST(MistakeSet, Contains) {
  const auto s = set({2, 4, 8});
  EXPECT_TRUE(s.contains(4));
  EXPECT_FALSE(s.contains(5));
}

TEST(MistakeSet, SubsetRelation) {
  EXPECT_TRUE(set({2, 4}).is_subset_of(set({1, 2, 3, 4})));
  EXPECT_FALSE(set({2, 5}).is_subset_of(set({1, 2, 3, 4})));
  EXPECT_TRUE(set({}).is_subset_of(set({})));
}

TEST(MistakeSet, SetAlgebraLaws) {
  const auto a = set({1, 2, 3, 7, 9});
  const auto b = set({2, 3, 4, 9});
  // |A| + |B| = |A u B| + |A n B|
  EXPECT_EQ(a.size() + b.size(), a.unite(b).size() + a.intersect(b).size());
  // A \ B and A n B partition A.
  EXPECT_EQ(a.subtract(b).unite(a.intersect(b)), a);
  // Intersection commutes.
  EXPECT_EQ(a.intersect(b), b.intersect(a));
}

}  // namespace
}  // namespace twfd::qos

#include "qos/intervals.hpp"

#include <gtest/gtest.h>

namespace twfd::qos {
namespace {

std::vector<Interval> iv(std::initializer_list<Interval> list) { return list; }

TEST(Intervals, ToIntervalsCoalescesAndSorts) {
  std::vector<MistakeRecord> recs = {
      {50, 60, 1}, {10, 20, 2}, {20, 30, 3},  // adjacent: coalesce
      {55, 58, 4},                            // contained
      {70, 70, 5},                            // empty: dropped
  };
  EXPECT_EQ(to_intervals(recs), iv({{10, 30}, {50, 60}}));
}

TEST(Intervals, IntersectBasic) {
  const auto a = iv({{0, 10}, {20, 30}});
  const auto b = iv({{5, 25}});
  EXPECT_EQ(intersect_intervals(a, b), iv({{5, 10}, {20, 25}}));
}

TEST(Intervals, IntersectDisjoint) {
  EXPECT_TRUE(intersect_intervals(iv({{0, 5}}), iv({{5, 10}})).empty());
  EXPECT_TRUE(intersect_intervals(iv({{0, 5}}), {}).empty());
}

TEST(Intervals, IntersectIdentity) {
  const auto a = iv({{1, 4}, {6, 9}, {12, 20}});
  EXPECT_EQ(intersect_intervals(a, a), a);
}

TEST(Intervals, UniteMergesOverlaps) {
  EXPECT_EQ(unite_intervals(iv({{0, 5}, {10, 15}}), iv({{4, 11}})),
            iv({{0, 15}}));
  EXPECT_EQ(unite_intervals(iv({{0, 2}}), iv({{5, 6}})), iv({{0, 2}, {5, 6}}));
}

TEST(Intervals, TotalDuration) {
  EXPECT_EQ(total_duration(iv({{0, 5}, {10, 12}})), 7);
  EXPECT_EQ(total_duration({}), 0);
}

TEST(Intervals, CoveredBy) {
  EXPECT_TRUE(covered_by(iv({{1, 2}, {5, 6}}), iv({{0, 10}})));
  EXPECT_FALSE(covered_by(iv({{1, 2}, {9, 11}}), iv({{0, 10}})));
  EXPECT_TRUE(covered_by({}, iv({{0, 1}})));
}

TEST(Intervals, AlgebraLaws) {
  const auto a = iv({{0, 10}, {20, 30}, {40, 45}});
  const auto b = iv({{5, 22}, {28, 42}});
  const auto inter = intersect_intervals(a, b);
  const auto uni = unite_intervals(a, b);
  // |A| + |B| = |A u B| + |A n B| for measures.
  EXPECT_EQ(total_duration(a) + total_duration(b),
            total_duration(uni) + total_duration(inter));
  EXPECT_TRUE(covered_by(inter, a));
  EXPECT_TRUE(covered_by(inter, b));
  EXPECT_TRUE(covered_by(a, uni));
  // Commutativity.
  EXPECT_EQ(inter, intersect_intervals(b, a));
  EXPECT_EQ(uni, unite_intervals(b, a));
}

}  // namespace
}  // namespace twfd::qos

#include "qos/evaluator.hpp"

#include <gtest/gtest.h>

#include "detect/chen.hpp"

namespace twfd::qos {
namespace {

constexpr Tick kI = ticks_from_ms(100);

// A trace where heartbeat arrival offsets are fully controlled: offsets[i]
// is the delay past the nominal send instant of heartbeat i+1; a negative
// offset marks a lost heartbeat.
trace::Trace make_trace(const std::vector<Tick>& offsets) {
  trace::Trace t("unit", kI, 0);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const auto seq = static_cast<std::int64_t>(i + 1);
    trace::HeartbeatRecord r;
    r.seq = seq;
    r.send_time = seq * kI;
    if (offsets[i] < 0) {
      r.lost = true;
      r.arrival_time = kTickInfinity;
    } else {
      r.lost = false;
      r.arrival_time = seq * kI + offsets[i];
    }
    t.push(r);
  }
  return t;
}

detect::ChenDetector chen(Tick margin, std::size_t window = 1) {
  detect::ChenDetector::Params p;
  p.window = window;
  p.safety_margin = margin;
  p.interval = kI;
  return detect::ChenDetector(p);
}

TEST(Evaluator, PerfectTraceMakesNoMistakes) {
  const auto t = make_trace(std::vector<Tick>(50, 0));
  auto d = chen(ticks_from_ms(10));
  const auto r = evaluate(d, t);
  EXPECT_EQ(r.metrics.mistake_count, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.query_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(r.metrics.mistake_duration_s, 0.0);
  // T_D = interval + margin with zero delay/jitter.
  EXPECT_NEAR(r.metrics.detection_time_s, 0.110, 1e-9);
  EXPECT_NEAR(r.metrics.observed_s, 4.9, 1e-9);
}

TEST(Evaluator, SingleLossCausesOneMistake) {
  // 10 heartbeats, #5 lost -> detector suspects from tau_5 until #6 lands.
  std::vector<Tick> off(10, 0);
  off[4] = -1;
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(10));
  EvalOptions opt;
  opt.record_mistakes = true;
  const auto r = evaluate(d, t, opt);
  ASSERT_EQ(r.metrics.mistake_count, 1u);
  ASSERT_EQ(r.mistakes.size(), 1u);
  // Awaiting heartbeat 5; freshness point was 5*kI + 10ms; trust resumed
  // when m_6 arrived at 6*kI.
  EXPECT_EQ(r.mistakes[0].awaiting_seq, 5);
  EXPECT_EQ(r.mistakes[0].start, 5 * kI + ticks_from_ms(10));
  EXPECT_EQ(r.mistakes[0].end, 6 * kI);
  EXPECT_NEAR(r.metrics.mistake_duration_s, 0.090, 1e-9);
  // P_A = 1 - 0.090 / 0.9 observed seconds.
  EXPECT_NEAR(r.metrics.query_accuracy, 1.0 - 0.090 / 0.9, 1e-9);
  EXPECT_NEAR(r.metrics.mistake_rate_per_s, 1.0 / 0.9, 1e-9);
}

TEST(Evaluator, ConsecutiveLossesAreOneMistake) {
  std::vector<Tick> off(12, 0);
  off[4] = off[5] = off[6] = -1;  // 5,6,7 lost
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(10));
  EvalOptions opt;
  opt.record_mistakes = true;
  const auto r = evaluate(d, t, opt);
  ASSERT_EQ(r.metrics.mistake_count, 1u);
  EXPECT_EQ(r.mistakes[0].awaiting_seq, 5);
  EXPECT_EQ(r.mistakes[0].end, 8 * kI);  // m_8 restores trust
  EXPECT_NEAR(r.metrics.mistake_duration_s, 0.290, 1e-9);
}

TEST(Evaluator, LateHeartbeatMistake) {
  // #5 arrives 60 ms late: mistake from tau_5 to the late arrival.
  std::vector<Tick> off(10, 0);
  off[4] = ticks_from_ms(60);
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(10));
  EvalOptions opt;
  opt.record_mistakes = true;
  const auto r = evaluate(d, t, opt);
  ASSERT_EQ(r.metrics.mistake_count, 1u);
  EXPECT_EQ(r.mistakes[0].start, 5 * kI + ticks_from_ms(10));
  EXPECT_EQ(r.mistakes[0].end, 5 * kI + ticks_from_ms(60));
  EXPECT_NEAR(r.metrics.mistake_duration_s, 0.050, 1e-9);
}

TEST(Evaluator, TwoSeparateMistakes) {
  std::vector<Tick> off(20, 0);
  off[4] = -1;
  off[14] = -1;
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(10));
  const auto r = evaluate(d, t);
  EXPECT_EQ(r.metrics.mistake_count, 2u);
}

TEST(Evaluator, LargerMarginRemovesMistakes) {
  std::vector<Tick> off(10, 0);
  off[4] = ticks_from_ms(60);
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(80));  // margin exceeds the lateness
  const auto r = evaluate(d, t);
  EXPECT_EQ(r.metrics.mistake_count, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.query_accuracy, 1.0);
}

TEST(Evaluator, DetectionTimeGrowsWithMargin) {
  const auto t = make_trace(std::vector<Tick>(50, 0));
  auto d1 = chen(ticks_from_ms(10));
  auto d2 = chen(ticks_from_ms(200));
  const auto r1 = evaluate(d1, t);
  const auto r2 = evaluate(d2, t);
  EXPECT_NEAR(r2.metrics.detection_time_s - r1.metrics.detection_time_s, 0.190,
              1e-9);
}

TEST(Evaluator, TrailingSuspicionClosedAtObservationEnd) {
  // Last heartbeat lost: the armed freshness point fires before t_end.
  std::vector<Tick> off(10, 0);
  off[8] = -1;  // #9 lost; #10 delivered late enough to include tau_9?
  off[9] = ticks_from_ms(90);
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(10));
  EvalOptions opt;
  opt.record_mistakes = true;
  const auto r = evaluate(d, t, opt);
  // Mistake for awaiting #9 from tau_9=9I+10ms until #10 at 10I+90ms.
  ASSERT_EQ(r.metrics.mistake_count, 1u);
  EXPECT_EQ(r.mistakes[0].end, 10 * kI + ticks_from_ms(90));
}

TEST(Evaluator, SkipFirstExcludesWarmupMistakes) {
  std::vector<Tick> off(20, 0);
  off[2] = -1;  // early mistake
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(10));
  EvalOptions opt;
  opt.skip_first = 5;
  const auto r = evaluate(d, t, opt);
  EXPECT_EQ(r.metrics.mistake_count, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.query_accuracy, 1.0);
}

TEST(Evaluator, EmptyAndTinyTraces) {
  trace::Trace empty("e", kI);
  auto d = chen(ticks_from_ms(10));
  const auto r = evaluate(d, empty);
  EXPECT_EQ(r.metrics.mistake_count, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.observed_s, 0.0);

  const auto one = make_trace({0});
  const auto r1 = evaluate(d, one);
  EXPECT_DOUBLE_EQ(r1.metrics.observed_s, 0.0);
}

TEST(Evaluator, ResetsDetectorBetweenRuns) {
  const auto t = make_trace(std::vector<Tick>(30, 0));
  auto d = chen(ticks_from_ms(10));
  const auto a = evaluate(d, t);
  const auto b = evaluate(d, t);  // must be identical, not contaminated
  EXPECT_EQ(a.metrics.mistake_count, b.metrics.mistake_count);
  EXPECT_DOUBLE_EQ(a.metrics.detection_time_s, b.metrics.detection_time_s);
  EXPECT_DOUBLE_EQ(a.metrics.query_accuracy, b.metrics.query_accuracy);
}

TEST(Evaluator, ReorderedArrivalsAreStaleNonEvents) {
  // Non-FIFO delivery: seq 5 overtakes seq 4. The late stale heartbeat
  // must neither restore trust nor perturb estimation.
  trace::Trace t("reorder", kI, 0);
  t.push({1, 1 * kI, 1 * kI, false});
  t.push({2, 2 * kI, 2 * kI, false});
  t.push({3, 3 * kI, 3 * kI, false});
  // seq 4 delayed hugely, seq 5 on time: 5 arrives first.
  t.push({4, 4 * kI, 5 * kI + ticks_from_ms(50), false});
  t.push({5, 5 * kI, 5 * kI, false});
  for (std::int64_t s = 6; s <= 10; ++s) t.push({s, s * kI, s * kI, false});

  auto d = chen(ticks_from_ms(10));
  qos::EvalOptions opt;
  opt.record_mistakes = true;
  const auto r = evaluate(d, t, opt);
  // One mistake while awaiting seq 4 (from tau_4 until seq 5's arrival);
  // the stale seq-4 arrival afterwards is a non-event.
  ASSERT_EQ(r.metrics.mistake_count, 1u);
  EXPECT_EQ(r.mistakes[0].awaiting_seq, 4);
  EXPECT_EQ(r.mistakes[0].start, 4 * kI + ticks_from_ms(10));
  EXPECT_EQ(r.mistakes[0].end, 5 * kI);
}

TEST(Evaluator, DetectionTailPercentilesOrdered) {
  std::vector<Tick> off(2000, 0);
  // Sprinkle late arrivals to give the TD distribution a tail.
  for (std::size_t i = 50; i < off.size(); i += 97) off[i] = ticks_from_ms(70);
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(20), /*window=*/1);
  const auto r = evaluate(d, t);
  // Quantiles are ordered (the mean need not sit below p95 for a spiky
  // distribution — outliers pull the mean, not the bulk quantiles).
  EXPECT_LE(r.metrics.detection_time_p95_s, r.metrics.detection_time_p99_s);
  EXPECT_LE(r.metrics.detection_time_p99_s,
            r.metrics.detection_time_max_s + 1e-9);
  // The bulk sits at interval+margin = 120 ms...
  EXPECT_NEAR(r.metrics.detection_time_p95_s, 0.120, 0.005);
  // ...while the max reflects the injected 70 ms latecomers.
  EXPECT_GT(r.metrics.detection_time_max_s, r.metrics.detection_time_s + 0.05);
}

TEST(Evaluator, MistakeRecurrenceIsInverseRate) {
  std::vector<Tick> off(20, 0);
  off[4] = -1;
  const auto t = make_trace(off);
  auto d = chen(ticks_from_ms(10));
  const auto r = evaluate(d, t);
  EXPECT_NEAR(r.metrics.mistake_recurrence_s(), 1.0 / r.metrics.mistake_rate_per_s,
              1e-9);
}

}  // namespace
}  // namespace twfd::qos

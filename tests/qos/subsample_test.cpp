#include "qos/subsample.hpp"

#include <gtest/gtest.h>

namespace twfd::qos {
namespace {

TEST(Subsample, CountsPerPeriod) {
  std::vector<trace::Period> periods = {
      {"Stable 1", 1, 100}, {"Burst", 101, 110}, {"Worm", 111, 200}};
  std::vector<MistakeRecord> mistakes = {
      {0, 1, 5},   {0, 1, 99},  {0, 1, 101},
      {0, 1, 110}, {0, 1, 150}, {0, 1, 999},  // outside every period
  };
  const auto counts = count_mistakes_by_period(mistakes, periods);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0].period, "Stable 1");
  EXPECT_EQ(counts[0].mistakes, 2u);
  EXPECT_EQ(counts[1].mistakes, 2u);
  EXPECT_EQ(counts[2].mistakes, 1u);
}

TEST(Subsample, BoundariesInclusive) {
  std::vector<trace::Period> periods = {{"P", 10, 20}};
  std::vector<MistakeRecord> mistakes = {{0, 1, 10}, {0, 1, 20}, {0, 1, 9}, {0, 1, 21}};
  const auto counts = count_mistakes_by_period(mistakes, periods);
  EXPECT_EQ(counts[0].mistakes, 2u);
}

TEST(Subsample, EmptyInputs) {
  EXPECT_TRUE(count_mistakes_by_period({}, {}).empty());
  const auto counts = count_mistakes_by_period({}, {{"P", 1, 5}});
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].mistakes, 0u);
}

TEST(Subsample, TotalConservedWhenPeriodsCover) {
  std::vector<trace::Period> periods = {{"A", 1, 50}, {"B", 51, 100}};
  std::vector<MistakeRecord> mistakes;
  for (std::int64_t i = 1; i <= 100; i += 7) mistakes.push_back({0, 1, i});
  const auto counts = count_mistakes_by_period(mistakes, periods);
  EXPECT_EQ(counts[0].mistakes + counts[1].mistakes, mistakes.size());
}

}  // namespace
}  // namespace twfd::qos

#include "qos/parallel_eval.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "trace/generator.hpp"

namespace twfd::qos {
namespace {

trace::Trace make_channel() {
  trace::TraceGenerator gen("par", ticks_from_ms(100), ticks_from_sec(1), 77);
  trace::Regime r;
  r.label = "a";
  r.count = 30'000;
  r.delay = std::make_unique<trace::ExponentialDelay>(0.002, 0.008);
  r.loss = std::make_unique<trace::BernoulliLoss>(0.02);
  gen.add_regime(std::move(r));
  return gen.generate();
}

std::vector<core::DetectorSpec> sweep() {
  std::vector<core::DetectorSpec> specs;
  for (int m : {20, 50, 100, 200, 400}) {
    specs.push_back(core::DetectorSpec::two_window(1, 100, ticks_from_ms(m)));
    specs.push_back(core::DetectorSpec::chen(100, ticks_from_ms(m)));
  }
  specs.push_back(core::DetectorSpec::phi(2.0));
  specs.push_back(core::DetectorSpec::bertier(100));
  return specs;
}

TEST(ParallelEval, MatchesSequentialExactly) {
  const auto t = make_channel();
  const auto specs = sweep();
  const auto seq = evaluate_many(specs, t, {}, 1);
  const auto par = evaluate_many(specs, t, {}, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].metrics.mistake_count, par[i].metrics.mistake_count) << i;
    EXPECT_DOUBLE_EQ(seq[i].metrics.detection_time_s,
                     par[i].metrics.detection_time_s)
        << i;
    EXPECT_DOUBLE_EQ(seq[i].metrics.query_accuracy, par[i].metrics.query_accuracy)
        << i;
    EXPECT_EQ(seq[i].metrics.detector, par[i].metrics.detector) << i;
  }
}

TEST(ParallelEval, ResultsInInputOrder) {
  const auto t = make_channel();
  const auto specs = sweep();
  const auto results = evaluate_many(specs, t, {}, 3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto expected = core::make_detector(specs[i], t.interval(), t.clock_skew());
    EXPECT_EQ(results[i].metrics.detector, expected->name()) << i;
  }
}

TEST(ParallelEval, MoreThreadsThanSpecs) {
  const auto t = make_channel();
  std::vector<core::DetectorSpec> one = {
      core::DetectorSpec::two_window(1, 100, ticks_from_ms(50))};
  const auto r = evaluate_many(one, t, {}, 16);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_GT(r[0].metrics.detection_samples, 20'000u);
}

TEST(ParallelEval, EmptySpecList) {
  const auto t = make_channel();
  EXPECT_TRUE(evaluate_many({}, t).empty());
}

TEST(ParallelEval, RecordsMistakesWhenAsked) {
  const auto t = make_channel();
  EvalOptions opt;
  opt.record_mistakes = true;
  const auto r = evaluate_many(
      {core::DetectorSpec::chen(1, ticks_from_ms(20))}, t, opt, 2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].mistakes.size(), r[0].metrics.mistake_count);
  EXPECT_GT(r[0].mistakes.size(), 0u);
}

}  // namespace
}  // namespace twfd::qos

#include "qos/crash_experiment.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/multi_window.hpp"
#include "detect/chen.hpp"
#include "qos/evaluator.hpp"
#include "trace/generator.hpp"

namespace twfd::qos {
namespace {

constexpr Tick kI = ticks_from_ms(100);

trace::Trace clean_trace(std::int64_t n) {
  trace::Trace t("clean", kI, ticks_from_sec(2));
  for (std::int64_t s = 1; s <= n; ++s) {
    t.push({s, s * kI, s * kI + ticks_from_sec(2) + ticks_from_ms(1), false});
  }
  return t;
}

detect::ChenDetector chen(Tick margin) {
  detect::ChenDetector::Params p;
  p.window = 4;
  p.interval = kI;
  p.safety_margin = margin;
  return detect::ChenDetector(p);
}

TEST(CrashExperiment, CleanTraceMatchesClosedForm) {
  const auto t = clean_trace(5000);
  auto d = chen(ticks_from_ms(50));
  const auto r = run_crash_experiment(d, t, 500);
  EXPECT_EQ(r.undetected, 0u);
  EXPECT_EQ(r.crashes, 500u);
  // Crash right after sending m_l, delay 1 ms: detection at
  // EA_{l+1} + margin = send_{l+1} + skew + 1ms + 50ms, i.e.
  // TD = interval + 1ms + 50ms exactly, for every crash.
  EXPECT_NEAR(r.mean_td_s, 0.151, 1e-9);
  EXPECT_NEAR(r.min_td_s, 0.151, 1e-9);
  EXPECT_NEAR(r.max_td_s, 0.151, 1e-9);
}

TEST(CrashExperiment, MatchesEvaluatorAnalyticTd) {
  // On a jittery lossy channel, crash-measured mean T_D must agree with
  // the evaluator's per-heartbeat analytic T_D.
  trace::TraceGenerator gen("chan", kI, 0, 51);
  trace::Regime reg;
  reg.label = "a";
  reg.count = 50'000;
  reg.delay = std::make_unique<trace::ExponentialDelay>(0.002, 0.010);
  reg.loss = std::make_unique<trace::BernoulliLoss>(0.02);
  gen.add_regime(std::move(reg));
  const auto t = gen.generate();

  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 100};
  mp.interval = kI;
  mp.safety_margin = ticks_from_ms(80);
  core::MultiWindowDetector d(mp);

  const auto analytic = evaluate(d, t).metrics;
  const auto crash = run_crash_experiment(d, t, 2000);
  ASSERT_GT(crash.crashes, 1900u);
  // Crash sampling is uniform over sends; analytic averages over
  // deliveries. With 2% loss they differ slightly: crashes just after a
  // LOST heartbeat are detected later. Agreement within a few percent.
  EXPECT_NEAR(crash.mean_td_s, analytic.detection_time_s,
              0.15 * analytic.detection_time_s);
  EXPECT_GE(crash.p99_td_s, crash.mean_td_s);
  EXPECT_GE(crash.max_td_s, crash.p99_td_s);
}

TEST(CrashExperiment, LossAcceleratesDetectionAfterSilence) {
  // A crash DURING a loss run is detected early: the preceding silence
  // already pushed the detector toward (or into) suspicion, so the
  // residual detection time shrinks — possibly to zero when the crash
  // lands deep inside a run the detector had already flagged. The
  // worst case stays the clean one: crash right after a delivered
  // heartbeat, waiting out the full freshness horizon.
  trace::TraceGenerator gen("lossy", kI, 0, 52);
  trace::Regime reg;
  reg.label = "a";
  reg.count = 20'000;
  reg.delay = std::make_unique<trace::ConstantJitterDelay>(0.001, 0.001);
  reg.loss = std::make_unique<trace::GilbertElliottLoss>(0.01, 0.3, 0.0, 0.9);
  gen.add_regime(std::move(reg));
  const auto t = gen.generate();

  auto d = chen(ticks_from_ms(50));
  const auto r = run_crash_experiment(d, t, 2000);
  // Full horizon: interval + delay + margin ~ 0.152 s.
  EXPECT_NEAR(r.max_td_s, 0.152, 0.01);
  // Crashes inside loss runs: markedly below the horizon.
  EXPECT_LT(r.min_td_s, 0.06);
  EXPECT_LT(r.mean_td_s, r.max_td_s);
  EXPECT_LE(r.p99_td_s, r.max_td_s + 1e-9);
}

TEST(CrashExperiment, WarmupCrashesAreUndetected) {
  // phi-like warm-up: before 2 heartbeats the detector trusts forever.
  const auto t = clean_trace(100);
  auto d = chen(ticks_from_ms(50));
  const auto r = run_crash_experiment(d, t, 10, /*skip_first=*/0);
  // Chen warms after one heartbeat; crash at seq 1 can still be detected
  // (m_1 delivered). No undetected expected here.
  EXPECT_EQ(r.undetected, 0u);
}

TEST(CrashExperiment, EmptyInputs) {
  trace::Trace empty("e", kI);
  auto d = chen(ticks_from_ms(50));
  EXPECT_EQ(run_crash_experiment(d, empty, 100).crashes, 0u);
  const auto t = clean_trace(100);
  EXPECT_EQ(run_crash_experiment(d, t, 0).crashes, 0u);
}

}  // namespace
}  // namespace twfd::qos

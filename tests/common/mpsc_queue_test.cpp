// MpscQueue: single-thread semantics (FIFO, capacity bound, raw-slot
// lifetime) plus the cross-thread producer/consumer stress the sharded
// runtime's command marshaling depends on. The stress cases are the
// ThreadSanitizer canary for the queue's memory ordering.

#include "common/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace twfd {
namespace {

TEST(MpscQueue, FifoSingleThread) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwo) {
  MpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  MpscQueue<int> q2(8);
  EXPECT_EQ(q2.capacity(), 8u);
  MpscQueue<int> q3(1);
  EXPECT_EQ(q3.capacity(), 1u);
}

TEST(MpscQueue, PushFailsWhenFullAndRecoversAfterPop) {
  MpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(99));
  int v = -1;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(4));
  for (int expect : {1, 2, 3, 4}) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, expect);
  }
}

TEST(MpscQueue, MoveOnlyElements) {
  MpscQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(7)));
  EXPECT_TRUE(q.try_push(std::make_unique<int>(8)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(*out, 7);
  // Remaining element is destroyed by ~MpscQueue (ASan leak check).
}

TEST(MpscQueue, DestructorDrainsUnpoppedElements) {
  auto counter = std::make_shared<int>(0);
  {
    MpscQueue<std::shared_ptr<int>> q(8);
    for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_push(std::shared_ptr<int>(counter)));
    std::shared_ptr<int> out;
    EXPECT_TRUE(q.try_pop(out));
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// Cross-thread stress: P producers push (producer_id, seq) pairs through
// a deliberately small ring while one consumer pops. Checks: nothing is
// lost or duplicated, and per-producer FIFO order is preserved.
TEST(MpscQueue, ProducerConsumerStress) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  struct Item {
    std::uint64_t producer;
    std::uint64_t seq;
  };
  MpscQueue<Item> q(256);

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  std::thread consumer([&] {
    Item item{};
    while (received < kProducers * kPerProducer) {
      if (q.try_pop(item)) {
        ++received;
        ASSERT_LT(item.producer, kProducers);
        ASSERT_EQ(item.seq, next_seq[item.producer]) << "per-producer FIFO broken";
        ++next_seq[item.producer];
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        Item item{p, i};
        while (!q.try_push(std::move(item))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  EXPECT_EQ(received, kProducers * kPerProducer);
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer) << "producer " << p;
  }
}

// Same shape with a non-trivially-copyable payload: the raw-slot
// construct/destroy discipline must stay correct under contention.
TEST(MpscQueue, StressWithHeapPayload) {
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kPerProducer = 5'000;
  MpscQueue<std::vector<std::uint64_t>> q(64);

  std::uint64_t received = 0;
  std::uint64_t checksum = 0;
  std::thread consumer([&] {
    std::vector<std::uint64_t> v;
    while (received < kProducers * kPerProducer) {
      if (q.try_pop(v)) {
        ++received;
        ASSERT_EQ(v.size(), 3u);
        checksum += v[0] + v[1] + v[2];
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::atomic<std::uint64_t> pushed_sum{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::vector<std::uint64_t> v = {p, i, p * i};
        local += v[0] + v[1] + v[2];
        while (!q.try_push(std::move(v))) std::this_thread::yield();
      }
      pushed_sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  EXPECT_EQ(received, kProducers * kPerProducer);
  EXPECT_EQ(checksum, pushed_sum.load());
}

}  // namespace
}  // namespace twfd

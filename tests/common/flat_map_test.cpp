// FlatMap64 behaviour under churn: the open-addressing table must keep
// miss probes short when entries are erased without interleaved inserts
// (delete-only phases used to accumulate tombstones until every miss
// scanned to the first never-used bucket — silently, since correctness
// held). The compaction trigger in erase() is the regression target.
#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace twfd {
namespace {

TEST(FlatMapCompaction, EraseCompactsTombstonePressure) {
  FlatMap64<std::uint64_t> m;
  constexpr std::uint64_t kN = 4096;
  for (std::uint64_t k = 0; k < kN; ++k) m.try_emplace(k, k);
  const std::size_t buckets = m.bucket_count();

  // Delete-only churn: erase most of the table with NO inserts. Without
  // the in-place compaction the tombstone count would climb to kN and
  // every miss probe would walk to the first never-used bucket.
  for (std::uint64_t k = 0; k < kN - 8; ++k) EXPECT_TRUE(m.erase(k));

  EXPECT_EQ(m.size(), 8u);
  // The 3/8-of-capacity trigger must have fired along the way.
  EXPECT_LT(m.tombstones() * 8, m.bucket_count() * 3);
  // Compaction never grows the table — it is a same-size rehash.
  EXPECT_LE(m.bucket_count(), buckets);

  // Survivors are intact; the erased majority miss correctly.
  for (std::uint64_t k = kN - 8; k < kN; ++k) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), k);
  }
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_EQ(m.find(k), nullptr);
}

TEST(FlatMapCompaction, ChurnKeepsTombstonesBoundedForever) {
  FlatMap64<int> m;
  // Steady-state churn at a fixed working set: whatever the interleaving,
  // the tombstone load must stay under the compaction threshold, so the
  // worst-case miss probe stays bounded by a constant fraction of the
  // (fixed-size) table rather than degrading with total churn volume.
  constexpr std::uint64_t kWindow = 512;
  for (std::uint64_t k = 0; k < 200'000; ++k) {
    m.try_emplace(k, 1);
    if (k >= kWindow) EXPECT_TRUE(m.erase(k - kWindow));
    ASSERT_LT(m.tombstones() * 8, m.bucket_count() * 3 + 8)
        << "tombstone pressure unbounded at k=" << k;
  }
  EXPECT_EQ(m.size(), kWindow);
  // The table sized itself for the working set, not the churn volume.
  EXPECT_LE(m.bucket_count(), 4096u);
}

TEST(FlatMapCompaction, TombstoneRecyclingStillWorksAfterCompaction) {
  FlatMap64<int> m;
  for (std::uint64_t k = 0; k < 1024; ++k) m.try_emplace(k, 1);
  for (std::uint64_t k = 0; k < 1024; k += 2) m.erase(k);
  // Reinsert into the half-empty table: every key must land and find.
  for (std::uint64_t k = 0; k < 1024; ++k) m.insert_or_assign(k, 2);
  EXPECT_EQ(m.size(), 1024u);
  for (std::uint64_t k = 0; k < 1024; ++k) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), 2);
  }
}

TEST(FlatMapCompaction, ClearResetsTombstones) {
  FlatMap64<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.try_emplace(k, 1);
  for (std::uint64_t k = 0; k < 50; ++k) m.erase(k);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.tombstones(), 0u);
  EXPECT_EQ(m.find(60), nullptr);
}

}  // namespace
}  // namespace twfd

#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace twfd {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalTail, ComplementsCdf) {
  for (double z : {-3.0, -1.0, 0.0, 0.5, 2.0, 4.0}) {
    EXPECT_NEAR(normal_tail(z) + normal_cdf(z), 1.0, 1e-14) << z;
  }
}

TEST(NormalTail, AccurateFarInTail) {
  // Q(6) ~ 9.8659e-10; the erfc-based form must not lose it to rounding.
  EXPECT_NEAR(normal_tail(6.0) / 9.865876450377018e-10, 1.0, 1e-9);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {1e-9, 1e-4, 0.025, 0.5, 0.8413447460685429, 0.975, 1.0 - 1e-9}) {
    const double z = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(z), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownQuantiles) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.9), 1.2815515655446004, 1e-9);
}

TEST(NormalQuantile, DomainChecked) {
  EXPECT_THROW(normal_quantile(0.0), std::logic_error);
  EXPECT_THROW(normal_quantile(1.0), std::logic_error);
  EXPECT_THROW(normal_quantile(-0.1), std::logic_error);
}

TEST(NormalTailMuSigma, ShiftsAndScales) {
  EXPECT_NEAR(normal_tail_mu_sigma(10.0, 10.0, 2.0), 0.5, 1e-14);
  EXPECT_NEAR(normal_tail_mu_sigma(12.0, 10.0, 2.0), normal_tail(1.0), 1e-14);
  EXPECT_THROW(normal_tail_mu_sigma(0.0, 0.0, 0.0), std::logic_error);
}

TEST(Bisect, FindsRoot) {
  const double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-12);
}

TEST(Bisect, EndpointRoot) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Bisect, RequiresSignChange) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::logic_error);
}

TEST(LargestSatisfying, MonotonePredicate) {
  // pred: x <= 0.7320508...
  const double x =
      largest_satisfying([](double v) { return v * v <= 0.5359; }, 0.0, 2.0);
  EXPECT_NEAR(x, std::sqrt(0.5359), 1e-9);
}

TEST(LargestSatisfying, AllTrueReturnsHi) {
  EXPECT_DOUBLE_EQ(largest_satisfying([](double) { return true; }, 1.0, 5.0), 5.0);
}

TEST(LargestSatisfying, NoneTrueReturnsLo) {
  EXPECT_DOUBLE_EQ(largest_satisfying([](double) { return false; }, 1.0, 5.0), 1.0);
}

TEST(LargestSatisfying, SurvivesNonMonotoneKinks) {
  // True on [0, 1] except a false notch at (0.4, 0.45); the coarse scan
  // must still land on the last satisfying region near 1.
  auto pred = [](double v) { return v <= 1.0 && !(v > 0.4 && v < 0.45); };
  const double x = largest_satisfying(pred, 0.0, 2.0, 400, 60);
  EXPECT_NEAR(x, 1.0, 1e-6);
}

}  // namespace
}  // namespace twfd

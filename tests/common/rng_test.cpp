#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace twfd {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01OpenLeftNeverZero) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_GT(rng.uniform01_open_left(), 0.0);
    ASSERT_LE(rng.uniform01_open_left(), 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(rng.uniform_int(7), 7u);
  }
}

TEST(Rng, UniformIntCoversAllResidues) {
  Xoshiro256 rng(6);
  int counts[5] = {};
  for (int i = 0; i < 50'000; ++i) ++counts[rng.uniform_int(5)];
  for (int c : counts) EXPECT_NEAR(c, 10'000, 600);
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 rng(7);
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.02);
  EXPECT_NEAR(s.stddev(), 2.0, 0.02);
}

TEST(Rng, ExponentialMomentsMatch) {
  Xoshiro256 rng(8);
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), 0.5, 0.01);  // exp: stddev == mean
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, LognormalMedianMatches) {
  Xoshiro256 rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 50'001; ++i) xs.push_back(rng.lognormal(std::log(0.01), 0.5));
  std::nth_element(xs.begin(), xs.begin() + 25'000, xs.end());
  EXPECT_NEAR(xs[25'000], 0.01, 0.0005);  // median = e^mu
}

TEST(Rng, ParetoSupportAndTail) {
  Xoshiro256 rng(10);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.pareto(1.0, 3.0));
  EXPECT_GE(s.min(), 1.0);
  EXPECT_NEAR(s.mean(), 1.5, 0.02);  // alpha/(alpha-1) * xm
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 30'000, 500);
}

}  // namespace
}  // namespace twfd

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace twfd {
namespace {

TEST(RunningStats, EmptyIsSane) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // classic population-variance example
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesNaiveOnRandomStream) {
  Xoshiro256 rng(7);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(WindowedStats, WindowEviction) {
  WindowedStats w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(4.0);  // evicts 1.0 -> {2,3,4}
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_TRUE(w.full());
}

TEST(WindowedStats, VarianceMatchesDirectComputation) {
  WindowedStats w(4);
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) w.add(x);
  // Window now holds {20,30,40,50}: mean 35, population var 125.
  EXPECT_DOUBLE_EQ(w.mean(), 35.0);
  EXPECT_NEAR(w.variance(), 125.0, 1e-9);
  EXPECT_NEAR(w.stddev(), std::sqrt(125.0), 1e-9);
}

TEST(WindowedStats, VarianceNonNegativeUnderCancellation) {
  // Large offset + tiny jitter stresses the sum-of-squares formulation.
  WindowedStats w(100);
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) w.add(1e9 + rng.uniform(0.0, 1e-3));
  EXPECT_GE(w.variance(), 0.0);
  EXPECT_NEAR(w.mean(), 1e9, 1e-2);
}

TEST(WindowedStats, SizeOneWindowTracksLatest) {
  WindowedStats w(1);
  w.add(5.0);
  w.add(9.0);
  EXPECT_DOUBLE_EQ(w.mean(), 9.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.count(), 1u);
}

TEST(WindowedStats, SlidingMatchesNaiveOnRandomStream) {
  Xoshiro256 rng(13);
  WindowedStats w(50);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.exponential(2.0);
    xs.push_back(x);
    w.add(x);
    const std::size_t n = std::min<std::size_t>(50, xs.size());
    double mean = 0;
    for (std::size_t k = xs.size() - n; k < xs.size(); ++k) mean += xs[k];
    mean /= static_cast<double>(n);
    ASSERT_NEAR(w.mean(), mean, 1e-9) << "at sample " << i;
  }
}

TEST(WindowedStats, ClearEmptiesState) {
  WindowedStats w(3);
  w.add(1.0);
  w.clear();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.sum(), 0.0);
}

}  // namespace
}  // namespace twfd

#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace twfd {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::sci(0.000123, 2), "1.23e-04");
}

}  // namespace
}  // namespace twfd

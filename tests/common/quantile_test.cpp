#include "common/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace twfd {
namespace {

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size()))) - 1;
  return xs[std::min(idx, xs.size() - 1)];
}

TEST(P2Quantile, DomainChecked) {
  EXPECT_THROW(P2Quantile(0.0), std::logic_error);
  EXPECT_THROW(P2Quantile(1.0), std::logic_error);
}

TEST(P2Quantile, EmptyReturnsZero) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2Quantile, SmallSamplesExact) {
  P2Quantile median(0.5);
  median.add(5.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);
  median.add(1.0);
  median.add(9.0);
  // {1,5,9}: nearest-rank median is 5.
  EXPECT_DOUBLE_EQ(median.value(), 5.0);
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile median(0.5);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100'000; ++i) median.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(median.value(), 5.0, 0.1);
}

TEST(P2Quantile, TailOfNormal) {
  P2Quantile p99(0.99);
  Xoshiro256 rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 200'000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    xs.push_back(x);
    p99.add(x);
  }
  const double exact = exact_quantile(xs, 0.99);
  EXPECT_NEAR(p99.value(), exact, 0.05);
  EXPECT_NEAR(p99.value(), 2.326, 0.08);  // true z_{0.99}
}

TEST(P2Quantile, HeavyTailExponential) {
  P2Quantile p95(0.95);
  Xoshiro256 rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.exponential(2.0);
    xs.push_back(x);
    p95.add(x);
  }
  // Exp(mean 2) p95 = 2 * ln(20) ~ 5.99.
  EXPECT_NEAR(p95.value(), exact_quantile(xs, 0.95), 0.25);
  EXPECT_NEAR(p95.value(), 5.99, 0.3);
}

TEST(P2Quantile, MonotoneAcrossQuantiles) {
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  Xoshiro256 rng(4);
  for (int i = 0; i < 50'000; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_LT(p50.value(), p90.value());
  EXPECT_LT(p90.value(), p99.value());
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile q(0.9);
  for (int i = 0; i < 1000; ++i) q.add(7.0);
  EXPECT_DOUBLE_EQ(q.value(), 7.0);
}

TEST(P2Quantile, SortedAndReversedStreamsAgree) {
  P2Quantile asc(0.9), desc(0.9);
  for (int i = 0; i < 10'000; ++i) asc.add(i);
  for (int i = 9'999; i >= 0; --i) desc.add(i);
  EXPECT_NEAR(asc.value(), 9'000.0, 150.0);
  EXPECT_NEAR(desc.value(), 9'000.0, 150.0);
}

}  // namespace
}  // namespace twfd

#include "common/time.hpp"

#include <gtest/gtest.h>

namespace twfd {
namespace {

TEST(Time, ConversionRoundTrips) {
  EXPECT_EQ(ticks_from_ms(215), 215'000'000);
  EXPECT_EQ(ticks_from_us(100), 100'000);
  EXPECT_EQ(ticks_from_sec(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(ticks_from_sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(ticks_from_ms(215)), 215.0);
  EXPECT_DOUBLE_EQ(to_micros(ticks_from_us(7)), 7.0);
}

TEST(Time, TicksFromSecondsRounds) {
  EXPECT_EQ(ticks_from_seconds(1.0), 1'000'000'000);
  EXPECT_EQ(ticks_from_seconds(0.1), 100'000'000);
  EXPECT_EQ(ticks_from_seconds(1e-9), 1);
  EXPECT_EQ(ticks_from_seconds(1.4e-9), 1);
  EXPECT_EQ(ticks_from_seconds(1.6e-9), 2);
  EXPECT_EQ(ticks_from_seconds(-1.6e-9), -2);
  EXPECT_EQ(ticks_from_seconds(0.0), 0);
}

TEST(Time, SaturatingAdd) {
  EXPECT_EQ(tick_add_sat(1, 2), 3);
  EXPECT_EQ(tick_add_sat(kTickInfinity, 5), kTickInfinity);
  EXPECT_EQ(tick_add_sat(5, kTickInfinity), kTickInfinity);
  EXPECT_EQ(tick_add_sat(kTickInfinity - 1, 10), kTickInfinity);
  EXPECT_EQ(tick_add_sat(kTickNegInfinity + 1, -10), kTickNegInfinity);
  EXPECT_EQ(tick_add_sat(-5, 3), -2);
}

TEST(Time, FormatTicks) {
  EXPECT_EQ(format_ticks(kTickInfinity), "inf");
  EXPECT_EQ(format_ticks(kTickNegInfinity), "-inf");
  EXPECT_EQ(format_ticks(500), "500ns");
  EXPECT_EQ(format_ticks(ticks_from_ms(215)), "215.000ms");
  EXPECT_EQ(format_ticks(ticks_from_sec(2)), "2.000s");
  EXPECT_EQ(format_ticks(ticks_from_us(12)), "12.000us");
}

TEST(Time, SteadyClockMonotone) {
  SteadyClock clock;
  const Tick a = clock.now();
  const Tick b = clock.now();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 0);
}

}  // namespace
}  // namespace twfd

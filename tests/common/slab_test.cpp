#include "common/slab.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/flat_map.hpp"

namespace twfd {
namespace {

// --- Slab, destroy policy ---------------------------------------------------

struct Payload {
  std::uint64_t tag = 0;
  std::vector<int> data;

  explicit Payload(std::uint64_t t) : tag(t), data(8, static_cast<int>(t)) {}
};

TEST(Slab, EmplaceGetErase) {
  Slab<Payload> slab;
  EXPECT_TRUE(slab.empty());
  const SlabHandle a = slab.emplace(1);
  const SlabHandle b = slab.emplace(2);
  EXPECT_EQ(slab.size(), 2u);
  ASSERT_NE(slab.get(a), nullptr);
  ASSERT_NE(slab.get(b), nullptr);
  EXPECT_EQ(slab.get(a)->tag, 1u);
  EXPECT_EQ(slab.get(b)->tag, 2u);
  EXPECT_TRUE(slab.erase(a));
  EXPECT_EQ(slab.size(), 1u);
  EXPECT_EQ(slab.get(a), nullptr);
  EXPECT_FALSE(slab.erase(a));  // second erase through a dead handle: no-op
}

TEST(Slab, DefaultHandleInvalid) {
  Slab<Payload> slab;
  SlabHandle none;
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(slab.get(none), nullptr);
  EXPECT_FALSE(slab.erase(none));
}

TEST(Slab, GenerationInvalidatesStaleHandleAfterReuse) {
  Slab<Payload> slab;
  const SlabHandle old = slab.emplace(7);
  ASSERT_TRUE(slab.erase(old));
  // The freed slot is reused by the next admission (free-list pop)...
  const SlabHandle fresh = slab.emplace(8);
  EXPECT_EQ(fresh.slot, old.slot);
  EXPECT_NE(fresh.generation, old.generation);
  // ...and the stale handle can never alias the new tenant (no ABA).
  EXPECT_EQ(slab.get(old), nullptr);
  ASSERT_NE(slab.get(fresh), nullptr);
  EXPECT_EQ(slab.get(fresh)->tag, 8u);
}

TEST(Slab, FreeListKeepsHighWaterFlatUnderChurn) {
  Slab<Payload> slab;
  std::vector<SlabHandle> live;
  for (std::uint64_t i = 0; i < 16; ++i) live.push_back(slab.emplace(i));
  const std::size_t high = slab.high_water();
  for (int round = 0; round < 1000; ++round) {
    slab.erase(live[static_cast<std::size_t>(round) % live.size()]);
    live[static_cast<std::size_t>(round) % live.size()] =
        slab.emplace(static_cast<std::uint64_t>(round));
  }
  // Churn at constant population never claims a fresh slot.
  EXPECT_EQ(slab.high_water(), high);
  EXPECT_EQ(slab.size(), 16u);
}

TEST(Slab, IterationIsMemoryLinear) {
  Slab<Payload> slab;
  for (std::uint64_t i = 0; i < 64; ++i) slab.emplace(i);
  const Payload* prev = nullptr;
  std::size_t visited = 0;
  std::uint32_t prev_slot = 0;
  slab.for_each([&](SlabHandle h, Payload& p) {
    if (prev != nullptr) {
      EXPECT_LT(prev, &p);          // ascending addresses: one linear sweep
      EXPECT_LT(prev_slot, h.slot); // ascending slot order
    }
    prev = &p;
    prev_slot = h.slot;
    ++visited;
  });
  EXPECT_EQ(visited, 64u);
}

TEST(Slab, GrowthPreservesObjectsAndHandles) {
  Slab<Payload> slab;
  std::vector<SlabHandle> handles;
  for (std::uint64_t i = 0; i < 1000; ++i) handles.push_back(slab.emplace(i));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_NE(slab.get(handles[i]), nullptr) << i;
    EXPECT_EQ(slab.get(handles[i])->tag, i);
    EXPECT_EQ(slab.get(handles[i])->data.front(), static_cast<int>(i));
  }
}

TEST(Slab, ReservePreventsGrowth) {
  Slab<Payload> slab;
  slab.reserve(256);
  EXPECT_GE(slab.capacity(), 256u);
  const std::size_t cap = slab.capacity();
  for (std::uint64_t i = 0; i < 256; ++i) slab.emplace(i);
  EXPECT_EQ(slab.capacity(), cap);
}

TEST(Slab, SlotsAreCacheLineAligned) {
  Slab<Payload> slab;
  const SlabHandle a = slab.emplace(1);
  const SlabHandle b = slab.emplace(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slab.get(a)) % kCacheLineBytes, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slab.get(b)) % kCacheLineBytes, 0u);
}

TEST(Slab, ClearInvalidatesEverything) {
  Slab<Payload> slab;
  const SlabHandle a = slab.emplace(1);
  slab.clear();
  EXPECT_TRUE(slab.empty());
  EXPECT_EQ(slab.get(a), nullptr);
  // Post-clear admissions mint handles the pre-clear ones never match.
  const SlabHandle b = slab.emplace(2);
  EXPECT_EQ(slab.get(a), nullptr);
  ASSERT_NE(slab.get(b), nullptr);
}

TEST(Slab, MoveTransfersOwnership) {
  Slab<Payload> slab;
  const SlabHandle a = slab.emplace(5);
  Slab<Payload> moved = std::move(slab);
  ASSERT_NE(moved.get(a), nullptr);
  EXPECT_EQ(moved.get(a)->tag, 5u);
  Slab<Payload> assigned;
  assigned = std::move(moved);
  ASSERT_NE(assigned.get(a), nullptr);
  EXPECT_EQ(assigned.get(a)->tag, 5u);
}

TEST(Slab, HundredKChurn) {
  // 100k admissions through a sliding window of 1024 live slots: the
  // free list must recycle slots (bounded high-water), every stale
  // handle must die, and ASan sees every construct/destroy balanced.
  Slab<Payload> slab;
  std::vector<SlabHandle> window;
  std::uint64_t next = 0;
  for (; next < 1024; ++next) window.push_back(slab.emplace(next));
  for (; next < 100000; ++next) {
    const std::size_t victim = static_cast<std::size_t>(next) % window.size();
    ASSERT_TRUE(slab.erase(window[victim]));
    ASSERT_EQ(slab.get(window[victim]), nullptr);
    window[victim] = slab.emplace(next);
    ASSERT_NE(slab.get(window[victim]), nullptr);
  }
  EXPECT_EQ(slab.size(), 1024u);
  EXPECT_LE(slab.high_water(), 1025u);
}

// --- Slab, recycle policy ---------------------------------------------------

/// A recyclable object with a heavy buffer: park() must keep the buffer's
/// capacity, reuse() must re-label without reallocating.
struct Session {
  std::uint64_t id = 0;
  std::vector<int> buffer;
  int reuses = 0;

  explicit Session(std::uint64_t i) : id(i) { buffer.reserve(512); }

  void park() {
    id = 0;
    buffer.clear();  // keeps capacity
  }
  void reuse(std::uint64_t i) {
    id = i;
    ++reuses;
  }
};

TEST(SlabRecycle, ParkedObjectIsReusedInPlace) {
  Slab<Session, SlabPolicy::kRecycle> slab;
  const SlabHandle a = slab.emplace(1);
  Session* first = slab.get(a);
  ASSERT_NE(first, nullptr);
  const int* storage = first->buffer.data();
  ASSERT_TRUE(slab.erase(a));
  EXPECT_EQ(slab.get(a), nullptr);

  const SlabHandle b = slab.emplace(2);
  Session* second = slab.get(b);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->id, 2u);
  EXPECT_EQ(second->reuses, 1);  // reuse(), not a fresh constructor
  // Same object, same buffer storage: eviction/readmission was
  // allocation-free for the heavy member.
  EXPECT_EQ(second, first);
  EXPECT_EQ(second->buffer.data(), storage);
  EXPECT_GE(second->buffer.capacity(), 512u);
}

TEST(SlabRecycle, StaleHandleStillDiesAcrossRecycle) {
  Slab<Session, SlabPolicy::kRecycle> slab;
  const SlabHandle a = slab.emplace(1);
  slab.erase(a);
  const SlabHandle b = slab.emplace(2);
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_EQ(slab.get(a), nullptr);
  ASSERT_NE(slab.get(b), nullptr);
}

TEST(SlabRecycle, ClearDestroysParkedObjects) {
  Slab<Session, SlabPolicy::kRecycle> slab;
  const SlabHandle a = slab.emplace(1);
  const SlabHandle b = slab.emplace(2);
  slab.erase(a);  // parked, still constructed
  slab.clear();   // must destroy live AND parked (ASan would catch a leak)
  EXPECT_TRUE(slab.empty());
  EXPECT_EQ(slab.get(b), nullptr);
  const SlabHandle c = slab.emplace(3);
  Session* s = slab.get(c);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->reuses, 0);  // fresh construction after clear
}

// --- FlatMap64 --------------------------------------------------------------

TEST(FlatMap64, InsertFindErase) {
  FlatMap64<int> map;
  EXPECT_EQ(map.find(42), nullptr);
  auto [v, inserted] = map.try_emplace(42, 7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 7);
  auto [v2, inserted2] = map.try_emplace(42, 9);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 7);
  map.insert_or_assign(42, 9);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 9);
  EXPECT_TRUE(map.erase(42));
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_FALSE(map.erase(42));
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap64, ExtremeKeysAreOrdinary) {
  FlatMap64<int> map;
  map.insert_or_assign(0, 1);
  map.insert_or_assign(~std::uint64_t{0}, 2);
  ASSERT_NE(map.find(0), nullptr);
  ASSERT_NE(map.find(~std::uint64_t{0}), nullptr);
  EXPECT_EQ(*map.find(0), 1);
  EXPECT_EQ(*map.find(~std::uint64_t{0}), 2);
}

TEST(FlatMap64, RehashKeepsEveryEntry) {
  FlatMap64<std::uint64_t> map;
  for (std::uint64_t k = 1; k <= 10000; ++k) map.insert_or_assign(k, k * 3);
  EXPECT_EQ(map.size(), 10000u);
  for (std::uint64_t k = 1; k <= 10000; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k * 3);
  }
}

TEST(FlatMap64, TombstonesAreRecycledWithoutUnboundedGrowth) {
  FlatMap64<int> map;
  map.reserve(64);
  const std::size_t buckets = map.bucket_count();
  // Far more erase/insert cycles than buckets at a tiny live size: the
  // same-size tombstone purge must keep the table from growing.
  for (std::uint64_t k = 0; k < 100000; ++k) {
    map.insert_or_assign(k, 1);
    EXPECT_TRUE(map.erase(k));
  }
  EXPECT_EQ(map.bucket_count(), buckets);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap64, HundredKChurnWithLivePopulation) {
  FlatMap64<std::uint64_t> map;
  for (std::uint64_t k = 0; k < 1024; ++k) map.insert_or_assign(k, k);
  for (std::uint64_t k = 1024; k < 100000; ++k) {
    ASSERT_TRUE(map.erase(k - 1024));
    map.insert_or_assign(k, k);
    ASSERT_EQ(map.size(), 1024u);
  }
  std::uint64_t count = 0;
  std::uint64_t sum_keys = 0, sum_vals = 0;
  map.for_each([&](std::uint64_t k, std::uint64_t& v) {
    ++count;
    sum_keys += k;
    sum_vals += v;
  });
  EXPECT_EQ(count, 1024u);
  EXPECT_EQ(sum_keys, sum_vals);
}

TEST(FlatMap64, FindIsConstAndAllocationFreeShape) {
  FlatMap64<int> map;
  map.insert_or_assign(5, 50);
  const FlatMap64<int>& cmap = map;
  ASSERT_NE(cmap.find(5), nullptr);
  EXPECT_EQ(*cmap.find(5), 50);
  EXPECT_EQ(cmap.find(6), nullptr);
}

}  // namespace
}  // namespace twfd

#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <type_traits>

namespace twfd {
namespace {

// The arrival-sample types the estimators store need not be
// default-constructible; the buffer must never materialise a dummy T.
struct NoDefault {
  explicit NoDefault(int x) : value(x) {}
  int value;
  bool operator==(const NoDefault&) const = default;
};
static_assert(!std::is_default_constructible_v<NoDefault>);

TEST(RingBuffer, WorksWithoutDefaultConstructor) {
  RingBuffer<NoDefault> rb(3);
  rb.push(NoDefault{1});
  rb.push(NoDefault{2});
  rb.push(NoDefault{3});
  rb.push(NoDefault{4});  // evicts 1 via in-place overwrite
  EXPECT_EQ(rb.oldest().value, 2);
  EXPECT_EQ(rb.newest().value, 4);

  NoDefault evicted{0};
  EXPECT_TRUE(rb.push_evict(NoDefault{5}, evicted));
  EXPECT_EQ(evicted.value, 2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(NoDefault{9});
  EXPECT_EQ(rb.oldest().value, 9);
}

TEST(RingBuffer, NonTrivialElementLifetimes) {
  // Heap-owning elements + wrap-around; leaks or double-destroys show up
  // under the sanitizer configuration (tools/sanitize_check.sh).
  RingBuffer<std::string> rb(3);
  for (int i = 0; i < 10; ++i) rb.push("value-" + std::to_string(i));
  EXPECT_EQ(rb.oldest(), "value-7");
  EXPECT_EQ(rb.newest(), "value-9");

  RingBuffer<std::string> copy(rb);
  EXPECT_EQ(copy.newest(), "value-9");
  copy.push("value-10");
  EXPECT_EQ(copy.newest(), "value-10");
  EXPECT_EQ(rb.newest(), "value-9");  // deep copy

  RingBuffer<std::string> moved(std::move(copy));
  EXPECT_EQ(moved.newest(), "value-10");
  rb = moved;
  EXPECT_EQ(rb.oldest(), "value-8");
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::logic_error);
}

TEST(RingBuffer, PushUntilFull) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.oldest(), 1);
  EXPECT_EQ(rb.newest(), 3);
}

TEST(RingBuffer, EvictsOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 3; ++i) rb.push(i);
  int evicted = 0;
  EXPECT_TRUE(rb.push_evict(4, evicted));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(rb.oldest(), 2);
  EXPECT_EQ(rb.newest(), 4);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, NoEvictionWhenNotFull) {
  RingBuffer<int> rb(3);
  int evicted = -1;
  EXPECT_FALSE(rb.push_evict(1, evicted));
  EXPECT_EQ(evicted, -1);
}

TEST(RingBuffer, IndexedAccessFromBothEnds) {
  RingBuffer<int> rb(4);
  for (int i = 10; i < 16; ++i) rb.push(i);  // holds 12,13,14,15
  EXPECT_EQ(rb.oldest(0), 12);
  EXPECT_EQ(rb.oldest(3), 15);
  EXPECT_EQ(rb.newest(0), 15);
  EXPECT_EQ(rb.newest(3), 12);
}

TEST(RingBuffer, OutOfRangeAccessThrows) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_THROW((void)rb.oldest(1), std::logic_error);
  EXPECT_THROW((void)rb.newest(1), std::logic_error);
}

TEST(RingBuffer, CapacityOneBehavesAsLatch) {
  RingBuffer<int> rb(1);
  rb.push(7);
  EXPECT_EQ(rb.newest(), 7);
  int evicted = 0;
  EXPECT_TRUE(rb.push_evict(9, evicted));
  EXPECT_EQ(evicted, 7);
  EXPECT_EQ(rb.newest(), 9);
  EXPECT_EQ(rb.oldest(), 9);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(5);
  EXPECT_EQ(rb.oldest(), 5);
}

TEST(RingBuffer, LongWrapAroundKeepsOrder) {
  RingBuffer<int> rb(5);
  for (int i = 0; i < 1000; ++i) rb.push(i);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(rb.oldest(k), 995 + static_cast<int>(k));
  }
}

}  // namespace
}  // namespace twfd

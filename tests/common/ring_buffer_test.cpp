#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace twfd {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::logic_error);
}

TEST(RingBuffer, PushUntilFull) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.oldest(), 1);
  EXPECT_EQ(rb.newest(), 3);
}

TEST(RingBuffer, EvictsOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 3; ++i) rb.push(i);
  int evicted = 0;
  EXPECT_TRUE(rb.push_evict(4, evicted));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(rb.oldest(), 2);
  EXPECT_EQ(rb.newest(), 4);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, NoEvictionWhenNotFull) {
  RingBuffer<int> rb(3);
  int evicted = -1;
  EXPECT_FALSE(rb.push_evict(1, evicted));
  EXPECT_EQ(evicted, -1);
}

TEST(RingBuffer, IndexedAccessFromBothEnds) {
  RingBuffer<int> rb(4);
  for (int i = 10; i < 16; ++i) rb.push(i);  // holds 12,13,14,15
  EXPECT_EQ(rb.oldest(0), 12);
  EXPECT_EQ(rb.oldest(3), 15);
  EXPECT_EQ(rb.newest(0), 15);
  EXPECT_EQ(rb.newest(3), 12);
}

TEST(RingBuffer, OutOfRangeAccessThrows) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_THROW((void)rb.oldest(1), std::logic_error);
  EXPECT_THROW((void)rb.newest(1), std::logic_error);
}

TEST(RingBuffer, CapacityOneBehavesAsLatch) {
  RingBuffer<int> rb(1);
  rb.push(7);
  EXPECT_EQ(rb.newest(), 7);
  int evicted = 0;
  EXPECT_TRUE(rb.push_evict(9, evicted));
  EXPECT_EQ(evicted, 7);
  EXPECT_EQ(rb.newest(), 9);
  EXPECT_EQ(rb.oldest(), 9);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(5);
  EXPECT_EQ(rb.oldest(), 5);
}

TEST(RingBuffer, LongWrapAroundKeepsOrder) {
  RingBuffer<int> rb(5);
  for (int i = 0; i < 1000; ++i) rb.push(i);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(rb.oldest(k), 995 + static_cast<int>(k));
  }
}

}  // namespace
}  // namespace twfd

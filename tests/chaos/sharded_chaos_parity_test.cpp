// Sharded parity under chaos (CTest label `chaos`): one shard worker is
// killed mid-run while every inbound heartbeat rides a 10% drop +
// reorder + duplication fault plan. The supervisor must detect the dead
// worker within the watchdog bound, rebuild the shard on the same port,
// re-seed its subscriptions — and the final per-app verdicts must match
// a single-loop FdService oracle run on the same workload.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "service/dispatcher.hpp"
#include "service/fd_service.hpp"
#include "service/heartbeat_sender.hpp"
#include "shard/sharded_monitor_service.hpp"

namespace twfd {
namespace {

using shard::ShardedMonitorService;

constexpr config::QosRequirements kQos{0.8, 1e-3, 4.0};
constexpr Tick kBeaconInterval = ticks_from_ms(200);

class Beacon {
 public:
  Beacon(std::uint64_t sender_id, std::uint16_t service_port)
      : loop_(std::make_unique<net::EventLoop>()) {
    port_ = loop_->local_port();
    thread_ = std::thread([this, sender_id, service_port] {
      service::Dispatcher dispatch(loop_->runtime());
      service::HeartbeatSender sender(
          loop_->runtime(),
          {.sender_id = sender_id, .base_interval = kBeaconInterval});
      dispatch.on_interval_request(
          [&](PeerId from, const net::IntervalRequestMsg& msg) {
            sender.handle_interval_request(from, msg);
          });
      sender.add_target(
          loop_->add_peer(net::SocketAddress::loopback(service_port)));
      sender.start();
      while (!stop_.load(std::memory_order_acquire)) {
        loop_->run_for(ticks_from_ms(50));
      }
      sender.stop();
    });
  }

  ~Beacon() { crash(); }

  void crash() {
    stop_.store(true, std::memory_order_release);
    loop_->wake();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] net::SocketAddress address() const {
    return net::SocketAddress::loopback(port_);
  }

 private:
  std::unique_ptr<net::EventLoop> loop_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

TEST(ShardedChaosParity, WorkerKillMidRunStillMatchesSingleLoopOracle) {
  constexpr std::size_t kBeacons = 4;
  const std::set<std::size_t> kCrashed = {1, 2};
  const auto app_name = [](std::size_t i) { return "capp" + std::to_string(i); };

  // --- Oracle: the classic single-loop service, clean network ---
  std::map<std::string, detect::Output> oracle;
  {
    net::EventLoop loop;
    service::Dispatcher dispatch(loop.runtime());
    service::FdService fd(loop.runtime(), {});
    dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
      fd.handle_heartbeat(from, m, at);
    });

    std::vector<std::unique_ptr<Beacon>> beacons;
    std::vector<service::FdService::SubscriptionId> subs;
    for (std::size_t i = 0; i < kBeacons; ++i) {
      beacons.push_back(std::make_unique<Beacon>(i + 1, loop.local_port()));
      subs.push_back(fd.subscribe(loop.add_peer(beacons[i]->address()), i + 1,
                                  app_name(i), kQos,
                                  [](const service::FdService::StatusEvent&) {}));
    }
    loop.run_for(ticks_from_ms(1500));
    for (std::size_t i : kCrashed) beacons[i]->crash();
    loop.run_for(ticks_from_ms(2500));
    for (int retry = 0; retry < 6; ++retry) {
      bool settled = true;
      for (std::size_t i = 0; i < kBeacons; ++i) {
        const auto expect = kCrashed.count(i) ? detect::Output::Suspect
                                              : detect::Output::Trust;
        if (fd.output(subs[i]) != expect) settled = false;
      }
      if (settled) break;
      loop.run_for(ticks_from_ms(500));
    }
    for (std::size_t i = 0; i < kBeacons; ++i) {
      oracle[app_name(i)] = fd.output(subs[i]);
    }
  }

  // --- Sharded run: chaos on the wire, a worker killed mid-run ---
  ShardedMonitorService svc(
      {.shards = 2,
       .receive_mode = ShardedMonitorService::ReceiveMode::kSingleSocket,
       .supervision = {.worker_heartbeat_period = ticks_from_ms(10),
                       .check_interval = ticks_from_ms(10),
                       .stall_timeout = ticks_from_ms(300),
                       .restart_backoff_min = ticks_from_ms(20),
                       .restart_backoff_max = ticks_from_ms(500)},
       .chaos = net::FaultPlan::parse("seed=42,drop=0.1,reorder=0.1,dup=0.1")});
  svc.start();

  std::vector<ShardedMonitorService::StatusEvent> health;
  const auto poll = [&] {
    svc.poll_events([&](const ShardedMonitorService::StatusEvent& e) {
      if (e.subscription == ShardedMonitorService::kHealthSubscription) {
        health.push_back(e);
      }
    });
  };

  std::vector<std::unique_ptr<Beacon>> beacons;
  std::size_t owned_by_0 = 0;
  for (std::size_t i = 0; i < kBeacons; ++i) {
    beacons.push_back(std::make_unique<Beacon>(i + 1, svc.port()));
    if (svc.shard_for(beacons[i]->address()) == 0) ++owned_by_0;
    svc.subscribe(beacons[i]->address(), i + 1, app_name(i), kQos);
  }

  // Warm-up, then kill shard 0's worker — in single-socket mode that is
  // the shard holding the only service socket: the hardest restart.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  poll();
  svc.inject_worker_fault(0, ShardedMonitorService::WorkerFault::kCrash);

  ASSERT_TRUE(wait_until(
      [&] {
        poll();
        const auto h = svc.health(0);
        return h.restarts >= 1 && !h.worker_exited && !h.degraded;
      },
      std::chrono::milliseconds(5000)))
      << "supervisor failed to restart the killed worker in bound";

  // The outage was announced and the recovery too (subscription-0 health
  // events for shard-0), and health events never leak into the entry list.
  EXPECT_TRUE(std::any_of(health.begin(), health.end(), [](const auto& e) {
    return e.app == "shard-0" && e.output == detect::Output::Suspect;
  }));
  ASSERT_TRUE(wait_until(
      [&] {
        poll();
        return std::any_of(health.begin(), health.end(), [](const auto& e) {
          return e.app == "shard-0" && e.output == detect::Output::Trust;
        });
      },
      std::chrono::milliseconds(3000)));
  for (const auto& entry : svc.view()->entries) {
    EXPECT_NE(entry.subscription, ShardedMonitorService::kHealthSubscription);
  }

  // Let the rebuilt detectors re-converge on live traffic, then crash
  // the same subset as the oracle run.
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  for (std::size_t i : kCrashed) beacons[i]->crash();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10000);
  bool settled = false;
  while (!settled && std::chrono::steady_clock::now() < deadline) {
    poll();
    const auto snap = svc.view();
    settled = snap->entries.size() == kBeacons;
    for (const auto& e : snap->entries) {
      std::size_t i = 0;
      for (; i < kBeacons; ++i)
        if (e.app == app_name(i)) break;
      const auto expect =
          kCrashed.count(i) ? detect::Output::Suspect : detect::Output::Trust;
      if (e.output != expect) settled = false;
    }
    if (!settled) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(settled) << "sharded verdicts never converged after the restart";

  std::map<std::string, detect::Output> sharded;
  for (const auto& e : svc.view()->entries) sharded[e.app] = e.output;
  EXPECT_EQ(oracle, sharded) << "verdict parity must hold across the restart";

  const auto merged = svc.merged_stats();
  EXPECT_GE(merged.restarts, 1u);
  EXPECT_GE(merged.resubscribed, owned_by_0)
      << "every subscription owned by the killed shard must be re-seeded";
  EXPECT_GT(merged.chaos.offered, 0u) << "the fault plan must have been live";
  EXPECT_GT(merged.chaos.dropped, 0u);

  svc.stop();
}

}  // namespace
}  // namespace twfd

// FaultPlan / FaultEngine / FaultInjector: the deterministic chaos layer
// (CTest label `chaos`).
//
// The contract under test is determinism: the seed IS the run. Two
// engines built from the same plan must produce bit-identical decision
// streams (schedule_hash equality is the replay assertion every chaos
// consumer relies on), and the plan grammar must round-trip through
// to_string() so a logged plan line reproduces the schedule exactly.

#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <utility>
#include <stdexcept>
#include <vector>

#include "net/event_loop.hpp"

namespace twfd {
namespace {

using net::FaultEngine;
using net::FaultInjector;
using net::FaultPlan;

TEST(FaultPlan, ParsesEveryKey) {
  const auto plan = FaultPlan::parse(
      "seed=7,drop=0.1,dup=0.05,reorder=0.2,trunc=0.02,"
      "delay=0.25:2ms..20ms,reset=0.01,stall=0.03:100ms,trickle=64");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.1);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.2);
  EXPECT_DOUBLE_EQ(plan.truncate, 0.02);
  EXPECT_DOUBLE_EQ(plan.delay, 0.25);
  EXPECT_EQ(plan.delay_min, ticks_from_ms(2));
  EXPECT_EQ(plan.delay_max, ticks_from_ms(20));
  EXPECT_DOUBLE_EQ(plan.tcp_reset, 0.01);
  EXPECT_DOUBLE_EQ(plan.tcp_stall, 0.03);
  EXPECT_EQ(plan.tcp_stall_for, ticks_from_ms(100));
  EXPECT_EQ(plan.tcp_trickle_bytes, 64u);
  EXPECT_TRUE(plan.any_datagram_faults());
  EXPECT_TRUE(plan.any_tcp_faults());
}

TEST(FaultPlan, EmptySpecIsAllZero) {
  const auto plan = FaultPlan::parse("");
  EXPECT_FALSE(plan.any_datagram_faults());
  EXPECT_FALSE(plan.any_tcp_faults());
  EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, ProbabilityPrefixDefaultsToOne) {
  // "stall=200ms" means "always stall, for 200ms".
  const auto plan = FaultPlan::parse("stall=200ms");
  EXPECT_DOUBLE_EQ(plan.tcp_stall, 1.0);
  EXPECT_EQ(plan.tcp_stall_for, ticks_from_ms(200));
}

TEST(FaultPlan, ToStringRoundTrips) {
  const auto plan = FaultPlan::parse(
      "seed=99,drop=0.5,reorder=0.25,delay=0.125:1ms..8ms,reset=0.5,trickle=7");
  const auto rebuilt = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(rebuilt.seed, plan.seed);
  EXPECT_DOUBLE_EQ(rebuilt.drop, plan.drop);
  EXPECT_DOUBLE_EQ(rebuilt.reorder, plan.reorder);
  EXPECT_DOUBLE_EQ(rebuilt.delay, plan.delay);
  EXPECT_EQ(rebuilt.delay_min, plan.delay_min);
  EXPECT_EQ(rebuilt.delay_max, plan.delay_max);
  EXPECT_DOUBLE_EQ(rebuilt.tcp_reset, plan.tcp_reset);
  EXPECT_EQ(rebuilt.tcp_trickle_bytes, plan.tcp_trickle_bytes);
  // The replay guarantee in one line: the logged string rebuilds an
  // engine with an identical schedule.
  FaultEngine a(plan);
  FaultEngine b(rebuilt);
  for (int i = 0; i < 512; ++i) {
    (void)a.next_datagram();
    (void)b.next_datagram();
  }
  EXPECT_EQ(a.schedule_hash(), b.schedule_hash());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("seed=xyz"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("delay=0.5:2ms"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("delay=0.5:9ms..2ms"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("delay=0.5:2..4"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("stall=0.5:10"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("trickle=0"), std::invalid_argument);
}

TEST(FaultEngine, SameSeedSameSchedule) {
  const auto plan = FaultPlan::parse(
      "seed=42,drop=0.1,dup=0.1,reorder=0.1,trunc=0.05,delay=0.2:1ms..5ms,"
      "reset=0.1,stall=0.1:10ms");
  FaultEngine a(plan);
  FaultEngine b(plan);
  for (int i = 0; i < 2000; ++i) {
    const auto da = a.next_datagram();
    const auto db = b.next_datagram();
    ASSERT_EQ(da.drop, db.drop) << "decision " << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << "decision " << i;
    ASSERT_EQ(da.reorder, db.reorder) << "decision " << i;
    ASSERT_EQ(da.truncate, db.truncate) << "decision " << i;
    ASSERT_EQ(da.delay, db.delay) << "decision " << i;
  }
  for (int i = 0; i < 500; ++i) {
    const auto ca = a.next_chunk();
    const auto cb = b.next_chunk();
    ASSERT_EQ(ca.reset, cb.reset) << "chunk " << i;
    ASSERT_EQ(ca.stall, cb.stall) << "chunk " << i;
  }
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.schedule_hash(), b.schedule_hash());
}

TEST(FaultEngine, DifferentSeedDifferentSchedule) {
  auto plan = FaultPlan::parse("drop=0.5,reorder=0.25");
  plan.seed = 1;
  FaultEngine a(plan);
  plan.seed = 2;
  FaultEngine b(plan);
  for (int i = 0; i < 1000; ++i) {
    (void)a.next_datagram();
    (void)b.next_datagram();
  }
  EXPECT_NE(a.schedule_hash(), b.schedule_hash());
}

TEST(FaultEngine, ScheduleAlignmentIsPositionOnly) {
  // The Nth decision depends only on (seed, N) — not on what happened to
  // earlier datagrams. Interleaving chunk decisions between two engines
  // at the same positions must not desynchronize the datagram stream.
  const auto plan =
      FaultPlan::parse("seed=5,drop=0.3,dup=0.3,reorder=0.3,reset=0.5");
  FaultEngine a(plan);
  FaultEngine b(plan);
  for (int i = 0; i < 300; ++i) {
    const auto da = a.next_datagram();
    const auto db = b.next_datagram();
    ASSERT_EQ(da.drop, db.drop);
    ASSERT_EQ(da.reorder, db.reorder);
  }
  EXPECT_EQ(a.schedule_hash(), b.schedule_hash());
}

/// Offers `count` distinct datagrams to an injector built from `plan`
/// and returns (delivered payload sizes, final schedule hash).
std::pair<std::vector<std::size_t>, std::uint64_t> run_injector(
    const FaultPlan& plan, int count) {
  net::EventLoop loop;
  std::vector<std::size_t> delivered;
  FaultInjector inj(loop, loop, plan,
                    [&](const net::SocketAddress&,
                        std::span<const std::byte> data,
                        Tick) { delivered.push_back(data.size()); });
  const auto from = net::SocketAddress::loopback(40000);
  for (int i = 0; i < count; ++i) {
    std::vector<std::byte> payload(32 + static_cast<std::size_t>(i % 7));
    inj.offer(from, payload, loop.now());
  }
  // Let held/delayed datagrams flush (delay_max is small by contract in
  // these tests).
  loop.run_for(ticks_from_ms(50));
  return {delivered, inj.engine().schedule_hash()};
}

TEST(FaultInjector, DropAllSuppressesEverything) {
  const auto [delivered, hash] = run_injector(FaultPlan::parse("drop=1"), 20);
  EXPECT_TRUE(delivered.empty());
  (void)hash;
}

TEST(FaultInjector, DuplicateAllDeliversTwice) {
  const auto [delivered, hash] = run_injector(FaultPlan::parse("dup=1"), 20);
  EXPECT_EQ(delivered.size(), 40u);
  (void)hash;
}

TEST(FaultInjector, TruncateAllHalvesPayloads) {
  const auto [delivered, hash] = run_injector(FaultPlan::parse("trunc=1"), 10);
  ASSERT_EQ(delivered.size(), 10u);
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i], (32 + i % 7) / 2);
  }
  (void)hash;
}

TEST(FaultInjector, SameSeedRunsAreIdentical) {
  // Without delays the delivery order itself is deterministic.
  const auto plan =
      FaultPlan::parse("seed=11,drop=0.2,dup=0.2,reorder=0.2,trunc=0.1");
  const auto [first, first_hash] = run_injector(plan, 200);
  const auto [second, second_hash] = run_injector(plan, 200);
  EXPECT_EQ(first, second) << "same seed must deliver the same schedule";
  EXPECT_EQ(first_hash, second_hash);

  // With delays, re-emission rides real-time timers, so the interleaving
  // of late deliveries is wall-clock dependent — but the decision stream
  // (the schedule) and the delivered multiset are still seed-determined.
  const auto delayed =
      FaultPlan::parse("seed=11,drop=0.2,dup=0.2,trunc=0.1,delay=0.3:1ms..4ms");
  auto [da, da_hash] = run_injector(delayed, 200);
  auto [db, db_hash] = run_injector(delayed, 200);
  std::sort(da.begin(), da.end());
  std::sort(db.begin(), db.end());
  EXPECT_EQ(da, db) << "same seed must deliver the same datagrams";
  EXPECT_EQ(da_hash, db_hash);
}

TEST(FaultInjector, StatsAccountForEveryOffer) {
  net::EventLoop loop;
  std::uint64_t sunk = 0;
  const auto plan = FaultPlan::parse("seed=3,drop=0.3,dup=0.3");
  FaultInjector inj(loop, loop, plan,
                    [&](const net::SocketAddress&, std::span<const std::byte>,
                        Tick) { ++sunk; });
  const auto from = net::SocketAddress::loopback(40001);
  const std::byte payload[16] = {};
  for (int i = 0; i < 500; ++i) inj.offer(from, payload, loop.now());
  const auto& s = inj.stats();
  EXPECT_EQ(s.offered, 500u);
  EXPECT_EQ(s.offered, s.passed + s.dropped);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_EQ(sunk, s.passed + s.duplicated);
}

}  // namespace
}  // namespace twfd

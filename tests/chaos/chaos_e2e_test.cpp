// Self-healing end-to-end (CTest label `chaos`): a ReconnectingClient
// watching a real beacon through a ChaosTcpProxy, over a sharded service
// whose inbound heartbeats run a 10% drop + reorder + duplication fault
// plan.
//
// The acceptance scenario: the TCP path to the FDaaS API is killed five
// times mid-run (forced mid-stream resets), yet the application observes
// every verdict transition — the crash-induced Suspect arrives live, and
// the recovery Trust that happens while the connection is down is
// re-emitted by snapshot reconciliation after the reconnect. Connection
// loss may delay a verdict; it must never lose one.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "api/fdaas_server.hpp"
#include "api/reconnecting_client.hpp"
#include "net/chaos_proxy.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "net/tcp.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "shard/sharded_monitor_service.hpp"

namespace twfd {
namespace {

using shard::ShardedMonitorService;

constexpr config::QosRequirements kQos{0.8, 1e-3, 4.0};
constexpr Tick kBeaconInterval = ticks_from_ms(200);

/// A monitored process (same shape as the shard/api suites' helper),
/// with an explicit bind port so a revived process can reclaim its old
/// UDP address — the service identifies peers by source ip:port.
class Beacon {
 public:
  Beacon(std::uint64_t sender_id, std::uint16_t service_port,
         std::uint16_t bind_port = 0)
      : loop_(std::make_unique<net::EventLoop>(bind_port)) {
    port_ = loop_->local_port();
    thread_ = std::thread([this, sender_id, service_port] {
      service::Dispatcher dispatch(loop_->runtime());
      service::HeartbeatSender sender(
          loop_->runtime(),
          {.sender_id = sender_id, .base_interval = kBeaconInterval});
      dispatch.on_interval_request(
          [&](PeerId from, const net::IntervalRequestMsg& msg) {
            sender.handle_interval_request(from, msg);
          });
      sender.add_target(
          loop_->add_peer(net::SocketAddress::loopback(service_port)));
      sender.start();
      while (!stop_.load(std::memory_order_acquire)) {
        loop_->run_for(ticks_from_ms(50));
      }
      sender.stop();
    });
  }

  ~Beacon() { crash(); }

  void crash() {
    stop_.store(true, std::memory_order_release);
    loop_->wake();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] net::SocketAddress address() const {
    return net::SocketAddress::loopback(port_);
  }

 private:
  std::unique_ptr<net::EventLoop> loop_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Pumps `client` in short slices until `pred` holds or `timeout`
/// elapses; returns the final predicate value. Events arrive on this
/// thread, inside the pump.
bool pump_until(api::ReconnectingClient& client, const std::function<bool()>& pred,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    client.pump_for(ticks_from_ms(100));
  }
  return true;
}

TEST(ChaosE2E, ClientSurvivesFiveResetsWithoutLosingATransition) {
  // 10% drop + reorder + duplication on every inbound heartbeat, fixed
  // seed — a lossy, jittery network the detector must ride out.
  ShardedMonitorService service(
      {.shards = 2,
       .chaos = net::FaultPlan::parse("seed=42,drop=0.1,reorder=0.1,dup=0.1")});
  service.start();
  api::FdaasServer server(service, {});
  server.start();

  // The proxy owns the client-facing endpoint; the plan's TCP half is
  // empty because this test injects its resets at exact protocol points.
  net::ChaosTcpProxy::Options popts;
  popts.upstream = net::SocketAddress::loopback(server.port());
  net::ChaosTcpProxy proxy(popts);
  proxy.start();

  auto beacon = std::make_unique<Beacon>(1, service.port());
  const auto peer = beacon->address();
  const std::uint16_t beacon_port = beacon->port();

  api::ReconnectingClient::Options copts;
  copts.backoff_min = ticks_from_ms(20);
  copts.backoff_max = ticks_from_ms(500);
  api::ReconnectingClient client(net::SocketAddress::loopback(proxy.port()),
                                 copts);
  std::vector<api::EventMsg> events;
  client.set_event_handler(
      [&](const api::EventMsg& e) { events.push_back(e); });

  const std::uint64_t handle = client.subscribe(peer, 1, "chaos-app", kQos);
  ASSERT_TRUE(client.connected());
  const auto saw = [&](detect::Output output) {
    return std::any_of(events.begin(), events.end(), [&](const api::EventMsg& e) {
      return e.subscription_id == handle && e.output == output;
    });
  };

  // Resets 1..4: kill the live TCP session mid-pump; the client must
  // notice, redial through the proxy and resubscribe, every time.
  for (std::uint64_t round = 1; round <= 4; ++round) {
    client.pump_for(ticks_from_ms(200));
    proxy.force_reset();
    ASSERT_TRUE(pump_until(
        client, [&] { return client.reconnects() >= round; },
        std::chrono::milliseconds(5000)))
        << "client failed to recover from reset " << round
        << " (last_error: " << client.last_error() << ")";
  }

  // The crash happens while connected: the Suspect transition must be
  // pushed live, within the QoS detection bound (plus generous slack for
  // CI scheduling and the chaos-induced heartbeat losses).
  events.clear();
  beacon->crash();
  beacon.reset();
  ASSERT_TRUE(pump_until(client,
                         [&] { return saw(detect::Output::Suspect); },
                         std::chrono::milliseconds(8000)))
      << "crash never reached the application";
  EXPECT_EQ(client.verdict(handle), detect::Output::Suspect);

  // Reset 5 lands while the application is NOT pumping, and the process
  // revives during the outage: the Suspect->Trust transition happens
  // server-side with nobody connected. Reconciliation must re-emit it.
  proxy.force_reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto revived = std::make_unique<Beacon>(1, service.port(), beacon_port);
  ASSERT_EQ(revived->port(), beacon_port);
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));

  events.clear();
  ASSERT_TRUE(pump_until(
      client,
      [&] {
        return saw(detect::Output::Trust) &&
               client.verdict(handle) == detect::Output::Trust;
      },
      std::chrono::milliseconds(8000)))
      << "recovery transition lost across the outage";

  EXPECT_GE(client.reconnects(), 5u);
  EXPECT_GE(client.reconciled_events(), 1u)
      << "the Trust after the 5th reset must come from reconciliation";
  EXPECT_EQ(proxy.stats().forced_resets, 5u);

  // The datagram chaos plan was genuinely active on the heartbeat path.
  // (Too few heartbeats flow in this test to assert specific fault
  // counts; the parity test covers those. Here: the plan saw every
  // inbound datagram and its accounting balances.)
  const auto merged = service.merged_stats();
  EXPECT_GT(merged.chaos.offered, 0u);
  // Held (reordered) and delayed datagrams may still be in flight when
  // the counters are read, so resolved <= offered.
  EXPECT_LE(merged.chaos.passed + merged.chaos.dropped, merged.chaos.offered);

  client.close();
  revived.reset();
  proxy.stop();
  server.stop();
  service.stop();
}

// A client built while the server is unreachable must come up on its own
// once the endpoint exists — the lazy-dial half of self-healing.
TEST(ChaosE2E, SubscribeBeforeServerExistsEstablishesOnFirstPump) {
  ShardedMonitorService service({.shards = 1});
  service.start();

  // Reserve a free TCP port, then release it: until the server below
  // claims it, connections to it are refused.
  std::uint16_t api_port = 0;
  {
    net::TcpListener probe({.port = 0});
    api_port = probe.local_port();
  }

  api::ReconnectingClient::Options copts;
  copts.client.connect_timeout = ticks_from_ms(300);
  copts.backoff_min = ticks_from_ms(20);
  api::ReconnectingClient client(net::SocketAddress::loopback(api_port), copts);

  // Nothing is listening yet: subscribe must register the desired
  // subscription without throwing and leave it pending.
  const auto handle =
      client.subscribe(net::SocketAddress::loopback(45300), 4, "early", kQos);
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.verdict(handle), detect::Output::Trust) << "seeded verdict";

  api::FdaasServer server(service, {.port = api_port});
  server.start();
  ASSERT_TRUE(pump_until(client, [&] { return client.connected(); },
                         std::chrono::milliseconds(5000)));

  // The pending subscription was established server-side.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(3000);
  bool registered = false;
  while (!registered && std::chrono::steady_clock::now() < deadline) {
    service.poll_events();
    registered = !service.view()->entries.empty();
    if (!registered) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(registered);

  client.close();
  server.stop();
  service.stop();
}

}  // namespace
}  // namespace twfd

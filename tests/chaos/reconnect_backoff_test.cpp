// Regression suite for the ReconnectingClient redial ladder: across 50
// simulated connection resets the jittered sleep must stay inside the
// documented envelope — backoff * [0.5, 1.0) with the backoff doubling
// from backoff_min and capping at backoff_max. A regression here either
// hammers a recovering server (sleeps below the floor) or blows the
// reconnection SLA (sleeps above the cap).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/reconnecting_client.hpp"

namespace twfd::api {
namespace {

// A loopback port with no listener: every dial fails fast with
// ECONNREFUSED, so each ensure_connected attempt is one simulated reset.
net::SocketAddress dead_server() {
  net::TcpListener probe({0});
  const std::uint16_t port = probe.local_port();
  // Listener closes here; the port is free (and very unlikely to be
  // re-bound between now and the test's dials).
  return net::SocketAddress::loopback(port);
}

TEST(ReconnectBackoff, StaysInsideDocumentedCapAndJitterBounds) {
  constexpr int kResets = 50;
  ReconnectingClient::Options opts;
  opts.backoff_min = ticks_from_ms(10);
  opts.backoff_max = ticks_from_ms(200);
  opts.jitter_seed = 42;
  opts.client.connect_timeout = ticks_from_ms(250);

  std::vector<Tick> sleeps;
  opts.sleep_hook = [&sleeps](Tick sleep_for) {
    sleeps.push_back(sleep_for);
    return sleeps.size() < kResets;  // observe 50 resets, then abandon
  };

  ReconnectingClient rc(dead_server(), opts);
  EXPECT_FALSE(rc.pump_for(ticks_from_sec(3600)));  // returns on abandon
  ASSERT_EQ(sleeps.size(), static_cast<std::size_t>(kResets));

  Tick expected = opts.backoff_min;  // ladder BEFORE the i-th sleep
  bool reached_cap = false;
  for (int i = 0; i < kResets; ++i) {
    // Documented envelope: jitter scales the current rung to [0.5, 1.0),
    // with a 1ms floor. No sleep may exceed the rung, and none may
    // undercut half of it.
    const Tick floor = std::max<Tick>(expected / 2, ticks_from_ms(1));
    EXPECT_GE(sleeps[static_cast<std::size_t>(i)], floor)
        << "sleep " << i << " undercuts the jitter floor";
    EXPECT_LE(sleeps[static_cast<std::size_t>(i)], expected)
        << "sleep " << i << " exceeds the backoff rung";
    EXPECT_LE(sleeps[static_cast<std::size_t>(i)], opts.backoff_max)
        << "sleep " << i << " exceeds the documented cap";
    expected = std::min(expected * 2, opts.backoff_max);
    if (expected == opts.backoff_max) reached_cap = true;
  }
  EXPECT_TRUE(reached_cap) << "50 resets never exercised the cap";

  // The ladder actually reaches and HOLDS the cap: every late sleep
  // lives in [cap/2, cap].
  for (std::size_t i = 10; i < sleeps.size(); ++i) {
    EXPECT_GE(sleeps[i], opts.backoff_max / 2);
    EXPECT_LE(sleeps[i], opts.backoff_max);
  }
}

TEST(ReconnectBackoff, SleepHookAbortStopsTheLadderImmediately) {
  ReconnectingClient::Options opts;
  opts.backoff_min = ticks_from_ms(10);
  opts.backoff_max = ticks_from_ms(50);
  int calls = 0;
  opts.sleep_hook = [&calls](Tick) {
    ++calls;
    return false;  // abandon on the very first reset
  };
  ReconnectingClient rc(dead_server(), opts);
  EXPECT_FALSE(rc.pump_for(ticks_from_sec(3600)));
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(rc.connected());
}

}  // namespace
}  // namespace twfd::api

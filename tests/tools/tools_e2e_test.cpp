// End-to-end tests of the CLI daemons, spawned as real subprocesses over
// loopback UDP: beacon -> monitor detection, beacon -> record -> replay
// pipeline, and argument validation.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#ifndef TWFD_TOOLS_DIR
#error "TWFD_TOOLS_DIR must be defined by the build"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_command(const std::string& cmd) {
  CommandResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string tool(const std::string& name) {
  return std::string(TWFD_TOOLS_DIR) + "/" + name;
}

// Loopback ports for the suite; chosen high and apart to avoid collisions.
constexpr int kMonPort = 46101;
constexpr int kRecPort = 46103;

TEST(ToolsE2E, MonitorDetectsBeaconDeath) {
  // Beacon lives 1 s; monitor watches 3 s: must log one SUSPECT and end
  // in SUSPECT state.
  std::thread beacon([] {
    (void)run_command(tool("twfd_beacon") + " --id 5 --interval-ms 20" +
                      " --target 127.0.0.1:" + std::to_string(kMonPort) +
                      " --duration-s 1");
  });
  const auto mon = run_command(
      tool("twfd_monitor") + " --port " + std::to_string(kMonPort) +
      " --sender-id 5 --interval-ms 20 --detector 2w --margin-ms 80" +
      " --duration-s 3");
  beacon.join();

  EXPECT_EQ(mon.exit_code, 0) << mon.output;
  EXPECT_NE(mon.output.find("SUSPECT"), std::string::npos) << mon.output;
  EXPECT_NE(mon.output.find("final: SUSPECT"), std::string::npos) << mon.output;
}

TEST(ToolsE2E, RecordThenReplayPipeline) {
  const std::string trc = testing::TempDir() + "/tools_e2e.trc";
  std::thread beacon([] {
    (void)run_command(tool("twfd_beacon") + " --id 9 --interval-ms 20" +
                      " --target 127.0.0.1:" + std::to_string(kRecPort) +
                      " --duration-s 2");
  });
  const auto rec = run_command(
      tool("twfd_record") + " --port " + std::to_string(kRecPort) +
      " --sender-id 9 --interval-ms 20 --duration-s 2 --out " + trc);
  beacon.join();
  ASSERT_EQ(rec.exit_code, 0) << rec.output;
  EXPECT_NE(rec.output.find("captured"), std::string::npos);

  const auto rep = run_command(tool("twfd_replay") + " --trace " + trc +
                               " --margin-ms 50 --csv");
  ASSERT_EQ(rep.exit_code, 0) << rep.output;
  EXPECT_NE(rep.output.find("2w(1,1000)"), std::string::npos) << rep.output;
  EXPECT_NE(rep.output.find("bertier"), std::string::npos);
  std::remove(trc.c_str());
}

TEST(ToolsE2E, ReplaySyntheticScenario) {
  const auto rep = run_command(tool("twfd_replay") +
                               " --scenario lan --samples 50000 --margin-ms 10");
  ASSERT_EQ(rep.exit_code, 0) << rep.output;
  EXPECT_NE(rep.output.find("chen(n=1000)"), std::string::npos);
}

TEST(ToolsE2E, BadArgumentsRejected) {
  EXPECT_NE(run_command(tool("twfd_beacon")).exit_code, 0);  // no target
  EXPECT_NE(run_command(tool("twfd_beacon") + " --target not-a-hostport")
                .exit_code,
            0);
  EXPECT_NE(run_command(tool("twfd_replay")).exit_code, 0);  // no input
  EXPECT_NE(run_command(tool("twfd_replay") + " --scenario mars").exit_code, 0);
  EXPECT_NE(run_command(tool("twfd_monitor") + " --detector bogus --duration-s 1")
                .exit_code,
            0);
  EXPECT_NE(run_command(tool("twfd_record") + " --duration-s 1").exit_code,
            0);  // no --out
}

}  // namespace

// ShardedMonitorService: the threaded integration suite (CTest label
// `threaded`, the ThreadSanitizer target).
//
// Covers the three cross-thread mechanisms — control-plane marshaling,
// receive hand-off, event aggregation — plus the headline property: the
// sharded runtime reports the SAME crash-detection verdicts as the
// single-loop FdService on the same workload (parity test).
//
// Real UDP over loopback with real sender threads. QoS {0.8s, 1e-3/s, 4s}
// under the default assumed network yields interval ~0.37s with margin
// ~0.43s — generous enough that scheduler stalls (CI, TSan) do not cause
// false suspicions, while a genuine crash is flagged in well under 2s.

#include "shard/sharded_monitor_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "service/dispatcher.hpp"
#include "service/fd_service.hpp"
#include "service/heartbeat_sender.hpp"

namespace twfd {
namespace {

using shard::ShardedMonitorService;
using shard::shard_of;

constexpr config::QosRequirements kQos{0.8, 1e-3, 4.0};
constexpr Tick kBeaconInterval = ticks_from_ms(200);

/// A monitored process: its own thread + EventLoop + HeartbeatSender,
/// emitting to the service port until crash()ed. The loop (and hence the
/// source port) is created in the constructor so tests know the beacon's
/// address before any traffic flows.
class Beacon {
 public:
  Beacon(std::uint64_t sender_id, std::uint16_t service_port)
      : loop_(std::make_unique<net::EventLoop>()) {
    port_ = loop_->local_port();
    thread_ = std::thread([this, sender_id, service_port] {
      service::Dispatcher dispatch(loop_->runtime());
      service::HeartbeatSender sender(
          loop_->runtime(), {.sender_id = sender_id, .base_interval = kBeaconInterval});
      dispatch.on_interval_request(
          [&](PeerId from, const net::IntervalRequestMsg& msg) {
            sender.handle_interval_request(from, msg);
          });
      sender.add_target(loop_->add_peer(net::SocketAddress::loopback(service_port)));
      sender.start();
      while (!stop_.load(std::memory_order_acquire)) {
        loop_->run_for(ticks_from_ms(50));
      }
      sender.stop();
    });
  }

  ~Beacon() { crash(); }

  /// Stops heartbeating (simulated process crash). Idempotent.
  void crash() {
    stop_.store(true, std::memory_order_release);
    loop_->wake();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] net::SocketAddress address() const {
    return net::SocketAddress::loopback(port_);
  }

 private:
  std::unique_ptr<net::EventLoop> loop_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Polls the service (draining events) until `pred` holds on the current
/// snapshot or `timeout` elapses. Returns the final predicate value.
bool wait_for_view(ShardedMonitorService& svc,
                   const std::function<bool(const ShardedMonitorService::Snapshot&)>& pred,
                   std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    svc.poll_events();
    if (pred(*svc.view())) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

std::map<std::string, detect::Output> verdicts(const ShardedMonitorService& svc) {
  std::map<std::string, detect::Output> out;
  for (const auto& e : svc.view()->entries) out[e.app] = e.output;
  return out;
}

TEST(ShardOf, DeterministicAndInRange) {
  const auto addr = net::SocketAddress::loopback(12345);
  for (std::size_t n : {1u, 2u, 4u, 7u, 64u}) {
    const std::size_t s = shard_of(addr, n);
    EXPECT_LT(s, n);
    EXPECT_EQ(s, shard_of(addr, n)) << "must be deterministic";
  }
  EXPECT_EQ(shard_of(addr, 1), 0u);
}

TEST(ShardOf, SpreadsPeersAcrossShards) {
  // 256 distinct ports over 4 shards: every shard must own a healthy
  // fraction — splitmix64 should not collapse the port pattern.
  constexpr std::size_t kShards = 4;
  std::vector<std::size_t> hits(kShards, 0);
  for (std::uint16_t p = 20000; p < 20256; ++p) {
    ++hits[shard_of(net::SocketAddress::loopback(p), kShards)];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(hits[s], 256 / kShards / 4) << "shard " << s << " starved";
  }
}

TEST(ShardedService, StartStopIsCleanAndIdempotent) {
  ShardedMonitorService svc({.shards = 3});
  EXPECT_FALSE(svc.running());
  EXPECT_NE(svc.port(), 0) << "ephemeral service port must be resolved";
  svc.start();
  EXPECT_TRUE(svc.running());
  svc.stop();
  EXPECT_FALSE(svc.running());
  svc.stop();  // idempotent
  // Stats stay readable after stop (direct, no marshaling).
  const auto stats = svc.shard_stats();
  EXPECT_EQ(stats.size(), 3u);
}

TEST(ShardedService, InfeasibleQosThrowsAndLeavesNoEntry) {
  ShardedMonitorService svc({.shards = 2});
  svc.start();
  // Sub-millisecond detection demands an interval below the service's
  // 1 ms floor; the owning shard rejects and the error crosses threads.
  EXPECT_THROW(svc.subscribe(net::SocketAddress::loopback(45001), 7, "impossible",
                             {0.001, 1e-6, 0.001}),
               std::logic_error);
  EXPECT_TRUE(svc.view()->entries.empty()) << "seeded entry must be rolled back";
  svc.stop();
}

TEST(ShardedService, UnsubscribeRemovesEntryFromView) {
  ShardedMonitorService svc({.shards = 2});
  svc.start();
  const auto id = svc.subscribe(net::SocketAddress::loopback(45002), 9, "ephemeral", kQos);
  ASSERT_EQ(svc.view()->entries.size(), 1u);
  EXPECT_EQ(svc.view()->entries[0].subscription, id);
  EXPECT_EQ(svc.view()->entries[0].app, "ephemeral");
  svc.unsubscribe(id);
  EXPECT_TRUE(svc.view()->entries.empty());
  svc.unsubscribe(id);  // unknown id: no-op
  svc.stop();
}

// The tentpole end-to-end: single-socket mode forces every datagram
// through shard 0, so detection working at all for peers owned by shards
// 1..3 proves the hash hand-off + re-injection path.
TEST(ShardedService, SingleSocketHandoffDetectsCrashes) {
  ShardedMonitorService svc(
      {.shards = 4, .receive_mode = ShardedMonitorService::ReceiveMode::kSingleSocket});
  svc.start();

  constexpr std::size_t kBeacons = 6;
  std::vector<std::unique_ptr<Beacon>> beacons;
  std::size_t foreign = 0;  // beacons owned by a shard other than 0
  for (std::size_t i = 0; i < kBeacons; ++i) {
    beacons.push_back(std::make_unique<Beacon>(i + 1, svc.port()));
    if (svc.shard_for(beacons[i]->address()) != 0) ++foreign;
  }
  for (std::size_t i = 0; i < kBeacons; ++i) {
    svc.subscribe(beacons[i]->address(), i + 1, "app" + std::to_string(i), kQos);
  }

  // Warm-up: everyone heartbeating -> all Trust (seeded Trust holds, and
  // any transient false suspicion must recover).
  ASSERT_TRUE(wait_for_view(
      svc,
      [](const auto& snap) {
        if (snap.entries.size() != kBeacons) return false;
        for (const auto& e : snap.entries)
          if (e.output != detect::Output::Trust) return false;
        return true;
      },
      std::chrono::milliseconds(3000)));

  beacons[0]->crash();
  beacons[3]->crash();

  ASSERT_TRUE(wait_for_view(
      svc,
      [](const auto& snap) {
        for (const auto& e : snap.entries) {
          const bool crashed = e.app == "app0" || e.app == "app3";
          if (crashed != (e.output == detect::Output::Suspect)) return false;
        }
        return true;
      },
      std::chrono::milliseconds(5000)))
      << "crashed peers must be Suspected and live peers Trusted";

  const auto total = svc.merged_stats();
  EXPECT_GT(total.service_heartbeats, 0u);
  EXPECT_GT(total.dispatcher_heartbeats, 0u);
  EXPECT_EQ(total.dispatcher_malformed, 0u);
  EXPECT_EQ(total.events_dropped, 0u);
  if (foreign > 0) {
    EXPECT_GT(total.handoff_out, 0u)
        << foreign << " beacons hash to shards 1..3; their heartbeats must be handed off";
    EXPECT_GT(total.loop.datagrams_injected, 0u);
    EXPECT_GT(total.loop.wakeups_cross, 0u);
    // Hand-offs move per receive batch: at least one flush happened, and
    // never more than one flush command per forwarded datagram.
    EXPECT_GT(total.handoff_batches, 0u);
    EXPECT_LE(total.handoff_batches, total.handoff_out);
  }
  EXPECT_GT(total.loop.rx_batches, 0u);
  EXPECT_GE(total.loop.rx_batch_max, total.loop.rx_batch_min);

  const auto per_shard = svc.shard_stats();
  std::uint64_t receiving_shards = 0;
  for (const auto& st : per_shard) {
    if (st.loop.datagrams_received > 0) ++receiving_shards;
  }
  EXPECT_EQ(receiving_shards, 1u) << "single-socket mode: only shard 0 receives";

  svc.stop();
  // Post-stop stats remain readable and consistent.
  EXPECT_GE(svc.merged_stats().service_heartbeats, total.service_heartbeats);
}

TEST(ShardedService, ReusePortModeDetectsCrash) {
  ShardedMonitorService svc(
      {.shards = 2, .receive_mode = ShardedMonitorService::ReceiveMode::kReusePort});
  svc.start();

  std::vector<std::unique_ptr<Beacon>> beacons;
  for (std::size_t i = 0; i < 3; ++i) {
    beacons.push_back(std::make_unique<Beacon>(i + 1, svc.port()));
    svc.subscribe(beacons[i]->address(), i + 1, "rp" + std::to_string(i), kQos);
  }

  ASSERT_TRUE(wait_for_view(
      svc,
      [](const auto& snap) {
        if (snap.entries.size() != 3u) return false;
        for (const auto& e : snap.entries)
          if (e.output != detect::Output::Trust) return false;
        return true;
      },
      std::chrono::milliseconds(3000)));

  beacons[1]->crash();

  ASSERT_TRUE(wait_for_view(
      svc,
      [](const auto& snap) {
        for (const auto& e : snap.entries) {
          if (e.app == "rp1") return e.output == detect::Output::Suspect;
        }
        return false;
      },
      std::chrono::milliseconds(5000)));

  const auto total = svc.merged_stats();
  EXPECT_GT(total.service_heartbeats, 0u);
  svc.stop();
}

// Parity: the same workload (N beacons, a subset crashes) through the
// classic single-loop FdService and through the sharded runtime must end
// with identical per-app verdicts.
TEST(ShardedService, ParityWithSingleLoopService) {
  constexpr std::size_t kBeacons = 4;
  const std::set<std::size_t> kCrashed = {1, 2};
  const auto app_name = [](std::size_t i) { return "papp" + std::to_string(i); };

  // --- Single-loop run ---
  std::map<std::string, detect::Output> single_verdicts;
  {
    net::EventLoop loop;
    service::Dispatcher dispatch(loop.runtime());
    service::FdService fd(loop.runtime(), {});
    dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
      fd.handle_heartbeat(from, m, at);
    });

    std::vector<std::unique_ptr<Beacon>> beacons;
    std::vector<service::FdService::SubscriptionId> subs;
    for (std::size_t i = 0; i < kBeacons; ++i) {
      beacons.push_back(std::make_unique<Beacon>(i + 1, loop.local_port()));
      subs.push_back(fd.subscribe(loop.add_peer(beacons[i]->address()), i + 1,
                                  app_name(i), kQos,
                                  [](const service::FdService::StatusEvent&) {}));
    }

    loop.run_for(ticks_from_ms(1500));
    for (std::size_t i : kCrashed) beacons[i]->crash();
    loop.run_for(ticks_from_ms(2500));
    // Ride out any stall-induced transient: give live peers a chance to
    // recover to Trust before taking the final reading.
    for (int retry = 0; retry < 6; ++retry) {
      bool settled = true;
      for (std::size_t i = 0; i < kBeacons; ++i) {
        const auto expect = kCrashed.count(i) ? detect::Output::Suspect
                                              : detect::Output::Trust;
        if (fd.output(subs[i]) != expect) settled = false;
      }
      if (settled) break;
      loop.run_for(ticks_from_ms(500));
    }
    for (std::size_t i = 0; i < kBeacons; ++i) {
      single_verdicts[app_name(i)] = fd.output(subs[i]);
    }
  }

  // --- Sharded run (single-socket: exercises hand-off too) ---
  std::map<std::string, detect::Output> sharded_verdicts;
  {
    ShardedMonitorService svc(
        {.shards = 4,
         .receive_mode = ShardedMonitorService::ReceiveMode::kSingleSocket});
    svc.start();
    std::vector<std::unique_ptr<Beacon>> beacons;
    for (std::size_t i = 0; i < kBeacons; ++i) {
      beacons.push_back(std::make_unique<Beacon>(i + 1, svc.port()));
      svc.subscribe(beacons[i]->address(), i + 1, app_name(i), kQos);
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    svc.poll_events();
    for (std::size_t i : kCrashed) beacons[i]->crash();

    ASSERT_TRUE(wait_for_view(
        svc,
        [&](const auto& snap) {
          if (snap.entries.size() != kBeacons) return false;
          for (const auto& e : snap.entries) {
            std::size_t i = 0;
            for (; i < kBeacons; ++i)
              if (e.app == app_name(i)) break;
            const auto expect = kCrashed.count(i) ? detect::Output::Suspect
                                                  : detect::Output::Trust;
            if (e.output != expect) return false;
          }
          return true;
        },
        std::chrono::milliseconds(6000)));
    sharded_verdicts = verdicts(svc);
    svc.stop();
  }

  // The headline assertion: identical verdict maps.
  ASSERT_EQ(single_verdicts.size(), kBeacons);
  EXPECT_EQ(single_verdicts, sharded_verdicts);
  for (std::size_t i = 0; i < kBeacons; ++i) {
    const auto expect =
        kCrashed.count(i) ? detect::Output::Suspect : detect::Output::Trust;
    EXPECT_EQ(single_verdicts[app_name(i)], expect) << app_name(i);
    EXPECT_EQ(sharded_verdicts[app_name(i)], expect) << app_name(i);
  }
}

}  // namespace
}  // namespace twfd

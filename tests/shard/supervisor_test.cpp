// Shard supervision (CTest label `threaded`, the ThreadSanitizer
// target): the watchdog state machine around the shard workers.
//
// Three behaviours under test, each driven through the WorkerFault test
// seam so the timing is deterministic:
//   * a CRASHED worker (command threw, thread exited) is detected within
//     the watchdog bound, announced as a subscription-0 Suspect health
//     event, restarted with its subscriptions re-seeded, and announced
//     recovered (Trust) once the rebuilt worker proves liveness;
//   * a STALLED worker (alive but not serving) is marked degraded and
//     announced, but NOT restarted — and recovers by itself;
//   * a WEDGED command queue makes post give up after a bounded retry
//     ladder (counted), instead of spinning forever.

#include "shard/sharded_monitor_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace twfd {
namespace {

using shard::ShardedMonitorService;

constexpr config::QosRequirements kQos{0.8, 1e-3, 4.0};

ShardedMonitorService::Supervision fast_supervision() {
  return {.enabled = true,
          .worker_heartbeat_period = ticks_from_ms(10),
          .check_interval = ticks_from_ms(10),
          .stall_timeout = ticks_from_ms(200),
          .restart_backoff_min = ticks_from_ms(20),
          .restart_backoff_max = ticks_from_ms(500)};
}

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

/// First loopback port >= `from` whose peer hashes to `shard`.
std::uint16_t port_on_shard(const ShardedMonitorService& svc, std::size_t shard,
                            std::uint16_t from) {
  for (std::uint16_t p = from;; ++p) {
    if (svc.shard_for(net::SocketAddress::loopback(p)) == shard) return p;
  }
}

/// Drains events, stashing subscription-0 health events into `health`.
std::size_t poll_health(ShardedMonitorService& svc,
                        std::vector<ShardedMonitorService::StatusEvent>& health) {
  return svc.poll_events([&](const ShardedMonitorService::StatusEvent& e) {
    if (e.subscription == ShardedMonitorService::kHealthSubscription) {
      health.push_back(e);
    }
  });
}

bool saw_health(const std::vector<ShardedMonitorService::StatusEvent>& health,
                const std::string& app, detect::Output output) {
  return std::any_of(health.begin(), health.end(), [&](const auto& e) {
    return e.app == app && e.output == output;
  });
}

TEST(ShardSupervisor, CrashedWorkerIsRestartedAndResubscribed) {
  ShardedMonitorService svc({.shards = 2, .supervision = fast_supervision()});
  svc.start();

  // Two subscriptions owned by the shard we will kill, one by the other:
  // the restart must re-seed exactly the victims.
  const auto p0 = port_on_shard(svc, 0, 47000);
  const auto p1a = port_on_shard(svc, 1, 47100);
  const auto p1b = port_on_shard(svc, 1, static_cast<std::uint16_t>(p1a + 1));
  svc.subscribe(net::SocketAddress::loopback(p0), 1, "keep", kQos);
  svc.subscribe(net::SocketAddress::loopback(p1a), 2, "victim-a", kQos);
  svc.subscribe(net::SocketAddress::loopback(p1b), 3, "victim-b", kQos);

  std::vector<ShardedMonitorService::StatusEvent> health;
  svc.inject_worker_fault(1, ShardedMonitorService::WorkerFault::kCrash);

  // Watchdog bound: exit detected, announced, restarted, recovered.
  ASSERT_TRUE(wait_until(
      [&] {
        poll_health(svc, health);
        const auto h = svc.health(1);
        return h.restarts >= 1 && !h.worker_exited && !h.degraded;
      },
      std::chrono::milliseconds(5000)));
  EXPECT_TRUE(saw_health(health, "shard-1", detect::Output::Suspect));
  ASSERT_TRUE(wait_until(
      [&] {
        poll_health(svc, health);
        return saw_health(health, "shard-1", detect::Output::Trust);
      },
      std::chrono::milliseconds(3000)));

  // The view kept all three subscriptions (verdicts preserved across the
  // rebuild), and no health event leaked into the entry list.
  const auto snap = svc.view();
  EXPECT_EQ(snap->entries.size(), 3u);
  for (const auto& e : snap->entries) {
    EXPECT_NE(e.subscription, ShardedMonitorService::kHealthSubscription);
  }

  const auto stats = svc.shard_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GE(stats[1].restarts, 1u);
  EXPECT_EQ(stats[0].restarts, 0u);
  EXPECT_GE(stats[1].resubscribed, 2u) << "both victims must be re-seeded";

  // The rebuilt shard serves the control plane again.
  const auto id = svc.subscribe(net::SocketAddress::loopback(p1b + 7), 9,
                                "post-restart", kQos);
  svc.unsubscribe(id);
  EXPECT_EQ(svc.degraded_count(), 0u);
  svc.stop();
}

TEST(ShardSupervisor, StalledWorkerDegradesAndRecoversWithoutRestart) {
  ShardedMonitorService svc({.shards = 2, .supervision = fast_supervision()});
  svc.start();

  std::vector<ShardedMonitorService::StatusEvent> health;
  // Stall well past the 200 ms watchdog bound; the worker stays alive.
  svc.inject_worker_fault(1, ShardedMonitorService::WorkerFault::kStall,
                          ticks_from_ms(800));

  ASSERT_TRUE(wait_until(
      [&] {
        poll_health(svc, health);
        return svc.health(1).degraded;
      },
      std::chrono::milliseconds(3000)))
      << "stall never tripped the watchdog";
  EXPECT_GE(svc.health(1).stalls_detected, 1u);
  EXPECT_FALSE(svc.health(1).worker_exited);
  EXPECT_EQ(svc.degraded_count(), 1u);
  EXPECT_TRUE(saw_health(health, "shard-1", detect::Output::Suspect));

  // The sleep ends; liveness resumes; degraded clears with NO restart —
  // a live thread cannot be killed, only waited out.
  ASSERT_TRUE(wait_until(
      [&] {
        poll_health(svc, health);
        return !svc.health(1).degraded;
      },
      std::chrono::milliseconds(3000)));
  EXPECT_TRUE(saw_health(health, "shard-1", detect::Output::Trust));
  EXPECT_EQ(svc.health(1).restarts, 0u);
  EXPECT_EQ(svc.degraded_count(), 0u);
  svc.stop();
}

TEST(ShardSupervisor, WedgedCommandQueuePostGivesUpBounded) {
  // Tiny command queue + supervision off: this isolates the post ladder
  // from the restart machinery.
  ShardedMonitorService svc({.shards = 1,
                             .command_queue_capacity = 4,
                             .supervision = {.enabled = false}});
  svc.start();

  // Put the worker to sleep, give it a moment to pick the command up,
  // then flood the queue: the ladder must retry (counted), then give up
  // with an exception instead of spinning forever.
  svc.inject_worker_fault(0, ShardedMonitorService::WorkerFault::kStall,
                          ticks_from_ms(1500));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  int throws = 0;
  for (int i = 0; i < 12 && throws == 0; ++i) {
    try {
      svc.inject_worker_fault(0, ShardedMonitorService::WorkerFault::kStall, 0);
    } catch (const std::runtime_error&) {
      ++throws;
    }
  }
  EXPECT_EQ(throws, 1) << "a full queue against a wedged worker must make "
                          "post give up within its bounded ladder";

  // The worker wakes, drains the backlog, and the service stays usable.
  ASSERT_TRUE(wait_until(
      [&] {
        const auto stats = svc.shard_stats();
        return stats[0].post_stalls >= 1 && stats[0].commands_run > 0;
      },
      std::chrono::milliseconds(5000)));
  const auto stats = svc.shard_stats();
  EXPECT_GE(stats[0].post_retries, 1u);
  EXPECT_GE(stats[0].post_stalls, 1u);

  const auto id = svc.subscribe(net::SocketAddress::loopback(47500), 5,
                                "after-wedge", kQos);
  svc.unsubscribe(id);
  svc.stop();
}

}  // namespace
}  // namespace twfd

// Concurrency: writers hammer counters/gauges/histograms while another
// thread renders in a loop. Rides the TSan lane (label `obs`, see
// tools/tsan_check.sh) — any missing atomicity or a locking bug between
// registration, removal and render shows up as a reported race; the
// exact totals after join catch lost updates.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/qos_tracker.hpp"

namespace twfd::obs {
namespace {

TEST(ObsConcurrency, WritersVsRenderLoop) {
  Registry registry;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kOpsPerWriter = 20'000;

  Counter& counter = registry.counter("c_total", "help");
  Gauge& gauge = registry.gauge("g", "help");
  Histogram& hist = registry.histogram("h", "help", {0.25, 0.5, 0.75});
  ShardedCounter& sharded = registry.sharded_counter("s_total", "help", kWriters);
  ShardedHistogram& shist =
      registry.sharded_histogram("sh", "help", {0.5}, kWriters);

  std::atomic<bool> stop{false};
  std::thread renderer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = registry.render_text();
      ASSERT_NE(text.find("# TYPE c_total counter"), std::string::npos);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
        counter.add();
        gauge.set(static_cast<double>(i));
        hist.observe(static_cast<double>(i % 4) * 0.25);
        sharded.add(static_cast<std::size_t>(w));
        shist.observe(static_cast<std::size_t>(w), static_cast<double>(i % 2));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  renderer.join();

  constexpr std::uint64_t kTotal = kWriters * kOpsPerWriter;
  EXPECT_EQ(counter.value(), kTotal);
  EXPECT_EQ(sharded.value(), kTotal);
  EXPECT_EQ(hist.snapshot().count, kTotal);
  EXPECT_EQ(shist.snapshot().count, kTotal);
}

TEST(ObsConcurrency, RegistrationVsRenderLoop) {
  Registry registry;
  std::atomic<bool> stop{false};
  std::thread renderer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.render_text();
    }
  });

  // Registering, writing through and removing instances while renders
  // run — the subscription churn pattern (QosTracker track/untrack).
  std::vector<std::thread> churners;
  for (int w = 0; w < 3; ++w) {
    churners.emplace_back([&, w] {
      for (int i = 0; i < 500; ++i) {
        const std::string labels =
            make_labels({{"w", std::to_string(w)}, {"i", std::to_string(i)}});
        registry.counter("churn_total", "help", labels).add();
        registry.remove("churn_total", labels);
      }
    });
  }
  for (auto& t : churners) t.join();
  stop.store(true, std::memory_order_release);
  renderer.join();

  const std::string text = registry.render_text();
  EXPECT_NE(text.find("# TYPE churn_total counter\n"), std::string::npos);
}

TEST(ObsConcurrency, QosEventsVsRefreshLoop) {
  Registry registry;
  QosTracker tracker(registry, {.window = ticks_from_sec(5)});
  // Bounds far below the injected 1 ms samples: every event violates.
  const auto h = tracker.track("app", 1, {0.0001, 0.0001, 0.0001}, 0);

  std::atomic<bool> stop{false};
  std::thread refresher([&] {
    Tick now = 0;
    while (!stop.load(std::memory_order_acquire)) {
      tracker.refresh(now += ticks_from_ms(10));
      (void)registry.render_text();
    }
  });

  // Single writer per handle (the FdService contract), racing refresh().
  constexpr int kMistakes = 2'000;
  Tick t = ticks_from_sec(1);
  for (int i = 0; i < kMistakes; ++i) {
    tracker.record_suspect(h, t, t - ticks_from_ms(1));
    tracker.record_trust(h, t + ticks_from_ms(1));
    t += ticks_from_ms(2);
  }
  stop.store(true, std::memory_order_release);
  refresher.join();

  const std::string text = registry.render_text();
  EXPECT_NE(text.find("twfd_qos_mistakes_total{app=\"app\",peer=\"1\",sub=\"1\"} " +
                      std::to_string(kMistakes) + "\n"),
            std::string::npos);
  // Every mistake breached both T_D^U and T_M^U, and the rate bound at
  // least once: at minimum 2 violations per mistake.
  EXPECT_GE(tracker.violations(), static_cast<std::uint64_t>(2 * kMistakes));
  tracker.untrack(h);
}

}  // namespace
}  // namespace twfd::obs

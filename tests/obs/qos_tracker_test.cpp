// QosTracker: live QoS conformance measurement against negotiated
// (T_D^U, T_MR^U, T_M^U) bounds. Uses explicit Tick values throughout —
// no wall clock, so every assertion is deterministic.

#include "obs/qos_tracker.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace twfd::obs {
namespace {

config::QosRequirements tight() {
  // T_D^U = 1 s, T_MR^U = 1 mistake/s, T_M^U = 0.5 s.
  return {1.0, 1.0, 0.5};
}

TEST(QosTracker, DetectionSampleAndViolation) {
  Registry r;
  QosTracker tr(r);
  const auto h = tr.track("app", 7, tight(), /*start=*/0);

  // Last heartbeat at t=10s, suspect at t=10.5s: sample 0.5s <= 1s bound.
  tr.record_suspect(h, ticks_from_ms(10'500), ticks_from_ms(10'000));
  EXPECT_EQ(tr.violations(), 0u);
  tr.record_trust(h, ticks_from_ms(10'600));

  // Next suspicion fires 2s after the last heartbeat: breaches T_D^U.
  tr.record_suspect(h, ticks_from_ms(22'000), ticks_from_ms(20'000));
  EXPECT_EQ(tr.violations(), 1u);

  const std::string text = r.render_text();
  EXPECT_NE(text.find("twfd_qos_detection_time_seconds{app=\"app\",peer=\"7\",sub=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("twfd_qos_detection_time_bound_seconds{app=\"app\",peer=\"7\",sub=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("twfd_qos_suspected{app=\"app\",peer=\"7\",sub=\"1\"} 1\n"),
            std::string::npos);
}

TEST(QosTracker, NeverHeardYieldsNoDetectionSample) {
  Registry r;
  QosTracker tr(r);
  const auto h = tr.track("app", 1, tight(), 0);
  tr.record_suspect(h, ticks_from_sec(5), /*last_heartbeat_arrival=*/0);
  EXPECT_EQ(tr.violations(), 0u);  // no sample, no breach
}

TEST(QosTracker, MistakeDurationAndViolation) {
  Registry r;
  QosTracker tr(r);
  const auto h = tr.track("app", 1, tight(), 0);

  // 0.2 s mistake: within the 0.5 s bound.
  tr.record_suspect(h, ticks_from_ms(1'000), ticks_from_ms(900));
  tr.record_trust(h, ticks_from_ms(1'200));
  EXPECT_EQ(tr.violations(), 0u);

  // 2 s mistake: breaches T_M^U.
  tr.record_suspect(h, ticks_from_ms(5'000), ticks_from_ms(4'900));
  tr.record_trust(h, ticks_from_ms(7'000));
  EXPECT_EQ(tr.violations(), 1u);

  const std::string text = r.render_text();
  EXPECT_NE(text.find("twfd_qos_mistake_duration_seconds{app=\"app\",peer=\"1\",sub=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("twfd_qos_mistakes_total{app=\"app\",peer=\"1\",sub=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("twfd_qos_suspected{app=\"app\",peer=\"1\",sub=\"1\"} 0\n"),
            std::string::npos);
}

TEST(QosTracker, MistakeRateWindowDecays) {
  Registry r;
  // 10 s window so the arithmetic stays readable.
  QosTracker tr(r, {.window = ticks_from_sec(10)});
  const auto h = tr.track("app", 1, {100.0, 0.05, 100.0}, /*start=*/0);

  // Two mistakes in the first second. Only 1 s of the window has been
  // lived, so the effective rate is 2/1s = 2/s — way over the 0.05/s
  // bound (the rate breach is charged at event time).
  tr.record_suspect(h, ticks_from_ms(100), ticks_from_ms(50));
  tr.record_trust(h, ticks_from_ms(200));
  tr.record_suspect(h, ticks_from_ms(700), ticks_from_ms(650));
  tr.record_trust(h, ticks_from_ms(800));
  EXPECT_GE(tr.violations(), 1u);

  // 10 s later both mistakes have aged out of the window.
  tr.refresh(ticks_from_sec(20));
  const std::string text = r.render_text();
  EXPECT_NE(text.find("twfd_qos_mistake_rate{app=\"app\",peer=\"1\",sub=\"1\"} 0\n"),
            std::string::npos);
}

TEST(QosTracker, DoubleTransitionsAreNoOps) {
  Registry r;
  QosTracker tr(r);
  const auto h = tr.track("app", 1, tight(), 0);
  tr.record_trust(h, ticks_from_sec(1));  // trust while trusting: no-op
  tr.record_suspect(h, ticks_from_sec(2), ticks_from_ms(1'500));
  tr.record_suspect(h, ticks_from_sec(3), ticks_from_ms(1'500));  // already suspecting
  tr.record_trust(h, ticks_from_sec(4));
  tr.record_trust(h, ticks_from_sec(5));  // no-op
  const std::string text = r.render_text();
  EXPECT_NE(text.find("twfd_qos_mistakes_total{app=\"app\",peer=\"1\",sub=\"1\"} 1\n"),
            std::string::npos);
}

TEST(QosTracker, UntrackRemovesGaugesKeepsFamilies) {
  Registry r;
  QosTracker tr(r);
  const auto h = tr.track("app", 9, tight(), 0);
  EXPECT_EQ(tr.tracked(), 1u);
  tr.untrack(h);
  EXPECT_EQ(tr.tracked(), 0u);
  const std::string text = r.render_text();
  EXPECT_EQ(text.find("peer=\"9\""), std::string::npos);
  // Families stay declared so the scrape contract (family presence)
  // holds even with zero live subscriptions.
  EXPECT_NE(text.find("# TYPE twfd_qos_detection_time_seconds gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE twfd_qos_violations_total counter\n"),
            std::string::npos);
}

TEST(QosTracker, TwoSubscriptionsSamePeerStayDistinct) {
  Registry r;
  QosTracker tr(r);
  (void)tr.track("a", 1, tight(), 0);
  (void)tr.track("b", 1, tight(), 0);
  const std::string text = r.render_text();
  EXPECT_NE(text.find("{app=\"a\",peer=\"1\",sub=\"1\"}"), std::string::npos);
  EXPECT_NE(text.find("{app=\"b\",peer=\"1\",sub=\"2\"}"), std::string::npos);
}

TEST(QosTracker, NullHandleIsNoOp) {
  Registry r;
  QosTracker tr(r);
  tr.record_suspect(nullptr, 1, 1);
  tr.record_trust(nullptr, 2);
  tr.untrack(nullptr);
  EXPECT_EQ(tr.violations(), 0u);
}

}  // namespace
}  // namespace twfd::obs

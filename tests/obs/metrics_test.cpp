// Unit tests for the obs metrics layer: bucket boundary semantics,
// registry idempotence, label escaping, and the exact text exposition
// bytes (golden output — scrape consumers parse this format).

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

namespace twfd::obs {
namespace {

TEST(Counter, AddAndMirror) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.set_total(7);  // mirror mode overwrites
  EXPECT_EQ(c.value(), 7u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(1.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Histogram, BucketBoundsAreInclusive) {
  // `le` semantics: a sample exactly on a bound lands in that bucket.
  Histogram h({0.1, 0.5, 1.0});
  h.observe(0.1);   // bucket 0 (v <= 0.1)
  h.observe(0.5);   // bucket 1
  h.observe(0.50001);  // bucket 2
  h.observe(1.0);   // bucket 2
  h.observe(2.0);   // +Inf bucket
  const auto s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.1 + 0.5 + 0.50001 + 1.0 + 2.0);
}

TEST(Histogram, BadBoundsThrow) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::logic_error);          // not ascending
  EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);          // descending
  EXPECT_THROW(Histogram({std::numeric_limits<double>::infinity()}),
               std::logic_error);                                 // not finite
}

TEST(ShardedCounter, SumsAcrossCells) {
  ShardedCounter c(4);
  c.add(0, 1);
  c.add(1, 10);
  c.add(3, 100);
  c.add(3);
  EXPECT_EQ(c.cells(), 4u);
  EXPECT_EQ(c.value(), 112u);
}

TEST(ShardedHistogram, AggregatesAcrossCells) {
  ShardedHistogram h({1.0, 10.0}, 2);
  h.observe(0, 0.5);
  h.observe(1, 5.0);
  h.observe(1, 50.0);
  const auto s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 55.5);
}

TEST(Registry, GetOrCreateIsIdempotent) {
  Registry r;
  Counter& a = r.counter("x_total", "help");
  Counter& b = r.counter("x_total", "help");
  EXPECT_EQ(&a, &b);
  Counter& labelled = r.counter("x_total", "help", make_labels({{"k", "v"}}));
  EXPECT_NE(&a, &labelled);
  EXPECT_EQ(&labelled, &r.counter("x_total", "help", make_labels({{"k", "v"}})));
}

TEST(Registry, TypeMismatchThrows) {
  Registry r;
  r.counter("x_total", "help");
  EXPECT_THROW(r.gauge("x_total", "help"), std::logic_error);
  r.histogram("h", "help", {1.0});
  EXPECT_THROW(r.histogram("h", "help", {2.0}), std::logic_error);  // bound mismatch
}

TEST(Registry, DeclaredFamilyRendersHeaderWithoutInstances) {
  Registry r;
  r.declare("twfd_qos_violations_total", MetricType::kCounter, "Bound breaches.");
  const std::string text = r.render_text();
  EXPECT_NE(text.find("# HELP twfd_qos_violations_total Bound breaches.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE twfd_qos_violations_total counter\n"),
            std::string::npos);
  // Header only: no sample line (samples start at column 0 after a \n).
  EXPECT_EQ(text.find("\ntwfd_qos_violations_total "), std::string::npos);
}

TEST(Registry, RemoveDropsInstanceKeepsFamily) {
  Registry r;
  r.gauge("g", "help", make_labels({{"id", "1"}})).set(3);
  r.gauge("g", "help", make_labels({{"id", "2"}})).set(4);
  EXPECT_TRUE(r.remove("g", make_labels({{"id", "1"}})));
  EXPECT_FALSE(r.remove("g", make_labels({{"id", "1"}})));  // already gone
  const std::string text = r.render_text();
  EXPECT_EQ(text.find("id=\"1\""), std::string::npos);
  EXPECT_NE(text.find("g{id=\"2\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge\n"), std::string::npos);
}

TEST(Registry, CollectHooksRunBeforeRender) {
  Registry r;
  Counter& c = r.counter("hooked_total", "help");
  r.add_collect_hook([&c] { c.set_total(99); });
  const std::string text = r.render_text();
  EXPECT_NE(text.find("hooked_total 99\n"), std::string::npos);
}

TEST(Labels, Escaping) {
  EXPECT_EQ(label_escape("plain"), "plain");
  EXPECT_EQ(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(make_labels({{"app", "x\"y"}}), "app=\"x\\\"y\"");
}

// Golden exposition output: the full byte-exact render of a small
// registry. Families sort by name; histogram buckets are cumulative and
// end with +Inf; counts/sums follow.
TEST(Registry, GoldenExposition) {
  Registry r;
  r.counter("a_total", "A counter.").add(3);
  r.gauge("b_gauge", "A gauge.", make_labels({{"k", "v"}})).set(2.5);
  Histogram& h = r.histogram("c_hist", "A histogram.", {0.5, 1.0});
  h.observe(0.25);
  h.observe(0.75);
  h.observe(9.0);
  const std::string expected =
      "# HELP a_total A counter.\n"
      "# TYPE a_total counter\n"
      "a_total 3\n"
      "# HELP b_gauge A gauge.\n"
      "# TYPE b_gauge gauge\n"
      "b_gauge{k=\"v\"} 2.5\n"
      "# HELP c_hist A histogram.\n"
      "# TYPE c_hist histogram\n"
      "c_hist_bucket{le=\"0.5\"} 1\n"
      "c_hist_bucket{le=\"1\"} 2\n"
      "c_hist_bucket{le=\"+Inf\"} 3\n"
      "c_hist_sum 10\n"
      "c_hist_count 3\n";
  EXPECT_EQ(r.render_text(), expected);
}

TEST(Registry, HistogramWithLabelsRendersLabelledBuckets) {
  Registry r;
  Histogram& h = r.histogram("lat", "help", {1.0}, make_labels({{"app", "x"}}));
  h.observe(0.5);
  const std::string text = r.render_text();
  EXPECT_NE(text.find("lat_bucket{app=\"x\",le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{app=\"x\",le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum{app=\"x\"} 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count{app=\"x\"} 1\n"), std::string::npos);
}

TEST(RenderTextFreeFunction, MatchesMemberRender) {
  Registry r;
  r.counter("x_total", "help").add(1);
  EXPECT_EQ(render_text(r), r.render_text());
}

}  // namespace
}  // namespace twfd::obs

// ScrapeServer over real loopback TCP: a blocking client dials the
// bound port, sends an HTTP request and reads until EOF (HTTP/1.0
// close-delimited), asserting on status line, Content-Type and body.

#include "obs/scrape_server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <span>
#include <string>
#include <thread>

#include "net/tcp.hpp"
#include "obs/metrics.hpp"

namespace twfd::obs {
namespace {

/// One full HTTP exchange: connect, write `request`, read to EOF.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  auto conn = net::TcpConn::connect(net::SocketAddress::loopback(port),
                                    ticks_from_sec(5));
  if (!conn) return {};
  std::span<const std::byte> out{reinterpret_cast<const std::byte*>(request.data()),
                                 request.size()};
  while (!out.empty()) {
    const auto r = conn->write_some(out);
    if (r.status == net::TcpConn::IoStatus::kClosed) return {};
    out = out.subspan(r.bytes);
    if (r.status == net::TcpConn::IoStatus::kWouldBlock) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::string response;
  std::byte buf[4096];
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    const auto r = conn->read_some(buf);
    if (r.status == net::TcpConn::IoStatus::kClosed) break;
    if (r.status == net::TcpConn::IoStatus::kWouldBlock) {
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    response.append(reinterpret_cast<const char*>(buf), r.bytes);
  }
  return response;
}

TEST(ScrapeServer, ServesMetricsOnGet) {
  Registry registry;
  registry.counter("twfd_test_total", "A test counter.").add(5);
  ScrapeServer server(registry, {});
  server.start();
  ASSERT_NE(server.port(), 0);

  const std::string resp =
      http_exchange(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK\r\n"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(resp.find("twfd_test_total 5\n"), std::string::npos);
  // The endpoint's own accounting appears in its output.
  EXPECT_NE(resp.find("twfd_scrape_requests_total"), std::string::npos);
  EXPECT_EQ(server.scrapes(), 1u);
  server.stop();
}

TEST(ScrapeServer, RootAliasAndRepeatScrapes) {
  Registry registry;
  ScrapeServer server(registry, {});
  server.start();
  for (int i = 0; i < 3; ++i) {
    const std::string resp = http_exchange(server.port(), "GET / HTTP/1.0\r\n\r\n");
    EXPECT_NE(resp.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  }
  EXPECT_EQ(server.scrapes(), 3u);
  server.stop();
}

TEST(ScrapeServer, UnknownPathIs404) {
  Registry registry;
  ScrapeServer server(registry, {});
  server.start();
  const std::string resp =
      http_exchange(server.port(), "GET /bogus HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 404 Not Found\r\n"), std::string::npos) << resp;
  EXPECT_EQ(server.scrapes(), 0u);
  server.stop();
}

TEST(ScrapeServer, NonGetIs400) {
  Registry registry;
  ScrapeServer server(registry, {});
  server.start();
  const std::string resp =
      http_exchange(server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.0 400 Bad Request\r\n"), std::string::npos) << resp;
  server.stop();
}

TEST(ScrapeServer, CollectHookRunsPerScrape) {
  Registry registry;
  Counter& c = registry.counter("hooked_total", "help");
  int hooks = 0;
  registry.add_collect_hook([&] {
    ++hooks;
    c.set_total(static_cast<std::uint64_t>(hooks));
  });
  ScrapeServer server(registry, {});
  server.start();
  (void)http_exchange(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  const std::string resp =
      http_exchange(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("hooked_total 2\n"), std::string::npos) << resp;
  server.stop();
}

TEST(ScrapeServer, PortInUseThrows) {
  Registry registry;
  ScrapeServer a(registry, {});
  EXPECT_THROW(ScrapeServer(registry, {.port = a.port()}), std::system_error);
}

TEST(ScrapeServer, StopWithoutStartIsSafe) {
  Registry registry;
  ScrapeServer server(registry, {});
  server.stop();  // never started
}

}  // namespace
}  // namespace twfd::obs

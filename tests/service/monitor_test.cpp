#include "service/monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/multi_window.hpp"
#include "detect/chen.hpp"
#include "detect/fixed_timeout.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "sim/sim_world.hpp"

namespace twfd::service {
namespace {

std::unique_ptr<detect::FailureDetector> chen(Tick interval, Tick margin) {
  detect::ChenDetector::Params p;
  p.window = 4;
  p.interval = interval;
  p.safety_margin = margin;
  return std::make_unique<detect::ChenDetector>(p);
}

struct Rig {
  sim::SimWorld world{11};
  sim::SimEndpoint& p;
  sim::SimEndpoint& q;
  Dispatcher q_dispatch;
  HeartbeatSender sender;
  std::vector<Tick> suspects;
  std::vector<Tick> trusts;
  Monitor monitor;

  explicit Rig(Tick interval = ticks_from_ms(100), Tick margin = ticks_from_ms(50))
      : p(world.add_endpoint("p")),
        q(world.add_endpoint("q")),
        q_dispatch(q.runtime()),
        sender(p.runtime(), {1, interval}),
        monitor(q.runtime(), /*watched_sender_id=*/1, chen(interval, margin),
                {[this](Tick t) { suspects.push_back(t); },
                 [this](Tick t) { trusts.push_back(t); }}) {
    world.connect_both(p, q, sim::lan_link());
    q_dispatch.on_heartbeat([this](PeerId from, const net::HeartbeatMsg& m, Tick at) {
      monitor.handle_heartbeat(from, m, at);
    });
    sender.add_target(q.id());
  }
};

TEST(Monitor, StaysTrustingWhileHeartbeatsFlow) {
  Rig rig;
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(5));
  EXPECT_TRUE(rig.suspects.empty());
  EXPECT_EQ(rig.monitor.output(), detect::Output::Trust);
  EXPECT_GT(rig.monitor.heartbeats_seen(), 40u);
}

TEST(Monitor, DetectsCrashWithinExpectedTime) {
  Rig rig;
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(2));
  ASSERT_TRUE(rig.suspects.empty());
  // Crash p at t=2s (last heartbeat at t=2.0s).
  rig.sender.stop();
  rig.world.run_until(ticks_from_sec(5));
  ASSERT_EQ(rig.suspects.size(), 1u);
  // Detection = next expected arrival (+delay ~100us) + 50 ms margin.
  const Tick detect_at = rig.suspects[0];
  EXPECT_GT(detect_at, ticks_from_ms(2100));
  EXPECT_LT(detect_at, ticks_from_ms(2300));
  EXPECT_EQ(rig.monitor.output(), detect::Output::Suspect);
  EXPECT_TRUE(rig.trusts.empty());
}

TEST(Monitor, RecoversWhenSenderReturns) {
  Rig rig;
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(1));
  rig.sender.stop();
  rig.world.run_until(ticks_from_sec(3));
  ASSERT_EQ(rig.suspects.size(), 1u);
  // p restarts (sequence numbers continue).
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(4));
  ASSERT_EQ(rig.trusts.size(), 1u);
  EXPECT_GT(rig.trusts[0], rig.suspects[0]);
  EXPECT_EQ(rig.monitor.output(), detect::Output::Trust);
}

TEST(Monitor, IgnoresForeignSenders) {
  Rig rig;
  // A second sender with a different id targets the same monitor.
  HeartbeatSender foreign(rig.p.runtime(), {99, ticks_from_ms(10)});
  foreign.add_target(rig.q.id());
  foreign.start();
  rig.world.run_until(ticks_from_sec(1));
  EXPECT_EQ(rig.monitor.heartbeats_seen(), 0u);
}

TEST(Monitor, RepeatedCrashesProduceRepeatedAlarms) {
  Rig rig;
  for (int round = 0; round < 3; ++round) {
    rig.sender.start();
    rig.world.run_until(rig.world.now() + ticks_from_sec(1));
    rig.sender.stop();
    rig.world.run_until(rig.world.now() + ticks_from_sec(2));
  }
  EXPECT_EQ(rig.suspects.size(), 3u);
  EXPECT_EQ(rig.trusts.size(), 2u);  // last crash never recovers
}

// Regression pin for the on_timer / handle_heartbeat re-arm race at
// EQUAL ticks: the freshness timer fires at exactly t = suspect_after and
// a heartbeat arrives in the same tick, immediately after. The suspicion
// must be raised, the heartbeat must restore trust in the same tick, and
// — crucially — the monitor must re-arm so the *next* silence is still
// detected (nothing gets swallowed by the same-tick suspecting_ reset).
TEST(Monitor, EqualTickSuspectThenTrustStillRearms) {
  sim::SimWorld world(30);
  auto& q = world.add_endpoint("q");
  std::vector<Tick> suspects, trusts;

  detect::FixedTimeoutDetector::Params p;
  p.timeout = ticks_from_ms(150);
  Monitor monitor(q.runtime(), /*watched_sender_id=*/1,
                  std::make_unique<detect::FixedTimeoutDetector>(p),
                  {[&](Tick t) { suspects.push_back(t); },
                   [&](Tick t) { trusts.push_back(t); }});

  auto heartbeat = [](std::int64_t seq, Tick send) {
    net::HeartbeatMsg m;
    m.sender_id = 1;
    m.seq = seq;
    m.send_time = send;
    m.interval = ticks_from_ms(150);
    return m;
  };
  // Heartbeat #1 at t=0 arms the freshness timer at exactly t=150ms.
  // Heartbeat #2 is scheduled *after* the monitor handled #1, so at
  // t=150ms the timer event precedes it in FIFO order: the timer fires
  // (Suspect at 150ms), then the heartbeat lands in the same tick
  // (Trust at 150ms) and re-arms for t=300ms.
  q.schedule_at(0, [&] {
    monitor.handle_heartbeat(/*from=*/1, heartbeat(1, 0), q.now());
    q.schedule_at(ticks_from_ms(150),
                  [&] { monitor.handle_heartbeat(1, heartbeat(2, ticks_from_ms(150)),
                                                 q.now()); });
  });

  world.run_until(ticks_from_ms(149));
  EXPECT_TRUE(suspects.empty());

  world.run_until(ticks_from_ms(150));
  ASSERT_EQ(suspects.size(), 1u);
  ASSERT_EQ(trusts.size(), 1u);
  EXPECT_EQ(suspects[0], ticks_from_ms(150));
  EXPECT_EQ(trusts[0], ticks_from_ms(150));
  EXPECT_EQ(monitor.output(), detect::Output::Trust);

  // The re-arm must not have been swallowed: renewed silence is detected.
  world.run_until(ticks_from_sec(1));
  ASSERT_EQ(suspects.size(), 2u);
  EXPECT_EQ(suspects[1], ticks_from_ms(300));
  EXPECT_EQ(trusts.size(), 1u);
  EXPECT_EQ(monitor.output(), detect::Output::Suspect);
}

// Opposite equal-tick order: the heartbeat is scheduled *before* the
// timer is armed, so at t = suspect_after the heartbeat is processed
// first and reschedules the freshness deadline out. The superseded timer
// event surfacing in the same tick must not raise a spurious suspicion.
TEST(Monitor, EqualTickHeartbeatFirstSuppressesSuspicion) {
  sim::SimWorld world(31);
  auto& q = world.add_endpoint("q");
  std::vector<Tick> suspects, trusts;

  detect::FixedTimeoutDetector::Params p;
  p.timeout = ticks_from_ms(150);
  Monitor monitor(q.runtime(), 1,
                  std::make_unique<detect::FixedTimeoutDetector>(p),
                  {[&](Tick t) { suspects.push_back(t); },
                   [&](Tick t) { trusts.push_back(t); }});

  auto heartbeat = [](std::int64_t seq, Tick send) {
    net::HeartbeatMsg m;
    m.sender_id = 1;
    m.seq = seq;
    m.send_time = send;
    m.interval = ticks_from_ms(150);
    return m;
  };
  // Both injections are scheduled up front; the monitor's timer (armed
  // while handling #1 at t=0) carries a later FIFO order than the
  // injection event at t=150ms, so the heartbeat wins the tie.
  q.schedule_at(0, [&] { monitor.handle_heartbeat(1, heartbeat(1, 0), q.now()); });
  q.schedule_at(ticks_from_ms(150), [&] {
    monitor.handle_heartbeat(1, heartbeat(2, ticks_from_ms(150)), q.now());
  });

  world.run_until(ticks_from_ms(150));
  EXPECT_TRUE(suspects.empty());
  EXPECT_TRUE(trusts.empty());
  EXPECT_EQ(monitor.output(), detect::Output::Trust);

  // Silence after the last heartbeat is still detected on schedule.
  world.run_until(ticks_from_sec(1));
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], ticks_from_ms(300));
}

// Two monitors whose freshness deadlines collide on the SAME tick: the
// timer core must fire them in arm order (equal-deadline FIFO — on the
// timing wheel that is slot insertion order, preserved across cascades),
// and each must re-arm independently. Pins the wheel's tie contract
// through the full Monitor/runtime stack, not just at the wheel API.
TEST(Monitor, CollidingFreshnessDeadlinesFireInArmOrder) {
  sim::SimWorld world(32);
  auto& q = world.add_endpoint("q");
  std::vector<int> suspect_order;

  detect::FixedTimeoutDetector::Params p;
  p.timeout = ticks_from_ms(150);
  Monitor first(q.runtime(), /*watched_sender_id=*/1,
                std::make_unique<detect::FixedTimeoutDetector>(p),
                {[&](Tick) { suspect_order.push_back(1); }, {}});
  Monitor second(q.runtime(), /*watched_sender_id=*/2,
                 std::make_unique<detect::FixedTimeoutDetector>(p),
                 {[&](Tick) { suspect_order.push_back(2); }, {}});

  auto heartbeat = [](PeerId sender, std::int64_t seq, Tick send) {
    net::HeartbeatMsg m;
    m.sender_id = sender;
    m.seq = seq;
    m.send_time = send;
    m.interval = ticks_from_ms(150);
    return m;
  };
  // Both monitors see a heartbeat at t=0, arming two freshness timers at
  // exactly t=150ms: `first` arms before `second`.
  q.schedule_at(0, [&] {
    first.handle_heartbeat(1, heartbeat(1, 1, 0), q.now());
    second.handle_heartbeat(2, heartbeat(2, 1, 0), q.now());
  });

  world.run_until(ticks_from_ms(150));
  ASSERT_EQ(suspect_order.size(), 2u);
  EXPECT_EQ(suspect_order[0], 1);
  EXPECT_EQ(suspect_order[1], 2);

  // Revive only the SECOND monitor; its re-arm lands on a fresh tick
  // while the first stays suspecting — the colliding fire must not have
  // cross-wired the two timers.
  q.schedule_at(ticks_from_ms(200), [&] {
    second.handle_heartbeat(2, heartbeat(2, 2, ticks_from_ms(200)), q.now());
  });
  world.run_until(ticks_from_sec(1));
  ASSERT_EQ(suspect_order.size(), 3u);
  EXPECT_EQ(suspect_order[2], 2);  // second's renewed silence, at 350ms
  EXPECT_EQ(first.output(), detect::Output::Suspect);
  EXPECT_EQ(second.output(), detect::Output::Suspect);
}

TEST(Monitor, WorksWithMultiWindowDetector) {
  sim::SimWorld world(13);
  auto& p = world.add_endpoint("p");
  auto& q = world.add_endpoint("q");
  world.connect_both(p, q, sim::lan_link());
  Dispatcher dispatch(q.runtime());
  HeartbeatSender sender(p.runtime(), {1, ticks_from_ms(50)});
  sender.add_target(q.id());

  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 100};
  mp.safety_margin = ticks_from_ms(30);
  mp.interval = ticks_from_ms(50);
  std::vector<Tick> suspects;
  Monitor monitor(q.runtime(), 1, std::make_unique<core::MultiWindowDetector>(mp),
                  {[&](Tick t) { suspects.push_back(t); }, {}});
  dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    monitor.handle_heartbeat(from, m, at);
  });

  sender.start();
  world.run_until(ticks_from_sec(3));
  EXPECT_TRUE(suspects.empty());
  sender.stop();
  world.run_until(ticks_from_sec(6));
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_LT(suspects[0], ticks_from_sec(3) + ticks_from_ms(200));
}

}  // namespace
}  // namespace twfd::service

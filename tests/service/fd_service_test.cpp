#include "service/fd_service.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "sim/sim_world.hpp"

namespace twfd::service {
namespace {

const config::QosRequirements kStrict{0.5, 1e-5, 2.0};
const config::QosRequirements kMedium{1.5, 1e-4, 5.0};
const config::QosRequirements kRelaxed{4.0, 1e-3, 20.0};

struct Rig {
  sim::SimWorld world{21};
  sim::SimEndpoint& p;  // monitored host
  sim::SimEndpoint& q;  // host running the FD service
  Dispatcher p_dispatch;
  Dispatcher q_dispatch;
  HeartbeatSender sender;
  FdService svc;
  std::vector<FdService::StatusEvent> events;

  explicit Rig(FdService::Params params = {})
      : p(world.add_endpoint("p")),
        q(world.add_endpoint("q")),
        p_dispatch(p.runtime()),
        q_dispatch(q.runtime()),
        sender(p.runtime(), {/*sender_id=*/1, /*base=*/ticks_from_sec(10)}),
        svc(q.runtime(), std::move(params)) {
    world.connect_both(p, q, sim::lan_link());
    sender.add_target(q.id());
    p_dispatch.on_interval_request(
        [this](PeerId from, const net::IntervalRequestMsg& m) {
          sender.handle_interval_request(from, m);
        });
    q_dispatch.on_heartbeat([this](PeerId from, const net::HeartbeatMsg& m, Tick at) {
      svc.handle_heartbeat(from, m, at);
    });
  }

  FdService::SubscriptionId subscribe(const std::string& app,
                                      const config::QosRequirements& qos) {
    return svc.subscribe(p.id(), 1, app,
                         qos, [this](const FdService::StatusEvent& e) {
                           events.push_back(e);
                         });
  }
};

TEST(FdService, NegotiatesSharedInterval) {
  Rig rig;
  rig.subscribe("strict", kStrict);
  rig.subscribe("relaxed", kRelaxed);
  rig.world.run();  // deliver the IntervalRequest

  const auto* combined = rig.svc.combined_config(rig.p.id());
  ASSERT_NE(combined, nullptr);
  ASSERT_TRUE(combined->feasible);
  // Sender adopted exactly the requested Delta_i,min.
  EXPECT_EQ(rig.sender.effective_interval(), rig.svc.shared_interval(rig.p.id()));
  EXPECT_LT(rig.sender.effective_interval(), ticks_from_sec(10));
  // Shared interval is the strict app's dedicated interval.
  EXPECT_NEAR(combined->shared_interval_s, combined->apps[0].dedicated.interval_s,
              1e-12);
}

TEST(FdService, AllAppsTrustWhileAlive) {
  Rig rig;
  const auto s1 = rig.subscribe("strict", kStrict);
  const auto s2 = rig.subscribe("medium", kMedium);
  const auto s3 = rig.subscribe("relaxed", kRelaxed);
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(30));
  EXPECT_EQ(rig.svc.output(s1), detect::Output::Trust);
  EXPECT_EQ(rig.svc.output(s2), detect::Output::Trust);
  EXPECT_EQ(rig.svc.output(s3), detect::Output::Trust);
  EXPECT_TRUE(rig.events.empty());
  EXPECT_GT(rig.svc.heartbeats_processed(), 50u);
}

TEST(FdService, CrashDetectedInQosOrder) {
  Rig rig;
  rig.subscribe("strict", kStrict);
  rig.subscribe("medium", kMedium);
  rig.subscribe("relaxed", kRelaxed);
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(20));
  ASSERT_TRUE(rig.events.empty());

  const Tick crash = rig.world.now();
  rig.sender.stop();
  rig.world.run_until(crash + ticks_from_sec(10));

  // All three apps eventually suspect, strictest first, and each within
  // (roughly) its requested detection bound.
  ASSERT_EQ(rig.events.size(), 3u);
  EXPECT_EQ(rig.events[0].app, "strict");
  EXPECT_EQ(rig.events[1].app, "medium");
  EXPECT_EQ(rig.events[2].app, "relaxed");
  for (const auto& e : rig.events) {
    EXPECT_EQ(e.output, detect::Output::Suspect);
  }
  // Detection latency from crash <= T_D^U + one interval of slack.
  EXPECT_LE(rig.events[0].when - crash, ticks_from_seconds(0.5 + 0.6));
  EXPECT_LE(rig.events[1].when - crash, ticks_from_seconds(1.5 + 0.6));
  EXPECT_LE(rig.events[2].when - crash, ticks_from_seconds(4.0 + 0.6));
}

TEST(FdService, RecoveryEmitsTrustEvents) {
  Rig rig;
  rig.subscribe("strict", kStrict);
  rig.subscribe("relaxed", kRelaxed);
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(10));
  rig.sender.stop();
  rig.world.run_until(ticks_from_sec(20));
  ASSERT_EQ(rig.events.size(), 2u);  // both suspected
  rig.events.clear();

  rig.sender.start();
  rig.world.run_until(ticks_from_sec(25));
  ASSERT_EQ(rig.events.size(), 2u);
  for (const auto& e : rig.events) EXPECT_EQ(e.output, detect::Output::Trust);
}

TEST(FdService, UnsubscribeRelaxesInterval) {
  Rig rig;
  const auto strict_id = rig.subscribe("strict", kStrict);
  rig.subscribe("relaxed", kRelaxed);
  rig.world.run();
  const Tick fast = rig.sender.effective_interval();

  rig.svc.unsubscribe(strict_id);
  rig.world.run();
  const Tick slow = rig.sender.effective_interval();
  EXPECT_GT(slow, fast);  // only the relaxed app remains
  EXPECT_EQ(slow, rig.svc.shared_interval(rig.p.id()));
}

TEST(FdService, UnsubscribedAppGetsNoEvents) {
  Rig rig;
  const auto id = rig.subscribe("strict", kStrict);
  rig.subscribe("relaxed", kRelaxed);
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(5));
  rig.svc.unsubscribe(id);
  rig.sender.stop();
  rig.world.run_until(ticks_from_sec(15));
  ASSERT_EQ(rig.events.size(), 1u);
  EXPECT_EQ(rig.events[0].app, "relaxed");
}

TEST(FdService, InfeasibleQosRejected) {
  Rig rig;
  // Demands detection in 1 ms on a network assumed to have 10 ms stddev:
  // Chen's procedure would only satisfy this by flooding (sub-millisecond
  // heartbeats), which the service's interval floor rejects.
  config::QosRequirements impossible{0.001, 1e-9, 0.001};
  EXPECT_THROW(rig.subscribe("impossible", impossible), std::logic_error);
  // Service state stays clean: a feasible app still works.
  EXPECT_NO_THROW(rig.subscribe("ok", kMedium));
}

TEST(FdService, SenderIdMismatchIgnored) {
  Rig rig;
  const auto id = rig.subscribe("app", kMedium);
  // A rogue sender with a different id on the same peer/link: its
  // heartbeats must not feed the estimation — so from the subscribed
  // app's perspective the remote is silent and, past the bootstrap
  // deadline, rightly suspected.
  HeartbeatSender rogue(rig.p.runtime(), {77, ticks_from_ms(10)});
  rogue.add_target(rig.q.id());
  rogue.start();
  rig.world.run_until(ticks_from_sec(30));
  EXPECT_EQ(rig.svc.heartbeats_processed(), 0u);
  EXPECT_EQ(rig.svc.output(id), detect::Output::Suspect);
  ASSERT_EQ(rig.events.size(), 1u);
  EXPECT_EQ(rig.events[0].output, detect::Output::Suspect);
  // The genuine sender restores trust.
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(32));
  EXPECT_EQ(rig.svc.output(id), detect::Output::Trust);
}

TEST(FdService, UnknownSubscriptionQueriesThrow) {
  Rig rig;
  EXPECT_THROW((void)rig.svc.output(123), std::logic_error);
}

TEST(FdService, MonitorsMultipleRemotesIndependently) {
  sim::SimWorld world(33);
  auto& p1 = world.add_endpoint("p1");
  auto& p2 = world.add_endpoint("p2");
  auto& q = world.add_endpoint("q");
  world.connect_both(p1, q, sim::lan_link());
  world.connect_both(p2, q, sim::lan_link());

  Dispatcher d1(p1.runtime()), d2(p2.runtime()), dq(q.runtime());
  HeartbeatSender s1(p1.runtime(), {1, ticks_from_sec(10)});
  HeartbeatSender s2(p2.runtime(), {2, ticks_from_sec(10)});
  s1.add_target(q.id());
  s2.add_target(q.id());
  d1.on_interval_request([&](PeerId f, const net::IntervalRequestMsg& m) {
    s1.handle_interval_request(f, m);
  });
  d2.on_interval_request([&](PeerId f, const net::IntervalRequestMsg& m) {
    s2.handle_interval_request(f, m);
  });

  FdService svc(q.runtime(), {});
  dq.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    svc.handle_heartbeat(from, m, at);
  });
  std::vector<FdService::StatusEvent> events;
  auto cb = [&](const FdService::StatusEvent& e) { events.push_back(e); };

  const auto a1 = svc.subscribe(p1.id(), 1, "app-on-p1", kStrict, cb);
  const auto a2 = svc.subscribe(p2.id(), 2, "app-on-p2", kRelaxed, cb);
  // Different QoS per remote -> different negotiated intervals.
  EXPECT_LT(svc.shared_interval(p1.id()), svc.shared_interval(p2.id()));

  s1.start();
  s2.start();
  world.run_until(ticks_from_sec(20));
  EXPECT_EQ(svc.output(a1), detect::Output::Trust);
  EXPECT_EQ(svc.output(a2), detect::Output::Trust);
  ASSERT_TRUE(events.empty());

  // Only p1 crashes: p2's subscription must be unaffected.
  s1.stop();
  world.run_until(ticks_from_sec(30));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].app, "app-on-p1");
  EXPECT_EQ(svc.output(a1), detect::Output::Suspect);
  EXPECT_EQ(svc.output(a2), detect::Output::Trust);
}

TEST(FdService, PeriodicReconfigureUsesLiveEstimates) {
  FdService::Params params;
  params.reconfigure_period = ticks_from_sec(5);
  // Assume a pessimistic network; live estimates (tiny LAN variance) must
  // relax the interval at the first reconfiguration.
  params.assumed_network = {0.05, 1e-2};
  params.min_samples_for_estimate = 50;
  Rig rig(params);
  rig.subscribe("app", kMedium);
  // Bounded: the periodic reconfigure timer re-arms itself forever, so a
  // full queue drain would never terminate.
  rig.world.run_until(ticks_from_ms(100));
  const Tick pessimistic = rig.svc.shared_interval(rig.p.id());
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(30));
  const Tick informed = rig.svc.shared_interval(rig.p.id());
  EXPECT_GT(informed, pessimistic);  // better network -> fewer heartbeats
  // The very last reconfigure's request may still be in flight at the
  // cutoff; the sender must be within one reconfigure step of the service.
  EXPECT_NEAR(static_cast<double>(rig.sender.effective_interval()),
              static_cast<double>(informed), 1e6 /* 1 ms */);
}

// A rejected subscribe must be observable as if it never happened: no
// admission, no detector rebuild, no renegotiation on the wire. The
// pre-slab service combined AFTER mutating, so a doomed subscribe left a
// phantom remote behind and spammed the sender with a stale request.
TEST(FdService, RejectedSubscribeHasNoSideEffects) {
  Rig rig;
  rig.subscribe("ok", kMedium);
  rig.world.run();  // settle the initial negotiation

  std::size_t wire_requests = 0;
  rig.p_dispatch.on_interval_request(
      [&](PeerId from, const net::IntervalRequestMsg& m) {
        ++wire_requests;
        rig.sender.handle_interval_request(from, m);
      });
  const Tick interval = rig.svc.shared_interval(rig.p.id());
  const std::uint64_t rebuilds = rig.svc.detector_rebuilds();

  config::QosRequirements impossible{0.001, 1e-9, 0.001};
  EXPECT_THROW(rig.subscribe("doomed", impossible), std::logic_error);
  rig.world.run();

  EXPECT_EQ(wire_requests, 0u);  // nothing reached the sender
  EXPECT_EQ(rig.svc.detector_rebuilds(), rebuilds);
  EXPECT_EQ(rig.svc.shared_interval(rig.p.id()), interval);
  const auto* combined = rig.svc.combined_config(rig.p.id());
  ASSERT_NE(combined, nullptr);
  ASSERT_EQ(combined->apps.size(), 1u);  // the doomed app was never adopted

  // Against an UNKNOWN peer the rejection must not admit a remote either.
  EXPECT_EQ(rig.svc.remote_count(), 1u);
  EXPECT_THROW(rig.svc.subscribe(rig.p.id() + 1000, 9, "doomed-too", impossible,
                                 [](const FdService::StatusEvent&) {}),
               std::logic_error);
  EXPECT_EQ(rig.svc.remote_count(), 1u);

  // The surviving subscription still detects normally. (The settle run
  // above outlived the bootstrap deadline, so "ok" may already carry a
  // Suspect/Trust pair — only the post-crash events matter here.)
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(10));
  rig.events.clear();
  rig.sender.stop();
  rig.world.run_until(ticks_from_sec(20));
  ASSERT_EQ(rig.events.size(), 1u);
  EXPECT_EQ(rig.events[0].app, "ok");
  EXPECT_EQ(rig.events[0].output, detect::Output::Suspect);
}

// An advertised-interval change the service did NOT request means the
// sender was reconfigured behind our back: the accumulated p_L / V(D)
// samples describe the old sending regime and must be dropped. A change
// we DID request keeps them — they are the evidence that justified the
// request (and wiping them would oscillate the negotiation; see
// PeriodicReconfigureUsesLiveEstimates, which pins the solicited path
// end-to-end).
TEST(FdService, UnsolicitedIntervalChangeRestartsEstimator) {
  Rig rig;
  rig.subscribe("app", kMedium);
  rig.sender.start();
  rig.world.run_until(ticks_from_sec(10));

  const auto* est = rig.svc.network_estimator(rig.p.id());
  ASSERT_NE(est, nullptr);
  const std::int64_t before = est->received();
  ASSERT_GT(before, 10);
  const Tick requested = rig.svc.shared_interval(rig.p.id());
  const std::uint64_t rebuilds = rig.svc.detector_rebuilds();

  // The sender restarts with a config of its own choosing: twice the
  // negotiated interval, never requested by this service.
  net::HeartbeatMsg rogue;
  rogue.sender_id = 1;
  rogue.seq = est->highest_seq() + 1;
  rogue.send_time = rig.world.now();
  rogue.interval = requested * 2;
  rig.svc.handle_heartbeat(rig.p.id(), rogue, rig.world.now());

  est = rig.svc.network_estimator(rig.p.id());
  ASSERT_NE(est, nullptr);
  // Estimation restarted: only the announcing heartbeat itself remains.
  EXPECT_EQ(est->received(), 1);
  // The arrival estimation was re-based too.
  EXPECT_EQ(rig.svc.detector_rebuilds(), rebuilds + 1);

  // Now the sender adopts the interval we HAD requested (solicited
  // catch-up): samples survive, only the arrival windows re-base.
  net::HeartbeatMsg solicited;
  solicited.sender_id = 1;
  solicited.seq = rogue.seq + 1;
  solicited.send_time = rig.world.now();
  solicited.interval = requested;
  rig.svc.handle_heartbeat(rig.p.id(), solicited, rig.world.now());

  est = rig.svc.network_estimator(rig.p.id());
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->received(), 2);  // not reset — it grew
}

// Subscribe/unsubscribe churn on the same peer must recycle the one slab
// slot instead of claiming fresh ones (O(1) allocation-free admission
// after warm-up).
TEST(FdService, PeerChurnReusesSlabSlot) {
  Rig rig;
  for (int i = 0; i < 100; ++i) {
    const auto id = rig.subscribe("churn", kMedium);
    ASSERT_EQ(rig.svc.remote_count(), 1u);
    rig.svc.unsubscribe(id);
    ASSERT_EQ(rig.svc.remote_count(), 0u);
    rig.world.run();  // drain the interval-request traffic
  }
  EXPECT_EQ(rig.svc.remote_high_water(), 1u);
}

}  // namespace
}  // namespace twfd::service

// Dispatcher::ingest: malformed datagrams are counted and dropped while
// well-formed heartbeats keep flowing — the shard hand-off path calls
// ingest directly, so junk arriving between heartbeats must never
// disturb the heartbeat stream or crash the decode.

#include "service/dispatcher.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "net/event_loop.hpp"
#include "net/wire.hpp"

namespace twfd {
namespace {

std::vector<std::byte> heartbeat_bytes(std::int64_t seq) {
  net::HeartbeatMsg hb;
  hb.sender_id = 1;
  hb.seq = seq;
  hb.send_time = ticks_from_ms(seq * 20);
  hb.interval = ticks_from_ms(20);
  return net::encode(hb);
}

TEST(Dispatcher, MalformedDatagramsCountedAndDroppedWithoutDisturbingHeartbeats) {
  net::EventLoop loop;
  service::Dispatcher dispatch(loop.runtime());

  std::vector<std::int64_t> seen;
  dispatch.on_heartbeat([&](PeerId, const net::HeartbeatMsg& m, Tick) {
    seen.push_back(m.seq);
  });

  const PeerId peer = loop.add_peer(net::SocketAddress::loopback(9));

  dispatch.ingest(peer, heartbeat_bytes(1));

  // Garbage: random bytes, wrong magic, truncation, empty payload.
  const std::vector<std::byte> junk = {std::byte{0xde}, std::byte{0xad},
                                       std::byte{0xbe}, std::byte{0xef}};
  dispatch.ingest(peer, junk);

  auto bad_magic = heartbeat_bytes(2);
  bad_magic[0] = std::byte{0x00};
  dispatch.ingest(peer, bad_magic);

  auto truncated = heartbeat_bytes(3);
  truncated.resize(truncated.size() / 2);
  dispatch.ingest(peer, truncated);

  dispatch.ingest(peer, {});

  dispatch.ingest(peer, heartbeat_bytes(4));

  EXPECT_EQ(dispatch.malformed_count(), 4u);
  EXPECT_EQ(dispatch.heartbeat_count(), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1);
  EXPECT_EQ(seen[1], 4);
}

TEST(Dispatcher, CorruptedVersionByteIsMalformed) {
  net::EventLoop loop;
  service::Dispatcher dispatch(loop.runtime());
  int heartbeats = 0;
  dispatch.on_heartbeat([&](PeerId, const net::HeartbeatMsg&, Tick) { ++heartbeats; });

  auto bytes = heartbeat_bytes(1);
  bytes[4] = std::byte{0xff};  // version field follows the 4-byte magic
  dispatch.ingest(loop.add_peer(net::SocketAddress::loopback(9)), bytes);

  EXPECT_EQ(dispatch.malformed_count(), 1u);
  EXPECT_EQ(heartbeats, 0);
}

}  // namespace
}  // namespace twfd

#include "service/heartbeat_sender.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "service/dispatcher.hpp"
#include "sim/sim_world.hpp"

namespace twfd::service {
namespace {

struct Rig {
  sim::SimWorld world{1};
  sim::SimEndpoint& p;
  sim::SimEndpoint& q;
  Dispatcher q_dispatch;
  std::vector<net::HeartbeatMsg> received;

  Rig()
      : p(world.add_endpoint("p")),
        q(world.add_endpoint("q")),
        q_dispatch(q.runtime()) {
    world.connect_both(p, q, sim::lan_link());
    q_dispatch.on_heartbeat([this](PeerId, const net::HeartbeatMsg& m, Tick) {
      received.push_back(m);
    });
  }
};

TEST(HeartbeatSender, EmitsAtCadence) {
  Rig rig;
  HeartbeatSender::Params sp;
  sp.sender_id = 9;
  sp.base_interval = ticks_from_ms(100);
  HeartbeatSender sender(rig.p.runtime(), sp);
  sender.add_target(rig.q.id());
  sender.start();
  rig.world.run_until(ticks_from_ms(1050));
  sender.stop();

  // t=0,100,...,1000 -> 11 heartbeats.
  ASSERT_EQ(rig.received.size(), 11u);
  for (std::size_t i = 0; i < rig.received.size(); ++i) {
    EXPECT_EQ(rig.received[i].seq, static_cast<std::int64_t>(i + 1));
    EXPECT_EQ(rig.received[i].sender_id, 9u);
    EXPECT_EQ(rig.received[i].interval, ticks_from_ms(100));
  }
  EXPECT_EQ(sender.sent_count(), 11);
}

TEST(HeartbeatSender, SendTimestampsUseLocalClock) {
  sim::SimWorld world(2);
  auto& p = world.add_endpoint("p", /*skew=*/ticks_from_sec(50));
  auto& q = world.add_endpoint("q");
  world.connect_both(p, q, sim::lan_link());
  Dispatcher dispatch(q.runtime());
  std::vector<net::HeartbeatMsg> received;
  dispatch.on_heartbeat(
      [&](PeerId, const net::HeartbeatMsg& m, Tick) { received.push_back(m); });

  HeartbeatSender sender(p.runtime(), {1, ticks_from_ms(100)});
  sender.add_target(q.id());
  sender.start();
  world.run_until(ticks_from_ms(250));
  ASSERT_GE(received.size(), 2u);
  EXPECT_EQ(received[0].send_time, ticks_from_sec(50));
  EXPECT_EQ(received[1].send_time, ticks_from_sec(50) + ticks_from_ms(100));
}

TEST(HeartbeatSender, StopHalts) {
  Rig rig;
  HeartbeatSender sender(rig.p.runtime(), {1, ticks_from_ms(10)});
  sender.add_target(rig.q.id());
  sender.start();
  rig.world.run_until(ticks_from_ms(55));
  sender.stop();
  const auto count = rig.received.size();
  rig.world.run_until(ticks_from_sec(1));
  EXPECT_EQ(rig.received.size(), count);
  EXPECT_FALSE(sender.running());
}

TEST(HeartbeatSender, IntervalRequestSpeedsUp) {
  Rig rig;
  HeartbeatSender sender(rig.p.runtime(), {1, ticks_from_ms(100)});
  sender.add_target(rig.q.id());
  sender.start();
  rig.world.run_until(ticks_from_ms(350));
  const auto before = rig.received.size();  // ~4

  net::IntervalRequestMsg req{7, ticks_from_ms(20)};
  sender.handle_interval_request(rig.q.id(), req);
  EXPECT_EQ(sender.effective_interval(), ticks_from_ms(20));
  rig.world.run_until(ticks_from_ms(1350));
  // Next second at 20 ms cadence: ~50 heartbeats.
  EXPECT_GE(rig.received.size() - before, 45u);
  // And they carry the new interval.
  EXPECT_EQ(rig.received.back().interval, ticks_from_ms(20));
}

TEST(HeartbeatSender, SlowerRequestCannotExceedBase) {
  Rig rig;
  HeartbeatSender sender(rig.p.runtime(), {1, ticks_from_ms(50)});
  sender.handle_interval_request(rig.q.id(), {7, ticks_from_ms(500)});
  EXPECT_EQ(sender.effective_interval(), ticks_from_ms(50));
}

TEST(HeartbeatSender, MinOverRequesters) {
  Rig rig;
  HeartbeatSender sender(rig.p.runtime(), {1, ticks_from_ms(100)});
  sender.handle_interval_request(11, {11, ticks_from_ms(60)});
  sender.handle_interval_request(12, {12, ticks_from_ms(30)});
  EXPECT_EQ(sender.effective_interval(), ticks_from_ms(30));
  // Requester 12 relaxes: min moves back to 60 ms.
  sender.handle_interval_request(12, {12, ticks_from_ms(90)});
  EXPECT_EQ(sender.effective_interval(), ticks_from_ms(60));
}

TEST(HeartbeatSender, BroadcastsToAllTargets) {
  sim::SimWorld world(3);
  auto& p = world.add_endpoint("p");
  auto& q1 = world.add_endpoint("q1");
  auto& q2 = world.add_endpoint("q2");
  world.connect(p, q1, sim::lan_link());
  world.connect(p, q2, sim::lan_link());
  Dispatcher d1(q1.runtime()), d2(q2.runtime());
  int c1 = 0, c2 = 0;
  d1.on_heartbeat([&](PeerId, const net::HeartbeatMsg&, Tick) { ++c1; });
  d2.on_heartbeat([&](PeerId, const net::HeartbeatMsg&, Tick) { ++c2; });

  HeartbeatSender sender(p.runtime(), {1, ticks_from_ms(100)});
  sender.add_target(q1.id());
  sender.add_target(q2.id());
  sender.add_target(q1.id());  // duplicate ignored
  sender.start();
  world.run_until(ticks_from_ms(450));
  EXPECT_EQ(c1, 5);
  EXPECT_EQ(c2, 5);
}

TEST(Dispatcher, CountsMalformed) {
  Rig rig;
  const std::byte junk[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
  rig.p.send(rig.q.id(), junk);
  rig.world.run();
  EXPECT_EQ(rig.q_dispatch.malformed_count(), 1u);
  EXPECT_TRUE(rig.received.empty());
}

}  // namespace
}  // namespace twfd::service

#include "service/trace_recorder.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "detect/chen.hpp"
#include "qos/evaluator.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "sim/sim_world.hpp"

namespace twfd::service {
namespace {

net::HeartbeatMsg hb(std::int64_t seq, Tick send, Tick interval = ticks_from_ms(100)) {
  return {1, seq, send, interval};
}

TEST(TraceRecorder, RecordsInOrder) {
  TraceRecorder rec("t", ticks_from_ms(100));
  rec.record(hb(1, 100), 150);
  rec.record(hb(2, 200), 260);
  rec.record(hb(3, 300), 350);
  const auto t = rec.trace();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].arrival_time, 260);
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.lost(), 0u);
}

TEST(TraceRecorder, MarksGapsAsLost) {
  TraceRecorder rec("t", ticks_from_ms(100));
  rec.record(hb(1, ticks_from_ms(100)), ticks_from_ms(101));
  rec.record(hb(4, ticks_from_ms(400)), ticks_from_ms(402));
  const auto t = rec.trace();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_TRUE(t[1].lost);
  EXPECT_TRUE(t[2].lost);
  // Extrapolated send times of the lost heartbeats.
  EXPECT_EQ(t[1].send_time, ticks_from_ms(200));
  EXPECT_EQ(t[2].send_time, ticks_from_ms(300));
  EXPECT_EQ(rec.lost(), 2u);
}

TEST(TraceRecorder, DropsDuplicatesAndReordered) {
  TraceRecorder rec("t", ticks_from_ms(100));
  rec.record(hb(2, 200), 250);
  rec.record(hb(2, 200), 270);  // duplicate
  rec.record(hb(1, 100), 280);  // behind: already counted lost
  EXPECT_EQ(rec.recorded(), 1u);
  const auto t = rec.trace();
  ASSERT_EQ(t.size(), 2u);  // seq 1 (lost) + seq 2
  EXPECT_TRUE(t[0].lost);
}

TEST(TraceRecorder, AdoptsCarriedInterval) {
  TraceRecorder rec("t", ticks_from_sec(10));
  rec.record(hb(1, 100, ticks_from_ms(20)), 150);
  EXPECT_EQ(rec.trace().interval(), ticks_from_ms(20));
}

TEST(TraceRecorder, EndToEndCaptureReplaysFaithfully) {
  // Record a live lossy run in the simulator, then replay the captured
  // trace: the trace's loss count must match the link's drops.
  sim::SimWorld world(61);
  auto& p = world.add_endpoint("p");
  auto& q = world.add_endpoint("q");
  sim::LinkParams link;
  link.delay = std::make_unique<trace::ExponentialDelay>(0.001, 0.004);
  link.loss = std::make_unique<trace::BernoulliLoss>(0.1);
  world.connect(p, q, std::move(link));

  Dispatcher dispatch(q.runtime());
  HeartbeatSender sender(p.runtime(), {1, ticks_from_ms(50)});
  sender.add_target(q.id());
  TraceRecorder rec("capture", ticks_from_ms(50));
  dispatch.on_heartbeat([&](PeerId, const net::HeartbeatMsg& m, Tick at) {
    rec.record(m, at);
  });

  sender.start();
  world.run_until(ticks_from_sec(120));
  sender.stop();
  world.run();

  const auto sent = static_cast<std::size_t>(sender.sent_count());
  // Trailing losses after the final delivery are unknowable to the
  // recorder; allow that slack.
  EXPECT_GE(rec.recorded() + rec.lost(), sent - 20);
  EXPECT_NEAR(static_cast<double>(rec.lost()) / sent, 0.1, 0.03);

  const auto t = rec.trace();
  detect::ChenDetector::Params cp;
  cp.window = 10;
  cp.interval = ticks_from_ms(50);
  cp.safety_margin = ticks_from_ms(30);
  detect::ChenDetector d(cp);
  const auto r = qos::evaluate(d, t);
  EXPECT_GT(r.metrics.mistake_count, 10u);  // 10% loss must show up
  EXPECT_GT(r.metrics.query_accuracy, 0.5);
  EXPECT_NEAR(r.metrics.observed_s, 120.0, 5.0);
}

}  // namespace
}  // namespace twfd::service

#include "service/membership.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/sim_world.hpp"

namespace twfd::service {
namespace {

// Fully-connected N-node cluster over LAN-ish links in the simulator.
struct Cluster {
  sim::SimWorld world;
  std::vector<sim::SimEndpoint*> endpoints;
  std::vector<std::unique_ptr<MembershipNode>> nodes;

  explicit Cluster(std::size_t n, Tick interval = ticks_from_ms(50),
                   Tick margin = ticks_from_ms(60), std::uint64_t seed = 7)
      : world(seed) {
    for (std::size_t i = 0; i < n; ++i) {
      endpoints.push_back(&world.add_endpoint("n" + std::to_string(i + 1)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        world.connect_both(*endpoints[i], *endpoints[j], sim::lan_link());
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      MembershipNode::Params p;
      p.node_id = i + 1;
      p.heartbeat_interval = interval;
      p.safety_margin = margin;
      p.windows = {1, 100};
      nodes.push_back(
          std::make_unique<MembershipNode>(endpoints[i]->runtime(), p));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j) nodes[i]->add_peer(endpoints[j]->id(), j + 1);
      }
    }
  }

  void start_all() {
    for (auto& node : nodes) node->start();
  }
};

std::vector<NodeId> ids(std::initializer_list<NodeId> list) { return list; }

TEST(Membership, AllNodesConvergeToFullView) {
  Cluster c(3);
  c.start_all();
  c.world.run_until(ticks_from_sec(5));
  for (const auto& node : c.nodes) {
    EXPECT_EQ(node->alive(), ids({1, 2, 3})) << "node " << node->id();
  }
}

TEST(Membership, ViewStartsWithSelfOnly) {
  Cluster c(3);
  // No heartbeats yet: each node sees only itself.
  for (const auto& node : c.nodes) {
    EXPECT_EQ(node->alive().size(), 1u);
    EXPECT_TRUE(node->is_alive(node->id()));
  }
}

TEST(Membership, CrashedNodeLeavesEveryView) {
  Cluster c(3);
  c.start_all();
  c.world.run_until(ticks_from_sec(5));

  c.nodes[2]->stop();  // node 3 dies
  c.world.run_until(ticks_from_sec(10));

  EXPECT_EQ(c.nodes[0]->alive(), ids({1, 2}));
  EXPECT_EQ(c.nodes[1]->alive(), ids({1, 2}));
  EXPECT_FALSE(c.nodes[0]->is_alive(3));
  // The dead node still *monitors*: it keeps seeing the others.
  EXPECT_EQ(c.nodes[2]->alive(), ids({1, 2, 3}));
}

TEST(Membership, RestartedNodeRejoins) {
  Cluster c(3);
  c.start_all();
  c.world.run_until(ticks_from_sec(5));
  c.nodes[2]->stop();
  c.world.run_until(ticks_from_sec(10));
  ASSERT_EQ(c.nodes[0]->alive(), ids({1, 2}));

  c.nodes[2]->start();
  c.world.run_until(ticks_from_sec(12));
  EXPECT_EQ(c.nodes[0]->alive(), ids({1, 2, 3}));
  EXPECT_EQ(c.nodes[1]->alive(), ids({1, 2, 3}));
}

TEST(Membership, ViewCallbacksFireOnTransitions) {
  Cluster c(2);
  std::vector<std::vector<NodeId>> views;
  c.nodes[0]->on_view_change([&](const std::vector<NodeId>& v) { views.push_back(v); });

  c.start_all();
  c.world.run_until(ticks_from_sec(3));
  ASSERT_EQ(views.size(), 1u);  // join of node 2
  EXPECT_EQ(views[0], ids({1, 2}));

  c.nodes[1]->stop();
  c.world.run_until(ticks_from_sec(6));
  ASSERT_EQ(views.size(), 2u);  // leave of node 2
  EXPECT_EQ(views[1], ids({1}));
  EXPECT_EQ(c.nodes[0]->view_changes(), 2u);
}

TEST(Membership, AsymmetricPartitionYieldsAsymmetricViews) {
  Cluster c(3);
  c.start_all();
  c.world.run_until(ticks_from_sec(5));

  // Partition: node 3 can still talk to everyone, but nothing from
  // node 3 reaches node 1 (one-way failure).
  c.world.disconnect(*c.endpoints[2], *c.endpoints[0]);
  c.world.run_until(ticks_from_sec(10));

  EXPECT_EQ(c.nodes[0]->alive(), ids({1, 2}));     // 1 suspects 3
  EXPECT_EQ(c.nodes[1]->alive(), ids({1, 2, 3}));  // 2 still sees all
  EXPECT_EQ(c.nodes[2]->alive(), ids({1, 2, 3}));  // 3 hears 1 fine

  // Heal: views reconverge.
  c.world.connect_both(*c.endpoints[2], *c.endpoints[0], sim::lan_link());
  c.world.run_until(ticks_from_sec(15));
  EXPECT_EQ(c.nodes[0]->alive(), ids({1, 2, 3}));
}

TEST(Membership, FullPartitionSplitsCluster) {
  Cluster c(4);
  c.start_all();
  c.world.run_until(ticks_from_sec(5));

  // Split {1,2} | {3,4}.
  for (int a : {0, 1}) {
    for (int b : {2, 3}) {
      c.world.disconnect_both(*c.endpoints[a], *c.endpoints[b]);
    }
  }
  c.world.run_until(ticks_from_sec(12));
  EXPECT_EQ(c.nodes[0]->alive(), ids({1, 2}));
  EXPECT_EQ(c.nodes[1]->alive(), ids({1, 2}));
  EXPECT_EQ(c.nodes[2]->alive(), ids({3, 4}));
  EXPECT_EQ(c.nodes[3]->alive(), ids({3, 4}));
}

TEST(Membership, LossyClusterStaysStable) {
  // 1% loss with a healthy margin: no view flapping over minutes.
  Cluster c(3, ticks_from_ms(50), ticks_from_ms(200), 11);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      sim::LinkParams link;
      link.delay = std::make_unique<trace::ExponentialDelay>(0.0005, 0.002);
      link.loss = std::make_unique<trace::BernoulliLoss>(0.01);
      c.world.connect(*c.endpoints[i], *c.endpoints[j], std::move(link));
    }
  }
  std::size_t changes_after_join = 0;
  c.start_all();
  c.world.run_until(ticks_from_sec(3));
  for (auto& n : c.nodes) changes_after_join += n->view_changes();
  c.world.run_until(ticks_from_sec(120));
  std::size_t changes_total = 0;
  for (auto& n : c.nodes) changes_total += n->view_changes();
  EXPECT_EQ(changes_total, changes_after_join);  // no flaps
  for (auto& n : c.nodes) EXPECT_EQ(n->alive().size(), 3u);
}

TEST(Membership, RejectsSelfAndDuplicatePeers) {
  Cluster c(2);
  EXPECT_THROW(c.nodes[0]->add_peer(c.endpoints[1]->id(), 1), std::logic_error);
  EXPECT_THROW(c.nodes[0]->add_peer(c.endpoints[1]->id(), 2), std::logic_error);
}

}  // namespace
}  // namespace twfd::service

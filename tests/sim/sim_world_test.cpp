#include "sim/sim_world.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace twfd::sim {
namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

LinkParams fixed_link(double delay_s, double loss = 0.0) {
  LinkParams p;
  p.delay = std::make_unique<trace::ConstantJitterDelay>(delay_s, 0.0);
  p.loss = std::make_unique<trace::BernoulliLoss>(loss);
  return p;
}

TEST(SimWorld, DeliversWithLinkDelay) {
  SimWorld world(1);
  auto& a = world.add_endpoint("a");
  auto& b = world.add_endpoint("b");
  world.connect(a, b, fixed_link(0.010));

  Tick delivered_at = -1;
  std::string got;
  b.set_receive_handler([&](PeerId from, std::span<const std::byte> data, Tick) {
    EXPECT_EQ(from, a.id());
    got.assign(reinterpret_cast<const char*>(data.data()), data.size());
    delivered_at = world.now();
  });

  a.send(b.id(), bytes("hello"));
  world.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(delivered_at, ticks_from_ms(10));
  EXPECT_EQ(world.datagrams_sent(), 1u);
  EXPECT_EQ(world.datagrams_delivered(), 1u);
}

TEST(SimWorld, UnroutableDropsSilently) {
  SimWorld world(1);
  auto& a = world.add_endpoint("a");
  auto& b = world.add_endpoint("b");
  bool got = false;
  b.set_receive_handler([&](PeerId, std::span<const std::byte>, Tick) { got = true; });
  a.send(b.id(), bytes("x"));  // no link installed
  world.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(world.datagrams_delivered(), 0u);
}

TEST(SimWorld, LossyLinkDrops) {
  SimWorld world(2);
  auto& a = world.add_endpoint("a");
  auto& b = world.add_endpoint("b");
  world.connect(a, b, fixed_link(0.001, 1.0));  // everything lost
  bool got = false;
  b.set_receive_handler([&](PeerId, std::span<const std::byte>, Tick) { got = true; });
  a.send(b.id(), bytes("x"));
  world.run();
  EXPECT_FALSE(got);
}

TEST(SimWorld, TimersFireInLocalClockDomain) {
  SimWorld world(3);
  auto& a = world.add_endpoint("a", /*skew=*/ticks_from_sec(100));
  Tick fired_local = -1;
  a.schedule_at(ticks_from_sec(100) + ticks_from_ms(50),
                [&] { fired_local = a.now(); });
  world.run();
  // Fires when the *local* clock reaches the deadline, i.e. global 50 ms.
  EXPECT_EQ(world.now(), ticks_from_ms(50));
  EXPECT_EQ(fired_local, ticks_from_sec(100) + ticks_from_ms(50));
}

TEST(SimWorld, DriftingClockScales) {
  SimWorld world(4);
  auto& a = world.add_endpoint("a", 0, /*drift=*/0.01);
  world.run_until(ticks_from_sec(100));
  EXPECT_NEAR(static_cast<double>(a.now()),
              static_cast<double>(ticks_from_sec(101)), 1e3);
}

TEST(SimWorld, CancelledTimerDoesNotFire) {
  SimWorld world(5);
  auto& a = world.add_endpoint("a");
  bool fired = false;
  const TimerId id = a.schedule_at(ticks_from_ms(10), [&] { fired = true; });
  a.cancel(id);
  world.run();
  EXPECT_FALSE(fired);
}

TEST(SimWorld, RescheduleLaterMovesFiringTime) {
  SimWorld world(23);
  auto& a = world.add_endpoint("a");
  Tick fired_at = -1;
  const TimerId id = a.schedule_at(ticks_from_ms(10), [&] { fired_at = world.now(); });
  EXPECT_TRUE(a.reschedule(id, ticks_from_ms(70)));
  world.run();
  EXPECT_EQ(fired_at, ticks_from_ms(70));
  EXPECT_EQ(world.timer_stats().rescheduled, 1u);
  EXPECT_EQ(world.timer_stats().fired, 1u);
}

TEST(SimWorld, RescheduleEarlierMovesFiringTime) {
  SimWorld world(24);
  auto& a = world.add_endpoint("a");
  Tick fired_at = -1;
  int fires = 0;
  const TimerId id = a.schedule_at(ticks_from_sec(10), [&] {
    fired_at = world.now();
    ++fires;
  });
  EXPECT_TRUE(a.reschedule(id, ticks_from_ms(5)));
  world.run();
  EXPECT_EQ(fired_at, ticks_from_ms(5));
  EXPECT_EQ(fires, 1);  // the superseded event must not fire a second time
}

TEST(SimWorld, RescheduleHonoursLocalClockDomain) {
  SimWorld world(25);
  auto& a = world.add_endpoint("a", /*skew=*/ticks_from_sec(100));
  Tick fired_local = -1;
  const TimerId id = a.schedule_at(ticks_from_sec(100) + ticks_from_ms(10),
                                   [&] { fired_local = a.now(); });
  EXPECT_TRUE(a.reschedule(id, ticks_from_sec(100) + ticks_from_ms(40)));
  world.run();
  EXPECT_EQ(world.now(), ticks_from_ms(40));
  EXPECT_EQ(fired_local, ticks_from_sec(100) + ticks_from_ms(40));
}

TEST(SimWorld, RescheduleAfterFireOrCancelReturnsFalse) {
  SimWorld world(26);
  auto& a = world.add_endpoint("a");
  const TimerId fired = a.schedule_at(ticks_from_ms(1), [] {});
  world.run();
  EXPECT_FALSE(a.reschedule(fired, ticks_from_ms(50)));

  const TimerId cancelled = a.schedule_at(ticks_from_ms(10), [] {});
  a.cancel(cancelled);
  EXPECT_FALSE(a.reschedule(cancelled, ticks_from_ms(50)));
}

TEST(SimWorld, CancelAfterRescheduleSilencesBothEvents) {
  SimWorld world(27);
  auto& a = world.add_endpoint("a");
  bool fire = false;
  // Earlier-reschedule posts a second queue event; cancelling must
  // silence the original and the replanted one.
  const TimerId id = a.schedule_at(ticks_from_ms(30), [&] { fire = true; });
  EXPECT_TRUE(a.reschedule(id, ticks_from_ms(5)));
  a.cancel(id);
  world.run();
  EXPECT_FALSE(fire);
  EXPECT_EQ(world.timer_stats().cancelled, 1u);
  EXPECT_EQ(world.timer_stats().fired, 0u);
  EXPECT_EQ(world.live_timer_count(), 0u);
}

TEST(SimWorld, TimerStatsAccounting) {
  SimWorld world(28);
  auto& a = world.add_endpoint("a");
  const TimerId keep = a.schedule_at(ticks_from_ms(1), [] {});
  const TimerId move = a.schedule_at(ticks_from_ms(2), [] {});
  const TimerId drop = a.schedule_at(ticks_from_ms(3), [] {});
  (void)keep;
  EXPECT_TRUE(a.reschedule(move, ticks_from_ms(8)));
  a.cancel(drop);
  EXPECT_EQ(world.live_timer_count(), 2u);
  world.run();
  const TimerStats& ts = world.timer_stats();
  EXPECT_EQ(ts.scheduled, 3u);
  EXPECT_EQ(ts.rescheduled, 1u);
  EXPECT_EQ(ts.cancelled, 1u);
  EXPECT_EQ(ts.fired, 2u);
  EXPECT_EQ(world.live_timer_count(), 0u);
}

TEST(SimWorld, EventsOrderedByTimeThenFifo) {
  SimWorld world(6);
  auto& a = world.add_endpoint("a");
  std::vector<int> order;
  a.schedule_at(ticks_from_ms(20), [&] { order.push_back(2); });
  a.schedule_at(ticks_from_ms(10), [&] { order.push_back(1); });
  a.schedule_at(ticks_from_ms(20), [&] { order.push_back(3); });  // same t as #2
  world.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimWorld, RunUntilAdvancesClock) {
  SimWorld world(7);
  auto& a = world.add_endpoint("a");
  int fired = 0;
  a.schedule_at(ticks_from_ms(10), [&] { ++fired; });
  a.schedule_at(ticks_from_ms(100), [&] { ++fired; });
  world.run_until(ticks_from_ms(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(world.now(), ticks_from_ms(50));
  world.run_until(ticks_from_ms(200));
  EXPECT_EQ(fired, 2);
}

TEST(SimWorld, FifoLinkPreservesOrderUnderJitter) {
  SimWorld world(8);
  auto& a = world.add_endpoint("a");
  auto& b = world.add_endpoint("b");
  LinkParams p;
  p.delay = std::make_unique<trace::ExponentialDelay>(0.0001, 0.02);
  p.loss = std::make_unique<trace::BernoulliLoss>(0.0);
  world.connect(a, b, std::move(p));

  std::vector<int> received;
  b.set_receive_handler([&](PeerId, std::span<const std::byte> data, Tick) {
    received.push_back(static_cast<int>(data[0]));
  });
  // Send 50 numbered messages 1 ms apart; heavy jitter would reorder a
  // non-FIFO link.
  for (int i = 0; i < 50; ++i) {
    const std::byte payload[1] = {static_cast<std::byte>(i)};
    a.schedule_at(i * ticks_from_ms(1),
                  [&a, &b, payload] { a.send(b.id(), payload); });
  }
  world.run();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(received[i], i);
}

TEST(SimWorld, ReproducibleForSeed) {
  auto run_once = [] {
    SimWorld world(99);
    auto& a = world.add_endpoint("a");
    auto& b = world.add_endpoint("b");
    LinkParams p;
    p.delay = std::make_unique<trace::ExponentialDelay>(0.001, 0.005);
    p.loss = std::make_unique<trace::BernoulliLoss>(0.3);
    world.connect(a, b, std::move(p));
    std::vector<Tick> arrivals;
    b.set_receive_handler(
        [&](PeerId, std::span<const std::byte>, Tick) { arrivals.push_back(world.now()); });
    for (int i = 0; i < 100; ++i) {
      const std::byte payload[1] = {static_cast<std::byte>(i)};
      a.schedule_at(i * ticks_from_ms(2),
                    [&a, &b, payload] { a.send(b.id(), payload); });
    }
    world.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimWorld, DisconnectDropsSubsequentSends) {
  SimWorld world(20);
  auto& a = world.add_endpoint("a");
  auto& b = world.add_endpoint("b");
  world.connect(a, b, fixed_link(0.001));
  int got = 0;
  b.set_receive_handler([&](PeerId, std::span<const std::byte>, Tick) { ++got; });
  a.send(b.id(), bytes("one"));
  world.run();
  world.disconnect(a, b);
  a.send(b.id(), bytes("two"));
  world.run();
  EXPECT_EQ(got, 1);
  // Reconnect restores delivery.
  world.connect(a, b, fixed_link(0.001));
  a.send(b.id(), bytes("three"));
  world.run();
  EXPECT_EQ(got, 2);
}

TEST(SimWorld, BottleneckSerializesBackToBackSends) {
  SimWorld world(21);
  auto& a = world.add_endpoint("a");
  auto& b = world.add_endpoint("b");
  LinkParams p = fixed_link(0.0);  // isolate the queueing effect
  p.bandwidth_bytes_per_s = 1000.0;  // 1 KB/s: a 5-byte datagram takes 5 ms
  world.connect(a, b, std::move(p));

  std::vector<Tick> arrivals;
  b.set_receive_handler(
      [&](PeerId, std::span<const std::byte>, Tick) { arrivals.push_back(world.now()); });
  // Three 5-byte datagrams sent at the same instant queue behind each
  // other: deliveries at 5, 10, 15 ms.
  a.send(b.id(), bytes("aaaaa"));
  a.send(b.id(), bytes("bbbbb"));
  a.send(b.id(), bytes("ccccc"));
  world.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], ticks_from_ms(5));
  EXPECT_EQ(arrivals[1], ticks_from_ms(10));
  EXPECT_EQ(arrivals[2], ticks_from_ms(15));
}

TEST(SimWorld, BottleneckIdlesBetweenSpacedSends) {
  SimWorld world(22);
  auto& a = world.add_endpoint("a");
  auto& b = world.add_endpoint("b");
  LinkParams p = fixed_link(0.0);
  p.bandwidth_bytes_per_s = 1000.0;
  world.connect(a, b, std::move(p));
  std::vector<Tick> arrivals;
  b.set_receive_handler(
      [&](PeerId, std::span<const std::byte>, Tick) { arrivals.push_back(world.now()); });
  // Sends 100 ms apart: no queueing, each takes only its own 5 ms.
  a.schedule_at(0, [&] { a.send(b.id(), bytes("aaaaa")); });
  a.schedule_at(ticks_from_ms(100), [&] { a.send(b.id(), bytes("bbbbb")); });
  world.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], ticks_from_ms(5));
  EXPECT_EQ(arrivals[1], ticks_from_ms(105));
}

TEST(SimWorld, ConnectBothInstallsSymmetricLinks) {
  SimWorld world(10);
  auto& a = world.add_endpoint("a");
  auto& b = world.add_endpoint("b");
  world.connect_both(a, b, lan_link());
  int a_got = 0, b_got = 0;
  a.set_receive_handler([&](PeerId, std::span<const std::byte>, Tick) { ++a_got; });
  b.set_receive_handler([&](PeerId, std::span<const std::byte>, Tick) { ++b_got; });
  a.send(b.id(), bytes("x"));
  b.send(a.id(), bytes("y"));
  world.run();
  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(b_got, 1);
}

}  // namespace
}  // namespace twfd::sim

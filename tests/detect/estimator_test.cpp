#include "detect/arrival_estimator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace twfd::detect {
namespace {

constexpr Tick kInterval = ticks_from_ms(100);

TEST(ArrivalEstimator, QueryWithoutSamplesThrows) {
  ArrivalWindowEstimator e(4, kInterval);
  EXPECT_THROW((void)e.expected_arrival(1), std::logic_error);
}

TEST(ArrivalEstimator, PerfectCadencePredictsExactly) {
  ArrivalWindowEstimator e(10, kInterval);
  const Tick base = ticks_from_sec(5);  // constant skew+delay
  for (std::int64_t s = 1; s <= 20; ++s) {
    e.add(s, base + s * kInterval);
  }
  // EA_21 = base + 21 * interval, exactly (Eq 2 with zero jitter).
  EXPECT_EQ(e.expected_arrival(21), base + 21 * kInterval);
}

TEST(ArrivalEstimator, WindowOneTracksLastSample) {
  ArrivalWindowEstimator e(1, kInterval);
  e.add(1, kInterval + 1000);
  e.add(2, 2 * kInterval + 9000);  // latest normalised offset: 9000
  EXPECT_EQ(e.expected_arrival(3), 3 * kInterval + 9000);
}

TEST(ArrivalEstimator, AveragesNormalizedArrivals) {
  ArrivalWindowEstimator e(3, kInterval);
  // Normalised offsets 100, 200, 600 -> mean 300.
  e.add(1, kInterval + 100);
  e.add(2, 2 * kInterval + 200);
  e.add(3, 3 * kInterval + 600);
  EXPECT_EQ(e.expected_arrival(4), 4 * kInterval + 300);
}

TEST(ArrivalEstimator, EvictionDropsOldOffsets) {
  ArrivalWindowEstimator e(2, kInterval);
  e.add(1, kInterval + 1'000'000);  // large early offset
  e.add(2, 2 * kInterval + 100);
  e.add(3, 3 * kInterval + 300);  // window now {100, 300}
  EXPECT_EQ(e.expected_arrival(4), 4 * kInterval + 200);
}

TEST(ArrivalEstimator, SkipsLostSequencesCorrectly) {
  ArrivalWindowEstimator e(4, kInterval);
  // Sequences 1, 2, 5 received: normalisation uses the true seq.
  e.add(1, kInterval + 500);
  e.add(2, 2 * kInterval + 500);
  e.add(5, 5 * kInterval + 500);
  EXPECT_EQ(e.expected_arrival(6), 6 * kInterval + 500);
}

TEST(ArrivalEstimator, LargeWindowIsO1PerSample) {
  // Functional smoke that a 10^4 window survives 10^5 inserts quickly and
  // stays numerically sane with a big skew.
  ArrivalWindowEstimator e(10'000, kInterval);
  Xoshiro256 rng(3);
  const Tick skew = ticks_from_sec(86'400);  // a day of clock offset
  for (std::int64_t s = 1; s <= 100'000; ++s) {
    e.add(s, skew + s * kInterval + static_cast<Tick>(rng.uniform(0.0, 1e6)));
  }
  const Tick ea = e.expected_arrival(100'001);
  EXPECT_GT(ea, skew + 100'001 * kInterval);
  EXPECT_LT(ea, skew + 100'001 * kInterval + ticks_from_ms(1));
}

TEST(ArrivalEstimator, ClearRestartsEstimation) {
  ArrivalWindowEstimator e(4, kInterval);
  e.add(1, kInterval + 100);
  e.clear();
  EXPECT_EQ(e.count(), 0u);
  EXPECT_THROW((void)e.expected_arrival(2), std::logic_error);
}

}  // namespace
}  // namespace twfd::detect

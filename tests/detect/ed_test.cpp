#include "detect/ed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace twfd::detect {
namespace {

constexpr Tick kI = ticks_from_ms(100);

EdDetector make(double threshold, std::size_t window = 16) {
  EdDetector::Params p;
  p.window = window;
  p.threshold = threshold;
  return EdDetector(p);
}

void feed_regular(EdDetector& d, std::int64_t n) {
  for (std::int64_t s = 1; s <= n; ++s) d.on_heartbeat(s, s * kI, s * kI);
}

TEST(Ed, WarmupTrustsForever) {
  auto d = make(0.9);
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  d.on_heartbeat(1, kI, kI);
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  d.on_heartbeat(2, 2 * kI, 2 * kI);
  EXPECT_NE(d.suspect_after(), kTickInfinity);
}

TEST(Ed, ClosedFormCrossing) {
  auto d = make(0.9);
  feed_regular(d, 10);
  // mu = 100 ms; t* = -mu ln(1-0.9) = 100ms * ln(10).
  const Tick expected = 10 * kI + ticks_from_seconds(0.1 * std::log(10.0));
  EXPECT_NEAR(static_cast<double>(d.suspect_after()),
              static_cast<double>(expected), 1e3);
}

TEST(Ed, EdValueMatchesDefinition) {
  auto d = make(0.5);
  feed_regular(d, 10);
  // e_d(t) = 1 - exp(-dt/mu).
  const double ed = d.ed_at(10 * kI + kI);
  EXPECT_NEAR(ed, 1.0 - std::exp(-1.0), 1e-9);
  EXPECT_DOUBLE_EQ(d.ed_at(10 * kI), 0.0);
}

TEST(Ed, CrossingConsistentWithEdValue) {
  auto d = make(0.75);
  feed_regular(d, 10);
  const Tick sa = d.suspect_after();
  EXPECT_NEAR(d.ed_at(sa), 0.75, 1e-6);
  EXPECT_LT(d.ed_at(sa - ticks_from_ms(5)), 0.75);
}

TEST(Ed, HigherThresholdMoreConservative) {
  auto a = make(0.5);
  auto b = make(0.99);
  feed_regular(a, 10);
  feed_regular(b, 10);
  EXPECT_GT(b.suspect_after(), a.suspect_after());
}

TEST(Ed, SlowerCadenceStretchesHorizon) {
  auto fast = make(0.9);
  feed_regular(fast, 10);
  auto slow = make(0.9);
  for (std::int64_t s = 1; s <= 10; ++s) {
    slow.on_heartbeat(s, s * 2 * kI, s * 2 * kI);
  }
  const Tick fast_wait = fast.suspect_after() - 10 * kI;
  const Tick slow_wait = slow.suspect_after() - 20 * kI;
  EXPECT_NEAR(static_cast<double>(slow_wait),
              2.0 * static_cast<double>(fast_wait), 1e3);
}

TEST(Ed, StaleIgnored) {
  auto d = make(0.9);
  feed_regular(d, 5);
  const Tick sa = d.suspect_after();
  d.on_heartbeat(2, 2 * kI, 9 * kI);
  EXPECT_EQ(d.suspect_after(), sa);
}

TEST(Ed, ResetRestoresWarmup) {
  auto d = make(0.9);
  feed_regular(d, 5);
  d.reset();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_DOUBLE_EQ(d.ed_at(ticks_from_sec(5)), 0.0);
}

TEST(Ed, ThresholdDomainValidated) {
  EdDetector::Params p;
  p.threshold = 0.0;
  EXPECT_THROW(EdDetector{p}, std::logic_error);
  p.threshold = 1.0;
  EXPECT_THROW(EdDetector{p}, std::logic_error);
}

}  // namespace
}  // namespace twfd::detect

// The FailureDetector contract, enforced uniformly across every family:
// determinism, reset semantics, stale-message immunity, output/suspect
// consistency, and liveness (a crash is always eventually suspected once
// the detector is warm). Parameterised over all seven detector kinds.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/factory.hpp"

namespace twfd {
namespace {

constexpr Tick kI = ticks_from_ms(100);

struct ContractCase {
  const char* label;
  core::DetectorSpec spec;
};

class DetectorContract : public testing::TestWithParam<ContractCase> {
 protected:
  static std::unique_ptr<detect::FailureDetector> make() {
    return core::make_detector(GetParam().spec, kI, /*known_skew=*/0);
  }

  // A jittery, lossy arrival sequence (deterministic per seed).
  struct Feed {
    std::int64_t seq;
    Tick arrival;
  };
  static std::vector<Feed> feed(std::uint64_t seed, std::int64_t n) {
    Xoshiro256 rng(seed);
    std::vector<Feed> out;
    for (std::int64_t s = 1; s <= n; ++s) {
      if (rng.bernoulli(0.05)) continue;  // lost
      out.push_back({s, s * kI + static_cast<Tick>(rng.exponential(8e6))});
    }
    return out;
  }
};

TEST_P(DetectorContract, InitiallyTrustsAndIsWarmAfterFewHeartbeats) {
  auto d = make();
  EXPECT_EQ(d->suspect_after(), kTickInfinity);
  EXPECT_EQ(d->highest_seq(), 0);
  for (const auto& f : feed(1, 10)) d->on_heartbeat(f.seq, f.seq * kI, f.arrival);
  EXPECT_NE(d->suspect_after(), kTickInfinity) << "never suspects after warm-up";
}

TEST_P(DetectorContract, DeterministicReplay) {
  auto a = make();
  auto b = make();
  for (const auto& f : feed(2, 300)) {
    a->on_heartbeat(f.seq, f.seq * kI, f.arrival);
    b->on_heartbeat(f.seq, f.seq * kI, f.arrival);
    ASSERT_EQ(a->suspect_after(), b->suspect_after());
  }
}

TEST_P(DetectorContract, ResetIsCompleteAmnesia) {
  auto fresh = make();
  auto reused = make();
  // Pollute `reused` with one history, reset, then replay another; it
  // must match a never-polluted instance exactly.
  for (const auto& f : feed(3, 200)) reused->on_heartbeat(f.seq, f.seq * kI, f.arrival);
  reused->reset();
  EXPECT_EQ(reused->highest_seq(), 0);
  EXPECT_EQ(reused->suspect_after(), kTickInfinity);
  for (const auto& f : feed(4, 200)) {
    fresh->on_heartbeat(f.seq, f.seq * kI, f.arrival);
    reused->on_heartbeat(f.seq, f.seq * kI, f.arrival);
    ASSERT_EQ(fresh->suspect_after(), reused->suspect_after());
  }
}

TEST_P(DetectorContract, StaleAndDuplicateMessagesAreIgnored) {
  auto clean = make();
  auto noisy = make();
  Xoshiro256 rng(5);
  for (const auto& f : feed(6, 300)) {
    clean->on_heartbeat(f.seq, f.seq * kI, f.arrival);
    noisy->on_heartbeat(f.seq, f.seq * kI, f.arrival);
    // Replay an old sequence number at a random later time.
    if (f.seq > 3 && rng.bernoulli(0.4)) {
      const std::int64_t old = f.seq - 1 - static_cast<std::int64_t>(rng.uniform_int(2));
      noisy->on_heartbeat(old, old * kI, f.arrival + 1000);
    }
    ASSERT_EQ(clean->suspect_after(), noisy->suspect_after()) << "seq " << f.seq;
    ASSERT_EQ(clean->highest_seq(), noisy->highest_seq());
  }
}

TEST_P(DetectorContract, OutputConsistentWithSuspectAfter) {
  auto d = make();
  for (const auto& f : feed(7, 100)) d->on_heartbeat(f.seq, f.seq * kI, f.arrival);
  const Tick sa = d->suspect_after();
  ASSERT_NE(sa, kTickInfinity);
  EXPECT_EQ(d->output_at(sa - 1), detect::Output::Trust);
  EXPECT_EQ(d->output_at(sa), detect::Output::Suspect);
  EXPECT_EQ(d->output_at(sa + ticks_from_sec(3600)), detect::Output::Suspect);
}

TEST_P(DetectorContract, CrashIsEventuallySuspected) {
  auto d = make();
  Tick last_arrival = 0;
  for (const auto& f : feed(8, 150)) {
    d->on_heartbeat(f.seq, f.seq * kI, f.arrival);
    last_arrival = f.arrival;
  }
  // No further heartbeats ever: suspicion must fire within a bounded
  // horizon (generously, one hour).
  const Tick sa = d->suspect_after();
  ASSERT_NE(sa, kTickInfinity);
  EXPECT_LT(sa, last_arrival + ticks_from_sec(3600));
  EXPECT_EQ(d->output_at(last_arrival + ticks_from_sec(3600)),
            detect::Output::Suspect);
}

TEST_P(DetectorContract, SequenceGapsDoNotBreakEstimation) {
  auto d = make();
  // Deliver only every 7th heartbeat: estimators must normalise by the
  // true sequence number, not the delivery count.
  for (std::int64_t s = 7; s <= 700; s += 7) {
    d->on_heartbeat(s, s * kI, s * kI + ticks_from_ms(2));
  }
  const Tick sa = d->suspect_after();
  ASSERT_NE(sa, kTickInfinity);
  // Suspicion lies after the last arrival and within a sane horizon.
  EXPECT_GT(sa, 700 * kI);
  EXPECT_LT(sa, 700 * kI + ticks_from_sec(60));
}

TEST_P(DetectorContract, NameIsStableAndNonEmpty) {
  auto d = make();
  const std::string n1 = d->name();
  EXPECT_FALSE(n1.empty());
  for (const auto& f : feed(9, 50)) d->on_heartbeat(f.seq, f.seq * kI, f.arrival);
  EXPECT_EQ(d->name(), n1);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DetectorContract,
    testing::Values(
        ContractCase{"chen1", core::DetectorSpec::chen(1, ticks_from_ms(100))},
        ContractCase{"chen1000", core::DetectorSpec::chen(1000, ticks_from_ms(100))},
        ContractCase{"bertier", core::DetectorSpec::bertier(100)},
        ContractCase{"phi", core::DetectorSpec::phi(2.0, 100)},
        ContractCase{"ed", core::DetectorSpec::ed(0.99, 100)},
        ContractCase{"two_window",
                     core::DetectorSpec::two_window(1, 100, ticks_from_ms(100))},
        ContractCase{"multi_window",
                     core::DetectorSpec::multi_window({1, 10, 100},
                                                      ticks_from_ms(100))},
        ContractCase{"adaptive_two_window",
                     core::DetectorSpec::adaptive_two_window(1, 100,
                                                             ticks_from_ms(20))},
        ContractCase{"nfd_s", core::DetectorSpec::nfd_s(ticks_from_ms(100))},
        ContractCase{"fixed", core::DetectorSpec::fixed_timeout(ticks_from_ms(400))}),
    [](const testing::TestParamInfo<ContractCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace twfd

#include "detect/nfd_s.hpp"

#include <gtest/gtest.h>

namespace twfd::detect {
namespace {

constexpr Tick kI = ticks_from_ms(100);
constexpr Tick kMargin = ticks_from_ms(40);
constexpr Tick kSkew = ticks_from_sec(2);

NfdSDetector make() {
  NfdSDetector::Params p;
  p.interval = kI;
  p.safety_margin = kMargin;
  p.known_skew = kSkew;
  return NfdSDetector(p);
}

TEST(NfdS, FreshnessFromSendTimestampOnly) {
  auto d = make();
  // Arrival time is irrelevant: only the carried send timestamp matters.
  d.on_heartbeat(1, kI, kSkew + kI + ticks_from_ms(33));
  EXPECT_EQ(d.suspect_after(), kI + kSkew + kI + kMargin);
}

TEST(NfdS, ArrivalJitterDoesNotMoveFreshness) {
  auto early = make();
  auto late = make();
  early.on_heartbeat(1, kI, kSkew + kI + 1000);
  late.on_heartbeat(1, kI, kSkew + kI + ticks_from_ms(90));
  EXPECT_EQ(early.suspect_after(), late.suspect_after());
}

TEST(NfdS, TrustsBeforeFirstHeartbeat) {
  auto d = make();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
}

TEST(NfdS, StaleIgnored) {
  auto d = make();
  d.on_heartbeat(3, 3 * kI, kSkew + 3 * kI);
  const Tick sa = d.suspect_after();
  d.on_heartbeat(2, 2 * kI, kSkew + 3 * kI + 5);
  EXPECT_EQ(d.suspect_after(), sa);
}

TEST(NfdS, ResetRestoresInitialState) {
  auto d = make();
  d.on_heartbeat(1, kI, kSkew + kI);
  d.reset();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_EQ(d.highest_seq(), 0);
}

TEST(NfdS, ValidatesParams) {
  NfdSDetector::Params p;
  p.interval = 0;
  EXPECT_THROW(NfdSDetector{p}, std::logic_error);
  p.interval = kI;
  p.safety_margin = -1;
  EXPECT_THROW(NfdSDetector{p}, std::logic_error);
}

TEST(NfdS, DelayedHeartbeatStillSetsFutureFreshness) {
  // Even a very late heartbeat yields the same deterministic freshness
  // point — possibly already in the past, which means instant suspicion
  // (correct for synchronized clocks: the NEXT beat is already overdue).
  auto d = make();
  const Tick very_late = kSkew + kI + ticks_from_sec(5);
  d.on_heartbeat(1, kI, very_late);
  EXPECT_LT(d.suspect_after(), very_late);
  EXPECT_EQ(d.output_at(very_late), Output::Suspect);
}

}  // namespace
}  // namespace twfd::detect

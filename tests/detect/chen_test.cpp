#include "detect/chen.hpp"

#include <gtest/gtest.h>

namespace twfd::detect {
namespace {

constexpr Tick kI = ticks_from_ms(100);
constexpr Tick kMargin = ticks_from_ms(30);

ChenDetector make(std::size_t window = 4) {
  ChenDetector::Params p;
  p.window = window;
  p.safety_margin = kMargin;
  p.interval = kI;
  return ChenDetector(p);
}

TEST(Chen, TrustsBeforeFirstHeartbeat) {
  auto d = make();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_EQ(d.output_at(ticks_from_sec(100)), Output::Trust);
  EXPECT_EQ(d.highest_seq(), 0);
}

TEST(Chen, FreshnessPointIsEaPlusMargin) {
  auto d = make();
  const Tick a1 = kI + ticks_from_ms(5);
  d.on_heartbeat(1, kI, a1);
  // Window {5ms offset}: EA_2 = 2*interval + 5ms.
  EXPECT_EQ(d.current_expected_arrival(), 2 * kI + ticks_from_ms(5));
  EXPECT_EQ(d.suspect_after(), 2 * kI + ticks_from_ms(5) + kMargin);
}

TEST(Chen, OutputTimeline) {
  auto d = make();
  d.on_heartbeat(1, kI, kI);
  const Tick tau2 = d.suspect_after();
  EXPECT_EQ(d.output_at(tau2 - 1), Output::Trust);
  EXPECT_EQ(d.output_at(tau2), Output::Suspect);
  EXPECT_EQ(d.output_at(tau2 + ticks_from_sec(10)), Output::Suspect);
}

TEST(Chen, LateHeartbeatRestoresTrust) {
  auto d = make();
  d.on_heartbeat(1, kI, kI);
  const Tick tau2 = d.suspect_after();
  // m_2 arrives after tau_2 (a mistake happened), trust must resume.
  d.on_heartbeat(2, 2 * kI, tau2 + ticks_from_ms(50));
  EXPECT_GT(d.suspect_after(), tau2 + ticks_from_ms(50));
}

TEST(Chen, StaleHeartbeatIgnored) {
  auto d = make();
  d.on_heartbeat(2, 2 * kI, 2 * kI + 100);
  const Tick sa = d.suspect_after();
  d.on_heartbeat(1, kI, 2 * kI + 200);  // old sequence, must not disturb
  EXPECT_EQ(d.suspect_after(), sa);
  EXPECT_EQ(d.highest_seq(), 2);
}

TEST(Chen, DuplicateHeartbeatIgnored) {
  auto d = make();
  d.on_heartbeat(1, kI, kI + 10);
  const Tick sa = d.suspect_after();
  d.on_heartbeat(1, kI, kI + 500);
  EXPECT_EQ(d.suspect_after(), sa);
}

TEST(Chen, SequenceGapShiftsFreshnessPoint) {
  auto d = make(1);
  d.on_heartbeat(1, kI, kI);
  const Tick sa1 = d.suspect_after();  // tau_2
  auto d2 = make(1);
  d2.on_heartbeat(3, 3 * kI, 3 * kI);  // same offset, higher seq
  // tau_4 = EA_4 + margin = sa1 + 2 intervals.
  EXPECT_EQ(d2.suspect_after(), sa1 + 2 * kI);
}

TEST(Chen, SlowerArrivalsPushFreshnessOut) {
  auto fast = make(4);
  auto slow = make(4);
  for (std::int64_t s = 1; s <= 4; ++s) {
    fast.on_heartbeat(s, s * kI, s * kI + ticks_from_ms(1));
    slow.on_heartbeat(s, s * kI, s * kI + ticks_from_ms(40));
  }
  EXPECT_EQ(slow.suspect_after() - fast.suspect_after(), ticks_from_ms(39));
}

TEST(Chen, ResetRestoresInitialState) {
  auto d = make();
  d.on_heartbeat(1, kI, kI);
  d.reset();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_EQ(d.highest_seq(), 0);
  // And it works again after reset.
  d.on_heartbeat(1, kI, kI + 7);
  EXPECT_EQ(d.suspect_after(), 2 * kI + 7 + kMargin);
}

TEST(Chen, NameEncodesWindow) {
  EXPECT_EQ(make(1000).name(), "chen(n=1000)");
}

TEST(Chen, ZeroMarginAllowed) {
  ChenDetector::Params p;
  p.window = 1;
  p.safety_margin = 0;
  p.interval = kI;
  ChenDetector d(p);
  d.on_heartbeat(1, kI, kI);
  EXPECT_EQ(d.suspect_after(), 2 * kI);
}

}  // namespace
}  // namespace twfd::detect

#include "detect/phi_accrual.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"

namespace twfd::detect {
namespace {

constexpr Tick kI = ticks_from_ms(100);

PhiAccrualDetector make(double threshold, std::size_t window = 16) {
  PhiAccrualDetector::Params p;
  p.window = window;
  p.threshold = threshold;
  return PhiAccrualDetector(p);
}

void feed_regular(PhiAccrualDetector& d, std::int64_t n, Tick jitter_step = 0) {
  for (std::int64_t s = 1; s <= n; ++s) {
    d.on_heartbeat(s, s * kI, s * kI + (s % 2) * jitter_step);
  }
}

TEST(Phi, WarmupTrustsForever) {
  auto d = make(1.0);
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  d.on_heartbeat(1, kI, kI);
  EXPECT_EQ(d.suspect_after(), kTickInfinity);  // one arrival, zero gaps
  d.on_heartbeat(2, 2 * kI, 2 * kI);
  EXPECT_NE(d.suspect_after(), kTickInfinity);  // warm
}

TEST(Phi, SuspectTimeMatchesQuantileFormula) {
  auto d = make(2.0);
  feed_regular(d, 10);
  // Gaps are exactly 100 ms, sigma floors at min_stddev.
  const double z = normal_quantile(1.0 - 1e-2);
  const Tick expected =
      10 * kI + ticks_from_seconds(0.100 + 20e-6 * z);
  EXPECT_NEAR(static_cast<double>(d.suspect_after()),
              static_cast<double>(expected), 1e3);  // 1 us slack
}

TEST(Phi, HigherThresholdIsMoreConservative) {
  auto aggressive = make(0.5);
  auto conservative = make(3.0);
  feed_regular(aggressive, 10, ticks_from_ms(5));
  feed_regular(conservative, 10, ticks_from_ms(5));
  EXPECT_GT(conservative.suspect_after(), aggressive.suspect_after());
}

TEST(Phi, PhiGrowsWithSilence) {
  auto d = make(1.0);
  feed_regular(d, 10, ticks_from_ms(2));
  const Tick last = 10 * kI;
  const double phi1 = d.phi_at(last + ticks_from_ms(50));
  const double phi2 = d.phi_at(last + ticks_from_ms(150));
  const double phi3 = d.phi_at(last + ticks_from_ms(500));
  EXPECT_LT(phi1, phi2);
  EXPECT_LT(phi2, phi3);
}

TEST(Phi, PhiCrossesThresholdAtSuspectAfter) {
  auto d = make(1.5);
  feed_regular(d, 20, ticks_from_ms(4));
  const Tick sa = d.suspect_after();
  EXPECT_LT(d.phi_at(sa - ticks_from_ms(1)), 1.5);
  EXPECT_GE(d.phi_at(sa + ticks_from_ms(1)), 1.5);
}

TEST(Phi, MeaningOfPhi) {
  // "if the FD suspects when phi >= Phi, the probability of a mistake is
  // about 10^-Phi": at the crossing instant, P_later must equal 10^-Phi.
  auto d = make(2.0);
  feed_regular(d, 50, ticks_from_ms(8));
  const Tick sa = d.suspect_after();
  const double phi = d.phi_at(sa);
  EXPECT_NEAR(phi, 2.0, 0.05);
}

TEST(Phi, JitterWidensSuspicionHorizon) {
  auto calm = make(1.0);
  auto jittery = make(1.0);
  feed_regular(calm, 20, 0);
  feed_regular(jittery, 20, ticks_from_ms(30));
  const Tick calm_wait = calm.suspect_after() - 20 * kI;
  const Tick jittery_wait =
      jittery.suspect_after() - (20 * kI);  // last arrival is even seq: no jitter
  EXPECT_GT(jittery_wait, calm_wait);
}

TEST(Phi, StaleIgnored) {
  auto d = make(1.0);
  feed_regular(d, 5);
  const Tick sa = d.suspect_after();
  d.on_heartbeat(3, 3 * kI, 6 * kI);
  EXPECT_EQ(d.suspect_after(), sa);
}

TEST(Phi, ResetRestoresWarmup) {
  auto d = make(1.0);
  feed_regular(d, 5);
  d.reset();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_DOUBLE_EQ(d.phi_at(ticks_from_sec(10)), 0.0);
}

TEST(Phi, ExtremeThresholdClampsSafely) {
  auto d = make(300.0);  // beyond double's 10^-Phi resolution
  feed_regular(d, 10);
  EXPECT_NE(d.suspect_after(), kTickInfinity);
  EXPECT_GT(d.suspect_after(), 10 * kI);
}

TEST(Phi, ParameterValidation) {
  PhiAccrualDetector::Params p;
  p.threshold = 0.0;
  EXPECT_THROW(PhiAccrualDetector{p}, std::logic_error);
  p.threshold = 1.0;
  p.warmup = 1;
  EXPECT_THROW(PhiAccrualDetector{p}, std::logic_error);
}

}  // namespace
}  // namespace twfd::detect

#include "detect/fixed_timeout.hpp"

#include <gtest/gtest.h>

namespace twfd::detect {
namespace {

constexpr Tick kTimeout = ticks_from_ms(250);

FixedTimeoutDetector make() {
  return FixedTimeoutDetector(FixedTimeoutDetector::Params{kTimeout});
}

TEST(FixedTimeout, SuspectsAfterSilence) {
  auto d = make();
  d.on_heartbeat(1, 0, ticks_from_ms(100));
  EXPECT_EQ(d.suspect_after(), ticks_from_ms(350));
  EXPECT_EQ(d.output_at(ticks_from_ms(349)), Output::Trust);
  EXPECT_EQ(d.output_at(ticks_from_ms(350)), Output::Suspect);
}

TEST(FixedTimeout, EachHeartbeatRearms) {
  auto d = make();
  for (int s = 1; s <= 10; ++s) {
    d.on_heartbeat(s, 0, s * ticks_from_ms(100));
    EXPECT_EQ(d.suspect_after(), s * ticks_from_ms(100) + kTimeout);
  }
}

TEST(FixedTimeout, IndependentOfSendTimestampAndCadence) {
  auto a = make();
  auto b = make();
  a.on_heartbeat(1, 0, ticks_from_ms(70));
  b.on_heartbeat(5, ticks_from_sec(99), ticks_from_ms(70));
  EXPECT_EQ(a.suspect_after(), b.suspect_after());
}

TEST(FixedTimeout, TrustsBeforeFirstHeartbeat) {
  EXPECT_EQ(make().suspect_after(), kTickInfinity);
}

TEST(FixedTimeout, StaleIgnored) {
  auto d = make();
  d.on_heartbeat(2, 0, ticks_from_ms(100));
  d.on_heartbeat(1, 0, ticks_from_ms(150));
  EXPECT_EQ(d.suspect_after(), ticks_from_ms(100) + kTimeout);
}

TEST(FixedTimeout, ResetAndValidation) {
  auto d = make();
  d.on_heartbeat(1, 0, 100);
  d.reset();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_THROW(FixedTimeoutDetector(FixedTimeoutDetector::Params{0}),
               std::logic_error);
}

TEST(FixedTimeout, NameShowsTimeout) {
  EXPECT_EQ(make().name(), "fixed(250.000ms)");
}

}  // namespace
}  // namespace twfd::detect

#include "detect/bertier.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace twfd::detect {
namespace {

constexpr Tick kI = ticks_from_ms(100);

BertierDetector make(double gamma = 0.1) {
  BertierDetector::Params p;
  p.window = 8;
  p.interval = kI;
  p.gamma = gamma;
  return BertierDetector(p);
}

TEST(Bertier, TrustsBeforeFirstHeartbeat) {
  auto d = make();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
}

TEST(Bertier, FirstHeartbeatArmsZeroMargin) {
  auto d = make();
  d.on_heartbeat(1, kI, kI + 100);
  // No prediction existed yet: Jacobson state untouched, margin 0.
  EXPECT_EQ(d.current_margin(), 0);
  EXPECT_EQ(d.suspect_after(), 2 * kI + 100);
}

TEST(Bertier, MarginGrowsWithPredictionError) {
  auto d = make();
  // Perfectly regular arrivals keep errors at 0.
  for (std::int64_t s = 1; s <= 5; ++s) d.on_heartbeat(s, s * kI, s * kI);
  EXPECT_EQ(d.current_margin(), 0);

  // A 20 ms late heartbeat produces a positive error and hence a margin.
  d.on_heartbeat(6, 6 * kI, 6 * kI + ticks_from_ms(20));
  EXPECT_GT(d.current_margin(), 0);
}

TEST(Bertier, JacobsonMatchesHandComputation) {
  auto d = make(0.1);
  d.on_heartbeat(1, kI, kI);  // EA_2 = 2*kI
  // m_2 arrives 10 ms late: error = 0.010 - delay(0) = 0.010.
  d.on_heartbeat(2, 2 * kI, 2 * kI + ticks_from_ms(10));
  // delay = 0.1*0.010 = 1 ms; var = 0.1*(0.010 - 0) = 1 ms.
  // margin = 1*delay + 4*var = 5 ms.
  EXPECT_EQ(d.current_margin(), ticks_from_ms(5));
}

TEST(Bertier, StaleIgnored) {
  auto d = make();
  d.on_heartbeat(3, 3 * kI, 3 * kI);
  const Tick sa = d.suspect_after();
  const Tick margin = d.current_margin();
  d.on_heartbeat(2, 2 * kI, 3 * kI + 10);
  EXPECT_EQ(d.suspect_after(), sa);
  EXPECT_EQ(d.current_margin(), margin);
}

TEST(Bertier, AdaptsDownAfterStability) {
  auto d = make(0.2);
  // One big disturbance...
  d.on_heartbeat(1, kI, kI);
  d.on_heartbeat(2, 2 * kI, 2 * kI + ticks_from_ms(50));
  const Tick disturbed = d.current_margin();
  ASSERT_GT(disturbed, 0);
  // ...then a long calm stretch: margin should decay substantially.
  for (std::int64_t s = 3; s <= 60; ++s) {
    d.on_heartbeat(s, s * kI, s * kI + ticks_from_ms(50));
  }
  EXPECT_LT(d.current_margin(), disturbed / 4);
}

TEST(Bertier, MarginNeverNegative) {
  auto d = make(0.5);
  Xoshiro256 rng(5);
  Tick arrival = 0;
  for (std::int64_t s = 1; s <= 500; ++s) {
    arrival = s * kI + static_cast<Tick>(rng.uniform(0.0, 2e7));
    d.on_heartbeat(s, s * kI, arrival);
    ASSERT_GE(d.current_margin(), 0);
    ASSERT_GE(d.suspect_after(), arrival - ticks_from_ms(200));
  }
}

TEST(Bertier, ResetRestoresInitialState) {
  auto d = make();
  d.on_heartbeat(1, kI, kI);
  d.on_heartbeat(2, 2 * kI, 2 * kI + ticks_from_ms(30));
  d.reset();
  EXPECT_EQ(d.suspect_after(), kTickInfinity);
  EXPECT_EQ(d.current_margin(), 0);
  EXPECT_EQ(d.highest_seq(), 0);
}

TEST(Bertier, ParameterValidation) {
  BertierDetector::Params p;
  p.gamma = 0.0;
  EXPECT_THROW(BertierDetector{p}, std::logic_error);
  p.gamma = 1.5;
  EXPECT_THROW(BertierDetector{p}, std::logic_error);
}

}  // namespace
}  // namespace twfd::detect

// Property fuzz over the configuration procedure: random (but valid) QoS
// tuples and network behaviours must always yield configurations that
// respect the procedure's own invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "config/qos_config.hpp"

namespace twfd::config {
namespace {

TEST(ConfigFuzz, InvariantsHoldOverRandomInputs) {
  Xoshiro256 rng(2024);
  int feasible_count = 0;
  for (int i = 0; i < 2000; ++i) {
    QosRequirements qos;
    qos.td_upper_s = rng.uniform(0.05, 10.0);
    qos.tmr_upper_per_s = std::pow(10.0, rng.uniform(-8.0, 0.0));
    qos.tm_upper_s = rng.uniform(0.01, 30.0);
    NetworkBehaviour net;
    net.loss_probability = rng.uniform(0.0, 0.5);
    net.delay_variance_s2 = std::pow(10.0, rng.uniform(-8.0, -1.0));

    const auto cfg = chen_configure(qos, net);
    if (!cfg.feasible) continue;
    ++feasible_count;

    // Step 3: the split is exact.
    ASSERT_NEAR(cfg.interval_s + cfg.margin_s, qos.td_upper_s, 1e-9);
    ASSERT_GT(cfg.interval_s, 0.0);
    ASSERT_GE(cfg.margin_s, -1e-12);

    // Step 2: the predicted rate respects the bound.
    ASSERT_LE(cfg.predicted_mistake_rate_per_s,
              qos.tmr_upper_per_s * (1 + 1e-6));
    ASSERT_NEAR(cfg.predicted_mistake_rate_per_s,
                estimated_mistake_rate(cfg.interval_s, qos.td_upper_s, net),
                1e-12);

    // Step 1: the mistake-duration cap.
    const double tm2 = qos.tm_upper_s * qos.tm_upper_s;
    const double gamma_prime =
        (1.0 - net.loss_probability) * tm2 / (net.delay_variance_s2 + tm2);
    ASSERT_LE(cfg.interval_s, gamma_prime * qos.tm_upper_s + 1e-9);
  }
  // The procedure is nearly always satisfiable (Chen: "such Delta_i
  // always exists") — feasibility failures only from bracket exhaustion.
  EXPECT_GT(feasible_count, 1900);
}

TEST(ConfigFuzz, CombineInvariantsHoldOverRandomApps) {
  Xoshiro256 rng(2025);
  for (int round = 0; round < 300; ++round) {
    NetworkBehaviour net;
    net.loss_probability = rng.uniform(0.0, 0.2);
    net.delay_variance_s2 = std::pow(10.0, rng.uniform(-7.0, -2.0));

    const std::size_t n = 1 + rng.uniform_int(5);
    std::vector<AppRequest> apps;
    for (std::size_t j = 0; j < n; ++j) {
      apps.push_back({"app" + std::to_string(j),
                      {rng.uniform(0.2, 6.0), std::pow(10.0, rng.uniform(-6.0, -1.0)),
                       rng.uniform(0.5, 20.0)}});
    }
    const auto c = combine_requirements(apps, net);
    if (!c.feasible) continue;

    double min_dedicated = 1e300;
    double dedicated_load = 0.0;
    for (const auto& a : c.apps) {
      min_dedicated = std::min(min_dedicated, a.dedicated.interval_s);
      dedicated_load += 1.0 / a.dedicated.interval_s;
    }
    // Step 2: shared interval is exactly the minimum.
    ASSERT_DOUBLE_EQ(c.shared_interval_s, min_dedicated);
    // Step 3: detection times preserved; margins never shrink.
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(c.shared_interval_s + c.apps[j].shared_margin_s,
                  apps[j].qos.td_upper_s, 1e-9);
      ASSERT_GE(c.apps[j].shared_margin_s, c.apps[j].dedicated.margin_s - 1e-9);
      // Adapted apps' predicted rate improves (more heartbeats per
      // detection window at the same T_D^U). The bound's ceil-kinks make
      // this locally non-monotone, so require strict improvement only
      // when the interval clearly shrank, and never more than a small
      // factor of regression otherwise.
      const double ded_rate = estimated_mistake_rate(
          c.apps[j].dedicated.interval_s, apps[j].qos.td_upper_s, net);
      const double shr_rate = estimated_mistake_rate(
          c.shared_interval_s, apps[j].qos.td_upper_s, net);
      if (c.shared_interval_s < 0.5 * c.apps[j].dedicated.interval_s) {
        ASSERT_LE(shr_rate, ded_rate * (1 + 1e-9) + 1e-15);
      } else {
        ASSERT_LE(shr_rate, ded_rate * 2.5 + 1e-12);
      }
    }
    // Load accounting.
    ASSERT_NEAR(c.dedicated_msgs_per_s, dedicated_load, 1e-9);
    ASSERT_NEAR(c.shared_msgs_per_s, 1.0 / c.shared_interval_s, 1e-9);
    ASSERT_LE(c.shared_msgs_per_s, c.dedicated_msgs_per_s + 1e-9);
  }
}

}  // namespace
}  // namespace twfd::config

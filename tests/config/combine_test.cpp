#include <gtest/gtest.h>

#include <vector>

#include "config/qos_config.hpp"

namespace twfd::config {
namespace {

const NetworkBehaviour kNet{0.01, 1e-4};

AppRequest app(std::string name, double td, double tmr, double tm) {
  return {std::move(name), {td, tmr, tm}};
}

TEST(Combine, SharedIntervalIsMinimum) {
  std::vector<AppRequest> apps = {
      app("strict", 0.3, 1e-5, 1.0),
      app("medium", 1.0, 1e-4, 5.0),
      app("relaxed", 5.0, 1e-3, 30.0),
  };
  const auto c = combine_requirements(apps, kNet);
  ASSERT_TRUE(c.feasible);
  double min_di = 1e300;
  for (const auto& a : c.apps) min_di = std::min(min_di, a.dedicated.interval_s);
  EXPECT_DOUBLE_EQ(c.shared_interval_s, min_di);
}

TEST(Combine, DetectionTimePreservedExactly) {
  std::vector<AppRequest> apps = {
      app("a", 0.4, 1e-4, 2.0),
      app("b", 2.0, 1e-3, 8.0),
  };
  const auto c = combine_requirements(apps, kNet);
  ASSERT_TRUE(c.feasible);
  // Step 3: Delta_to,j = T_D,j - Delta_i,min, so Di_min + Dto,j = T_D,j.
  for (std::size_t j = 0; j < apps.size(); ++j) {
    EXPECT_NEAR(c.shared_interval_s + c.apps[j].shared_margin_s,
                apps[j].qos.td_upper_s, 1e-12);
  }
}

TEST(Combine, AdaptedAppsGainMargin) {
  std::vector<AppRequest> apps = {
      app("strict", 0.3, 1e-5, 1.0),
      app("relaxed", 5.0, 1e-3, 30.0),
  };
  const auto c = combine_requirements(apps, kNet);
  ASSERT_TRUE(c.feasible);
  // The relaxed app's shared margin must exceed its dedicated margin
  // (Section V-C: adapted apps get improved QoS).
  const auto& relaxed = c.apps[1];
  EXPECT_GT(relaxed.shared_margin_s, relaxed.dedicated.margin_s);
  // The strict app is the one defining Delta_i,min: its margin unchanged.
  const auto& strict = c.apps[0];
  EXPECT_NEAR(strict.shared_margin_s, strict.dedicated.margin_s, 1e-9);
}

TEST(Combine, AdaptedAppsPredictedRateImproves) {
  std::vector<AppRequest> apps = {
      app("strict", 0.3, 1e-5, 1.0),
      app("relaxed", 5.0, 1e-3, 30.0),
  };
  const auto c = combine_requirements(apps, kNet);
  ASSERT_TRUE(c.feasible);
  const auto& relaxed = c.apps[1];
  const double dedicated_rate =
      estimated_mistake_rate(relaxed.dedicated.interval_s, 5.0, kNet);
  const double shared_rate = estimated_mistake_rate(c.shared_interval_s, 5.0, kNet);
  EXPECT_LT(shared_rate, dedicated_rate);
}

TEST(Combine, NetworkLoadReduced) {
  std::vector<AppRequest> apps = {
      app("a", 0.5, 1e-4, 2.0),
      app("b", 1.0, 1e-4, 4.0),
      app("c", 2.0, 1e-4, 8.0),
      app("d", 4.0, 1e-4, 16.0),
  };
  const auto c = combine_requirements(apps, kNet);
  ASSERT_TRUE(c.feasible);
  EXPECT_LT(c.shared_msgs_per_s, c.dedicated_msgs_per_s);
  // Shared load equals the strictest app's dedicated load.
  EXPECT_NEAR(c.shared_msgs_per_s, 1.0 / c.shared_interval_s, 1e-12);
}

TEST(Combine, SingleAppIsIdentity) {
  std::vector<AppRequest> apps = {app("only", 1.0, 1e-4, 5.0)};
  const auto c = combine_requirements(apps, kNet);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.shared_interval_s, c.apps[0].dedicated.interval_s);
  EXPECT_NEAR(c.apps[0].shared_margin_s, c.apps[0].dedicated.margin_s, 1e-12);
  EXPECT_NEAR(c.shared_msgs_per_s, c.dedicated_msgs_per_s, 1e-12);
}

TEST(Combine, IdenticalAppsShareEverything) {
  std::vector<AppRequest> apps = {app("x", 1.0, 1e-4, 5.0),
                                  app("y", 1.0, 1e-4, 5.0)};
  const auto c = combine_requirements(apps, kNet);
  ASSERT_TRUE(c.feasible);
  // Dedicated load is double the shared load: the headline saving.
  EXPECT_NEAR(c.dedicated_msgs_per_s, 2.0 * c.shared_msgs_per_s, 1e-9);
}

TEST(Combine, EmptyThrows) {
  std::vector<AppRequest> none;
  EXPECT_THROW((void)combine_requirements(none, kNet), std::logic_error);
}

TEST(Combine, PreservesAppOrderAndNames) {
  std::vector<AppRequest> apps = {app("first", 1.0, 1e-4, 5.0),
                                  app("second", 2.0, 1e-4, 5.0)};
  const auto c = combine_requirements(apps, kNet);
  ASSERT_EQ(c.apps.size(), 2u);
  EXPECT_EQ(c.apps[0].name, "first");
  EXPECT_EQ(c.apps[1].name, "second");
}

}  // namespace
}  // namespace twfd::config

#include "config/qos_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace twfd::config {
namespace {

const NetworkBehaviour kTypicalNet{0.01, 1e-4};  // 1% loss, 10ms stddev

QosRequirements qos(double td, double tmr, double tm) {
  return {td, tmr, tm};
}

TEST(EstimatedMistakeRate, DecreasesWithSmallerInterval) {
  // More heartbeats per detection window -> each deadline has more
  // chances to be met -> lower mistake rate.
  const double slow = estimated_mistake_rate(1.0, 1.0, kTypicalNet);
  const double medium = estimated_mistake_rate(0.3, 1.0, kTypicalNet);
  const double fast = estimated_mistake_rate(0.1, 1.0, kTypicalNet);
  EXPECT_GT(slow, medium);
  EXPECT_GT(medium, fast);
}

TEST(EstimatedMistakeRate, DecreasesWithLargerDetectionTime) {
  const double tight = estimated_mistake_rate(0.1, 0.2, kTypicalNet);
  const double loose = estimated_mistake_rate(0.1, 1.0, kTypicalNet);
  EXPECT_GT(tight, loose);
}

TEST(EstimatedMistakeRate, GrowsWithLossAndVariance) {
  const double base = estimated_mistake_rate(0.1, 0.5, {0.01, 1e-4});
  const double lossy = estimated_mistake_rate(0.1, 0.5, {0.20, 1e-4});
  const double noisy = estimated_mistake_rate(0.1, 0.5, {0.01, 1e-2});
  EXPECT_GT(lossy, base);
  EXPECT_GT(noisy, base);
}

TEST(EstimatedMistakeRate, SingleOpportunityClosedForm) {
  // Delta_i = T_D / 2: only heartbeat m_{l+1} (slack T_D/2) can prevent a
  // mistake: rate = (pL + (1-pL) * V/(V+(T_D/2)^2)) / Delta_i.
  const NetworkBehaviour net{0.1, 1e-4};
  const double td = 0.5;
  const double di = 0.25;
  const double expected = (0.1 + 0.9 * (1e-4 / (1e-4 + di * di))) / di;
  EXPECT_NEAR(estimated_mistake_rate(di, td, net), expected, 1e-12);
}

TEST(EstimatedMistakeRate, NoOpportunityMeansCertainMistakes) {
  // Delta_i >= T_D^U: the next heartbeat cannot beat any freshness
  // deadline, so every interval produces a mistake.
  const NetworkBehaviour net{0.01, 1e-4};
  EXPECT_NEAR(estimated_mistake_rate(1.0, 1.0, net), 1.0, 1e-12);
  EXPECT_NEAR(estimated_mistake_rate(2.0, 1.0, net), 0.5, 1e-12);
}

TEST(ChenConfigure, ProducesFeasibleSplit) {
  const auto cfg = chen_configure(qos(1.0, 1e-4, 10.0), kTypicalNet);
  ASSERT_TRUE(cfg.feasible);
  EXPECT_GT(cfg.interval_s, 0.0);
  EXPECT_GT(cfg.margin_s, 0.0);
  EXPECT_NEAR(cfg.interval_s + cfg.margin_s, 1.0, 1e-9);  // T_D = Di + Dto
  EXPECT_LE(cfg.predicted_mistake_rate_per_s, 1e-4 * (1 + 1e-9));
}

TEST(ChenConfigure, IntervalMaximised) {
  // A slightly smaller interval must also satisfy the bound (sanity that
  // we returned the largest), and a noticeably larger one must violate it
  // unless already at the Step-1 cap.
  const QosRequirements q = qos(1.0, 1e-4, 10.0);
  const auto cfg = chen_configure(q, kTypicalNet);
  ASSERT_TRUE(cfg.feasible);
  EXPECT_LE(estimated_mistake_rate(cfg.interval_s * 0.98, q.td_upper_s, kTypicalNet),
            q.tmr_upper_per_s * 1.0001);
}

TEST(ChenConfigure, StricterMistakeRateShrinksInterval) {
  const auto loose = chen_configure(qos(1.0, 1e-2, 10.0), kTypicalNet);
  const auto strict = chen_configure(qos(1.0, 1e-7, 10.0), kTypicalNet);
  ASSERT_TRUE(loose.feasible);
  ASSERT_TRUE(strict.feasible);
  EXPECT_LT(strict.interval_s, loose.interval_s);
  EXPECT_GT(strict.margin_s, loose.margin_s);
}

TEST(ChenConfigure, LargerDetectionTimeGrowsBoth) {
  // Figure 10: both Delta_i and Delta_to grow with T_D^U.
  const auto a = chen_configure(qos(0.5, 1e-4, 10.0), kTypicalNet);
  const auto b = chen_configure(qos(2.0, 1e-4, 10.0), kTypicalNet);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_GT(b.interval_s, a.interval_s);
  EXPECT_GT(b.margin_s, a.margin_s);
}

TEST(ChenConfigure, MistakeDurationCapsInterval) {
  // Figure 12 behaviour: a small T_M^U forces a small Delta_i even when
  // the mistake-rate bound would allow more.
  const auto tight = chen_configure(qos(1.0, 1e-2, 0.05), kTypicalNet);
  const auto loose = chen_configure(qos(1.0, 1e-2, 10.0), kTypicalNet);
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_LT(tight.interval_s, loose.interval_s);
  // gamma' * T_M^U bound from Step 1.
  const double tm2 = 0.05 * 0.05;
  const double gp = (1 - 0.01) * tm2 / (1e-4 + tm2);
  EXPECT_LE(tight.interval_s, gp * 0.05 + 1e-12);
}

TEST(ChenConfigure, IntervalNeverExceedsDetectionTime) {
  const auto cfg = chen_configure(qos(0.2, 1.0, 100.0), kTypicalNet);
  ASSERT_TRUE(cfg.feasible);
  EXPECT_LE(cfg.interval_s, 0.2);
  EXPECT_GE(cfg.margin_s, 0.0);
}

TEST(ChenConfigure, ValidatesInputs) {
  EXPECT_THROW((void)chen_configure(qos(0.0, 1.0, 1.0), kTypicalNet),
               std::logic_error);
  EXPECT_THROW((void)chen_configure(qos(1.0, 0.0, 1.0), kTypicalNet),
               std::logic_error);
  EXPECT_THROW((void)chen_configure(qos(1.0, 1.0, 0.0), kTypicalNet),
               std::logic_error);
  EXPECT_THROW((void)chen_configure(qos(1.0, 1.0, 1.0), {1.0, 1e-4}),
               std::logic_error);
  EXPECT_THROW((void)chen_configure(qos(1.0, 1.0, 1.0), {0.0, -1.0}),
               std::logic_error);
}

TEST(ChenConfigure, PredictedRateConsistent) {
  const QosRequirements q = qos(0.8, 1e-3, 5.0);
  const auto cfg = chen_configure(q, kTypicalNet);
  ASSERT_TRUE(cfg.feasible);
  EXPECT_NEAR(cfg.predicted_mistake_rate_per_s,
              estimated_mistake_rate(cfg.interval_s, q.td_upper_s, kTypicalNet),
              1e-15);
}

TEST(PredictQos, RoundTripsWithConfigure) {
  // Configuring for a tuple and then predicting the QoS of the produced
  // configuration must honour the original bounds.
  const QosRequirements q = qos(1.0, 1e-3, 5.0);
  const auto cfg = chen_configure(q, kTypicalNet);
  ASSERT_TRUE(cfg.feasible);
  const auto pred = predict_qos(cfg.interval_s, cfg.margin_s, kTypicalNet);
  EXPECT_NEAR(pred.td_upper_s, q.td_upper_s, 1e-9);
  EXPECT_LE(pred.tmr_upper_per_s, q.tmr_upper_per_s * (1 + 1e-9));
  EXPECT_LE(pred.tm_upper_s, q.tm_upper_s * (1 + 1e-9));
  EXPECT_GT(pred.pa_lower, 0.99);
}

TEST(PredictQos, MonotoneInMargin) {
  const auto tight = predict_qos(0.1, 0.05, kTypicalNet);
  const auto loose = predict_qos(0.1, 0.5, kTypicalNet);
  EXPECT_LT(loose.tmr_upper_per_s, tight.tmr_upper_per_s);
  EXPECT_LE(loose.tm_upper_s, tight.tm_upper_s);
  EXPECT_GE(loose.pa_lower, tight.pa_lower);
  EXPECT_GT(loose.td_upper_s, tight.td_upper_s);
}

TEST(PredictQos, LossExtendsMistakeDuration) {
  const auto clean = predict_qos(0.1, 0.2, {0.0, 1e-4});
  const auto lossy = predict_qos(0.1, 0.2, {0.3, 1e-4});
  EXPECT_GT(lossy.tm_upper_s, clean.tm_upper_s);
  // Bound never collapses below the interval itself.
  EXPECT_GE(clean.tm_upper_s, 0.1);
}

TEST(PredictQos, ValidatesInputs) {
  EXPECT_THROW((void)predict_qos(0.0, 0.1, kTypicalNet), std::logic_error);
  EXPECT_THROW((void)predict_qos(0.1, -0.1, kTypicalNet), std::logic_error);
}

TEST(ChenConfigure, HarshNetworkStillFeasibleWithSmallInterval) {
  // Very lossy, very noisy network: feasibility via tiny Delta_i.
  const NetworkBehaviour harsh{0.4, 0.01};
  const auto cfg = chen_configure(qos(2.0, 1e-3, 5.0), harsh);
  ASSERT_TRUE(cfg.feasible);
  EXPECT_LT(cfg.interval_s, 0.5);
  EXPECT_LE(estimated_mistake_rate(cfg.interval_s, 2.0, harsh), 1e-3 * 1.0001);
}

}  // namespace
}  // namespace twfd::config

#include <gtest/gtest.h>

#include <memory>

#include "common/stats.hpp"
#include "trace/delay_model.hpp"
#include "trace/loss_model.hpp"

namespace twfd::trace {
namespace {

TEST(DelayModels, ConstantJitterRange) {
  ConstantJitterDelay m(0.010, 0.005);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double d = m.sample(rng);
    ASSERT_GE(d, 0.010);
    ASSERT_LT(d, 0.015);
  }
}

TEST(DelayModels, ConstantNoJitterIsExact) {
  ConstantJitterDelay m(0.010, 0.0);
  Xoshiro256 rng(1);
  EXPECT_DOUBLE_EQ(m.sample(rng), 0.010);
}

TEST(DelayModels, NormalRespectsFloor) {
  NormalDelay m(0.001, 0.010, 0.0005);  // wide sigma forces truncation
  Xoshiro256 rng(2);
  RunningStats s;
  for (int i = 0; i < 20'000; ++i) s.add(m.sample(rng));
  EXPECT_GE(s.min(), 0.0005);
}

TEST(DelayModels, ExponentialMean) {
  ExponentialDelay m(0.002, 0.004);
  Xoshiro256 rng(3);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(m.sample(rng));
  EXPECT_NEAR(s.mean(), 0.006, 0.0002);
  EXPECT_GE(s.min(), 0.002);
}

TEST(DelayModels, LogNormalFloorHolds) {
  LogNormalDelay m(0.05, std::log(0.008), 0.45);
  Xoshiro256 rng(4);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.add(m.sample(rng));
  EXPECT_GE(s.min(), 0.05);
  EXPECT_NEAR(s.mean(), 0.05 + 0.008 * std::exp(0.45 * 0.45 / 2), 0.001);
}

TEST(DelayModels, ParetoHeavyTail) {
  ParetoDelay m(0.01, 0.005, 1.6);
  Xoshiro256 rng(5);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(m.sample(rng));
  EXPECT_GE(s.min(), 0.01 - 1e-12);
  EXPECT_GT(s.max(), 0.1);  // heavy tail produces large spikes
}

TEST(DelayModels, SpikeMixSelectsBranches) {
  auto base = std::make_unique<ConstantJitterDelay>(0.001, 0.0);
  auto spike = std::make_unique<ConstantJitterDelay>(1.0, 0.0);
  SpikeMixDelay m(std::move(base), std::move(spike), 0.25);
  Xoshiro256 rng(6);
  int spikes = 0;
  for (int i = 0; i < 40'000; ++i) {
    if (m.sample(rng) > 0.5) ++spikes;
  }
  EXPECT_NEAR(spikes, 10'000, 400);
}

TEST(DelayModels, CloneIsIndependentAndEquivalent) {
  LogNormalDelay m(0.0, std::log(0.01), 0.3);
  auto c = m.clone();
  Xoshiro256 r1(7), r2(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(m.sample(r1), c->sample(r2));
  }
}

TEST(LossModels, BernoulliZeroAndRate) {
  Xoshiro256 rng(8);
  BernoulliLoss never(0.0);
  for (int i = 0; i < 1000; ++i) ASSERT_FALSE(never.lost(rng));

  BernoulliLoss some(0.1);
  int losses = 0;
  for (int i = 0; i < 100'000; ++i) losses += some.lost(rng) ? 1 : 0;
  EXPECT_NEAR(losses, 10'000, 400);
}

TEST(LossModels, GilbertElliottBurstiness) {
  // Bad state drops 90%+, good state nothing; mean bad run ~20 messages.
  GilbertElliottLoss ge(0.01, 0.05, 0.0, 0.95);
  Xoshiro256 rng(9);
  // Measure run lengths of consecutive losses.
  int losses = 0, total = 200'000;
  int runs = 0;
  bool prev = false;
  int max_run = 0, cur = 0;
  for (int i = 0; i < total; ++i) {
    const bool l = ge.lost(rng);
    losses += l;
    if (l && !prev) ++runs;
    cur = l ? cur + 1 : 0;
    max_run = std::max(max_run, cur);
    prev = l;
  }
  EXPECT_GT(losses, 0);
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(losses) / runs;
  // Correlated loss: mean run length must clearly exceed Bernoulli's ~1.
  EXPECT_GT(mean_run, 3.0);
  EXPECT_GT(max_run, 10);
}

TEST(LossModels, GilbertElliottDegenerateIsBernoulli) {
  // p_gb = 0 keeps it in the good state forever.
  GilbertElliottLoss ge(0.0, 1.0, 0.2, 1.0);
  Xoshiro256 rng(10);
  int losses = 0;
  for (int i = 0; i < 100'000; ++i) losses += ge.lost(rng) ? 1 : 0;
  EXPECT_NEAR(losses, 20'000, 500);
  EXPECT_FALSE(ge.in_bad_state());
}

TEST(LossModels, CloneCopiesState) {
  GilbertElliottLoss ge(1.0, 0.0, 0.0, 1.0);  // jumps to bad immediately
  Xoshiro256 rng(11);
  (void)ge.lost(rng);
  EXPECT_TRUE(ge.in_bad_state());
  auto c = ge.clone();
  auto* gc = dynamic_cast<GilbertElliottLoss*>(c.get());
  ASSERT_NE(gc, nullptr);
  EXPECT_TRUE(gc->in_bad_state());
}

}  // namespace
}  // namespace twfd::trace

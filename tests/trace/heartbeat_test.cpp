#include "trace/heartbeat.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace twfd::trace {
namespace {

HeartbeatRecord rec(std::int64_t seq, Tick send, Tick arrival) {
  return {seq, send, arrival, false};
}

HeartbeatRecord lost_rec(std::int64_t seq, Tick send) {
  return {seq, send, kTickInfinity, true};
}

TEST(Trace, BasicAccessors) {
  Trace t("unit", ticks_from_ms(10), ticks_from_sec(1));
  EXPECT_EQ(t.name(), "unit");
  EXPECT_EQ(t.interval(), ticks_from_ms(10));
  EXPECT_EQ(t.clock_skew(), ticks_from_sec(1));
  EXPECT_TRUE(t.empty());
}

TEST(Trace, RejectsNonPositiveInterval) {
  EXPECT_THROW(Trace("x", 0), std::logic_error);
}

TEST(Trace, RejectsNonIncreasingSeq) {
  Trace t("x", 1000);
  t.push(rec(1, 10, 20));
  EXPECT_THROW(t.push(rec(1, 20, 30)), std::logic_error);
  EXPECT_THROW(t.push(rec(0, 20, 30)), std::logic_error);
}

TEST(Trace, RejectsInconsistentLostFlag) {
  Trace t("x", 1000);
  HeartbeatRecord bad{1, 10, 20, true};  // lost but finite arrival
  EXPECT_THROW(t.push(bad), std::logic_error);
  HeartbeatRecord bad2{1, 10, kTickInfinity, false};
  EXPECT_THROW(t.push(bad2), std::logic_error);
}

TEST(Trace, DeliveryOrderSkipsLostAndSortsByArrival) {
  Trace t("x", 1000);
  t.push(rec(1, 1000, 2000));
  t.push(lost_rec(2, 2000));
  t.push(rec(3, 3000, 3500));
  t.push(rec(4, 4000, 3400));  // reordered: arrives before seq 3
  const auto order = t.delivery_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(t[order[0]].seq, 1);
  EXPECT_EQ(t[order[1]].seq, 4);
  EXPECT_EQ(t[order[2]].seq, 3);
}

TEST(Trace, SliceKeepsRangeInclusive) {
  Trace t("x", 1000, 7);
  for (int i = 1; i <= 10; ++i) t.push(rec(i, i * 1000, i * 1000 + 100));
  const Trace s = t.slice(3, 6);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0].seq, 3);
  EXPECT_EQ(s[3].seq, 6);
  EXPECT_EQ(s.interval(), t.interval());
  EXPECT_EQ(s.clock_skew(), t.clock_skew());
}

TEST(Trace, SendTimeReceiverClockAppliesSkew) {
  Trace t("x", 1000, ticks_from_sec(5));
  t.push(rec(1, 1000, ticks_from_sec(5) + 1100));
  EXPECT_EQ(t.send_time_receiver_clock(0), ticks_from_sec(5) + 1000);
}

}  // namespace
}  // namespace twfd::trace

#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>

#include "trace/generator.hpp"

namespace twfd::trace {
namespace {

Trace sample_trace() {
  TraceGenerator gen("roundtrip", ticks_from_ms(10), ticks_from_sec(2), 21);
  Regime r;
  r.label = "a";
  r.count = 2000;
  r.delay = std::make_unique<ExponentialDelay>(0.001, 0.002);
  r.loss = std::make_unique<BernoulliLoss>(0.1);
  gen.add_regime(std::move(r));
  return gen.generate();
}

void expect_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.interval(), b.interval());
  EXPECT_EQ(a.clock_skew(), b.clock_skew());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].seq, b[i].seq);
    ASSERT_EQ(a[i].send_time, b[i].send_time);
    ASSERT_EQ(a[i].arrival_time, b[i].arrival_time);
    ASSERT_EQ(a[i].lost, b[i].lost);
  }
}

TEST(TraceIo, BinaryRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  save_binary(t, ss);
  const Trace back = load_binary(ss);
  expect_equal(t, back);
}

TEST(TraceIo, BinaryFileRoundTrip) {
  const Trace t = sample_trace();
  const std::string path = testing::TempDir() + "/twfd_io_test.trc";
  save_binary_file(t, path);
  const Trace back = load_binary_file(path);
  expect_equal(t, back);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTATRACEFILE___________";
  EXPECT_THROW((void)load_binary(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncated) {
  const Trace t = sample_trace();
  std::stringstream ss;
  save_binary(t, ss);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW((void)load_binary(half), std::runtime_error);
}

TEST(TraceIo, CsvRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  save_csv(t, ss);
  const Trace back = load_csv(ss, t.name(), t.interval(), t.clock_skew());
  expect_equal(t, back);
}

TEST(TraceIo, CsvHeaderPresent) {
  const Trace t = sample_trace();
  std::stringstream ss;
  save_csv(t, ss);
  std::string first;
  std::getline(ss, first);
  EXPECT_EQ(first, "seq,send_ns,arrival_ns,lost");
}

TEST(TraceIo, EmptyCsvThrows) {
  std::stringstream ss;
  EXPECT_THROW((void)load_csv(ss, "x", 1000), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_binary_file("/nonexistent/path/file.trc"),
               std::runtime_error);
}

}  // namespace
}  // namespace twfd::trace

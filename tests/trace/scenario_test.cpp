#include "trace/scenario.hpp"

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"

namespace twfd::trace {
namespace {

TEST(WanScenario, PeriodsMatchTableOneProportions) {
  WanScenario::Params p;
  p.samples = 100'000;
  WanScenario wan(p);
  const Trace t = wan.build();
  EXPECT_EQ(t.size(), 100'000u);

  const auto& periods = wan.periods();
  ASSERT_EQ(periods.size(), 4u);
  EXPECT_EQ(periods[0].name, "Stable 1");
  EXPECT_EQ(periods[1].name, "Burst");
  EXPECT_EQ(periods[2].name, "Worm");
  EXPECT_EQ(periods[3].name, "Stable 2");

  // Paper proportions: 49.6% / 0.51% / 33.0% / 16.9%.
  const auto len = [](const Period& pr) {
    return static_cast<double>(pr.to_seq - pr.from_seq + 1);
  };
  EXPECT_NEAR(len(periods[0]) / 100'000, 0.496, 0.002);
  EXPECT_NEAR(len(periods[1]) / 100'000, 0.0051, 0.001);
  EXPECT_NEAR(len(periods[2]) / 100'000, 0.330, 0.002);
  EXPECT_NEAR(len(periods[3]) / 100'000, 0.169, 0.003);
  // Contiguous cover of the full trace.
  EXPECT_EQ(periods[0].from_seq, 1);
  EXPECT_EQ(periods[3].to_seq, 100'000);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(periods[i].from_seq, periods[i - 1].to_seq + 1);
  }
}

TEST(WanScenario, BurstPeriodHasConcentratedLoss) {
  WanScenario::Params p;
  p.samples = 200'000;
  WanScenario wan(p);
  const Trace t = wan.build();
  const auto& periods = wan.periods();

  auto loss_in = [&](const Period& pr) {
    const Trace s = t.slice(pr.from_seq, pr.to_seq);
    return compute_stats(s).loss_probability;
  };
  const double stable_loss = loss_in(periods[0]);
  const double burst_loss = loss_in(periods[1]);
  const double worm_loss = loss_in(periods[2]);
  EXPECT_LT(stable_loss, 0.01);
  EXPECT_GT(burst_loss, 0.15);  // the burst regime is dominated by loss runs
  EXPECT_GT(worm_loss, stable_loss * 3);
  EXPECT_LT(worm_loss, burst_loss);
}

TEST(WanScenario, DeterministicForSeed) {
  WanScenario::Params p;
  p.samples = 20'000;
  const Trace a = WanScenario(p).build();
  const Trace b = WanScenario(p).build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 997) {
    ASSERT_EQ(a[i].arrival_time, b[i].arrival_time);
  }
}

TEST(LanScenario, MatchesPublishedStatistics) {
  LanScenario::Params p;
  p.samples = 300'000;
  p.stall_prob = 0.0;  // baseline channel statistics, no stall events
  LanScenario lan(p);
  const Trace t = lan.build();
  const TraceStats s = compute_stats(t);

  EXPECT_EQ(s.sent, 300'000);
  // "Not a single heartbeat was lost."
  EXPECT_EQ(s.delivered, 300'000);
  EXPECT_DOUBLE_EQ(s.loss_probability, 0.0);
  // "The average transmission delay was around 100 us."
  EXPECT_NEAR(s.delay_mean_s, 100e-6, 30e-6);
  // "the variance was very small"
  EXPECT_LT(s.delay_stddev_s, 1e-3);
  // Interval is 20 ms.
  EXPECT_EQ(t.interval(), ticks_from_ms(20));
  EXPECT_NEAR(s.interarrival_mean_s, 0.020, 0.001);
}

TEST(LanScenario, RareStallsBoundedByPublishedMax) {
  LanScenario::Params p;
  p.samples = 1'000'000;
  LanScenario lan(p);
  const TraceStats s = compute_stats(lan.build());
  // "The largest interval between the reception of two heartbeats was
  // about 1.5 seconds."
  EXPECT_LE(s.interarrival_max_s, 1.7);
  EXPECT_GE(s.interarrival_max_s, 0.5);  // stalls do occur
}

TEST(Scenarios, MinimumSizeEnforced) {
  WanScenario::Params wp;
  wp.samples = 10;
  EXPECT_THROW(WanScenario{wp}, std::logic_error);
  LanScenario::Params lp;
  lp.samples = 10;
  EXPECT_THROW(LanScenario{lp}, std::logic_error);
}

}  // namespace
}  // namespace twfd::trace

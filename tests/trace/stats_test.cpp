#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "trace/generator.hpp"

namespace twfd::trace {
namespace {

TEST(TraceStats, EmptyTrace) {
  Trace t("x", 1000);
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.sent, 0);
  EXPECT_EQ(s.delivered, 0);
}

TEST(TraceStats, HandComputedValues) {
  Trace t("x", ticks_from_ms(10), ticks_from_sec(1));
  const Tick skew = ticks_from_sec(1);
  // Delays: 1ms, 3ms, lost, 2ms.
  t.push({1, ticks_from_ms(10), ticks_from_ms(10) + skew + ticks_from_ms(1), false});
  t.push({2, ticks_from_ms(20), ticks_from_ms(20) + skew + ticks_from_ms(3), false});
  t.push({3, ticks_from_ms(30), kTickInfinity, true});
  t.push({4, ticks_from_ms(40), ticks_from_ms(40) + skew + ticks_from_ms(2), false});

  const TraceStats s = compute_stats(t, /*skew_known=*/true);
  EXPECT_EQ(s.sent, 4);
  EXPECT_EQ(s.delivered, 3);
  EXPECT_DOUBLE_EQ(s.loss_probability, 0.25);
  EXPECT_NEAR(s.delay_mean_s, 0.002, 1e-12);
  EXPECT_NEAR(s.delay_min_s, 0.001, 1e-12);
  EXPECT_NEAR(s.delay_max_s, 0.003, 1e-12);
  // Variance of {1,3,2} ms = 2/3 ms^2.
  EXPECT_NEAR(s.delay_variance_s2, (2.0 / 3.0) * 1e-6, 1e-15);
  EXPECT_NEAR(s.duration_s, 0.030, 1e-12);
}

TEST(TraceStats, SkewInvarianceOfVariance) {
  auto build = [](Tick skew) {
    TraceGenerator gen("t", ticks_from_ms(10), skew, 5);
    Regime r;
    r.label = "a";
    r.count = 20'000;
    r.delay = std::make_unique<ExponentialDelay>(0.001, 0.002);
    r.loss = std::make_unique<BernoulliLoss>(0.05);
    gen.add_regime(std::move(r));
    return gen.generate();
  };
  const TraceStats a = compute_stats(build(0), false);
  const TraceStats b = compute_stats(build(ticks_from_sec(1234)), false);
  // Same seed, same delays: variance identical regardless of skew, even
  // when the skew is not corrected for.
  EXPECT_NEAR(a.delay_variance_s2, b.delay_variance_s2, 1e-12);
}

TEST(TraceStats, UncorrectedMeanIncludesSkew) {
  Trace t("x", ticks_from_ms(10), ticks_from_sec(2));
  t.push({1, 0, ticks_from_sec(2) + ticks_from_ms(1), false});
  const TraceStats raw = compute_stats(t, /*skew_known=*/false);
  EXPECT_NEAR(raw.delay_mean_s, 2.001, 1e-9);
  const TraceStats corrected = compute_stats(t, /*skew_known=*/true);
  EXPECT_NEAR(corrected.delay_mean_s, 0.001, 1e-12);
}

TEST(NetworkEstimator, LossFromSequenceGaps) {
  NetworkEstimator est;
  est.on_heartbeat(1, 0, 100);
  est.on_heartbeat(2, 10, 110);
  est.on_heartbeat(5, 40, 150);  // 3 and 4 missing
  EXPECT_EQ(est.highest_seq(), 5);
  EXPECT_EQ(est.received(), 3);
  EXPECT_NEAR(est.loss_probability(), 2.0 / 5.0, 1e-12);
}

TEST(NetworkEstimator, VarianceMatchesDelays) {
  NetworkEstimator est;
  // Delays 1ms, 3ms, 2ms (any skew would cancel).
  est.on_heartbeat(1, 0, ticks_from_ms(1));
  est.on_heartbeat(2, ticks_from_ms(10), ticks_from_ms(13));
  est.on_heartbeat(3, ticks_from_ms(20), ticks_from_ms(22));
  EXPECT_NEAR(est.delay_variance_s2(), (2.0 / 3.0) * 1e-6, 1e-15);
}

TEST(NetworkEstimator, ResetClears) {
  NetworkEstimator est;
  est.on_heartbeat(1, 0, 100);
  est.reset();
  EXPECT_EQ(est.received(), 0);
  EXPECT_EQ(est.highest_seq(), 0);
  EXPECT_DOUBLE_EQ(est.loss_probability(), 0.0);
}

TEST(NetworkEstimator, NoLossWhenAllReceived) {
  NetworkEstimator est;
  for (int i = 1; i <= 100; ++i) est.on_heartbeat(i, i * 10, i * 10 + 5);
  EXPECT_DOUBLE_EQ(est.loss_probability(), 0.0);
}

}  // namespace
}  // namespace twfd::trace

#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "trace/generator.hpp"
#include "trace/scenario.hpp"

namespace twfd::trace {
namespace {

Trace regular_trace(std::int64_t n, Tick interval = ticks_from_ms(10)) {
  Trace t("reg", interval);
  for (std::int64_t s = 1; s <= n; ++s) {
    t.push({s, s * interval, s * interval + 1000, false});
  }
  return t;
}

TEST(GapAnalysis, RegularCadence) {
  const auto t = regular_trace(1000);
  const auto g = analyze_gaps(t);
  EXPECT_EQ(g.gaps, 999u);
  EXPECT_NEAR(g.mean_s, 0.010, 1e-9);
  EXPECT_NEAR(g.p50_s, 0.010, 1e-6);
  EXPECT_NEAR(g.max_s, 0.010, 1e-9);
  EXPECT_EQ(g.over_2x, 0u);
  EXPECT_EQ(g.over_10x, 0u);
}

TEST(GapAnalysis, LossCreatesLargeGaps) {
  Trace t("gappy", ticks_from_ms(10));
  Tick interval = ticks_from_ms(10);
  std::int64_t seq = 0;
  for (int block = 0; block < 100; ++block) {
    for (int i = 0; i < 9; ++i) {
      ++seq;
      t.push({seq, seq * interval, seq * interval, false});
    }
    ++seq;  // every 10th lost
    t.push({seq, seq * interval, kTickInfinity, true});
  }
  const auto g = analyze_gaps(t);
  // A lost heartbeat makes a 20 ms gap: exactly 2x nominal, not > 2x.
  EXPECT_EQ(g.over_2x, 0u);
  EXPECT_NEAR(g.max_s, 0.020, 1e-9);
  EXPECT_GT(g.p99_s, g.p50_s);
}

TEST(GapAnalysis, CountsThresholdExceedances) {
  Trace t("stall", ticks_from_ms(10));
  const Tick i10 = ticks_from_ms(10);
  t.push({1, i10, i10, false});
  t.push({2, 2 * i10, 2 * i10, false});
  // 3..13 lost: gap of 120 ms (12 intervals) before seq 14.
  t.push({14, 14 * i10, 14 * i10, false});
  t.push({15, 15 * i10, 15 * i10, false});
  const auto g = analyze_gaps(t);
  EXPECT_EQ(g.over_2x, 1u);
  EXPECT_EQ(g.over_5x, 1u);
  EXPECT_EQ(g.over_10x, 1u);
  EXPECT_NEAR(g.max_s, 0.120, 1e-9);
}

TEST(GapAnalysis, EmptyAndSingle) {
  Trace t("e", 1000);
  EXPECT_EQ(analyze_gaps(t).gaps, 0u);
  t.push({1, 1000, 2000, false});
  EXPECT_EQ(analyze_gaps(t).gaps, 0u);
}

TEST(LossRuns, NoLoss) {
  const auto t = regular_trace(100);
  const auto r = analyze_loss_runs(t);
  EXPECT_EQ(r.lost_total, 0u);
  EXPECT_EQ(r.runs, 0u);
  EXPECT_FALSE(r.bursty());
}

TEST(LossRuns, HandBuiltRuns) {
  Trace t("runs", 1000);
  // Pattern: ok, L, ok, L L L, ok, L L (trailing run).
  const bool lost[] = {false, true, false, true, true, true, false, true, true};
  for (std::int64_t i = 0; i < 9; ++i) {
    t.push({i + 1, (i + 1) * 1000,
            lost[i] ? kTickInfinity : (i + 1) * 1000 + 10, lost[i]});
  }
  const auto r = analyze_loss_runs(t);
  EXPECT_EQ(r.lost_total, 6u);
  EXPECT_EQ(r.runs, 3u);
  EXPECT_EQ(r.max_run_length, 3u);
  EXPECT_NEAR(r.mean_run_length, 2.0, 1e-12);
  EXPECT_EQ(r.histogram.at(1), 1u);
  EXPECT_EQ(r.histogram.at(2), 1u);
  EXPECT_EQ(r.histogram.at(3), 1u);
  EXPECT_TRUE(r.bursty());
}

TEST(LossRuns, BernoulliIsNotBursty) {
  TraceGenerator gen("b", ticks_from_ms(10), 0, 5);
  Regime reg;
  reg.label = "a";
  reg.count = 100'000;
  reg.delay = std::make_unique<ConstantJitterDelay>(0.001, 0.0);
  reg.loss = std::make_unique<BernoulliLoss>(0.05);
  gen.add_regime(std::move(reg));
  const auto r = analyze_loss_runs(gen.generate());
  EXPECT_GT(r.lost_total, 4000u);
  // Independent loss at 5%: mean run ~ 1/(1-0.05) ~ 1.05.
  EXPECT_LT(r.mean_run_length, 1.2);
  EXPECT_FALSE(r.bursty());
}

TEST(LossRuns, WanBurstPeriodIsBursty) {
  WanScenario::Params p;
  p.samples = 200'000;
  WanScenario wan(p);
  const Trace t = wan.build();
  const auto& periods = wan.periods();
  const auto burst = analyze_loss_runs(t.slice(periods[1].from_seq, periods[1].to_seq));
  EXPECT_TRUE(burst.bursty());
  EXPECT_GT(burst.max_run_length, 5u);
}

}  // namespace
}  // namespace twfd::trace

#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace twfd::trace {
namespace {

Regime simple_regime(std::string label, std::int64_t count, double loss = 0.0) {
  Regime r;
  r.label = std::move(label);
  r.count = count;
  r.delay = std::make_unique<ConstantJitterDelay>(0.001, 0.0005);
  r.loss = std::make_unique<BernoulliLoss>(loss);
  return r;
}

TEST(Generator, ProducesRequestedCount) {
  TraceGenerator gen("t", ticks_from_ms(10), 0, 1);
  gen.add_regime(simple_regime("a", 500));
  const Trace t = gen.generate();
  EXPECT_EQ(t.size(), 500u);
  EXPECT_EQ(t[0].seq, 1);
  EXPECT_EQ(t[499].seq, 500);
}

TEST(Generator, SendTimesFollowCadence) {
  TraceGenerator gen("t", ticks_from_ms(10), 0, 1);
  gen.add_regime(simple_regime("a", 100));
  const Trace t = gen.generate();
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_EQ(t[i].send_time, static_cast<Tick>(i + 1) * ticks_from_ms(10));
  }
}

TEST(Generator, AppliesClockSkew) {
  const Tick skew = ticks_from_sec(9);
  TraceGenerator gen("t", ticks_from_ms(10), skew, 1);
  gen.add_regime(simple_regime("a", 100));
  const Trace t = gen.generate();
  for (const auto& r : t.records()) {
    ASSERT_FALSE(r.lost);
    // arrival = send + skew + delay, delay in [1ms, 1.5ms]
    ASSERT_GE(r.arrival_time, r.send_time + skew + ticks_from_ms(1));
    ASSERT_LE(r.arrival_time, r.send_time + skew + ticks_from_us(1500));
  }
}

TEST(Generator, DeterministicForSeed) {
  auto make = [] {
    TraceGenerator gen("t", ticks_from_ms(10), 0, 77);
    gen.add_regime(simple_regime("a", 1000, 0.1));
    return gen.generate();
  };
  const Trace a = make();
  const Trace b = make();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].arrival_time, b[i].arrival_time);
    ASSERT_EQ(a[i].lost, b[i].lost);
  }
}

TEST(Generator, LossRateApplied) {
  TraceGenerator gen("t", ticks_from_ms(10), 0, 2);
  gen.add_regime(simple_regime("a", 50'000, 0.2));
  const Trace t = gen.generate();
  std::size_t lost = 0;
  for (const auto& r : t.records()) lost += r.lost;
  EXPECT_NEAR(static_cast<double>(lost), 10'000.0, 500.0);
}

TEST(Generator, FifoArrivalsMonotone) {
  TraceGenerator gen("t", ticks_from_ms(1), 0, 3);
  Regime r;
  r.label = "spiky";
  r.count = 20'000;
  // Delay often exceeding the interval would reorder without FIFO.
  r.delay = std::make_unique<ExponentialDelay>(0.0001, 0.005);
  r.loss = std::make_unique<BernoulliLoss>(0.0);
  gen.add_regime(std::move(r));
  const Trace t = gen.generate();
  Tick prev = kTickNegInfinity;
  for (const auto& rec : t.records()) {
    ASSERT_GT(rec.arrival_time, prev);
    prev = rec.arrival_time;
  }
}

TEST(Generator, NonFifoCanReorder) {
  TraceGenerator gen("t", ticks_from_ms(1), 0, 3);
  gen.set_fifo(false);
  Regime r;
  r.label = "spiky";
  r.count = 20'000;
  r.delay = std::make_unique<ExponentialDelay>(0.0001, 0.005);
  r.loss = std::make_unique<BernoulliLoss>(0.0);
  gen.add_regime(std::move(r));
  const Trace t = gen.generate();
  bool reordered = false;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i].arrival_time < t[i - 1].arrival_time) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Generator, StallCreatesSilenceGap) {
  TraceGenerator gen("t", ticks_from_ms(10), 0, 4);
  Regime r = simple_regime("a", 5000);
  r.stall = {/*prob_per_msg=*/0.001, /*min_s=*/0.5, /*max_s=*/0.5};
  gen.add_regime(std::move(r));
  const Trace t = gen.generate();
  Tick max_gap = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    max_gap = std::max(max_gap, t[i].arrival_time - t[i - 1].arrival_time);
  }
  // A 0.5 s stall against a 10 ms cadence must leave a gap near 0.5 s.
  EXPECT_GE(max_gap, ticks_from_ms(400));
}

TEST(Generator, BoundariesCoverAllSeqs) {
  TraceGenerator gen("t", ticks_from_ms(10), 0, 5);
  gen.add_regime(simple_regime("a", 100));
  gen.add_regime(simple_regime("b", 200));
  gen.add_regime(simple_regime("c", 50));
  (void)gen.generate();
  const auto& bounds = gen.boundaries();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0].from_seq, 1);
  EXPECT_EQ(bounds[0].to_seq, 100);
  EXPECT_EQ(bounds[1].from_seq, 101);
  EXPECT_EQ(bounds[1].to_seq, 300);
  EXPECT_EQ(bounds[2].from_seq, 301);
  EXPECT_EQ(bounds[2].to_seq, 350);
  EXPECT_EQ(bounds[1].label, "b");
}

TEST(Generator, SecondGenerateThrows) {
  TraceGenerator gen("t", ticks_from_ms(10), 0, 6);
  gen.add_regime(simple_regime("a", 10));
  (void)gen.generate();
  EXPECT_THROW((void)gen.generate(), std::logic_error);
}

TEST(Generator, NoRegimesThrows) {
  TraceGenerator gen("t", ticks_from_ms(10), 0, 7);
  EXPECT_THROW((void)gen.generate(), std::logic_error);
}

}  // namespace
}  // namespace twfd::trace

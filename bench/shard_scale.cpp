// Engineering bench: heartbeat-processing throughput of the sharded
// monitoring runtime over shard count.
//
// P synthetic peers (each its own UDP socket, so source addresses — and
// hence shard ownership — are distinct) blast paced heartbeats at the
// service port while every peer is subscribed. For each shard count the
// bench reports offered vs processed rate, the hand-off volume, queue
// drops, and the per-shard load balance. On a multi-core host the
// processed rate scales with shards (the acceptance target is ~3x at 4
// shards); on a single core the numbers expose the hand-off overhead
// instead — both are honest readings of the same counters, so the JSON
// is interpretable either way (see the cores column).
//
// Knobs: FD_BENCH_SHARD_PEERS (default 64), FD_BENCH_SHARD_INTERVAL_US
// (per-peer send interval, default 2000), FD_BENCH_SHARD_SECONDS
// (measured window per shard count, default 2), FD_BENCH_SHARD_COUNTS
// (comma list, default "1,2,4,8").
//
// Emits BENCH_shard_scale.json via bench::emit_json.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "net/udp_socket.hpp"
#include "net/wire.hpp"
#include "shard/sharded_monitor_service.hpp"

using namespace twfd;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atol(v);
}

std::vector<std::size_t> env_shard_counts() {
  const char* v = std::getenv("FD_BENCH_SHARD_COUNTS");
  std::string spec = v != nullptr && *v != '\0' ? v : "1,2,4,8";
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::atol(tok.c_str())));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

struct RunResult {
  std::size_t shards = 0;
  std::uint64_t offered = 0;
  std::uint64_t processed = 0;
  double seconds = 0;
  std::uint64_t handoff_out = 0;
  std::uint64_t handoff_dropped = 0;
  std::uint64_t handoff_batches = 0;
  std::uint64_t wakeups_cross = 0;
  std::uint64_t injected = 0;
  double balance = 0;  // max/min per-shard service heartbeats (1.0 = even)
};

RunResult run(std::size_t shards, std::size_t peers, long interval_us, long seconds) {
  shard::ShardedMonitorService svc(
      {.shards = shards,
       .receive_mode = shard::ShardedMonitorService::ReceiveMode::kReusePort,
       .service = {.assumed_network = {0.01, 1e-4}}});
  svc.start();
  const std::uint16_t port = svc.port();

  // One socket per synthetic peer: distinct source ports spread ownership
  // across shards exactly like distinct remote hosts would.
  std::vector<net::UdpSocket> sockets;
  sockets.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i) sockets.emplace_back(std::uint16_t{0});
  for (std::size_t i = 0; i < peers; ++i) {
    svc.subscribe(net::SocketAddress::loopback(sockets[i].local_port()), i + 1,
                  "peer" + std::to_string(i), {2.0, 1e-2, 10.0});
  }

  const net::SocketAddress service_addr = net::SocketAddress::loopback(port);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> offered{0};

  // Two sender threads split the peer set and pace each peer at
  // interval_us. Heartbeat stamps mimic a live sender (absolute cadence).
  const std::size_t kSenders = peers >= 2 ? 2 : 1;
  std::vector<std::thread> senders;
  for (std::size_t t = 0; t < kSenders; ++t) {
    senders.emplace_back([&, t] {
      const std::size_t lo = t * peers / kSenders;
      const std::size_t hi = (t + 1) * peers / kSenders;
      std::vector<std::int64_t> seq(hi - lo, 0);
      const auto start = std::chrono::steady_clock::now();
      std::int64_t round = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (std::size_t i = lo; i < hi; ++i) {
          net::HeartbeatMsg hb;
          hb.sender_id = i + 1;
          hb.seq = ++seq[i - lo];
          hb.send_time = ticks_from_us(round * interval_us);
          hb.interval = ticks_from_us(interval_us);
          const auto bytes = net::encode(hb);
          sockets[i].send_to(service_addr, bytes);
        }
        offered.fetch_add(hi - lo, std::memory_order_relaxed);
        ++round;
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(round * interval_us));
      }
    });
  }

  // Warm-up (interval negotiation, estimator seeding), then measure.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto before = svc.shard_stats();
  const std::uint64_t offered0 = offered.load();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  const auto after = svc.shard_stats();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t offered1 = offered.load();
  stop.store(true, std::memory_order_release);
  for (auto& s : senders) s.join();
  svc.poll_events();
  svc.stop();

  RunResult r;
  r.shards = shards;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.offered = offered1 - offered0;
  std::uint64_t min_hb = ~0ULL, max_hb = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::uint64_t hb =
        after[i].service_heartbeats - before[i].service_heartbeats;
    r.processed += hb;
    min_hb = hb < min_hb ? hb : min_hb;
    max_hb = hb > max_hb ? hb : max_hb;
    r.handoff_out += after[i].handoff_out - before[i].handoff_out;
    r.handoff_dropped += after[i].handoff_dropped - before[i].handoff_dropped;
    r.handoff_batches += after[i].handoff_batches - before[i].handoff_batches;
    r.wakeups_cross += after[i].loop.wakeups_cross - before[i].loop.wakeups_cross;
    r.injected +=
        after[i].loop.datagrams_injected - before[i].loop.datagrams_injected;
  }
  r.balance = min_hb > 0 ? static_cast<double>(max_hb) / static_cast<double>(min_hb)
                         : 0.0;
  return r;
}

}  // namespace

int main() {
  const auto peers = static_cast<std::size_t>(env_long("FD_BENCH_SHARD_PEERS", 64));
  const long interval_us = env_long("FD_BENCH_SHARD_INTERVAL_US", 2000);
  const long seconds = env_long("FD_BENCH_SHARD_SECONDS", 2);
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "shard_scale\n"
            << "sharded monitoring runtime: heartbeat throughput vs shard count\n"
            << "peers=" << peers << "  interval_us=" << interval_us
            << "  window_s=" << seconds << "  cores=" << cores << "\n\n";

  Table table({"shards", "cores", "peers", "offered_per_s", "processed_per_s",
               "speedup", "handoff_per_s", "handoff_dropped", "injected_per_s",
               "handoff_coalesce", "cross_wakes_per_s", "balance_max_min"});
  double base_rate = 0;
  for (std::size_t shards : env_shard_counts()) {
    const auto r = run(shards, peers, interval_us, seconds);
    const double processed_rate = static_cast<double>(r.processed) / r.seconds;
    if (base_rate <= 0) base_rate = processed_rate;
    // Datagrams moved per hand-off flush: the wake-coalescing factor the
    // per-batch staging buys over the old one-wake-per-datagram scheme.
    const double coalesce =
        r.handoff_batches > 0 ? static_cast<double>(r.handoff_out) /
                                    static_cast<double>(r.handoff_batches)
                              : 0.0;
    table.add_row({std::to_string(r.shards), std::to_string(cores),
                   std::to_string(peers),
                   Table::num(static_cast<double>(r.offered) / r.seconds, 1),
                   Table::num(processed_rate, 1),
                   Table::num(base_rate > 0 ? processed_rate / base_rate : 0, 2),
                   Table::num(static_cast<double>(r.handoff_out) / r.seconds, 1),
                   std::to_string(r.handoff_dropped),
                   Table::num(static_cast<double>(r.injected) / r.seconds, 1),
                   Table::num(coalesce, 2),
                   Table::num(static_cast<double>(r.wakeups_cross) / r.seconds, 1),
                   Table::num(r.balance, 2)});
  }
  bench::emit(table);
  bench::emit_json("shard_scale", table);

  std::cout << "\nExpected shape: processed_per_s tracks offered_per_s while"
               " shards have cores to run on (speedup -> ~3x at 4 shards on"
               " >=4 cores); on fewer cores the speedup column reads ~1x and"
               " the hand-off columns price the cross-shard marshaling."
               " handoff_coalesce > 1 means the per-batch staging amortised"
               " several forwarded datagrams into one queue push + wake."
               " balance_max_min near 1 means splitmix64 spread the peers"
               " evenly.\n";
  return 0;
}

// Engineering bench: heartbeat-processing throughput of the sharded
// monitoring runtime over shard count, in two phases.
//
// Phase A (sockets): P synthetic peers (each its own UDP socket, so
// source addresses — and hence shard ownership — are distinct) blast
// paced heartbeats at the service port while every peer is subscribed.
// Shard workers are core-pinned (Params::pin_cores; skipped gracefully
// when the host has fewer cores than shards — the `pinned_shards` column
// counts the workers that actually got a core, `hw_cores` records what
// the host offered, and `speedup_valid` is 1 only for rows whose speedup
// reading is honest: shards=1, or every worker pinned to its own core).
// For each shard count the bench
// reports offered vs processed rate, hand-off volume, queue drops and
// per-shard balance. The speedup baseline is ALWAYS the shards=1 row: it
// runs first whether or not the sweep asked for it.
//
// Phase B (peer-scale): the socket path caps peers at the fd limit and
// the pacing threads at the sender's clock, so the slab peer table is
// measured by direct drive instead: per shard a pinned thread owns a
// private EventLoop + Dispatcher + FdService pre-sized for P peers
// (>=100k by default), subscribes every peer, pre-encodes one heartbeat
// datagram per peer and re-stamps seq/send_time in place each round —
// the ingest path (decode -> slab lookup -> estimator -> embedded
// detector -> timer re-arm) is exactly the shard worker's per-datagram
// work, minus the socket syscall. Reported: ns_per_datagram (slowest
// thread — the number a shard worker pays per heartbeat) and
// allocs_per_hb from a replacement global operator new (the
// zero-allocation steady-state claim, measured across every thread).
//
// On a multi-core host the phase-A processed rate scales with shards
// (acceptance target ~2.5x+ at 4 shards); on a single core both phases
// expose per-datagram cost and hand-off overhead instead — honest
// readings of the same counters either way (see the hw_cores /
// pinned_shards / speedup_valid columns; a warning is printed whenever
// cores < shards).
//
// Knobs: FD_BENCH_SHARD_COUNTS (comma list, default "1,2,4,8"; both
// phases), FD_BENCH_SHARD_PEERS (phase A, default 64),
// FD_BENCH_SHARD_INTERVAL_US (phase A per-peer send interval, default
// 2000), FD_BENCH_SHARD_SECONDS (phase A measured window, default 2),
// FD_BENCH_SHARD_SCALE_PEERS (phase B peers per shard, default 100000),
// FD_BENCH_SHARD_SCALE_ROUNDS (phase B measured rounds, default 10).
//
// Emits BENCH_shard_scale.json via bench::emit_json; exits non-zero if
// no row carries a numeric ns_per_datagram (the CI smoke contract).

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "bench_common.hpp"
#include "common/table.hpp"
#include "net/event_loop.hpp"
#include "net/udp_socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/qos_tracker.hpp"
#include "service/dispatcher.hpp"
#include "service/fd_service.hpp"
#include "shard/sharded_monitor_service.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: every heap allocation in the process bumps g_allocs
// (aligned overloads included — the slab allocates cache-line-aligned).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, std::max(static_cast<std::size_t>(al), sizeof(void*)),
                     n ? n : 1) == 0) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace twfd;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atol(v);
}

std::vector<std::size_t> env_shard_counts() {
  const char* v = std::getenv("FD_BENCH_SHARD_COUNTS");
  std::string spec = v != nullptr && *v != '\0' ? v : "1,2,4,8";
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::atol(tok.c_str())));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8};
  // The speedup baseline is the shards=1 run: always run it, and first.
  std::vector<std::size_t> ordered{1};
  for (std::size_t s : out) {
    if (s != 1) ordered.push_back(s);
  }
  return ordered;
}

/// Same policy as ShardedMonitorService::maybe_pin, for phase-B threads:
/// pin to the index-th allowed CPU, skip when threads > usable cores.
bool pin_to_core(std::size_t index, std::size_t total_threads) {
#if defined(__linux__)
  cpu_set_t avail;
  CPU_ZERO(&avail);
  if (sched_getaffinity(0, sizeof(avail), &avail) != 0) return false;
  const int cores = CPU_COUNT(&avail);
  if (cores <= 0 || total_threads > static_cast<std::size_t>(cores)) return false;
  int want = static_cast<int>(index);
  int cpu = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &avail) && want-- == 0) {
      cpu = c;
      break;
    }
  }
  if (cpu < 0) return false;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpu, &one);
  return pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
#else
  (void)index;
  (void)total_threads;
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Phase A: socket sweep over the sharded runtime.
// ---------------------------------------------------------------------------

struct SocketRunResult {
  std::size_t shards = 0;
  std::uint64_t offered = 0;
  std::uint64_t processed = 0;
  double seconds = 0;
  std::uint64_t handoff_out = 0;
  std::uint64_t handoff_dropped = 0;
  std::uint64_t handoff_batches = 0;
  std::uint64_t wakeups_cross = 0;
  std::uint64_t injected = 0;
  std::uint64_t pinned = 0;          ///< workers that got their own core
  std::uint64_t zero_hb_shards = 0;  ///< shards that processed NOTHING
  std::uint64_t min_hb = 0;
  std::uint64_t max_hb = 0;
};

SocketRunResult run_sockets(std::size_t shards, std::size_t peers, long interval_us,
                            long seconds) {
  shard::ShardedMonitorService svc(
      {.shards = shards,
       .receive_mode = shard::ShardedMonitorService::ReceiveMode::kReusePort,
       .pin_cores = true,
       .service = {.assumed_network = {0.01, 1e-4}}});
  svc.start();
  const std::uint16_t port = svc.port();

  // One socket per synthetic peer: distinct source ports spread ownership
  // across shards exactly like distinct remote hosts would.
  std::vector<net::UdpSocket> sockets;
  sockets.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i) sockets.emplace_back(std::uint16_t{0});
  for (std::size_t i = 0; i < peers; ++i) {
    svc.subscribe(net::SocketAddress::loopback(sockets[i].local_port()), i + 1,
                  "peer" + std::to_string(i), {2.0, 1e-2, 10.0});
  }

  const net::SocketAddress service_addr = net::SocketAddress::loopback(port);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> offered{0};

  // Two sender threads split the peer set and pace each peer at
  // interval_us. Heartbeat stamps mimic a live sender (absolute cadence).
  const std::size_t kSenders = peers >= 2 ? 2 : 1;
  std::vector<std::thread> senders;
  for (std::size_t t = 0; t < kSenders; ++t) {
    senders.emplace_back([&, t] {
      const std::size_t lo = t * peers / kSenders;
      const std::size_t hi = (t + 1) * peers / kSenders;
      std::vector<std::int64_t> seq(hi - lo, 0);
      const auto start = std::chrono::steady_clock::now();
      std::int64_t round = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (std::size_t i = lo; i < hi; ++i) {
          net::HeartbeatMsg hb;
          hb.sender_id = i + 1;
          hb.seq = ++seq[i - lo];
          hb.send_time = ticks_from_us(round * interval_us);
          hb.interval = ticks_from_us(interval_us);
          const auto bytes = net::encode(hb);
          sockets[i].send_to(service_addr, bytes);
        }
        offered.fetch_add(hi - lo, std::memory_order_relaxed);
        ++round;
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(round * interval_us));
      }
    });
  }

  // Warm-up (interval negotiation, estimator seeding), then measure.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto before = svc.shard_stats();
  const std::uint64_t offered0 = offered.load();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  const auto after = svc.shard_stats();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t offered1 = offered.load();
  stop.store(true, std::memory_order_release);
  for (auto& s : senders) s.join();
  svc.poll_events();
  svc.stop();

  SocketRunResult r;
  r.shards = shards;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.offered = offered1 - offered0;
  r.min_hb = ~0ULL;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::uint64_t hb =
        after[i].service_heartbeats - before[i].service_heartbeats;
    r.processed += hb;
    r.min_hb = hb < r.min_hb ? hb : r.min_hb;
    r.max_hb = hb > r.max_hb ? hb : r.max_hb;
    if (hb == 0) ++r.zero_hb_shards;
    r.handoff_out += after[i].handoff_out - before[i].handoff_out;
    r.handoff_dropped += after[i].handoff_dropped - before[i].handoff_dropped;
    r.handoff_batches += after[i].handoff_batches - before[i].handoff_batches;
    r.wakeups_cross += after[i].loop.wakeups_cross - before[i].loop.wakeups_cross;
    r.injected +=
        after[i].loop.datagrams_injected - before[i].loop.datagrams_injected;
    r.pinned += after[i].pinned;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Phase B: peer-scale direct drive of the slab peer table.
// ---------------------------------------------------------------------------

struct ScaleRunResult {
  std::size_t shards = 0;
  std::size_t peers_per_shard = 0;
  std::uint64_t processed = 0;     ///< heartbeats across all threads
  double worst_seconds = 0;        ///< slowest thread's measured wall time
  double aggregate_per_s = 0;      ///< processed / coordinator wall time
  double allocs_per_hb = 0;        ///< global alloc delta / processed
  std::uint64_t pinned = 0;
};

ScaleRunResult run_peer_scale(std::size_t shards, std::size_t peers, long rounds) {
  constexpr long kWarmRounds = 3;
  ScaleRunResult r;
  r.shards = shards;
  r.peers_per_shard = peers;

  // Metrics ON for the measured region: every heartbeat bumps its
  // shard's ShardedCounter cell and every subscription is QoS-tracked,
  // exactly as in twfd_fdaasd. The 0-allocs/hb claim must hold with
  // observability wired, not just bare. (Registration/track happen
  // before the alloc snapshot; the hot path touches only the cell.)
  obs::Registry registry;
  obs::QosTracker tracker(registry);
  obs::ShardedCounter& hb_cells = registry.sharded_counter(
      "twfd_shard_heartbeats_total", "Heartbeats applied (bench drive).", shards);

  std::barrier sync(static_cast<std::ptrdiff_t>(shards) + 1);
  std::vector<double> thread_seconds(shards, 0.0);
  std::vector<std::uint64_t> thread_processed(shards, 0);
  std::vector<std::uint8_t> thread_pinned(shards, 0);

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < shards; ++t) {
    workers.emplace_back([&, t] {
      thread_pinned[t] = pin_to_core(t, shards) ? 1 : 0;

      net::EventLoop loop(net::UdpSocket::Options{});  // ephemeral, never read
      service::Dispatcher dispatcher(loop.runtime());
      service::FdService::Params params;
      params.assumed_network = {0.01, 1e-4};
      params.expected_peers = peers;
      params.qos_tracker = &tracker;
      params.obs_heartbeats = &hb_cells;
      params.obs_cell = t;
      service::FdService fd(loop.runtime(), params);
      dispatcher.on_heartbeat(
          [&fd](PeerId from, const net::HeartbeatMsg& m, Tick at) {
            fd.handle_heartbeat(from, m, at);
          });

      // Distinct fake source addresses inside 127.0.0.0/8 (whole block is
      // loopback on Linux, so the subscribe-time IntervalRequest send has
      // a route and vanishes harmlessly). Peer identity is ip:port.
      std::vector<PeerId> ids(peers);
      for (std::size_t i = 0; i < peers; ++i) {
        const net::SocketAddress addr{
            0x7f000001u + static_cast<std::uint32_t>(t * peers + i), 4242};
        ids[i] = loop.add_peer(addr);
        fd.subscribe(ids[i], i + 1, "app", {2.0, 1e-2, 10.0},
                     [](const service::FdService::StatusEvent&) {});
      }
      const Tick interval = fd.shared_interval(ids[0]);

      // One pre-encoded 38-byte heartbeat per peer; each round re-stamps
      // seq and send_time in place (wire layout: LE, sender_id@6, seq@14,
      // send_time@22, interval@30). Advertising the negotiated interval
      // keeps the steady state rebuild-free after the first heartbeat.
      std::vector<std::byte> frames(peers * net::HeartbeatMsg::kWireSize);
      for (std::size_t i = 0; i < peers; ++i) {
        net::HeartbeatMsg hb;
        hb.sender_id = i + 1;
        hb.seq = 1;
        hb.send_time = 0;
        hb.interval = interval;
        const auto bytes = net::encode(hb);
        std::memcpy(frames.data() + i * net::HeartbeatMsg::kWireSize,
                    bytes.data(), bytes.size());
      }
      const auto patch_i64 = [&](std::size_t frame, std::size_t offset,
                                 std::int64_t v) {
        std::byte* p =
            frames.data() + frame * net::HeartbeatMsg::kWireSize + offset;
        for (int b = 0; b < 8; ++b) {
          p[b] = static_cast<std::byte>(static_cast<std::uint64_t>(v) >> (8 * b));
        }
      };
      const Tick base = loop.now();
      const auto drive_round = [&](long round) {
        const Tick send = base + (round + 1) * interval;
        const Tick arrival = send + ticks_from_us(50);
        for (std::size_t i = 0; i < peers; ++i) {
          patch_i64(i, 14, round + 1);  // seq
          patch_i64(i, 22, send);       // send_time
          dispatcher.ingest(
              ids[i],
              std::span<const std::byte>(
                  frames.data() + i * net::HeartbeatMsg::kWireSize,
                  net::HeartbeatMsg::kWireSize),
              arrival);
        }
      };

      for (long round = 0; round < kWarmRounds; ++round) drive_round(round);
      sync.arrive_and_wait();  // (1) warm done
      sync.arrive_and_wait();  // (2) alloc counter snapshotted: measure
      const auto t0 = std::chrono::steady_clock::now();
      for (long round = 0; round < rounds; ++round) {
        drive_round(kWarmRounds + round);
      }
      const auto t1 = std::chrono::steady_clock::now();
      thread_seconds[t] = std::chrono::duration<double>(t1 - t0).count();
      thread_processed[t] = static_cast<std::uint64_t>(rounds) * peers;
      sync.arrive_and_wait();  // (3) measured region closed
    });
  }

  sync.arrive_and_wait();  // (1)
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  sync.arrive_and_wait();  // (2)
  const auto wall0 = std::chrono::steady_clock::now();
  sync.arrive_and_wait();  // (3)
  const auto wall1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  for (std::size_t t = 0; t < shards; ++t) {
    r.processed += thread_processed[t];
    r.worst_seconds = std::max(r.worst_seconds, thread_seconds[t]);
    r.pinned += thread_pinned[t];
  }
  // The aggregate rate uses the COORDINATOR's wall clock over the whole
  // measured region, not the sum of per-thread rates: on an oversubscribed
  // host (threads > cores) the scheduler can run each thread's region
  // back-to-back, so per-thread wall times only cover their own active
  // slice and their sum would fake linear scaling where there is none.
  const double wall = std::chrono::duration<double>(wall1 - wall0).count();
  if (wall > 0) r.aggregate_per_s = static_cast<double>(r.processed) / wall;
  r.allocs_per_hb = r.processed > 0 ? static_cast<double>(allocs1 - allocs0) /
                                          static_cast<double>(r.processed)
                                    : 0.0;
  return r;
}

}  // namespace

int main() {
  const auto peers = static_cast<std::size_t>(env_long("FD_BENCH_SHARD_PEERS", 64));
  const long interval_us = env_long("FD_BENCH_SHARD_INTERVAL_US", 2000);
  const long seconds = env_long("FD_BENCH_SHARD_SECONDS", 2);
  const auto scale_peers =
      static_cast<std::size_t>(env_long("FD_BENCH_SHARD_SCALE_PEERS", 100000));
  const long scale_rounds = env_long("FD_BENCH_SHARD_SCALE_ROUNDS", 10);
  const unsigned cores = std::thread::hardware_concurrency();
  const auto counts = env_shard_counts();

  std::cout << "shard_scale\n"
            << "sharded monitoring runtime: heartbeat throughput vs shard count\n"
            << "phase A: peers=" << peers << "  interval_us=" << interval_us
            << "  window_s=" << seconds << "\n"
            << "phase B: peers/shard=" << scale_peers
            << "  rounds=" << scale_rounds << "\n"
            << "cores=" << cores << "\n\n";

  Table table({"phase", "shards", "hw_cores", "pinned_shards", "speedup_valid",
               "peers", "offered_per_s", "processed_per_s", "speedup",
               "ns_per_datagram", "allocs_per_hb", "handoff_per_s",
               "handoff_dropped", "zero_hb_shards", "handoff_coalesce",
               "cross_wakes_per_s", "balance_max_min"});

  // A speedup reading only means something when every worker owned a
  // core: shards=1 is its own baseline, otherwise require pinned==shards.
  const auto speedup_valid = [](std::size_t shards, std::uint64_t pinned) {
    return shards == 1 || pinned == shards ? "1" : "0";
  };
  for (std::size_t shards : counts) {
    if (cores < shards) {
      std::cerr << "WARNING: " << cores << " hardware core(s) for " << shards
                << " shards - workers share cores, the speedup column is"
                   " contention, not scaling (speedup_valid=0)\n";
    }
  }

  // --- Phase A ---
  double base_rate_a = 0;
  for (std::size_t shards : counts) {
    const auto r = run_sockets(shards, peers, interval_us, seconds);
    const double processed_rate = static_cast<double>(r.processed) / r.seconds;
    if (shards == 1) base_rate_a = processed_rate;  // counts[0] is always 1
    // Datagrams moved per hand-off flush: the wake-coalescing factor the
    // per-batch staging buys over the old one-wake-per-datagram scheme.
    const double coalesce =
        r.handoff_batches > 0 ? static_cast<double>(r.handoff_out) /
                                    static_cast<double>(r.handoff_batches)
                              : 0.0;
    // A shard that processed zero heartbeats means the sweep was too
    // short or ownership never touched it — either way max/min would be
    // division by zero dressed up as "perfectly balanced", so say so.
    const std::string balance =
        r.min_hb > 0 ? Table::num(static_cast<double>(r.max_hb) /
                                      static_cast<double>(r.min_hb),
                                  2)
                     : "unbalanced";
    table.add_row({"sockets", std::to_string(r.shards), std::to_string(cores),
                   std::to_string(r.pinned), speedup_valid(shards, r.pinned),
                   std::to_string(peers),
                   Table::num(static_cast<double>(r.offered) / r.seconds, 1),
                   Table::num(processed_rate, 1),
                   base_rate_a > 0 ? Table::num(processed_rate / base_rate_a, 2)
                                   : "n/a",
                   "-", "-",
                   Table::num(static_cast<double>(r.handoff_out) / r.seconds, 1),
                   std::to_string(r.handoff_dropped),
                   std::to_string(r.zero_hb_shards), Table::num(coalesce, 2),
                   Table::num(static_cast<double>(r.wakeups_cross) / r.seconds, 1),
                   balance});
  }

  // --- Phase B ---
  bool have_ns = false;
  double base_rate_b = 0;
  for (std::size_t shards : counts) {
    const auto r = run_peer_scale(shards, scale_peers, scale_rounds);
    if (r.processed == 0 || r.worst_seconds <= 0) continue;
    const double ns_per_datagram =
        r.worst_seconds * 1e9 /
        (static_cast<double>(r.processed) / static_cast<double>(shards));
    if (shards == 1) base_rate_b = r.aggregate_per_s;
    have_ns = true;
    table.add_row(
        {"slab", std::to_string(shards), std::to_string(cores),
         std::to_string(r.pinned), speedup_valid(shards, r.pinned),
         std::to_string(r.peers_per_shard * shards), "-",
         Table::num(r.aggregate_per_s, 1),
         base_rate_b > 0 ? Table::num(r.aggregate_per_s / base_rate_b, 2)
                         : "n/a",
         Table::num(ns_per_datagram, 1), Table::num(r.allocs_per_hb, 4), "-",
         "-", "-", "-", "-", "-"});
  }

  bench::emit(table);
  bench::emit_json("shard_scale", table);

  std::cout << "\nExpected shape: phase-A processed_per_s tracks offered_per_s"
               " while shards have cores to run on (speedup >= 2.5x at 4"
               " shards on >=4 cores); on fewer cores the speedup column"
               " reads ~1x, the pinned column reads 0 (pinning skipped) and"
               " the hand-off columns price the cross-shard marshaling."
               " Phase-B ns_per_datagram is the slab table's per-heartbeat"
               " cost at scale and allocs_per_hb must read 0 in steady"
               " state.\n";

  if (!have_ns) {
    std::cerr << "shard_scale: no phase-B row produced a numeric"
                 " ns_per_datagram\n";
    return 1;
  }
  return 0;
}

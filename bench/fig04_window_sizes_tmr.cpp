// Figure 4: effect of the 2W-FD window sizes on mistake rate T_MR vs
// detection time T_D (WAN scenario). Each row is one (short, long) window
// configuration at one safety margin; series sharing the small window
// should cluster, and (1, >=1000) should dominate.

#include <iostream>

#include "bench_common.hpp"

using namespace twfd;

int main() {
  const auto& trace = bench::wan_trace();
  bench::print_header("fig04_window_sizes_tmr",
                      "Figure 4 (T_MR vs T_D, window sizes, WAN)", trace);

  const std::pair<std::size_t, std::size_t> configs[] = {
      {1, 1},     {1, 100},    {1, 1000},      {1, 10000},
      {10, 1000}, {100, 1000}, {1000, 1000},   {10000, 10000},
  };

  Table table({"windows", "margin_ms", "TD_s", "TMR_per_s", "mistakes"});
  for (const auto& [w_short, w_long] : configs) {
    for (int margin_ms : bench::margin_sweep_ms()) {
      const auto spec = core::DetectorSpec::two_window(
          w_short, w_long, ticks_from_ms(margin_ms));
      const auto p = bench::eval_spec(spec, trace);
      table.add_row({spec.family_name(), std::to_string(margin_ms),
                     Table::num(p.td_s, 4), Table::sci(p.tmr_per_s, 4),
                     std::to_string(p.mistakes)});
    }
  }
  bench::emit(table);

  std::cout << "\nExpected shape: smaller short window and larger long window"
               " give lower T_MR at every T_D;\ngains saturate for long"
               " windows beyond 1000 samples (Section IV-C1).\n";
  return 0;
}

// Engineering bench: the batched datagram hot path vs the per-datagram
// baseline, on real loopback sockets.
//
// RX methodology is fill-then-drain: each round queues a burst of
// heartbeat-sized datagrams in the receive socket's kernel buffer, then
// drains it four ways:
//   (a) rx_legacy — the full pre-batching per-datagram wake cycle. The
//       old event loop, under the detector's paced heartbeat arrival,
//       ran this once per datagram: a poll() wake, one recvfrom, a
//       second recvfrom that comes back EAGAIN (the drain loop always
//       confirmed the queue was empty before sleeping), one fresh
//       std::vector, and two clock reads (arrival stamp + timer-deadline
//       recompute). The EAGAIN confirm is issued on an empty companion
//       socket so the prefilled burst cannot satisfy it.
//   (b) rx_legacy_burst — the same recipe minus the per-datagram wake:
//       what the old loop paid when a burst was already queued.
//   (c) rx_single — the repaired allocation-free receive() loop.
//   (d) rx_batched — receive_batch() (recvmmsg + kernel timestamps).
// Draining a pre-filled buffer makes the comparison sender-independent
// and keeps receive_batch() batches full. TX mirrors it: one payload
// fanned to N destinations via a send_to loop vs one send_batch() call.
//
// A replacement global operator new counts heap allocations, so the
// "zero allocations per datagram in steady state" claim is measured, not
// asserted. Each drain also counts its syscalls, because the throughput
// ratio is a function of the host's per-syscall cost: on kernels with
// expensive syscall entry (KPTI/retpoline-mitigated hosts, ~0.5-2us) the
// 3x target falls straight out of the ~64x syscall reduction; on this
// class of host (syscall entry ~100ns) the per-message kernel work
// dominates and the measured ratio is smaller. Both the throughput
// speedup and the syscalls/datagram reduction are reported so the JSON
// is interpretable either way. Acceptance target: batched RX >= 3x the
// per-datagram baseline at batch size >= 16.
//
// Knobs: FD_BENCH_HOTPATH_ROUNDS (default 200), FD_BENCH_HOTPATH_DATAGRAMS
// (burst per round, default 192 — sized to fit a default-rmem_max socket
// buffer), FD_BENCH_HOTPATH_FANOUT (TX destinations, default 256).
//
// Emits BENCH_net_hotpath.json via bench::emit_json.

#include <poll.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "net/udp_socket.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: every heap allocation in the process bumps g_allocs.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace twfd;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atol(v);
}

// 38 bytes — the heartbeat wire size; what the monitor hot path sees.
constexpr std::size_t kPayloadBytes = 38;

void wait_readable(const net::UdpSocket& s) {
  pollfd pfd{s.fd(), POLLIN, 0};
  ::poll(&pfd, 1, 1000);
}

net::UdpSocket make_rx() {
  net::UdpSocket::Options opts;
  opts.rcvbuf_bytes = 1 << 22;  // best-effort; kernel clamps to rmem_max
  return net::UdpSocket(opts);
}

void fill(net::UdpSocket& tx, const net::SocketAddress& dest, long count,
          std::span<const std::byte> payload) {
  for (long i = 0; i < count; ++i) tx.send_to(dest, payload);
}

struct DrainResult {
  std::uint64_t datagrams = 0;
  std::uint64_t batches = 0;  // receive calls that returned data
  std::uint64_t allocs = 0;
  std::uint64_t syscalls = 0;  // poll + recv* issued inside the timed region
  double seconds = 0;
  std::uint64_t sink = 0;  // defeats dead-code elimination
};

template <typename DrainRound>
DrainResult measure_rx(long rounds, long per_round, DrainRound&& drain_round) {
  net::UdpSocket rx = make_rx();
  net::UdpSocket idle_rx(0);  // stays empty: models the EAGAIN confirm
  net::UdpSocket tx(0);
  const auto dest = net::SocketAddress::loopback(rx.local_port());
  std::vector<std::byte> payload(kPayloadBytes, std::byte{0x5a});

  // Warm-up round: socket pool + scratch buffers reach steady state
  // before allocation counting starts.
  fill(tx, dest, per_round, payload);
  wait_readable(rx);
  DrainResult warm;
  drain_round(rx, idle_rx, per_round, warm);

  DrainResult r;
  double seconds = 0;
  for (long round = 0; round < rounds; ++round) {
    fill(tx, dest, per_round, payload);
    wait_readable(rx);
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    drain_round(rx, idle_rx, per_round, r);
    const auto t1 = std::chrono::steady_clock::now();
    r.allocs += g_allocs.load(std::memory_order_relaxed) - allocs0;
    seconds += std::chrono::duration<double>(t1 - t0).count();
  }
  r.seconds = seconds;
  return r;
}

// (a) The pre-batching per-datagram wake cycle (see the header comment):
// poll wake, recvfrom, EAGAIN-confirming recvfrom, fresh vector, arrival
// stamp + timer-deadline clock reads — all per datagram. This is what
// the old loop paid for every heartbeat arriving at its own pace.
void drain_legacy(net::UdpSocket& rx, net::UdpSocket& idle_rx, long expect,
                  DrainResult& r) {
  long got = 0;
  int idle = 0;
  while (got < expect && idle < 3) {
    wait_readable(rx);  // the per-datagram poll() wake
    ++r.syscalls;
    const auto* d = rx.receive();
    ++r.syscalls;
    if (d == nullptr) {
      ++idle;
      continue;
    }
    idle = 0;
    const std::vector<std::byte> copy(d->data.begin(), d->data.end());
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);  // arrival stamp
    r.sink ^= static_cast<std::uint64_t>(copy[0]) ^
              static_cast<std::uint64_t>(ts.tv_nsec);
    (void)idle_rx.receive();  // the drain loop's EAGAIN confirm
    ++r.syscalls;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);  // timer-deadline recompute
    r.sink ^= static_cast<std::uint64_t>(ts.tv_nsec);
    ++got;
    ++r.batches;
  }
  r.datagrams += static_cast<std::uint64_t>(got);
}

// (b) The same recipe when a burst is already queued: one poll wake for
// the whole burst, then recvfrom + fresh vector + clock read each.
void drain_legacy_burst(net::UdpSocket& rx, net::UdpSocket&, long expect,
                        DrainResult& r) {
  long got = 0;
  int idle = 0;
  wait_readable(rx);
  ++r.syscalls;
  while (got < expect && idle < 3) {
    const auto* d = rx.receive();
    ++r.syscalls;
    if (d == nullptr) {
      ++idle;
      wait_readable(rx);
      ++r.syscalls;
      continue;
    }
    idle = 0;
    const std::vector<std::byte> copy(d->data.begin(), d->data.end());
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    r.sink ^= static_cast<std::uint64_t>(copy[0]) ^
              static_cast<std::uint64_t>(ts.tv_nsec);
    ++got;
    ++r.batches;
  }
  r.datagrams += static_cast<std::uint64_t>(got);
}

// (c) The repaired per-datagram path: still one syscall each, but no
// allocation and no per-datagram clock read.
void drain_single(net::UdpSocket& rx, net::UdpSocket&, long expect,
                  DrainResult& r) {
  long got = 0;
  int idle = 0;
  wait_readable(rx);
  ++r.syscalls;
  while (got < expect && idle < 3) {
    const auto* d = rx.receive();
    ++r.syscalls;
    if (d == nullptr) {
      ++idle;
      wait_readable(rx);
      ++r.syscalls;
      continue;
    }
    idle = 0;
    r.sink ^= static_cast<std::uint64_t>(d->data[0]);
    ++got;
    ++r.batches;
  }
  r.datagrams += static_cast<std::uint64_t>(got);
}

// (d) The batched path: one poll wake, then recvmmsg into the socket
// pool until the burst is drained.
void drain_batched(net::UdpSocket& rx, net::UdpSocket&, long expect,
                   DrainResult& r) {
  long got = 0;
  int idle = 0;
  wait_readable(rx);
  ++r.syscalls;
  while (got < expect && idle < 3) {
    const auto batch = rx.receive_batch();
    ++r.syscalls;
    if (batch.empty()) {
      ++idle;
      wait_readable(rx);
      ++r.syscalls;
      continue;
    }
    idle = 0;
    for (const auto& item : batch) r.sink ^= static_cast<std::uint64_t>(item.data[0]);
    got += static_cast<long>(batch.size());
    ++r.batches;
  }
  r.datagrams += static_cast<std::uint64_t>(got);
}

template <typename SendRound>
DrainResult measure_tx(long rounds, long fanout, SendRound&& send_round) {
  // A handful of live receivers absorb the fan-out (their buffers may
  // overflow — the kernel drops silently, senders are unaffected).
  std::vector<net::UdpSocket> receivers;
  std::vector<net::SocketAddress> dests;
  for (int i = 0; i < 8; ++i) receivers.push_back(make_rx());
  for (long i = 0; i < fanout; ++i) {
    dests.push_back(
        net::SocketAddress::loopback(receivers[i % receivers.size()].local_port()));
  }
  net::UdpSocket tx(0);
  std::vector<std::byte> payload(kPayloadBytes, std::byte{0xa5});

  send_round(tx, dests, payload);  // warm-up

  DrainResult r;
  double seconds = 0;
  for (long round = 0; round < rounds; ++round) {
    for (auto& rx : receivers) {
      while (!rx.receive_batch().empty()) {  // keep buffers from saturating
      }
    }
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    r.syscalls += send_round(tx, dests, payload);
    const auto t1 = std::chrono::steady_clock::now();
    r.allocs += g_allocs.load(std::memory_order_relaxed) - allocs0;
    seconds += std::chrono::duration<double>(t1 - t0).count();
    r.datagrams += static_cast<std::uint64_t>(dests.size());
    ++r.batches;
  }
  r.seconds = seconds;
  return r;
}

std::string row_label(const char* s) { return s; }

}  // namespace

int main() {
  const long rounds = env_long("FD_BENCH_HOTPATH_ROUNDS", 200);
  const long per_round = env_long("FD_BENCH_HOTPATH_DATAGRAMS", 192);
  const long fanout = env_long("FD_BENCH_HOTPATH_FANOUT", 256);

  std::cout << "net_hotpath\n"
            << "batched (recvmmsg/sendmmsg) vs per-datagram UDP hot path\n"
            << "rounds=" << rounds << "  burst=" << per_round
            << "  fanout=" << fanout << "  payload_bytes=" << kPayloadBytes
            << "  batch_syscalls="
            << (net::UdpSocket::kBatchSyscalls ? "yes" : "no (portable)")
            << "\n\n";

  const auto rx_legacy = measure_rx(rounds, per_round, drain_legacy);
  const auto rx_legacy_burst = measure_rx(rounds, per_round, drain_legacy_burst);
  const auto rx_single = measure_rx(rounds, per_round, drain_single);
  const auto rx_batched = measure_rx(rounds, per_round, drain_batched);
  const auto tx_single = measure_tx(
      rounds, fanout,
      [](net::UdpSocket& tx, const std::vector<net::SocketAddress>& dests,
         std::span<const std::byte> payload) -> std::uint64_t {
        for (const auto& d : dests) tx.send_to(d, payload);
        return dests.size();  // one sendto each
      });
  const auto tx_batched = measure_tx(
      rounds, fanout,
      [](net::UdpSocket& tx, const std::vector<net::SocketAddress>& dests,
         std::span<const std::byte> payload) -> std::uint64_t {
        tx.send_batch(dests, payload);
        // one sendmmsg per kBatchMax chunk
        return (dests.size() + net::UdpSocket::kBatchMax - 1) /
               net::UdpSocket::kBatchMax;
      });

  const auto rate = [](const DrainResult& r) {
    return r.seconds > 0 ? static_cast<double>(r.datagrams) / r.seconds : 0.0;
  };
  const double legacy_rate = rate(rx_legacy);
  const double tx_single_rate = rate(tx_single);

  const auto per_dgram = [](const DrainResult& r, std::uint64_t what) {
    return r.datagrams > 0
               ? static_cast<double>(what) / static_cast<double>(r.datagrams)
               : 0.0;
  };

  Table table({"path", "datagrams", "seconds", "per_s", "speedup",
               "allocs_per_dgram", "syscalls_per_dgram", "mean_batch"});
  const auto add = [&](const char* name, const DrainResult& r, double baseline) {
    const double per_s = rate(r);
    table.add_row(
        {row_label(name), std::to_string(r.datagrams), Table::num(r.seconds, 4),
         Table::num(per_s, 0),
         Table::num(baseline > 0 ? per_s / baseline : 0.0, 2),
         Table::num(per_dgram(r, r.allocs), 4),
         Table::num(per_dgram(r, r.syscalls), 3),
         Table::num(r.batches > 0 ? static_cast<double>(r.datagrams) /
                                        static_cast<double>(r.batches)
                                  : 0.0,
                    1)});
  };
  add("rx_legacy", rx_legacy, legacy_rate);
  add("rx_legacy_burst", rx_legacy_burst, legacy_rate);
  add("rx_single", rx_single, legacy_rate);
  add("rx_batched", rx_batched, legacy_rate);
  add("tx_single", tx_single, tx_single_rate);
  add("tx_batched", tx_batched, tx_single_rate);
  bench::emit(table);
  bench::emit_json("net_hotpath", table);

  const double batched_speedup =
      legacy_rate > 0 ? rate(rx_batched) / legacy_rate : 0.0;
  const double mean_batch =
      rx_batched.batches > 0 ? static_cast<double>(rx_batched.datagrams) /
                                   static_cast<double>(rx_batched.batches)
                             : 0.0;
  const double batched_allocs = per_dgram(rx_batched, rx_batched.allocs);
  const double legacy_syscalls = per_dgram(rx_legacy, rx_legacy.syscalls);
  const double batched_syscalls = per_dgram(rx_batched, rx_batched.syscalls);
  const double syscall_reduction =
      batched_syscalls > 0 ? legacy_syscalls / batched_syscalls : 0.0;
  std::cout << "\nAcceptance: batched RX " << Table::num(batched_speedup, 2)
            << "x vs legacy per-datagram baseline at mean batch "
            << Table::num(mean_batch, 1) << " ("
            << Table::num(batched_allocs, 4)
            << " allocs/datagram steady-state; target >=3x at batch >=16"
            << (net::UdpSocket::kBatchSyscalls
                    ? ")"
                    : "; informational on the portable fallback)")
            << "\n"
            << "Syscalls/datagram: " << Table::num(legacy_syscalls, 2) << " -> "
            << Table::num(batched_syscalls, 3) << " ("
            << Table::num(syscall_reduction, 1)
            << "x fewer). The throughput ratio scales with the host's"
               " per-syscall cost: it clears 3x where syscall entry costs"
               " >=~0.5us (KPTI/retpoline hosts); on fast-syscall hosts the"
               " per-message kernel work dominates and the syscall-reduction"
               " column is the hardware-independent reading.\n";
  // The sink values keep the compilers honest; print them so the work
  // cannot be elided.
  std::cout << "checksum="
            << (rx_legacy.sink ^ rx_legacy_burst.sink ^ rx_single.sink ^ rx_batched.sink) << "\n";
  return 0;
}

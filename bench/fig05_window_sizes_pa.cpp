// Figure 5: effect of the 2W-FD window sizes on query accuracy
// probability P_A vs detection time T_D (WAN scenario).

#include <iostream>

#include "bench_common.hpp"

using namespace twfd;

int main() {
  const auto& trace = bench::wan_trace();
  bench::print_header("fig05_window_sizes_pa",
                      "Figure 5 (P_A vs T_D, window sizes, WAN)", trace);

  const std::pair<std::size_t, std::size_t> configs[] = {
      {1, 1},     {1, 100},    {1, 1000},      {1, 10000},
      {10, 1000}, {100, 1000}, {1000, 1000},   {10000, 10000},
  };

  Table table({"windows", "margin_ms", "TD_s", "PA", "one_minus_PA"});
  for (const auto& [w_short, w_long] : configs) {
    for (int margin_ms : bench::margin_sweep_ms()) {
      const auto spec = core::DetectorSpec::two_window(
          w_short, w_long, ticks_from_ms(margin_ms));
      const auto p = bench::eval_spec(spec, trace);
      table.add_row({spec.family_name(), std::to_string(margin_ms),
                     Table::num(p.td_s, 4), Table::num(p.pa, 8),
                     Table::sci(1.0 - p.pa, 4)});
    }
  }
  bench::emit(table);

  std::cout << "\nExpected shape: P_A improves with T_D for every"
               " configuration; (1, 1000) and (1, 10000) dominate"
               " (Section IV-C1).\n";
  return 0;
}

// Figure 12 (referenced in Section V-C): impact of the required mistake
// duration T_M^U on Delta_i and Delta_to. A small T_M^U forces frequent
// heartbeats (mistakes must be corrected quickly); once the mistake-rate
// constraint dominates, the curves flatten.

#include <iostream>

#include "bench_common.hpp"
#include "config/qos_config.hpp"

using namespace twfd;

int main() {
  std::cout << "fig12_vary_tm\nreproduces: Figure 12 (Delta_i, Delta_to vs T_M^U)\n";
  const config::NetworkBehaviour net{0.01, 1e-4};
  std::cout << "network: p_L=0.01  V(D)=1e-4 s^2\n"
            << "fixed: T_D^U=1 s, T_MR^U=1e-4 /s\n\n";

  Table table({"TM_U_s", "Delta_i_s", "Delta_to_s", "step1_cap_s"});
  for (double tm : {0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.5, 3.0, 6.0, 12.0, 25.0, 50.0}) {
    const config::QosRequirements qos{1.0, 1e-4, tm};
    const auto cfg = config::chen_configure(qos, net);
    const double tm2 = tm * tm;
    const double cap = (1 - net.loss_probability) * tm2 /
                       (net.delay_variance_s2 + tm2) * tm;
    table.add_row({Table::num(tm, 2),
                   cfg.feasible ? Table::num(cfg.interval_s, 5) : "infeasible",
                   cfg.feasible ? Table::num(cfg.margin_s, 5) : "-",
                   Table::num(cap, 5)});
  }
  bench::emit(table);

  std::cout << "\nExpected shape: Delta_i grows with T_M^U while the Step-1"
               " cap binds, then flattens once the T_MR^U constraint"
               " dominates; Delta_to mirrors it (T_D^U is fixed).\n";
  return 0;
}

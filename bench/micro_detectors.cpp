// Engineering micro-benchmarks (google-benchmark): per-heartbeat cost of
// each detector and end-to-end replay throughput of the QoS evaluator.
// Not a paper figure — documents that every on_heartbeat is O(1) and that
// window size does not affect cost (the claim behind using a 10^4-sample
// window freely).

#include <benchmark/benchmark.h>

#include <memory>

#include "core/factory.hpp"
#include "qos/evaluator.hpp"
#include "trace/scenario.hpp"

namespace {

using namespace twfd;

constexpr Tick kI = ticks_from_ms(100);

void run_detector(benchmark::State& state, const core::DetectorSpec& spec) {
  auto d = core::make_detector(spec, kI);
  std::int64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    d->on_heartbeat(seq, seq * kI, seq * kI + (seq % 13) * 1000);
    benchmark::DoNotOptimize(d->suspect_after());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Chen_w1(benchmark::State& s) {
  run_detector(s, core::DetectorSpec::chen(1, ticks_from_ms(100)));
}
void BM_Chen_w1000(benchmark::State& s) {
  run_detector(s, core::DetectorSpec::chen(1000, ticks_from_ms(100)));
}
void BM_Chen_w10000(benchmark::State& s) {
  run_detector(s, core::DetectorSpec::chen(10000, ticks_from_ms(100)));
}
void BM_Bertier(benchmark::State& s) { run_detector(s, core::DetectorSpec::bertier()); }
void BM_Phi(benchmark::State& s) { run_detector(s, core::DetectorSpec::phi(2.0)); }
void BM_Ed(benchmark::State& s) { run_detector(s, core::DetectorSpec::ed(0.99)); }
void BM_TwoWindow(benchmark::State& s) {
  run_detector(s, core::DetectorSpec::two_window(1, 1000, ticks_from_ms(100)));
}
void BM_MultiWindow4(benchmark::State& s) {
  run_detector(s, core::DetectorSpec::multi_window({1, 10, 100, 1000},
                                                   ticks_from_ms(100)));
}

BENCHMARK(BM_Chen_w1);
BENCHMARK(BM_Chen_w1000);
BENCHMARK(BM_Chen_w10000);
BENCHMARK(BM_Bertier);
BENCHMARK(BM_Phi);
BENCHMARK(BM_Ed);
BENCHMARK(BM_TwoWindow);
BENCHMARK(BM_MultiWindow4);

const trace::Trace& bench_trace() {
  static const trace::Trace t = [] {
    trace::WanScenario::Params p;
    p.samples = 200'000;
    return trace::WanScenario(p).build();
  }();
  return t;
}

void BM_EvaluatorReplay(benchmark::State& state) {
  const auto& t = bench_trace();
  auto d = core::make_detector(
      core::DetectorSpec::two_window(1, 1000, ticks_from_ms(115)), t.interval());
  for (auto _ : state) {
    const auto r = qos::evaluate(*d, t);
    benchmark::DoNotOptimize(r.metrics.mistake_count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_EvaluatorReplay);

void BM_TraceGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    trace::WanScenario::Params p;
    p.samples = 100'000;
    p.seed = ++seed;
    const auto t = trace::WanScenario(p).build();
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_TraceGeneration);

}  // namespace

BENCHMARK_MAIN();

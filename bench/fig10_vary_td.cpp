// Figure 10: impact of the required detection time T_D^U on the
// configured heartbeat interval Delta_i and timeout margin Delta_to
// (Chen's configuration procedure, Section V-A / V-B1). Both should grow
// roughly linearly, since T_D = Delta_i + Delta_to.

#include <iostream>

#include "bench_common.hpp"
#include "config/qos_config.hpp"

using namespace twfd;

int main() {
  std::cout << "fig10_vary_td\nreproduces: Figure 10 (Delta_i, Delta_to vs T_D^U)\n";
  const config::NetworkBehaviour net{0.01, 1e-4};
  std::cout << "network: p_L=0.01  V(D)=1e-4 s^2\n"
            << "fixed: T_MR^U=1e-4 /s (one mistake per ~2.8h), T_M^U=10 s\n\n";

  Table table({"TD_U_s", "Delta_i_s", "Delta_to_s", "predicted_TMR_per_s"});
  for (double td = 0.2; td <= 6.01; td += 0.2) {
    const config::QosRequirements qos{td, 1e-4, 10.0};
    const auto cfg = config::chen_configure(qos, net);
    table.add_row({Table::num(td, 2),
                   cfg.feasible ? Table::num(cfg.interval_s, 4) : "infeasible",
                   cfg.feasible ? Table::num(cfg.margin_s, 4) : "-",
                   cfg.feasible ? Table::sci(cfg.predicted_mistake_rate_per_s, 3)
                                : "-"});
  }
  bench::emit(table);

  std::cout << "\nExpected shape: Delta_i and Delta_to both grow ~linearly"
               " with T_D^U (Figure 10); their sum is exactly T_D^U.\n";
  return 0;
}

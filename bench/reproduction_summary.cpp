// Reproduction at a glance: programmatically checks every headline claim
// of the paper against the synthetic scenarios and prints PASS/FAIL.
// Exits non-zero if any reproduction target fails, so CI can gate on it.

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "config/qos_config.hpp"
#include "qos/intervals.hpp"
#include "qos/mistake_set.hpp"
#include "qos/subsample.hpp"

using namespace twfd;

namespace {

int failures = 0;

void check(const std::string& what, bool ok) {
  std::cout << (ok ? "  [PASS] " : "  [FAIL] ") << what << "\n";
  if (!ok) ++failures;
}

qos::EvalResult run(const core::DetectorSpec& spec, const trace::Trace& t,
                    bool record = false) {
  auto d = core::make_detector(spec, t.interval());
  qos::EvalOptions opt;
  opt.record_mistakes = record;
  return qos::evaluate(*d, t, opt);
}

}  // namespace

int main() {
  const auto& wan = bench::wan_trace();
  const auto& lan = bench::lan_trace();
  std::cout << "Reproduction summary (WAN " << wan.size() << " samples, LAN "
            << lan.size() << " samples)\n\n";

  // --- Claim 1 (Fig 4/5): small short window + large long window wins. ---
  {
    const Tick m = ticks_from_ms(25);
    const auto best = run(core::DetectorSpec::two_window(1, 1000, m), wan).metrics;
    const auto short_only = run(core::DetectorSpec::two_window(1, 1, m), wan).metrics;
    const auto long_only =
        run(core::DetectorSpec::two_window(1000, 1000, m), wan).metrics;
    check("Fig4/5: (1,1000) beats (1,1) and (1000,1000) in mistakes",
          best.mistake_count <= short_only.mistake_count &&
              best.mistake_count < long_only.mistake_count);
    const auto big = run(core::DetectorSpec::two_window(1, 10000, m), wan).metrics;
    check("Fig4/5: long-window gains saturate beyond 1000 (within 5%)",
          std::abs(static_cast<double>(big.mistake_count) -
                   static_cast<double>(best.mistake_count)) <
              0.05 * static_cast<double>(best.mistake_count) + 10.0);
  }

  // --- Claim 2 (Fig 6/7): 2W-FD dominates its family and Bertier. -------
  {
    for (int m_ms : {25, 115, 400}) {
      const Tick m = ticks_from_ms(m_ms);
      const auto tw = run(core::DetectorSpec::two_window(1, 1000, m), wan).metrics;
      const auto c1 = run(core::DetectorSpec::chen(1, m), wan).metrics;
      const auto c1000 = run(core::DetectorSpec::chen(1000, m), wan).metrics;
      check("Fig6: 2W accuracy >= both Chens at margin " + std::to_string(m_ms) +
                "ms",
            tw.query_accuracy >= c1.query_accuracy - 1e-9 &&
                tw.query_accuracy >= c1000.query_accuracy - 1e-9);
    }
    const auto bertier = run(core::DetectorSpec::bertier(1000), wan).metrics;
    // 2W tuned to Bertier's natural operating point must beat it.
    const double x =
        bench::calibrate_to_td(bench::Family::TwoWindow, bertier.detection_time_s,
                               wan);
    const auto tw = run(bench::spec_for(bench::Family::TwoWindow, x), wan).metrics;
    check("Fig6: 2W beats Bertier at Bertier's own T_D",
          tw.mistake_rate_per_s < bertier.mistake_rate_per_s);
  }

  // --- Claim 3 (Fig 6, aggressive range): 2W beats phi at matched T_D. --
  {
    constexpr double kTd = 0.215;
    const double xw = bench::calibrate_to_td(bench::Family::TwoWindow, kTd, wan);
    const double xp = bench::calibrate_to_td(bench::Family::Phi, kTd, wan);
    const auto tw = run(bench::spec_for(bench::Family::TwoWindow, xw), wan).metrics;
    const auto phi = run(bench::spec_for(bench::Family::Phi, xp), wan).metrics;
    check("Fig6: 2W mistake rate < phi at T_D=215ms",
          tw.mistake_rate_per_s < phi.mistake_rate_per_s);
  }

  // --- Claim 4 (Eq 13 / Fig 9): exact pointwise intersection. -----------
  {
    const Tick m = ticks_from_ms(65);
    const auto r1 = run(core::DetectorSpec::chen(1, m), wan, true);
    const auto r2 = run(core::DetectorSpec::chen(1000, m), wan, true);
    const auto rw = run(core::DetectorSpec::two_window(1, 1000, m), wan, true);
    const auto i1 = qos::to_intervals(r1.mistakes);
    const auto i2 = qos::to_intervals(r2.mistakes);
    const auto iw = qos::to_intervals(rw.mistakes);
    check("Eq13: suspicion intervals of 2W == Chen1 ^ Chen1000 (exact)",
          iw == qos::intersect_intervals(i1, i2));
    const auto s1 = qos::MistakeSet::from_records(r1.mistakes);
    const auto s2 = qos::MistakeSet::from_records(r2.mistakes);
    const auto sw = qos::MistakeSet::from_records(rw.mistakes);
    check("Eq13: identity sandwich C1^C2 <= 2W <= C1uC2",
          s1.intersect(s2).is_subset_of(sw) && sw.is_subset_of(s1.unite(s2)));
  }

  // --- Claim 5 (Fig 8): 2W wins overall; Burst gap is the largest. ------
  {
    constexpr double kTd = 0.215;
    auto mistakes_by_period = [&](bench::Family fam) {
      const double x = bench::calibrate_to_td(fam, kTd, wan);
      const auto r = run(bench::spec_for(fam, x), wan, true);
      return qos::count_mistakes_by_period(r.mistakes, bench::wan_periods());
    };
    const auto tw = mistakes_by_period(bench::Family::TwoWindow);
    const auto c1000 = mistakes_by_period(bench::Family::Chen1000);
    std::size_t tw_total = 0, c_total = 0;
    for (std::size_t i = 0; i < tw.size(); ++i) {
      tw_total += tw[i].mistakes;
      c_total += c1000[i].mistakes;
    }
    check("Fig8: 2W total mistakes <= Chen(1000) at T_D=215ms", tw_total <= c_total);
  }

  // --- Claim 6 (Figs 10-12): configuration procedure shapes. ------------
  {
    const config::NetworkBehaviour net{0.01, 1e-4};
    const auto a = config::chen_configure({0.5, 1e-4, 10.0}, net);
    const auto b = config::chen_configure({2.0, 1e-4, 10.0}, net);
    check("Fig10: Delta_i and Delta_to grow with T_D^U",
          b.interval_s > a.interval_s && b.margin_s > a.margin_s);
    const auto strict = config::chen_configure({1.0, 1e-7, 2.0}, net);
    const auto loose = config::chen_configure({1.0, 1e-2, 2.0}, net);
    check("Fig11: stricter T_MR^U shrinks Delta_i",
          strict.interval_s < loose.interval_s);
    const auto capped = config::chen_configure({1.0, 1e-4, 0.05}, net);
    const auto uncapped = config::chen_configure({1.0, 1e-4, 10.0}, net);
    check("Fig12: small T_M^U caps Delta_i", capped.interval_s < uncapped.interval_s);
  }

  // --- Claim 7 (Section V-C): sharing preserves T_D, reduces load. ------
  {
    const config::NetworkBehaviour net{0.02, 1e-4};
    std::vector<config::AppRequest> apps = {{"strict", {0.5, 1e-4, 2.0}},
                                            {"relaxed", {4.0, 1e-2, 20.0}}};
    const auto c = config::combine_requirements(apps, net);
    check("SecV: combined configuration feasible", c.feasible);
    check("SecV: shared load < dedicated load",
          c.shared_msgs_per_s < c.dedicated_msgs_per_s);
    check("SecV: adapted app gains margin (T_D preserved)",
          c.apps[1].shared_margin_s > c.apps[1].dedicated.margin_s &&
              std::abs(c.shared_interval_s + c.apps[1].shared_margin_s - 4.0) <
                  1e-9);
  }

  std::cout << "\n" << (failures == 0 ? "ALL REPRODUCTION TARGETS PASS"
                                      : "SOME REPRODUCTION TARGETS FAILED")
            << " (" << failures << " failures)\n";
  return failures == 0 ? 0 : 1;
}

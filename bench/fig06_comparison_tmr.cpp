// Figure 6: mistake rate T_MR vs detection time T_D for all five
// detector families on the WAN scenario. Chen uses windows 1 and 1000,
// the accrual detectors and Bertier use 1000, 2W-FD uses (1, 1000) —
// exactly the paper's configuration (Section IV-C2). Bertier has no
// tuning parameter and appears as a single point.

#include <iostream>

#include "bench_common.hpp"

using namespace twfd;

int main() {
  const auto& trace = bench::wan_trace();
  bench::print_header("fig06_comparison_tmr",
                      "Figure 6 (T_MR vs T_D, all detectors, WAN)", trace);

  Table table({"detector", "tuning", "TD_s", "TMR_per_s", "mistakes"});

  const bench::Family families[] = {bench::Family::Chen1, bench::Family::Chen1000,
                                    bench::Family::TwoWindow};
  for (const auto family : families) {
    for (int margin_ms : bench::margin_sweep_ms()) {
      const auto p =
          bench::eval_spec(bench::spec_for(family, margin_ms * 1e-3), trace);
      table.add_row({bench::family_label(family),
                     "m=" + std::to_string(margin_ms) + "ms", Table::num(p.td_s, 4),
                     Table::sci(p.tmr_per_s, 4), std::to_string(p.mistakes)});
    }
  }
  for (double phi : bench::phi_sweep()) {
    const auto p = bench::eval_spec(bench::spec_for(bench::Family::Phi, phi), trace);
    table.add_row({bench::family_label(bench::Family::Phi),
                   "Phi=" + Table::num(phi, 2), Table::num(p.td_s, 4),
                   Table::sci(p.tmr_per_s, 4), std::to_string(p.mistakes)});
  }
  for (double k : bench::ed_k_sweep()) {
    const auto p = bench::eval_spec(bench::spec_for(bench::Family::Ed, k), trace);
    table.add_row({bench::family_label(bench::Family::Ed), "k=" + Table::num(k, 2),
                   Table::num(p.td_s, 4), Table::sci(p.tmr_per_s, 4),
                   std::to_string(p.mistakes)});
  }
  {
    const auto p = bench::eval_spec(core::DetectorSpec::bertier(1000), trace);
    table.add_row({"bertier", "(none)", Table::num(p.td_s, 4),
                   Table::sci(p.tmr_per_s, 4), std::to_string(p.mistakes)});
  }
  bench::emit(table);

  std::cout << "\nExpected shape: 2w(1,1000) has the lowest T_MR at every"
               " T_D, in aggressive and conservative ranges alike"
               " (Section IV-C2).\n";
  return 0;
}

// Engineering bench: EVENT fan-out throughput of the FDaaS wire API.
//
// C clients connect to an FdaasServer over loopback TCP, each holding
// one subscription; the bench injects Suspect/Trust transitions through
// the server's real push path (routing, per-session send queues, flush)
// and measures end-to-end delivered events/sec — from first injection
// until every client has decoded its full share. Two sweeps: client
// count at a fixed shard count, then shard count at a fixed client
// count (the API thread is the sole poll_events consumer, so shard
// count mainly probes subscribe-path fan-in, not delivery).
//
// Knobs: FD_BENCH_FANOUT_EVENTS (events per client, default 2000),
// FD_BENCH_FANOUT_TIMEOUT_S (per-run delivery deadline, default 30).
//
// Emits BENCH_fdaas_fanout.json via bench::emit_json.

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "api/fdaas_server.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "shard/sharded_monitor_service.hpp"

using namespace twfd;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atol(v);
}

// Feasible under the service's default assumed network (same tuple the
// shard tests use): T_D <= 4s, rate <= 1e-3/s, T_M <= 4s.
constexpr config::QosRequirements kQos{4.0, 1e-3, 4.0};

struct ClientSlot {
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> sub{0};
  std::atomic<bool> ready{false};
};

struct RunResult {
  std::size_t clients = 0;
  std::size_t shards = 0;
  std::uint64_t events = 0;
  double elapsed_ms = 0;
  double events_per_sec = 0;
  std::uint64_t slow_evictions = 0;
};

RunResult run(std::size_t clients, std::size_t shards, long events_per_client,
              long timeout_s) {
  shard::ShardedMonitorService service({.shards = shards});
  service.start();
  api::FdaasServer server(service, {});
  server.start();
  const auto api_addr = net::SocketAddress::loopback(server.port());

  std::vector<std::unique_ptr<ClientSlot>> slots;
  for (std::size_t i = 0; i < clients; ++i) {
    slots.push_back(std::make_unique<ClientSlot>());
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      ClientSlot& slot = *slots[i];
      api::Client client(api_addr);
      client.set_event_handler([&slot](const api::EventMsg&) {
        slot.received.fetch_add(1, std::memory_order_relaxed);
      });
      // Dead peers: nothing heartbeats them, so the only events flowing
      // are the injected ones and the bench measures pure fan-out.
      const auto peer = net::SocketAddress::parse("10.255.0.1",
                                                  static_cast<std::uint16_t>(i + 1));
      slot.sub.store(client.subscribe(peer, i + 1, "bench", kQos),
                     std::memory_order_release);
      slot.ready.store(true, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        if (!client.pump_for(ticks_from_ms(20))) return;
      }
    });
  }

  for (auto& slot : slots) {
    while (!slot->ready.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

  SteadyClock clock;
  const Tick t0 = clock.now();
  for (long round = 0; round < events_per_client; ++round) {
    std::vector<shard::ShardedMonitorService::StatusEvent> batch;
    batch.reserve(clients);
    const auto output =
        round % 2 == 0 ? detect::Output::Suspect : detect::Output::Trust;
    for (auto& slot : slots) {
      batch.push_back({slot->sub.load(std::memory_order_acquire), "bench",
                       output, clock.now(), 0});
    }
    server.inject_events(std::move(batch));
  }
  const std::uint64_t target = static_cast<std::uint64_t>(events_per_client);
  const Tick deadline = clock.now() + ticks_from_sec(timeout_s);
  bool all_delivered = false;
  while (!all_delivered && clock.now() < deadline) {
    all_delivered = true;
    for (auto& slot : slots) {
      if (slot->received.load(std::memory_order_acquire) < target) {
        all_delivered = false;
        break;
      }
    }
    if (!all_delivered) std::this_thread::yield();
  }
  const Tick t1 = clock.now();

  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const auto stats = server.stats();
  server.stop();
  service.stop();

  RunResult r;
  r.clients = clients;
  r.shards = shards;
  for (auto& slot : slots) {
    r.events += slot->received.load(std::memory_order_acquire);
  }
  r.elapsed_ms = static_cast<double>(t1 - t0) / 1e6;
  r.events_per_sec =
      r.elapsed_ms > 0 ? static_cast<double>(r.events) * 1e3 / r.elapsed_ms : 0;
  r.slow_evictions = stats.slow_evictions;
  if (!all_delivered) {
    std::cerr << "warning: delivery deadline hit at clients=" << clients
              << " shards=" << shards << " (received " << r.events << "/"
              << target * clients << ")\n";
  }
  return r;
}

}  // namespace

int main() {
  const long events_per_client = env_long("FD_BENCH_FANOUT_EVENTS", 2000);
  const long timeout_s = env_long("FD_BENCH_FANOUT_TIMEOUT_S", 30);

  std::cout << "fdaas_fanout: EVENT delivery throughput over loopback TCP\n"
            << "events/client=" << events_per_client << "\n\n";

  std::vector<std::pair<std::size_t, std::size_t>> combos = {
      {1, 2}, {2, 2}, {4, 2}, {8, 2}, {16, 2},  // client sweep
      {8, 1}, {8, 4},                           // shard sweep (8,2 above)
  };

  Table table({"clients", "shards", "events", "elapsed_ms", "events_per_sec",
               "slow_evictions"});
  for (const auto& [clients, shards] : combos) {
    const RunResult r = run(clients, shards, events_per_client, timeout_s);
    table.add_row({std::to_string(r.clients), std::to_string(r.shards),
                   std::to_string(r.events), Table::num(r.elapsed_ms, 1),
                   Table::num(r.events_per_sec, 0),
                   std::to_string(r.slow_evictions)});
  }
  bench::emit(table);
  bench::emit_json("fdaas_fanout", table);
  return 0;
}

// Figure 11: impact of the required mistake rate T_MR^U on Delta_i and
// Delta_to. As the requirement tightens (fewer mistakes allowed), Delta_i
// shrinks and Delta_to grows; once the mistake-duration cap of Step 1
// binds, both saturate.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "config/qos_config.hpp"

using namespace twfd;

int main() {
  std::cout << "fig11_vary_tmr\nreproduces: Figure 11 (Delta_i, Delta_to vs T_MR^U)\n";
  const config::NetworkBehaviour net{0.01, 1e-4};
  std::cout << "network: p_L=0.01  V(D)=1e-4 s^2\n"
            << "fixed: T_D^U=1 s, T_M^U=2 s\n\n";

  Table table({"TMR_U_per_s", "recurrence_s", "Delta_i_s", "Delta_to_s"});
  // Sweep the allowed rate across 10 decades, strict to loose.
  for (double exp10 = -9.0; exp10 <= 0.01; exp10 += 0.5) {
    const double tmr = std::pow(10.0, exp10);
    const config::QosRequirements qos{1.0, tmr, 2.0};
    const auto cfg = config::chen_configure(qos, net);
    table.add_row({Table::sci(tmr, 2), Table::sci(1.0 / tmr, 2),
                   cfg.feasible ? Table::num(cfg.interval_s, 5) : "infeasible",
                   cfg.feasible ? Table::num(cfg.margin_s, 5) : "-"});
  }
  bench::emit(table);

  std::cout << "\nExpected shape: stricter T_MR^U (smaller rate / larger"
               " recurrence) -> smaller Delta_i, larger Delta_to; loose"
               " requirements saturate at the Step-1 cap (Figure 11).\n";
  return 0;
}

// Engineering bench: the timer core's per-op cost, wheel vs. legacy heap.
//
// The 2W-FD service moves one freshness timer per subscription on EVERY
// heartbeat, so reschedule — not schedule — is the number that bounds
// monitoring throughput at scale. For each armed-timer count N in
// {1k, 10k, 100k, 1M} (FD_BENCH_TIMER_COUNTS) the bench drives the same
// deterministic op sequence through net::TimerWheel and through
// net::LegacyTimerHeap (the pre-wheel binary-heap + std::map core, kept
// compiled behind TWFD_ENABLE_LEGACY_TIMER_HEAP for exactly this
// comparison):
//
//   schedule    arm N timers at LCG-spread deadlines over ~1 hour
//   reschedule  N push-out re-arms (the per-heartbeat hot path)
//   cancel      disarm every other timer (then re-arm, unmeasured)
//   fire        advance past the horizon and drain all N callbacks
//
// Reported per phase: ns/op (wall time / ops) and for schedule/reschedule
// allocs/op from a replacement global operator new — the steady-state
// claim is that the wheel's reschedule path allocates NOTHING, and the
// bench exits non-zero if it does (tools/ci_check.sh runs a tiny
// invocation for exactly that assertion, and greps the emitted
// BENCH_timer_hotpath.json for the ns_per_reschedule column).
//
// Knobs: FD_BENCH_TIMER_COUNTS (comma list, default "1000,10000,100000,
// 1000000").
//
// Emits BENCH_timer_hotpath.json via bench::emit_json.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "net/legacy_timer_heap.hpp"
#include "net/timer_wheel.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: every heap allocation in the process bumps g_allocs
// (aligned overloads included — the record slab allocates 64B-aligned).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, std::max(static_cast<std::size_t>(al), sizeof(void*)),
                     n ? n : 1) == 0) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace twfd;

namespace {

std::vector<std::size_t> env_timer_counts() {
  const char* v = std::getenv("FD_BENCH_TIMER_COUNTS");
  std::string spec = v != nullptr && *v != '\0' ? v : "1000,10000,100000,1000000";
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::atol(tok.c_str())));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1000, 10000, 100000, 1000000};
  return out;
}

// Deterministic deadline spread (same sequence for both impls).
struct Lcg {
  std::uint64_t s = 0x2545F4914F6CDD1DULL;
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 17;
  }
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Adapters giving both timer cores one driving surface. Both start their
// clock at 0 and see identical (deadline, op) sequences.
struct WheelDriver {
  static constexpr const char* kName = "wheel";
  TimerStats stats;
  net::TimerWheel core{0, &stats};

  TimerId schedule(Tick when, std::uint64_t* fired) {
    return core.schedule(when, InlineFunction([fired] { ++*fired; }));
  }
  bool reschedule(TimerId id, Tick when) { return core.reschedule(id, when); }
  bool cancel(TimerId id) { return core.cancel(id); }
  std::size_t fire_all(Tick horizon) {
    core.advance_to(horizon);
    InlineFunction fn;
    std::size_t n = 0;
    while (core.pop_due(fn)) {
      fn();
      fn.reset();
      ++n;
    }
    return n;
  }
};

struct HeapDriver {
  static constexpr const char* kName = "heap";
  TimerStats stats;
  net::LegacyTimerHeap core{&stats};

  TimerId schedule(Tick when, std::uint64_t* fired) {
    return core.schedule(when, [fired] { ++*fired; });
  }
  bool reschedule(TimerId id, Tick when) { return core.reschedule(id, when); }
  bool cancel(TimerId id) { return core.cancel(id); }
  std::size_t fire_all(Tick horizon) {
    std::function<void()> fn;
    std::size_t n = 0;
    while (core.pop_due(horizon, fn)) {
      fn();
      ++n;
    }
    return n;
  }
};

struct CaseResult {
  double ns_schedule = 0;
  double ns_reschedule = 0;
  double ns_cancel = 0;
  double ns_fire = 0;
  double allocs_schedule = 0;
  double allocs_reschedule = 0;
  std::size_t fired = 0;
};

template <typename Driver>
CaseResult run_case(std::size_t n_timers) {
  Driver d;
  Lcg lcg;
  std::uint64_t fired = 0;
  std::vector<TimerId> ids(n_timers);
  const Tick horizon_span = ticks_from_sec(3600);
  Tick max_deadline = 0;
  CaseResult res;

  // schedule: N arms at deadlines spread over ~1 hour.
  {
    std::vector<Tick> deadlines(n_timers);
    for (std::size_t i = 0; i < n_timers; ++i) {
      deadlines[i] = 1 + static_cast<Tick>(lcg.next() % static_cast<std::uint64_t>(
                                                            horizon_span));
      max_deadline = std::max(max_deadline, deadlines[i]);
    }
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const std::uint64_t t0 = now_ns();
    for (std::size_t i = 0; i < n_timers; ++i) {
      ids[i] = d.schedule(deadlines[i], &fired);
    }
    const std::uint64_t t1 = now_ns();
    const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
    res.ns_schedule = static_cast<double>(t1 - t0) / static_cast<double>(n_timers);
    res.allocs_schedule =
        static_cast<double>(a1 - a0) / static_cast<double>(n_timers);
  }

  // reschedule: N push-out re-arms (the per-heartbeat hot path).
  {
    std::vector<Tick> pushes(n_timers);
    for (std::size_t i = 0; i < n_timers; ++i) {
      pushes[i] = 1 + static_cast<Tick>(lcg.next() %
                                        static_cast<std::uint64_t>(ticks_from_ms(100)));
    }
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const std::uint64_t t0 = now_ns();
    for (std::size_t i = 0; i < n_timers; ++i) {
      d.reschedule(ids[i], max_deadline + pushes[i]);
    }
    const std::uint64_t t1 = now_ns();
    const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
    res.ns_reschedule =
        static_cast<double>(t1 - t0) / static_cast<double>(n_timers);
    res.allocs_reschedule =
        static_cast<double>(a1 - a0) / static_cast<double>(n_timers);
    max_deadline += ticks_from_ms(100);
  }

  // cancel: disarm every other timer...
  {
    const std::size_t ops = n_timers / 2;
    const std::uint64_t t0 = now_ns();
    for (std::size_t i = 0; i < n_timers; i += 2) d.cancel(ids[i]);
    const std::uint64_t t1 = now_ns();
    res.ns_cancel = ops == 0 ? 0
                             : static_cast<double>(t1 - t0) /
                                   static_cast<double>(ops);
  }
  // ...then re-arm them (unmeasured) so the fire phase drains all N.
  for (std::size_t i = 0; i < n_timers; i += 2) {
    ids[i] = d.schedule(max_deadline - static_cast<Tick>(i % 1024), &fired);
  }

  // fire: drain everything past the horizon (includes cascade cost).
  {
    const std::uint64_t t0 = now_ns();
    res.fired = d.fire_all(max_deadline + 1);
    const std::uint64_t t1 = now_ns();
    res.ns_fire = res.fired == 0 ? 0
                                 : static_cast<double>(t1 - t0) /
                                       static_cast<double>(res.fired);
  }
  if (res.fired != n_timers || fired != n_timers) {
    std::cerr << "timer_hotpath: " << Driver::kName << " fired " << res.fired
              << " of " << n_timers << " timers\n";
    std::exit(2);
  }
  return res;
}

}  // namespace

int main() {
  const auto counts = env_timer_counts();

  Table table({"impl", "timers", "ns_per_schedule", "ns_per_reschedule",
               "ns_per_cancel", "ns_per_fire", "allocs_per_schedule",
               "allocs_per_resched", "resched_speedup"});

  bool alloc_free = true;
  for (const std::size_t n : counts) {
    const CaseResult heap = run_case<HeapDriver>(n);
    const CaseResult wheel = run_case<WheelDriver>(n);
    const double speedup = wheel.ns_reschedule > 0.0
                               ? heap.ns_reschedule / wheel.ns_reschedule
                               : 0.0;
    table.add_row({"heap", std::to_string(n), Table::num(heap.ns_schedule, 1),
                   Table::num(heap.ns_reschedule, 1), Table::num(heap.ns_cancel, 1),
                   Table::num(heap.ns_fire, 1), Table::num(heap.allocs_schedule, 3),
                   Table::num(heap.allocs_reschedule, 3), "-"});
    table.add_row({"wheel", std::to_string(n), Table::num(wheel.ns_schedule, 1),
                   Table::num(wheel.ns_reschedule, 1),
                   Table::num(wheel.ns_cancel, 1), Table::num(wheel.ns_fire, 1),
                   Table::num(wheel.allocs_schedule, 3),
                   Table::num(wheel.allocs_reschedule, 3),
                   Table::num(speedup, 2)});
    if (wheel.allocs_reschedule != 0.0) alloc_free = false;
  }

  std::cout << "timer_hotpath: wheel vs legacy heap, per-op cost by armed-timer count\n";
  bench::emit(table);
  bench::emit_json("timer_hotpath", table);

  if (!alloc_free) {
    std::cerr << "timer_hotpath: FAIL — wheel reschedule allocated on the "
                 "steady-state path\n";
    return 1;
  }
  return 0;
}

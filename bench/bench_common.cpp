#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/assert.hpp"
#include "trace/trace_stats.hpp"

namespace twfd::bench {
namespace {

struct WanBundle {
  trace::Trace trace{"empty", 1};
  std::vector<trace::Period> periods;
};

const WanBundle& wan_bundle() {
  static const WanBundle bundle = [] {
    trace::WanScenario::Params p;
    p.samples = sample_count();
    trace::WanScenario wan(p);
    WanBundle b;
    b.trace = wan.build();
    b.periods = wan.periods();
    return b;
  }();
  return bundle;
}

}  // namespace

std::int64_t sample_count() {
  static const std::int64_t n = [] {
    if (const char* env = std::getenv("FD_BENCH_SAMPLES")) {
      const long long v = std::atoll(env);
      if (v > 0) return std::max<std::int64_t>(50'000, v);
    }
    return std::int64_t{1'000'000};
  }();
  return n;
}

const trace::Trace& wan_trace() { return wan_bundle().trace; }
const std::vector<trace::Period>& wan_periods() { return wan_bundle().periods; }

const trace::Trace& lan_trace() {
  static const trace::Trace t = [] {
    trace::LanScenario::Params p;
    p.samples = std::max<std::int64_t>(sample_count(), 200'000);
    return trace::LanScenario(p).build();
  }();
  return t;
}

SweepPoint eval_spec(const core::DetectorSpec& spec, const trace::Trace& trace) {
  auto detector = core::make_detector(spec, trace.interval());
  const auto r = qos::evaluate(*detector, trace);
  SweepPoint p;
  p.td_s = r.metrics.detection_time_s;
  p.tmr_per_s = r.metrics.mistake_rate_per_s;
  p.pa = r.metrics.query_accuracy;
  p.tm_s = r.metrics.mistake_duration_s;
  p.mistakes = r.metrics.mistake_count;
  return p;
}

const std::vector<int>& margin_sweep_ms() {
  static const std::vector<int> v = {10,  25,  45,  65,  90,  115, 150,
                                     200, 280, 400, 600, 900, 1400};
  return v;
}

const std::vector<double>& phi_sweep() {
  static const std::vector<double> v = {0.3, 0.6, 1.0, 1.5, 2.0, 3.0,
                                        4.0, 5.5, 7.0, 9.0, 11.0};
  return v;
}

const std::vector<double>& ed_k_sweep() {
  static const std::vector<double> v = {0.3, 0.6, 1.0, 1.5, 2.0, 3.0,
                                        4.0, 5.5, 7.0, 9.0, 11.0};
  return v;
}

core::DetectorSpec spec_for(Family family, double x) {
  switch (family) {
    case Family::Chen1:
      return core::DetectorSpec::chen(1, ticks_from_seconds(x));
    case Family::Chen1000:
      return core::DetectorSpec::chen(1000, ticks_from_seconds(x));
    case Family::TwoWindow:
      return core::DetectorSpec::two_window(1, 1000, ticks_from_seconds(x));
    case Family::Phi:
      return core::DetectorSpec::phi(x);
    case Family::Ed:
      return core::DetectorSpec::ed(1.0 - std::pow(10.0, -x));
  }
  TWFD_CHECK_MSG(false, "unreachable family");
  return {};
}

std::string family_label(Family family) {
  switch (family) {
    case Family::Chen1:
      return "chen(1)";
    case Family::Chen1000:
      return "chen(1000)";
    case Family::TwoWindow:
      return "2w(1,1000)";
    case Family::Phi:
      return "phi(1000)";
    case Family::Ed:
      return "ed(1000)";
  }
  return "?";
}

double calibrate_to_td(Family family, double target_td_s, const trace::Trace& trace) {
  // Calibrate on the FULL trace: for the accrual detectors the measured
  // T_D depends on regime composition (their horizons track the gap
  // distribution), so a stable-period prefix would systematically
  // under-estimate it.
  const trace::Trace& prefix = trace;

  double lo, hi;
  switch (family) {
    case Family::Chen1:
    case Family::Chen1000:
    case Family::TwoWindow:
      lo = 0.0;
      hi = 5.0;
      break;
    case Family::Phi:
    case Family::Ed:
      lo = 0.05;
      hi = 14.0;
      break;
  }

  auto td_at = [&](double x) { return eval_spec(spec_for(family, x), prefix).td_s; };

  double f_lo = td_at(lo) - target_td_s;
  if (f_lo >= 0) return lo;  // even the most aggressive tuning is slower
  double f_hi = td_at(hi) - target_td_s;
  if (f_hi <= 0) return hi;

  for (int i = 0; i < 24; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double f = td_at(mid) - target_td_s;
    if (std::fabs(f) < 1e-4) return mid;
    if ((f < 0) == (f_lo < 0)) {
      lo = mid;
      f_lo = f;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

void emit(const Table& table) {
  static const bool csv = [] {
    const char* env = std::getenv("FD_BENCH_CSV");
    return env != nullptr && env[0] == '1';
  }();
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

namespace {

// Cells that fully parse as a finite double are valid JSON numbers as-is
// (Table formats them with %f/%e shapes); everything else is a string.
bool is_json_number(const std::string& cell) {
  if (cell.empty() || cell.front() == '.' || cell.front() == '+') return false;
  if (cell.find_first_not_of("0123456789+-.eE") != std::string::npos) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size() && std::isfinite(v);
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void emit_json(const std::string& name, const Table& table) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "emit_json: cannot open " << path << "\n";
    return;
  }
  os << "{\n  \"bench\": ";
  json_string(os, name);
  // Machine + build provenance, so committed results are comparable:
  // numbers from a laptop Debug build never masquerade as server data.
  os << ",\n  \"hw_cores\": " << std::thread::hardware_concurrency()
     << ",\n  \"build_type\": ";
#ifdef TWFD_BUILD_TYPE
  json_string(os, TWFD_BUILD_TYPE);
#else
  json_string(os, "unknown");
#endif
  os << ",\n  \"headers\": [";
  const auto& headers = table.headers();
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i > 0) os << ", ";
    json_string(os, headers[i]);
  }
  os << "],\n  \"rows\": [\n";
  const auto& rows = table.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << "    [";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) os << ", ";
      if (is_json_number(rows[r][c])) {
        os << rows[r][c];
      } else {
        json_string(os, rows[r][c]);
      }
    }
    os << (r + 1 < rows.size() ? "],\n" : "]\n");
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

void print_header(const std::string& experiment, const std::string& paper_ref,
                  const trace::Trace& trace) {
  const auto stats = trace::compute_stats(trace);
  std::cout << "==============================================================\n"
            << experiment << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "trace: " << trace.name() << "  samples=" << stats.sent
            << "  delivered=" << stats.delivered
            << "  interval=" << format_ticks(trace.interval()) << "\n"
            << "  p_L=" << Table::num(stats.loss_probability, 5)
            << "  mean_delay=" << Table::num(stats.delay_mean_s * 1e3, 3) << "ms"
            << "  V(D)=" << Table::sci(stats.delay_variance_s2, 3) << "s^2"
            << "  duration=" << Table::num(stats.duration_s, 0) << "s\n"
            << "==============================================================\n";
}

}  // namespace twfd::bench

// Live validation of Section V-C in the deterministic simulator: three
// applications monitor one remote host for hours of virtual time,
// (a) each with a dedicated sender+monitor pair at its own Delta_i,j, and
// (b) through one shared FdService at Delta_i,min.
// Reported: actual datagrams on the wire and per-app false suspicions.
// This is the "empirical analysis on resulting QoS ... and how network
// traffic is reduced" the paper lists as future work.

#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "config/qos_config.hpp"
#include "core/multi_window.hpp"
#include "service/dispatcher.hpp"
#include "service/fd_service.hpp"
#include "service/heartbeat_sender.hpp"
#include "service/monitor.hpp"
#include "sim/sim_world.hpp"

using namespace twfd;

namespace {

constexpr double kHours = 2.0;
const config::NetworkBehaviour kNet{0.02, 1e-4};

sim::LinkParams lossy_link() {
  sim::LinkParams p;
  p.delay = std::make_unique<trace::ExponentialDelay>(0.001, 0.010);
  p.loss = std::make_unique<trace::BernoulliLoss>(0.02);
  return p;
}

struct AppSpec {
  std::string name;
  config::QosRequirements qos;
};

const std::vector<AppSpec> kApps = {
    {"strict", {0.5, 1e-4, 2.0}},
    {"medium", {1.5, 1e-3, 6.0}},
    {"relaxed", {4.0, 1e-2, 20.0}},
};

struct RunResult {
  std::uint64_t datagrams = 0;
  std::map<std::string, int> suspicions;
};

// (a) One sender + one monitor per application.
RunResult run_dedicated() {
  RunResult out;
  sim::SimWorld world(71);
  auto& p = world.add_endpoint("p");
  std::vector<std::unique_ptr<service::Dispatcher>> dispatchers;
  std::vector<std::unique_ptr<service::HeartbeatSender>> senders;
  std::vector<std::unique_ptr<service::Monitor>> monitors;

  for (std::size_t j = 0; j < kApps.size(); ++j) {
    const auto cfg = config::chen_configure(kApps[j].qos, kNet);
    auto& q = world.add_endpoint("q_" + kApps[j].name);
    world.connect(p, q, lossy_link());

    senders.push_back(std::make_unique<service::HeartbeatSender>(
        p.runtime(), service::HeartbeatSender::Params{
                         j + 1, ticks_from_seconds(cfg.interval_s)}));
    senders.back()->add_target(q.id());

    core::MultiWindowDetector::Params dp;
    dp.windows = {1, 1000};
    dp.interval = ticks_from_seconds(cfg.interval_s);
    dp.safety_margin = ticks_from_seconds(cfg.margin_s);

    const std::string name = kApps[j].name;
    dispatchers.push_back(std::make_unique<service::Dispatcher>(q.runtime()));
    monitors.push_back(std::make_unique<service::Monitor>(
        q.runtime(), j + 1, std::make_unique<core::MultiWindowDetector>(dp),
        service::Monitor::Callbacks{
            [&out, name](Tick) { ++out.suspicions[name]; }, {}}));
    auto* mon = monitors.back().get();
    dispatchers.back()->on_heartbeat(
        [mon](PeerId from, const net::HeartbeatMsg& m, Tick at) {
          mon->handle_heartbeat(from, m, at);
        });
    senders.back()->start();
  }

  world.run_until(ticks_from_seconds(kHours * 3600));
  for (auto& s : senders) s->stop();
  out.datagrams = world.datagrams_sent();
  return out;
}

// (b) One sender, one shared FdService for all applications.
RunResult run_shared() {
  RunResult out;
  sim::SimWorld world(71);
  auto& p = world.add_endpoint("p");
  auto& q = world.add_endpoint("q");
  world.connect(p, q, lossy_link());
  world.connect(q, p, sim::lan_link());  // control channel back to p

  service::Dispatcher p_dispatch(p.runtime());
  service::Dispatcher q_dispatch(q.runtime());
  service::HeartbeatSender sender(p.runtime(), {1, ticks_from_sec(60)});
  sender.add_target(q.id());
  p_dispatch.on_interval_request(
      [&](PeerId from, const net::IntervalRequestMsg& m) {
        sender.handle_interval_request(from, m);
      });

  service::FdService::Params sp;
  sp.assumed_network = kNet;
  service::FdService svc(q.runtime(), sp);
  q_dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    svc.handle_heartbeat(from, m, at);
  });
  for (const auto& app : kApps) {
    svc.subscribe(p.id(), 1, app.name, app.qos,
                  [&out](const service::FdService::StatusEvent& e) {
                    if (e.output == detect::Output::Suspect) ++out.suspicions[e.app];
                  });
  }

  sender.start();
  world.run_until(ticks_from_seconds(kHours * 3600));
  sender.stop();
  out.datagrams = world.datagrams_sent();
  return out;
}

}  // namespace

int main() {
  std::cout << "service_live_load\n"
            << "reproduces: Section V-C live (simulator), the paper's stated"
               " future-work measurement\n"
            << "channel: 1ms+Exp(10ms) delay, 2% loss; " << kHours
            << "h of virtual time; p never crashes\n\n";

  const RunResult dedicated = run_dedicated();
  const RunResult shared = run_shared();

  Table table({"mode", "datagrams", "datagrams_per_s", "strict_susp",
               "medium_susp", "relaxed_susp"});
  auto row = [&](const char* mode, const RunResult& r) {
    auto count = [&](const char* app) {
      const auto it = r.suspicions.find(app);
      return std::to_string(it == r.suspicions.end() ? 0 : it->second);
    };
    table.add_row({mode, std::to_string(r.datagrams),
                   Table::num(static_cast<double>(r.datagrams) / (kHours * 3600), 2),
                   count("strict"), count("medium"), count("relaxed")});
  };
  row("dedicated (3 streams)", dedicated);
  row("shared service (1 stream)", shared);
  bench::emit(table);

  std::cout << "\nExpected shape: the shared service carries roughly the"
               " strictest app's heartbeat rate instead of the sum of all"
               " three, and no app sees more false suspicions than its"
               " dedicated counterpart (false suspicions here are caused"
               " by the 2% message loss).\n";
  return 0;
}

// Shared infrastructure for the figure/table reproduction binaries.
//
// Every bench binary replays the same cached synthetic WAN/LAN traces
// (seeded; FD_BENCH_SAMPLES scales their length toward the paper's 5.8M)
// and prints paper-style series with the common Table printer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/factory.hpp"
#include "qos/evaluator.hpp"
#include "trace/scenario.hpp"

namespace twfd::bench {

/// Sample count from FD_BENCH_SAMPLES (default 1,000,000; min 50,000).
[[nodiscard]] std::int64_t sample_count();

/// Cached scenario traces (built once per process).
[[nodiscard]] const trace::Trace& wan_trace();
[[nodiscard]] const std::vector<trace::Period>& wan_periods();
[[nodiscard]] const trace::Trace& lan_trace();

/// One point of a detection-time/accuracy curve.
struct SweepPoint {
  double td_s = 0;
  double tmr_per_s = 0;
  double pa = 0;
  double tm_s = 0;
  std::size_t mistakes = 0;
};

[[nodiscard]] SweepPoint eval_spec(const core::DetectorSpec& spec,
                                   const trace::Trace& trace);

/// Safety-margin sweep (ms) used for Chen and 2W-FD curves.
[[nodiscard]] const std::vector<int>& margin_sweep_ms();
/// Threshold sweeps for the accrual detectors.
[[nodiscard]] const std::vector<double>& phi_sweep();
[[nodiscard]] const std::vector<double>& ed_k_sweep();  // E = 1 - 10^-k

/// Builds the spec of `family` tuned by scalar `x`:
/// chen/2w -> margin seconds; phi -> threshold; ed -> k.
enum class Family { Chen1, Chen1000, TwoWindow, Phi, Ed };
[[nodiscard]] core::DetectorSpec spec_for(Family family, double x);
[[nodiscard]] std::string family_label(Family family);

/// Finds the tuning value giving measured T_D ~= target on `trace`
/// (bisection on the monotone T_D(x) curve; calibrates on a prefix slice
/// for speed). Returns the tuning value.
[[nodiscard]] double calibrate_to_td(Family family, double target_td_s,
                                     const trace::Trace& trace);

/// Standard bench prologue: prints binary name, trace stats and config.
void print_header(const std::string& experiment, const std::string& paper_ref,
                  const trace::Trace& trace);

/// Prints a result table: pretty fixed-width by default, machine-readable
/// CSV when the environment sets FD_BENCH_CSV=1 (for plotting pipelines).
void emit(const Table& table);

/// Writes the table as BENCH_<name>.json in the working directory:
/// {"bench": name, "headers": [...], "rows": [[...], ...]} with cells
/// that parse as finite numbers emitted as JSON numbers. Result harnesses
/// scrape these files; gitignored.
void emit_json(const std::string& name, const Table& table);

}  // namespace twfd::bench

// LAN-scenario variant of Figures 6/7. The paper reports that LAN results
// "present the same behavior" and omits the plot; this binary regenerates
// both metrics so the claim can be checked.

#include <iostream>

#include "bench_common.hpp"

using namespace twfd;

int main() {
  const auto& trace = bench::lan_trace();
  bench::print_header("fig06b_comparison_lan",
                      "Figures 6/7, LAN variant (Section IV-C2 remark)", trace);

  // The LAN interval is 20 ms and delays are ~100 us, so the meaningful
  // margin range is much tighter than the WAN sweep.
  const int margins_ms[] = {1, 2, 4, 8, 15, 30, 60, 120, 250, 500};

  Table table({"detector", "tuning", "TD_s", "TMR_per_s", "PA"});
  const bench::Family families[] = {bench::Family::Chen1, bench::Family::Chen1000,
                                    bench::Family::TwoWindow};
  for (const auto family : families) {
    for (int m : margins_ms) {
      const auto p = bench::eval_spec(bench::spec_for(family, m * 1e-3), trace);
      table.add_row({bench::family_label(family), "m=" + std::to_string(m) + "ms",
                     Table::num(p.td_s, 5), Table::sci(p.tmr_per_s, 4),
                     Table::num(p.pa, 9)});
    }
  }
  for (double phi : bench::phi_sweep()) {
    const auto p = bench::eval_spec(bench::spec_for(bench::Family::Phi, phi), trace);
    table.add_row({bench::family_label(bench::Family::Phi),
                   "Phi=" + Table::num(phi, 2), Table::num(p.td_s, 5),
                   Table::sci(p.tmr_per_s, 4), Table::num(p.pa, 9)});
  }
  for (double k : bench::ed_k_sweep()) {
    const auto p = bench::eval_spec(bench::spec_for(bench::Family::Ed, k), trace);
    table.add_row({bench::family_label(bench::Family::Ed), "k=" + Table::num(k, 2),
                   Table::num(p.td_s, 5), Table::sci(p.tmr_per_s, 4),
                   Table::num(p.pa, 9)});
  }
  {
    const auto p = bench::eval_spec(core::DetectorSpec::bertier(1000), trace);
    table.add_row({"bertier", "(none)", Table::num(p.td_s, 5),
                   Table::sci(p.tmr_per_s, 4), Table::num(p.pa, 9)});
  }
  bench::emit(table);

  std::cout << "\nExpected shape: same ordering as the WAN scenario, with"
               " far fewer mistakes overall (no loss, tiny jitter).\n";
  return 0;
}

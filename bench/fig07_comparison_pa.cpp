// Figure 7: query accuracy probability P_A vs detection time T_D for all
// five detector families on the WAN scenario.

#include <iostream>

#include "bench_common.hpp"

using namespace twfd;

int main() {
  const auto& trace = bench::wan_trace();
  bench::print_header("fig07_comparison_pa",
                      "Figure 7 (P_A vs T_D, all detectors, WAN)", trace);

  Table table({"detector", "tuning", "TD_s", "PA", "one_minus_PA"});

  const bench::Family families[] = {bench::Family::Chen1, bench::Family::Chen1000,
                                    bench::Family::TwoWindow};
  for (const auto family : families) {
    for (int margin_ms : bench::margin_sweep_ms()) {
      const auto p =
          bench::eval_spec(bench::spec_for(family, margin_ms * 1e-3), trace);
      table.add_row({bench::family_label(family),
                     "m=" + std::to_string(margin_ms) + "ms", Table::num(p.td_s, 4),
                     Table::num(p.pa, 8), Table::sci(1.0 - p.pa, 4)});
    }
  }
  for (double phi : bench::phi_sweep()) {
    const auto p = bench::eval_spec(bench::spec_for(bench::Family::Phi, phi), trace);
    table.add_row({bench::family_label(bench::Family::Phi),
                   "Phi=" + Table::num(phi, 2), Table::num(p.td_s, 4),
                   Table::num(p.pa, 8), Table::sci(1.0 - p.pa, 4)});
  }
  for (double k : bench::ed_k_sweep()) {
    const auto p = bench::eval_spec(bench::spec_for(bench::Family::Ed, k), trace);
    table.add_row({bench::family_label(bench::Family::Ed), "k=" + Table::num(k, 2),
                   Table::num(p.td_s, 4), Table::num(p.pa, 8),
                   Table::sci(1.0 - p.pa, 4)});
  }
  {
    const auto p = bench::eval_spec(core::DetectorSpec::bertier(1000), trace);
    table.add_row({"bertier", "(none)", Table::num(p.td_s, 4), Table::num(p.pa, 8),
                   Table::sci(1.0 - p.pa, 4)});
  }
  bench::emit(table);

  std::cout << "\nExpected shape: 2w(1,1000) has the highest P_A at every"
               " T_D (Section IV-C2).\n";
  return 0;
}

// Engineering bench: cluster membership built on 2W-FD monitors, scaled
// over cluster size. Reports heartbeat load (all-to-all is O(N^2) —
// quantifying the paper's motivation for minimizing per-link messages),
// crash-detection convergence latency (time until every survivor drops
// the victim), and false view changes under 1% loss.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "service/membership.hpp"
#include "sim/sim_world.hpp"

using namespace twfd;

namespace {

struct ScaleResult {
  std::size_t nodes = 0;
  double datagrams_per_s = 0;
  double convergence_s = 0;
  std::size_t false_changes = 0;
};

ScaleResult run(std::size_t n) {
  sim::SimWorld world(1000 + n);
  std::vector<sim::SimEndpoint*> eps;
  for (std::size_t i = 0; i < n; ++i) {
    eps.push_back(&world.add_endpoint("n" + std::to_string(i + 1)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      sim::LinkParams link;
      link.delay = std::make_unique<trace::ExponentialDelay>(0.0002, 0.001);
      link.loss = std::make_unique<trace::BernoulliLoss>(0.01);
      sim::LinkParams back{link.delay->clone(), link.loss->clone(), true, 0.0};
      world.connect(*eps[i], *eps[j], std::move(link));
      world.connect(*eps[j], *eps[i], std::move(back));
    }
  }

  std::vector<std::unique_ptr<service::MembershipNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    service::MembershipNode::Params p;
    p.node_id = i + 1;
    p.heartbeat_interval = ticks_from_ms(100);
    p.safety_margin = ticks_from_ms(150);
    p.windows = {1, 100};
    nodes.push_back(std::make_unique<service::MembershipNode>(eps[i]->runtime(), p));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) nodes[i]->add_peer(eps[j]->id(), j + 1);
    }
  }

  for (auto& node : nodes) node->start();
  world.run_until(ticks_from_sec(60));

  // Steady-state bookkeeping after the join storm.
  std::size_t changes_before = 0;
  for (auto& node : nodes) changes_before += node->view_changes();
  const std::uint64_t datagrams_before = world.datagrams_sent();

  // Crash the last node; measure until every survivor has dropped it.
  const Tick crash = world.now();
  nodes[n - 1]->stop();
  Tick converged = 0;
  while (world.now() < crash + ticks_from_sec(30)) {
    world.run_until(world.now() + ticks_from_ms(10));
    bool all_dropped = true;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (nodes[i]->is_alive(n)) all_dropped = false;
    }
    if (all_dropped) {
      converged = world.now();
      break;
    }
  }
  world.run_until(crash + ticks_from_sec(30));

  ScaleResult r;
  r.nodes = n;
  r.datagrams_per_s =
      static_cast<double>(world.datagrams_sent() - datagrams_before) / 30.0;
  r.convergence_s = converged > 0 ? to_seconds(converged - crash) : -1.0;
  std::size_t changes_after = 0;
  for (auto& node : nodes) changes_after += node->view_changes();
  // Expected legitimate changes: n-1 survivors each dropping the victim.
  r.false_changes = changes_after - changes_before - (n - 1);
  for (auto& node : nodes) node->stop();
  return r;
}

}  // namespace

int main() {
  std::cout << "membership_scale\n"
            << "cluster membership on 2W-FD monitors: load, crash-detection"
               " convergence, stability (1% loss links)\n\n";

  Table table({"nodes", "links", "datagrams_per_s", "convergence_s",
               "false_view_changes"});
  for (std::size_t n : {3, 5, 8, 12, 16}) {
    const auto r = run(n);
    table.add_row({std::to_string(r.nodes), std::to_string(r.nodes * (r.nodes - 1)),
                   Table::num(r.datagrams_per_s, 1), Table::num(r.convergence_s, 3),
                   std::to_string(r.false_changes)});
  }
  bench::emit(table);
  bench::emit_json("membership_scale", table);

  std::cout << "\nExpected shape: load grows quadratically (the cost that"
               " motivates shared detection services); convergence stays"
               " ~Delta_i + Delta_to regardless of size; only isolated"
               " flaps at 1% loss (a flap = 2 view changes) despite the"
               " aggressive 150 ms margin.\n";
  return 0;
}

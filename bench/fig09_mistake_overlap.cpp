// Figure 9 + Equation 13: at a fixed aggressive detection time, which
// mistakes do Chen(1), Chen(1000) and 2W-FD(1,1000) make? The paper's
// claim — 2W only makes the mistakes both constituents make — is checked
// in its exact pointwise form (suspicion-interval sets intersect exactly)
// and reported in the paper's per-mistake form (identity sets; equal up
// to episode-merge boundaries).

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "qos/intervals.hpp"
#include "qos/mistake_set.hpp"

using namespace twfd;

namespace {

qos::EvalResult run(const core::DetectorSpec& spec) {
  const auto& trace = bench::wan_trace();
  auto det = core::make_detector(spec, trace.interval());
  qos::EvalOptions opt;
  opt.record_mistakes = true;
  return qos::evaluate(*det, trace, opt);
}

}  // namespace

int main() {
  const auto& trace = bench::wan_trace();
  bench::print_header("fig09_mistake_overlap",
                      "Figure 9 + Eq 13 (mistake overlap, T_D=215ms, WAN)", trace);

  constexpr double kTargetTd = 0.215;
  const Tick margin = ticks_from_seconds(
      bench::calibrate_to_td(bench::Family::TwoWindow, kTargetTd, trace));

  const auto r1 = run(core::DetectorSpec::chen(1, margin));
  const auto r1000 = run(core::DetectorSpec::chen(1000, margin));
  const auto rtw = run(core::DetectorSpec::two_window(1, 1000, margin));

  const auto c1 = qos::MistakeSet::from_records(r1.mistakes);
  const auto c1000 = qos::MistakeSet::from_records(r1000.mistakes);
  const auto tw = qos::MistakeSet::from_records(rtw.mistakes);
  const auto id_intersection = c1.intersect(c1000);

  Table table({"set", "mistakes", "suspicion_s"});
  const auto i1 = qos::to_intervals(r1.mistakes);
  const auto i1000 = qos::to_intervals(r1000.mistakes);
  const auto itw = qos::to_intervals(rtw.mistakes);
  const auto iboth = qos::intersect_intervals(i1, i1000);
  table.add_row({"chen(1)", std::to_string(c1.size()),
                 Table::num(to_seconds(qos::total_duration(i1)), 3)});
  table.add_row({"chen(1000)", std::to_string(c1000.size()),
                 Table::num(to_seconds(qos::total_duration(i1000)), 3)});
  table.add_row({"chen(1) ^ chen(1000)", std::to_string(id_intersection.size()),
                 Table::num(to_seconds(qos::total_duration(iboth)), 3)});
  table.add_row({"2w(1,1000)", std::to_string(tw.size()),
                 Table::num(to_seconds(qos::total_duration(itw)), 3)});
  table.add_row({"chen(1) only", std::to_string(c1.subtract(c1000).size()), "-"});
  table.add_row({"chen(1000) only", std::to_string(c1000.subtract(c1).size()), "-"});
  bench::emit(table);

  const bool pointwise = itw == iboth;
  const bool sandwich =
      id_intersection.is_subset_of(tw) && tw.is_subset_of(c1.unite(c1000));
  std::cout << "\nEq 13, pointwise (suspicion intervals of 2W == intersection): "
            << (pointwise ? "HOLDS EXACTLY" : "VIOLATED") << "\n"
            << "Eq 13, per-identity (C1^C2 subset 2W subset C1uC2): "
            << (sandwich ? "HOLDS" : "VIOLATED") << "\n"
            << "identity sets equal: " << (tw == id_intersection ? "yes" : "no")
            << " (may differ at episode-merge boundaries)\n";

  if (!tw.empty()) {
    std::cout << "first shared mistake identities (awaited heartbeat seq):";
    for (std::size_t i = 0; i < std::min<std::size_t>(8, tw.ids().size()); ++i) {
      std::cout << ' ' << tw.ids()[i];
    }
    std::cout << '\n';
  }
  return (pointwise && sandwich) ? 0 : 1;
}

// Engineering bench: upstream bandwidth of the federation tier — the
// bytes a child monitor node ships per liveness transition when batching
// them into delta-coded TWFC Digest frames, against the baseline of one
// raw Event frame per transition (what a naive fan-out of the FDaaS
// push path across node links would cost).
//
// Three traffic shapes over the same peer population:
//   * crash_wave:   every peer transitions once inside one flush window
//                   (correlated failure — rack loss, partition heal);
//   * steady_flaps: a small random fraction transitions per window,
//                   many windows (the steady-state trickle);
//   * flap_storm:   a hot subset flaps several times per window — the
//                   coalescing case, where the digest ships net state
//                   and the raw path pays for every intermediate flap.
//
// For each shape: transitions recorded, digest frames/bytes actually
// encoded via api::encode_frame (length prefix included, exactly what
// the TCP link carries), raw bytes as one encoded EventMsg frame per
// transition, bytes per transition on both paths, and the ratio. The
// digest encode cost is timed per recorded transition.
//
// Knobs: FD_BENCH_FED_PEERS (default 10000), FD_BENCH_FED_WINDOWS
// (steady/storm windows, default 50), FD_BENCH_FED_FLAP_PCT (percent of
// peers flapping per steady window, default 2).
//
// Emits BENCH_federation_fanout.json; exits non-zero if the 10k-peer
// crash wave fails the acceptance contract digest_bytes <= raw_bytes/5.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/control.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "federation/digest.hpp"

using namespace twfd;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atol(v);
}

/// What the naive path ships for one transition: a complete Event frame.
std::size_t raw_event_frame_bytes() {
  static const std::size_t bytes =
      api::encode_frame(api::ControlMessage{
                            api::EventMsg{1, detect::Output::Suspect, 0}})
          .size();
  return bytes;
}

struct ShapeResult {
  std::uint64_t transitions = 0;  ///< recorded at the child
  std::uint64_t frames = 0;
  std::uint64_t digest_bytes = 0;
  std::uint64_t raw_bytes = 0;
  double encode_ns_per_transition = 0;
};

/// Drains the builder through the real encoder, tallying wire bytes.
void drain(federation::DigestBuilder& b, ShapeResult& r) {
  for (const auto& frame : b.take()) {
    ++r.frames;
    r.digest_bytes += api::encode_frame(api::ControlMessage{frame}).size();
  }
}

ShapeResult crash_wave(std::size_t peers) {
  federation::DigestBuilder b(/*node_id=*/1, peers);
  ShapeResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < peers; ++i) {
    b.add(i + 1, /*seq=*/2, detect::Output::Suspect, ticks_from_ms(1));
    ++r.transitions;
  }
  drain(b, r);
  const auto t1 = std::chrono::steady_clock::now();
  r.raw_bytes = r.transitions * raw_event_frame_bytes();
  r.encode_ns_per_transition =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(r.transitions);
  return r;
}

ShapeResult steady_flaps(std::size_t peers, long windows, long flap_pct) {
  federation::DigestBuilder b(1, peers);
  ShapeResult r;
  Xoshiro256 rng(7);
  const auto flappers =
      static_cast<std::size_t>(peers * static_cast<std::size_t>(flap_pct) / 100);
  const auto t0 = std::chrono::steady_clock::now();
  for (long w = 0; w < windows; ++w) {
    for (std::size_t i = 0; i < flappers; ++i) {
      const std::uint64_t peer = 1 + rng.uniform_int(peers);
      const auto out = (w + static_cast<long>(i)) % 2 == 0
                           ? detect::Output::Suspect
                           : detect::Output::Trust;
      b.add(peer, static_cast<std::uint64_t>(w) + 2, out, ticks_from_ms(w));
      ++r.transitions;
    }
    drain(b, r);  // one flush per window
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.raw_bytes = r.transitions * raw_event_frame_bytes();
  r.encode_ns_per_transition =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(r.transitions);
  return r;
}

ShapeResult flap_storm(std::size_t peers, long windows) {
  federation::DigestBuilder b(1, peers);
  ShapeResult r;
  // 1% of peers flap 6 times inside every window: the digest coalesces
  // each peer to its net state, the raw path ships all six.
  const std::size_t hot = peers / 100 > 0 ? peers / 100 : 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (long w = 0; w < windows; ++w) {
    for (std::size_t i = 0; i < hot; ++i) {
      for (int f = 0; f < 6; ++f) {
        const auto out =
            f % 2 == 0 ? detect::Output::Suspect : detect::Output::Trust;
        b.add(i + 1, static_cast<std::uint64_t>(w * 6 + f) + 2, out,
              ticks_from_ms(w));
        ++r.transitions;
      }
    }
    drain(b, r);
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.raw_bytes = r.transitions * raw_event_frame_bytes();
  r.encode_ns_per_transition =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(r.transitions);
  return r;
}

}  // namespace

int main() {
  const auto peers =
      static_cast<std::size_t>(env_long("FD_BENCH_FED_PEERS", 10'000));
  const long windows = env_long("FD_BENCH_FED_WINDOWS", 50);
  const long flap_pct = env_long("FD_BENCH_FED_FLAP_PCT", 2);

  std::cout << "federation_fanout\n"
            << "digest vs raw-event upstream bytes per liveness transition\n"
            << "peers=" << peers << "  windows=" << windows
            << "  flap_pct=" << flap_pct
            << "  raw_event_frame_bytes=" << raw_event_frame_bytes() << "\n\n";

  Table table({"shape", "peers", "transitions", "digest_frames",
               "digest_bytes", "raw_bytes", "digest_bytes_per_transition",
               "raw_bytes_per_transition", "raw_over_digest",
               "encode_ns_per_transition"});

  struct Named {
    const char* name;
    ShapeResult r;
  };
  const Named shapes[] = {
      {"crash_wave", crash_wave(peers)},
      {"steady_flaps", steady_flaps(peers, windows, flap_pct)},
      {"flap_storm", flap_storm(peers, windows)},
  };

  double crash_wave_ratio = 0;
  for (const auto& [name, r] : shapes) {
    const double per_digest =
        static_cast<double>(r.digest_bytes) / static_cast<double>(r.transitions);
    const double per_raw =
        static_cast<double>(r.raw_bytes) / static_cast<double>(r.transitions);
    const double ratio = per_raw / per_digest;
    if (std::string(name) == "crash_wave") crash_wave_ratio = ratio;
    table.add_row({name, std::to_string(peers), std::to_string(r.transitions),
                   std::to_string(r.frames), std::to_string(r.digest_bytes),
                   std::to_string(r.raw_bytes), Table::num(per_digest, 2),
                   Table::num(per_raw, 2), Table::num(ratio, 2),
                   Table::num(r.encode_ns_per_transition, 1)});
  }

  bench::emit(table);
  bench::emit_json("federation_fanout", table);

  std::cout << "\nExpected shape: the crash wave amortises the frame header"
               " across " << api::kMaxDigestEntries << "-entry chunks, so"
               " digest bytes/transition sit near the ~5-byte entry cost"
               " against a " << raw_event_frame_bytes() << "-byte Event frame"
               " (>=5x denser — the acceptance floor). Steady flaps carry"
               " more header per entry but stay well above 5x at realistic"
               " window populations; the flap storm beats everything because"
               " coalescing deletes intermediate flaps before they ever"
               " reach a wire.\n";

  if (crash_wave_ratio < 5.0) {
    std::cerr << "federation_fanout: crash-wave digest density "
              << crash_wave_ratio << "x below the 5x acceptance floor\n";
    return 1;
  }
  return 0;
}

// Section V-C: failure detection as a service. Three applications with
// different QoS tuples monitor one remote host. The bench reports, per
// application: the dedicated configuration (Delta_i,j, Delta_to,j), the
// shared configuration (Delta_i,min, adapted Delta_to,j), the measured
// QoS under both (2W-FD replay over a common lossy channel model), and
// the network-load comparison the paper argues for.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "config/qos_config.hpp"
#include "core/multi_window.hpp"
#include "trace/generator.hpp"

using namespace twfd;

namespace {

const config::NetworkBehaviour kNet{0.02, 1e-4};

trace::Trace channel_trace(Tick interval, std::uint64_t seed, double duration_s) {
  const auto count = static_cast<std::int64_t>(duration_s / to_seconds(interval));
  trace::TraceGenerator gen("chan", interval, 0, seed);
  trace::Regime r;
  r.label = "main";
  r.count = std::max<std::int64_t>(count, 1000);
  r.delay = std::make_unique<trace::ExponentialDelay>(0.001, 0.010);
  r.loss = std::make_unique<trace::BernoulliLoss>(0.02);
  gen.add_regime(std::move(r));
  return gen.generate();
}

qos::QosMetrics replay(double interval_s, double margin_s, std::uint64_t seed,
                       double duration_s) {
  const Tick interval = ticks_from_seconds(interval_s);
  const auto t = channel_trace(interval, seed, duration_s);
  core::MultiWindowDetector::Params p;
  p.windows = {1, 1000};
  p.interval = interval;
  p.safety_margin = ticks_from_seconds(margin_s);
  core::MultiWindowDetector d(p);
  return qos::evaluate(d, t).metrics;
}

}  // namespace

int main() {
  std::cout << "shared_service_qos\n"
            << "reproduces: Section V-C (shared FD service: per-app QoS and"
               " network load)\n"
            << "channel: p_L=0.02, delay=1ms+Exp(10ms) (V(D)=1e-4 s^2)\n\n";

  const std::vector<config::AppRequest> apps = {
      {"cluster-mgr (strict)", {0.5, 1e-4, 2.0}},
      {"group-membership", {1.5, 1e-3, 6.0}},
      {"dashboard (relaxed)", {4.0, 1e-2, 20.0}},
  };

  const auto combined = config::combine_requirements(apps, kNet);
  if (!combined.feasible) {
    std::cout << "configuration infeasible -- unexpected\n";
    return 1;
  }

  const double duration_s =
      3000.0 * (static_cast<double>(bench::sample_count()) / 1'000'000.0);

  Table cfg({"app", "TD_U_s", "ded_Di_s", "ded_Dto_s", "shr_Di_s", "shr_Dto_s"});
  for (std::size_t j = 0; j < apps.size(); ++j) {
    const auto& a = combined.apps[j];
    cfg.add_row({a.name, Table::num(apps[j].qos.td_upper_s, 2),
                 Table::num(a.dedicated.interval_s, 4),
                 Table::num(a.dedicated.margin_s, 4),
                 Table::num(combined.shared_interval_s, 4),
                 Table::num(a.shared_margin_s, 4)});
  }
  std::cout << "Configuration (dedicated vs shared):\n";
  bench::emit(cfg);

  Table meas({"app", "mode", "TD_s", "TMR_per_s", "TM_s", "PA"});
  for (std::size_t j = 0; j < apps.size(); ++j) {
    const auto& a = combined.apps[j];
    const auto ded =
        replay(a.dedicated.interval_s, a.dedicated.margin_s, 300 + j, duration_s);
    const auto shr =
        replay(combined.shared_interval_s, a.shared_margin_s, 400 + j, duration_s);
    meas.add_row({a.name, "dedicated", Table::num(ded.detection_time_s, 4),
                  Table::sci(ded.mistake_rate_per_s, 3),
                  Table::num(ded.mistake_duration_s, 4),
                  Table::num(ded.query_accuracy, 8)});
    meas.add_row({a.name, "shared", Table::num(shr.detection_time_s, 4),
                  Table::sci(shr.mistake_rate_per_s, 3),
                  Table::num(shr.mistake_duration_s, 4),
                  Table::num(shr.query_accuracy, 8)});
  }
  std::cout << "\nMeasured per-app QoS (2W-FD replay, "
            << Table::num(duration_s, 0) << "s of channel time per run):\n";
  bench::emit(meas);

  Table load({"mode", "heartbeats_per_s"});
  load.add_row({"one detector per app", Table::num(combined.dedicated_msgs_per_s, 3)});
  load.add_row({"shared service", Table::num(combined.shared_msgs_per_s, 3)});
  std::cout << "\nNetwork load:\n";
  bench::emit(load);
  std::cout << "\nExpected shape: every app keeps its T_D; adapted apps"
               " (larger T_D^U) see lower T_MR and T_M under the shared"
               " service; total heartbeat load drops (Section V-C1).\n";
  return 0;
}

// Table I + Figure 8: every detector is tuned to the same detection time
// (T_D = 215 ms in the paper), the WAN trace is split into the Table I
// periods (Stable 1 / Burst / Worm / Stable 2, scaled proportionally),
// and mistakes are attributed to periods. 2W-FD should win everywhere,
// most clearly during the Burst period. Bertier cannot be tuned and is
// reported at its natural T_D.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "qos/mistake_set.hpp"
#include "qos/subsample.hpp"

using namespace twfd;

namespace {

struct Row {
  std::string name;
  double td;
  std::vector<qos::PeriodMistakeCount> per_period;
  std::size_t total;
};

Row run(const std::string& name, const core::DetectorSpec& spec) {
  const auto& trace = bench::wan_trace();
  auto det = core::make_detector(spec, trace.interval());
  qos::EvalOptions opt;
  opt.record_mistakes = true;
  const auto r = qos::evaluate(*det, trace, opt);
  Row row;
  row.name = name;
  row.td = r.metrics.detection_time_s;
  row.per_period = qos::count_mistakes_by_period(r.mistakes, bench::wan_periods());
  row.total = r.metrics.mistake_count;
  return row;
}

}  // namespace

int main() {
  const auto& trace = bench::wan_trace();
  bench::print_header("fig08_subsample_mistakes",
                      "Table I + Figure 8 (mistakes per subsample, T_D=215ms)",
                      trace);

  // Table I equivalent for this trace length.
  {
    Table t1({"period", "from_seq", "to_seq"});
    for (const auto& p : bench::wan_periods()) {
      t1.add_row({p.name, std::to_string(p.from_seq), std::to_string(p.to_seq)});
    }
    std::cout << "Table I (scaled boundaries):\n";
    bench::emit(t1);
    std::cout << '\n';
  }

  constexpr double kTargetTd = 0.215;
  std::vector<Row> rows;
  for (auto family : {bench::Family::Chen1, bench::Family::Chen1000,
                      bench::Family::Phi, bench::Family::Ed,
                      bench::Family::TwoWindow}) {
    const double x = bench::calibrate_to_td(family, kTargetTd, trace);
    rows.push_back(run(bench::family_label(family), bench::spec_for(family, x)));
  }
  rows.push_back(run("bertier", core::DetectorSpec::bertier(1000)));

  Table table({"detector", "TD_s", "Stable 1", "Burst", "Worm", "Stable 2", "total"});
  for (const auto& r : rows) {
    table.add_row({r.name, Table::num(r.td, 4),
                   std::to_string(r.per_period[0].mistakes),
                   std::to_string(r.per_period[1].mistakes),
                   std::to_string(r.per_period[2].mistakes),
                   std::to_string(r.per_period[3].mistakes),
                   std::to_string(r.total)});
  }
  bench::emit(table);

  std::cout << "\nExpected shape: 2w(1,1000) beats chen(1000) overall and in"
               " most periods; the adaptive detectors (phi, bertier) show the"
               " opposite fingerprint -- poor in stable periods, strong inside"
               " bursts (Section IV-C3). Bertier runs at its natural T_D;"
               " constant-horizon families (2w, chen(1), ed) are close at"
               " matched measured T_D (see EXPERIMENTS.md).\n";
  return 0;
}

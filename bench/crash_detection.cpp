// Crash-injection validation of the detection-time methodology: for each
// detector family (tuned to the paper's T_D = 215 ms working point on the
// WAN trace), inject 2000 crashes and compare the measured detection-time
// distribution with the evaluator's analytic T_D. Also reports the tail
// (p99/max), which the analytic mean hides — the practical answer to
// "how late can failover start?".

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "qos/crash_experiment.hpp"

using namespace twfd;

int main() {
  const auto& trace = bench::wan_trace();
  bench::print_header("crash_detection",
                      "Methodology validation: injected crashes vs analytic T_D",
                      trace);

  constexpr double kTargetTd = 0.215;
  Table table({"detector", "analytic_TD_s", "crash_mean_s", "crash_p99_s",
               "crash_max_s", "undetected"});

  auto add = [&](const std::string& name, const core::DetectorSpec& spec) {
    auto det = core::make_detector(spec, trace.interval());
    const auto analytic = qos::evaluate(*det, trace).metrics;
    const auto crash = qos::run_crash_experiment(*det, trace, 2000);
    table.add_row({name, Table::num(analytic.detection_time_s, 4),
                   Table::num(crash.mean_td_s, 4), Table::num(crash.p99_td_s, 4),
                   Table::num(crash.max_td_s, 4), std::to_string(crash.undetected)});
  };

  for (auto family : {bench::Family::Chen1, bench::Family::Chen1000,
                      bench::Family::Phi, bench::Family::Ed,
                      bench::Family::TwoWindow}) {
    const double x = bench::calibrate_to_td(family, kTargetTd, trace);
    add(bench::family_label(family), bench::spec_for(family, x));
  }
  add("bertier", core::DetectorSpec::bertier(1000));
  bench::emit(table);

  std::cout << "\nExpected shape: crash-measured mean tracks the analytic"
               " T_D within a few percent for every family; the p99/max"
               " columns show the loss-run and stall tail that a crash"
               " right after a silent stretch incurs.\n";
  return 0;
}

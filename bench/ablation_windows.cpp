// Ablation: how many windows does the multi-window detector need?
// The paper ships two (short reactive + long conservative) and shows one
// of each suffices (Figure 4). This bench quantifies the design choice:
// 1 window (= Chen), the paper's 2, and 3/4-window generalisations with
// intermediate horizons, across the margin sweep on the WAN trace.

#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace twfd;

int main() {
  const auto& trace = bench::wan_trace();
  bench::print_header("ablation_windows",
                      "Design ablation: window count of MW-FD (Section III-C)",
                      trace);

  const std::vector<std::vector<std::size_t>> configs = {
      {1000},                  // single long window (Chen 1000)
      {1},                     // single short window (Chen 1)
      {1, 1000},               // the published 2W-FD
      {1, 30, 1000},           // + one intermediate horizon
      {1, 10, 100, 1000},      // geometric ladder
  };

  Table table({"windows", "margin_ms", "TD_s", "TMR_per_s", "PA", "mistakes"});
  for (const auto& windows : configs) {
    for (int margin_ms : {25, 65, 115, 280, 600}) {
      const auto spec =
          core::DetectorSpec::multi_window(windows, ticks_from_ms(margin_ms));
      const auto p = bench::eval_spec(spec, trace);
      table.add_row({spec.family_name(), std::to_string(margin_ms),
                     Table::num(p.td_s, 4), Table::sci(p.tmr_per_s, 4),
                     Table::num(p.pa, 8), std::to_string(p.mistakes)});
    }
  }
  // Extension data point: Jacobson-adaptive margin over the 2W windows
  // (the floor plays the role of the tuning margin).
  for (int floor_ms : {0, 25, 65, 115}) {
    const auto spec =
        core::DetectorSpec::adaptive_two_window(1, 1000, ticks_from_ms(floor_ms));
    const auto p = bench::eval_spec(spec, trace);
    table.add_row({spec.family_name(), std::to_string(floor_ms),
                   Table::num(p.td_s, 4), Table::sci(p.tmr_per_s, 4),
                   Table::num(p.pa, 8), std::to_string(p.mistakes)});
  }
  bench::emit(table);

  std::cout << "\nExpected shape: adding windows beyond {1, 1000} changes"
               " little — extra windows are dominated by the max of the"
               " shortest and longest (each additional window can only"
               " delay freshness points further, and intermediate horizons"
               " rarely exceed both). The paper's two-window choice is the"
               " knee of the cost/benefit curve.\n";
  return 0;
}

// twfd_record — capture a live heartbeat stream into a TWFDTRC1 trace
// archive (the paper's experimental methodology: log arrival times on the
// monitoring machine, replay offline with twfd_replay).
//
//   twfd_record --port 4100 --sender-id 7 --duration-s 60 --out wan.trc
//               [--interval-ms 100] [--csv wan.csv]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "net/event_loop.hpp"
#include "service/dispatcher.hpp"
#include "service/trace_recorder.hpp"
#include "trace/io.hpp"
#include "trace/trace_stats.hpp"

using namespace twfd;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out FILE [--port N] [--sender-id N]\n"
               "          [--interval-ms N] [--duration-s N] [--csv FILE]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 4100;
  std::uint64_t sender_id = 1;
  long interval_ms = 100;
  long duration_s = 60;
  std::string out_path;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--sender-id") {
      sender_id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--interval-ms") {
      interval_ms = std::stol(next());
    } else if (arg == "--duration-s") {
      duration_s = std::stol(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (out_path.empty() || duration_s <= 0 || interval_ms <= 0) usage(argv[0]);

  try {
    net::EventLoop loop(port);
    service::Dispatcher dispatch(loop.runtime());
    service::TraceRecorder recorder("recorded", ticks_from_ms(interval_ms));
    dispatch.on_heartbeat(
        [&](PeerId, const net::HeartbeatMsg& m, Tick at) {
          if (m.sender_id == sender_id) recorder.record(m, at);
        });

    std::printf("recording sender %llu on udp port %u for %ld s...\n",
                static_cast<unsigned long long>(sender_id), loop.local_port(),
                duration_s);
    loop.run_for(ticks_from_sec(duration_s));

    const auto trace = recorder.trace();
    trace::save_binary_file(trace, out_path);
    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      trace::save_csv(trace, csv);
    }

    const auto stats = trace::compute_stats(trace, /*skew_known=*/false);
    std::printf("captured %zu heartbeats (%zu lost) -> %s\n",
                recorder.recorded(), recorder.lost(), out_path.c_str());
    std::printf("p_L=%.5f  V(D)=%.3e s^2  max gap=%.3f s\n",
                stats.loss_probability, stats.delay_variance_s2,
                stats.interarrival_max_s);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_record: %s\n", e.what());
    return 1;
  }
}

// twfd_supervisord — supervised daemon fleet for the TWFD runtime.
//
// Reads a declarative fleet config (see supervise/fleet_config.hpp),
// forks and watches each service through the supervise::Supervisor
// state machine: heartbeat-pipe liveness, SIGKILL for hung children,
// capped exponential backoff with jitter for crashed ones, and parking
// for fatal exit codes (bad config never crash-loops).
//
//   twfd_supervisord --config fleet.conf [--status-file PATH]
//                    [--metrics-port N] [--duration-s 0]
//
// duration 0 = run until SIGTERM/SIGINT, which escalates per service:
// SIGTERM, grace_ms, SIGKILL — then exits 0.
//
// --status-file atomically rewrites one `name state pid restarts` line
// per service after every transition (poll-friendly for scripts).
// --metrics-port serves twfd_supervisor_* gauges/counters as Prometheus
// text on http://0.0.0.0:PORT/metrics.
//
// Exit codes follow the fleet convention (supervise/exit_codes.hpp):
// a malformed config exits 78 (EX_CONFIG) so a supervisor-of-supervisors
// parks it instead of retrying.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape_server.hpp"
#include "supervise/daemon.hpp"
#include "supervise/exit_codes.hpp"
#include "supervise/fleet_config.hpp"
#include "supervise/supervisor.hpp"

using namespace twfd;

namespace {

struct Options {
  std::string config_path;
  std::string status_file;
  long duration_s = 0;
  std::uint16_t metrics_port = 0;
  bool have_metrics = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE [--status-file PATH]\n"
               "          [--metrics-port N] [--duration-s N]\n",
               argv0);
  std::exit(supervise::kExitUsage);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--config") {
      opt.config_path = next();
    } else if (arg == "--status-file") {
      opt.status_file = next();
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else if (arg == "--metrics-port") {
      opt.metrics_port = static_cast<std::uint16_t>(std::stoi(next()));
      opt.have_metrics = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.config_path.empty()) usage(argv[0]);
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  supervise::install_shutdown_handlers();
  const Options opt = parse_args(argc, argv);

  supervise::FleetConfig fleet;
  try {
    fleet = supervise::load_fleet_config(opt.config_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_supervisord: %s\n", e.what());
    return supervise::kExitConfig;
  }

  try {
    std::vector<std::string> names;
    names.reserve(fleet.services.size());
    for (const auto& s : fleet.services) names.push_back(s.name);

    supervise::Supervisor::Options sup_opts;
    sup_opts.status_file = opt.status_file;
    sup_opts.state_hook = [](const std::string& service,
                             supervise::ChildState from,
                             supervise::ChildState to) {
      std::fprintf(stderr, "supervisord: %s %s -> %s\n", service.c_str(),
                   supervise::to_string(from), supervise::to_string(to));
    };
    supervise::Supervisor sup(fleet, std::move(sup_opts));

    obs::Registry registry;
    obs::SuperviseExport sup_export(registry, names);
    registry.add_collect_hook(
        [&] { sup_export.update(sup.stats(), sup.status()); });

    std::unique_ptr<obs::ScrapeServer> scrape;
    if (opt.have_metrics) {
      scrape = std::make_unique<obs::ScrapeServer>(
          registry, obs::ScrapeServer::Params{.port = opt.metrics_port});
      scrape->start();
    }

    sup.start();
    std::fprintf(stderr, "supervisord up: %zu services from %s%s%s\n",
                 fleet.services.size(), opt.config_path.c_str(),
                 scrape ? ", metrics on http tcp/" : "",
                 scrape ? std::to_string(scrape->port()).c_str() : "");

    SteadyClock clock;
    const Tick deadline = opt.duration_s > 0
                              ? clock.now() + ticks_from_sec(opt.duration_s)
                              : 0;
    while (!supervise::shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (deadline != 0 && clock.now() >= deadline) break;
    }
    if (supervise::shutdown_requested()) {
      std::fprintf(stderr, "supervisord: shutdown signal, stopping fleet\n");
    }

    if (scrape) scrape->stop();
    sup.stop();
    std::fputs(obs::render_text(registry).c_str(), stdout);
    return supervise::kExitOk;
  } catch (const std::system_error& e) {
    std::fprintf(stderr, "twfd_supervisord: %s\n", e.what());
    return supervise::classify_startup_errno(e.code().value());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_supervisord: %s\n", e.what());
    return 1;
  }
}

#!/usr/bin/env sh
# The full pre-merge gate, in the order a reviewer would run it:
#
#   1. tier-1: release configure + build + the complete ctest suite
#      (the command ROADMAP.md names as the bar every change must hold);
#   2. the `chaos` label on its own (fault plans, chaos TCP proxy,
#      reconnecting client + backoff envelope, worker-kill parity, and
#      the federation socket E2E with its interior kill/restart) so a
#      resilience regression is named by its lane, not buried in the
#      full run;
#   3. tools/sanitize_check.sh — ASan+UBSan over the whole suite —
#      followed by explicit chaos and federation passes in the same
#      sanitized tree (the federation sim drives 100k peers through the
#      digest codec, exactly the buffers ASan should watch);
#   4. tools/tsan_check.sh — TSan over the `threaded` label (the MPSC
#      queues, the sharded runtime + supervisor, and the FDaaS API
#      server/client).
#
#   tools/ci_check.sh [build-dir]   (default: build)
#
# Each stage fails the script immediately (set -e); sanitizer stages use
# their own build trees (build-sanitize, build-tsan), so the tier-1 tree
# stays a plain release build.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu)"

echo "== tier-1: build + ctest ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== chaos suite, plain (label 'chaos', $BUILD_DIR) =="
ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure

echo "== bench smoke (label 'bench', $BUILD_DIR) =="
# Tiny-sweep runs of the scaling benches (shard_scale, net_hotpath),
# registered in bench/CMakeLists.txt; they write their JSON into the
# bench build dir so a real committed BENCH_*.json is never clobbered.
ctest --test-dir "$BUILD_DIR" -L bench --output-on-failure
# The shard_scale JSON is a contract: downstream tooling reads the
# per-datagram cost column, so its disappearance must fail the gate.
grep -q '"ns_per_datagram"' "$BUILD_DIR/bench/BENCH_shard_scale.json" || {
  echo "ci_check: BENCH_shard_scale.json lost the ns_per_datagram field" >&2
  exit 1
}
# Same contract for the honesty columns: a speedup row must say whether
# every worker owned a core when it was measured.
grep -q '"speedup_valid"' "$BUILD_DIR/bench/BENCH_shard_scale.json" || {
  echo "ci_check: BENCH_shard_scale.json lost the speedup_valid field" >&2
  exit 1
}

echo "== ASan+UBSan (build-sanitize) =="
tools/sanitize_check.sh

echo "== chaos suite under ASan+UBSan (build-sanitize) =="
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-sanitize -L chaos --output-on-failure

echo "== federation suite under ASan+UBSan (build-sanitize) =="
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-sanitize -L federation --output-on-failure

echo "== TSan, label 'threaded' (build-tsan) =="
tools/tsan_check.sh

echo "== ci_check: all stages passed =="

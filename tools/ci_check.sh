#!/usr/bin/env sh
# The full pre-merge gate, in the order a reviewer would run it:
#
#   1. tier-1: release configure + build + the complete ctest suite
#      (the command ROADMAP.md names as the bar every change must hold);
#   2. the `chaos` label on its own (fault plans, chaos TCP proxy,
#      reconnecting client + backoff envelope, worker-kill parity, the
#      federation socket E2E with its interior kill/restart, and the
#      kill-9 rolling-restart E2E — a real twfd_fdaasd under the
#      process supervisor, crash-persisted snapshots, zero verdict
#      loss) so a resilience regression is named by its lane, not
#      buried in the full run;
#   3. the `supervise` label on its own (the Supervisor state machine
#      over real fork/exec children: backoff envelope, hung-child
#      SIGKILL, fatal-exit parking, SIGTERM->SIGKILL escalation, and
#      the fleet-config parser);
#   4. tools/sanitize_check.sh — ASan+UBSan over the whole suite —
#      followed by explicit chaos, federation and supervise passes in
#      the same sanitized tree (the federation sim drives 100k peers
#      through the digest codec; the supervise suite forks from a
#      threaded parent, exactly where lifetime bugs bite);
#   5. a live scrape drill: twfd_monitor, twfd_fdaasd and
#      twfd_supervisord are started with --metrics-port, /metrics is
#      curled and the required metric families (event loop, QoS
#      conformance, shard heartbeats, supervisor child state) must be
#      present in the exposition — the observability contract the
#      dashboards are built on;
#   6. tools/tsan_check.sh — TSan over the `threaded`, `obs` and
#      `timers` labels (the MPSC queues, the sharded runtime +
#      supervisor, the FDaaS API server/client, the process supervisor
#      forking from a multithreaded parent, the metrics registry
#      under concurrent scrape, and the timing-wheel timer core).
#
#   tools/ci_check.sh [build-dir]   (default: build)
#
# Each stage fails the script immediately (set -e); sanitizer stages use
# their own build trees (build-sanitize, build-tsan), so the tier-1 tree
# stays a plain release build.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu)"

echo "== tier-1: build + ctest ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== chaos suite, plain (label 'chaos', $BUILD_DIR) =="
ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure

echo "== supervise suite, plain (label 'supervise', $BUILD_DIR) =="
ctest --test-dir "$BUILD_DIR" -L supervise --output-on-failure

echo "== bench smoke (label 'bench', $BUILD_DIR) =="
# Tiny-sweep runs of the scaling benches (shard_scale, net_hotpath),
# registered in bench/CMakeLists.txt; they write their JSON into the
# bench build dir so a real committed BENCH_*.json is never clobbered.
ctest --test-dir "$BUILD_DIR" -L bench --output-on-failure
# The shard_scale JSON is a contract: downstream tooling reads the
# per-datagram cost column, so its disappearance must fail the gate.
grep -q '"ns_per_datagram"' "$BUILD_DIR/bench/BENCH_shard_scale.json" || {
  echo "ci_check: BENCH_shard_scale.json lost the ns_per_datagram field" >&2
  exit 1
}
# Same contract for the honesty columns: a speedup row must say whether
# every worker owned a core when it was measured.
grep -q '"speedup_valid"' "$BUILD_DIR/bench/BENCH_shard_scale.json" || {
  echo "ci_check: BENCH_shard_scale.json lost the speedup_valid field" >&2
  exit 1
}
# The timer bench's headline column: the per-heartbeat re-arm cost the
# timing wheel exists to bound. Its disappearance must fail the gate.
grep -q '"ns_per_reschedule"' "$BUILD_DIR/bench/BENCH_timer_hotpath.json" || {
  echo "ci_check: BENCH_timer_hotpath.json lost the ns_per_reschedule field" >&2
  exit 1
}

echo "== timer reschedule zero-alloc assertion ($BUILD_DIR) =="
# timer_hotpath counts heap allocations on the wheel's reschedule path
# via a replacement operator new and exits non-zero if there are any —
# the steady-state O(1)/alloc-free claim, checked on every gate run.
( cd "$BUILD_DIR/bench" && FD_BENCH_TIMER_COUNTS=1000 ./timer_hotpath >/dev/null )

echo "== metrics scrape drill ($BUILD_DIR) =="
# Start both daemons with a metrics endpoint, scrape them, and require
# the families the dashboards key on. A missing family means an export
# was dropped in a refactor — exactly the regression this stage exists
# to catch. curl reads to EOF on the HTTP/1.0 close-delimited response.
MON_METRICS_PORT=14971
FDAASD_METRICS_PORT=14973
"$BUILD_DIR/tools/twfd_monitor" --port 14970 --sender-id 1 --interval-ms 50 \
  --metrics-port "$MON_METRICS_PORT" --duration-s 6 >/dev/null 2>&1 &
MON_PID=$!
"$BUILD_DIR/tools/twfd_fdaasd" --service-port 14972 --api-port 14974 \
  --metrics-port "$FDAASD_METRICS_PORT" --duration-s 6 \
  --stats-interval-s 0 >/dev/null 2>&1 &
FDAASD_PID=$!
sleep 2
MON_SCRAPE="$(curl -sf "http://127.0.0.1:$MON_METRICS_PORT/metrics")" || {
  echo "ci_check: scraping twfd_monitor failed" >&2
  kill "$MON_PID" "$FDAASD_PID" 2>/dev/null || true
  exit 1
}
FDAASD_SCRAPE="$(curl -sf "http://127.0.0.1:$FDAASD_METRICS_PORT/metrics")" || {
  echo "ci_check: scraping twfd_fdaasd failed" >&2
  kill "$MON_PID" "$FDAASD_PID" 2>/dev/null || true
  exit 1
}
for family in twfd_loop_datagrams_received_total twfd_qos_detection_time_seconds \
              twfd_qos_violations_total twfd_scrape_requests_total; do
  echo "$MON_SCRAPE" | grep -q "^# TYPE $family " || {
    echo "ci_check: twfd_monitor /metrics lost family '$family'" >&2
    kill "$MON_PID" "$FDAASD_PID" 2>/dev/null || true
    exit 1
  }
done
for family in twfd_shard_heartbeats_total twfd_qos_detection_time_seconds \
              twfd_qos_mistake_rate twfd_qos_mistake_duration_seconds \
              twfd_api_sessions_active twfd_qos_violations_total \
              twfd_snapshot_saves_total twfd_snapshot_age_seconds; do
  echo "$FDAASD_SCRAPE" | grep -q "^# TYPE $family " || {
    echo "ci_check: twfd_fdaasd /metrics lost family '$family'" >&2
    kill "$MON_PID" "$FDAASD_PID" 2>/dev/null || true
    exit 1
  }
done
wait "$MON_PID" "$FDAASD_PID"

# Same drill for the supervisor daemon: a one-service fleet (a short
# twfd_monitor run) long enough to scrape, then a clean SIGTERM drain
# when --duration-s expires.
SUP_METRICS_PORT=14975
SUP_CONF="$BUILD_DIR/ci_fleet.conf"
cat > "$SUP_CONF" <<EOF
[service mon]
exec = $BUILD_DIR/tools/twfd_monitor --port 14976 --sender-id 9 --interval-ms 50 --duration-s 30
grace_ms = 2000
EOF
"$BUILD_DIR/tools/twfd_supervisord" --config "$SUP_CONF" \
  --metrics-port "$SUP_METRICS_PORT" --duration-s 6 >/dev/null 2>&1 &
SUP_PID=$!
sleep 2
SUP_SCRAPE="$(curl -sf "http://127.0.0.1:$SUP_METRICS_PORT/metrics")" || {
  echo "ci_check: scraping twfd_supervisord failed" >&2
  kill "$SUP_PID" 2>/dev/null || true
  exit 1
}
for family in twfd_supervisor_restarts_total twfd_supervisor_child_state \
              twfd_supervisor_up_children twfd_supervisor_child_backoff_seconds; do
  echo "$SUP_SCRAPE" | grep -q "^# TYPE $family " || {
    echo "ci_check: twfd_supervisord /metrics lost family '$family'" >&2
    kill "$SUP_PID" 2>/dev/null || true
    exit 1
  }
done
wait "$SUP_PID"
echo "scrape drill: all required families present"

echo "== ASan+UBSan (build-sanitize) =="
tools/sanitize_check.sh

echo "== chaos suite under ASan+UBSan (build-sanitize) =="
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-sanitize -L chaos --output-on-failure

echo "== federation suite under ASan+UBSan (build-sanitize) =="
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-sanitize -L federation --output-on-failure

echo "== supervise suite under ASan+UBSan (build-sanitize) =="
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-sanitize -L supervise --output-on-failure

echo "== TSan, labels 'threaded' + 'obs' + 'timers' (build-tsan) =="
tools/tsan_check.sh

echo "== ci_check: all stages passed =="

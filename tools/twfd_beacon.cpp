// twfd_beacon — the monitored side as a standalone daemon.
//
// Emits heartbeats to one or more monitors and honours IntervalRequest
// messages (so shared FD services can negotiate Delta_i,min down).
//
//   twfd_beacon --id 7 --interval-ms 100 --target 10.0.0.5:4100 \
//               [--target HOST:PORT ...] [--port 0] [--duration-s 0]
//
// duration 0 = run until killed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"

using namespace twfd;

namespace {

struct Options {
  std::uint64_t id = 1;
  long interval_ms = 100;
  std::uint16_t port = 0;
  long duration_s = 0;
  std::vector<net::SocketAddress> targets;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --target HOST:PORT [--target ...] [--id N]\n"
               "          [--interval-ms N] [--port N] [--duration-s N]\n",
               argv0);
  std::exit(2);
}

net::SocketAddress parse_hostport(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("expected HOST:PORT, got: " + s);
  }
  const int port = std::stoi(s.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw std::invalid_argument("bad port in: " + s);
  }
  return net::SocketAddress::parse(s.substr(0, colon),
                                   static_cast<std::uint16_t>(port));
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--id") {
      opt.id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--interval-ms") {
      opt.interval_ms = std::stol(next());
    } else if (arg == "--port") {
      opt.port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else if (arg == "--target") {
      opt.targets.push_back(parse_hostport(next()));
    } else {
      usage(argv[0]);
    }
  }
  if (opt.targets.empty() || opt.interval_ms <= 0) usage(argv[0]);
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);

    net::EventLoop loop(opt.port);
    service::Dispatcher dispatch(loop.runtime());
    service::HeartbeatSender sender(
        loop.runtime(), {opt.id, ticks_from_ms(opt.interval_ms)});
    for (const auto& target : opt.targets) {
      sender.add_target(loop.add_peer(target));
      std::printf("beacon %llu -> %s every %ld ms\n",
                  static_cast<unsigned long long>(opt.id),
                  target.to_string().c_str(), opt.interval_ms);
    }
    dispatch.on_interval_request(
        [&](PeerId from, const net::IntervalRequestMsg& msg) {
          sender.handle_interval_request(from, msg);
          std::printf("interval request from peer %llu: %s (effective %s)\n",
                      static_cast<unsigned long long>(from),
                      format_ticks(msg.requested_interval).c_str(),
                      format_ticks(sender.effective_interval()).c_str());
          std::fflush(stdout);
        });

    sender.start();
    if (opt.duration_s > 0) {
      loop.run_for(ticks_from_sec(opt.duration_s));
    } else {
      while (true) loop.run_for(ticks_from_sec(3600));
    }
    sender.stop();
    std::printf("sent %lld heartbeats\n",
                static_cast<long long>(sender.sent_count()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_beacon: %s\n", e.what());
    return 1;
  }
}

#!/usr/bin/env sh
# ASan+UBSan build-and-test pass (tier-1 companion; see README "Build,
# test, reproduce"). The timer core and the raw-storage ring buffer are
# lifetime-sensitive; this keeps them sanitizer-checked on every change.
#
#   tools/sanitize_check.sh [build-dir]   (default: build-sanitize)
#
# Runs the test suite only (benches/examples are skipped for speed).
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DTWFD_SANITIZE=ON \
  -DTWFD_BUILD_BENCH=OFF \
  -DTWFD_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu)"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu)"

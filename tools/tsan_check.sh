#!/usr/bin/env sh
# ThreadSanitizer pass over the concurrency suites (CTest labels
# `threaded` — the MPSC command queue, the sharded monitoring runtime
# including the supervisor/restart tests, the FDaaS API server/client,
# and the process supervisor (fork/exec from a multithreaded parent:
# TSan watches the signal handler, the SIGCHLD self-pipe and the
# reaper/poll thread against the public accessors) — `obs` —
# concurrent scrape-vs-update on the metrics registry — and `timers` —
# the timing-wheel core, whose EventLoop adapter sits on the
# cross-thread wake path; see README "Build, test, reproduce" and
# docs/runtime.md "Threading model" / "Observability").
#
#   tools/tsan_check.sh [build-dir]   (default: build-tsan)
#
# Builds with TWFD_SANITIZE_THREAD and runs ONLY the labelled tests:
# TSan's happens-before tracking makes the full suite slow, and the
# single-threaded tests cannot race by construction.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DTWFD_SANITIZE_THREAD=ON \
  -DTWFD_BUILD_BENCH=OFF \
  -DTWFD_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || sysctl -n hw.ncpu)" \
  --target test_threaded test_obs test_timers test_supervise
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "$BUILD_DIR" -L 'threaded|obs|timers' --output-on-failure

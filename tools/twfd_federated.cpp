// twfd_federated — one node of the federated monitoring tier.
//
// Runs a FederatedMonitorNode: the sharded 2W-FD runtime (UDP heartbeat
// ingest), the FDaaS wire API (TCP), the federation core, and — when
// --parent is given — an upstream link pushing Digest frames to the
// parent's API port. Without --parent the node is the federation root.
//
//   # root (aggregates, serves subscribers)
//   twfd_federated --node-id 1 --api-port 4300
//   # interior (child of the root)
//   twfd_federated --node-id 2 --api-port 4301 --parent 127.0.0.1:4300
//   # leaf (child of the interior; monitors real peers)
//   twfd_federated --node-id 4 --api-port 4303 --service-port 4103 \
//                  --parent 127.0.0.1:4301 --flush-ms 50
//
// A dashboard connects to ANY node's API port and subscribes to a
// federated peer (zero peer address, peer key as sender_id) to receive
// Suspect/Trust events for that peer from anywhere in the subtree.
//
// duration 0 = run until killed.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

#include "federation/federated_node.hpp"

using namespace twfd;

namespace {

struct Options {
  std::uint64_t node_id = 1;
  std::uint16_t api_port = 4300;
  std::uint16_t service_port = 0;
  std::size_t shards = 1;
  long flush_ms = 50;
  long lease_ms = 10'000;
  long stats_interval_s = 10;
  long duration_s = 0;
  std::optional<net::SocketAddress> parent;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--node-id N] [--api-port N] [--service-port N]\n"
               "          [--shards N] [--parent IP:PORT] [--flush-ms N]\n"
               "          [--lease-ms N] [--stats-interval-s N] [--duration-s N]\n",
               argv0);
  std::exit(2);
}

net::SocketAddress parse_addr(const std::string& spec, const char* argv0) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) usage(argv0);
  try {
    return net::SocketAddress::parse(
        spec.substr(0, colon),
        static_cast<std::uint16_t>(std::stoi(spec.substr(colon + 1))));
  } catch (const std::exception&) {
    usage(argv0);
  }
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--node-id") {
      opt.node_id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--api-port") {
      opt.api_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--service-port") {
      opt.service_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--shards") {
      opt.shards = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--parent") {
      opt.parent = parse_addr(next(), argv[0]);
    } else if (arg == "--flush-ms") {
      opt.flush_ms = std::stol(next());
    } else if (arg == "--lease-ms") {
      opt.lease_ms = std::stol(next());
    } else if (arg == "--stats-interval-s") {
      opt.stats_interval_s = std::stol(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else {
      usage(argv[0]);
    }
  }
  if (opt.node_id == 0 || opt.shards == 0 || opt.flush_ms <= 0 ||
      opt.lease_ms <= 0) {
    usage(argv[0]);
  }
  return opt;
}

void print_stats(federation::FederatedMonitorNode& node) {
  const auto core = node.core_stats();
  const auto api = node.server().stats();
  std::printf(
      "[federated] peers=%zu local=%llu | ingest: digests=%llu applied=%llu "
      "stale=%llu foreign=%llu | flush: frames=%llu entries=%llu | "
      "fed subs=%llu fed events=%llu | sessions=%llu\n",
      node.peer_count(), static_cast<unsigned long long>(core.local_transitions),
      static_cast<unsigned long long>(core.digests_ingested),
      static_cast<unsigned long long>(core.entries_applied),
      static_cast<unsigned long long>(core.entries_stale),
      static_cast<unsigned long long>(core.entries_foreign),
      static_cast<unsigned long long>(core.frames_flushed),
      static_cast<unsigned long long>(core.entries_flushed),
      static_cast<unsigned long long>(api.fed_subscriptions_active),
      static_cast<unsigned long long>(api.fed_events_pushed),
      static_cast<unsigned long long>(api.sessions_active));
  if (node.link() != nullptr) {
    const auto link = node.link()->stats();
    std::printf(
        "[federated] upstream: connected=%d sent=%llu dropped=%llu "
        "snapshots=%llu reconnects=%llu\n",
        node.link()->connected() ? 1 : 0,
        static_cast<unsigned long long>(link.frames_sent),
        static_cast<unsigned long long>(link.frames_dropped),
        static_cast<unsigned long long>(link.snapshots_sent),
        static_cast<unsigned long long>(link.reconnects));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);

    federation::FederatedMonitorNode::Params params;
    params.node_id = opt.node_id;
    params.service.shards = opt.shards;
    params.service.port = opt.service_port;
    params.server.port = opt.api_port;
    params.server.lease = ticks_from_ms(opt.lease_ms);
    params.core.flush_interval = ticks_from_ms(opt.flush_ms);
    params.parent = opt.parent;

    federation::FederatedMonitorNode node(std::move(params));
    node.start();

    std::printf("federated node %llu up: heartbeats on udp/%u, API on tcp/%u, "
                "flush %ld ms%s%s\n",
                static_cast<unsigned long long>(opt.node_id),
                node.service_port(), node.api_port(), opt.flush_ms,
                opt.parent ? ", parent " : " (root)",
                opt.parent ? opt.parent->to_string().c_str() : "");
    std::fflush(stdout);

    SteadyClock clock;
    const Tick start = clock.now();
    const Tick deadline =
        opt.duration_s > 0 ? start + ticks_from_sec(opt.duration_s) : 0;
    Tick next_stats = start + ticks_from_sec(opt.stats_interval_s);
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const Tick now = clock.now();
      if (deadline != 0 && now >= deadline) break;
      if (opt.stats_interval_s > 0 && now >= next_stats) {
        print_stats(node);
        next_stats = now + ticks_from_sec(opt.stats_interval_s);
      }
    }

    print_stats(node);
    node.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_federated: %s\n", e.what());
    return 1;
  }
}

// twfd_federated — one node of the federated monitoring tier.
//
// Runs a FederatedMonitorNode: the sharded 2W-FD runtime (UDP heartbeat
// ingest), the FDaaS wire API (TCP), the federation core, and — when
// --parent is given — an upstream link pushing Digest frames to the
// parent's API port. Without --parent the node is the federation root.
//
//   # root (aggregates, serves subscribers)
//   twfd_federated --node-id 1 --api-port 4300
//   # interior (child of the root)
//   twfd_federated --node-id 2 --api-port 4301 --parent 127.0.0.1:4300
//   # leaf (child of the interior; monitors real peers)
//   twfd_federated --node-id 4 --api-port 4303 --service-port 4103 \
//                  --parent 127.0.0.1:4301 --flush-ms 50
//
// A dashboard connects to ANY node's API port and subscribes to a
// federated peer (zero peer address, peer key as sender_id) to receive
// Suspect/Trust events for that peer from anywhere in the subtree.
//
// duration 0 = run until killed.
//
// --metrics-port serves the node's obs::Registry (shard runtime, API
// server, federation core + upstream link, per-subscription QoS
// conformance) as Prometheus text on http://0.0.0.0:PORT/metrics; the
// periodic stats dump on stdout is the same text view. Banners go to
// stderr.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <system_error>
#include <thread>

#include "federation/federated_node.hpp"
#include "supervise/daemon.hpp"
#include "supervise/exit_codes.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/qos_tracker.hpp"
#include "obs/scrape_server.hpp"

using namespace twfd;

namespace {

struct Options {
  std::uint64_t node_id = 1;
  std::uint16_t api_port = 4300;
  std::uint16_t service_port = 0;
  std::size_t shards = 1;
  long flush_ms = 50;
  long lease_ms = 10'000;
  long stats_interval_s = 10;
  long duration_s = 0;
  std::optional<net::SocketAddress> parent;
  std::uint16_t metrics_port = 0;
  bool have_metrics = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--node-id N] [--api-port N] [--service-port N]\n"
               "          [--shards N] [--parent IP:PORT] [--flush-ms N]\n"
               "          [--lease-ms N] [--stats-interval-s N] [--duration-s N]\n"
               "          [--metrics-port N]\n",
               argv0);
  std::exit(2);
}

net::SocketAddress parse_addr(const std::string& spec, const char* argv0) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) usage(argv0);
  try {
    return net::SocketAddress::parse(
        spec.substr(0, colon),
        static_cast<std::uint16_t>(std::stoi(spec.substr(colon + 1))));
  } catch (const std::exception&) {
    usage(argv0);
  }
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--node-id") {
      opt.node_id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--api-port") {
      opt.api_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--service-port") {
      opt.service_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--shards") {
      opt.shards = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--parent") {
      opt.parent = parse_addr(next(), argv[0]);
    } else if (arg == "--flush-ms") {
      opt.flush_ms = std::stol(next());
    } else if (arg == "--lease-ms") {
      opt.lease_ms = std::stol(next());
    } else if (arg == "--stats-interval-s") {
      opt.stats_interval_s = std::stol(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else if (arg == "--metrics-port") {
      opt.metrics_port = static_cast<std::uint16_t>(std::stoi(next()));
      opt.have_metrics = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.node_id == 0 || opt.shards == 0 || opt.flush_ms <= 0 ||
      opt.lease_ms <= 0) {
    usage(argv[0]);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  supervise::install_shutdown_handlers();
  supervise::ChildHeartbeat heartbeat = supervise::ChildHeartbeat::from_env();
  try {
    const Options opt = parse_args(argc, argv);

    obs::Registry registry;
    obs::QosTracker tracker(registry);

    federation::FederatedMonitorNode::Params params;
    params.node_id = opt.node_id;
    params.service.shards = opt.shards;
    params.service.port = opt.service_port;
    params.service.registry = &registry;
    params.service.service.qos_tracker = &tracker;
    params.server.port = opt.api_port;
    params.server.lease = ticks_from_ms(opt.lease_ms);
    params.server.registry = &registry;
    params.core.flush_interval = ticks_from_ms(opt.flush_ms);
    params.parent = opt.parent;

    federation::FederatedMonitorNode node(std::move(params));
    node.start();

    // core_stats() marshals through the API thread and link stats are
    // mutex-guarded, so one collect hook serves both the scrape thread
    // and the stdout dump.
    SteadyClock clock;
    obs::FederationExport fed_export(registry);
    obs::ShardExport shard_export(registry);
    registry.add_collect_hook([&] {
      shard_export.update(node.service().merged_stats(), node.service().shard_count());
      fed_export.update_core(node.core_stats());
      if (node.link() != nullptr) fed_export.update_link(node.link()->stats());
      tracker.refresh(clock.now());
    });

    std::unique_ptr<obs::ScrapeServer> scrape;
    if (opt.have_metrics) {
      scrape = std::make_unique<obs::ScrapeServer>(
          registry, obs::ScrapeServer::Params{.port = opt.metrics_port});
      scrape->start();
    }

    std::fprintf(stderr,
                 "federated node %llu up: heartbeats on udp/%u, API on tcp/%u, "
                 "flush %ld ms%s%s%s%s\n",
                 static_cast<unsigned long long>(opt.node_id),
                 node.service_port(), node.api_port(), opt.flush_ms,
                 opt.parent ? ", parent " : " (root)",
                 opt.parent ? opt.parent->to_string().c_str() : "",
                 scrape ? ", metrics on http tcp/" : "",
                 scrape ? std::to_string(scrape->port()).c_str() : "");

    const auto print_stats = [&registry] {
      std::fputs(obs::render_text(registry).c_str(), stdout);
      std::fflush(stdout);
    };

    const Tick start = clock.now();
    const Tick deadline =
        opt.duration_s > 0 ? start + ticks_from_sec(opt.duration_s) : 0;
    Tick next_stats = start + ticks_from_sec(opt.stats_interval_s);
    heartbeat.beat();
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      heartbeat.beat();
      if (supervise::shutdown_requested()) {
        std::fprintf(stderr, "federated: shutdown signal, draining\n");
        break;
      }
      const Tick now = clock.now();
      if (deadline != 0 && now >= deadline) break;
      if (opt.stats_interval_s > 0 && now >= next_stats) {
        print_stats();
        next_stats = now + ticks_from_sec(opt.stats_interval_s);
      }
    }

    print_stats();
    if (scrape) scrape->stop();
    node.stop();
    return supervise::kExitOk;
  } catch (const std::system_error& e) {
    std::fprintf(stderr, "twfd_federated: %s\n", e.what());
    return supervise::classify_startup_errno(e.code().value());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_federated: %s\n", e.what());
    return 1;
  }
}

// twfd_monitor — the monitoring side as a standalone daemon.
//
// Watches one beacon with the 2W-FD detector (or a baseline) and logs
// Suspect/Trust transitions with timestamps. With --qos, runs Chen's
// configuration procedure from a requirements tuple and requests the
// resulting heartbeat interval from the beacon.
//
//   twfd_monitor --port 4100 --sender-id 7 --interval-ms 100
//                [--detector 2w|chen|bertier|phi|ed|fixed]
//                [--margin-ms 115 | --threshold 2.0]
//                [--qos TD_S,TMR_PER_S,TM_S --beacon HOST:PORT]
//                [--chaos SPEC] [--chaos-seed N]
//                [--duration-s 0]
//
// --chaos runs inbound datagrams through a deterministic fault plan
// (drop/dup/reorder/trunc/delay; see net/fault.hpp for the grammar)
// before the dispatcher — a live fault drill. The active plan and its
// seed are logged; --chaos-seed overrides the seed so a logged run can
// be reproduced exactly.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>

#include "config/qos_config.hpp"
#include "core/factory.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "service/dispatcher.hpp"
#include "service/monitor.hpp"

using namespace twfd;

namespace {

struct Options {
  std::uint16_t port = 4100;
  std::uint64_t sender_id = 1;
  long interval_ms = 100;
  std::string detector = "2w";
  double margin_ms = 115;
  double threshold = 2.0;
  long duration_s = 0;
  bool have_qos = false;
  config::QosRequirements qos;
  std::string beacon;
  std::string chaos;
  std::uint64_t chaos_seed = 0;
  bool have_chaos_seed = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--sender-id N] [--interval-ms N]\n"
      "          [--detector 2w|chen|bertier|phi|ed|fixed]\n"
      "          [--margin-ms X | --threshold X] [--duration-s N]\n"
      "          [--qos TD,TMR,TM --beacon HOST:PORT]\n"
      "          [--chaos SPEC] [--chaos-seed N]\n",
      argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--port") {
      opt.port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--sender-id") {
      opt.sender_id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--interval-ms") {
      opt.interval_ms = std::stol(next());
    } else if (arg == "--detector") {
      opt.detector = next();
    } else if (arg == "--margin-ms") {
      opt.margin_ms = std::stod(next());
    } else if (arg == "--threshold") {
      opt.threshold = std::stod(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else if (arg == "--beacon") {
      opt.beacon = next();
    } else if (arg == "--chaos") {
      opt.chaos = next();
    } else if (arg == "--chaos-seed") {
      opt.chaos_seed = std::strtoull(next().c_str(), nullptr, 10);
      opt.have_chaos_seed = true;
    } else if (arg == "--qos") {
      const std::string spec = next();
      if (std::sscanf(spec.c_str(), "%lf,%lf,%lf", &opt.qos.td_upper_s,
                      &opt.qos.tmr_upper_per_s, &opt.qos.tm_upper_s) != 3) {
        usage(argv[0]);
      }
      opt.have_qos = true;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

core::DetectorSpec spec_from(const Options& opt) {
  const Tick margin = ticks_from_seconds(opt.margin_ms * 1e-3);
  if (opt.detector == "2w") return core::DetectorSpec::two_window(1, 1000, margin);
  if (opt.detector == "chen") return core::DetectorSpec::chen(1000, margin);
  if (opt.detector == "bertier") return core::DetectorSpec::bertier();
  if (opt.detector == "phi") return core::DetectorSpec::phi(opt.threshold);
  if (opt.detector == "ed") return core::DetectorSpec::ed(opt.threshold);
  if (opt.detector == "fixed") return core::DetectorSpec::fixed_timeout(margin);
  throw std::invalid_argument("unknown detector: " + opt.detector);
}

void log_line(const char* what) {
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof buf, "%H:%M:%S", std::localtime(&now));
  std::printf("[%s] %s\n", buf, what);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opt = parse_args(argc, argv);

    Tick interval = ticks_from_ms(opt.interval_ms);
    Tick margin = ticks_from_seconds(opt.margin_ms * 1e-3);
    if (opt.have_qos) {
      // Derive (Delta_i, Delta_to) from the requirements tuple; network
      // behaviour defaults are conservative LAN-ish numbers.
      const config::NetworkBehaviour net{0.01, 1e-4};
      const auto cfg = config::chen_configure(opt.qos, net);
      if (!cfg.feasible) {
        std::fprintf(stderr, "QoS tuple not achievable\n");
        return 1;
      }
      interval = ticks_from_seconds(cfg.interval_s);
      margin = ticks_from_seconds(cfg.margin_s);
      opt.margin_ms = cfg.margin_s * 1e3;
      std::printf("configured from QoS tuple: Delta_i=%s Delta_to=%s\n",
                  format_ticks(interval).c_str(), format_ticks(margin).c_str());
    }

    net::EventLoop loop(opt.port);
    service::Dispatcher dispatch(loop.runtime());

    auto spec = spec_from(opt);
    spec.safety_margin = margin;
    auto detector = core::make_detector(spec, interval);
    std::printf("monitoring sender %llu on udp port %u with %s\n",
                static_cast<unsigned long long>(opt.sender_id), loop.local_port(),
                detector->name().c_str());

    service::Monitor monitor(loop.runtime(), opt.sender_id, std::move(detector),
                             {[](Tick) { log_line("SUSPECT"); },
                              [](Tick) { log_line("TRUST") ; }});
    dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
      monitor.handle_heartbeat(from, m, at);
    });

    // RX chaos: inbound datagrams run through the fault plan before the
    // dispatcher. The seed is always logged so the run is reproducible.
    std::unique_ptr<net::FaultInjector> chaos;
    if (!opt.chaos.empty() || opt.have_chaos_seed) {
      net::FaultPlan plan =
          opt.chaos.empty() ? net::FaultPlan{} : net::FaultPlan::parse(opt.chaos);
      if (opt.have_chaos_seed) plan.seed = opt.chaos_seed;
      chaos = std::make_unique<net::FaultInjector>(
          loop, loop, plan,
          [&](const net::SocketAddress& from, std::span<const std::byte> data,
              Tick arrival) {
            dispatch.ingest(loop.add_peer(from), data, arrival);
          });
      loop.set_receive_handler(
          [&](PeerId from, std::span<const std::byte> data, Tick arrival) {
            chaos->offer(loop.peer_address(from), data, arrival);
          });
      std::printf("chaos plan active: %s\n", plan.to_string().c_str());
    }

    if (opt.have_qos && !opt.beacon.empty()) {
      const auto colon = opt.beacon.rfind(':');
      if (colon == std::string::npos) usage(argv[0]);
      const auto addr = net::SocketAddress::parse(
          opt.beacon.substr(0, colon),
          static_cast<std::uint16_t>(std::stoi(opt.beacon.substr(colon + 1))));
      net::IntervalRequestMsg req{opt.sender_id, interval};
      const auto payload = net::encode(req);
      loop.send(loop.add_peer(addr), payload);
      std::printf("requested interval %s from %s\n",
                  format_ticks(interval).c_str(), addr.to_string().c_str());
    }

    if (opt.duration_s > 0) {
      loop.run_for(ticks_from_sec(opt.duration_s));
    } else {
      while (true) loop.run_for(ticks_from_sec(3600));
    }
    std::printf("saw %llu heartbeats; final: %s\n",
                static_cast<unsigned long long>(monitor.heartbeats_seen()),
                monitor.output() == detect::Output::Trust ? "TRUST" : "SUSPECT");
    const auto& s = loop.stats();
    std::printf(
        "loop stats: rx=%llu tx=%llu | timers sched=%llu resched=%llu "
        "cancel=%llu fired=%llu compact=%llu | wakeups io=%llu timer=%llu "
        "spurious=%llu\n",
        static_cast<unsigned long long>(s.datagrams_received),
        static_cast<unsigned long long>(s.datagrams_sent),
        static_cast<unsigned long long>(s.timers.scheduled),
        static_cast<unsigned long long>(s.timers.rescheduled),
        static_cast<unsigned long long>(s.timers.cancelled),
        static_cast<unsigned long long>(s.timers.fired),
        static_cast<unsigned long long>(s.timers.compactions),
        static_cast<unsigned long long>(s.wakeups_io),
        static_cast<unsigned long long>(s.wakeups_timer),
        static_cast<unsigned long long>(s.wakeups_spurious));
    std::printf(
        "rx batches: n=%llu size=%llu..%llu | stamps kernel=%llu clock=%llu "
        "| truncated=%llu recv_errors=%llu\n",
        static_cast<unsigned long long>(s.rx_batches),
        static_cast<unsigned long long>(s.rx_batch_min),
        static_cast<unsigned long long>(s.rx_batch_max),
        static_cast<unsigned long long>(s.rx_kernel_stamps),
        static_cast<unsigned long long>(s.rx_clock_stamps),
        static_cast<unsigned long long>(s.rx_truncated),
        static_cast<unsigned long long>(s.recv_errors));
    std::printf("drops: send_failures=%llu\n",
                static_cast<unsigned long long>(s.send_soft_failures));
    if (chaos) {
      const auto& cs = chaos->stats();
      std::printf(
          "chaos: offered=%llu passed=%llu dropped=%llu dup=%llu reorder=%llu "
          "trunc=%llu delayed=%llu | decisions=%llu schedule_hash=%016llx\n",
          static_cast<unsigned long long>(cs.offered),
          static_cast<unsigned long long>(cs.passed),
          static_cast<unsigned long long>(cs.dropped),
          static_cast<unsigned long long>(cs.duplicated),
          static_cast<unsigned long long>(cs.reordered),
          static_cast<unsigned long long>(cs.truncated),
          static_cast<unsigned long long>(cs.delayed),
          static_cast<unsigned long long>(chaos->engine().decisions()),
          static_cast<unsigned long long>(chaos->engine().schedule_hash()));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_monitor: %s\n", e.what());
    return 1;
  }
}

// twfd_monitor — the monitoring side as a standalone daemon.
//
// Watches one beacon with the 2W-FD detector (or a baseline) and logs
// Suspect/Trust transitions with timestamps. With --qos, runs Chen's
// configuration procedure from a requirements tuple and requests the
// resulting heartbeat interval from the beacon.
//
//   twfd_monitor --port 4100 --sender-id 7 --interval-ms 100
//                [--detector 2w|chen|bertier|phi|ed|fixed]
//                [--margin-ms 115 | --threshold 2.0]
//                [--qos TD_S,TMR_PER_S,TM_S --beacon HOST:PORT]
//                [--chaos SPEC] [--chaos-seed N]
//                [--metrics-port N] [--duration-s 0]
//
// --chaos runs inbound datagrams through a deterministic fault plan
// (drop/dup/reorder/trunc/delay; see net/fault.hpp for the grammar)
// before the dispatcher — a live fault drill. The active plan and its
// seed are logged; --chaos-seed overrides the seed so a logged run can
// be reproduced exactly.
//
// --metrics-port serves Prometheus text exposition on
// http://0.0.0.0:PORT/metrics (event-loop, chaos and QoS conformance
// metrics); the same text view is printed to stdout at exit. Banners
// and the chaos plan go to stderr — stdout carries only transitions
// and the final metrics dump.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <limits>
#include <memory>
#include <string>
#include <system_error>

#include "config/qos_config.hpp"
#include "core/factory.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/qos_tracker.hpp"
#include "obs/scrape_server.hpp"
#include "service/dispatcher.hpp"
#include "service/monitor.hpp"
#include "supervise/daemon.hpp"
#include "supervise/exit_codes.hpp"

using namespace twfd;

namespace {

struct Options {
  std::uint16_t port = 4100;
  std::uint64_t sender_id = 1;
  long interval_ms = 100;
  std::string detector = "2w";
  double margin_ms = 115;
  double threshold = 2.0;
  long duration_s = 0;
  bool have_qos = false;
  config::QosRequirements qos;
  std::string beacon;
  std::string chaos;
  std::uint64_t chaos_seed = 0;
  bool have_chaos_seed = false;
  std::uint16_t metrics_port = 0;
  bool have_metrics = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--sender-id N] [--interval-ms N]\n"
      "          [--detector 2w|chen|bertier|phi|ed|fixed]\n"
      "          [--margin-ms X | --threshold X] [--duration-s N]\n"
      "          [--qos TD,TMR,TM --beacon HOST:PORT]\n"
      "          [--chaos SPEC] [--chaos-seed N] [--metrics-port N]\n",
      argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--port") {
      opt.port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--sender-id") {
      opt.sender_id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--interval-ms") {
      opt.interval_ms = std::stol(next());
    } else if (arg == "--detector") {
      opt.detector = next();
    } else if (arg == "--margin-ms") {
      opt.margin_ms = std::stod(next());
    } else if (arg == "--threshold") {
      opt.threshold = std::stod(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else if (arg == "--beacon") {
      opt.beacon = next();
    } else if (arg == "--chaos") {
      opt.chaos = next();
    } else if (arg == "--chaos-seed") {
      opt.chaos_seed = std::strtoull(next().c_str(), nullptr, 10);
      opt.have_chaos_seed = true;
    } else if (arg == "--metrics-port") {
      opt.metrics_port = static_cast<std::uint16_t>(std::stoi(next()));
      opt.have_metrics = true;
    } else if (arg == "--qos") {
      const std::string spec = next();
      if (std::sscanf(spec.c_str(), "%lf,%lf,%lf", &opt.qos.td_upper_s,
                      &opt.qos.tmr_upper_per_s, &opt.qos.tm_upper_s) != 3) {
        usage(argv[0]);
      }
      opt.have_qos = true;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

core::DetectorSpec spec_from(const Options& opt) {
  const Tick margin = ticks_from_seconds(opt.margin_ms * 1e-3);
  if (opt.detector == "2w") return core::DetectorSpec::two_window(1, 1000, margin);
  if (opt.detector == "chen") return core::DetectorSpec::chen(1000, margin);
  if (opt.detector == "bertier") return core::DetectorSpec::bertier();
  if (opt.detector == "phi") return core::DetectorSpec::phi(opt.threshold);
  if (opt.detector == "ed") return core::DetectorSpec::ed(opt.threshold);
  if (opt.detector == "fixed") return core::DetectorSpec::fixed_timeout(margin);
  throw std::invalid_argument("unknown detector: " + opt.detector);
}

void log_line(const char* what) {
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof buf, "%H:%M:%S", std::localtime(&now));
  std::printf("[%s] %s\n", buf, what);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  supervise::install_shutdown_handlers();
  supervise::ChildHeartbeat heartbeat = supervise::ChildHeartbeat::from_env();
  try {
    Options opt = parse_args(argc, argv);

    Tick interval = ticks_from_ms(opt.interval_ms);
    Tick margin = ticks_from_seconds(opt.margin_ms * 1e-3);
    if (opt.have_qos) {
      // Derive (Delta_i, Delta_to) from the requirements tuple; network
      // behaviour defaults are conservative LAN-ish numbers.
      const config::NetworkBehaviour net{0.01, 1e-4};
      const auto cfg = config::chen_configure(opt.qos, net);
      if (!cfg.feasible) {
        std::fprintf(stderr, "QoS tuple not achievable\n");
        return 1;
      }
      interval = ticks_from_seconds(cfg.interval_s);
      margin = ticks_from_seconds(cfg.margin_s);
      opt.margin_ms = cfg.margin_s * 1e3;
      std::fprintf(stderr, "configured from QoS tuple: Delta_i=%s Delta_to=%s\n",
                   format_ticks(interval).c_str(), format_ticks(margin).c_str());
    }

    net::EventLoop loop(opt.port);
    service::Dispatcher dispatch(loop.runtime());

    // Observability: the registry is always built (it doubles as the
    // exit-time stats printer); the scrape endpoint only with
    // --metrics-port. Without --qos the conformance bounds are +Inf —
    // measured values still export, violations can't trigger.
    obs::Registry registry;
    obs::EventLoopExport loop_export(registry, obs::make_labels({{"loop", "main"}}));
    obs::QosTracker tracker(registry);
    SteadyClock wallclock;
    registry.add_collect_hook([&tracker, &wallclock] { tracker.refresh(wallclock.now()); });

    config::QosRequirements bounds = opt.qos;
    if (!opt.have_qos) {
      constexpr double kInf = std::numeric_limits<double>::infinity();
      bounds = {kInf, kInf, kInf};
    }
    const obs::QosTracker::Handle qos_handle =
        tracker.track("monitor", opt.sender_id, bounds, wallclock.now());

    auto spec = spec_from(opt);
    spec.safety_margin = margin;
    auto detector = core::make_detector(spec, interval);
    std::fprintf(stderr, "monitoring sender %llu on udp port %u with %s\n",
                 static_cast<unsigned long long>(opt.sender_id), loop.local_port(),
                 detector->name().c_str());

    Tick last_arrival = 0;
    service::Monitor monitor(
        loop.runtime(), opt.sender_id, std::move(detector),
        {[&](Tick when) {
           tracker.record_suspect(qos_handle, when, last_arrival);
           log_line("SUSPECT");
         },
         [&](Tick when) {
           tracker.record_trust(qos_handle, when);
           log_line("TRUST");
         }});
    dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
      last_arrival = at;
      monitor.handle_heartbeat(from, m, at);
    });

    // RX chaos: inbound datagrams run through the fault plan before the
    // dispatcher. The seed is always logged so the run is reproducible.
    std::unique_ptr<net::FaultInjector> chaos;
    std::unique_ptr<obs::ChaosExport> chaos_export;
    if (!opt.chaos.empty() || opt.have_chaos_seed) {
      net::FaultPlan plan =
          opt.chaos.empty() ? net::FaultPlan{} : net::FaultPlan::parse(opt.chaos);
      if (opt.have_chaos_seed) plan.seed = opt.chaos_seed;
      chaos = std::make_unique<net::FaultInjector>(
          loop, loop, plan,
          [&](const net::SocketAddress& from, std::span<const std::byte> data,
              Tick arrival) {
            dispatch.ingest(loop.add_peer(from), data, arrival);
          });
      loop.set_receive_handler(
          [&](PeerId from, std::span<const std::byte> data, Tick arrival) {
            chaos->offer(loop.peer_address(from), data, arrival);
          });
      chaos_export =
          std::make_unique<obs::ChaosExport>(registry, obs::make_labels({{"point", "rx"}}));
      std::fprintf(stderr, "chaos plan active: %s\n", plan.to_string().c_str());
    }

    // Loop/chaos stats are owned by the loop thread; mirror them into
    // the registry from a loop timer so the scrape thread only reads
    // atomics.
    obs::Counter& hb_counter = registry.counter(
        "twfd_monitor_heartbeats_total", "Heartbeats applied by the monitor.");
    const auto mirror = [&] {
      loop_export.update(loop.stats());
      hb_counter.set_total(monitor.heartbeats_seen());
      if (chaos_export) chaos_export->update(chaos->stats());
    };
    std::function<void()> arm_mirror = [&] {
      mirror();
      loop.schedule_at(loop.now() + ticks_from_sec(1), [&] { arm_mirror(); });
    };
    arm_mirror();

    std::unique_ptr<obs::ScrapeServer> scrape;
    if (opt.have_metrics) {
      scrape = std::make_unique<obs::ScrapeServer>(
          registry, obs::ScrapeServer::Params{.port = opt.metrics_port});
      scrape->start();
      std::fprintf(stderr, "metrics on http://0.0.0.0:%u/metrics\n", scrape->port());
    }

    if (opt.have_qos && !opt.beacon.empty()) {
      const auto colon = opt.beacon.rfind(':');
      if (colon == std::string::npos) usage(argv[0]);
      const auto addr = net::SocketAddress::parse(
          opt.beacon.substr(0, colon),
          static_cast<std::uint16_t>(std::stoi(opt.beacon.substr(colon + 1))));
      net::IntervalRequestMsg req{opt.sender_id, interval};
      const auto payload = net::encode(req);
      loop.send(loop.add_peer(addr), payload);
      std::fprintf(stderr, "requested interval %s from %s\n",
                   format_ticks(interval).c_str(), addr.to_string().c_str());
    }

    // Short slices so SIGTERM/SIGINT drain within one slice and the
    // supervisor heartbeat keeps flowing.
    const Tick deadline =
        opt.duration_s > 0 ? loop.now() + ticks_from_sec(opt.duration_s) : 0;
    heartbeat.beat();
    while (!supervise::shutdown_requested()) {
      if (deadline != 0 && loop.now() >= deadline) break;
      loop.run_for(ticks_from_ms(200));
      heartbeat.beat();
    }
    if (supervise::shutdown_requested()) {
      std::fprintf(stderr, "monitor: shutdown signal, draining\n");
    }
    if (scrape) scrape->stop();
    std::printf("saw %llu heartbeats; final: %s\n",
                static_cast<unsigned long long>(monitor.heartbeats_seen()),
                monitor.output() == detect::Output::Trust ? "TRUST" : "SUSPECT");
    mirror();
    std::fputs(obs::render_text(registry).c_str(), stdout);
    return supervise::kExitOk;
  } catch (const std::system_error& e) {
    std::fprintf(stderr, "twfd_monitor: %s\n", e.what());
    return supervise::classify_startup_errno(e.code().value());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_monitor: %s\n", e.what());
    return 1;
  }
}

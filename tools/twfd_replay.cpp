// twfd_replay — replay a recorded (or synthetic) heartbeat trace through
// any set of failure detectors and print their QoS, exactly the paper's
// offline evaluation methodology.
//
//   twfd_replay --trace wan.trc [--margin-ms 115] [--threshold 2.0] [--csv]
//   twfd_replay --scenario wan|lan [--samples N] [--seed N] ...
//
// Runs 2W(1,1000), Chen(1), Chen(1000), Bertier, phi and ED side by side.

#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/factory.hpp"
#include "qos/evaluator.hpp"
#include "trace/io.hpp"
#include "trace/scenario.hpp"
#include "trace/trace_stats.hpp"

using namespace twfd;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--trace FILE | --scenario wan|lan) [--samples N]\n"
               "          [--seed N] [--margin-ms X] [--threshold X] [--csv]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string scenario;
  std::int64_t samples = 200'000;
  std::uint64_t seed = 42;
  double margin_ms = 115;
  double threshold = 2.0;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--samples") {
      samples = std::stoll(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--margin-ms") {
      margin_ms = std::stod(next());
    } else if (arg == "--threshold") {
      threshold = std::stod(next());
    } else if (arg == "--csv") {
      csv = true;
    } else {
      usage(argv[0]);
    }
  }
  if (trace_path.empty() == scenario.empty()) usage(argv[0]);  // exactly one

  try {
    trace::Trace t("empty", 1);
    if (!trace_path.empty()) {
      t = trace::load_binary_file(trace_path);
    } else if (scenario == "wan") {
      trace::WanScenario::Params p;
      p.samples = samples;
      p.seed = seed;
      t = trace::WanScenario(p).build();
    } else if (scenario == "lan") {
      trace::LanScenario::Params p;
      p.samples = samples;
      p.seed = seed;
      t = trace::LanScenario(p).build();
    } else {
      usage(argv[0]);
    }

    const auto stats = trace::compute_stats(t, /*skew_known=*/false);
    std::fprintf(stderr,
                 "trace '%s': %lld heartbeats, interval %s, p_L=%.5f, "
                 "V(D)=%.3e s^2\n",
                 t.name().c_str(), static_cast<long long>(stats.sent),
                 format_ticks(t.interval()).c_str(), stats.loss_probability,
                 stats.delay_variance_s2);

    const Tick margin = ticks_from_seconds(margin_ms * 1e-3);
    const core::DetectorSpec specs[] = {
        core::DetectorSpec::two_window(1, 1000, margin),
        core::DetectorSpec::chen(1, margin),
        core::DetectorSpec::chen(1000, margin),
        core::DetectorSpec::bertier(1000),
        core::DetectorSpec::phi(threshold),
        core::DetectorSpec::ed(1.0 - std::pow(10.0, -threshold)),
    };

    Table table({"detector", "TD_s", "TD_p99_s", "mistakes", "TMR_per_s",
                 "TM_s", "PA"});
    for (const auto& spec : specs) {
      auto d = core::make_detector(spec, t.interval());
      const auto m = qos::evaluate(*d, t).metrics;
      table.add_row({d->name(), Table::num(m.detection_time_s, 4),
                     Table::num(m.detection_time_p99_s, 4),
                     std::to_string(m.mistake_count),
                     Table::sci(m.mistake_rate_per_s, 3),
                     Table::num(m.mistake_duration_s, 4),
                     Table::num(m.query_accuracy, 8)});
    }
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_replay: %s\n", e.what());
    return 1;
  }
}

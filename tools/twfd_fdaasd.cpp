// twfd_fdaasd — failure detection as a service, as one daemon.
//
// Runs a sharded monitoring runtime (UDP heartbeat ingest on
// --service-port) and the FDaaS wire API (TCP subscriptions on
// --api-port) in one process. Remote beacons send heartbeats to the
// service port; remote applications connect to the API port, SUBSCRIBE
// with their own QoS tuples and receive Suspect/Trust EVENT frames.
//
//   twfd_fdaasd --api-port 4200 --service-port 4100 [--shards 4]
//               [--lease-ms 10000] [--stats-interval-s 10]
//               [--chaos SPEC] [--chaos-seed N]
//               [--duration-s 0]
//
// duration 0 = run until killed.
//
// --chaos takes a fault-plan spec (net/fault.hpp grammar). The datagram
// half (drop/dup/reorder/trunc/delay) is applied per shard to inbound
// heartbeats; when the plan also has TCP faults (reset/stall/trickle), a
// ChaosTcpProxy takes over the public API port and the real server moves
// to an ephemeral one behind it. The plan (seed included) is logged;
// --chaos-seed overrides the seed to reproduce a logged run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "api/fdaas_server.hpp"
#include "net/chaos_proxy.hpp"
#include "net/fault.hpp"
#include "shard/sharded_monitor_service.hpp"

using namespace twfd;

namespace {

struct Options {
  std::uint16_t api_port = 4200;
  std::uint16_t service_port = 4100;
  std::size_t shards = 4;
  long lease_ms = 10'000;
  long stats_interval_s = 10;
  long duration_s = 0;
  std::string chaos;
  std::uint64_t chaos_seed = 0;
  bool have_chaos_seed = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--api-port N] [--service-port N] [--shards N]\n"
               "          [--lease-ms N] [--stats-interval-s N] [--duration-s N]\n"
               "          [--chaos SPEC] [--chaos-seed N]\n",
               argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--api-port") {
      opt.api_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--service-port") {
      opt.service_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--shards") {
      opt.shards = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--lease-ms") {
      opt.lease_ms = std::stol(next());
    } else if (arg == "--stats-interval-s") {
      opt.stats_interval_s = std::stol(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else if (arg == "--chaos") {
      opt.chaos = next();
    } else if (arg == "--chaos-seed") {
      opt.chaos_seed = std::strtoull(next().c_str(), nullptr, 10);
      opt.have_chaos_seed = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.shards == 0 || opt.lease_ms <= 0) usage(argv[0]);
  return opt;
}

void print_stats(api::FdaasServer& server, shard::ShardedMonitorService& service,
                 const net::ChaosTcpProxy* proxy) {
  const auto api = server.stats();
  const auto sh = service.merged_stats();
  std::printf(
      "[fdaasd] sessions=%llu/%llu subs=%llu events: pushed=%llu unroutable=%llu | "
      "evict: slow=%llu lease=%llu disconnect=%llu | frames: rx=%llu bad=%llu | "
      "bytes: tx=%llu rx=%llu | shards: hb=%llu handoff=%llu\n",
      static_cast<unsigned long long>(api.sessions_active),
      static_cast<unsigned long long>(api.sessions_accepted),
      static_cast<unsigned long long>(api.subscriptions_active),
      static_cast<unsigned long long>(api.events_pushed),
      static_cast<unsigned long long>(api.events_unroutable),
      static_cast<unsigned long long>(api.slow_evictions),
      static_cast<unsigned long long>(api.lease_expiries),
      static_cast<unsigned long long>(api.disconnects),
      static_cast<unsigned long long>(api.frames_received),
      static_cast<unsigned long long>(api.frames_malformed),
      static_cast<unsigned long long>(api.bytes_sent),
      static_cast<unsigned long long>(api.bytes_received),
      static_cast<unsigned long long>(sh.service_heartbeats),
      static_cast<unsigned long long>(sh.handoff_out));
  // Every silent-drop path and the self-healing counters on one line, so
  // a lossy or degraded run is visible without attaching a debugger.
  std::printf(
      "[fdaasd] drops: handoff=%llu events=%llu send_failures=%llu "
      "slow_evictions=%llu lease_expiries=%llu | supervision: degraded=%llu "
      "restarts=%llu stalls=%llu resubscribed=%llu post_retries=%llu+%llu "
      "post_stalls=%llu+%llu\n",
      static_cast<unsigned long long>(sh.handoff_dropped),
      static_cast<unsigned long long>(sh.events_dropped),
      static_cast<unsigned long long>(sh.loop.send_soft_failures),
      static_cast<unsigned long long>(api.slow_evictions),
      static_cast<unsigned long long>(api.lease_expiries),
      static_cast<unsigned long long>(sh.degraded),
      static_cast<unsigned long long>(sh.restarts),
      static_cast<unsigned long long>(sh.stalls_detected),
      static_cast<unsigned long long>(sh.resubscribed),
      static_cast<unsigned long long>(sh.post_retries),
      static_cast<unsigned long long>(api.post_retries),
      static_cast<unsigned long long>(sh.post_stalls),
      static_cast<unsigned long long>(api.post_stalls));
  const auto& cs = sh.chaos;
  if (cs.offered != 0 || proxy != nullptr) {
    std::printf(
        "[fdaasd] chaos: offered=%llu passed=%llu dropped=%llu dup=%llu "
        "reorder=%llu trunc=%llu delayed=%llu",
        static_cast<unsigned long long>(cs.offered),
        static_cast<unsigned long long>(cs.passed),
        static_cast<unsigned long long>(cs.dropped),
        static_cast<unsigned long long>(cs.duplicated),
        static_cast<unsigned long long>(cs.reordered),
        static_cast<unsigned long long>(cs.truncated),
        static_cast<unsigned long long>(cs.delayed));
    if (proxy != nullptr) {
      const auto ps = proxy->stats();
      std::printf(
          " | proxy: links=%llu/%llu resets=%llu forced=%llu stalls=%llu "
          "bytes up=%llu down=%llu",
          static_cast<unsigned long long>(ps.links_active),
          static_cast<unsigned long long>(ps.links_opened),
          static_cast<unsigned long long>(ps.resets_injected),
          static_cast<unsigned long long>(ps.forced_resets),
          static_cast<unsigned long long>(ps.stalls),
          static_cast<unsigned long long>(ps.bytes_up),
          static_cast<unsigned long long>(ps.bytes_down));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);

    net::FaultPlan plan;
    const bool chaos_active = !opt.chaos.empty() || opt.have_chaos_seed;
    if (!opt.chaos.empty()) plan = net::FaultPlan::parse(opt.chaos);
    if (opt.have_chaos_seed) plan.seed = opt.chaos_seed;

    shard::ShardedMonitorService::Params service_params;
    service_params.shards = opt.shards;
    service_params.port = opt.service_port;
    if (chaos_active) service_params.chaos = plan;
    shard::ShardedMonitorService service(service_params);
    service.start();

    // With TCP faults in the plan, the chaos proxy owns the public API
    // port and the real server hides behind it on an ephemeral one; the
    // client-visible endpoint misbehaves exactly as specified.
    const bool proxy_active = chaos_active && plan.any_tcp_faults();
    api::FdaasServer::Params api_params;
    api_params.port = proxy_active ? 0 : opt.api_port;
    api_params.lease = ticks_from_ms(opt.lease_ms);
    api::FdaasServer server(service, api_params);
    server.start();

    std::unique_ptr<net::ChaosTcpProxy> proxy;
    if (proxy_active) {
      net::ChaosTcpProxy::Options popts;
      popts.listen_port = opt.api_port;
      popts.upstream = net::SocketAddress::parse("127.0.0.1", server.port());
      popts.plan = plan;
      proxy = std::make_unique<net::ChaosTcpProxy>(popts);
      proxy->start();
    }

    std::printf("fdaasd up: heartbeats on udp/%u (%zu shards), API on tcp/%u, "
                "lease %ld ms\n",
                service.port(), service.shard_count(),
                proxy ? proxy->port() : server.port(), opt.lease_ms);
    if (chaos_active) {
      std::printf("chaos plan active: %s%s\n", plan.to_string().c_str(),
                  proxy ? " (TCP faults proxied)" : "");
    }
    std::fflush(stdout);

    SteadyClock clock;
    const Tick start = clock.now();
    const Tick deadline =
        opt.duration_s > 0 ? start + ticks_from_sec(opt.duration_s) : 0;
    Tick next_stats = start + ticks_from_sec(opt.stats_interval_s);
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const Tick now = clock.now();
      if (deadline != 0 && now >= deadline) break;
      if (opt.stats_interval_s > 0 && now >= next_stats) {
        print_stats(server, service, proxy.get());
        next_stats = now + ticks_from_sec(opt.stats_interval_s);
      }
    }

    // Proxy, then server, then service: teardown releases client
    // subscriptions while the shards can still execute the unsubscribe
    // commands.
    print_stats(server, service, proxy.get());
    if (proxy) proxy->stop();
    server.stop();
    service.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_fdaasd: %s\n", e.what());
    return 1;
  }
}

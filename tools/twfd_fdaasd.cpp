// twfd_fdaasd — failure detection as a service, as one daemon.
//
// Runs a sharded monitoring runtime (UDP heartbeat ingest on
// --service-port) and the FDaaS wire API (TCP subscriptions on
// --api-port) in one process. Remote beacons send heartbeats to the
// service port; remote applications connect to the API port, SUBSCRIBE
// with their own QoS tuples and receive Suspect/Trust EVENT frames.
//
//   twfd_fdaasd --api-port 4200 --service-port 4100 [--shards 4]
//               [--lease-ms 10000] [--stats-interval-s 10]
//               [--duration-s 0]
//
// duration 0 = run until killed.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "api/fdaas_server.hpp"
#include "shard/sharded_monitor_service.hpp"

using namespace twfd;

namespace {

struct Options {
  std::uint16_t api_port = 4200;
  std::uint16_t service_port = 4100;
  std::size_t shards = 4;
  long lease_ms = 10'000;
  long stats_interval_s = 10;
  long duration_s = 0;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--api-port N] [--service-port N] [--shards N]\n"
               "          [--lease-ms N] [--stats-interval-s N] [--duration-s N]\n",
               argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--api-port") {
      opt.api_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--service-port") {
      opt.service_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--shards") {
      opt.shards = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--lease-ms") {
      opt.lease_ms = std::stol(next());
    } else if (arg == "--stats-interval-s") {
      opt.stats_interval_s = std::stol(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else {
      usage(argv[0]);
    }
  }
  if (opt.shards == 0 || opt.lease_ms <= 0) usage(argv[0]);
  return opt;
}

void print_stats(api::FdaasServer& server, shard::ShardedMonitorService& service) {
  const auto api = server.stats();
  const auto sh = service.merged_stats();
  std::printf(
      "[fdaasd] sessions=%llu/%llu subs=%llu events: pushed=%llu unroutable=%llu | "
      "evict: slow=%llu lease=%llu disconnect=%llu | frames: rx=%llu bad=%llu | "
      "bytes: tx=%llu rx=%llu | shards: hb=%llu handoff=%llu dropped=%llu\n",
      static_cast<unsigned long long>(api.sessions_active),
      static_cast<unsigned long long>(api.sessions_accepted),
      static_cast<unsigned long long>(api.subscriptions_active),
      static_cast<unsigned long long>(api.events_pushed),
      static_cast<unsigned long long>(api.events_unroutable),
      static_cast<unsigned long long>(api.slow_evictions),
      static_cast<unsigned long long>(api.lease_expiries),
      static_cast<unsigned long long>(api.disconnects),
      static_cast<unsigned long long>(api.frames_received),
      static_cast<unsigned long long>(api.frames_malformed),
      static_cast<unsigned long long>(api.bytes_sent),
      static_cast<unsigned long long>(api.bytes_received),
      static_cast<unsigned long long>(sh.service_heartbeats),
      static_cast<unsigned long long>(sh.handoff_out),
      static_cast<unsigned long long>(sh.events_dropped));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);

    shard::ShardedMonitorService::Params service_params;
    service_params.shards = opt.shards;
    service_params.port = opt.service_port;
    shard::ShardedMonitorService service(service_params);
    service.start();

    api::FdaasServer::Params api_params;
    api_params.port = opt.api_port;
    api_params.lease = ticks_from_ms(opt.lease_ms);
    api::FdaasServer server(service, api_params);
    server.start();

    std::printf("fdaasd up: heartbeats on udp/%u (%zu shards), API on tcp/%u, "
                "lease %ld ms\n",
                service.port(), service.shard_count(), server.port(),
                opt.lease_ms);
    std::fflush(stdout);

    SteadyClock clock;
    const Tick start = clock.now();
    const Tick deadline =
        opt.duration_s > 0 ? start + ticks_from_sec(opt.duration_s) : 0;
    Tick next_stats = start + ticks_from_sec(opt.stats_interval_s);
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const Tick now = clock.now();
      if (deadline != 0 && now >= deadline) break;
      if (opt.stats_interval_s > 0 && now >= next_stats) {
        print_stats(server, service);
        next_stats = now + ticks_from_sec(opt.stats_interval_s);
      }
    }

    // Server before service: teardown releases client subscriptions while
    // the shards can still execute the unsubscribe commands.
    print_stats(server, service);
    server.stop();
    service.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_fdaasd: %s\n", e.what());
    return 1;
  }
}

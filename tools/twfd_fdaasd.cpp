// twfd_fdaasd — failure detection as a service, as one daemon.
//
// Runs a sharded monitoring runtime (UDP heartbeat ingest on
// --service-port) and the FDaaS wire API (TCP subscriptions on
// --api-port) in one process. Remote beacons send heartbeats to the
// service port; remote applications connect to the API port, SUBSCRIBE
// with their own QoS tuples and receive Suspect/Trust EVENT frames.
//
//   twfd_fdaasd --api-port 4200 --service-port 4100 [--shards 4]
//               [--lease-ms 10000] [--stats-interval-s 10]
//               [--chaos SPEC] [--chaos-seed N]
//               [--metrics-port N] [--duration-s 0]
//               [--snapshot-path FILE] [--snapshot-interval-ms 2000]
//               [--orphan-ttl-ms 60000]
//
// duration 0 = run until killed. SIGTERM/SIGINT drain cleanly: final
// snapshot flushed, shards stopped, exit 0.
//
// --snapshot-path enables crash persistence: the subscription registry
// (sessions' QoS tuples, last-known verdicts, federation children) is
// checkpointed there every --snapshot-interval-ms and reloaded on the
// next start, so a supervisor-driven restart replays net missed
// transitions to reconnecting clients exactly like a TCP outage.
//
// Under twfd_supervisord the TWFD_SUPERVISE_HB_FD pipe is beaten every
// main-loop slice; startup failures (EADDRINUSE...) exit 75 (transient,
// retry) or 78 (config, park) with a one-line stderr reason.
//
// --chaos takes a fault-plan spec (net/fault.hpp grammar). The datagram
// half (drop/dup/reorder/trunc/delay) is applied per shard to inbound
// heartbeats; when the plan also has TCP faults (reset/stall/trickle), a
// ChaosTcpProxy takes over the public API port and the real server moves
// to an ephemeral one behind it. The plan (seed included) is logged to
// stderr; --chaos-seed overrides the seed to reproduce a logged run.
//
// Observability: everything — shard runtime, API server, chaos, and
// per-subscription QoS conformance — lands in one obs::Registry.
// --metrics-port serves it as Prometheus text exposition on
// http://0.0.0.0:PORT/metrics; the periodic stats dump on stdout is the
// exact same text view (obs::render_text). Banners go to stderr so
// stdout carries metrics only.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <system_error>
#include <thread>

#include "api/fdaas_server.hpp"
#include "net/chaos_proxy.hpp"
#include "net/fault.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/qos_tracker.hpp"
#include "obs/scrape_server.hpp"
#include "shard/sharded_monitor_service.hpp"
#include "supervise/daemon.hpp"
#include "supervise/exit_codes.hpp"

using namespace twfd;

namespace {

struct Options {
  std::uint16_t api_port = 4200;
  std::uint16_t service_port = 4100;
  std::size_t shards = 4;
  long lease_ms = 10'000;
  long stats_interval_s = 10;
  long duration_s = 0;
  std::string chaos;
  std::uint64_t chaos_seed = 0;
  bool have_chaos_seed = false;
  std::uint16_t metrics_port = 0;
  bool have_metrics = false;
  std::string snapshot_path;
  long snapshot_interval_ms = 2000;
  long orphan_ttl_ms = 60'000;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--api-port N] [--service-port N] [--shards N]\n"
               "          [--lease-ms N] [--stats-interval-s N] [--duration-s N]\n"
               "          [--chaos SPEC] [--chaos-seed N] [--metrics-port N]\n"
               "          [--snapshot-path FILE] [--snapshot-interval-ms N]\n"
               "          [--orphan-ttl-ms N]\n",
               argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--api-port") {
      opt.api_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--service-port") {
      opt.service_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--shards") {
      opt.shards = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--lease-ms") {
      opt.lease_ms = std::stol(next());
    } else if (arg == "--stats-interval-s") {
      opt.stats_interval_s = std::stol(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else if (arg == "--chaos") {
      opt.chaos = next();
    } else if (arg == "--chaos-seed") {
      opt.chaos_seed = std::strtoull(next().c_str(), nullptr, 10);
      opt.have_chaos_seed = true;
    } else if (arg == "--metrics-port") {
      opt.metrics_port = static_cast<std::uint16_t>(std::stoi(next()));
      opt.have_metrics = true;
    } else if (arg == "--snapshot-path") {
      opt.snapshot_path = next();
    } else if (arg == "--snapshot-interval-ms") {
      opt.snapshot_interval_ms = std::stol(next());
    } else if (arg == "--orphan-ttl-ms") {
      opt.orphan_ttl_ms = std::stol(next());
    } else {
      usage(argv[0]);
    }
  }
  if (opt.shards == 0 || opt.lease_ms <= 0) usage(argv[0]);
  return opt;
}

/// Mirrors ChaosTcpProxy::Stats (stats() is mutex-guarded: any thread).
class ProxyExport {
 public:
  ProxyExport(obs::Registry& r, const net::ChaosTcpProxy& proxy)
      : proxy_(proxy),
        links_opened_(&r.counter("twfd_proxy_links_opened_total",
                                 "TCP links accepted by the chaos proxy.")),
        links_active_(&r.gauge("twfd_proxy_links_active", "Live proxied TCP links.")),
        resets_(&r.counter("twfd_proxy_resets_total",
                           "Plan-scheduled + forced resets injected.")),
        stalls_(&r.counter("twfd_proxy_stalls_total", "Stalls injected.")),
        bytes_up_(&r.counter("twfd_proxy_bytes_up_total", "Bytes client -> upstream.")),
        bytes_down_(&r.counter("twfd_proxy_bytes_down_total", "Bytes upstream -> client.")) {}

  void update() {
    const auto s = proxy_.stats();
    links_opened_->set_total(s.links_opened);
    links_active_->set(static_cast<double>(s.links_active));
    resets_->set_total(s.resets_injected + s.forced_resets);
    stalls_->set_total(s.stalls);
    bytes_up_->set_total(s.bytes_up);
    bytes_down_->set_total(s.bytes_down);
  }

 private:
  const net::ChaosTcpProxy& proxy_;
  obs::Counter* links_opened_;
  obs::Gauge* links_active_;
  obs::Counter* resets_;
  obs::Counter* stalls_;
  obs::Counter* bytes_up_;
  obs::Counter* bytes_down_;
};

}  // namespace

int main(int argc, char** argv) {
  supervise::install_shutdown_handlers();
  supervise::ChildHeartbeat heartbeat = supervise::ChildHeartbeat::from_env();
  try {
    const Options opt = parse_args(argc, argv);

    net::FaultPlan plan;
    const bool chaos_active = !opt.chaos.empty() || opt.have_chaos_seed;
    if (!opt.chaos.empty()) plan = net::FaultPlan::parse(opt.chaos);
    if (opt.have_chaos_seed) plan.seed = opt.chaos_seed;

    obs::Registry registry;
    obs::QosTracker tracker(registry);

    shard::ShardedMonitorService::Params service_params;
    service_params.shards = opt.shards;
    service_params.port = opt.service_port;
    service_params.registry = &registry;
    service_params.service.qos_tracker = &tracker;
    if (chaos_active) service_params.chaos = plan;
    shard::ShardedMonitorService service(service_params);
    service.start();

    // With TCP faults in the plan, the chaos proxy owns the public API
    // port and the real server hides behind it on an ephemeral one; the
    // client-visible endpoint misbehaves exactly as specified.
    const bool proxy_active = chaos_active && plan.any_tcp_faults();
    api::FdaasServer::Params api_params;
    api_params.port = proxy_active ? 0 : opt.api_port;
    api_params.lease = ticks_from_ms(opt.lease_ms);
    api_params.registry = &registry;
    api_params.snapshot_path = opt.snapshot_path;
    api_params.snapshot_interval = ticks_from_ms(opt.snapshot_interval_ms);
    api_params.orphan_ttl = ticks_from_ms(opt.orphan_ttl_ms);
    api::FdaasServer server(service, api_params);
    server.start();

    std::unique_ptr<net::ChaosTcpProxy> proxy;
    std::unique_ptr<ProxyExport> proxy_export;
    if (proxy_active) {
      net::ChaosTcpProxy::Options popts;
      popts.listen_port = opt.api_port;
      popts.upstream = net::SocketAddress::parse("127.0.0.1", server.port());
      popts.plan = plan;
      proxy = std::make_unique<net::ChaosTcpProxy>(popts);
      proxy->start();
      proxy_export = std::make_unique<ProxyExport>(registry, *proxy);
    }

    // Shard stats are marshalled (merged_stats is any-thread-safe), so
    // the scrape endpoint and the stdout dump share one collect hook.
    SteadyClock clock;
    obs::ShardExport shard_export(registry);
    registry.add_collect_hook([&] {
      shard_export.update(service.merged_stats(), service.shard_count());
      if (proxy_export) proxy_export->update();
      tracker.refresh(clock.now());
    });

    std::unique_ptr<obs::ScrapeServer> scrape;
    if (opt.have_metrics) {
      scrape = std::make_unique<obs::ScrapeServer>(
          registry, obs::ScrapeServer::Params{.port = opt.metrics_port});
      scrape->start();
    }

    std::fprintf(stderr,
                 "fdaasd up: heartbeats on udp/%u (%zu shards), API on tcp/%u, "
                 "lease %ld ms%s%s\n",
                 service.port(), service.shard_count(),
                 proxy ? proxy->port() : server.port(), opt.lease_ms,
                 scrape ? ", metrics on http tcp/" : "",
                 scrape ? std::to_string(scrape->port()).c_str() : "");
    if (chaos_active) {
      std::fprintf(stderr, "chaos plan active: %s%s\n", plan.to_string().c_str(),
                   proxy ? " (TCP faults proxied)" : "");
    }

    const auto print_stats = [&registry] {
      std::fputs(obs::render_text(registry).c_str(), stdout);
      std::fflush(stdout);
    };

    const Tick start = clock.now();
    const Tick deadline =
        opt.duration_s > 0 ? start + ticks_from_sec(opt.duration_s) : 0;
    Tick next_stats = start + ticks_from_sec(opt.stats_interval_s);
    heartbeat.beat();
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      heartbeat.beat();
      if (supervise::shutdown_requested()) {
        std::fprintf(stderr, "fdaasd: shutdown signal, draining\n");
        break;
      }
      const Tick now = clock.now();
      if (deadline != 0 && now >= deadline) break;
      if (opt.stats_interval_s > 0 && now >= next_stats) {
        print_stats();
        next_stats = now + ticks_from_sec(opt.stats_interval_s);
      }
    }

    // Scrape endpoint first (its collect hook reaches into the service),
    // then proxy, server, service: teardown releases client
    // subscriptions while the shards can still execute the unsubscribe
    // commands.
    print_stats();
    if (scrape) scrape->stop();
    if (proxy) proxy->stop();
    server.stop();  // flushes the final snapshot before session teardown
    service.stop();
    return supervise::kExitOk;
  } catch (const std::system_error& e) {
    // Startup failures (bind/listen/socket) carry an errno the
    // supervisor uses to pick between back-off-and-retry (75) and
    // park-as-fatal (78).
    std::fprintf(stderr, "twfd_fdaasd: %s\n", e.what());
    return supervise::classify_startup_errno(e.code().value());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "twfd_fdaasd: %s\n", e.what());
    return 1;
  }
}

// Live monitoring over real UDP sockets on loopback.
//
// A monitored "service" process (heartbeat sender, own thread + event
// loop) is watched by a 2W-FD monitor. Half-way through the demo the
// service dies; the monitor raises a suspicion within the configured
// detection window, then the service restarts and trust is restored.
//
//   $ ./live_monitor

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>

#include "common/table.hpp"
#include "core/multi_window.hpp"
#include "net/event_loop.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "service/monitor.hpp"

using namespace twfd;

int main() {
  net::EventLoop monitor_loop;
  const std::uint16_t monitor_port = monitor_loop.local_port();
  std::cout << "monitor listening on udp:127.0.0.1:" << monitor_port << "\n";

  // --- monitor side: 2W-FD with a 60 ms safety margin over 20 ms beats ---
  core::MultiWindowDetector::Params dp;
  dp.windows = {1, 100};
  dp.interval = ticks_from_ms(20);
  dp.safety_margin = ticks_from_ms(60);

  const Tick t0 = monitor_loop.now();
  auto stamp = [&](Tick t) { return Table::num(to_seconds(t - t0), 3) + "s"; };

  service::Dispatcher dispatch(monitor_loop.runtime());
  service::Monitor monitor(
      monitor_loop.runtime(), /*sender_id=*/1,
      std::make_unique<core::MultiWindowDetector>(dp),
      {[&](Tick t) { std::cout << "[" << stamp(t) << "] SUSPECT - service down?\n"; },
       [&](Tick t) { std::cout << "[" << stamp(t) << "] TRUST   - service back\n"; }});
  dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    monitor.handle_heartbeat(from, m, at);
  });

  // --- the monitored "service": lives 1 s, hangs 1 s, recovers 1 s -----
  // (One sender throughout: sequence numbers continue across the outage,
  // as for a process that stalled. A *restarted* process would begin at
  // seq 1 and be treated as stale — a new incarnation needs a new
  // sender_id.)
  std::thread service_thread([monitor_port] {
    net::EventLoop loop;
    service::HeartbeatSender sender(loop.runtime(), {1, ticks_from_ms(20)});
    sender.add_target(loop.add_peer(net::SocketAddress::loopback(monitor_port)));
    sender.start();
    loop.run_for(ticks_from_ms(1000));  // alive
    sender.stop();
    loop.run_for(ticks_from_ms(1000));  // hung: no heartbeats
    sender.start();
    loop.run_for(ticks_from_ms(1000));  // recovered
    sender.stop();
  });

  monitor_loop.run_for(ticks_from_ms(3300));
  service_thread.join();

  std::cout << "saw " << monitor.heartbeats_seen() << " heartbeats; final state: "
            << (monitor.output() == detect::Output::Trust ? "TRUST" : "SUSPECT")
            << "\n";

  // The loop's self-accounting (timer reuse, batched RX, silent drops),
  // rendered through the shared observability registry — the same text
  // view the daemons serve on /metrics.
  obs::Registry registry;
  obs::EventLoopExport loop_export(registry, obs::make_labels({{"loop", "monitor"}}));
  loop_export.update(monitor_loop.stats());
  std::cout << obs::render_text(registry);
  return 0;
}

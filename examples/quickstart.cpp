// Quickstart: generate a WAN-like heartbeat trace, run the 2W-FD failure
// detector and the classic baselines over it, and print their QoS.
//
//   $ ./quickstart
//
// This is the 60-second tour of the library: traces, detectors, and the
// QoS evaluator.

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/factory.hpp"
#include "qos/evaluator.hpp"
#include "trace/scenario.hpp"
#include "trace/trace_stats.hpp"

using namespace twfd;

int main() {
  // 1. A synthetic WAN scenario: stable traffic, a loss burst, a degraded
  //    "worm" period, stable again (the paper's Table I structure).
  trace::WanScenario::Params params;
  params.samples = 200'000;
  params.seed = 7;
  trace::WanScenario scenario(params);
  const trace::Trace trace = scenario.build();

  const auto stats = trace::compute_stats(trace);
  std::cout << "Generated '" << trace.name() << "': " << stats.sent
            << " heartbeats every " << format_ticks(trace.interval())
            << ", loss=" << Table::num(stats.loss_probability * 100, 2)
            << "%, mean delay=" << Table::num(stats.delay_mean_s * 1e3, 1)
            << "ms\n\n";

  // 2. Detectors under test: 2W-FD (the paper's contribution) against
  //    Chen, Bertier, phi-accrual and ED, all at comparable tunings.
  const Tick margin = ticks_from_ms(115);
  const core::DetectorSpec specs[] = {
      core::DetectorSpec::two_window(1, 1000, margin),
      core::DetectorSpec::chen(1, margin),
      core::DetectorSpec::chen(1000, margin),
      core::DetectorSpec::bertier(1000),
      core::DetectorSpec::phi(1.2),
      core::DetectorSpec::ed(0.95),
  };

  // 3. Replay and report.
  Table table({"detector", "TD_s", "mistakes", "TMR_per_s", "TM_s", "PA"});
  for (const auto& spec : specs) {
    auto detector = core::make_detector(spec, trace.interval());
    const auto result = qos::evaluate(*detector, trace);
    const auto& m = result.metrics;
    table.add_row({detector->name(), Table::num(m.detection_time_s, 3),
                   std::to_string(m.mistake_count), Table::sci(m.mistake_rate_per_s, 2),
                   Table::num(m.mistake_duration_s, 3),
                   Table::num(m.query_accuracy, 6)});
  }
  table.print(std::cout);

  std::cout << "\n2w(1,1000) should show the fewest mistakes and the highest"
               " accuracy at a comparable detection time.\n";
  return 0;
}

// Trace tooling walkthrough: generate the WAN scenario, print per-period
// statistics (the paper's Table I view of the channel), archive the trace
// to the TWFDTRC1 binary format and to CSV, and reload it for replay.
//
//   $ ./trace_explorer [output_dir]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/table.hpp"
#include "trace/io.hpp"
#include "trace/scenario.hpp"
#include "trace/trace_stats.hpp"

using namespace twfd;

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : ".";

  trace::WanScenario::Params params;
  params.samples = 150'000;
  params.seed = 11;
  trace::WanScenario scenario(params);
  const trace::Trace t = scenario.build();

  std::cout << "WAN scenario: " << t.size() << " heartbeats, interval "
            << format_ticks(t.interval()) << ", clock skew "
            << format_ticks(t.clock_skew()) << "\n\n";

  Table table({"period", "seq_range", "sent", "p_L", "delay_ms", "V(D)_s2",
               "max_gap_s"});
  for (const auto& period : scenario.periods()) {
    const trace::Trace slice = t.slice(period.from_seq, period.to_seq);
    const auto s = trace::compute_stats(slice);
    table.add_row({period.name,
                   std::to_string(period.from_seq) + "-" +
                       std::to_string(period.to_seq),
                   std::to_string(s.sent), Table::num(s.loss_probability, 5),
                   Table::num(s.delay_mean_s * 1e3, 2),
                   Table::sci(s.delay_variance_s2, 2),
                   Table::num(s.interarrival_max_s, 2)});
  }
  std::cout << "Per-period channel statistics (Table I view):\n";
  table.print(std::cout);

  // Archive round trip.
  const auto bin_path = out_dir / "wan_demo.trc";
  const auto csv_path = out_dir / "wan_demo.csv";
  trace::save_binary_file(t, bin_path.string());
  {
    std::ofstream csv(csv_path);
    trace::save_csv(t, csv);
  }
  const trace::Trace reloaded = trace::load_binary_file(bin_path.string());

  std::cout << "\narchived: " << bin_path.string() << " ("
            << std::filesystem::file_size(bin_path) / 1024 << " KiB), "
            << csv_path.string() << " ("
            << std::filesystem::file_size(csv_path) / 1024 << " KiB)\n"
            << "reloaded " << reloaded.size()
            << " records; first arrival matches: "
            << (reloaded[0].arrival_time == t[0].arrival_time ? "yes" : "NO")
            << "\n";
  return 0;
}

// QoS planning walkthrough (Section V-A end to end):
//   1. measure the channel (p_L, V(D)) from a heartbeat sample,
//   2. run Chen's configuration procedure for an application's
//      (T_D^U, T_MR^U, T_M^U) tuple,
//   3. audit the produced (Delta_i, Delta_to) with the analytic
//      prediction, and
//   4. verify by replaying a long trace of the same channel through
//      2W-FD at that configuration.
//
//   $ ./qos_planning

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "config/qos_config.hpp"
#include "core/multi_window.hpp"
#include "qos/evaluator.hpp"
#include "trace/generator.hpp"
#include "trace/trace_stats.hpp"

using namespace twfd;

namespace {

trace::Trace channel(Tick interval, std::int64_t count, std::uint64_t seed) {
  trace::TraceGenerator gen("plan-channel", interval, 0, seed);
  trace::Regime r;
  r.label = "chan";
  r.count = count;
  r.delay = std::make_unique<trace::ExponentialDelay>(0.001, 0.012);
  r.loss = std::make_unique<trace::BernoulliLoss>(0.015);
  gen.add_regime(std::move(r));
  return gen.generate();
}

}  // namespace

int main() {
  // 1. Measure the channel from a short probing sample (what a live
  //    NetworkEstimator would accumulate).
  const auto sample = channel(ticks_from_ms(100), 20'000, 5);
  trace::NetworkEstimator est;
  for (auto idx : sample.delivery_order()) {
    const auto& rec = sample[idx];
    est.on_heartbeat(rec.seq, rec.send_time, rec.arrival_time);
  }
  const config::NetworkBehaviour net{est.loss_probability(),
                                     est.delay_variance_s2()};
  std::cout << "measured channel: p_L=" << Table::num(net.loss_probability, 4)
            << "  V(D)=" << Table::sci(net.delay_variance_s2, 3) << " s^2\n\n";

  // 2. The application's requirements: detect within 1 s, at most one
  //    false suspicion per ~3 hours, corrected within 5 s.
  const config::QosRequirements qos{1.0, 1e-4, 5.0};
  const auto cfg = config::chen_configure(qos, net);
  if (!cfg.feasible) {
    std::cout << "requirements unachievable on this channel\n";
    return 1;
  }
  std::cout << "configuration: Delta_i=" << Table::num(cfg.interval_s, 4)
            << " s  Delta_to=" << Table::num(cfg.margin_s, 4) << " s\n";

  // 3. Analytic audit.
  const auto pred = config::predict_qos(cfg.interval_s, cfg.margin_s, net);
  std::cout << "predicted bounds: T_D<=" << Table::num(pred.td_upper_s, 3)
            << " s  T_MR<=" << Table::sci(pred.tmr_upper_per_s, 2)
            << "/s  T_M<=" << Table::num(pred.tm_upper_s, 3)
            << " s  P_A>=" << Table::num(pred.pa_lower, 6) << "\n\n";

  // 4. Verification by replay: a day of the same channel at Delta_i.
  const Tick di = ticks_from_seconds(cfg.interval_s);
  const auto day =
      static_cast<std::int64_t>(86'400.0 / to_seconds(di));
  const auto t = channel(di, day, 17);
  core::MultiWindowDetector::Params mp;
  mp.windows = {1, 1000};
  mp.interval = di;
  mp.safety_margin = ticks_from_seconds(cfg.margin_s);
  core::MultiWindowDetector fd(mp);
  const auto m = qos::evaluate(fd, t).metrics;

  Table table({"metric", "required", "predicted_bound", "measured"});
  table.add_row({"T_D (s)", "<= " + Table::num(qos.td_upper_s, 2),
                 Table::num(pred.td_upper_s, 3), Table::num(m.detection_time_s, 3)});
  table.add_row({"T_MR (/s)", "<= " + Table::sci(qos.tmr_upper_per_s, 1),
                 Table::sci(pred.tmr_upper_per_s, 2),
                 Table::sci(m.mistake_rate_per_s, 2)});
  table.add_row({"T_M (s)", "<= " + Table::num(qos.tm_upper_s, 1),
                 Table::num(pred.tm_upper_s, 3),
                 Table::num(m.mistake_duration_s, 3)});
  table.add_row({"P_A", "-", ">= " + Table::num(pred.pa_lower, 6),
                 Table::num(m.query_accuracy, 6)});
  table.print(std::cout);

  const bool ok = m.mistake_rate_per_s <= qos.tmr_upper_per_s &&
                  (m.mistake_count == 0 || m.mistake_duration_s <= qos.tm_upper_s);
  std::cout << "\nreplay verdict: requirements "
            << (ok ? "MET (the Cantelli bound is conservative, as designed)"
                   : "VIOLATED — investigate")
            << "\n";
  return ok ? 0 : 1;
}

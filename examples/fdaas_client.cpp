// fdaas_client — a remote application consuming verdicts over the wire.
//
// Connects to a twfd_fdaasd API port, subscribes to one monitored peer
// with this application's own QoS tuple, then pumps EVENT frames and
// prints every Suspect/Trust transition as it arrives. Pair it with:
//
//   ./tools/twfd_fdaasd --api-port 4200 --service-port 4100 &
//   ./tools/twfd_beacon --id 7 --port 9000 --target 127.0.0.1:4100 &
//   ./examples/fdaas_client --server 127.0.0.1:4200 --peer 127.0.0.1:9000
//       --sender-id 7 --app dashboard --td-s 4 --duration-s 30
//
// Kill the beacon mid-run and the client prints Suspect within its own
// T_D^U; restart it (same --port) and Trust follows.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/client.hpp"

using namespace twfd;

namespace {

struct Options {
  net::SocketAddress server;
  net::SocketAddress peer;
  std::uint64_t sender_id = 1;
  std::string app = "example";
  double td_s = 4.0;        ///< detection-time ceiling T_D^U
  double tmr_per_s = 1e-3;  ///< mistake-rate ceiling (1/T_MR^L)
  double tm_s = 4.0;        ///< mistake-duration ceiling T_M^U
  long duration_s = 30;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --server HOST:PORT --peer HOST:PORT [--sender-id N]\n"
               "          [--app NAME] [--td-s X] [--tmr-per-s X] [--tm-s X]\n"
               "          [--duration-s N]\n",
               argv0);
  std::exit(2);
}

net::SocketAddress parse_hostport(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("expected HOST:PORT, got: " + s);
  }
  const int port = std::stoi(s.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw std::invalid_argument("bad port in: " + s);
  }
  return net::SocketAddress::parse(s.substr(0, colon),
                                   static_cast<std::uint16_t>(port));
}

Options parse_args(int argc, char** argv) {
  Options opt;
  bool have_server = false;
  bool have_peer = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--server") {
      opt.server = parse_hostport(next());
      have_server = true;
    } else if (arg == "--peer") {
      opt.peer = parse_hostport(next());
      have_peer = true;
    } else if (arg == "--sender-id") {
      opt.sender_id = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--app") {
      opt.app = next();
    } else if (arg == "--td-s") {
      opt.td_s = std::stod(next());
    } else if (arg == "--tmr-per-s") {
      opt.tmr_per_s = std::stod(next());
    } else if (arg == "--tm-s") {
      opt.tm_s = std::stod(next());
    } else if (arg == "--duration-s") {
      opt.duration_s = std::stol(next());
    } else {
      usage(argv[0]);
    }
  }
  if (!have_server || !have_peer) usage(argv[0]);
  return opt;
}

const char* output_name(detect::Output o) {
  return o == detect::Output::Suspect ? "SUSPECT" : "TRUST";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);

    api::Client client(opt.server);
    client.set_event_handler([](const api::EventMsg& event) {
      std::printf("event: sub %llu -> %s (t=%s)\n",
                  static_cast<unsigned long long>(event.subscription_id),
                  output_name(event.output), format_ticks(event.when).c_str());
      std::fflush(stdout);
    });

    const config::QosRequirements qos{opt.td_s, opt.tmr_per_s, opt.tm_s};
    const std::uint64_t sub =
        client.subscribe(opt.peer, opt.sender_id, opt.app, qos);
    std::printf("subscribed: id %llu, peer %s, app %s, QoS(T_D<=%.2fs, "
                "rate<=%.0e/s, T_M<=%.2fs), lease %llu ms\n",
                static_cast<unsigned long long>(sub),
                opt.peer.to_string().c_str(), opt.app.c_str(), opt.td_s,
                opt.tmr_per_s, opt.tm_s,
                static_cast<unsigned long long>(client.ping()));

    for (const auto& entry : client.snapshot()) {
      std::printf("snapshot: sub %llu = %s\n",
                  static_cast<unsigned long long>(entry.subscription_id),
                  output_name(entry.output));
    }
    std::fflush(stdout);

    if (!client.pump_for(ticks_from_sec(opt.duration_s))) {
      std::fprintf(stderr, "fdaas_client: connection lost\n");
      return 1;
    }
    client.unsubscribe(sub);
    std::printf("done: %llu events received\n",
                static_cast<unsigned long long>(client.events_received()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fdaas_client: %s\n", e.what());
    return 1;
  }
}

// Cluster membership demo (the paper's motivating application): a
// five-node cluster in the deterministic simulator. One node crashes,
// the survivors' views converge; it restarts and rejoins; then a network
// partition splits the cluster in two and heals.
//
//   $ ./cluster_membership

#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "service/membership.hpp"
#include "sim/sim_world.hpp"

using namespace twfd;

namespace {

std::string view_str(const std::vector<service::NodeId>& v) {
  std::string s = "{";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(v[i]);
  }
  return s + "}";
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 5;
  sim::SimWorld world(99);

  std::vector<sim::SimEndpoint*> endpoints;
  for (std::size_t i = 0; i < kNodes; ++i) {
    endpoints.push_back(&world.add_endpoint("node" + std::to_string(i + 1)));
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = i + 1; j < kNodes; ++j) {
      world.connect_both(*endpoints[i], *endpoints[j], sim::lan_link());
    }
  }

  std::vector<std::unique_ptr<service::MembershipNode>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    service::MembershipNode::Params p;
    p.node_id = i + 1;
    p.heartbeat_interval = ticks_from_ms(100);
    p.safety_margin = ticks_from_ms(120);
    nodes.push_back(
        std::make_unique<service::MembershipNode>(endpoints[i]->runtime(), p));
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < kNodes; ++j) {
      if (i != j) nodes[i]->add_peer(endpoints[j]->id(), j + 1);
    }
    nodes[i]->on_view_change([&world, id = i + 1](const std::vector<service::NodeId>& v) {
      std::cout << "  t=" << Table::num(to_seconds(world.now()), 2) << "s  node "
                << id << " view -> " << view_str(v) << "\n";
    });
  }

  std::cout << "t=0: all five nodes start\n";
  for (auto& n : nodes) n->start();
  world.run_until(ticks_from_sec(2));

  std::cout << "t=2s: node 5 crashes\n";
  nodes[4]->stop();
  world.run_until(ticks_from_sec(5));

  std::cout << "t=5s: node 5 restarts\n";
  nodes[4]->start();
  world.run_until(ticks_from_sec(8));

  std::cout << "t=8s: partition {1,2} | {3,4,5}\n";
  for (int a : {0, 1}) {
    for (int b : {2, 3, 4}) {
      world.disconnect_both(*endpoints[a], *endpoints[b]);
    }
  }
  world.run_until(ticks_from_sec(12));

  std::cout << "t=12s: partition heals\n";
  for (int a : {0, 1}) {
    for (int b : {2, 3, 4}) {
      world.connect_both(*endpoints[a], *endpoints[b], sim::lan_link());
    }
  }
  world.run_until(ticks_from_sec(15));

  std::cout << "\nfinal views:\n";
  for (auto& n : nodes) {
    std::cout << "  node " << n->id() << ": " << view_str(n->alive()) << "\n";
  }
  for (auto& n : nodes) n->stop();
  return 0;
}

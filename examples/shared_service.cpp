// Failure detection as a service (Section V), in the deterministic
// simulator: three applications with very different QoS needs share ONE
// FdService on host q monitoring host p. The service combines their
// requirements, negotiates a single heartbeat stream at Delta_i,min with
// p, and fires per-application suspicion callbacks when p crashes.
//
//   $ ./shared_service

#include <iostream>

#include "common/table.hpp"
#include "service/dispatcher.hpp"
#include "service/fd_service.hpp"
#include "service/heartbeat_sender.hpp"
#include "sim/sim_world.hpp"

using namespace twfd;

int main() {
  sim::SimWorld world(2026);
  auto& p = world.add_endpoint("p");
  auto& q = world.add_endpoint("q", /*skew=*/ticks_from_sec(4));
  world.connect_both(p, q, sim::lan_link());

  // Host p: heartbeat sender, interval negotiable downward from 10 s.
  service::Dispatcher p_dispatch(p.runtime());
  service::HeartbeatSender sender(p.runtime(), {/*sender_id=*/1, ticks_from_sec(10)});
  sender.add_target(q.id());
  p_dispatch.on_interval_request(
      [&](PeerId from, const net::IntervalRequestMsg& m) {
        sender.handle_interval_request(from, m);
      });

  // Host q: the shared failure-detection service.
  service::Dispatcher q_dispatch(q.runtime());
  service::FdService svc(q.runtime(), {});
  q_dispatch.on_heartbeat([&](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    svc.handle_heartbeat(from, m, at);
  });

  auto report = [&](const service::FdService::StatusEvent& e) {
    std::cout << "  t=" << Table::num(to_seconds(world.now()), 2) << "s  ["
              << e.app << "] -> "
              << (e.output == detect::Output::Suspect ? "SUSPECT" : "TRUST") << "\n";
  };

  // Three tenants with different (T_D^U, T_MR^U, T_M^U) tuples.
  svc.subscribe(p.id(), 1, "consensus (TD<=0.5s)", {0.5, 1e-4, 2.0}, report);
  svc.subscribe(p.id(), 1, "membership (TD<=1.5s)", {1.5, 1e-3, 6.0}, report);
  svc.subscribe(p.id(), 1, "dashboard (TD<=4s)", {4.0, 1e-2, 20.0}, report);
  // Let the interval negotiation land (bounded: timers re-arm forever).
  world.run_until(ticks_from_ms(10));

  const auto* combined = svc.combined_config(p.id());
  std::cout << "negotiated shared heartbeat interval: "
            << format_ticks(svc.shared_interval(p.id())) << "\n";
  Table cfg({"app", "dedicated_Di_s", "shared_Dto_s"});
  for (const auto& a : combined->apps) {
    cfg.add_row({a.name, Table::num(a.dedicated.interval_s, 3),
                 Table::num(a.shared_margin_s, 3)});
  }
  cfg.print(std::cout);
  std::cout << "network load: dedicated="
            << Table::num(combined->dedicated_msgs_per_s, 2)
            << " msg/s vs shared=" << Table::num(combined->shared_msgs_per_s, 2)
            << " msg/s\n\n";

  std::cout << "p alive for 30s...\n";
  sender.start();
  world.run_until(ticks_from_sec(30));

  std::cout << "p crashes at t=30s; apps should suspect in QoS order:\n";
  sender.stop();
  world.run_until(ticks_from_sec(40));

  std::cout << "p restarts at t=40s:\n";
  sender.start();
  world.run_until(ticks_from_sec(45));
  sender.stop();

  std::cout << "\nheartbeats processed by the shared service: "
            << svc.heartbeats_processed() << " (one stream for three apps)\n";
  return 0;
}

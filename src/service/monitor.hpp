// The monitoring side for a single application: drives any
// detect::FailureDetector live. Heartbeats re-arm one timer at the
// detector's suspect_after(); transitions fire callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/runtime.hpp"
#include "detect/failure_detector.hpp"
#include "net/wire.hpp"

namespace twfd::service {

class Monitor {
 public:
  struct Callbacks {
    /// Invoked on the S-transition (local-clock instant).
    std::function<void(Tick when)> on_suspect;
    /// Invoked on the T-transition.
    std::function<void(Tick when)> on_trust;
  };

  /// `watched_sender_id`: heartbeats from other senders are ignored.
  Monitor(Runtime rt, std::uint64_t watched_sender_id,
          std::unique_ptr<detect::FailureDetector> detector, Callbacks callbacks);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Wire this to Dispatcher::on_heartbeat.
  void handle_heartbeat(PeerId from, const net::HeartbeatMsg& msg, Tick arrival);

  [[nodiscard]] detect::Output output() const;
  [[nodiscard]] Tick suspect_after() const { return detector_->suspect_after(); }
  [[nodiscard]] const detect::FailureDetector& detector() const { return *detector_; }
  [[nodiscard]] std::uint64_t heartbeats_seen() const noexcept { return seen_; }

 private:
  void arm_timer();
  void on_timer();

  Runtime rt_;
  std::uint64_t watched_sender_id_;
  std::unique_ptr<detect::FailureDetector> detector_;
  Callbacks callbacks_;
  bool suspecting_ = false;
  TimerId timer_ = kInvalidTimer;
  std::uint64_t seen_ = 0;
};

}  // namespace twfd::service

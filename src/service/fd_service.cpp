#include "service/fd_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"

namespace twfd::service {

FdService::FdService(Runtime rt, Params params) : rt_(rt), params_(std::move(params)) {
  TWFD_CHECK(rt.clock && rt.transport && rt.timers);
  TWFD_CHECK(!params_.windows.empty());
  if (params_.expected_peers > 0) {
    remotes_.reserve(params_.expected_peers);
    peer_index_.reserve(params_.expected_peers);
    sub_to_peer_.reserve(params_.expected_peers);
  }
}

FdService::~FdService() {
  remotes_.for_each([&](SlabHandle, Remote& remote) {
    for (auto& sub : remote.subs) {
      if (sub.timer != kInvalidTimer) rt_.timers->cancel(sub.timer);
      if (params_.qos_tracker != nullptr) params_.qos_tracker->untrack(sub.qos_handle);
    }
    if (remote.reconfigure_timer != kInvalidTimer) {
      rt_.timers->cancel(remote.reconfigure_timer);
    }
  });
}

config::NetworkBehaviour FdService::behaviour_for(const Remote& remote) const {
  if (remote.estimator.received() >=
      static_cast<std::int64_t>(params_.min_samples_for_estimate)) {
    return {remote.estimator.loss_probability(), remote.estimator.delay_variance_s2()};
  }
  return params_.assumed_network;
}

FdService::SubscriptionId FdService::subscribe(PeerId peer, std::uint64_t sender_id,
                                               std::string app,
                                               const config::QosRequirements& qos,
                                               StatusCallback callback,
                                               detect::Output initial) {
  Remote* existing = find_remote(peer);
  if (existing != nullptr) {
    TWFD_CHECK_MSG(existing->sender_id == sender_id,
                   "one remote peer cannot host two sender ids");
  }

  // Pre-flight, pure: combine the would-be membership and validate it
  // BEFORE touching any state. A doomed subscription must not leak an
  // IntervalRequest onto the wire or rebuild the detector under the
  // pre-existing subscribers' feet.
  std::vector<config::AppRequest> requests;
  requests.reserve((existing != nullptr ? existing->subs.size() : 0) + 1);
  if (existing != nullptr) {
    for (const auto& sub : existing->subs) requests.push_back({sub.app, sub.qos});
  }
  requests.push_back({app, qos});
  const config::NetworkBehaviour behaviour =
      existing != nullptr ? behaviour_for(*existing) : params_.assumed_network;
  config::CombinedConfig combined = config::combine_requirements(requests, behaviour);

  const bool too_demanding =
      combined.feasible &&
      ticks_from_seconds(combined.shared_interval_s) < params_.min_interval;
  if (!combined.feasible || too_demanding) {
    throw std::logic_error(
        too_demanding
            ? "QoS requirements demand a heartbeat interval below the floor"
            : "QoS requirements unachievable under network behaviour");
  }

  // Verdict is in: admit. apply_combined reuses the combination computed
  // above — no second configuration pass, no rollback path.
  Remote* remote = existing != nullptr ? existing : admit_remote(peer, sender_id);
  Subscription sub;
  sub.id = next_sub_id_++;
  sub.app = std::move(app);
  sub.qos = qos;
  sub.callback = std::move(callback);
  // A primed-Suspect subscription never arms a freshness timer (see
  // arm_timer) and on_sub_timer refuses to re-fire while suspecting, so
  // the prior incarnation's verdict carries over without a duplicate
  // Suspect event; the first applied heartbeat flips it with a Trust.
  sub.suspecting = (initial == detect::Output::Suspect);
  const SubscriptionId id = sub.id;
  remote->subs.push_back(std::move(sub));
  if (params_.qos_tracker != nullptr) {
    Subscription& admitted = remote->subs.back();
    admitted.qos_handle = params_.qos_tracker->track(admitted.app, sender_id, qos,
                                                     rt_.clock->now());
  }
  sub_to_peer_.insert_or_assign(id, peer);
  apply_combined(*remote, std::move(combined));
  return id;
}

void FdService::unsubscribe(SubscriptionId id) {
  PeerId* peer = sub_to_peer_.find(id);
  if (peer == nullptr) return;
  Remote* remote = find_remote(*peer);
  TWFD_CHECK(remote != nullptr);
  sub_to_peer_.erase(id);

  const auto it = std::find_if(remote->subs.begin(), remote->subs.end(),
                               [&](const Subscription& s) { return s.id == id; });
  TWFD_CHECK(it != remote->subs.end());
  if (it->timer != kInvalidTimer) rt_.timers->cancel(it->timer);
  if (params_.qos_tracker != nullptr) params_.qos_tracker->untrack(it->qos_handle);
  remote->subs.erase(it);

  if (remote->subs.empty()) {
    evict_remote(*remote);
    return;
  }
  recombine(*remote);
}

FdService::Remote* FdService::admit_remote(PeerId peer, std::uint64_t sender_id) {
  const SlabHandle h = remotes_.emplace(peer, sender_id, params_.windows);
  peer_index_.insert_or_assign(peer, h);
  Remote* remote = remotes_.get(h);
  schedule_reconfigure(*remote);
  return remote;
}

void FdService::evict_remote(Remote& remote) {
  TWFD_CHECK_MSG(remote.subs.empty(), "evicting a remote with live subscriptions");
  if (remote.reconfigure_timer != kInvalidTimer) {
    rt_.timers->cancel(remote.reconfigure_timer);
    remote.reconfigure_timer = kInvalidTimer;
  }
  const SlabHandle* h = peer_index_.find(remote.peer);
  TWFD_CHECK(h != nullptr);
  const SlabHandle handle = *h;
  peer_index_.erase(remote.peer);
  remotes_.erase(handle);  // parks the slot: buffers wait for the next peer
}

void FdService::recombine(Remote& remote) {
  std::vector<config::AppRequest> requests;
  requests.reserve(remote.subs.size());
  for (const auto& sub : remote.subs) requests.push_back({sub.app, sub.qos});

  config::CombinedConfig combined =
      config::combine_requirements(requests, behaviour_for(remote));
  if (!combined.feasible) {
    remote.combined = std::move(combined);
    return;
  }
  apply_combined(remote, std::move(combined));
}

void FdService::apply_combined(Remote& remote, config::CombinedConfig&& combined) {
  TWFD_CHECK(combined.feasible);
  TWFD_CHECK(combined.apps.size() == remote.subs.size());
  remote.combined = std::move(combined);

  const Tick interval = ticks_from_seconds(remote.combined.shared_interval_s);
  for (std::size_t j = 0; j < remote.subs.size(); ++j) {
    remote.subs[j].margin =
        ticks_from_seconds(remote.combined.apps[j].shared_margin_s);
  }

  // Ask the sender for Delta_i,min whenever it changed.
  if (interval != remote.requested_interval) {
    remote.requested_interval = interval;
    net::IntervalRequestMsg req;
    req.requester_id = params_.service_id;
    req.requested_interval = interval;
    const auto payload = net::encode(req);
    rt_.transport->send(remote.peer, payload);
    rebuild_detector(remote);
  } else if (!remote.detector_ready ||
             remote.detector.app_count() != remote.subs.size()) {
    rebuild_detector(remote);
  } else {
    // Same membership count and interval: margins may still have shifted;
    // rebuild only if any margin disagrees with the detector's.
    bool dirty = false;
    for (std::size_t j = 0; j < remote.subs.size(); ++j) {
      if (remote.detector.margin(j) != remote.subs[j].margin) dirty = true;
    }
    if (dirty) rebuild_detector(remote);
  }
}

void FdService::rebuild_detector(Remote& remote) {
  // The freshness geometry below the estimation (the sender's Delta_i) is
  // changing, so old normalised arrivals are no longer comparable; the
  // embedded detector re-bases its windows in place — no allocation for
  // the ring storage. Pending freshness timers are re-armed (not
  // cancelled) by the arm_timer pass at the end.
  // Normalise arrivals by the interval the sender actually emits at, not
  // the one we asked for: senders only honour requests downwards (another
  // service may have negotiated a smaller Delta_i,min), and Chen-style
  // estimation with a mismatched Delta_i skews every expected arrival by
  // (assumed - actual), so detection time drifts without bound. Before
  // the first heartbeat the requested interval is the best guess.
  const Tick delta_i = remote.sender_interval > 0 ? remote.sender_interval
                                                  : remote.requested_interval;
  remote.detector.rebuild(std::max<Tick>(delta_i, 1));
  for (std::size_t j = 0; j < remote.subs.size(); ++j) {
    remote.subs[j].shared_index =
        remote.detector.add_application(remote.subs[j].app, remote.subs[j].margin);
  }
  remote.detector_ready = true;
  ++detector_rebuilds_;
  // A silent remote must still be suspected: until the first heartbeat
  // arrives, each app's deadline counts from now.
  remote.detector.set_bootstrap_anchor(rt_.clock->now());
  for (auto& sub : remote.subs) arm_timer(remote, sub);
}

void FdService::handle_heartbeat(PeerId from, const net::HeartbeatMsg& msg,
                                 Tick arrival) {
  Remote* remote = find_remote(from);
  if (remote == nullptr || msg.sender_id != remote->sender_id) return;
  if (!remote->detector_ready) return;

  // Heartbeats are self-describing (wire.hpp): adopt the sender's
  // advertised Delta_i whenever it changes. The shared arrival estimation
  // always restarts (rebuild re-bases the windows). The p_L/V(D)
  // estimator restarts only on an UNSOLICITED change — one we did not
  // request, i.e. another monitor renegotiated or the sender was
  // reconfigured, so the sample history comes from a different sending
  // regime. A change the service itself asked for keeps the estimator:
  // those live samples are exactly the evidence that justified the
  // request, and wiping them would drop the service below
  // min_samples_for_estimate, snap behaviour_for() back to the assumed
  // network and oscillate the negotiation forever.
  if (msg.interval > 0 && msg.interval != remote->sender_interval) {
    const bool solicited = msg.interval == remote->requested_interval;
    remote->sender_interval = msg.interval;
    if (!solicited) remote->estimator.reset();
    rebuild_detector(*remote);
  }

  ++heartbeats_;
  remote->last_arrival = arrival;
  if (params_.obs_heartbeats != nullptr) {
    params_.obs_heartbeats->add(params_.obs_cell);
  }
  remote->estimator.on_heartbeat(msg.seq, msg.send_time, arrival);
  remote->detector.on_heartbeat(msg.seq, msg.send_time, arrival);

  for (auto& sub : remote->subs) {
    if (sub.suspecting &&
        remote->detector.suspect_after(sub.shared_index) > arrival) {
      sub.suspecting = false;
      if (params_.qos_tracker != nullptr) {
        params_.qos_tracker->record_trust(sub.qos_handle, arrival);
      }
      if (sub.callback) {
        sub.callback({sub.id, sub.app, detect::Output::Trust, arrival});
      }
    }
    arm_timer(*remote, sub);
  }
}

void FdService::arm_timer(Remote& remote, Subscription& sub) {
  const Tick sa = remote.detector_ready && !sub.suspecting
                      ? remote.detector.suspect_after(sub.shared_index)
                      : kTickInfinity;
  if (sa == kTickInfinity) {
    if (sub.timer != kInvalidTimer) {
      rt_.timers->cancel(sub.timer);
      sub.timer = kInvalidTimer;
    }
    return;
  }
  // Hot path: every heartbeat re-arms every subscription's freshness
  // timer, so move the pending timer instead of cancel + schedule. The
  // callback captures only (peer, id) and resolves state at fire time,
  // so it survives detector rebuilds and slab moves unchanged.
  if (sub.timer != kInvalidTimer) {
    if (rt_.timers->reschedule(sub.timer, sa)) return;
    rt_.timers->cancel(sub.timer);
    sub.timer = kInvalidTimer;
  }
  const PeerId peer = remote.peer;
  const SubscriptionId id = sub.id;
  sub.timer = rt_.timers->schedule_at(sa, [this, peer, id] { on_sub_timer(peer, id); });
}

void FdService::on_sub_timer(PeerId peer, SubscriptionId id) {
  Remote* remote = find_remote(peer);
  if (remote == nullptr) return;
  const auto it = std::find_if(remote->subs.begin(), remote->subs.end(),
                               [&](const Subscription& s) { return s.id == id; });
  if (it == remote->subs.end()) return;
  it->timer = kInvalidTimer;
  if (it->suspecting || !remote->detector_ready) return;

  const Tick t = rt_.clock->now();
  if (remote->detector.output_at(it->shared_index, t) == detect::Output::Suspect) {
    it->suspecting = true;
    if (params_.qos_tracker != nullptr) {
      params_.qos_tracker->record_suspect(it->qos_handle, t, remote->last_arrival);
    }
    if (it->callback) it->callback({it->id, it->app, detect::Output::Suspect, t});
  } else {
    arm_timer(*remote, *it);  // raced with a fresh heartbeat
  }
}

void FdService::schedule_reconfigure(Remote& remote) {
  if (params_.reconfigure_period <= 0) return;
  const PeerId peer = remote.peer;
  remote.reconfigure_timer = rt_.timers->schedule_at(
      tick_add_sat(rt_.clock->now(), params_.reconfigure_period), [this, peer] {
        Remote* r = find_remote(peer);
        if (r == nullptr) return;
        r->reconfigure_timer = kInvalidTimer;
        reconfigure(peer);
        schedule_reconfigure(*r);
      });
}

void FdService::reconfigure(PeerId peer) {
  Remote* remote = find_remote(peer);
  if (remote == nullptr || remote->subs.empty()) return;
  recombine(*remote);
}

detect::Output FdService::output(SubscriptionId id) const {
  const Subscription* sub = find_subscription(id);
  TWFD_CHECK_MSG(sub != nullptr, "unknown subscription");
  const PeerId* peer = sub_to_peer_.find(id);
  const Remote* remote = find_remote(*peer);
  TWFD_CHECK(remote != nullptr);
  if (!remote->detector_ready) return detect::Output::Trust;
  return remote->detector.output_at(sub->shared_index, rt_.clock->now());
}

Tick FdService::shared_interval(PeerId peer) const {
  const Remote* remote = find_remote(peer);
  return remote == nullptr ? 0 : remote->requested_interval;
}

const config::CombinedConfig* FdService::combined_config(PeerId peer) const {
  const Remote* remote = find_remote(peer);
  return remote == nullptr ? nullptr : &remote->combined;
}

const trace::NetworkEstimator* FdService::network_estimator(PeerId peer) const {
  const Remote* remote = find_remote(peer);
  return remote == nullptr ? nullptr : &remote->estimator;
}

FdService::Remote* FdService::find_remote(PeerId peer) {
  const SlabHandle* h = peer_index_.find(peer);
  return h == nullptr ? nullptr : remotes_.get(*h);
}

const FdService::Remote* FdService::find_remote(PeerId peer) const {
  const SlabHandle* h = peer_index_.find(peer);
  return h == nullptr ? nullptr : remotes_.get(*h);
}

const FdService::Subscription* FdService::find_subscription(SubscriptionId id) const {
  const PeerId* peer = sub_to_peer_.find(id);
  if (peer == nullptr) return nullptr;
  const Remote* remote = find_remote(*peer);
  if (remote == nullptr) return nullptr;
  const auto it = std::find_if(remote->subs.begin(), remote->subs.end(),
                               [&](const Subscription& s) { return s.id == id; });
  return it == remote->subs.end() ? nullptr : &*it;
}

}  // namespace twfd::service

#include "service/fd_service.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace twfd::service {

FdService::FdService(Runtime rt, Params params) : rt_(rt), params_(std::move(params)) {
  TWFD_CHECK(rt.clock && rt.transport && rt.timers);
  TWFD_CHECK(!params_.windows.empty());
}

FdService::~FdService() {
  for (auto& [peer, remote] : remotes_) {
    for (auto& sub : remote.subs) {
      if (sub.timer != kInvalidTimer) rt_.timers->cancel(sub.timer);
    }
    if (remote.reconfigure_timer != kInvalidTimer) {
      rt_.timers->cancel(remote.reconfigure_timer);
    }
  }
}

config::NetworkBehaviour FdService::behaviour_for(const Remote& remote) const {
  if (remote.estimator.received() >=
      static_cast<std::int64_t>(params_.min_samples_for_estimate)) {
    return {remote.estimator.loss_probability(), remote.estimator.delay_variance_s2()};
  }
  return params_.assumed_network;
}

FdService::SubscriptionId FdService::subscribe(PeerId peer, std::uint64_t sender_id,
                                               std::string app,
                                               const config::QosRequirements& qos,
                                               StatusCallback callback) {
  auto [it, inserted] = remotes_.try_emplace(peer);
  Remote& remote = it->second;
  if (inserted) {
    remote.peer = peer;
    remote.sender_id = sender_id;
    schedule_reconfigure(remote);
  } else {
    TWFD_CHECK_MSG(remote.sender_id == sender_id,
                   "one remote peer cannot host two sender ids");
  }

  Subscription sub;
  sub.id = next_sub_id_++;
  sub.app = std::move(app);
  sub.qos = qos;
  sub.callback = std::move(callback);
  remote.subs.push_back(std::move(sub));
  sub_to_peer_[remote.subs.back().id] = peer;

  recombine(remote);
  const bool too_demanding =
      remote.combined.feasible &&
      ticks_from_seconds(remote.combined.shared_interval_s) < params_.min_interval;
  if (!remote.combined.feasible || too_demanding) {
    // Roll back the doomed subscription before reporting failure.
    sub_to_peer_.erase(remote.subs.back().id);
    remote.subs.pop_back();
    if (!remote.subs.empty()) {
      recombine(remote);
    } else {
      if (remote.reconfigure_timer != kInvalidTimer) {
        rt_.timers->cancel(remote.reconfigure_timer);
      }
      remotes_.erase(remote.peer);
    }
    throw std::logic_error(
        too_demanding
            ? "QoS requirements demand a heartbeat interval below the floor"
            : "QoS requirements unachievable under network behaviour");
  }
  return remote.subs.back().id;
}

void FdService::unsubscribe(SubscriptionId id) {
  const auto peer_it = sub_to_peer_.find(id);
  if (peer_it == sub_to_peer_.end()) return;
  Remote& remote = remotes_.at(peer_it->second);
  sub_to_peer_.erase(peer_it);

  const auto it = std::find_if(remote.subs.begin(), remote.subs.end(),
                               [&](const Subscription& s) { return s.id == id; });
  TWFD_CHECK(it != remote.subs.end());
  if (it->timer != kInvalidTimer) rt_.timers->cancel(it->timer);
  remote.subs.erase(it);

  if (remote.subs.empty()) {
    if (remote.reconfigure_timer != kInvalidTimer) {
      rt_.timers->cancel(remote.reconfigure_timer);
    }
    remotes_.erase(remote.peer);
    return;
  }
  recombine(remote);
}

void FdService::recombine(Remote& remote) {
  std::vector<config::AppRequest> requests;
  requests.reserve(remote.subs.size());
  for (const auto& sub : remote.subs) requests.push_back({sub.app, sub.qos});

  remote.combined = config::combine_requirements(requests, behaviour_for(remote));
  if (!remote.combined.feasible) return;

  const Tick interval = ticks_from_seconds(remote.combined.shared_interval_s);
  for (std::size_t j = 0; j < remote.subs.size(); ++j) {
    remote.subs[j].margin =
        ticks_from_seconds(remote.combined.apps[j].shared_margin_s);
  }

  // Ask the sender for Delta_i,min whenever it changed.
  if (interval != remote.requested_interval) {
    remote.requested_interval = interval;
    net::IntervalRequestMsg req;
    req.requester_id = params_.service_id;
    req.requested_interval = interval;
    const auto payload = net::encode(req);
    rt_.transport->send(remote.peer, payload);
    rebuild_detector(remote);
  } else if (!remote.detector || remote.detector->app_count() != remote.subs.size()) {
    rebuild_detector(remote);
  } else {
    // Same membership count and interval: margins may still have shifted;
    // rebuild only if any margin disagrees with the detector's.
    bool dirty = false;
    for (std::size_t j = 0; j < remote.subs.size(); ++j) {
      if (remote.detector->margin(j) != remote.subs[j].margin) dirty = true;
    }
    if (dirty) rebuild_detector(remote);
  }
}

void FdService::rebuild_detector(Remote& remote) {
  // Estimation state restarts: the freshness geometry below it (the
  // sender's Delta_i) is changing, so old normalised arrivals are no
  // longer comparable. Pending freshness timers are re-armed (not
  // cancelled) by the arm_timer pass at the end.
  // Normalise arrivals by the interval the sender actually emits at, not
  // the one we asked for: senders only honour requests downwards (another
  // service may have negotiated a smaller Delta_i,min), and Chen-style
  // estimation with a mismatched Delta_i skews every expected arrival by
  // (assumed - actual), so detection time drifts without bound. Before
  // the first heartbeat the requested interval is the best guess.
  const Tick delta_i = remote.sender_interval > 0 ? remote.sender_interval
                                                  : remote.requested_interval;
  remote.detector = std::make_unique<core::SharedMarginDetector>(
      params_.windows, std::max<Tick>(delta_i, 1));
  for (std::size_t j = 0; j < remote.subs.size(); ++j) {
    remote.subs[j].shared_index =
        remote.detector->add_application(remote.subs[j].app, remote.subs[j].margin);
  }
  // A silent remote must still be suspected: until the first heartbeat
  // arrives, each app's deadline counts from now.
  remote.detector->set_bootstrap_anchor(rt_.clock->now());
  for (auto& sub : remote.subs) arm_timer(remote, sub);
}

void FdService::handle_heartbeat(PeerId from, const net::HeartbeatMsg& msg,
                                 Tick arrival) {
  Remote* remote = find_remote(from);
  if (remote == nullptr || msg.sender_id != remote->sender_id) return;
  if (!remote->detector) return;

  // Heartbeats are self-describing (wire.hpp): adopt the sender's
  // advertised Delta_i whenever it changes. Estimation state restarts on
  // a rebuild, but advertised intervals only change when the sender
  // applies a negotiation, not per heartbeat.
  if (msg.interval > 0 && msg.interval != remote->sender_interval) {
    remote->sender_interval = msg.interval;
    rebuild_detector(*remote);
  }

  ++heartbeats_;
  remote->estimator.on_heartbeat(msg.seq, msg.send_time, arrival);
  remote->detector->on_heartbeat(msg.seq, msg.send_time, arrival);

  for (auto& sub : remote->subs) {
    if (sub.suspecting &&
        remote->detector->suspect_after(sub.shared_index) > arrival) {
      sub.suspecting = false;
      if (sub.callback) {
        sub.callback({sub.id, sub.app, detect::Output::Trust, arrival});
      }
    }
    arm_timer(*remote, sub);
  }
}

void FdService::arm_timer(Remote& remote, Subscription& sub) {
  const Tick sa = remote.detector && !sub.suspecting
                      ? remote.detector->suspect_after(sub.shared_index)
                      : kTickInfinity;
  if (sa == kTickInfinity) {
    if (sub.timer != kInvalidTimer) {
      rt_.timers->cancel(sub.timer);
      sub.timer = kInvalidTimer;
    }
    return;
  }
  // Hot path: every heartbeat re-arms every subscription's freshness
  // timer, so move the pending timer instead of cancel + schedule. The
  // callback captures only (peer, id) and resolves state at fire time,
  // so it survives detector rebuilds unchanged.
  if (sub.timer != kInvalidTimer) {
    if (rt_.timers->reschedule(sub.timer, sa)) return;
    rt_.timers->cancel(sub.timer);
    sub.timer = kInvalidTimer;
  }
  const PeerId peer = remote.peer;
  const SubscriptionId id = sub.id;
  sub.timer = rt_.timers->schedule_at(sa, [this, peer, id] { on_sub_timer(peer, id); });
}

void FdService::on_sub_timer(PeerId peer, SubscriptionId id) {
  Remote* remote = find_remote(peer);
  if (remote == nullptr) return;
  const auto it = std::find_if(remote->subs.begin(), remote->subs.end(),
                               [&](const Subscription& s) { return s.id == id; });
  if (it == remote->subs.end()) return;
  it->timer = kInvalidTimer;
  if (it->suspecting || !remote->detector) return;

  const Tick t = rt_.clock->now();
  if (remote->detector->output_at(it->shared_index, t) == detect::Output::Suspect) {
    it->suspecting = true;
    if (it->callback) it->callback({it->id, it->app, detect::Output::Suspect, t});
  } else {
    arm_timer(*remote, *it);  // raced with a fresh heartbeat
  }
}

void FdService::schedule_reconfigure(Remote& remote) {
  if (params_.reconfigure_period <= 0) return;
  const PeerId peer = remote.peer;
  remote.reconfigure_timer = rt_.timers->schedule_at(
      tick_add_sat(rt_.clock->now(), params_.reconfigure_period), [this, peer] {
        Remote* r = find_remote(peer);
        if (r == nullptr) return;
        r->reconfigure_timer = kInvalidTimer;
        reconfigure(peer);
        schedule_reconfigure(*r);
      });
}

void FdService::reconfigure(PeerId peer) {
  Remote* remote = find_remote(peer);
  if (remote == nullptr || remote->subs.empty()) return;
  recombine(*remote);
}

detect::Output FdService::output(SubscriptionId id) const {
  const Subscription* sub = find_subscription(id);
  TWFD_CHECK_MSG(sub != nullptr, "unknown subscription");
  const Remote& remote = remotes_.at(sub_to_peer_.at(id));
  if (!remote.detector) return detect::Output::Trust;
  return remote.detector->output_at(sub->shared_index, rt_.clock->now());
}

Tick FdService::shared_interval(PeerId peer) const {
  const auto it = remotes_.find(peer);
  return it == remotes_.end() ? 0 : it->second.requested_interval;
}

const config::CombinedConfig* FdService::combined_config(PeerId peer) const {
  const auto it = remotes_.find(peer);
  return it == remotes_.end() ? nullptr : &it->second.combined;
}

FdService::Remote* FdService::find_remote(PeerId peer) {
  const auto it = remotes_.find(peer);
  return it == remotes_.end() ? nullptr : &it->second;
}

const FdService::Subscription* FdService::find_subscription(SubscriptionId id) const {
  const auto peer_it = sub_to_peer_.find(id);
  if (peer_it == sub_to_peer_.end()) return nullptr;
  const Remote& remote = remotes_.at(peer_it->second);
  const auto it = std::find_if(remote.subs.begin(), remote.subs.end(),
                               [&](const Subscription& s) { return s.id == id; });
  return it == remote.subs.end() ? nullptr : &*it;
}

}  // namespace twfd::service

// Datagram -> typed message routing.
//
// A Runtime's transport has one receive callback; the Dispatcher owns it,
// decodes wire messages and routes them — together with the transport's
// arrival timestamp (kernel RX stamp or per-batch clock read) — to the
// sender / monitor components sharing the runtime. Malformed datagrams
// are counted and dropped.
#pragma once

#include <cstdint>
#include <functional>

#include "common/runtime.hpp"
#include "net/wire.hpp"

namespace twfd::service {

class Dispatcher {
 public:
  using HeartbeatHandler =
      std::function<void(PeerId from, const net::HeartbeatMsg&, Tick arrival)>;
  using IntervalRequestHandler =
      std::function<void(PeerId from, const net::IntervalRequestMsg&)>;

  /// Installs itself as `rt.transport`'s receive handler. The dispatcher
  /// must outlive the runtime's message flow.
  explicit Dispatcher(Runtime rt);

  void on_heartbeat(HeartbeatHandler handler) { heartbeat_ = std::move(handler); }
  void on_interval_request(IntervalRequestHandler handler) {
    interval_request_ = std::move(handler);
  }

  /// Decodes and routes one datagram, attributing `arrival` as its
  /// receive time. The transport receive handler calls this; the sharded
  /// runtime also calls it directly for datagrams handed off from a
  /// sibling shard (preserving the receiving shard's stamp). Malformed
  /// datagrams bump malformed_count() and are dropped without disturbing
  /// the heartbeat path.
  void ingest(PeerId from, std::span<const std::byte> data, Tick arrival);
  /// Convenience for callers without a transport stamp: arrival = now().
  void ingest(PeerId from, std::span<const std::byte> data);

  [[nodiscard]] std::uint64_t malformed_count() const noexcept { return malformed_; }
  [[nodiscard]] std::uint64_t heartbeat_count() const noexcept { return heartbeats_; }

 private:
  Runtime rt_;
  HeartbeatHandler heartbeat_;
  IntervalRequestHandler interval_request_;
  std::uint64_t malformed_ = 0;
  std::uint64_t heartbeats_ = 0;
};

}  // namespace twfd::service

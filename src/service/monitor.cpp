#include "service/monitor.hpp"

#include "common/assert.hpp"

namespace twfd::service {

Monitor::Monitor(Runtime rt, std::uint64_t watched_sender_id,
                 std::unique_ptr<detect::FailureDetector> detector,
                 Callbacks callbacks)
    : rt_(rt), watched_sender_id_(watched_sender_id), detector_(std::move(detector)),
      callbacks_(std::move(callbacks)) {
  TWFD_CHECK(rt.clock && rt.transport && rt.timers);
  TWFD_CHECK(detector_ != nullptr);
}

Monitor::~Monitor() {
  if (timer_ != kInvalidTimer) rt_.timers->cancel(timer_);
}

detect::Output Monitor::output() const {
  return detector_->output_at(rt_.clock->now());
}

void Monitor::handle_heartbeat(PeerId /*from*/, const net::HeartbeatMsg& msg,
                               Tick arrival) {
  if (msg.sender_id != watched_sender_id_) return;
  ++seen_;
  detector_->on_heartbeat(msg.seq, msg.send_time, arrival);

  if (suspecting_ && detector_->suspect_after() > arrival) {
    suspecting_ = false;
    if (callbacks_.on_trust) callbacks_.on_trust(arrival);
  }
  arm_timer();
}

void Monitor::arm_timer() {
  const Tick sa = detector_->suspect_after();
  if (sa == kTickInfinity || suspecting_) {
    // No freshness deadline to watch: while suspecting, the next
    // heartbeat (not a timer) is what changes state.
    if (timer_ != kInvalidTimer) {
      rt_.timers->cancel(timer_);
      timer_ = kInvalidTimer;
    }
    return;
  }
  // Per-heartbeat re-arm is the monitor hot path: move the pending timer
  // instead of paying a cancel + schedule (and a callback allocation)
  // per message. Falls back when the timer already fired or the runtime
  // does not support rescheduling.
  if (timer_ != kInvalidTimer) {
    if (rt_.timers->reschedule(timer_, sa)) return;
    rt_.timers->cancel(timer_);
    timer_ = kInvalidTimer;
  }
  timer_ = rt_.timers->schedule_at(sa, [this] { on_timer(); });
}

void Monitor::on_timer() {
  timer_ = kInvalidTimer;
  if (suspecting_) return;  // stale fire while already suspecting: no-op
  const Tick t = rt_.clock->now();
  if (detector_->output_at(t) == detect::Output::Suspect) {
    suspecting_ = true;
    if (callbacks_.on_suspect) callbacks_.on_suspect(t);
  } else {
    // Raced with a heartbeat that pushed suspect_after out; re-arm.
    // A same-tick heartbeat may also have reset suspecting_ just before
    // this fire — output_at(t) re-checks the detector, so the
    // trust -> suspect -> trust sequence at equal ticks stays correct
    // (pinned by Monitor.EqualTick* regression tests).
    arm_timer();
  }
}

}  // namespace twfd::service

#include "service/monitor.hpp"

#include "common/assert.hpp"

namespace twfd::service {

Monitor::Monitor(Runtime rt, std::uint64_t watched_sender_id,
                 std::unique_ptr<detect::FailureDetector> detector,
                 Callbacks callbacks)
    : rt_(rt), watched_sender_id_(watched_sender_id), detector_(std::move(detector)),
      callbacks_(std::move(callbacks)) {
  TWFD_CHECK(rt.clock && rt.transport && rt.timers);
  TWFD_CHECK(detector_ != nullptr);
}

Monitor::~Monitor() {
  if (timer_ != kInvalidTimer) rt_.timers->cancel(timer_);
}

detect::Output Monitor::output() const {
  return detector_->output_at(rt_.clock->now());
}

void Monitor::handle_heartbeat(PeerId /*from*/, const net::HeartbeatMsg& msg,
                               Tick arrival) {
  if (msg.sender_id != watched_sender_id_) return;
  ++seen_;
  detector_->on_heartbeat(msg.seq, msg.send_time, arrival);

  if (suspecting_ && detector_->suspect_after() > arrival) {
    suspecting_ = false;
    if (callbacks_.on_trust) callbacks_.on_trust(arrival);
  }
  arm_timer();
}

void Monitor::arm_timer() {
  if (timer_ != kInvalidTimer) {
    rt_.timers->cancel(timer_);
    timer_ = kInvalidTimer;
  }
  const Tick sa = detector_->suspect_after();
  if (sa == kTickInfinity || suspecting_) return;
  timer_ = rt_.timers->schedule_at(sa, [this] { on_timer(); });
}

void Monitor::on_timer() {
  timer_ = kInvalidTimer;
  const Tick t = rt_.clock->now();
  if (!suspecting_ && detector_->output_at(t) == detect::Output::Suspect) {
    suspecting_ = true;
    if (callbacks_.on_suspect) callbacks_.on_suspect(t);
  } else if (!suspecting_) {
    // Raced with a heartbeat that pushed suspect_after out; re-arm.
    arm_timer();
  }
}

}  // namespace twfd::service

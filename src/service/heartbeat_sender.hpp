// The monitored side: emits heartbeats m_1, m_2, ... every Delta_i
// (Algorithm 1, process p) to every registered monitor, on a fixed
// absolute cadence (send #i at start + i * Delta_i, so jitter does not
// accumulate).
//
// The interval is negotiable: monitors send IntervalRequestMsg and the
// sender adopts the minimum of its own ceiling and all outstanding
// requests — the Delta_i,min rule of Section V-C seen from p's side.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/runtime.hpp"
#include "net/wire.hpp"

namespace twfd::service {

class HeartbeatSender {
 public:
  struct Params {
    /// Identity stamped into every heartbeat.
    std::uint64_t sender_id = 1;
    /// The sender's own (slowest acceptable) heartbeat interval.
    Tick base_interval = ticks_from_ms(100);
  };

  HeartbeatSender(Runtime rt, Params params);
  ~HeartbeatSender();

  HeartbeatSender(const HeartbeatSender&) = delete;
  HeartbeatSender& operator=(const HeartbeatSender&) = delete;

  /// Adds a monitor to broadcast to (idempotent).
  void add_target(PeerId peer);

  /// Begins emitting; the first heartbeat goes out immediately.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Records `requester`'s demanded interval and re-schedules if the
  /// effective interval (min over base and all requests) changed.
  /// Wire this to Dispatcher::on_interval_request.
  void handle_interval_request(PeerId requester, const net::IntervalRequestMsg& msg);

  /// min(base_interval, all requested intervals).
  [[nodiscard]] Tick effective_interval() const;

  [[nodiscard]] std::int64_t sent_count() const noexcept { return seq_; }

 private:
  void send_one();
  void schedule_next();

  Runtime rt_;
  Params params_;
  std::vector<PeerId> targets_;
  std::map<PeerId, Tick> requested_;
  bool running_ = false;
  std::int64_t seq_ = 0;
  Tick next_send_ = 0;
  TimerId timer_ = kInvalidTimer;
};

}  // namespace twfd::service

// Failure detection as a service (Section V).
//
// One FdService instance runs per host. Applications subscribe with a QoS
// tuple (T_D^U, T_MR^U, T_M^U) against a remote process; per remote the
// service:
//   1. runs Chen's configuration procedure per application (Section V-A),
//   2. combines the results: the host asks the remote sender for
//      Delta_i,min = min_j Delta_i,j via an IntervalRequest (Step 2),
//   3. keeps ONE multi-window (2W-FD) arrival estimation and gives each
//      application its own margin Delta_to,j = T_D,j^U - Delta_i,min
//      (Steps 3-4) via a SharedMarginDetector,
//   4. fires per-application Suspect/Trust callbacks from per-application
//      freshness timers,
//   5. optionally re-runs the configuration periodically against live
//      p_L / V(D) estimates (Section V-A: adaptive reconfiguration).
// Every application gets the illusion of a dedicated detector while the
// host emits a single heartbeat stream per remote.
//
// Storage: remotes live in a contiguous cache-line-aligned Slab (one slot
// per peer, detector embedded by value — no per-peer heap node, no
// per-peer detector allocation), indexed by an open-addressing
// PeerId -> SlabHandle map. The slab recycles slots (SlabPolicy::kRecycle)
// so an evicted peer's window rings and vector capacities survive for the
// next admission: after warm-up, admission and eviction are O(1) and the
// heartbeat path performs zero allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/runtime.hpp"
#include "common/slab.hpp"
#include "config/qos_config.hpp"
#include "core/shared_margin.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/qos_tracker.hpp"
#include "trace/trace_stats.hpp"

namespace twfd::service {

class FdService {
 public:
  struct Params {
    /// Windows of the shared estimation; {1, 1000} is the paper's 2W-FD.
    std::vector<std::size_t> windows = {1, 1000};
    /// Network behaviour assumed until enough live samples accumulate.
    config::NetworkBehaviour assumed_network{0.01, 1e-4};
    /// Live samples required before trusting the online p_L/V(D) estimate.
    std::uint64_t min_samples_for_estimate = 200;
    /// Re-run the configuration procedure this often (0 = never).
    Tick reconfigure_period = 0;
    /// Reject subscriptions whose combined configuration would demand a
    /// heartbeat interval below this floor. Chen's procedure is formally
    /// always satisfiable by flooding (microsecond intervals), so the
    /// service draws the practical line here.
    Tick min_interval = ticks_from_ms(1);
    /// Identity used in IntervalRequest messages.
    std::uint64_t service_id = 1;
    /// Pre-sizes the peer slab and index so a known population admits
    /// without a single grow/rehash (0 = grow on demand).
    std::size_t expected_peers = 0;
    /// Optional QoS conformance tracker (src/obs): subscriptions are
    /// tracked on admit, Suspect/Trust transitions feed detection-time
    /// and mistake metrics. Must outlive the service.
    obs::QosTracker* qos_tracker = nullptr;
    /// Optional live heartbeat counter cell: one relaxed increment on
    /// `obs_cell` per applied heartbeat — cache-line-private, so the
    /// hot path stays allocation- and contention-free.
    obs::ShardedCounter* obs_heartbeats = nullptr;
    std::size_t obs_cell = 0;
  };

  using SubscriptionId = std::uint64_t;

  struct StatusEvent {
    SubscriptionId subscription = 0;
    std::string app;
    detect::Output output = detect::Output::Trust;
    Tick when = 0;
  };
  using StatusCallback = std::function<void(const StatusEvent&)>;

  FdService(Runtime rt, Params params);
  ~FdService();

  FdService(const FdService&) = delete;
  FdService& operator=(const FdService&) = delete;

  /// Registers application `app` to monitor the process `sender_id`
  /// reachable at `peer`, with QoS tuple `qos`. Throws std::logic_error
  /// if the tuple is infeasible under the current network behaviour; a
  /// rejected subscribe leaves the service untouched — no state change,
  /// no wire traffic, no detector rebuild.
  ///
  /// `initial` primes the subscription's verdict: pass Suspect when a
  /// prior incarnation (crash-persisted snapshot, shard restart) last
  /// reported the peer down. A primed-Suspect subscription arms no
  /// freshness timer and emits no duplicate Suspect; the first applied
  /// heartbeat fires the Trust transition. A dead peer therefore stays
  /// silently Suspect, a recovered one emits exactly the net Trust —
  /// either way the restart replays only the NET transition.
  SubscriptionId subscribe(PeerId peer, std::uint64_t sender_id, std::string app,
                           const config::QosRequirements& qos, StatusCallback callback,
                           detect::Output initial = detect::Output::Trust);

  void unsubscribe(SubscriptionId id);

  /// Wire this to Dispatcher::on_heartbeat.
  void handle_heartbeat(PeerId from, const net::HeartbeatMsg& msg, Tick arrival);

  /// Current output for one subscription.
  [[nodiscard]] detect::Output output(SubscriptionId id) const;

  /// The Delta_i,min currently requested from `peer`'s sender.
  [[nodiscard]] Tick shared_interval(PeerId peer) const;

  /// The latest combined configuration for `peer` (nullptr if none).
  [[nodiscard]] const config::CombinedConfig* combined_config(PeerId peer) const;

  /// Heartbeats fed into shared estimations (load accounting).
  [[nodiscard]] std::uint64_t heartbeats_processed() const noexcept {
    return heartbeats_;
  }

  /// Times any remote's shared detector was rebuilt (a rebuild drops the
  /// arrival estimation; tests pin down when this must NOT happen).
  [[nodiscard]] std::uint64_t detector_rebuilds() const noexcept {
    return detector_rebuilds_;
  }

  /// Live p_L / V(D) estimator for `peer` (nullptr if unknown).
  [[nodiscard]] const trace::NetworkEstimator* network_estimator(PeerId peer) const;

  /// Monitored remotes right now.
  [[nodiscard]] std::size_t remote_count() const noexcept { return remotes_.size(); }
  /// Peer slots ever occupied; stays flat under churn (slot reuse).
  [[nodiscard]] std::size_t remote_high_water() const noexcept {
    return remotes_.high_water();
  }

  /// Forces a reconfiguration pass for `peer` using live estimates.
  void reconfigure(PeerId peer);

 private:
  struct Subscription {
    SubscriptionId id = 0;
    std::string app;
    config::QosRequirements qos;
    StatusCallback callback;
    Tick margin = 0;              // Delta_to,j in ticks
    std::size_t shared_index = 0; // index inside the SharedMarginDetector
    bool suspecting = false;
    TimerId timer = kInvalidTimer;
    obs::QosTracker::Handle qos_handle = nullptr;  // set iff Params::qos_tracker
  };

  /// One slab slot per monitored peer. The detector is embedded by value:
  /// its window rings live with the slot and are re-based in place
  /// (SharedMarginDetector::rebuild) instead of re-allocated. park()/
  /// reuse() implement SlabPolicy::kRecycle — see slab.hpp.
  struct Remote {
    PeerId peer = 0;
    std::uint64_t sender_id = 0;
    std::vector<Subscription> subs;
    core::SharedMarginDetector detector;
    bool detector_ready = false;  // false until the first rebuild
    config::CombinedConfig combined;
    trace::NetworkEstimator estimator;
    Tick requested_interval = 0;
    Tick sender_interval = 0;  // Delta_i the sender's heartbeats advertise
                               // (0 until the first heartbeat arrives)
    Tick last_arrival = 0;     // newest applied heartbeat (QoS detection samples)
    TimerId reconfigure_timer = kInvalidTimer;

    Remote(PeerId p, std::uint64_t sid, const std::vector<std::size_t>& windows)
        : peer(p), sender_id(sid), detector(windows, 1) {}

    /// Eviction under kRecycle: drop semantic state, keep every buffer's
    /// capacity (window rings, subs/apps vectors) for the next tenant.
    /// All timers must already be cancelled.
    void park() {
      subs.clear();
      detector.rebuild(1);
      detector_ready = false;
      combined.feasible = false;
      combined.shared_interval_s = 0.0;
      combined.apps.clear();
      combined.dedicated_msgs_per_s = 0.0;
      combined.shared_msgs_per_s = 0.0;
      estimator.reset();
      peer = 0;
      sender_id = 0;
      requested_interval = 0;
      sender_interval = 0;
      last_arrival = 0;
      reconfigure_timer = kInvalidTimer;
    }

    /// Re-admission into a parked slot: allocation-free re-labelling.
    void reuse(PeerId p, std::uint64_t sid,
               const std::vector<std::size_t>& /*windows: fixed per service*/) {
      peer = p;
      sender_id = sid;
    }
  };

  [[nodiscard]] config::NetworkBehaviour behaviour_for(const Remote& remote) const;
  Remote* admit_remote(PeerId peer, std::uint64_t sender_id);
  void evict_remote(Remote& remote);
  void recombine(Remote& remote);
  void apply_combined(Remote& remote, config::CombinedConfig&& combined);
  void rebuild_detector(Remote& remote);
  void arm_timer(Remote& remote, Subscription& sub);
  void on_sub_timer(PeerId peer, SubscriptionId id);
  void schedule_reconfigure(Remote& remote);
  Remote* find_remote(PeerId peer);
  [[nodiscard]] const Remote* find_remote(PeerId peer) const;
  [[nodiscard]] const Subscription* find_subscription(SubscriptionId id) const;

  Runtime rt_;
  Params params_;
  Slab<Remote, SlabPolicy::kRecycle> remotes_;
  FlatMap64<SlabHandle> peer_index_;   // PeerId -> slab slot
  FlatMap64<PeerId> sub_to_peer_;      // SubscriptionId -> PeerId
  SubscriptionId next_sub_id_ = 1;
  std::uint64_t heartbeats_ = 0;
  std::uint64_t detector_rebuilds_ = 0;
};

}  // namespace twfd::service

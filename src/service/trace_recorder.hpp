// Live heartbeat capture — the paper's experimental methodology
// (Section IV-A: "when heartbeats are received, their arrival times are
// logged by the monitoring computer; these logged arrival times are used
// to replay the execution for each FD algorithm").
//
// Wire a TraceRecorder next to (or instead of) a Monitor on the
// dispatcher; it accumulates (seq, send, arrival) and marks skipped
// sequence numbers as lost, producing a trace::Trace ready for
// qos::evaluate or archive via trace::save_binary_file.
#pragma once

#include <cstdint>

#include "common/runtime.hpp"
#include "net/wire.hpp"
#include "trace/heartbeat.hpp"

namespace twfd::service {

class TraceRecorder {
 public:
  /// `name` labels the produced trace; `expected_interval` is used when no
  /// heartbeat has been seen yet (heartbeats carry the live interval).
  TraceRecorder(std::string name, Tick expected_interval);

  /// Wire this to Dispatcher::on_heartbeat (filter by sender id first if
  /// several senders share the socket). Out-of-order heartbeats older
  /// than an already-recorded sequence are dropped (they were counted
  /// lost); duplicates are dropped.
  void record(const net::HeartbeatMsg& msg, Tick arrival);

  /// Heartbeats recorded so far.
  [[nodiscard]] std::size_t recorded() const noexcept { return recorded_; }
  /// Sequence numbers marked lost so far.
  [[nodiscard]] std::size_t lost() const noexcept { return lost_; }

  /// Finalises and returns the trace (sequence-gap records marked lost).
  /// The recorder can keep recording afterwards; each call snapshots.
  [[nodiscard]] trace::Trace trace() const;

 private:
  std::string name_;
  Tick interval_;
  std::vector<trace::HeartbeatRecord> records_;  // strictly increasing seq
  std::size_t recorded_ = 0;
  std::size_t lost_ = 0;
};

}  // namespace twfd::service

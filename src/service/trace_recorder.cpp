#include "service/trace_recorder.hpp"

#include "common/assert.hpp"

namespace twfd::service {

TraceRecorder::TraceRecorder(std::string name, Tick expected_interval)
    : name_(std::move(name)), interval_(expected_interval) {
  TWFD_CHECK(expected_interval > 0);
}

void TraceRecorder::record(const net::HeartbeatMsg& msg, Tick arrival) {
  const std::int64_t prev = records_.empty() ? 0 : records_.back().seq;
  if (msg.seq <= prev) return;  // duplicate or reordered-behind: dropped

  interval_ = msg.interval;  // heartbeats are self-describing
  // Mark the skipped sequence numbers lost. Their send times are
  // extrapolated on the sender clock from the carried timestamps.
  for (std::int64_t s = prev + 1; s < msg.seq; ++s) {
    trace::HeartbeatRecord rec;
    rec.seq = s;
    rec.send_time = msg.send_time - (msg.seq - s) * msg.interval;
    rec.arrival_time = kTickInfinity;
    rec.lost = true;
    records_.push_back(rec);
    ++lost_;
  }
  trace::HeartbeatRecord rec;
  rec.seq = msg.seq;
  rec.send_time = msg.send_time;
  rec.arrival_time = arrival;
  rec.lost = false;
  records_.push_back(rec);
  ++recorded_;
}

trace::Trace TraceRecorder::trace() const {
  trace::Trace out(name_, interval_);
  out.reserve(records_.size());
  for (const auto& r : records_) out.push(r);
  return out;
}

}  // namespace twfd::service

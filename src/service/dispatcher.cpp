#include "service/dispatcher.hpp"

#include "common/assert.hpp"

namespace twfd::service {

Dispatcher::Dispatcher(Runtime rt) : rt_(rt) {
  TWFD_CHECK(rt.clock && rt.transport && rt.timers);
  rt_.transport->set_receive_handler(
      [this](PeerId from, std::span<const std::byte> data) { ingest(from, data); });
}

void Dispatcher::ingest(PeerId from, std::span<const std::byte> data) {
  const auto msg = net::decode(data);
  if (!msg) {
    ++malformed_;
    return;
  }
  if (const auto* hb = std::get_if<net::HeartbeatMsg>(&*msg)) {
    ++heartbeats_;
    if (heartbeat_) heartbeat_(from, *hb, rt_.clock->now());
  } else if (const auto* ir = std::get_if<net::IntervalRequestMsg>(&*msg)) {
    if (interval_request_) interval_request_(from, *ir);
  }
}

}  // namespace twfd::service

#include "service/dispatcher.hpp"

#include "common/assert.hpp"

namespace twfd::service {

Dispatcher::Dispatcher(Runtime rt) : rt_(rt) {
  TWFD_CHECK(rt.clock && rt.transport && rt.timers);
  rt_.transport->set_receive_handler(
      [this](PeerId from, std::span<const std::byte> data, Tick arrival) {
        ingest(from, data, arrival);
      });
}

void Dispatcher::ingest(PeerId from, std::span<const std::byte> data) {
  ingest(from, data, rt_.clock->now());
}

void Dispatcher::ingest(PeerId from, std::span<const std::byte> data,
                        Tick arrival) {
  const auto msg = net::decode(data);
  if (!msg) {
    ++malformed_;
    return;
  }
  if (const auto* hb = std::get_if<net::HeartbeatMsg>(&*msg)) {
    ++heartbeats_;
    if (heartbeat_) heartbeat_(from, *hb, arrival);
  } else if (const auto* ir = std::get_if<net::IntervalRequestMsg>(&*msg)) {
    if (interval_request_) interval_request_(from, *ir);
  }
}

}  // namespace twfd::service

// Cluster membership on top of the failure-detection stack — the
// motivating application of the paper's introduction ("group membership
// protocols, computer cluster management").
//
// Every MembershipNode broadcasts one heartbeat stream (Algorithm 1,
// process p) and runs one 2W-FD monitor per peer (process q). The node's
// *view* is the set of members it currently trusts; a peer joins the view
// on its first heartbeat and leaves it while suspected. View changes fire
// a callback with the full alive set. Nodes run unchanged on the
// simulator and on real UDP.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/runtime.hpp"
#include "core/multi_window.hpp"
#include "service/dispatcher.hpp"
#include "service/heartbeat_sender.hpp"
#include "service/monitor.hpp"

namespace twfd::service {

using NodeId = std::uint64_t;

class MembershipNode {
 public:
  struct Params {
    /// This node's identity (stamped into its heartbeats).
    NodeId node_id = 1;
    /// Heartbeat inter-send interval Delta_i for the whole cluster.
    Tick heartbeat_interval = ticks_from_ms(100);
    /// 2W-FD safety margin Delta_to used for every peer.
    Tick safety_margin = ticks_from_ms(100);
    /// Windows of the per-peer detectors.
    std::vector<std::size_t> windows = {1, 1000};
  };

  /// Current alive set (sorted node ids, always including self),
  /// passed on every view change.
  using ViewCallback = std::function<void(const std::vector<NodeId>& alive)>;

  MembershipNode(Runtime rt, Params params);
  ~MembershipNode();

  MembershipNode(const MembershipNode&) = delete;
  MembershipNode& operator=(const MembershipNode&) = delete;

  /// Registers a peer (its transport address and node id). Peers start
  /// outside the view until their first heartbeat arrives.
  void add_peer(PeerId address, NodeId node_id);

  /// Starts heartbeating and monitoring.
  void start();
  /// Stops heartbeating (monitors keep running: a stopped node is
  /// precisely what the others must detect).
  void stop();

  void on_view_change(ViewCallback callback) { on_view_ = std::move(callback); }

  /// Sorted alive set including self.
  [[nodiscard]] std::vector<NodeId> alive() const;
  [[nodiscard]] bool is_alive(NodeId node) const;
  [[nodiscard]] NodeId id() const noexcept { return params_.node_id; }
  [[nodiscard]] std::size_t view_changes() const noexcept { return view_changes_; }

 private:
  struct Peer {
    NodeId node_id = 0;
    std::unique_ptr<Monitor> monitor;
    bool in_view = false;  // joined (first heartbeat seen) and trusted
  };

  void handle_heartbeat(PeerId from, const net::HeartbeatMsg& msg, Tick arrival);
  void peer_transition(NodeId node, bool alive_now);
  void emit_view();

  Runtime rt_;
  Params params_;
  Dispatcher dispatcher_;
  HeartbeatSender sender_;
  std::map<NodeId, Peer> peers_;
  ViewCallback on_view_;
  std::size_t view_changes_ = 0;
};

}  // namespace twfd::service

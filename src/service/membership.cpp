#include "service/membership.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace twfd::service {

MembershipNode::MembershipNode(Runtime rt, Params params)
    : rt_(rt), params_(std::move(params)), dispatcher_(rt),
      sender_(rt, {params_.node_id, params_.heartbeat_interval}) {
  dispatcher_.on_heartbeat([this](PeerId from, const net::HeartbeatMsg& m, Tick at) {
    handle_heartbeat(from, m, at);
  });
}

MembershipNode::~MembershipNode() { sender_.stop(); }

void MembershipNode::add_peer(PeerId address, NodeId node_id) {
  TWFD_CHECK_MSG(node_id != params_.node_id, "a node cannot monitor itself");
  TWFD_CHECK_MSG(peers_.find(node_id) == peers_.end(), "duplicate peer id");

  sender_.add_target(address);

  core::MultiWindowDetector::Params dp;
  dp.windows = params_.windows;
  dp.interval = params_.heartbeat_interval;
  dp.safety_margin = params_.safety_margin;

  Peer peer;
  peer.node_id = node_id;
  peer.monitor = std::make_unique<Monitor>(
      rt_, node_id, std::make_unique<core::MultiWindowDetector>(dp),
      Monitor::Callbacks{
          [this, node_id](Tick) { peer_transition(node_id, false); },
          [this, node_id](Tick) { peer_transition(node_id, true); }});
  peers_.emplace(node_id, std::move(peer));
}

void MembershipNode::start() { sender_.start(); }
void MembershipNode::stop() { sender_.stop(); }

void MembershipNode::handle_heartbeat(PeerId from, const net::HeartbeatMsg& msg,
                                      Tick arrival) {
  const auto it = peers_.find(msg.sender_id);
  if (it == peers_.end()) return;  // not a registered member: ignore
  const bool first = it->second.monitor->heartbeats_seen() == 0;
  it->second.monitor->handle_heartbeat(from, msg, arrival);
  if (first && !it->second.in_view) {
    peer_transition(msg.sender_id, true);  // join on first heartbeat
  }
}

void MembershipNode::peer_transition(NodeId node, bool alive_now) {
  auto& peer = peers_.at(node);
  if (peer.in_view == alive_now) return;
  peer.in_view = alive_now;
  ++view_changes_;
  emit_view();
}

void MembershipNode::emit_view() {
  if (on_view_) on_view_(alive());
}

std::vector<NodeId> MembershipNode::alive() const {
  std::vector<NodeId> out;
  out.reserve(peers_.size() + 1);
  out.push_back(params_.node_id);
  for (const auto& [node, peer] : peers_) {
    if (peer.in_view) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool MembershipNode::is_alive(NodeId node) const {
  if (node == params_.node_id) return true;
  const auto it = peers_.find(node);
  return it != peers_.end() && it->second.in_view;
}

}  // namespace twfd::service

#include "service/heartbeat_sender.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace twfd::service {

HeartbeatSender::HeartbeatSender(Runtime rt, Params params)
    : rt_(rt), params_(params) {
  TWFD_CHECK(rt.clock && rt.transport && rt.timers);
  TWFD_CHECK(params.base_interval > 0);
}

HeartbeatSender::~HeartbeatSender() { stop(); }

void HeartbeatSender::add_target(PeerId peer) {
  if (std::find(targets_.begin(), targets_.end(), peer) == targets_.end()) {
    targets_.push_back(peer);
  }
}

void HeartbeatSender::start() {
  if (running_) return;
  running_ = true;
  next_send_ = rt_.clock->now();
  send_one();
}

void HeartbeatSender::stop() {
  if (!running_) return;
  running_ = false;
  if (timer_ != kInvalidTimer) {
    rt_.timers->cancel(timer_);
    timer_ = kInvalidTimer;
  }
}

Tick HeartbeatSender::effective_interval() const {
  Tick interval = params_.base_interval;
  for (const auto& [peer, req] : requested_) interval = std::min(interval, req);
  return interval;
}

void HeartbeatSender::handle_interval_request(PeerId requester,
                                              const net::IntervalRequestMsg& msg) {
  const Tick before = effective_interval();
  requested_[requester] = msg.requested_interval;
  const Tick after = effective_interval();
  if (after != before && running_) {
    // Re-anchor the cadence: the in-flight gap shrinks (or grows) starting
    // from the last emission.
    next_send_ = std::max(rt_.clock->now(), next_send_ - before + after);
    if (timer_ != kInvalidTimer) {
      if (rt_.timers->reschedule(timer_, next_send_)) return;
      rt_.timers->cancel(timer_);
    }
    timer_ = rt_.timers->schedule_at(next_send_, [this] { send_one(); });
  }
}

void HeartbeatSender::send_one() {
  timer_ = kInvalidTimer;
  if (!running_) return;

  ++seq_;
  net::HeartbeatMsg msg;
  msg.sender_id = params_.sender_id;
  msg.seq = seq_;
  msg.send_time = rt_.clock->now();
  msg.interval = effective_interval();
  const auto payload = net::encode(msg);
  // One transport call for the whole fan-out: the live runtime batches
  // this into sendmmsg syscalls, the simulator falls back to per-target
  // sends — either way the tick is a single broadcast.
  rt_.transport->send_many(targets_, payload);
  schedule_next();
}

void HeartbeatSender::schedule_next() {
  next_send_ = tick_add_sat(next_send_, effective_interval());
  timer_ = rt_.timers->schedule_at(next_send_, [this] { send_one(); });
}

}  // namespace twfd::service

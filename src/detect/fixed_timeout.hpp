// Fixed-timeout heartbeat detector — the naive ad-hoc scheme most
// applications hand-roll (Introduction: "applications usually implement
// their own ad-hoc failure detection modules"): suspect whenever no
// heartbeat has arrived for `timeout` after the last one. No estimation,
// no QoS model; serves as the floor every adaptive detector must beat.
#pragma once

#include "detect/failure_detector.hpp"

namespace twfd::detect {

class FixedTimeoutDetector final : public FailureDetector {
 public:
  struct Params {
    /// Silence tolerated after the last heartbeat arrival.
    Tick timeout = ticks_from_ms(300);
  };

  explicit FixedTimeoutDetector(Params params);

  [[nodiscard]] Tick suspect_after() const override { return suspect_after_; }
  void reset() override;
  [[nodiscard]] std::string name() const override;

 protected:
  void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) override;

 private:
  Params params_;
  Tick suspect_after_ = kTickInfinity;
};

}  // namespace twfd::detect

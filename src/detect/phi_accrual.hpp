// The phi accrual failure detector of Hayashibara et al. (Section II-B3).
//
// The suspicion level phi(t) = -log10(P_later(t - T_last)) grows as time
// since the last heartbeat grows; the detector suspects once phi >= Phi.
// P_later is the upper tail of a Normal fitted to the sampling window of
// heartbeat inter-arrival times. Because phi is monotone in t, the
// crossing instant can be solved in closed form with the normal quantile:
//   suspect_after = T_last + mu + sigma * probit(1 - 10^-Phi)
// which keeps replay O(1) per heartbeat.
#pragma once

#include "common/stats.hpp"
#include "detect/failure_detector.hpp"

namespace twfd::detect {

class PhiAccrualDetector final : public FailureDetector {
 public:
  struct Params {
    /// Sampling-window size; the paper (and Hayashibara) use 1000.
    std::size_t window = 1000;
    /// Suspicion threshold Phi. Larger = more conservative.
    double threshold = 1.0;
    /// Floor on the fitted stddev (seconds) so a perfectly regular stream
    /// does not collapse the distribution; mirrors production accrual
    /// detectors (e.g. Akka's minStdDeviation).
    double min_stddev_s = 20e-6;
    /// Samples required before the detector starts suspecting.
    std::size_t warmup = 2;
  };

  explicit PhiAccrualDetector(Params params);

  [[nodiscard]] Tick suspect_after() const override { return suspect_after_; }
  void reset() override;
  [[nodiscard]] std::string name() const override;

  /// Current suspicion level at time `t` (Eq 7); 0 during warm-up.
  [[nodiscard]] double phi_at(Tick t) const;

 protected:
  void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) override;

 private:
  [[nodiscard]] double fitted_sigma() const;

  Params params_;
  WindowedStats gaps_;  // inter-arrival times, seconds
  Tick last_arrival_ = kTickInfinity;
  Tick suspect_after_ = kTickInfinity;
  double quantile_z_;  // probit(1 - 10^-Phi), precomputed
};

}  // namespace twfd::detect

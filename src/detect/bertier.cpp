#include "detect/bertier.hpp"

#include <cmath>

namespace twfd::detect {

BertierDetector::BertierDetector(Params params)
    : params_(params), estimator_(params.window, params.interval) {
  TWFD_CHECK(params.gamma > 0 && params.gamma <= 1);
  TWFD_CHECK(params.beta >= 0 && params.phi >= 0);
}

void BertierDetector::process_fresh(std::int64_t seq, Tick /*send_time*/,
                                    Tick arrival_time) {
  if (predicted_ea_ != kTickInfinity) {
    const double error = to_seconds(arrival_time - predicted_ea_) - delay_;
    delay_ += params_.gamma * error;
    var_ += params_.gamma * (std::fabs(error) - var_);
  }
  const double margin_s = params_.beta * delay_ + params_.phi * var_;
  margin_ = ticks_from_seconds(margin_s > 0.0 ? margin_s : 0.0);

  estimator_.add(seq, arrival_time);
  predicted_ea_ = estimator_.expected_arrival(seq + 1);
  next_freshness_ = tick_add_sat(predicted_ea_, margin_);
}

void BertierDetector::reset() {
  FailureDetector::reset();
  estimator_.clear();
  delay_ = 0.0;
  var_ = 0.0;
  margin_ = 0;
  predicted_ea_ = kTickInfinity;
  next_freshness_ = kTickInfinity;
}

}  // namespace twfd::detect

#include "detect/fixed_timeout.hpp"

#include "common/assert.hpp"

namespace twfd::detect {

FixedTimeoutDetector::FixedTimeoutDetector(Params params) : params_(params) {
  TWFD_CHECK(params.timeout > 0);
}

void FixedTimeoutDetector::process_fresh(std::int64_t /*seq*/, Tick /*send_time*/,
                                         Tick arrival_time) {
  suspect_after_ = tick_add_sat(arrival_time, params_.timeout);
}

void FixedTimeoutDetector::reset() {
  FailureDetector::reset();
  suspect_after_ = kTickInfinity;
}

std::string FixedTimeoutDetector::name() const {
  return "fixed(" + format_ticks(params_.timeout) + ")";
}

}  // namespace twfd::detect

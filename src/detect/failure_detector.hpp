// The failure-detector abstraction shared by all algorithms in the paper.
//
// Every detector in this library (Chen, Bertier, phi-accrual, ED, 2W-FD)
// is a deterministic state machine driven by heartbeat arrivals. Between
// arrivals its output over time is fully described by one number:
// suspect_after() — the instant at which, absent further heartbeats, its
// output becomes Suspect. This single-query design is what lets the QoS
// evaluator replay millions of samples in O(1) per heartbeat and lets the
// live Monitor arm exactly one timer per peer.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace twfd::detect {

/// The two outputs of an unreliable failure detector (Section II-A1).
enum class Output : std::uint8_t { Trust, Suspect };

class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  FailureDetector() = default;
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Feeds a heartbeat: `seq` is the sender-assigned sequence number
  /// (1-based, increasing), `send_time` the sender-clock timestamp carried
  /// in the message, `arrival_time` the receiver-clock reception instant.
  /// Heartbeats with seq <= highest_seq() are stale and ignored
  /// (Algorithm 1, line 13).
  void on_heartbeat(std::int64_t seq, Tick send_time, Tick arrival_time) {
    if (seq <= highest_seq_) return;
    highest_seq_ = seq;
    process_fresh(seq, send_time, arrival_time);
  }

  /// The instant at which the output turns to Suspect assuming no further
  /// heartbeat arrives. May lie in the past of the last arrival (immediate
  /// suspicion) or be kTickInfinity (trusts forever; e.g. the accrual
  /// detectors before their sampling windows warm up).
  [[nodiscard]] virtual Tick suspect_after() const = 0;

  /// Output at time `t`, for t at/after the last processed arrival and
  /// before the next one.
  [[nodiscard]] Output output_at(Tick t) const {
    return t >= suspect_after() ? Output::Suspect : Output::Trust;
  }

  /// Largest heartbeat sequence number processed so far; 0 before any.
  [[nodiscard]] std::int64_t highest_seq() const noexcept { return highest_seq_; }

  /// Restores the just-constructed state.
  virtual void reset() { highest_seq_ = 0; }

  /// Short identifier used in tables, e.g. "chen(n=1000)".
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Called only for fresh (higher-sequence) heartbeats.
  virtual void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) = 0;

 private:
  std::int64_t highest_seq_ = 0;
};

}  // namespace twfd::detect

#include "detect/phi_accrual.hpp"

#include <cmath>

#include "common/math.hpp"

namespace twfd::detect {

PhiAccrualDetector::PhiAccrualDetector(Params params)
    : params_(params), gaps_(params.window) {
  TWFD_CHECK(params.threshold > 0);
  TWFD_CHECK(params.min_stddev_s > 0);
  TWFD_CHECK(params.warmup >= 2);
  // P_later(t*) = 10^-Phi  <=>  (t* - mu)/sigma = probit(1 - 10^-Phi).
  const double p = 1.0 - std::pow(10.0, -params.threshold);
  // Extremely conservative thresholds saturate the quantile; clamp to the
  // largest p distinguishable from 1 in double precision.
  quantile_z_ = normal_quantile(p < 1.0 ? p : 1.0 - 1e-16);
}

double PhiAccrualDetector::fitted_sigma() const {
  const double s = gaps_.stddev();
  return s > params_.min_stddev_s ? s : params_.min_stddev_s;
}

void PhiAccrualDetector::process_fresh(std::int64_t /*seq*/, Tick /*send_time*/,
                                       Tick arrival_time) {
  if (last_arrival_ != kTickInfinity && arrival_time > last_arrival_) {
    gaps_.add(to_seconds(arrival_time - last_arrival_));
  }
  last_arrival_ = arrival_time;

  if (gaps_.count() + 1 < params_.warmup) {
    suspect_after_ = kTickInfinity;
    return;
  }
  const double t_star = gaps_.mean() + fitted_sigma() * quantile_z_;
  suspect_after_ = tick_add_sat(last_arrival_, ticks_from_seconds(t_star));
}

double PhiAccrualDetector::phi_at(Tick t) const {
  if (last_arrival_ == kTickInfinity || gaps_.count() + 1 < params_.warmup) return 0.0;
  const double dt = to_seconds(t - last_arrival_);
  const double p_later = normal_tail((dt - gaps_.mean()) / fitted_sigma());
  if (p_later <= 0.0) return 350.0;  // beyond double's log10 resolution
  return -std::log10(p_later);
}

void PhiAccrualDetector::reset() {
  FailureDetector::reset();
  gaps_.clear();
  last_arrival_ = kTickInfinity;
  suspect_after_ = kTickInfinity;
}

std::string PhiAccrualDetector::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "phi(Phi=%.2f)", params_.threshold);
  return buf;
}

}  // namespace twfd::detect

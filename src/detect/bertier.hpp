// Bertier et al.'s failure detector (Section II-B2).
//
// Expected arrivals come from the same sliding-window estimator as Chen's
// algorithm; the safety margin is *dynamic*, adapted on every heartbeat by
// Jacobson's estimation of the prediction error (Eqs 3-6):
//   error_l    = A_l - EA_l - delay_l
//   delay_l+1  = delay_l + gamma * error_l
//   var_l+1    = var_l + gamma * (|error_l| - var_l)
//   Dto_l+1    = beta * delay_l+1 + phi * var_l+1
// There is no tuning knob trading speed for accuracy, which is why the
// paper plots it as a single point.
#pragma once

#include "detect/arrival_estimator.hpp"
#include "detect/failure_detector.hpp"

namespace twfd::detect {

class BertierDetector final : public FailureDetector {
 public:
  struct Params {
    /// EA window; the paper uses 1000 (the value Bertier et al. use).
    std::size_t window = 1000;
    Tick interval = ticks_from_ms(100);
    /// Jacobson weights; beta=1 and phi=4 are the typical values cited.
    double gamma = 0.1;
    double beta = 1.0;
    double phi = 4.0;
  };

  explicit BertierDetector(Params params);

  [[nodiscard]] Tick suspect_after() const override { return next_freshness_; }
  void reset() override;
  [[nodiscard]] std::string name() const override { return "bertier"; }

  /// Current dynamic safety margin Delta_to (ticks), for inspection.
  [[nodiscard]] Tick current_margin() const noexcept { return margin_; }

 protected:
  void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) override;

 private:
  Params params_;
  ArrivalWindowEstimator estimator_;
  // Jacobson state, in seconds.
  double delay_ = 0.0;
  double var_ = 0.0;
  Tick margin_ = 0;
  // EA the previous round predicted for the heartbeat we just received.
  Tick predicted_ea_ = kTickInfinity;
  Tick next_freshness_ = kTickInfinity;
};

}  // namespace twfd::detect

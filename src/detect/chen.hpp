// Chen et al.'s NFD-style heartbeat failure detector (Section II-B1).
//
// On each fresh heartbeat m_l the next freshness point is set to
// tau_{l+1} = EA_{l+1} + Delta_to (Eq 1), with EA from the sliding-window
// estimator (Eq 2). The detector suspects from tau_{l+1} until the next
// fresh heartbeat arrives.
#pragma once

#include <memory>

#include "detect/arrival_estimator.hpp"
#include "detect/failure_detector.hpp"

namespace twfd::detect {

class ChenDetector final : public FailureDetector {
 public:
  struct Params {
    /// Sliding-window size n of Eq 2. The paper uses 1 and 1000.
    std::size_t window = 1000;
    /// Constant safety margin Delta_to of Eq 1.
    Tick safety_margin = ticks_from_ms(100);
    /// The sender's heartbeat interval Delta_i.
    Tick interval = ticks_from_ms(100);
  };

  explicit ChenDetector(Params params);

  [[nodiscard]] Tick suspect_after() const override { return next_freshness_; }
  void reset() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  /// Expected arrival EA_{l+1} backing the current freshness point.
  [[nodiscard]] Tick current_expected_arrival() const noexcept { return current_ea_; }

 protected:
  void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) override;

 private:
  Params params_;
  ArrivalWindowEstimator estimator_;
  Tick next_freshness_ = kTickInfinity;
  Tick current_ea_ = kTickInfinity;
};

}  // namespace twfd::detect

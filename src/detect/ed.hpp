// The Exponential Distribution accrual failure detector (Section II-B4).
//
// Same accrual principle as phi, but the inter-arrival distribution is
// modelled as Exponential(mu): e_d(t) = 1 - exp(-(t - T_last)/mu)
// (Eqs 10-11). The detector suspects once e_d >= threshold E, i.e. at
//   suspect_after = T_last - mu * ln(1 - E).
#pragma once

#include "common/stats.hpp"
#include "detect/failure_detector.hpp"

namespace twfd::detect {

class EdDetector final : public FailureDetector {
 public:
  struct Params {
    /// Sampling-window size; 1000 in the paper.
    std::size_t window = 1000;
    /// Suspicion threshold E in (0, 1). E = 1 - 10^-k mirrors phi's
    /// threshold k on the same log scale.
    double threshold = 0.9;
    std::size_t warmup = 2;
  };

  explicit EdDetector(Params params);

  [[nodiscard]] Tick suspect_after() const override { return suspect_after_; }
  void reset() override;
  [[nodiscard]] std::string name() const override;

  /// Current suspicion level e_d at time `t` (Eq 10); 0 during warm-up.
  [[nodiscard]] double ed_at(Tick t) const;

 protected:
  void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) override;

 private:
  Params params_;
  WindowedStats gaps_;  // inter-arrival times, seconds
  Tick last_arrival_ = kTickInfinity;
  Tick suspect_after_ = kTickInfinity;
  double log_term_;  // -ln(1 - E), precomputed
};

}  // namespace twfd::detect

#include "detect/chen.hpp"

namespace twfd::detect {

ChenDetector::ChenDetector(Params params)
    : params_(params), estimator_(params.window, params.interval) {
  TWFD_CHECK(params.safety_margin >= 0);
}

void ChenDetector::process_fresh(std::int64_t seq, Tick /*send_time*/,
                                 Tick arrival_time) {
  estimator_.add(seq, arrival_time);
  current_ea_ = estimator_.expected_arrival(seq + 1);
  next_freshness_ = tick_add_sat(current_ea_, params_.safety_margin);
}

void ChenDetector::reset() {
  FailureDetector::reset();
  estimator_.clear();
  next_freshness_ = kTickInfinity;
  current_ea_ = kTickInfinity;
}

std::string ChenDetector::name() const {
  return "chen(n=" + std::to_string(params_.window) + ")";
}

}  // namespace twfd::detect

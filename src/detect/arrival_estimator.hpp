// Chen's sliding-window expected-arrival estimator (Eq 2 of the paper).
//
// Each delivered heartbeat m_i with sequence s_i and receipt time A_i is
// normalised to U_i = A_i - Delta_i * s_i; the expected arrival of
// heartbeat k is then EA_k = mean(U) + k * Delta_i. The window mean is kept
// as a running sum, so feeding a sample and querying EA are both O(1)
// regardless of window size — a window of 10,000 costs the same per
// heartbeat as a window of 1.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace twfd::detect {

class ArrivalWindowEstimator {
 public:
  /// `window`: number of past heartbeats considered (n in Eq 2);
  /// `interval`: the sender's heartbeat interval Delta_i.
  ArrivalWindowEstimator(std::size_t window, Tick interval)
      : interval_(interval), win_(window) {
    TWFD_CHECK(interval > 0);
  }

  /// Feeds a delivered heartbeat (sequence s_i, receiver-clock arrival A_i).
  void add(std::int64_t seq, Tick arrival) {
    // Exact in int64; |U| stays near clock-skew + delay magnitudes, far
    // inside double's 2^53 integer range for the running sums.
    const Tick normalized = arrival - interval_ * seq;
    win_.add(static_cast<double>(normalized));
  }

  /// EA_k for heartbeat sequence k. Requires at least one sample.
  [[nodiscard]] Tick expected_arrival(std::int64_t next_seq) const {
    TWFD_CHECK_MSG(win_.count() > 0, "estimator has no samples");
    const double ea = win_.mean() + static_cast<double>(interval_ * next_seq);
    return static_cast<Tick>(ea >= 0 ? ea + 0.5 : ea - 0.5);
  }

  [[nodiscard]] std::size_t count() const noexcept { return win_.count(); }
  [[nodiscard]] std::size_t window() const noexcept { return win_.capacity(); }
  [[nodiscard]] Tick interval() const noexcept { return interval_; }

  void clear() noexcept { win_.clear(); }

  /// Re-bases the estimator on a new Delta_i, dropping every sample (they
  /// were normalised against the old interval and are not comparable).
  /// The window's ring storage is retained — no allocation.
  void reset(Tick interval) noexcept {
    TWFD_CHECK(interval > 0);
    interval_ = interval;
    win_.clear();
  }

 private:
  Tick interval_;
  WindowedStats win_;
};

}  // namespace twfd::detect

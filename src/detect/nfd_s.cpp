#include "detect/nfd_s.hpp"

#include "common/assert.hpp"

namespace twfd::detect {

NfdSDetector::NfdSDetector(Params params) : params_(params) {
  TWFD_CHECK(params.interval > 0);
  TWFD_CHECK(params.safety_margin >= 0);
}

void NfdSDetector::process_fresh(std::int64_t /*seq*/, Tick send_time,
                                 Tick /*arrival_time*/) {
  // Next heartbeat leaves at send_time + Delta_i (sender clock); its
  // freshness point on the receiver clock adds the known skew and the
  // safety margin.
  const Tick next_send_receiver = send_time + params_.known_skew + params_.interval;
  next_freshness_ = tick_add_sat(next_send_receiver, params_.safety_margin);
}

void NfdSDetector::reset() {
  FailureDetector::reset();
  next_freshness_ = kTickInfinity;
}

std::string NfdSDetector::name() const { return "nfd-s"; }

}  // namespace twfd::detect

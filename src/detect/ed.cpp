#include "detect/ed.hpp"

#include <cmath>

namespace twfd::detect {

EdDetector::EdDetector(Params params) : params_(params), gaps_(params.window) {
  TWFD_CHECK(params.threshold > 0.0 && params.threshold < 1.0);
  TWFD_CHECK(params.warmup >= 2);
  log_term_ = -std::log1p(-params.threshold);
}

void EdDetector::process_fresh(std::int64_t /*seq*/, Tick /*send_time*/,
                               Tick arrival_time) {
  if (last_arrival_ != kTickInfinity && arrival_time > last_arrival_) {
    gaps_.add(to_seconds(arrival_time - last_arrival_));
  }
  last_arrival_ = arrival_time;

  if (gaps_.count() + 1 < params_.warmup) {
    suspect_after_ = kTickInfinity;
    return;
  }
  const double t_star = gaps_.mean() * log_term_;
  suspect_after_ = tick_add_sat(last_arrival_, ticks_from_seconds(t_star));
}

double EdDetector::ed_at(Tick t) const {
  if (last_arrival_ == kTickInfinity || gaps_.count() + 1 < params_.warmup) return 0.0;
  const double mu = gaps_.mean();
  if (mu <= 0.0) return 1.0;
  const double dt = to_seconds(t - last_arrival_);
  return 1.0 - std::exp(-dt / mu);
}

void EdDetector::reset() {
  FailureDetector::reset();
  gaps_.clear();
  last_arrival_ = kTickInfinity;
  suspect_after_ = kTickInfinity;
}

std::string EdDetector::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "ed(E=%.6f)", params_.threshold);
  return buf;
}

}  // namespace twfd::detect

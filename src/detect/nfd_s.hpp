// Chen's NFD-S — the synchronized-clock variant (Section II-B1, first
// mechanism). When sender and receiver clocks are synchronized (or the
// skew is known), freshness points need no arrival estimation at all:
//   tau_i = sigma_i + delta,
// i.e. each heartbeat's send timestamp shifted by one fixed shift
// delta = Delta_i + Delta_to. Included as the simplest QoS baseline and
// to quantify what the estimation machinery buys when clocks are NOT
// synchronized (the known_skew parameter lets replay experiments feed it
// the trace's true skew; a live deployment would use NTP-grade sync).
#pragma once

#include "detect/failure_detector.hpp"

namespace twfd::detect {

class NfdSDetector final : public FailureDetector {
 public:
  struct Params {
    /// The sender's heartbeat interval Delta_i.
    Tick interval = ticks_from_ms(100);
    /// Safety margin Delta_to beyond the nominal next send time.
    Tick safety_margin = ticks_from_ms(100);
    /// receiver_clock - sender_clock, assumed known (synchronized clocks).
    Tick known_skew = 0;
  };

  explicit NfdSDetector(Params params);

  [[nodiscard]] Tick suspect_after() const override { return next_freshness_; }
  void reset() override;
  [[nodiscard]] std::string name() const override;

 protected:
  void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) override;

 private:
  Params params_;
  Tick next_freshness_ = kTickInfinity;
};

}  // namespace twfd::detect

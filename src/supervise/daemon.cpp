#include "supervise/daemon.hpp"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

namespace twfd::supervise {
namespace {

volatile std::sig_atomic_t g_shutdown = 0;

extern "C" void on_shutdown_signal(int) { g_shutdown = 1; }

}  // namespace

ChildHeartbeat ChildHeartbeat::from_env() noexcept {
  ChildHeartbeat hb;
  const char* env = std::getenv(kHeartbeatFdEnv);
  if (env == nullptr || *env == '\0') return hb;
  int fd = 0;
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9' || fd > 1 << 20) return hb;  // garbled: stay inert
    fd = fd * 10 + (*p - '0');
  }
  hb.fd_ = fd;
  return hb;
}

void ChildHeartbeat::beat() noexcept {
  if (fd_ < 0) return;
  const char b = 'b';
  // EAGAIN (pipe full) and EPIPE (supervisor gone) are both fine: the
  // pipe carries liveness, not data, and SIGPIPE is ignored below.
  [[maybe_unused]] const ssize_t n = ::write(fd_, &b, 1);
}

void install_shutdown_handlers() noexcept {
  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a daemon parked in a long poll/sleep should take the
  // EINTR and notice the flag on its next slice check.
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

bool shutdown_requested() noexcept { return g_shutdown != 0; }

void reset_shutdown_flag() noexcept { g_shutdown = 0; }

}  // namespace twfd::supervise

// Process supervisor for the TWFD daemon fleet (the daemonproxy-style
// SVC_STATE machine, grown the features the ROADMAP's self-healing item
// asks for).
//
// Each configured service moves through an explicit per-PID state
// machine:
//
//              spawn                 first beat
//     kDown ----------> kStarting --------------> kUp
//       ^                   |  \                 /  |
//       |        start_timeout  \(no heartbeat) /   | heartbeat_timeout
//       |                   v    `------------->    v
//       |               kDegraded <---------------- (hung: SIGKILL)
//       |                   | reaped                |
//       | not restartable   v        backoff        |
//       `-------------- kRestarting <---------------' (exit)
//          (or kFatal)      | delay elapsed: spawn
//                           v
//                       kStarting ...
//
// plus kStopping (SIGTERM sent, grace running) and kFatal (exit code in
// the service's fatal set — parked until a human intervenes).
//
// Mechanics:
//   * children are forked with pre-built argv/envp and execve'd — no
//     allocation between fork and exec (the parent is multithreaded);
//   * a SIGCHLD handler writes one byte to a self-pipe; the supervisor
//     thread polls that pipe, every child's heartbeat pipe, and a
//     control pipe, reaping with waitpid(pid, WNOHANG) per child so
//     unrelated children (popen, test runners) are never stolen;
//   * each child inherits the write end of a heartbeat pipe via
//     TWFD_SUPERVISE_HB_FD (see daemon.hpp); a child that stops beating
//     for heartbeat_timeout is SIGKILLed and handled like a crash;
//   * crash restarts walk a capped exponential backoff ladder with the
//     same jitter envelope as api::ReconnectingClient — every delay is
//     rung * [0.5, 1.0), the rung doubles per crash up to backoff_max
//     and resets after backoff_reset of healthy uptime;
//   * exit codes in the service's fatal set (EX_CONFIG and friends —
//     see exit_codes.hpp) park the service as kFatal instead of
//     restarting: a bad config crash-loops forever, backoff or not.
//
// stop() escalates per service: SIGTERM, grace period, then SIGKILL.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "supervise/fleet_config.hpp"

namespace twfd::supervise {

enum class ChildState : std::uint8_t {
  kDown,        ///< not running, no restart pending
  kStarting,    ///< spawned, waiting for the first heartbeat
  kUp,          ///< alive and beating (or no heartbeat configured)
  kDegraded,    ///< hung — kill sent, waiting for the reap
  kRestarting,  ///< dead, backoff delay running
  kStopping,    ///< SIGTERM sent, grace period running
  kFatal,       ///< exit code in the fatal set: parked
};

[[nodiscard]] const char* to_string(ChildState state) noexcept;

class Supervisor {
 public:
  struct Options {
    /// Seed of the backoff jitter (deterministic tests).
    std::uint64_t jitter_seed = 0x5eedU;
    /// Optional status file: one `name state pid restarts` line per
    /// service, atomically rewritten after every transition.
    std::string status_file;
    /// Test seam: observes every state transition (supervisor thread).
    std::function<void(const std::string& service, ChildState from,
                       ChildState to)>
        state_hook;
    /// Test seam: observes every scheduled restart delay and the rung it
    /// was drawn from — the backoff-envelope assertion hangs off this.
    std::function<void(const std::string& service, Tick delay, Tick rung)>
        backoff_hook;
  };

  struct ChildStatus {
    std::string name;
    ChildState state = ChildState::kDown;
    pid_t pid = 0;  ///< 0 when not running
    std::uint64_t spawns = 0;
    std::uint64_t restarts = 0;   ///< respawns after a crash/hang
    std::uint64_t hung_kills = 0;
    int last_exit_status = 0;  ///< raw waitpid status of the last reap
    Tick backoff = 0;          ///< current ladder rung
  };

  struct Stats {
    std::uint64_t spawns_total = 0;
    std::uint64_t restarts_total = 0;
    std::uint64_t hung_kills_total = 0;
    std::uint64_t fatal_children = 0;  ///< gauge
    std::uint64_t up_children = 0;     ///< gauge
  };

  Supervisor(FleetConfig config, Options options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every service and the supervisor thread.
  void start();
  /// SIGTERM -> grace -> SIGKILL on every live child, reaps them, then
  /// joins the supervisor thread. Idempotent.
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] std::vector<ChildStatus> status();
  [[nodiscard]] Stats stats();
  /// pid of a named service (0 when not running / unknown).
  [[nodiscard]] pid_t pid_of(const std::string& name);

  /// Blocks until every auto-started service reports kUp (true) or the
  /// timeout elapses (false). Services already kFatal fail immediately.
  bool wait_all_up(Tick timeout);

  /// Sends `sig` to a named service's current child (chaos seam: the
  /// rolling-restart E2E kill -9s through this). False when not running.
  bool kill_child(const std::string& name, int sig);

 private:
  struct Child {
    ServiceSpec spec;
    ChildState state = ChildState::kDown;
    pid_t pid = 0;
    int hb_read_fd = -1;   ///< parent's end of the heartbeat pipe
    Tick last_beat = 0;
    Tick spawned_at = 0;
    Tick up_since = 0;
    Tick restart_at = kTickInfinity;  ///< kRestarting: spawn when reached
    Tick kill_at = kTickInfinity;     ///< kStopping: escalate when reached
    Tick backoff = 0;                 ///< current ladder rung
    std::uint64_t spawns = 0;
    std::uint64_t restarts = 0;
    std::uint64_t hung_kills = 0;
    int last_exit_status = 0;
  };

  void supervisor_main();
  /// All of the below run on the supervisor thread with mu_ held.
  void spawn_locked(Child& c, Tick now);
  void transition_locked(Child& c, ChildState to);
  void handle_exit_locked(Child& c, int status, Tick now);
  void schedule_restart_locked(Child& c, Tick now);
  void check_deadlines_locked(Tick now);
  void drain_heartbeat_locked(Child& c, Tick now);
  void close_hb_locked(Child& c);
  [[nodiscard]] Tick next_deadline_locked() const;
  void write_status_file_locked();
  void begin_stop_locked(Child& c, Tick now);

  FleetConfig config_;
  Options options_;
  Xoshiro256 jitter_;

  std::mutex mu_;
  std::vector<Child> children_;
  std::uint64_t spawns_total_ = 0;
  std::uint64_t restarts_total_ = 0;
  std::uint64_t hung_kills_total_ = 0;
  bool shutting_down_ = false;

  int control_pipe_[2] = {-1, -1};  ///< stop()/wake signalling
  std::thread thread_;
  bool running_ = false;
};

}  // namespace twfd::supervise

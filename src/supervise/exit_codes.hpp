// Exit-code contract between the daemons and twfd_supervisord.
//
// The supervisor decides restart-vs-park from the child's exit status
// alone, so the daemons encode *why* they died using the BSD sysexits
// subset below: EX_TEMPFAIL means "the environment was transiently
// hostile (port still in TIME_WAIT, descriptor exhaustion) — back off
// and retry", EX_CONFIG/EX_USAGE mean "restarting cannot help until a
// human fixes the config". 126/127 are the shell/exec conventions for
// an unrunnable binary — also unfixable by retrying.
#pragma once

#include <cerrno>

namespace twfd::supervise {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 64;          ///< EX_USAGE: bad command line
inline constexpr int kExitTransient = 75;      ///< EX_TEMPFAIL: back off + retry
inline constexpr int kExitConfig = 78;         ///< EX_CONFIG: do not restart
inline constexpr int kExitNotExecutable = 126; ///< exec target not runnable
inline constexpr int kExitExecFailed = 127;    ///< execve itself failed

/// Maps a bind/listen/socket errno to the exit code a daemon should die
/// with: resource contention is transient (another instance still owns
/// the port, descriptors exhausted), anything else — a bad address, a
/// privileged port without the privilege — is a config error no retry
/// will fix.
[[nodiscard]] inline int classify_startup_errno(int err) noexcept {
  switch (err) {
    case EADDRINUSE:
    case EADDRNOTAVAIL:
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
    case EAGAIN:
      return kExitTransient;
    default:
      return kExitConfig;
  }
}

}  // namespace twfd::supervise

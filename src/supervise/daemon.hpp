// Child-side half of the supervision contract (the few lines a daemon
// adds to run under twfd_supervisord):
//
//   * install_shutdown_handlers() turns SIGTERM/SIGINT into a polled
//     flag, so the main loop can drain shards, flush a final snapshot
//     and exit 0 instead of dying mid-write;
//   * ChildHeartbeat::from_env() picks up the heartbeat pipe the
//     supervisor passed via TWFD_SUPERVISE_HB_FD; beat() once per loop
//     slice proves the process is not merely alive but *serving* — a
//     hung daemon stops beating and is killed within the configured
//     deadline. Inert (active() == false) when run outside the
//     supervisor, so the daemons call it unconditionally.
#pragma once

namespace twfd::supervise {

/// Environment variable carrying the heartbeat pipe's write fd.
inline constexpr const char* kHeartbeatFdEnv = "TWFD_SUPERVISE_HB_FD";

class ChildHeartbeat {
 public:
  /// Parses TWFD_SUPERVISE_HB_FD; an absent/garbled value yields an
  /// inert object (every beat() is a no-op).
  [[nodiscard]] static ChildHeartbeat from_env() noexcept;

  /// One non-blocking byte down the pipe. A full pipe (supervisor
  /// briefly behind) or a dead supervisor is silently ignored — the
  /// heartbeat must never be able to wedge or kill the daemon.
  void beat() noexcept;

  [[nodiscard]] bool active() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Installs SIGTERM/SIGINT handlers that set the shutdown flag, and
/// ignores SIGPIPE (peer-closed sockets/pipes must surface as EPIPE on
/// the write, not kill the process). Idempotent.
void install_shutdown_handlers() noexcept;

/// True once SIGTERM or SIGINT was received.
[[nodiscard]] bool shutdown_requested() noexcept;

/// Test seam: re-arms the flag so one process can exercise several
/// shutdown cycles.
void reset_shutdown_flag() noexcept;

}  // namespace twfd::supervise

#include "supervise/fleet_config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace twfd::supervise {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("fleet config line " + std::to_string(line) + ": " +
                           what);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_bool(std::string_view v, std::size_t line) {
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  fail(line, "expected a boolean, got '" + std::string(v) + "'");
}

std::int64_t parse_int(std::string_view v, std::size_t line) {
  if (v.empty()) fail(line, "expected a number");
  std::int64_t out = 0;
  bool neg = false;
  std::size_t i = 0;
  if (v[0] == '-') {
    neg = true;
    i = 1;
    if (v.size() == 1) fail(line, "expected a number");
  }
  for (; i < v.size(); ++i) {
    if (v[i] < '0' || v[i] > '9') {
      fail(line, "expected a number, got '" + std::string(v) + "'");
    }
    if (out > (std::int64_t{1} << 53)) fail(line, "number out of range");
    out = out * 10 + (v[i] - '0');
  }
  return neg ? -out : out;
}

Tick parse_ms(std::string_view v, std::size_t line) {
  const std::int64_t ms = parse_int(v, line);
  if (ms < 0) fail(line, "durations must be >= 0");
  return ticks_from_ms(ms);
}

}  // namespace

FleetConfig parse_fleet_config(std::string_view text) {
  FleetConfig config;
  ServiceSpec* current = nullptr;
  std::size_t line_no = 0;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      const std::string_view inner = trim(line.substr(1, line.size() - 2));
      constexpr std::string_view kPrefix = "service";
      if (inner.size() <= kPrefix.size() ||
          inner.substr(0, kPrefix.size()) != kPrefix ||
          (inner[kPrefix.size()] != ' ' && inner[kPrefix.size()] != '\t')) {
        fail(line_no, "only [service <name>] sections are recognised");
      }
      const std::string_view name = trim(inner.substr(kPrefix.size()));
      if (name.empty()) fail(line_no, "service section needs a name");
      if (config.find(name) != nullptr) {
        fail(line_no, "duplicate service '" + std::string(name) + "'");
      }
      config.services.emplace_back();
      current = &config.services.back();
      current->name = std::string(name);
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) fail(line_no, "expected key = value");
    if (current == nullptr) fail(line_no, "key outside any [service] section");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));

    if (key == "exec") {
      current->argv = split_ws(value);
      if (current->argv.empty()) fail(line_no, "exec needs a command");
    } else if (key == "auto_restart") {
      current->auto_restart = parse_bool(value, line_no);
    } else if (key == "grace_ms") {
      current->grace = parse_ms(value, line_no);
    } else if (key == "heartbeat_timeout_ms") {
      current->heartbeat_timeout = parse_ms(value, line_no);
    } else if (key == "start_timeout_ms") {
      current->start_timeout = parse_ms(value, line_no);
    } else if (key == "backoff_min_ms") {
      current->backoff_min = parse_ms(value, line_no);
    } else if (key == "backoff_max_ms") {
      current->backoff_max = parse_ms(value, line_no);
    } else if (key == "backoff_reset_ms") {
      current->backoff_reset = parse_ms(value, line_no);
    } else if (key == "fatal_exit_codes") {
      current->fatal_exit_codes.clear();
      std::size_t i = 0;
      const std::string v(value);
      while (i < v.size()) {
        std::size_t comma = v.find(',', i);
        if (comma == std::string::npos) comma = v.size();
        const std::string_view item = trim(std::string_view(v).substr(i, comma - i));
        if (!item.empty()) {
          const std::int64_t code = parse_int(item, line_no);
          if (code < 0 || code > 255) fail(line_no, "exit codes are 0..255");
          current->fatal_exit_codes.insert(static_cast<int>(code));
        }
        i = comma + 1;
      }
    } else if (key == "stdout_log") {
      current->stdout_log = std::string(value);
    } else {
      fail(line_no, "unknown key '" + std::string(key) + "'");
    }
  }

  if (config.services.empty()) {
    throw std::runtime_error("fleet config: no [service] sections");
  }
  for (const auto& s : config.services) {
    if (s.argv.empty()) {
      throw std::runtime_error("fleet config: service '" + s.name +
                               "' has no exec line");
    }
    if (s.backoff_min <= 0 || s.backoff_max < s.backoff_min) {
      throw std::runtime_error("fleet config: service '" + s.name +
                               "' has an invalid backoff ladder");
    }
  }
  return config;
}

FleetConfig load_fleet_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("fleet config: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_fleet_config(buf.str());
}

}  // namespace twfd::supervise

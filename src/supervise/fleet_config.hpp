// Declarative fleet description for twfd_supervisord: which daemons to
// run, how to tell a hung one from a healthy one, and how aggressively
// to restart a dead one.
//
// Format: INI-ish sections, one per service, `#` comments, key = value:
//
//   [service monitor]
//   exec = /usr/local/bin/twfd_monitor --port 14970 --sender-id 1
//   auto_restart = true
//   grace_ms = 2000              # SIGTERM -> SIGKILL escalation window
//   heartbeat_timeout_ms = 1500  # 0 = no hung-child detection
//   start_timeout_ms = 5000      # first beat must arrive within this
//   backoff_min_ms = 100         # restart ladder: doubles per crash,
//   backoff_max_ms = 5000        #   sleeps rung * [0.5, 1.0) jitter
//   backoff_reset_ms = 10000     # healthy this long => ladder resets
//   fatal_exit_codes = 2,64,78,126,127   # park, do not restart
//   stdout_log = /var/log/twfd/monitor.log
//
// Only `exec` is required; every other key has the default shown by the
// ServiceSpec initializers. parse errors throw std::runtime_error
// naming the line.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "supervise/exit_codes.hpp"

namespace twfd::supervise {

struct ServiceSpec {
  std::string name;
  /// exec line split on whitespace: argv[0] is the binary path.
  std::vector<std::string> argv;
  bool auto_restart = true;
  /// SIGTERM-then-SIGKILL escalation window on shutdown.
  Tick grace = ticks_from_ms(2000);
  /// No heartbeat byte for this long while up => hung, killed. 0 = off.
  Tick heartbeat_timeout = 0;
  /// First heartbeat must arrive within this after spawn (only with
  /// heartbeat_timeout > 0; until then the child counts as starting).
  Tick start_timeout = ticks_from_sec(5);
  Tick backoff_min = ticks_from_ms(100);
  Tick backoff_max = ticks_from_sec(5);
  /// A child healthy for this long gets its backoff ladder reset.
  Tick backoff_reset = ticks_from_sec(10);
  /// Exit codes that park the service (config-fatal; see exit_codes.hpp).
  std::set<int> fatal_exit_codes = {2, kExitUsage, kExitConfig,
                                    kExitNotExecutable, kExitExecFailed};
  /// Redirect the child's stdout+stderr here (append). Empty = inherit.
  std::string stdout_log;
};

struct FleetConfig {
  std::vector<ServiceSpec> services;

  [[nodiscard]] const ServiceSpec* find(std::string_view name) const {
    for (const auto& s : services) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

/// Parses config text; throws std::runtime_error("fleet config line N: ...")
/// on malformed input (unknown key, duplicate service, missing exec, ...).
[[nodiscard]] FleetConfig parse_fleet_config(std::string_view text);

/// Reads and parses a config file; throws on I/O or parse failure.
[[nodiscard]] FleetConfig load_fleet_config(const std::string& path);

}  // namespace twfd::supervise

#include "supervise/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/assert.hpp"
#include "supervise/daemon.hpp"

extern char** environ;

namespace twfd::supervise {
namespace {

// SIGCHLD self-pipe: the handler may only touch async-signal-safe state,
// so it writes one byte here and the supervisor thread does the real
// work. Installed once per process; the pipe is intentionally leaked.
int g_sigchld_pipe[2] = {-1, -1};
std::once_flag g_sigchld_once;

extern "C" void on_sigchld(int) {
  const int saved = errno;
  const char b = 'c';
  [[maybe_unused]] const ssize_t n = ::write(g_sigchld_pipe[1], &b, 1);
  errno = saved;
}

void install_sigchld_handler() {
  std::call_once(g_sigchld_once, [] {
    TWFD_CHECK(::pipe2(g_sigchld_pipe, O_CLOEXEC | O_NONBLOCK) == 0);
    struct sigaction sa = {};
    sa.sa_handler = on_sigchld;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_NOCLDSTOP | SA_RESTART;
    TWFD_CHECK(::sigaction(SIGCHLD, &sa, nullptr) == 0);
  });
}

void drain_pipe(int fd) {
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace

const char* to_string(ChildState state) noexcept {
  switch (state) {
    case ChildState::kDown: return "down";
    case ChildState::kStarting: return "starting";
    case ChildState::kUp: return "up";
    case ChildState::kDegraded: return "degraded";
    case ChildState::kRestarting: return "restarting";
    case ChildState::kStopping: return "stopping";
    case ChildState::kFatal: return "fatal";
  }
  return "unknown";
}

Supervisor::Supervisor(FleetConfig config, Options options)
    : config_(std::move(config)),
      options_(std::move(options)),
      jitter_(options_.jitter_seed) {
  TWFD_CHECK_MSG(!config_.services.empty(), "supervisor needs at least one service");
  children_.reserve(config_.services.size());
  for (const auto& spec : config_.services) {
    Child c;
    c.spec = spec;
    children_.push_back(std::move(c));
  }
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::start() {
  TWFD_CHECK_MSG(!running_, "supervisor already started");
  install_sigchld_handler();
  TWFD_CHECK(::pipe2(control_pipe_, O_CLOEXEC | O_NONBLOCK) == 0);
  shutting_down_ = false;
  running_ = true;
  thread_ = std::thread([this] { supervisor_main(); });
}

void Supervisor::stop() {
  if (!running_) return;
  const char b = 'q';
  [[maybe_unused]] const ssize_t n = ::write(control_pipe_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
  ::close(control_pipe_[0]);
  ::close(control_pipe_[1]);
  control_pipe_[0] = control_pipe_[1] = -1;
  running_ = false;
}

std::vector<Supervisor::ChildStatus> Supervisor::status() {
  std::lock_guard lk(mu_);
  std::vector<ChildStatus> out;
  out.reserve(children_.size());
  for (const Child& c : children_) {
    out.push_back({c.spec.name, c.state, c.pid, c.spawns, c.restarts,
                   c.hung_kills, c.last_exit_status, c.backoff});
  }
  return out;
}

Supervisor::Stats Supervisor::stats() {
  std::lock_guard lk(mu_);
  Stats s;
  s.spawns_total = spawns_total_;
  s.restarts_total = restarts_total_;
  s.hung_kills_total = hung_kills_total_;
  for (const Child& c : children_) {
    if (c.state == ChildState::kFatal) ++s.fatal_children;
    if (c.state == ChildState::kUp) ++s.up_children;
  }
  return s;
}

pid_t Supervisor::pid_of(const std::string& name) {
  std::lock_guard lk(mu_);
  for (const Child& c : children_) {
    if (c.spec.name == name) return c.pid;
  }
  return 0;
}

bool Supervisor::wait_all_up(Tick timeout) {
  SteadyClock clock;
  const Tick deadline = clock.now() + timeout;
  for (;;) {
    bool all_up = true;
    {
      std::lock_guard lk(mu_);
      for (const Child& c : children_) {
        if (c.state == ChildState::kFatal) return false;
        if (c.state != ChildState::kUp) all_up = false;
      }
    }
    if (all_up) return true;
    if (clock.now() >= deadline) return false;
    ::usleep(10 * 1000);
  }
}

bool Supervisor::kill_child(const std::string& name, int sig) {
  std::lock_guard lk(mu_);
  for (const Child& c : children_) {
    if (c.spec.name == name && c.pid > 0) return ::kill(c.pid, sig) == 0;
  }
  return false;
}

// --- supervisor thread ------------------------------------------------------

void Supervisor::transition_locked(Child& c, ChildState to) {
  if (c.state == to) return;
  const ChildState from = c.state;
  c.state = to;
  if (options_.state_hook) options_.state_hook(c.spec.name, from, to);
  write_status_file_locked();
}

void Supervisor::close_hb_locked(Child& c) {
  if (c.hb_read_fd >= 0) {
    ::close(c.hb_read_fd);
    c.hb_read_fd = -1;
  }
}

void Supervisor::spawn_locked(Child& c, Tick now) {
  // Everything that can allocate happens BEFORE fork: the parent is
  // multithreaded, so the child may only run async-signal-safe calls
  // (dup2/fcntl/execve/_exit) until exec.
  std::vector<char*> argv;
  argv.reserve(c.spec.argv.size() + 1);
  for (auto& a : c.spec.argv) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  int hb[2] = {-1, -1};
  std::string hb_env;
  if (c.spec.heartbeat_timeout > 0) {
    if (::pipe2(hb, O_CLOEXEC | O_NONBLOCK) != 0) {
      // Descriptor exhaustion: a transient failure, walk the ladder.
      c.last_exit_status = 0;
      schedule_restart_locked(c, now);
      return;
    }
    hb_env = std::string(kHeartbeatFdEnv) + "=" + std::to_string(hb[1]);
  }
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, kHeartbeatFdEnv, std::strlen(kHeartbeatFdEnv)) == 0 &&
        (*e)[std::strlen(kHeartbeatFdEnv)] == '=') {
      continue;  // never leak a stale fd number from our own environment
    }
    envp.push_back(*e);
  }
  if (!hb_env.empty()) envp.push_back(const_cast<char*>(hb_env.c_str()));
  envp.push_back(nullptr);

  int log_fd = -1;
  if (!c.spec.stdout_log.empty()) {
    log_fd = ::open(c.spec.stdout_log.c_str(),
                    O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    // A log that cannot be opened must not block the service: inherit.
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (hb[0] >= 0) ::close(hb[0]);
    if (hb[1] >= 0) ::close(hb[1]);
    if (log_fd >= 0) ::close(log_fd);
    c.last_exit_status = 0;
    schedule_restart_locked(c, now);
    return;
  }
  if (pid == 0) {
    // Child. O_CLOEXEC closes every other service's pipe ends at exec;
    // only this child's heartbeat write end survives, un-CLOEXEC'd here.
    if (hb[1] >= 0) ::fcntl(hb[1], F_SETFD, 0);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
    }
    ::execve(argv[0], argv.data(), envp.data());
    _exit(errno == EACCES ? kExitNotExecutable : kExitExecFailed);
  }

  // Parent.
  if (hb[1] >= 0) ::close(hb[1]);
  if (log_fd >= 0) ::close(log_fd);
  c.pid = pid;
  c.hb_read_fd = hb[0];
  c.spawned_at = now;
  c.last_beat = now;
  c.restart_at = kTickInfinity;
  c.kill_at = kTickInfinity;
  ++c.spawns;
  ++spawns_total_;
  if (c.spec.heartbeat_timeout > 0) {
    transition_locked(c, ChildState::kStarting);
  } else {
    // No liveness channel: spawned == up, and only SIGCHLD demotes it.
    c.up_since = now;
    transition_locked(c, ChildState::kUp);
  }
}

void Supervisor::schedule_restart_locked(Child& c, Tick now) {
  if (shutting_down_ || !c.spec.auto_restart) {
    transition_locked(c, ChildState::kDown);
    return;
  }
  // A healthy stretch resets the ladder; otherwise the rung carried over
  // from the previous crash keeps doubling toward the cap.
  if (c.up_since > 0 && now - c.up_since >= c.spec.backoff_reset) {
    c.backoff = 0;
  }
  const Tick rung = c.backoff > 0 ? c.backoff : c.spec.backoff_min;
  // The ReconnectingClient envelope: delay in [rung/2, rung).
  const Tick delay =
      static_cast<Tick>(static_cast<double>(rung) * (0.5 + 0.5 * jitter_.uniform01()));
  c.restart_at = now + std::max<Tick>(delay, ticks_from_ms(1));
  c.backoff = std::min(rung * 2, c.spec.backoff_max);
  c.up_since = 0;
  ++c.restarts;
  ++restarts_total_;
  if (options_.backoff_hook) options_.backoff_hook(c.spec.name, delay, rung);
  transition_locked(c, ChildState::kRestarting);
}

void Supervisor::handle_exit_locked(Child& c, int status, Tick now) {
  close_hb_locked(c);
  c.pid = 0;
  c.last_exit_status = status;
  c.kill_at = kTickInfinity;

  if (c.state == ChildState::kStopping || shutting_down_) {
    transition_locked(c, ChildState::kDown);
    return;
  }
  if (WIFEXITED(status) &&
      c.spec.fatal_exit_codes.count(WEXITSTATUS(status)) > 0) {
    // EX_CONFIG and friends: restarting re-runs the same broken config.
    // Park the service; a human (or a config push) resolves it.
    transition_locked(c, ChildState::kFatal);
    return;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == kExitOk &&
      c.state != ChildState::kDegraded) {
    // A voluntary clean exit outside shutdown: treat as done, not crash.
    transition_locked(c, ChildState::kDown);
    return;
  }
  schedule_restart_locked(c, now);
}

void Supervisor::begin_stop_locked(Child& c, Tick now) {
  if (c.pid <= 0) {
    if (c.state == ChildState::kRestarting) transition_locked(c, ChildState::kDown);
    return;
  }
  ::kill(c.pid, SIGTERM);
  c.kill_at = now + c.spec.grace;
  transition_locked(c, ChildState::kStopping);
}

void Supervisor::drain_heartbeat_locked(Child& c, Tick now) {
  char buf[256];
  ssize_t n = 0;
  bool beat = false;
  while ((n = ::read(c.hb_read_fd, buf, sizeof(buf))) > 0) beat = true;
  if (!beat) return;
  c.last_beat = now;
  if (c.state == ChildState::kStarting) {
    c.up_since = now;
    transition_locked(c, ChildState::kUp);
  }
}

void Supervisor::check_deadlines_locked(Tick now) {
  for (Child& c : children_) {
    switch (c.state) {
      case ChildState::kStarting:
        if (now - c.spawned_at >= c.spec.start_timeout) {
          // Never came up: hung from birth. SIGKILL — a process that
          // cannot produce one heartbeat byte is past SIGTERM courtesy.
          ++c.hung_kills;
          ++hung_kills_total_;
          if (c.pid > 0) ::kill(c.pid, SIGKILL);
          transition_locked(c, ChildState::kDegraded);
        }
        break;
      case ChildState::kUp:
        if (c.spec.heartbeat_timeout > 0 &&
            now - c.last_beat >= c.spec.heartbeat_timeout) {
          ++c.hung_kills;
          ++hung_kills_total_;
          if (c.pid > 0) ::kill(c.pid, SIGKILL);
          transition_locked(c, ChildState::kDegraded);
        }
        break;
      case ChildState::kRestarting:
        if (!shutting_down_ && now >= c.restart_at) spawn_locked(c, now);
        break;
      case ChildState::kStopping:
        if (c.pid > 0 && now >= c.kill_at) {
          ::kill(c.pid, SIGKILL);
          c.kill_at = kTickInfinity;  // reap finishes the transition
        }
        break;
      case ChildState::kDown:
      case ChildState::kDegraded:
      case ChildState::kFatal:
        break;
    }
  }
}

Tick Supervisor::next_deadline_locked() const {
  Tick next = kTickInfinity;
  for (const Child& c : children_) {
    switch (c.state) {
      case ChildState::kStarting:
        next = std::min(next, c.spawned_at + c.spec.start_timeout);
        break;
      case ChildState::kUp:
        if (c.spec.heartbeat_timeout > 0) {
          next = std::min(next, c.last_beat + c.spec.heartbeat_timeout);
        }
        break;
      case ChildState::kRestarting:
        next = std::min(next, c.restart_at);
        break;
      case ChildState::kStopping:
        next = std::min(next, c.kill_at);
        break;
      default:
        break;
    }
  }
  return next;
}

void Supervisor::write_status_file_locked() {
  if (options_.status_file.empty()) return;
  std::string out;
  for (const Child& c : children_) {
    out += c.spec.name;
    out += ' ';
    out += to_string(c.state);
    out += ' ';
    out += std::to_string(c.pid);
    out += ' ';
    out += std::to_string(c.restarts);
    out += '\n';
  }
  const std::string tmp = options_.status_file + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return;
  [[maybe_unused]] const ssize_t n = ::write(fd, out.data(), out.size());
  ::close(fd);
  ::rename(tmp.c_str(), options_.status_file.c_str());
}

void Supervisor::supervisor_main() {
  SteadyClock clock;
  {
    std::lock_guard lk(mu_);
    const Tick now = clock.now();
    for (Child& c : children_) spawn_locked(c, now);
  }

  std::vector<pollfd> fds;
  std::vector<std::size_t> hb_owner;  // fds[i+2] belongs to children_[hb_owner[i]]
  for (;;) {
    fds.clear();
    hb_owner.clear();
    fds.push_back({control_pipe_[0], POLLIN, 0});
    fds.push_back({g_sigchld_pipe[0], POLLIN, 0});
    Tick timeout_ns;
    {
      std::lock_guard lk(mu_);
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (children_[i].hb_read_fd >= 0) {
          fds.push_back({children_[i].hb_read_fd, POLLIN, 0});
          hb_owner.push_back(i);
        }
      }
      const Tick deadline = next_deadline_locked();
      const Tick now = clock.now();
      timeout_ns = deadline == kTickInfinity
                       ? ticks_from_ms(200)
                       : std::clamp<Tick>(deadline - now, ticks_from_ms(1),
                                          ticks_from_ms(200));
    }
    const int timeout_ms =
        static_cast<int>(std::max<Tick>(1, timeout_ns / ticks_from_ms(1)));
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    const Tick now = clock.now();

    std::lock_guard lk(mu_);
    if (rc > 0) {
      if ((fds[0].revents & POLLIN) != 0) drain_pipe(control_pipe_[0]);
      if ((fds[1].revents & POLLIN) != 0) drain_pipe(g_sigchld_pipe[0]);
      for (std::size_t i = 0; i < hb_owner.size(); ++i) {
        Child& c = children_[hb_owner[i]];
        // The fd may have been closed by a reap below in a previous
        // round; owners were computed this round, so it is still ours.
        if ((fds[i + 2].revents & POLLIN) != 0 && c.hb_read_fd == fds[i + 2].fd) {
          drain_heartbeat_locked(c, now);
        }
      }
    }

    // Reap with explicit pids: waitpid(-1) would steal unrelated
    // children (popen, test runners) from this process.
    for (Child& c : children_) {
      if (c.pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
      if (r == c.pid) handle_exit_locked(c, status, now);
    }

    // A stop request turns every child toward kDown before the loop can
    // exit; children already waiting on a restart just go down.
    if (!shutting_down_) {
      bool stop_seen = false;
      // drain_pipe consumed the byte; detect via the flag the byte set.
      // (The control pipe only ever carries 'q'.)
      if (rc > 0 && (fds[0].revents & POLLIN) != 0) stop_seen = true;
      if (stop_seen) {
        shutting_down_ = true;
        for (Child& c : children_) begin_stop_locked(c, now);
      }
    }

    check_deadlines_locked(now);

    if (shutting_down_) {
      bool all_done = true;
      for (const Child& c : children_) {
        if (c.pid > 0) all_done = false;
      }
      if (all_done) {
        for (Child& c : children_) {
          if (c.state != ChildState::kFatal) transition_locked(c, ChildState::kDown);
        }
        return;
      }
    }
  }
}

}  // namespace twfd::supervise

// The seam between the FDaaS API server and the federation tier.
//
// FdaasServer is the API-thread owner; the federated monitoring core
// (federation::FederationCore) is plain single-threaded state. To keep
// the library layering acyclic — fd_federation links fd_api, never the
// other way — the server talks to the core through this interface:
// every method is invoked ON the API thread only, and the core reports
// applied transitions back through the transition sink the server
// installs at attach time (used to fan Event frames out to subtree
// subscribers). See docs/runtime.md "Federation tier".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "api/control.hpp"

namespace twfd::api {

class FederationAdapter {
 public:
  struct IngestResult {
    std::size_t applied = 0;  ///< entries newer than the stored state
    std::size_t stale = 0;    ///< replayed / out-of-date entries dropped
    std::size_t foreign = 0;  ///< entries outside the delegated ranges
  };

  virtual ~FederationAdapter() = default;

  /// Called once at attach: `sink` receives every APPLIED transition
  /// (local or ingested) so the server can route it to subscribers.
  virtual void set_transition_sink(
      std::function<void(const DigestEntry&)> sink) = 0;

  /// A child session (`child_node` from the frame) pushed a digest.
  virtual IngestResult ingest_digest(std::uint64_t child_node,
                                     const DigestMsg& digest) = 0;

  /// Drains pending upstream transitions into wire-ready frames when a
  /// flush is due (interval elapsed or size trigger); empty otherwise.
  virtual std::vector<DigestMsg> flush(Tick now) = 0;

  /// Full-state digests (kFlagSnapshot) covering every known peer — the
  /// reconciliation payload sent upstream after a link (re)connect.
  virtual std::vector<DigestMsg> snapshot_digests() = 0;

  /// Current state of a federated peer, nullopt when unknown.
  virtual std::optional<DigestEntry> peer_state(std::uint64_t peer_key) const = 0;

  /// The digest flush cadence: the per-level latency the server must
  /// budget against a subscriber's T_D^U.
  [[nodiscard]] virtual Tick flush_interval() const = 0;
};

}  // namespace twfd::api

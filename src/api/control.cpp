#include "api/control.hpp"

#include <cmath>

#include "net/wire_codec.hpp"

namespace twfd::api {
namespace {

using net::codec::Reader;
using net::codec::Writer;

constexpr std::uint8_t kTypeSubscribe = 1;
constexpr std::uint8_t kTypeSubscribeOk = 2;
constexpr std::uint8_t kTypeUnsubscribe = 3;
constexpr std::uint8_t kTypeUnsubscribeOk = 4;
constexpr std::uint8_t kTypeSnapshotRequest = 5;
constexpr std::uint8_t kTypeSnapshotReply = 6;
constexpr std::uint8_t kTypePing = 7;
constexpr std::uint8_t kTypePong = 8;
constexpr std::uint8_t kTypeEvent = 9;
constexpr std::uint8_t kTypeError = 10;
constexpr std::uint8_t kTypeDigest = 11;
constexpr std::uint8_t kTypeDelegate = 12;

void header(Writer& w, std::uint8_t type) {
  w.u32(kControlMagic);
  w.u8(kControlVersion);
  w.u8(type);
}

void body(Writer& w, const SubscribeRequest& m) {
  header(w, kTypeSubscribe);
  w.u64(m.request_id);
  w.u32(m.peer.ip_host_order);
  w.u16(m.peer.port);
  w.u64(m.sender_id);
  w.str16(m.app);
  w.f64(m.qos.td_upper_s);
  w.f64(m.qos.tmr_upper_per_s);
  w.f64(m.qos.tm_upper_s);
}

void body(Writer& w, const SubscribeOk& m) {
  header(w, kTypeSubscribeOk);
  w.u64(m.request_id);
  w.u64(m.subscription_id);
}

void body(Writer& w, const UnsubscribeRequest& m) {
  header(w, kTypeUnsubscribe);
  w.u64(m.request_id);
  w.u64(m.subscription_id);
}

void body(Writer& w, const UnsubscribeOk& m) {
  header(w, kTypeUnsubscribeOk);
  w.u64(m.request_id);
}

void body(Writer& w, const SnapshotRequest& m) {
  header(w, kTypeSnapshotRequest);
  w.u64(m.request_id);
}

void body(Writer& w, const SnapshotReply& m) {
  header(w, kTypeSnapshotReply);
  w.u64(m.request_id);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const auto& e : m.entries) {
    w.u64(e.subscription_id);
    w.u8(static_cast<std::uint8_t>(e.output));
    w.i64(e.since);
  }
}

void body(Writer& w, const PingMsg& m) {
  header(w, kTypePing);
  w.u64(m.nonce);
}

void body(Writer& w, const PongMsg& m) {
  header(w, kTypePong);
  w.u64(m.nonce);
  w.u64(m.lease_ms);
}

void body(Writer& w, const EventMsg& m) {
  header(w, kTypeEvent);
  w.u64(m.subscription_id);
  w.u8(static_cast<std::uint8_t>(m.output));
  w.i64(m.when);
}

void body(Writer& w, const ErrorMsg& m) {
  header(w, kTypeError);
  w.u64(m.request_id);
  w.u16(static_cast<std::uint16_t>(m.code));
  w.str16(m.message);
}

void body(Writer& w, const DigestMsg& m) {
  header(w, kTypeDigest);
  w.u64(m.node_id);
  w.u64(m.digest_seq);
  w.u8(m.flags);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  // Entries are sorted by strictly ascending peer_key (the encoder's
  // precondition, validated on decode): the first key and `when` are
  // absolute, the rest are deltas from their predecessor.
  std::uint64_t prev_key = 0;
  Tick prev_when = 0;
  bool first = true;
  for (const auto& e : m.entries) {
    if (first) {
      w.varint(e.peer_key);
      w.varint(e.seq);
      w.u8(static_cast<std::uint8_t>(e.output));
      w.svarint(e.when);
      first = false;
    } else {
      w.varint(e.peer_key - prev_key);
      w.varint(e.seq);
      w.u8(static_cast<std::uint8_t>(e.output));
      w.svarint(e.when - prev_when);
    }
    prev_key = e.peer_key;
    prev_when = e.when;
  }
}

void body(Writer& w, const DelegateMsg& m) {
  header(w, kTypeDelegate);
  w.u64(m.node_id);
  w.u64(m.delegation_seq);
  w.u32(static_cast<std::uint32_t>(m.ranges.size()));
  for (const auto& r : m.ranges) {
    w.u64(r.lo);
    w.u64(r.hi);
  }
}

[[nodiscard]] bool valid_output_byte(std::uint8_t b) {
  return b <= static_cast<std::uint8_t>(detect::Output::Suspect);
}

[[nodiscard]] bool finite_qos(const config::QosRequirements& q) {
  return std::isfinite(q.td_upper_s) && std::isfinite(q.tmr_upper_per_s) &&
         std::isfinite(q.tm_upper_s);
}

}  // namespace

std::vector<std::byte> encode_frame(const ControlMessage& msg) {
  Writer w(64);
  std::visit([&w](const auto& m) { body(w, m); }, msg);
  std::vector<std::byte> payload = w.take();

  Writer framed(4 + payload.size());
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::byte> out = framed.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<ControlMessage> decode_body(std::span<const std::byte> data) {
  if (data.size() > kMaxFrameBody) return std::nullopt;
  Reader r(data);
  if (r.u32() != kControlMagic) return std::nullopt;
  if (r.u8() != kControlVersion) return std::nullopt;
  const std::uint8_t type = r.u8();

  const auto done = [&r](auto m) -> std::optional<ControlMessage> {
    if (!r.ok() || r.remaining() != 0) return std::nullopt;
    return ControlMessage(std::move(m));
  };

  switch (type) {
    case kTypeSubscribe: {
      SubscribeRequest m;
      m.request_id = r.u64();
      m.peer.ip_host_order = r.u32();
      m.peer.port = r.u16();
      m.sender_id = r.u64();
      m.app = r.str16(kMaxAppName);
      m.qos.td_upper_s = r.f64();
      m.qos.tmr_upper_per_s = r.f64();
      m.qos.tm_upper_s = r.f64();
      if (!finite_qos(m.qos)) return std::nullopt;
      return done(std::move(m));
    }
    case kTypeSubscribeOk: {
      SubscribeOk m;
      m.request_id = r.u64();
      m.subscription_id = r.u64();
      return done(m);
    }
    case kTypeUnsubscribe: {
      UnsubscribeRequest m;
      m.request_id = r.u64();
      m.subscription_id = r.u64();
      return done(m);
    }
    case kTypeUnsubscribeOk: {
      UnsubscribeOk m;
      m.request_id = r.u64();
      return done(m);
    }
    case kTypeSnapshotRequest: {
      SnapshotRequest m;
      m.request_id = r.u64();
      return done(m);
    }
    case kTypeSnapshotReply: {
      SnapshotReply m;
      m.request_id = r.u64();
      const std::uint32_t count = r.u32();
      if (!r.ok() || count > kMaxSnapshotEntries ||
          std::size_t{count} * 17 > r.remaining()) {
        return std::nullopt;
      }
      m.entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        SnapshotEntry e;
        e.subscription_id = r.u64();
        const std::uint8_t out = r.u8();
        if (!valid_output_byte(out)) return std::nullopt;
        e.output = static_cast<detect::Output>(out);
        e.since = r.i64();
        m.entries.push_back(e);
      }
      return done(std::move(m));
    }
    case kTypePing: {
      PingMsg m;
      m.nonce = r.u64();
      return done(m);
    }
    case kTypePong: {
      PongMsg m;
      m.nonce = r.u64();
      m.lease_ms = r.u64();
      return done(m);
    }
    case kTypeEvent: {
      EventMsg m;
      m.subscription_id = r.u64();
      const std::uint8_t out = r.u8();
      if (!valid_output_byte(out)) return std::nullopt;
      m.output = static_cast<detect::Output>(out);
      m.when = r.i64();
      return done(m);
    }
    case kTypeError: {
      ErrorMsg m;
      m.request_id = r.u64();
      const std::uint16_t code = r.u16();
      if (code < 1 || code > static_cast<std::uint16_t>(ErrorCode::kInternal)) {
        return std::nullopt;
      }
      m.code = static_cast<ErrorCode>(code);
      m.message = r.str16(kMaxErrorText);
      return done(std::move(m));
    }
    case kTypeDigest: {
      DigestMsg m;
      m.node_id = r.u64();
      m.digest_seq = r.u64();
      m.flags = r.u8();
      const std::uint32_t count = r.u32();
      // Every entry costs at least 4 bytes on the wire (1-byte varints
      // plus the output byte), so bound the reserve before trusting it.
      if (!r.ok() || count > kMaxDigestEntries ||
          std::size_t{count} * 4 > r.remaining() ||
          (m.flags & ~DigestMsg::kFlagSnapshot) != 0) {
        return std::nullopt;
      }
      m.entries.reserve(count);
      std::uint64_t prev_key = 0;
      Tick prev_when = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        DigestEntry e;
        const std::uint64_t kd = r.varint();
        e.seq = r.varint();
        const std::uint8_t out = r.u8();
        const Tick wd = r.svarint();
        if (!r.ok() || !valid_output_byte(out)) return std::nullopt;
        if (i == 0) {
          e.peer_key = kd;
          e.when = wd;
        } else {
          // Strictly ascending keys: a zero delta (duplicate key) or a
          // wrap-around is hostile.
          if (kd == 0 || prev_key > ~std::uint64_t{0} - kd) return std::nullopt;
          e.peer_key = prev_key + kd;
          e.when = prev_when + wd;
        }
        e.output = static_cast<detect::Output>(out);
        prev_key = e.peer_key;
        prev_when = e.when;
        m.entries.push_back(e);
      }
      return done(std::move(m));
    }
    case kTypeDelegate: {
      DelegateMsg m;
      m.node_id = r.u64();
      m.delegation_seq = r.u64();
      const std::uint32_t count = r.u32();
      if (!r.ok() || count > kMaxDelegateRanges ||
          std::size_t{count} * 16 > r.remaining()) {
        return std::nullopt;
      }
      m.ranges.reserve(count);
      std::uint64_t prev_hi = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        PeerKeyRange range;
        range.lo = r.u64();
        range.hi = r.u64();
        if (range.lo > range.hi) return std::nullopt;
        // Sorted and non-overlapping, so ownership checks can bisect.
        if (i > 0 && range.lo <= prev_hi) return std::nullopt;
        prev_hi = range.hi;
        m.ranges.push_back(range);
      }
      return done(std::move(m));
    }
    default:
      return std::nullopt;
  }
}

void FrameAssembler::push(std::span<const std::byte> data) {
  if (corrupt_) return;
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<std::vector<std::byte>> FrameAssembler::next() {
  if (corrupt_) return std::nullopt;
  if (buf_.size() - pos_ < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  if (len > kMaxFrameBody) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + std::size_t{len}) return std::nullopt;
  std::vector<std::byte> out(buf_.begin() + pos_ + 4,
                             buf_.begin() + pos_ + 4 + len);
  pos_ += 4 + len;
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + pos_);
    pos_ = 0;
  }
  return out;
}

}  // namespace twfd::api

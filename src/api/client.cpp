#include "api/client.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace twfd::api {
namespace {

[[nodiscard]] int poll_timeout_ms(Tick now, Tick deadline) {
  if (deadline <= now) return 0;
  const Tick wait = deadline - now;
  return static_cast<int>((wait + ticks_from_ms(1) - 1) / ticks_from_ms(1));
}

}  // namespace

Client::Client(const net::SocketAddress& server) : Client(server, Options{}) {}

Client::Client(const net::SocketAddress& server, Options options)
    : options_(options) {
  auto conn = net::TcpConn::connect(server, options_.connect_timeout);
  if (!conn) {
    throw std::system_error(ECONNREFUSED, std::generic_category(),
                            "connect(" + server.to_string() + ")");
  }
  conn_ = std::move(*conn);
}

void Client::send_all(std::span<const std::byte> data, Tick deadline) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto w = conn_.write_some(data.subspan(sent));
    if (w.status == net::TcpConn::IoStatus::kClosed) {
      conn_.close();
      throw std::runtime_error("fdaas connection closed while sending");
    }
    if (w.status == net::TcpConn::IoStatus::kOk) {
      sent += w.bytes;
      continue;
    }
    const Tick now = clock_.now();
    if (now >= deadline) throw std::runtime_error("fdaas send timed out");
    pollfd pfd{conn_.fd(), POLLOUT, 0};
    ::poll(&pfd, 1, poll_timeout_ms(now, deadline));
  }
}

bool Client::read_available(Tick deadline) {
  if (!conn_.valid()) return false;
  for (;;) {
    std::byte buf[4096];
    const auto r = conn_.read_some(buf);
    if (r.status == net::TcpConn::IoStatus::kOk) {
      rx_.push(std::span<const std::byte>(buf, r.bytes));
      return true;
    }
    if (r.status == net::TcpConn::IoStatus::kClosed) {
      conn_.close();
      return false;
    }
    const Tick now = clock_.now();
    if (now >= deadline) return false;
    pollfd pfd{conn_.fd(), POLLIN, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, poll_timeout_ms(now, deadline));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) return false;  // timeout
  }
}

void Client::dispatch(ControlMessage msg) {
  if (auto* event = std::get_if<EventMsg>(&msg)) {
    ++events_received_;
    if (on_event_) on_event_(*event);
  } else if (auto* pong = std::get_if<PongMsg>(&msg)) {
    lease_ms_ = pong->lease_ms;
  } else if (auto* delegate = std::get_if<DelegateMsg>(&msg)) {
    if (on_delegate_) on_delegate_(*delegate);
  }
  // Stray replies (e.g. a late Pong after a timed-out ping) are absorbed.
}

void Client::send_message(const ControlMessage& msg) {
  if (!conn_.valid()) throw std::runtime_error("fdaas client is closed");
  send_all(encode_frame(msg), clock_.now() + options_.request_timeout);
}

std::optional<ControlMessage> Client::drain_frames(
    const std::function<bool(const ControlMessage&)>& matches) {
  for (;;) {
    auto body = rx_.next();
    if (!body) {
      if (rx_.corrupt()) {
        conn_.close();
        throw std::runtime_error("fdaas stream corrupt");
      }
      return std::nullopt;
    }
    auto msg = decode_body(*body);
    if (!msg) {
      conn_.close();
      throw std::runtime_error("fdaas server sent a malformed frame");
    }
    if (matches && matches(*msg)) return msg;
    dispatch(std::move(*msg));
  }
}

ControlMessage Client::request(
    const ControlMessage& req,
    const std::function<bool(const ControlMessage&)>& matches) {
  if (!conn_.valid()) throw std::runtime_error("fdaas client is closed");
  const Tick deadline = clock_.now() + options_.request_timeout;
  send_all(encode_frame(req), deadline);
  for (;;) {
    if (auto reply = drain_frames(matches)) return std::move(*reply);
    if (clock_.now() >= deadline) {
      throw std::runtime_error("fdaas request timed out");
    }
    if (!read_available(deadline)) {
      if (!conn_.valid()) throw std::runtime_error("fdaas connection closed");
      throw std::runtime_error("fdaas request timed out");
    }
  }
}

std::uint64_t Client::subscribe(const net::SocketAddress& peer,
                                std::uint64_t sender_id, const std::string& app,
                                const config::QosRequirements& qos) {
  const std::uint64_t rid = next_request_id_++;
  const auto reply = request(
      SubscribeRequest{rid, peer, sender_id, app, qos},
      [rid](const ControlMessage& m) {
        if (const auto* ok = std::get_if<SubscribeOk>(&m)) {
          return ok->request_id == rid;
        }
        if (const auto* err = std::get_if<ErrorMsg>(&m)) {
          return err->request_id == rid;
        }
        return false;
      });
  if (const auto* err = std::get_if<ErrorMsg>(&reply)) {
    throw std::runtime_error("subscribe rejected: " + err->message);
  }
  return std::get<SubscribeOk>(reply).subscription_id;
}

void Client::unsubscribe(std::uint64_t subscription_id) {
  const std::uint64_t rid = next_request_id_++;
  const auto reply = request(
      UnsubscribeRequest{rid, subscription_id},
      [rid](const ControlMessage& m) {
        if (const auto* ok = std::get_if<UnsubscribeOk>(&m)) {
          return ok->request_id == rid;
        }
        if (const auto* err = std::get_if<ErrorMsg>(&m)) {
          return err->request_id == rid;
        }
        return false;
      });
  if (const auto* err = std::get_if<ErrorMsg>(&reply)) {
    throw std::runtime_error("unsubscribe rejected: " + err->message);
  }
}

std::vector<SnapshotEntry> Client::snapshot() {
  const std::uint64_t rid = next_request_id_++;
  auto reply = request(SnapshotRequest{rid}, [rid](const ControlMessage& m) {
    const auto* snap = std::get_if<SnapshotReply>(&m);
    return snap != nullptr && snap->request_id == rid;
  });
  return std::move(std::get<SnapshotReply>(reply).entries);
}

std::uint64_t Client::ping() {
  const std::uint64_t nonce = next_nonce_++;
  const auto reply = request(PingMsg{nonce}, [nonce](const ControlMessage& m) {
    const auto* pong = std::get_if<PongMsg>(&m);
    return pong != nullptr && pong->nonce == nonce;
  });
  lease_ms_ = std::get<PongMsg>(reply).lease_ms;
  return lease_ms_;
}

bool Client::pump_for(Tick duration) {
  const Tick deadline = clock_.now() + duration;
  Tick next_ping = 0;  // ping immediately on the first turn
  while (conn_.valid()) {
    // Dispatch whatever is already assembled.
    try {
      drain_frames({});
    } catch (const std::runtime_error&) {
      return false;  // corrupt/malformed stream; connection already closed
    }
    const Tick now = clock_.now();
    if (now >= deadline) return true;
    if (now >= next_ping) {
      const Tick interval = lease_ms_ > 0
                                ? ticks_from_ms(static_cast<std::int64_t>(lease_ms_)) / 3
                                : options_.default_ping_interval;
      next_ping = now + std::max<Tick>(interval, ticks_from_ms(10));
      try {
        send_all(encode_frame(PingMsg{next_nonce_++}),
                 now + options_.request_timeout);
      } catch (const std::runtime_error&) {
        return false;  // connection died under the lease renewal
      }
    }
    read_available(std::min(deadline, next_ping));
  }
  return false;
}

}  // namespace twfd::api

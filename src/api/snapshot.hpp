// Crash-persistent FDaaS state: the versioned, checksummed snapshot file
// the server writes periodically (and on graceful shutdown) and reloads
// on startup, so a supervisor-driven restart or binary upgrade resumes
// monitoring with warm verdicts instead of a cold table.
//
// File layout (all little-endian, via net::codec):
//
//   u32  magic      "TWFS" (0x53465754)
//   u8   version    kSnapshotVersion
//   i64  saved_wall_ns   CLOCK_REALTIME at save — maps persisted ages
//                        back into the loader's steady-clock domain
//   u32  body_len
//   ...  body       seeds + federation child registry (see encode)
//   u64  checksum   FNV-1a over every preceding byte (magic..body)
//
// Decode is strict validate-then-trust in the control.cpp style: it
// never throws, any truncation / bit flip / hostile count / declared
// length past the buffer yields a typed failure, and version skew is a
// distinct status so the caller can log "old snapshot, cold start"
// rather than crash. Saves are atomic: tmp file + fsync + rename, so a
// crash mid-write leaves the previous snapshot intact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "config/qos_config.hpp"
#include "detect/failure_detector.hpp"
#include "net/udp_socket.hpp"

namespace twfd::api {

inline constexpr std::uint32_t kSnapshotMagic = 0x53465754;  // "TWFS"
inline constexpr std::uint8_t kSnapshotVersion = 1;
/// Hostile-input bounds: a decoded count or length beyond these rejects
/// the whole file (kCorrupt), it never drives an allocation.
inline constexpr std::size_t kMaxSnapshotSeeds = 1u << 20;
inline constexpr std::size_t kMaxSnapshotChildren = 1u << 20;
inline constexpr std::size_t kMaxSnapshotAppName = 4096;
inline constexpr std::size_t kMaxSnapshotBody = 64u << 20;

struct SnapshotData {
  /// One persisted subscription: identity + QoS tuple + last verdict.
  /// `age_ns` is the transition's age at save time (steady-clock ticks
  /// are meaningless across processes); -1 = no transition had fired.
  struct Seed {
    net::SocketAddress peer;
    std::uint64_t sender_id = 0;
    std::string app;
    config::QosRequirements qos;
    detect::Output last = detect::Output::Trust;
    std::int64_t age_ns = -1;

    // Not defaulted: QosRequirements carries no operator==.
    friend bool operator==(const Seed& a, const Seed& b) {
      return a.peer == b.peer && a.sender_id == b.sender_id && a.app == b.app &&
             a.qos.td_upper_s == b.qos.td_upper_s &&
             a.qos.tmr_upper_per_s == b.qos.tmr_upper_per_s &&
             a.qos.tm_upper_s == b.qos.tm_upper_s && a.last == b.last &&
             a.age_ns == b.age_ns;
    }
  };

  std::int64_t saved_wall_ns = 0;  ///< CLOCK_REALTIME at save
  std::vector<Seed> seeds;
  /// Federation child registry: node ids that had identified themselves
  /// via Digest before the crash (so the restarted parent re-sends a
  /// full Delegate when each child reconnects).
  std::vector<std::uint64_t> fed_children;
};

enum class SnapshotLoadStatus {
  kOk,
  kMissing,     ///< no file at the path (normal cold start)
  kIoError,     ///< open/read failed for another reason
  kBadMagic,    ///< not a snapshot file
  kBadVersion,  ///< version skew: reject and cold-start, never guess
  kCorrupt,     ///< checksum / structure violation
};

[[nodiscard]] const char* to_string(SnapshotLoadStatus status) noexcept;

struct SnapshotLoadResult {
  SnapshotLoadStatus status = SnapshotLoadStatus::kMissing;
  SnapshotData data;

  [[nodiscard]] bool ok() const noexcept {
    return status == SnapshotLoadStatus::kOk;
  }
};

/// FNV-1a 64 over `data` (the file's integrity primitive; exposed for
/// tests that forge corrupted files).
[[nodiscard]] std::uint64_t snapshot_checksum(std::span<const std::byte> data) noexcept;

/// Serialises `data` into complete file bytes (header + body + checksum).
[[nodiscard]] std::vector<std::byte> encode_snapshot(const SnapshotData& data);

/// Strict decode of complete file bytes. Returns the typed status;
/// `out` is only meaningful on kOk.
SnapshotLoadStatus decode_snapshot(std::span<const std::byte> bytes,
                                   SnapshotData& out);

/// Atomic save: writes `<path>.tmp`, fsyncs, renames over `path`.
/// Returns false (and leaves any previous snapshot untouched) on error.
bool save_snapshot_file(const std::string& path, const SnapshotData& data);
/// Same, for pre-encoded file bytes (callers that also want the size).
bool save_snapshot_bytes(const std::string& path, std::span<const std::byte> bytes);

/// Loads and decodes `path`; never throws.
[[nodiscard]] SnapshotLoadResult load_snapshot_file(const std::string& path);

/// Maps a decoded seed's persisted age into the loading process's
/// steady-clock domain: since = steady_now - downtime - age, clamped to
/// [1, steady_now], where downtime = wall_now - saved_wall (clamped to
/// >= 0 so a skewed wall clock cannot push `since` into the future).
/// age < 0 (no transition before the save) maps to 0.
[[nodiscard]] Tick rebase_seed_since(std::int64_t age_ns, std::int64_t saved_wall_ns,
                                     std::int64_t wall_now_ns, Tick steady_now) noexcept;

/// CLOCK_REALTIME in nanoseconds (the snapshot's cross-process clock).
[[nodiscard]] std::int64_t wall_now_ns() noexcept;

}  // namespace twfd::api

#include "api/fdaas_server.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "obs/exporters.hpp"

namespace twfd::api {

FdaasServer::Stats& FdaasServer::Stats::operator+=(const Stats& o) {
  sessions_accepted += o.sessions_accepted;
  sessions_active += o.sessions_active;
  sessions_rejected += o.sessions_rejected;
  subscriptions_active += o.subscriptions_active;
  subscriptions_total += o.subscriptions_total;
  frames_received += o.frames_received;
  frames_malformed += o.frames_malformed;
  events_pushed += o.events_pushed;
  events_unroutable += o.events_unroutable;
  slow_evictions += o.slow_evictions;
  lease_expiries += o.lease_expiries;
  disconnects += o.disconnects;
  accept_resource_failures += o.accept_resource_failures;
  accept_aborted += o.accept_aborted;
  conn_soft_errors += o.conn_soft_errors;
  bytes_sent += o.bytes_sent;
  bytes_received += o.bytes_received;
  health_broadcasts += o.health_broadcasts;
  post_retries += o.post_retries;
  post_stalls += o.post_stalls;
  digests_ingested += o.digests_ingested;
  digest_entries_applied += o.digest_entries_applied;
  digest_entries_stale += o.digest_entries_stale;
  digest_entries_foreign += o.digest_entries_foreign;
  digest_frames_flushed += o.digest_frames_flushed;
  fed_subscriptions_active += o.fed_subscriptions_active;
  fed_events_pushed += o.fed_events_pushed;
  delegates_sent += o.delegates_sent;
  snapshot_saves += o.snapshot_saves;
  snapshot_save_failures += o.snapshot_save_failures;
  snapshot_restored_subs += o.snapshot_restored_subs;
  snapshot_replayed_transitions += o.snapshot_replayed_transitions;
  orphans_active += o.orphans_active;
  orphans_claimed += o.orphans_claimed;
  orphans_expired += o.orphans_expired;
  snapshot_age_ns += o.snapshot_age_ns;
  snapshot_bytes += o.snapshot_bytes;
  fed_children_restored += o.fed_children_restored;
  return *this;
}

FdaasServer::FdaasServer(shard::ShardedMonitorService& service, Params params)
    : service_(service),
      params_(std::move(params)),
      listener_({params_.port}),
      loop_(std::make_unique<net::EventLoop>(std::uint16_t{0})),
      commands_(256) {
  TWFD_CHECK_MSG(params_.lease > 0, "lease must be positive");
  TWFD_CHECK_MSG(params_.poll_interval > 0, "poll_interval must be positive");
  if (params_.registry != nullptr) init_obs();
}

void FdaasServer::init_obs() {
  obs::Registry& r = *params_.registry;
  obs_export_ = std::make_unique<obs::FdaasExport>(r);
  obs_loop_export_ =
      std::make_unique<obs::EventLoopExport>(r, obs::make_labels({{"loop", "api"}}));
  obs_event_latency_ = &r.histogram(
      "twfd_api_event_latency_seconds",
      "Shard transition to client send-queue latency.",
      {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0});
}

void FdaasServer::refresh_obs() {
  if (obs_export_ == nullptr) return;
  obs_export_->update(collect_stats());
  obs_loop_export_->update(loop_->stats());
}

FdaasServer::~FdaasServer() { stop(); }

void FdaasServer::set_child_reattach_hook(
    std::function<void(std::uint64_t)> hook) {
  TWFD_CHECK_MSG(!running_, "set_child_reattach_hook() must precede start()");
  child_reattach_hook_ = std::move(hook);
}

void FdaasServer::start() {
  TWFD_CHECK_MSG(!running_, "server already started");
  // Restore before the API thread exists: the orphan maps are built
  // single-threaded here and only ever touched by the API thread after
  // the spawn below (thread creation orders the writes).
  if (persistence_enabled() && !restore_attempted_) {
    restore_attempted_ = true;  // an in-process re-start() must not double-seed
    restore_from_snapshot();
  }
  stop_requested_.store(false, std::memory_order_release);
  running_ = true;
  thread_ = std::thread([this] { worker_main(); });
}

void FdaasServer::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_release);
  loop_->stop();
  if (thread_.joinable()) thread_.join();
  running_ = false;
  Command cmd;
  while (commands_.try_pop(cmd)) cmd = nullptr;  // waiters see broken_promise
}

void FdaasServer::attach_federation(
    FederationAdapter* adapter,
    std::function<void(std::vector<DigestMsg>)> upstream_sink) {
  TWFD_CHECK_MSG(!running_, "attach_federation() must precede start()");
  TWFD_CHECK_MSG(adapter != nullptr, "null federation adapter");
  adapter_ = adapter;
  upstream_sink_ = std::move(upstream_sink);
  adapter_->set_transition_sink(
      [this](const DigestEntry& e) { fed_fanout(e); });
}

void FdaasServer::run_on_api_thread(const std::function<void()>& fn) {
  if (!running_) {
    fn();
    return;
  }
  auto prom = std::make_shared<std::promise<void>>();
  auto fut = prom->get_future();
  post([&fn, prom] {
    fn();
    prom->set_value();
  });
  fut.get();
}

bool FdaasServer::send_delegate(std::uint64_t child_node, DelegateMsg msg) {
  bool sent = false;
  run_on_api_thread([this, child_node, &msg, &sent] {
    const auto child = child_sessions_.find(child_node);
    if (child == child_sessions_.end()) return;
    const auto it = sessions_.find(child->second);
    if (it == sessions_.end()) return;
    if (send_frame(*it->second, msg)) {
      ++stats_.delegates_sent;
      sent = true;
    }
  });
  return sent;
}

void FdaasServer::worker_main() {
  loop_->set_wake_handler([this] { drain_commands(); });
  loop_->watch_fd(listener_.fd(), net::kFdRead,
                  [this](unsigned) { on_accept(); });
  arm_poll_timer();
  arm_lease_timer();
  if (adapter_ != nullptr) arm_fed_flush_timer();
  if (persistence_enabled() && params_.snapshot_interval > 0) arm_snapshot_timer();

  while (!stop_requested_.load(std::memory_order_acquire)) {
    loop_->run_until(kTickInfinity);
  }

  // Teardown (single-threaded: the loop no longer runs). The final
  // snapshot is flushed FIRST: close_session releases every client
  // subscription, so saving after the close loop would persist an empty
  // registry and a graceful restart would cold-start.
  if (persistence_enabled()) save_snapshot();
  // Sessions are closed and their subscriptions released while the
  // monitoring service is still up — the documented shutdown order is
  // server before service.
  std::vector<std::uint64_t> sids;
  sids.reserve(sessions_.size());
  for (const auto& [sid, s] : sessions_) sids.push_back(sid);
  for (const std::uint64_t sid : sids) close_session(sid);
  loop_->unwatch_fd(listener_.fd());
  loop_->cancel(poll_timer_);
  loop_->cancel(lease_timer_);
  if (fed_flush_timer_ != kInvalidTimer) loop_->cancel(fed_flush_timer_);
  if (snapshot_timer_ != kInvalidTimer) loop_->cancel(snapshot_timer_);
}

void FdaasServer::drain_commands() {
  Command cmd;
  while (commands_.try_pop(cmd)) {
    cmd();
    cmd = nullptr;
  }
  if (stop_requested_.load(std::memory_order_acquire)) loop_->stop();
}

void FdaasServer::post(Command cmd) {
  // Bounded backoff ladder (mirrors ShardedMonitorService::post): a
  // wedged API thread must not livelock its callers.
  constexpr int kYieldRounds = 64;
  constexpr int kSleepRounds = 200;  // 200 x 1 ms ≈ 200 ms worst case
  for (int attempt = 0;; ++attempt) {
    if (commands_.try_push(std::move(cmd))) break;
    post_retries_.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= kYieldRounds + kSleepRounds) {
      post_stalls_.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("fdaas: command queue wedged, post abandoned");
    }
    loop_->wake();
    if (attempt < kYieldRounds) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  loop_->wake();
}

void FdaasServer::arm_poll_timer() {
  poll_timer_ = loop_->schedule_at(loop_->now() + params_.poll_interval, [this] {
    service_.poll_events(
        [this](const shard::ShardedMonitorService::StatusEvent& e) {
          deliver(e);
        });
    refresh_obs();
    arm_poll_timer();
  });
}

void FdaasServer::arm_fed_flush_timer() {
  // Half the adapter's flush interval: the core's own due() gate keeps
  // the actual emission cadence at flush_interval, while the finer
  // timer bounds the alignment slack, so worst-case digest latency
  // stays within the 2 x flush_interval budget the T_D^U check charges.
  const Tick period =
      std::max<Tick>(adapter_->flush_interval() / 2, ticks_from_ms(1));
  fed_flush_timer_ = loop_->schedule_at(loop_->now() + period, [this] {
    auto frames = adapter_->flush(loop_->now());
    if (!frames.empty()) {
      stats_.digest_frames_flushed += frames.size();
      if (upstream_sink_) upstream_sink_(std::move(frames));
    }
    arm_fed_flush_timer();
  });
}

void FdaasServer::arm_lease_timer() {
  const Tick period = std::max<Tick>(params_.lease / 4, ticks_from_ms(20));
  lease_timer_ = loop_->schedule_at(loop_->now() + period, [this] {
    expire_leases();
    sweep_orphans();
    arm_lease_timer();
  });
}

// --- Crash persistence ------------------------------------------------------

void FdaasServer::arm_snapshot_timer() {
  snapshot_timer_ =
      loop_->schedule_at(loop_->now() + params_.snapshot_interval, [this] {
        save_snapshot();
        arm_snapshot_timer();
      });
}

void FdaasServer::restore_from_snapshot() {
  const SnapshotLoadResult loaded = load_snapshot_file(params_.snapshot_path);
  snapshot_load_status_ = loaded.status;
  if (!loaded.ok()) return;  // missing/skewed/corrupt: clean cold start

  const std::int64_t wall = wall_now_ns();
  const Tick steady_now = SteadyClock{}.now();
  const Tick expires = steady_now + params_.orphan_ttl;
  for (const SnapshotData::Seed& seed : loaded.data.seeds) {
    shard::ShardedMonitorService::SubscriptionSeed s;
    s.peer = seed.peer;
    s.sender_id = seed.sender_id;
    s.app = seed.app;
    s.qos = seed.qos;
    s.last = seed.last;
    s.since = rebase_seed_since(seed.age_ns, loaded.data.saved_wall_ns, wall,
                                steady_now);
    std::uint64_t gid = 0;
    try {
      gid = service_.import_seed(s);
    } catch (...) {
      continue;  // infeasible under today's network estimate: drop the seed
    }
    const OrphanKey key{s.peer.ip_host_order, s.peer.port, s.sender_id, s.app};
    orphans_[gid] = Orphan{gid, std::move(s), expires};
    orphan_index_[key] = gid;
    ++stats_.snapshot_restored_subs;
  }
  for (const std::uint64_t node : loaded.data.fed_children) {
    restored_fed_children_.insert(node);
  }
}

bool FdaasServer::save_snapshot() {
  if (!persistence_enabled()) return false;
  SnapshotData data;
  data.saved_wall_ns = wall_now_ns();
  const Tick steady_now = loop_->now();
  const auto seeds = service_.export_seeds();
  data.seeds.reserve(seeds.size());
  for (const auto& seed : seeds) {
    SnapshotData::Seed s;
    s.peer = seed.peer;
    s.sender_id = seed.sender_id;
    s.app = seed.app;
    s.qos = seed.qos;
    s.last = seed.last;
    s.age_ns = seed.since == 0 ? -1 : std::max<Tick>(0, steady_now - seed.since);
    data.seeds.push_back(std::move(s));
  }
  for (const auto& [node, sid] : child_sessions_) data.fed_children.push_back(node);
  // Restored children that have not redialled yet stay persisted: a
  // crash during *their* outage must not forget them.
  for (const std::uint64_t node : restored_fed_children_) {
    if (child_sessions_.find(node) == child_sessions_.end()) {
      data.fed_children.push_back(node);
    }
  }
  const std::vector<std::byte> bytes = encode_snapshot(data);
  if (!save_snapshot_bytes(params_.snapshot_path, bytes)) {
    ++stats_.snapshot_save_failures;
    return false;
  }
  ++stats_.snapshot_saves;
  last_save_wall_ns_ = data.saved_wall_ns;
  last_save_bytes_ = bytes.size();
  return true;
}

bool FdaasServer::save_snapshot_now() {
  if (!persistence_enabled()) return false;
  if (!running_) return save_snapshot();
  bool ok = false;
  run_on_api_thread([this, &ok] { ok = save_snapshot(); });
  return ok;
}

void FdaasServer::drop_orphan(std::map<std::uint64_t, Orphan>::iterator it,
                              bool unsubscribe) {
  const Orphan& o = it->second;
  orphan_index_.erase(OrphanKey{o.seed.peer.ip_host_order, o.seed.peer.port,
                               o.seed.sender_id, o.seed.app});
  if (unsubscribe && service_.running()) {
    try {
      service_.unsubscribe(o.gid);
    } catch (...) {
      // Service raced into shutdown; its own stop() discards state.
    }
  }
  orphans_.erase(it);
}

void FdaasServer::sweep_orphans() {
  if (orphans_.empty()) return;
  const Tick now = loop_->now();
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    if (it->second.expires <= now) {
      auto doomed = it++;
      drop_orphan(doomed, /*unsubscribe=*/true);
      ++stats_.orphans_expired;
    } else {
      ++it;
    }
  }
}

std::uint64_t FdaasServer::try_claim_orphan(const SubscribeRequest& sub) {
  const auto idx = orphan_index_.find(
      OrphanKey{sub.peer.ip_host_order, sub.peer.port, sub.sender_id, sub.app});
  if (idx == orphan_index_.end()) return 0;
  const auto it = orphans_.find(idx->second);
  TWFD_CHECK(it != orphans_.end());
  const Orphan& orphan = it->second;

  // The orphan's current view verdict — primed at restore, possibly
  // flipped since by a live transition — is the client's starting point.
  detect::Output out = orphan.seed.last;
  Tick since = orphan.seed.since;
  const auto view = service_.view();
  const auto entry = std::lower_bound(
      view->entries.begin(), view->entries.end(), orphan.gid,
      [](const shard::ShardedMonitorService::Snapshot::Entry& e, std::uint64_t id) {
        return e.subscription < id;
      });
  if (entry != view->entries.end() && entry->subscription == orphan.gid) {
    out = entry->output;
    since = entry->since;
  }

  // Create the client's subscription FIRST (under the client's QoS,
  // which may differ from the persisted tuple), then retire the orphan:
  // the peer's remote keeps at least one subscriber throughout, so its
  // warm arrival estimation is never evicted. Throws (infeasible QoS)
  // propagate to the caller's error path with the orphan intact.
  const std::uint64_t id =
      service_.subscribe(sub.peer, sub.sender_id, sub.app, sub.qos, {out, since});
  if (out != orphan.seed.last) ++stats_.snapshot_replayed_transitions;
  drop_orphan(it, /*unsubscribe=*/true);
  ++stats_.orphans_claimed;
  return id;
}

void FdaasServer::on_accept() {
  while (auto accepted = listener_.accept()) {
    if (sessions_.size() >= params_.max_sessions) {
      ++stats_.sessions_rejected;
      ::close(accepted->fd);
      continue;
    }
    auto session = std::make_unique<Session>();
    session->id = next_session_id_++;
    session->conn = net::TcpConn(accepted->fd);
    session->peer = accepted->peer;
    session->lease_deadline = loop_->now() + params_.lease;
    if (params_.conn_sndbuf_bytes > 0) {
      session->conn.set_send_buffer(params_.conn_sndbuf_bytes);
    }
    const std::uint64_t sid = session->id;
    loop_->watch_fd(session->conn.fd(), net::kFdRead,
                    [this, sid](unsigned events) { on_session_io(sid, events); });
    sessions_.emplace(sid, std::move(session));
    ++stats_.sessions_accepted;
  }
  // Descriptor exhaustion: the pending connection stays in the backlog
  // and poll() would report the listener readable in a tight loop. Park
  // accept interest and retry after a delay, like UdpSocket's soft-send
  // accounting this is counted, never thrown.
  const std::uint64_t failures = listener_.resource_failures();
  if (failures > seen_resource_failures_ && !accept_parked_) {
    seen_resource_failures_ = failures;
    accept_parked_ = true;
    loop_->update_fd(listener_.fd(), 0);
    loop_->schedule_at(loop_->now() + params_.accept_retry_delay, [this] {
      accept_parked_ = false;
      loop_->update_fd(listener_.fd(), net::kFdRead);
    });
  }
}

void FdaasServer::on_session_io(std::uint64_t sid, unsigned events) {
  if (events & net::kFdWrite) {
    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) return;
    if (!flush(*it->second)) return;  // closed during flush
  }
  if (events & net::kFdRead) on_readable(sid);
}

void FdaasServer::on_readable(std::uint64_t sid) {
  std::byte buf[4096];
  for (;;) {
    auto it = sessions_.find(sid);
    if (it == sessions_.end()) return;
    Session& s = *it->second;

    const auto r = s.conn.read_some(buf);
    if (r.status == net::TcpConn::IoStatus::kWouldBlock) return;
    if (r.status == net::TcpConn::IoStatus::kClosed) {
      ++stats_.disconnects;
      close_session(sid);
      return;
    }
    stats_.bytes_received += r.bytes;
    s.rx.push(std::span<const std::byte>(buf, r.bytes));

    for (;;) {
      auto body = s.rx.next();
      if (!body) break;
      ++stats_.frames_received;
      auto msg = decode_body(*body);
      if (!msg) {
        ++stats_.frames_malformed;
        close_session(sid);
        return;
      }
      s.lease_deadline = loop_->now() + params_.lease;
      if (!handle_message(sid, std::move(*msg))) return;
      // handle_message may have flushed; the session object is stable
      // (node-based map) but re-check existence on the next iteration.
      if (sessions_.find(sid) == sessions_.end()) return;
    }
    if (s.rx.corrupt()) {
      ++stats_.frames_malformed;
      close_session(sid);
      return;
    }
  }
}

bool FdaasServer::handle_message(std::uint64_t sid, ControlMessage msg) {
  const auto it = sessions_.find(sid);
  if (it == sessions_.end()) return false;
  Session& s = *it->second;

  if (auto* sub = std::get_if<SubscribeRequest>(&msg)) {
    if (s.subs.size() + s.fed_subs.size() >=
        params_.max_subscriptions_per_session) {
      return send_frame(s, ErrorMsg{sub->request_id, ErrorCode::kLimit,
                                    "subscription limit reached"});
    }
    if (is_fed_subscribe(*sub)) return handle_fed_subscribe(s, *sub);
    std::uint64_t id = 0;
    try {
      // A restored orphan with this exact identity hands over its warm,
      // verdict-primed detector; otherwise this is a cold subscribe.
      id = try_claim_orphan(*sub);
      if (id == 0) {
        id = service_.subscribe(sub->peer, sub->sender_id, sub->app, sub->qos);
      }
    } catch (const std::logic_error& e) {
      return send_frame(
          s, ErrorMsg{sub->request_id, ErrorCode::kInfeasibleQos, e.what()});
    } catch (...) {
      return send_frame(s, ErrorMsg{sub->request_id, ErrorCode::kInternal,
                                    "subscribe failed"});
    }
    s.subs.insert(id);
    sub_owner_[id] = sid;
    ++stats_.subscriptions_total;
    return send_frame(s, SubscribeOk{sub->request_id, id});
  }

  if (auto* unsub = std::get_if<UnsubscribeRequest>(&msg)) {
    if ((unsub->subscription_id & kFedSubBit) != 0) {
      if (s.fed_subs.erase(unsub->subscription_id) == 0) {
        return send_frame(
            s, ErrorMsg{unsub->request_id, ErrorCode::kUnknownSubscription,
                        "not a subscription of this session"});
      }
      const auto fed = fed_subs_.find(unsub->subscription_id);
      if (fed != fed_subs_.end()) {
        auto by_key = fed_subs_by_key_.find(fed->second.key);
        if (by_key != fed_subs_by_key_.end()) {
          by_key->second.erase(unsub->subscription_id);
          if (by_key->second.empty()) fed_subs_by_key_.erase(by_key);
        }
        fed_subs_.erase(fed);
      }
      return send_frame(s, UnsubscribeOk{unsub->request_id});
    }
    if (s.subs.erase(unsub->subscription_id) == 0) {
      return send_frame(s,
                        ErrorMsg{unsub->request_id, ErrorCode::kUnknownSubscription,
                                 "not a subscription of this session"});
    }
    sub_owner_.erase(unsub->subscription_id);
    service_.unsubscribe(unsub->subscription_id);
    return send_frame(s, UnsubscribeOk{unsub->request_id});
  }

  if (auto* snap = std::get_if<SnapshotRequest>(&msg)) {
    SnapshotReply reply{snap->request_id, {}};
    const auto view = service_.view();
    for (const auto& e : view->entries) {
      if (s.subs.count(e.subscription) == 0) continue;
      if (reply.entries.size() >= kMaxSnapshotEntries) break;
      reply.entries.push_back({e.subscription, e.output, e.since});
    }
    // Federated subscriptions answer from the adapter's liveness table;
    // a peer with no known state yet defaults to Trust-since-never,
    // matching a local detector that has not transitioned.
    for (const std::uint64_t fid : s.fed_subs) {
      if (reply.entries.size() >= kMaxSnapshotEntries) break;
      const auto fed = fed_subs_.find(fid);
      if (fed == fed_subs_.end()) continue;
      const auto state = adapter_->peer_state(fed->second.key);
      if (state.has_value()) {
        reply.entries.push_back({fid, state->output, state->when});
      } else {
        reply.entries.push_back({fid, detect::Output::Trust, 0});
      }
    }
    return send_frame(s, reply);
  }

  if (auto* digest = std::get_if<DigestMsg>(&msg)) {
    return handle_digest(s, *digest);
  }

  if (auto* ping = std::get_if<PingMsg>(&msg)) {
    return send_frame(
        s, PongMsg{ping->nonce,
                   static_cast<std::uint64_t>(params_.lease / ticks_from_ms(1))});
  }

  // Server-bound streams must only carry the request types (plus child
  // Digest pushes, handled above); a client echoing server frames is
  // broken or hostile.
  ++stats_.frames_malformed;
  close_session(sid);
  return false;
}

bool FdaasServer::is_fed_subscribe(const SubscribeRequest& sub) const {
  // A zero peer address can never name a monitorable process; with a
  // federation core attached it addresses the federated peer whose
  // 64-bit key rides in sender_id.
  return adapter_ != nullptr && sub.peer.ip_host_order == 0 &&
         sub.peer.port == 0;
}

bool FdaasServer::handle_fed_subscribe(Session& s, const SubscribeRequest& sub) {
  // The subscriber's detection-latency budget must absorb the digest
  // pipeline: each federation level adds up to ~2 x flush_interval
  // (flush alignment + push). One level is the floor we can check here.
  const Tick budget = static_cast<Tick>(sub.qos.td_upper_s * 1e9);
  if (budget <= 2 * adapter_->flush_interval()) {
    return send_frame(
        s, ErrorMsg{sub.request_id, ErrorCode::kInfeasibleQos,
                    "TD upper bound inside the digest flush latency budget"});
  }
  const std::uint64_t key = sub.sender_id;
  const std::uint64_t id = kFedSubBit | next_fed_sub_++;
  s.fed_subs.insert(id);
  fed_subs_.emplace(id, FedSub{s.id, key});
  fed_subs_by_key_[key].insert(id);
  ++stats_.subscriptions_total;
  if (!send_frame(s, SubscribeOk{sub.request_id, id})) return false;
  // Prime the subscriber with the current verdict when one is known, so
  // a peer that went Suspect before the subscribe still surfaces.
  if (const auto state = adapter_->peer_state(key); state.has_value()) {
    if (!send_frame(s, EventMsg{id, state->output, state->when})) return false;
    ++stats_.events_pushed;
    ++stats_.fed_events_pushed;
  }
  return true;
}

bool FdaasServer::handle_digest(Session& s, const DigestMsg& digest) {
  if (adapter_ == nullptr) {
    // Not a federation node: a Digest here is as hostile as any other
    // server-typed frame on a server-bound stream.
    ++stats_.frames_malformed;
    close_session(s.id);
    return false;
  }
  // First Digest identifies the child; the latest session claiming a
  // node id wins (a restarted child redials before its old session
  // expires, and Delegate frames must reach the live connection).
  s.fed_node_id = digest.node_id;
  child_sessions_[digest.node_id] = s.id;
  // A child the loaded snapshot knew about is back: cue the owner to
  // re-send its Delegate, restoring the delegation the crash wiped.
  if (restored_fed_children_.erase(digest.node_id) > 0) {
    ++stats_.fed_children_restored;
    if (child_reattach_hook_) child_reattach_hook_(digest.node_id);
  }
  const auto result = adapter_->ingest_digest(digest.node_id, digest);
  ++stats_.digests_ingested;
  stats_.digest_entries_applied += result.applied;
  stats_.digest_entries_stale += result.stale;
  stats_.digest_entries_foreign += result.foreign;
  return true;
}

void FdaasServer::fed_fanout(const DigestEntry& entry) {
  const auto by_key = fed_subs_by_key_.find(entry.peer_key);
  if (by_key == fed_subs_by_key_.end()) return;
  // Snapshot the ids: send_frame can evict a slow session, which
  // mutates fed_subs_by_key_ through close_session.
  std::vector<std::uint64_t> ids(by_key->second.begin(), by_key->second.end());
  for (const std::uint64_t fid : ids) {
    const auto fed = fed_subs_.find(fid);
    if (fed == fed_subs_.end()) continue;
    const auto it = sessions_.find(fed->second.sid);
    if (it == sessions_.end()) continue;
    if (send_frame(*it->second, EventMsg{fid, entry.output, entry.when})) {
      ++stats_.events_pushed;
      ++stats_.fed_events_pushed;
    }
  }
}

void FdaasServer::deliver(const shard::ShardedMonitorService::StatusEvent& event) {
  if (obs_event_latency_ != nullptr && event.when > 0) {
    const Tick lag = loop_->now() - event.when;
    obs_event_latency_->observe(lag > 0 ? to_seconds(lag) : 0.0);
  }
  if (event.subscription == shard::ShardedMonitorService::kHealthSubscription) {
    // Shard health transitions (degraded/recovered) are session-agnostic:
    // fan them out to every session. Session ids are snapshotted first
    // because send_frame may evict a slow client and mutate sessions_.
    std::vector<std::uint64_t> ids;
    ids.reserve(sessions_.size());
    for (const auto& [sid, s] : sessions_) ids.push_back(sid);
    for (const std::uint64_t sid : ids) {
      const auto it = sessions_.find(sid);
      if (it == sessions_.end()) continue;
      if (send_frame(*it->second,
                     EventMsg{event.subscription, event.output, event.when})) {
        ++stats_.events_pushed;
        ++stats_.health_broadcasts;
      }
    }
    return;
  }
  const auto owner = sub_owner_.find(event.subscription);
  if (owner == sub_owner_.end()) {
    // Orphans are server-owned by design: their transitions update the
    // view (where a claiming client will read them), they are not lost
    // deliveries.
    if (orphans_.find(event.subscription) == orphans_.end()) {
      ++stats_.events_unroutable;
    }
    return;
  }
  const auto it = sessions_.find(owner->second);
  if (it == sessions_.end()) {
    ++stats_.events_unroutable;
    return;
  }
  if (send_frame(*it->second,
                 EventMsg{event.subscription, event.output, event.when})) {
    ++stats_.events_pushed;
  }
}

bool FdaasServer::send_frame(Session& s, const ControlMessage& msg) {
  const std::vector<std::byte> frame = encode_frame(msg);
  const std::size_t pending = s.tx.size() - s.tx_pos;
  if (pending + frame.size() > params_.max_send_queue_bytes) {
    // Slow client: its backlog would exceed the cap. Evict — the shards
    // and every healthy session keep their cadence.
    ++stats_.slow_evictions;
    close_session(s.id);
    return false;
  }
  s.tx.insert(s.tx.end(), frame.begin(), frame.end());
  return flush(s);
}

bool FdaasServer::flush(Session& s) {
  while (s.tx_pos < s.tx.size()) {
    const auto w = s.conn.write_some(
        std::span<const std::byte>(s.tx.data() + s.tx_pos, s.tx.size() - s.tx_pos));
    if (w.status == net::TcpConn::IoStatus::kClosed) {
      ++stats_.disconnects;
      close_session(s.id);
      return false;
    }
    if (w.status == net::TcpConn::IoStatus::kWouldBlock) break;
    stats_.bytes_sent += w.bytes;
    s.tx_pos += w.bytes;
  }
  if (s.tx_pos >= s.tx.size()) {
    s.tx.clear();
    s.tx_pos = 0;
    if (s.want_write) {
      s.want_write = false;
      loop_->update_fd(s.conn.fd(), net::kFdRead);
    }
  } else {
    if (s.tx_pos > 4096 && s.tx_pos * 2 >= s.tx.size()) {
      s.tx.erase(s.tx.begin(), s.tx.begin() + s.tx_pos);
      s.tx_pos = 0;
    }
    if (!s.want_write) {
      s.want_write = true;
      loop_->update_fd(s.conn.fd(), net::kFdRead | net::kFdWrite);
    }
  }
  return true;
}

void FdaasServer::close_session(std::uint64_t sid) {
  const auto it = sessions_.find(sid);
  if (it == sessions_.end()) return;
  Session& s = *it->second;
  loop_->unwatch_fd(s.conn.fd());
  for (const std::uint64_t sub : s.subs) {
    sub_owner_.erase(sub);
    if (service_.running()) {
      try {
        service_.unsubscribe(sub);
      } catch (...) {
        // Service raced into shutdown; its own stop() discards state.
      }
    }
  }
  for (const std::uint64_t fid : s.fed_subs) {
    const auto fed = fed_subs_.find(fid);
    if (fed == fed_subs_.end()) continue;
    auto by_key = fed_subs_by_key_.find(fed->second.key);
    if (by_key != fed_subs_by_key_.end()) {
      by_key->second.erase(fid);
      if (by_key->second.empty()) fed_subs_by_key_.erase(by_key);
    }
    fed_subs_.erase(fed);
  }
  if (s.fed_node_id != 0) {
    // Only drop the child binding if this session still holds it — a
    // restarted child may have re-registered on a fresh session already.
    const auto child = child_sessions_.find(s.fed_node_id);
    if (child != child_sessions_.end() && child->second == sid) {
      child_sessions_.erase(child);
    }
  }
  stats_.conn_soft_errors += s.conn.soft_errors();
  s.conn.close();
  sessions_.erase(it);
}

void FdaasServer::expire_leases() {
  const Tick now = loop_->now();
  std::vector<std::uint64_t> expired;
  for (const auto& [sid, s] : sessions_) {
    if (s->lease_deadline <= now) expired.push_back(sid);
  }
  for (const std::uint64_t sid : expired) {
    ++stats_.lease_expiries;
    close_session(sid);
  }
}

FdaasServer::Stats FdaasServer::collect_stats() {
  Stats out = stats_;
  out.sessions_active = sessions_.size();
  out.subscriptions_active = sub_owner_.size();
  out.fed_subscriptions_active = fed_subs_.size();
  out.accept_resource_failures = listener_.resource_failures();
  out.accept_aborted = listener_.aborted_accepts();
  out.post_retries = post_retries_.load(std::memory_order_relaxed);
  out.post_stalls = post_stalls_.load(std::memory_order_relaxed);
  out.orphans_active = orphans_.size();
  out.snapshot_bytes = last_save_bytes_;
  if (last_save_wall_ns_ > 0) {
    out.snapshot_age_ns = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, wall_now_ns() - last_save_wall_ns_));
  }
  return out;
}

FdaasServer::Stats FdaasServer::stats() {
  if (!running_) return collect_stats();
  auto prom = std::make_shared<std::promise<Stats>>();
  auto fut = prom->get_future();
  post([this, prom] { prom->set_value(collect_stats()); });
  return fut.get();
}

void FdaasServer::inject_events(
    std::vector<shard::ShardedMonitorService::StatusEvent> events) {
  TWFD_CHECK_MSG(running_, "inject_events() requires a started server");
  auto prom = std::make_shared<std::promise<void>>();
  auto fut = prom->get_future();
  post([this, evs = std::move(events), prom] {
    for (const auto& e : evs) deliver(e);
    prom->set_value();
  });
  fut.get();
}

}  // namespace twfd::api

// FDaaS control plane: serves Suspect/Trust verdicts from a
// shard::ShardedMonitorService to remote TCP subscribers.
//
// One FdaasServer runs one API thread with a private net::EventLoop.
// That thread owns every session object and all server counters — the
// same shard-confinement discipline as the monitoring shards — and is,
// by construction, the sole caller of ShardedMonitorService::
// poll_events(), draining transitions on a fixed cadence and pushing
// them as EVENT frames to the owning sessions. Toward the shards the
// API thread is an ordinary control-plane client (subscribe/unsubscribe
// marshal commands and block briefly on the owning shard); no shard
// thread ever blocks on the API thread, so event delivery can never
// stall detection. See docs/runtime.md "The FDaaS API thread".
//
// Sessions are defended in three ways (docs/protocol.md):
//   * bounded per-session send queues — a client that stops reading is
//     evicted the moment its backlog would exceed the cap, so one slow
//     subscriber cannot hold memory or delay the delivery loop;
//   * lease-based expiry — a half-open client (network gone, no FIN)
//     stops renewing and is reclaimed, subscriptions included;
//   * a poisoned stream (bad magic, hostile length prefix) drops the
//     session immediately; counters record every such exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "api/control.hpp"
#include "api/federation_hooks.hpp"
#include "api/snapshot.hpp"
#include "common/mpsc_queue.hpp"
#include "net/event_loop.hpp"
#include "net/tcp.hpp"
#include "shard/sharded_monitor_service.hpp"

namespace twfd::obs {
class EventLoopExport;  // obs/exporters.hpp (header-only; including it
class FdaasExport;      // here would cycle back into this header)
}  // namespace twfd::obs

namespace twfd::api {

class FdaasServer {
 public:
  struct Params {
    std::uint16_t port = 0;  ///< TCP listen port (0 = ephemeral)
    /// Session lease; any well-formed inbound frame renews it. A session
    /// silent for a full lease is expired and its subscriptions released.
    Tick lease = ticks_from_sec(10);
    /// Cadence of the poll_events() drain (event push latency bound).
    Tick poll_interval = ticks_from_ms(20);
    /// Per-session cap on unsent bytes; exceeding it evicts the session.
    std::size_t max_send_queue_bytes = 256 * 1024;
    std::size_t max_sessions = 1024;
    std::size_t max_subscriptions_per_session = 1024;
    /// Back-off before re-arming accept after descriptor exhaustion.
    Tick accept_retry_delay = ticks_from_ms(100);
    /// SO_SNDBUF per accepted connection (0 = kernel default; tests
    /// shrink it to provoke backpressure deterministically).
    int conn_sndbuf_bytes = 0;
    /// Optional obs registry: the server mirrors its Stats (and its
    /// private event loop's stats) into twfd_api_* / twfd_fed_* metrics
    /// on every poll tick and records an event-delivery-latency
    /// histogram. Must outlive the server.
    obs::Registry* registry = nullptr;
    /// Crash persistence (empty = disabled). start() loads this snapshot
    /// file and re-seeds every persisted subscription — verdicts primed —
    /// as a server-owned *orphan*; a client that re-subscribes to the
    /// same (peer, sender_id, app) claims the warm detector and observes
    /// the net missed transition through the usual snapshot
    /// reconciliation, exactly like a TCP outage. The file is rewritten
    /// every snapshot_interval and once more on graceful stop().
    std::string snapshot_path;
    Tick snapshot_interval = ticks_from_sec(2);
    /// How long an orphan waits for its client before being dropped.
    Tick orphan_ttl = ticks_from_sec(60);
  };

  /// Server observability (API-thread counters; gauges are instantaneous).
  struct Stats {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t sessions_active = 0;    ///< gauge
    std::uint64_t sessions_rejected = 0;  ///< over max_sessions
    std::uint64_t subscriptions_active = 0;  ///< gauge
    std::uint64_t subscriptions_total = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t frames_malformed = 0;  ///< bad body / hostile prefix
    std::uint64_t events_pushed = 0;
    std::uint64_t events_unroutable = 0;  ///< no session owns the id
    std::uint64_t slow_evictions = 0;
    std::uint64_t lease_expiries = 0;
    std::uint64_t disconnects = 0;  ///< EOF / reset closes
    std::uint64_t accept_resource_failures = 0;
    std::uint64_t accept_aborted = 0;
    std::uint64_t conn_soft_errors = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t health_broadcasts = 0;  ///< shard health events fanned out
    std::uint64_t post_retries = 0;  ///< control pushes that found the queue full
    std::uint64_t post_stalls = 0;   ///< posts abandoned: queue wedged
    // Federation tier (all zero unless attach_federation() was called):
    std::uint64_t digests_ingested = 0;       ///< child Digest frames accepted
    std::uint64_t digest_entries_applied = 0;
    std::uint64_t digest_entries_stale = 0;   ///< seq-dropped (replay/failover)
    std::uint64_t digest_entries_foreign = 0; ///< outside delegated ranges
    std::uint64_t digest_frames_flushed = 0;  ///< frames handed upstream
    std::uint64_t fed_subscriptions_active = 0;  ///< gauge
    std::uint64_t fed_events_pushed = 0;  ///< subtree transitions fanned out
    std::uint64_t delegates_sent = 0;
    // Crash persistence (all zero unless Params::snapshot_path is set):
    std::uint64_t snapshot_saves = 0;
    std::uint64_t snapshot_save_failures = 0;
    std::uint64_t snapshot_restored_subs = 0;  ///< orphans seeded at start()
    /// Claims whose verdict changed across the crash window — the net
    /// transitions the restore replayed to reconnecting clients.
    std::uint64_t snapshot_replayed_transitions = 0;
    std::uint64_t orphans_active = 0;   ///< gauge
    std::uint64_t orphans_claimed = 0;
    std::uint64_t orphans_expired = 0;
    std::uint64_t snapshot_age_ns = 0;  ///< gauge: since the last good save
    std::uint64_t snapshot_bytes = 0;   ///< gauge: size of the last good save
    std::uint64_t fed_children_restored = 0;  ///< restored children re-identified

    Stats& operator+=(const Stats& o);
  };

  /// Federated subscription ids live in their own half of the id space
  /// so they can never collide with ShardedMonitorService ids (which
  /// count up from 1) and are recognisable in Unsubscribe/Snapshot.
  static constexpr std::uint64_t kFedSubBit = 1ull << 63;

  /// The service must outlive the server; stop() the server BEFORE
  /// stopping the service (teardown releases client subscriptions).
  FdaasServer(shard::ShardedMonitorService& service, Params params);
  ~FdaasServer();

  FdaasServer(const FdaasServer&) = delete;
  FdaasServer& operator=(const FdaasServer&) = delete;

  /// Spawns the API thread. The listen socket exists (and port() is
  /// valid) from construction, so clients may connect immediately.
  void start();
  /// Stops the API thread, closes every session and releases their
  /// subscriptions (when the service is still running). Idempotent.
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  [[nodiscard]] std::uint16_t port() const { return listener_.local_port(); }

  /// Race-free counters (marshalled onto the API thread while running).
  [[nodiscard]] Stats stats();

  /// Load-generation / test seam: delivers synthetic events through the
  /// exact push path (routing, send queues, eviction), marshalled onto
  /// the API thread and acknowledged before return.
  void inject_events(std::vector<shard::ShardedMonitorService::StatusEvent> events);

  // --- Federation tier (docs/runtime.md "Federation tier") ---

  /// Attaches the federated monitoring core. Must be called before
  /// start(); the adapter must outlive the server. From then on:
  ///   * child sessions may push Digest frames (ingested via the
  ///     adapter; the first Digest identifies the session's node id);
  ///   * clients may subscribe to FEDERATED peers — SubscribeRequest
  ///     with a zero peer address, sender_id = the 64-bit peer key —
  ///     and receive Event frames for transitions anywhere in the
  ///     subtree (ids carry kFedSubBit);
  ///   * a flush timer drains the adapter on its flush_interval() and
  ///     hands the wire-ready frames to `upstream_sink` (API thread;
  ///     null at the federation root).
  void attach_federation(FederationAdapter* adapter,
                         std::function<void(std::vector<DigestMsg>)> upstream_sink);

  /// Runs `fn` on the API thread and waits for it (direct call when the
  /// server is not running). The federated node uses this to touch
  /// adapter state — peer mappings, stats — under the thread contract.
  void run_on_api_thread(const std::function<void()>& fn);

  /// Pushes a Delegate frame to the child session that most recently
  /// identified itself as `child_node` (via a Digest). Marshalled onto
  /// the API thread; false when no such child session is connected.
  bool send_delegate(std::uint64_t child_node, DelegateMsg msg);

  // --- Crash persistence (Params::snapshot_path) ---

  /// Outcome of the start()-time snapshot load (kMissing before start()
  /// or with persistence disabled). kBadVersion / kCorrupt mean the
  /// server cold-started — rejected snapshots are never half-applied.
  [[nodiscard]] SnapshotLoadStatus snapshot_load_status() const noexcept {
    return snapshot_load_status_;
  }

  /// Forces a snapshot save (marshalled onto the API thread while
  /// running). False when persistence is disabled or the write failed.
  bool save_snapshot_now();

  /// Called (on the API thread) the first time a federation child node
  /// recorded in the loaded snapshot re-identifies itself via a Digest —
  /// the owner's cue to re-send that child its Delegate, restoring the
  /// delegation the crash wiped. Set before start().
  void set_child_reattach_hook(std::function<void(std::uint64_t node_id)> hook);

 private:
  using Command = std::function<void()>;

  struct Session {
    std::uint64_t id = 0;
    net::TcpConn conn;
    net::SocketAddress peer;
    FrameAssembler rx;
    std::vector<std::byte> tx;  // unsent frames; [tx_pos, size) pending
    std::size_t tx_pos = 0;
    bool want_write = false;
    Tick lease_deadline = 0;
    std::set<std::uint64_t> subs;      // global subscription ids
    std::set<std::uint64_t> fed_subs;  // federated ids (kFedSubBit set)
    /// Non-zero once the session pushed a Digest: it is the child node
    /// with this federation node id (Delegate frames route here).
    std::uint64_t fed_node_id = 0;
  };

  /// One federated subscription: session `sid` watches peer `key`.
  struct FedSub {
    std::uint64_t sid = 0;
    std::uint64_t key = 0;
  };

  void worker_main();
  void drain_commands();
  void post(Command cmd);
  void on_accept();
  void on_session_io(std::uint64_t sid, unsigned events);
  void on_readable(std::uint64_t sid);
  /// True while the session still exists.
  bool handle_message(std::uint64_t sid, ControlMessage msg);
  void deliver(const shard::ShardedMonitorService::StatusEvent& event);
  /// Queues a frame and flushes opportunistically. False when the frame
  /// evicted the session (send-queue cap) or the connection died.
  bool send_frame(Session& s, const ControlMessage& msg);
  /// Writes pending bytes; false when the session was closed.
  bool flush(Session& s);
  void close_session(std::uint64_t sid);
  void expire_leases();
  void arm_poll_timer();
  void arm_lease_timer();
  void arm_fed_flush_timer();
  /// Fans one applied federated transition out to its subscribers (the
  /// adapter's transition sink lands here, on the API thread).
  void fed_fanout(const DigestEntry& entry);
  /// True when `sub` targets a federated peer (zero address, adapter on).
  [[nodiscard]] bool is_fed_subscribe(const SubscribeRequest& sub) const;
  bool handle_fed_subscribe(Session& s, const SubscribeRequest& sub);
  bool handle_digest(Session& s, const DigestMsg& digest);
  [[nodiscard]] Stats collect_stats();
  void init_obs();
  void refresh_obs();

  // --- crash persistence internals ---
  /// (ip, port, sender_id, app): the identity a reconnecting client's
  /// SubscribeRequest presents, and the key an orphan is claimed by.
  using OrphanKey = std::tuple<std::uint32_t, std::uint16_t, std::uint64_t, std::string>;
  struct Orphan {
    std::uint64_t gid = 0;  ///< server-owned ShardedMonitorService id
    shard::ShardedMonitorService::SubscriptionSeed seed;
    Tick expires = 0;
  };
  [[nodiscard]] bool persistence_enabled() const noexcept {
    return !params_.snapshot_path.empty();
  }
  /// start()-time restore (API thread not yet running; service is).
  void restore_from_snapshot();
  bool save_snapshot();
  void arm_snapshot_timer();
  void sweep_orphans();
  void drop_orphan(std::map<std::uint64_t, Orphan>::iterator it, bool unsubscribe);
  /// Claims a matching orphan for a client subscribe: re-creates the
  /// subscription under the client's QoS primed with the orphan's
  /// current view verdict, then retires the orphan. Returns the new
  /// subscription id, or 0 when no orphan matches (normal subscribe).
  std::uint64_t try_claim_orphan(const SubscribeRequest& sub);

  shard::ShardedMonitorService& service_;
  Params params_;
  net::TcpListener listener_;
  std::unique_ptr<net::EventLoop> loop_;
  MpscQueue<Command> commands_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> post_retries_{0};
  std::atomic<std::uint64_t> post_stalls_{0};
  bool running_ = false;

  // --- API-thread-only state ---
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::map<std::uint64_t, std::uint64_t> sub_owner_;  // sub id -> session id
  std::uint64_t next_session_id_ = 1;
  std::uint64_t seen_resource_failures_ = 0;
  bool accept_parked_ = false;
  TimerId poll_timer_ = kInvalidTimer;
  TimerId lease_timer_ = kInvalidTimer;
  Stats stats_;

  // --- obs mirroring (API-thread-only; null unless Params::registry) ---
  std::unique_ptr<obs::FdaasExport> obs_export_;
  std::unique_ptr<obs::EventLoopExport> obs_loop_export_;
  obs::Histogram* obs_event_latency_ = nullptr;

  // --- Federation (API-thread-only; null/empty unless attached) ---
  FederationAdapter* adapter_ = nullptr;
  std::function<void(std::vector<DigestMsg>)> upstream_sink_;
  std::map<std::uint64_t, FedSub> fed_subs_;            // fed sub id -> sub
  std::map<std::uint64_t, std::set<std::uint64_t>> fed_subs_by_key_;
  std::map<std::uint64_t, std::uint64_t> child_sessions_;  // node id -> sid
  std::uint64_t next_fed_sub_ = 1;
  TimerId fed_flush_timer_ = kInvalidTimer;

  // --- Crash persistence (API-thread-only after start()) ---
  SnapshotLoadStatus snapshot_load_status_ = SnapshotLoadStatus::kMissing;
  bool restore_attempted_ = false;
  std::map<std::uint64_t, Orphan> orphans_;   // gid -> orphan
  std::map<OrphanKey, std::uint64_t> orphan_index_;
  std::set<std::uint64_t> restored_fed_children_;  // not yet re-identified
  std::function<void(std::uint64_t)> child_reattach_hook_;
  TimerId snapshot_timer_ = kInvalidTimer;
  std::int64_t last_save_wall_ns_ = 0;
  std::uint64_t last_save_bytes_ = 0;
};

}  // namespace twfd::api

#include "api/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire_codec.hpp"

namespace twfd::api {
namespace {

// Fixed header size: magic u32 + version u8 + saved_wall i64 + body_len u32.
constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 4;
constexpr std::size_t kChecksumSize = 8;

void encode_body(net::codec::Writer& w, const SnapshotData& data) {
  w.varint(data.seeds.size());
  for (const auto& seed : data.seeds) {
    w.u32(seed.peer.ip_host_order);
    w.u16(seed.peer.port);
    w.u64(seed.sender_id);
    w.str16(seed.app);
    w.f64(seed.qos.td_upper_s);
    w.f64(seed.qos.tmr_upper_per_s);
    w.f64(seed.qos.tm_upper_s);
    w.u8(seed.last == detect::Output::Suspect ? 1 : 0);
    w.svarint(seed.age_ns);
  }
  w.varint(data.fed_children.size());
  for (const std::uint64_t node : data.fed_children) w.u64(node);
}

bool decode_body(net::codec::Reader& r, SnapshotData& out) {
  const std::uint64_t seed_count = r.varint();
  if (!r.ok() || seed_count > kMaxSnapshotSeeds) return false;
  // A seed is at least 32 bytes on the wire; a declared count that could
  // not possibly fit the remaining bytes is rejected before reserving.
  if (seed_count * 32 > r.remaining() + 32) return false;
  out.seeds.reserve(seed_count);
  for (std::uint64_t i = 0; i < seed_count; ++i) {
    SnapshotData::Seed seed;
    seed.peer.ip_host_order = r.u32();
    seed.peer.port = r.u16();
    seed.sender_id = r.u64();
    seed.app = r.str16(kMaxSnapshotAppName);
    seed.qos.td_upper_s = r.f64();
    seed.qos.tmr_upper_per_s = r.f64();
    seed.qos.tm_upper_s = r.f64();
    const std::uint8_t last = r.u8();
    if (last > 1) return false;
    seed.last = last == 1 ? detect::Output::Suspect : detect::Output::Trust;
    seed.age_ns = r.svarint();
    if (!r.ok()) return false;
    out.seeds.push_back(std::move(seed));
  }
  const std::uint64_t child_count = r.varint();
  if (!r.ok() || child_count > kMaxSnapshotChildren) return false;
  if (child_count * 8 > r.remaining()) return false;
  out.fed_children.reserve(child_count);
  for (std::uint64_t i = 0; i < child_count; ++i) out.fed_children.push_back(r.u64());
  // Trailing bytes inside the declared body are a structure violation,
  // not forward compatibility — version bumps carry format changes.
  return r.ok() && r.remaining() == 0;
}

}  // namespace

const char* to_string(SnapshotLoadStatus status) noexcept {
  switch (status) {
    case SnapshotLoadStatus::kOk: return "ok";
    case SnapshotLoadStatus::kMissing: return "missing";
    case SnapshotLoadStatus::kIoError: return "io-error";
    case SnapshotLoadStatus::kBadMagic: return "bad-magic";
    case SnapshotLoadStatus::kBadVersion: return "bad-version";
    case SnapshotLoadStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

std::uint64_t snapshot_checksum(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::vector<std::byte> encode_snapshot(const SnapshotData& data) {
  net::codec::Writer body(64 + data.seeds.size() * 64 + data.fed_children.size() * 8);
  encode_body(body, data);
  const std::vector<std::byte> body_bytes = body.take();

  net::codec::Writer w(kHeaderSize + body_bytes.size() + kChecksumSize);
  w.u32(kSnapshotMagic);
  w.u8(kSnapshotVersion);
  w.i64(data.saved_wall_ns);
  w.u32(static_cast<std::uint32_t>(body_bytes.size()));
  std::vector<std::byte> bytes = w.take();
  bytes.insert(bytes.end(), body_bytes.begin(), body_bytes.end());

  const std::uint64_t sum = snapshot_checksum(bytes);
  net::codec::Writer tail(kChecksumSize);
  tail.u64(sum);
  const std::vector<std::byte> tail_bytes = tail.take();
  bytes.insert(bytes.end(), tail_bytes.begin(), tail_bytes.end());
  return bytes;
}

SnapshotLoadStatus decode_snapshot(std::span<const std::byte> bytes,
                                   SnapshotData& out) {
  // Header fields are judged individually so magic and version skew get
  // their distinct statuses even on a file truncated right after them.
  net::codec::Reader header(bytes);
  const std::uint32_t magic = header.u32();
  if (!header.ok() || magic != kSnapshotMagic) return SnapshotLoadStatus::kBadMagic;
  const std::uint8_t version = header.u8();
  if (!header.ok()) return SnapshotLoadStatus::kCorrupt;
  if (version != kSnapshotVersion) return SnapshotLoadStatus::kBadVersion;
  const std::int64_t saved_wall = header.i64();
  const std::uint32_t body_len = header.u32();
  if (!header.ok() || body_len > kMaxSnapshotBody) return SnapshotLoadStatus::kCorrupt;
  if (bytes.size() != kHeaderSize + body_len + kChecksumSize) {
    return SnapshotLoadStatus::kCorrupt;
  }

  // Checksum before structure: a bit flip anywhere fails here, so the
  // body parser below only ever sees bytes the saver wrote.
  const std::span<const std::byte> checked = bytes.first(kHeaderSize + body_len);
  net::codec::Reader tail(bytes.subspan(kHeaderSize + body_len));
  if (tail.u64() != snapshot_checksum(checked)) return SnapshotLoadStatus::kCorrupt;

  SnapshotData data;
  data.saved_wall_ns = saved_wall;
  net::codec::Reader body(bytes.subspan(kHeaderSize, body_len));
  if (!decode_body(body, data)) return SnapshotLoadStatus::kCorrupt;
  out = std::move(data);
  return SnapshotLoadStatus::kOk;
}

bool save_snapshot_file(const std::string& path, const SnapshotData& data) {
  return save_snapshot_bytes(path, encode_snapshot(data));
}

bool save_snapshot_bytes(const std::string& path, std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never expose a file whose bytes
  // are still in flight, or a crash window could replace a good snapshot
  // with a torn one.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

SnapshotLoadResult load_snapshot_file(const std::string& path) {
  SnapshotLoadResult result;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    result.status = errno == ENOENT ? SnapshotLoadStatus::kMissing
                                    : SnapshotLoadStatus::kIoError;
    return result;
  }
  std::vector<std::byte> bytes;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      result.status = SnapshotLoadStatus::kIoError;
      return result;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
    if (bytes.size() > kHeaderSize + kMaxSnapshotBody + kChecksumSize) {
      ::close(fd);
      result.status = SnapshotLoadStatus::kCorrupt;
      return result;
    }
  }
  ::close(fd);
  result.status = decode_snapshot(bytes, result.data);
  return result;
}

Tick rebase_seed_since(std::int64_t age_ns, std::int64_t saved_wall_ns,
                       std::int64_t wall_now_ns, Tick steady_now) noexcept {
  if (age_ns < 0) return 0;
  const std::int64_t downtime = std::max<std::int64_t>(0, wall_now_ns - saved_wall_ns);
  const Tick since = steady_now - downtime - age_ns;
  return std::clamp<Tick>(since, 1, steady_now);
}

std::int64_t wall_now_ns() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace twfd::api

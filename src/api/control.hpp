// TWFD control protocol (TCP, v1): the FDaaS wire API.
//
// Remote applications subscribe to the shared sharded monitoring runtime
// (shard::ShardedMonitorService) over one TCP connection per client,
// bringing their own QoS tuple (T_D^U, T_MR^U, T_M^U) per subscription
// — Section V's failure-detection-as-a-service, extended across the
// network. The stream carries length-prefixed frames:
//
//   [u32 body_len (LE)] [body]
//   body = [u32 magic "TWFC"] [u8 version] [u8 type] [payload]
//
// following the TWHD datagram conventions (explicit little-endian,
// fixed-width fields, validate-then-trust; see docs/protocol.md for the
// byte layout of every frame). decode_body never throws and never
// trusts a malformed body; FrameAssembler turns an arbitrary chunking
// of the byte stream back into bodies and latches a `corrupt` state on
// hostile length prefixes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/time.hpp"
#include "config/qos_config.hpp"
#include "detect/failure_detector.hpp"
#include "net/udp_socket.hpp"

namespace twfd::api {

inline constexpr std::uint32_t kControlMagic = 0x54574643;  // "TWFC"
inline constexpr std::uint8_t kControlVersion = 1;

/// Hard cap on a frame body. A length prefix above this is hostile (or
/// garbage on the stream) and poisons the connection, never the server.
inline constexpr std::size_t kMaxFrameBody = 64 * 1024;
inline constexpr std::size_t kMaxAppName = 256;
inline constexpr std::size_t kMaxErrorText = 512;
inline constexpr std::size_t kMaxSnapshotEntries = 4096;
/// Worst-case Digest entry is 31 bytes (three 10-byte varints + the
/// output byte), so 2048 entries always fit under kMaxFrameBody.
inline constexpr std::size_t kMaxDigestEntries = 2048;
inline constexpr std::size_t kMaxDelegateRanges = 1024;

enum class ErrorCode : std::uint16_t {
  kMalformed = 1,            ///< request parsed but carried nonsense
  kInfeasibleQos = 2,        ///< Chen's procedure rejected the tuple
  kUnknownSubscription = 3,  ///< id not owned by this session
  kLimit = 4,                ///< per-session subscription cap reached
  kInternal = 5,
};

// --- Client -> server ---

struct SubscribeRequest {
  std::uint64_t request_id = 0;
  net::SocketAddress peer;    ///< heartbeat source to monitor
  std::uint64_t sender_id = 0;
  std::string app;            ///< application label (diagnostics)
  config::QosRequirements qos;
};

struct UnsubscribeRequest {
  std::uint64_t request_id = 0;
  std::uint64_t subscription_id = 0;
};

struct SnapshotRequest {
  std::uint64_t request_id = 0;
};

/// Lease renewal + liveness probe. Any well-formed frame renews the
/// session lease; Ping is the frame to send when there is nothing else.
struct PingMsg {
  std::uint64_t nonce = 0;
};

// --- Server -> client ---

struct SubscribeOk {
  std::uint64_t request_id = 0;
  std::uint64_t subscription_id = 0;
};

struct UnsubscribeOk {
  std::uint64_t request_id = 0;
};

struct SnapshotEntry {
  std::uint64_t subscription_id = 0;
  detect::Output output = detect::Output::Trust;
  Tick since = 0;  ///< instant of the last transition (0 = none yet)
};

struct SnapshotReply {
  std::uint64_t request_id = 0;
  std::vector<SnapshotEntry> entries;  ///< the session's subscriptions only
};

struct PongMsg {
  std::uint64_t nonce = 0;
  std::uint64_t lease_ms = 0;  ///< server lease; renew well within it
};

/// Pushed Suspect/Trust transition.
struct EventMsg {
  std::uint64_t subscription_id = 0;
  detect::Output output = detect::Output::Trust;
  Tick when = 0;  ///< server clock domain
};

struct ErrorMsg {
  std::uint64_t request_id = 0;  ///< 0 when not tied to a request
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// --- Federation frames (child monitor node <-> parent monitor node) ---

/// One liveness transition inside a Digest. `seq` is assigned by the
/// LEAF node that monitors the peer and travels unchanged through every
/// aggregation level, so any node can discard stale or replayed entries
/// (entry applies iff seq exceeds the stored one). `when` is in the
/// originating leaf's clock domain.
struct DigestEntry {
  std::uint64_t peer_key = 0;  ///< federation-wide peer identity
  std::uint64_t seq = 0;       ///< origin (leaf) transition counter
  detect::Output output = detect::Output::Trust;
  Tick when = 0;
};

/// Delta-encoded batch of liveness transitions, pushed by a child node
/// up its TWFC link on a flush interval or size trigger. Entries are
/// sorted by strictly ascending peer_key; the wire packs peer keys and
/// `when` stamps as deltas (varint / zigzag varint), which is what makes
/// digest traffic ~5x+ denser than raw per-peer Event frames.
struct DigestMsg {
  std::uint64_t node_id = 0;     ///< originating federation node
  std::uint64_t digest_seq = 0;  ///< per-link monotone frame counter
  /// A full-state digest (sent after (re)connect so the parent can
  /// reconcile net transitions missed during an outage), not a delta.
  static constexpr std::uint8_t kFlagSnapshot = 0x01;
  std::uint8_t flags = 0;
  std::vector<DigestEntry> entries;
};

/// Inclusive peer-key range [lo, hi].
struct PeerKeyRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Parent -> child: the receiving node owns exactly these peer-ID
/// ranges (sorted, non-overlapping; empty = owns everything). Entries
/// for peers outside the owned ranges are dropped and counted.
struct DelegateMsg {
  std::uint64_t node_id = 0;         ///< the child being instructed
  std::uint64_t delegation_seq = 0;  ///< newer assignment replaces older
  std::vector<PeerKeyRange> ranges;
};

using ControlMessage =
    std::variant<SubscribeRequest, UnsubscribeRequest, SnapshotRequest, PingMsg,
                 SubscribeOk, UnsubscribeOk, SnapshotReply, PongMsg, EventMsg,
                 ErrorMsg, DigestMsg, DelegateMsg>;

/// Serialises a message into a complete frame (length prefix included).
[[nodiscard]] std::vector<std::byte> encode_frame(const ControlMessage& msg);

/// Parses one frame body (magic + version + type + payload, no length
/// prefix); std::nullopt on anything malformed — bad magic/version/type,
/// short or oversize payload, out-of-range enum bytes, non-finite QoS.
[[nodiscard]] std::optional<ControlMessage> decode_body(
    std::span<const std::byte> body);

/// Reassembles frame bodies from an arbitrarily chunked byte stream.
class FrameAssembler {
 public:
  /// Appends received bytes (no-op once corrupt).
  void push(std::span<const std::byte> data);

  /// Next complete frame body, or std::nullopt when more bytes are
  /// needed (or the stream is corrupt).
  [[nodiscard]] std::optional<std::vector<std::byte>> next();

  /// A length prefix exceeded kMaxFrameBody: the stream can never
  /// re-synchronise and the connection must be dropped.
  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

}  // namespace twfd::api

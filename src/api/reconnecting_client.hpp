// Self-healing wrapper around api::Client: survives any number of
// connection drops (server restarts, mid-stream resets, chaos-proxy
// kills) while preserving pump_for semantics.
//
// The wrapper owns the DESIRED subscription set, keyed by stable local
// handles that never change across reconnects (the server-global ids
// do). On every (re)connect it
//   1. dials with capped exponential backoff + deterministic jitter,
//   2. re-subscribes every registered subscription,
//   3. reconciles: fetches a snapshot and, for each subscription whose
//      current server verdict differs from the last verdict delivered to
//      the application, synthesizes exactly one event — so a transition
//      that happened during the outage is re-emitted rather than lost.
//      (Intermediate flaps inside the outage are unobservable by
//      construction; reconciliation restores the NET transition.)
//
// Events reach the handler with subscription_id rewritten to the stable
// local handle, so application state keyed by the return value of
// subscribe() stays valid forever. Synthetic reconciliation events are
// indistinguishable from pushed ones on purpose.
//
// Not thread-safe: one thread owns a ReconnectingClient, like Client.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "api/client.hpp"
#include "common/rng.hpp"

namespace twfd::api {

class ReconnectingClient {
 public:
  struct Options {
    Client::Options client{};
    /// Reconnect backoff ladder: doubles per failed attempt, resets on
    /// success; each sleep is jittered to backoff * [0.5, 1.0).
    Tick backoff_min = ticks_from_ms(50);
    Tick backoff_max = ticks_from_sec(5);
    /// Seed for the deterministic jitter stream (reproducible runs).
    std::uint64_t jitter_seed = 1;
    /// Test seam: when set, called with each jittered redial sleep
    /// INSTEAD of sleeping. Return false to abandon the reconnect loop
    /// (as if the deadline passed) — the backoff regression suite uses
    /// this to observe 50 simulated resets without wall-clock cost.
    std::function<bool(Tick)> sleep_hook;
  };

  /// Lazy: no connection is attempted until the first call that needs
  /// one (subscribe / pump_for / ping), so a client can be built while
  /// the server is still down.
  explicit ReconnectingClient(const net::SocketAddress& server);
  ReconnectingClient(const net::SocketAddress& server, Options options);

  ReconnectingClient(const ReconnectingClient&) = delete;
  ReconnectingClient& operator=(const ReconnectingClient&) = delete;

  /// Handler for Suspect/Trust events; EventMsg::subscription_id is the
  /// stable local handle, and reconciliation synthesizes events for
  /// transitions that happened while disconnected.
  void set_event_handler(Client::EventHandler handler) {
    on_event_ = std::move(handler);
  }

  /// Server-pushed Delegate frames (federation range assignment) pass
  /// straight through, on whatever connection is live.
  void set_delegate_handler(Client::DelegateHandler handler) {
    on_delegate_ = std::move(handler);
  }

  /// Invoked after every successful (re)connect, once resubscription
  /// and snapshot reconciliation are done and the connection is the
  /// live one. The federation upstream link pushes its full-state
  /// snapshot digest from here; a throw fails the connect attempt.
  void set_connect_handler(std::function<void()> handler) {
    on_connect_ = std::move(handler);
  }

  /// Sends one fire-and-forget frame on the live connection. Returns
  /// false — and records the disconnect, so the next pump redials —
  /// when there is no connection or the send fails. Never blocks on
  /// reconnect backoff.
  bool send_message(const ControlMessage& msg);

  /// Registers the subscription in the desired set and establishes it on
  /// the live connection when there is one. Returns the stable handle.
  /// Throws std::runtime_error only when the server actively REJECTS the
  /// tuple (infeasible QoS) over a healthy connection; a dead connection
  /// leaves the subscription pending for the next reconnect.
  std::uint64_t subscribe(const net::SocketAddress& peer, std::uint64_t sender_id,
                          const std::string& app,
                          const config::QosRequirements& qos);
  /// Removes from the desired set (and the live session, best effort).
  void unsubscribe(std::uint64_t handle);

  /// Pumps events for `duration`, transparently reconnecting (with
  /// backoff) and reconciling as often as needed. Returns true when the
  /// connection is healthy at the deadline, false when the whole
  /// duration elapsed without one.
  bool pump_for(Tick duration);

  /// Last verdict delivered to the application for `handle` (from pushed
  /// events or reconciliation); nullopt for unknown handles.
  [[nodiscard]] std::optional<detect::Output> verdict(std::uint64_t handle) const;

  [[nodiscard]] bool connected() const noexcept {
    return client_ && client_->connected();
  }
  void close() noexcept;

  /// Successful connections beyond the first (i.e. recoveries).
  [[nodiscard]] std::uint64_t reconnects() const noexcept { return reconnects_; }
  /// Events delivered to the handler, synthetic reconciliation ones
  /// included.
  [[nodiscard]] std::uint64_t events_delivered() const noexcept {
    return events_delivered_;
  }
  /// Reconciliation events synthesized (subset of events_delivered).
  [[nodiscard]] std::uint64_t reconciled_events() const noexcept {
    return reconciled_events_;
  }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }

 private:
  struct Sub {
    net::SocketAddress peer;
    std::uint64_t sender_id = 0;
    std::string app;
    config::QosRequirements qos;
    std::uint64_t server_id = 0;  ///< 0 = not established on current conn
    detect::Output last = detect::Output::Trust;
    Tick since = 0;
  };

  /// Connects (retrying with backoff) until `deadline`; true when a
  /// healthy, resubscribed, reconciled connection is live.
  bool ensure_connected(Tick deadline);
  /// One dial + resubscribe + reconcile attempt; false on any failure.
  bool try_connect_once();
  void note_disconnect();
  void deliver(std::uint64_t handle, detect::Output output, Tick when,
               bool synthetic);
  void handle_server_event(const EventMsg& e);

  net::SocketAddress server_;
  Options options_;
  SteadyClock clock_;
  Client::EventHandler on_event_;
  Client::DelegateHandler on_delegate_;
  std::function<void()> on_connect_;
  std::unique_ptr<Client> client_;
  std::map<std::uint64_t, Sub> subs_;            ///< handle -> desired sub
  std::map<std::uint64_t, std::uint64_t> by_server_id_;  ///< current conn only
  std::uint64_t next_handle_ = 1;
  Xoshiro256 jitter_;
  Tick backoff_ = 0;
  bool ever_connected_ = false;
  std::uint64_t reconnects_ = 0;
  std::uint64_t events_delivered_ = 0;
  std::uint64_t reconciled_events_ = 0;
  std::string last_error_;
};

}  // namespace twfd::api

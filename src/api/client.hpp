// Synchronous client for the TWFD control protocol (the FDaaS wire API).
//
// One Client == one TCP connection == one session on the server.
// Requests (subscribe / unsubscribe / snapshot / ping) block until the
// matching reply arrives; EVENT frames interleaved with replies are
// dispatched to the event handler as they are decoded, never dropped.
// pump_for() is the push side: it drains events for a duration and
// renews the session lease with automatic pings, so a monitoring
// dashboard is `client.subscribe(...); while (...) client.pump_for(...)`.
//
// Not thread-safe: one thread owns a Client (spawn one per connection).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/control.hpp"
#include "common/time.hpp"
#include "config/qos_config.hpp"
#include "net/tcp.hpp"

namespace twfd::api {

class Client {
 public:
  struct Options {
    Tick connect_timeout = ticks_from_sec(5);
    /// Per-request bound on waiting for the matching reply.
    Tick request_timeout = ticks_from_sec(5);
    /// Lease-renewal cadence for pump_for before the server's lease is
    /// known (a Pong teaches it; thereafter lease/3 is used).
    Tick default_ping_interval = ticks_from_sec(2);
  };

  /// Connects to `server`; throws std::system_error on refusal/timeout.
  explicit Client(const net::SocketAddress& server);
  Client(const net::SocketAddress& server, Options options);
  ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  using EventHandler = std::function<void(const EventMsg&)>;
  /// Installs the callback for pushed Suspect/Trust events.
  void set_event_handler(EventHandler handler) { on_event_ = std::move(handler); }

  using DelegateHandler = std::function<void(const DelegateMsg&)>;
  /// Installs the callback for server-pushed Delegate frames (the
  /// federation parent assigning peer-key ranges to this node).
  void set_delegate_handler(DelegateHandler handler) {
    on_delegate_ = std::move(handler);
  }

  /// Sends one frame without waiting for any reply — the fire-and-forget
  /// path federation Digest frames ride (they renew the lease like any
  /// well-formed frame). Throws std::runtime_error when the connection
  /// dies or the send times out.
  void send_message(const ControlMessage& msg);

  /// Registers a subscription with this client's own QoS tuple. Returns
  /// the server-global subscription id; throws std::runtime_error with
  /// the server's message when the tuple is rejected (or on timeout).
  std::uint64_t subscribe(const net::SocketAddress& peer, std::uint64_t sender_id,
                          const std::string& app,
                          const config::QosRequirements& qos);
  void unsubscribe(std::uint64_t subscription_id);
  /// Current verdicts for this session's subscriptions.
  std::vector<SnapshotEntry> snapshot();
  /// Lease probe; returns the server's lease in milliseconds.
  std::uint64_t ping();

  /// Reads and dispatches events for `duration`, pinging to keep the
  /// lease alive. Returns false once the connection is closed.
  bool pump_for(Tick duration);

  [[nodiscard]] bool connected() const noexcept { return conn_.valid(); }
  void close() noexcept { conn_.close(); }
  [[nodiscard]] std::uint64_t events_received() const noexcept {
    return events_received_;
  }

 private:
  /// Sends `req` and waits for the reply matching `matches`, dispatching
  /// events meanwhile. Throws std::runtime_error on timeout/close, and
  /// translates a matching ErrorMsg into std::runtime_error.
  ControlMessage request(const ControlMessage& req,
                         const std::function<bool(const ControlMessage&)>& matches);
  void send_all(std::span<const std::byte> data, Tick deadline);
  /// Blocks until bytes arrive (deadline in SteadyClock domain); false
  /// on close/timeout.
  bool read_available(Tick deadline);
  /// Drains assembled frames; events are dispatched, the first frame
  /// matching `matches` (if any) is returned.
  std::optional<ControlMessage> drain_frames(
      const std::function<bool(const ControlMessage&)>& matches);
  void dispatch(ControlMessage msg);

  net::TcpConn conn_;
  Options options_;
  SteadyClock clock_;
  FrameAssembler rx_;
  EventHandler on_event_;
  DelegateHandler on_delegate_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t next_nonce_ = 1;
  std::uint64_t lease_ms_ = 0;
  std::uint64_t events_received_ = 0;
};

}  // namespace twfd::api

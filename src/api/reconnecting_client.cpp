#include "api/reconnecting_client.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace twfd::api {

ReconnectingClient::ReconnectingClient(const net::SocketAddress& server)
    : ReconnectingClient(server, Options{}) {}

ReconnectingClient::ReconnectingClient(const net::SocketAddress& server,
                                       Options options)
    : server_(server),
      options_(options),
      jitter_(options.jitter_seed),
      backoff_(options.backoff_min) {}

void ReconnectingClient::close() noexcept {
  if (client_) client_->close();
  client_.reset();
  by_server_id_.clear();
  for (auto& [handle, sub] : subs_) sub.server_id = 0;
}

void ReconnectingClient::note_disconnect() {
  client_.reset();
  by_server_id_.clear();
  for (auto& [handle, sub] : subs_) sub.server_id = 0;
}

void ReconnectingClient::deliver(std::uint64_t handle, detect::Output output,
                                 Tick when, bool synthetic) {
  auto it = subs_.find(handle);
  if (it == subs_.end()) return;
  it->second.last = output;
  it->second.since = when;
  ++events_delivered_;
  if (synthetic) ++reconciled_events_;
  if (on_event_) {
    EventMsg e;
    e.subscription_id = handle;  // the stable id, not the server's
    e.output = output;
    e.when = when;
    on_event_(e);
  }
}

void ReconnectingClient::handle_server_event(const EventMsg& e) {
  if (e.subscription_id == 0) {
    // Shard health broadcast (server-side degraded/recovered): forward
    // verbatim — 0 is never a handle, so the application can tell these
    // apart from verdicts.
    ++events_delivered_;
    if (on_event_) on_event_(e);
    return;
  }
  const auto it = by_server_id_.find(e.subscription_id);
  if (it == by_server_id_.end()) return;  // an id from a previous session
  deliver(it->second, e.output, e.when, /*synthetic=*/false);
}

bool ReconnectingClient::try_connect_once() {
  try {
    auto fresh = std::make_unique<Client>(server_, options_.client);
    fresh->set_event_handler(
        [this](const EventMsg& e) { handle_server_event(e); });
    fresh->set_delegate_handler([this](const DelegateMsg& d) {
      if (on_delegate_) on_delegate_(d);
    });

    // Re-establish the desired set. The server ids are fresh; the stable
    // handles (and their last-delivered verdicts) carry over.
    by_server_id_.clear();
    for (auto& [handle, sub] : subs_) {
      sub.server_id = 0;
      try {
        sub.server_id =
            fresh->subscribe(sub.peer, sub.sender_id, sub.app, sub.qos);
        by_server_id_[sub.server_id] = handle;
      } catch (const std::exception& e) {
        if (!fresh->connected()) throw;  // connection died mid-resubscribe
        // A healthy server actively rejected the tuple it accepted
        // before (config drift). Keep the subscription pending rather
        // than silently dropping it; the next reconnect retries.
        last_error_ = e.what();
      }
    }

    // Reconcile: one synthetic event per subscription whose verdict
    // changed while we were away, so the application observes the net
    // transition it missed.
    for (const SnapshotEntry& entry : fresh->snapshot()) {
      const auto it = by_server_id_.find(entry.subscription_id);
      if (it == by_server_id_.end()) continue;
      const Sub& sub = subs_.at(it->second);
      if (entry.output != sub.last) {
        deliver(it->second, entry.output, entry.since, /*synthetic=*/true);
      }
    }

    client_ = std::move(fresh);
    if (ever_connected_) ++reconnects_;
    ever_connected_ = true;
    backoff_ = options_.backoff_min;
    // Post-connect hook (federation snapshot push): a throw here means
    // the fresh connection is unusable — fail the attempt and retry.
    if (on_connect_) on_connect_();
    return true;
  } catch (const std::exception& e) {
    last_error_ = e.what();
    note_disconnect();
    return false;
  }
}

bool ReconnectingClient::ensure_connected(Tick deadline) {
  if (client_ && client_->connected()) return true;
  while (true) {
    if (try_connect_once()) return true;
    const Tick now = clock_.now();
    if (now >= deadline) return false;
    // Jittered sleep: backoff * [0.5, 1.0), clipped to the deadline so a
    // bounded pump never oversleeps its budget.
    const Tick step = static_cast<Tick>(
        static_cast<double>(backoff_) * (0.5 + 0.5 * jitter_.uniform01()));
    const Tick sleep_for = std::min(std::max<Tick>(step, ticks_from_ms(1)),
                                    deadline - now);
    if (options_.sleep_hook) {
      if (!options_.sleep_hook(sleep_for)) return false;
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_for));
    }
    backoff_ = std::min(backoff_ * 2, options_.backoff_max);
    if (clock_.now() >= deadline) return false;
  }
}

std::uint64_t ReconnectingClient::subscribe(const net::SocketAddress& peer,
                                            std::uint64_t sender_id,
                                            const std::string& app,
                                            const config::QosRequirements& qos) {
  const std::uint64_t handle = next_handle_++;
  Sub sub;
  sub.peer = peer;
  sub.sender_id = sender_id;
  sub.app = app;
  sub.qos = qos;
  subs_.emplace(handle, std::move(sub));

  // Establish eagerly when possible; a dead/unreachable server leaves it
  // pending for the next reconnect (that is the point of this class).
  if (!connected()) ensure_connected(clock_.now() + options_.client.connect_timeout);
  if (connected()) {
    Sub& registered = subs_.at(handle);
    try {
      registered.server_id =
          client_->subscribe(registered.peer, registered.sender_id,
                             registered.app, registered.qos);
      by_server_id_[registered.server_id] = handle;
    } catch (const std::exception& e) {
      if (client_ && client_->connected()) {
        // Active rejection over a healthy connection (infeasible QoS) is
        // a caller error: remove from the desired set and surface it.
        subs_.erase(handle);
        throw;
      }
      last_error_ = e.what();
      note_disconnect();  // pending; re-established on reconnect
    }
  }
  return handle;
}

void ReconnectingClient::unsubscribe(std::uint64_t handle) {
  const auto it = subs_.find(handle);
  if (it == subs_.end()) return;
  if (connected() && it->second.server_id != 0) {
    try {
      client_->unsubscribe(it->second.server_id);
    } catch (const std::exception& e) {
      // Best effort: a dead connection tears the session (and its
      // subscriptions) down server-side anyway.
      last_error_ = e.what();
      if (!client_->connected()) note_disconnect();
    }
  }
  by_server_id_.erase(it->second.server_id);
  subs_.erase(it);
}

bool ReconnectingClient::pump_for(Tick duration) {
  const Tick deadline = clock_.now() + duration;
  while (true) {
    const Tick now = clock_.now();
    if (now >= deadline) break;
    if (!ensure_connected(deadline)) break;
    if (!client_->pump_for(deadline - clock_.now())) {
      note_disconnect();  // dropped mid-pump; loop reconnects with backoff
    }
  }
  return connected();
}

bool ReconnectingClient::send_message(const ControlMessage& msg) {
  if (!connected()) return false;
  try {
    client_->send_message(msg);
    return true;
  } catch (const std::exception& e) {
    last_error_ = e.what();
    note_disconnect();
    return false;
  }
}

std::optional<detect::Output> ReconnectingClient::verdict(
    std::uint64_t handle) const {
  const auto it = subs_.find(handle);
  if (it == subs_.end()) return std::nullopt;
  return it->second.last;
}

}  // namespace twfd::api

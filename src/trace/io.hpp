// Trace persistence: a compact little-endian binary format for replay
// archives and CSV for interoperability with plotting tools.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/heartbeat.hpp"

namespace twfd::trace {

/// Writes the trace in the TWFDTRC1 binary format.
void save_binary(const Trace& trace, std::ostream& os);
void save_binary_file(const Trace& trace, const std::string& path);

/// Reads a TWFDTRC1 archive; throws std::runtime_error on malformed input.
[[nodiscard]] Trace load_binary(std::istream& is);
[[nodiscard]] Trace load_binary_file(const std::string& path);

/// CSV with header `seq,send_ns,arrival_ns,lost` (arrival empty when lost).
void save_csv(const Trace& trace, std::ostream& os);
[[nodiscard]] Trace load_csv(std::istream& is, std::string name, Tick interval,
                             Tick clock_skew = 0);

}  // namespace twfd::trace

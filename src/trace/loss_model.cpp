#include "trace/loss_model.hpp"

#include "common/assert.hpp"

namespace twfd::trace {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  TWFD_CHECK(p >= 0.0 && p <= 1.0);
}
bool BernoulliLoss::lost(Xoshiro256& rng) { return p_ > 0.0 && rng.bernoulli(p_); }
std::unique_ptr<LossModel> BernoulliLoss::clone() const {
  return std::make_unique<BernoulliLoss>(*this);
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                                       double loss_good, double loss_bad)
    : p_gb_(p_good_to_bad), p_bg_(p_bad_to_good), loss_good_(loss_good),
      loss_bad_(loss_bad) {
  TWFD_CHECK(p_gb_ >= 0 && p_gb_ <= 1 && p_bg_ >= 0 && p_bg_ <= 1);
  TWFD_CHECK(loss_good_ >= 0 && loss_good_ <= 1 && loss_bad_ >= 0 && loss_bad_ <= 1);
}

bool GilbertElliottLoss::lost(Xoshiro256& rng) {
  // State transition first, then the per-message loss draw in that state.
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  const double p = bad_ ? loss_bad_ : loss_good_;
  return p > 0.0 && rng.bernoulli(p);
}

std::unique_ptr<LossModel> GilbertElliottLoss::clone() const {
  return std::make_unique<GilbertElliottLoss>(*this);
}

}  // namespace twfd::trace

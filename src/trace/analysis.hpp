// Channel analysis beyond first moments: inter-arrival gap quantiles,
// loss-run-length distribution (burstiness), and a regime-change summary.
// These are the diagnostics one runs before choosing detector windows —
// the paper's Section III-A argument ("burst duration vs heartbeat
// interval") made quantitative.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "trace/heartbeat.hpp"

namespace twfd::trace {

struct GapAnalysis {
  double mean_s = 0;
  double p50_s = 0;
  double p90_s = 0;
  double p99_s = 0;
  double p999_s = 0;
  double max_s = 0;
  std::size_t gaps = 0;
  /// Gaps exceeding k nominal intervals, for k = 2, 5, 10 — each one is a
  /// silence a detector must either tolerate (conservative) or flag
  /// (mistake, if p was alive).
  std::size_t over_2x = 0;
  std::size_t over_5x = 0;
  std::size_t over_10x = 0;
};

/// Quantiles of delivery inter-arrival gaps (streaming P^2; exact mean/max).
[[nodiscard]] GapAnalysis analyze_gaps(const Trace& trace);

struct LossRunAnalysis {
  std::size_t lost_total = 0;
  std::size_t runs = 0;          ///< maximal runs of consecutive losses
  double mean_run_length = 0;
  std::size_t max_run_length = 0;
  /// run length -> number of runs of exactly that length
  std::map<std::size_t, std::size_t> histogram;

  /// Mean run length > 1.5 indicates correlated (bursty) loss — the
  /// condition under which the paper argues single-window Chen breaks.
  [[nodiscard]] bool bursty() const noexcept { return mean_run_length > 1.5; }
};

/// Distribution of consecutive-loss run lengths in send order.
[[nodiscard]] LossRunAnalysis analyze_loss_runs(const Trace& trace);

}  // namespace twfd::trace

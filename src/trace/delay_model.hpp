// One-way message delay models.
//
// The synthetic WAN/LAN scenarios compose these to reproduce the
// statistical regimes of the paper's traces (stable, burst, worm). All
// delays are in seconds (double) and clamped to a physical minimum.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace twfd::trace {

/// Samples one-way network delays, in seconds.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Draws the delay for the next message. Must be >= 0.
  virtual double sample(Xoshiro256& rng) = 0;
  /// Deep copy (scenario builders clone prototypes per regime).
  [[nodiscard]] virtual std::unique_ptr<DelayModel> clone() const = 0;
};

/// Fixed base delay plus uniform jitter in [0, jitter].
class ConstantJitterDelay final : public DelayModel {
 public:
  ConstantJitterDelay(double base_s, double jitter_s);
  double sample(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<DelayModel> clone() const override;

 private:
  double base_;
  double jitter_;
};

/// Normal(mu, sigma) truncated below at `floor_s`.
class NormalDelay final : public DelayModel {
 public:
  NormalDelay(double mean_s, double stddev_s, double floor_s);
  double sample(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<DelayModel> clone() const override;

 private:
  double mean_, stddev_, floor_;
};

/// floor + Exponential(mean) — the ED-FD's model assumption; also a decent
/// fit for queueing-dominated links.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(double floor_s, double mean_extra_s);
  double sample(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<DelayModel> clone() const override;

 private:
  double floor_, mean_extra_;
};

/// floor + LogNormal(mu, sigma) of the underlying normal — the classic
/// heavy-ish tailed Internet one-way-delay fit used for the WAN regimes.
class LogNormalDelay final : public DelayModel {
 public:
  LogNormalDelay(double floor_s, double mu, double sigma);
  double sample(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<DelayModel> clone() const override;

 private:
  double floor_, mu_, sigma_;
};

/// floor + Pareto(xm, alpha) - xm: genuinely heavy tail for spike regimes.
class ParetoDelay final : public DelayModel {
 public:
  ParetoDelay(double floor_s, double xm_s, double alpha);
  double sample(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<DelayModel> clone() const override;

 private:
  double floor_, xm_, alpha_;
};

/// Autocorrelated congestion: a latent log-level follows an AR(1) process
///   level_{i+1} = rho * level_i + noise,  noise ~ N(0, sigma_step)
/// and each message's delay is
///   floor + scale * exp(level) * jitter,  jitter ~ LogNormal(0, jitter_sigma).
/// With rho near 1 the channel drifts through multi-second slow/fast
/// regimes — the "bursty traffic" of Section III-A that motivates the
/// short window: consecutive delays are strongly correlated, so the last
/// arrival predicts the next far better than a 1000-sample average.
class ArCongestionDelay final : public DelayModel {
 public:
  /// `sigma_level` is the *stationary* stddev of the level; the step
  /// noise is derived as sigma_level * sqrt(1 - rho^2).
  ArCongestionDelay(double floor_s, double scale_s, double rho, double sigma_level,
                    double jitter_sigma);
  double sample(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<DelayModel> clone() const override;

 private:
  double floor_, scale_, rho_, sigma_step_, jitter_sigma_;
  double level_ = 0.0;
};

/// With probability `spike_prob`, draws from `spike`, otherwise from `base`.
/// Models occasional stalls (e.g. the LAN trace's rare 1.5 s gaps).
class SpikeMixDelay final : public DelayModel {
 public:
  SpikeMixDelay(std::unique_ptr<DelayModel> base, std::unique_ptr<DelayModel> spike,
                double spike_prob);
  double sample(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<DelayModel> clone() const override;

 private:
  std::unique_ptr<DelayModel> base_;
  std::unique_ptr<DelayModel> spike_;
  double spike_prob_;
};

}  // namespace twfd::trace

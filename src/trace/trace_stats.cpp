#include "trace/trace_stats.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace twfd::trace {

TraceStats compute_stats(const Trace& trace, bool skew_known) {
  TraceStats s;
  if (trace.empty()) return s;

  const double skew_s = skew_known ? to_seconds(trace.clock_skew()) : 0.0;
  RunningStats delay;
  Tick prev_arrival = kTickNegInfinity;
  RunningStats gaps;
  double max_gap = 0.0;

  // Interarrival gaps are measured in delivery order.
  for (auto i : trace.delivery_order()) {
    const auto& r = trace[i];
    delay.add(to_seconds(r.arrival_time - r.send_time) - skew_s);
    if (prev_arrival != kTickNegInfinity) {
      const double gap = to_seconds(r.arrival_time - prev_arrival);
      gaps.add(gap);
      max_gap = std::max(max_gap, gap);
    }
    prev_arrival = r.arrival_time;
  }

  s.sent = static_cast<std::int64_t>(trace.size());
  s.delivered = static_cast<std::int64_t>(delay.count());
  s.loss_probability =
      s.sent > 0 ? static_cast<double>(s.sent - s.delivered) / static_cast<double>(s.sent)
                 : 0.0;
  s.delay_mean_s = delay.mean();
  s.delay_variance_s2 = delay.variance();
  s.delay_stddev_s = delay.stddev();
  s.delay_min_s = delay.count() ? delay.min() : 0.0;
  s.delay_max_s = delay.count() ? delay.max() : 0.0;
  s.interarrival_mean_s = gaps.mean();
  s.interarrival_max_s = max_gap;
  s.duration_s =
      to_seconds(trace[trace.size() - 1].send_time - trace[0].send_time);
  return s;
}

void NetworkEstimator::on_heartbeat(std::int64_t seq, Tick send_time,
                                    Tick arrival_time) {
  highest_seq_ = std::max(highest_seq_, seq);
  ++received_;
  const double d = to_seconds(arrival_time - send_time);
  ++n_;
  const double delta = d - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (d - mean_);
}

double NetworkEstimator::loss_probability() const noexcept {
  if (highest_seq_ <= 0) return 0.0;
  const auto missing = static_cast<double>(highest_seq_ - received_);
  return missing > 0 ? missing / static_cast<double>(highest_seq_) : 0.0;
}

double NetworkEstimator::delay_variance_s2() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

void NetworkEstimator::reset() { *this = NetworkEstimator{}; }

}  // namespace twfd::trace

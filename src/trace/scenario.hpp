// The paper's two test environments as parameterised scenario builders.
//
// WanScenario reproduces the Switzerland-Japan trace's regime structure
// (Table I: Stable 1 / Burst / Worm / Stable 2), scaled to any sample
// count while preserving the paper's sample-boundary proportions.
// LanScenario reproduces the JAIST 100 Mbps hub trace's published
// statistics (20 ms interval, ~100 us delay, tiny variance, no loss, rare
// stalls up to ~1.5 s).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/generator.hpp"
#include "trace/heartbeat.hpp"

namespace twfd::trace {

/// Named sub-range of a trace, in sequence numbers (Table I rows).
struct Period {
  std::string name;
  std::int64_t from_seq = 0;
  std::int64_t to_seq = 0;
};

/// Synthetic equivalent of the paper's WAN trace.
class WanScenario {
 public:
  struct Params {
    /// Total heartbeats; the paper's trace has 5,845,712.
    std::int64_t samples = 1'000'000;
    std::uint64_t seed = 42;
    /// Heartbeat inter-send interval (the WAN experiment of [6] used ~0.1 s).
    Tick interval = ticks_from_ms(100);
    /// Monitor clock minus sender clock at t=0.
    Tick clock_skew = ticks_from_sec(3);
  };

  WanScenario();
  explicit WanScenario(Params params);

  /// Generates the trace. The four regimes are sized proportionally to the
  /// paper's Table I boundaries (2.9M / 0.03M / 1.93M / 0.986M of 5.846M).
  [[nodiscard]] Trace build();

  /// Table I equivalent for the generated sample count.
  [[nodiscard]] const std::vector<Period>& periods() const noexcept {
    return periods_;
  }

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  std::vector<Period> periods_;
};

/// Synthetic equivalent of the paper's LAN trace.
class LanScenario {
 public:
  struct Params {
    /// Total heartbeats; the paper's trace has 7,104,446.
    std::int64_t samples = 1'200'000;
    std::uint64_t seed = 43;
    /// The paper sets Delta_i = 20 ms.
    Tick interval = ticks_from_ms(20);
    Tick clock_skew = ticks_from_sec(-7);
    /// Probability per heartbeat of a rare switch/host stall (the source
    /// of the published ~1.5 s maximum inter-reception gap). The paper's
    /// trace had roughly one such event per 7M heartbeats; the default
    /// here is denser so stalls still occur in shorter synthetic runs.
    double stall_prob = 4e-6;
  };

  LanScenario();
  explicit LanScenario(Params params);

  [[nodiscard]] Trace build();
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace twfd::trace

#include "trace/heartbeat.hpp"

#include <algorithm>
#include <numeric>

namespace twfd::trace {

std::vector<std::uint32_t> Trace::delivery_order() const {
  std::vector<std::uint32_t> idx;
  idx.reserve(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].lost) idx.push_back(i);
  }
  std::stable_sort(idx.begin(), idx.end(), [this](std::uint32_t a, std::uint32_t b) {
    return records_[a].arrival_time < records_[b].arrival_time;
  });
  return idx;
}

Trace Trace::slice(std::int64_t from_seq, std::int64_t to_seq) const {
  TWFD_CHECK(from_seq <= to_seq);
  Trace out(name_ + "[" + std::to_string(from_seq) + ":" + std::to_string(to_seq) + "]",
            interval_, clock_skew_);
  for (const auto& r : records_) {
    if (r.seq >= from_seq && r.seq <= to_seq) out.push(r);
  }
  return out;
}

}  // namespace twfd::trace

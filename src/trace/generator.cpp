#include "trace/generator.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace twfd::trace {

TraceGenerator::TraceGenerator(std::string name, Tick interval, Tick clock_skew,
                               std::uint64_t seed)
    : name_(std::move(name)), interval_(interval), clock_skew_(clock_skew), rng_(seed) {
  TWFD_CHECK(interval > 0);
}

TraceGenerator& TraceGenerator::add_regime(Regime regime) {
  TWFD_CHECK(regime.count > 0);
  TWFD_CHECK(regime.delay != nullptr && regime.loss != nullptr);
  regimes_.push_back(std::move(regime));
  return *this;
}

Trace TraceGenerator::generate() {
  TWFD_CHECK_MSG(!generated_, "TraceGenerator::generate may be called once");
  TWFD_CHECK_MSG(!regimes_.empty(), "no regimes configured");
  generated_ = true;

  std::int64_t total = 0;
  for (const auto& r : regimes_) total += r.count;

  Trace out(name_, interval_, clock_skew_);
  out.reserve(static_cast<std::size_t>(total));

  std::int64_t seq = 0;
  Tick last_arrival = kTickNegInfinity;
  // Stall end, in sender-clock ticks; messages sent before it are held.
  Tick stall_until = kTickNegInfinity;

  for (auto& regime : regimes_) {
    const std::int64_t first_seq = seq + 1;
    for (std::int64_t k = 0; k < regime.count; ++k) {
      ++seq;
      const Tick send = static_cast<Tick>(seq) * interval_;

      if (regime.stall.prob_per_msg > 0.0 && send >= stall_until &&
          rng_.bernoulli(regime.stall.prob_per_msg)) {
        const double dur = rng_.uniform(regime.stall.min_s, regime.stall.max_s);
        stall_until = send + ticks_from_seconds(dur);
      }

      HeartbeatRecord rec;
      rec.seq = seq;
      rec.send_time = send;

      if (regime.loss->lost(rng_)) {
        rec.lost = true;
        rec.arrival_time = kTickInfinity;
      } else {
        const double delay_s = regime.delay->sample(rng_);
        // A stalled message leaves the bottleneck when the stall ends and
        // then experiences its sampled path delay.
        const Tick depart = std::max(send, stall_until);
        Tick arrival = depart + clock_skew_ + ticks_from_seconds(delay_s);
        if (fifo_ && arrival <= last_arrival) {
          arrival = last_arrival + ticks_from_us(1);
        }
        last_arrival = arrival;
        rec.lost = false;
        rec.arrival_time = arrival;
      }
      out.push(rec);
    }
    boundaries_.push_back({regime.label, first_seq, seq});
  }
  return out;
}

}  // namespace twfd::trace

#include "trace/delay_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace twfd::trace {

ConstantJitterDelay::ConstantJitterDelay(double base_s, double jitter_s)
    : base_(base_s), jitter_(jitter_s) {
  TWFD_CHECK(base_s >= 0 && jitter_s >= 0);
}
double ConstantJitterDelay::sample(Xoshiro256& rng) {
  return base_ + (jitter_ > 0 ? rng.uniform(0.0, jitter_) : 0.0);
}
std::unique_ptr<DelayModel> ConstantJitterDelay::clone() const {
  return std::make_unique<ConstantJitterDelay>(*this);
}

NormalDelay::NormalDelay(double mean_s, double stddev_s, double floor_s)
    : mean_(mean_s), stddev_(stddev_s), floor_(floor_s) {
  TWFD_CHECK(stddev_s >= 0 && floor_s >= 0);
}
double NormalDelay::sample(Xoshiro256& rng) {
  return std::max(floor_, rng.normal(mean_, stddev_));
}
std::unique_ptr<DelayModel> NormalDelay::clone() const {
  return std::make_unique<NormalDelay>(*this);
}

ExponentialDelay::ExponentialDelay(double floor_s, double mean_extra_s)
    : floor_(floor_s), mean_extra_(mean_extra_s) {
  TWFD_CHECK(floor_s >= 0 && mean_extra_s > 0);
}
double ExponentialDelay::sample(Xoshiro256& rng) {
  return floor_ + rng.exponential(mean_extra_);
}
std::unique_ptr<DelayModel> ExponentialDelay::clone() const {
  return std::make_unique<ExponentialDelay>(*this);
}

LogNormalDelay::LogNormalDelay(double floor_s, double mu, double sigma)
    : floor_(floor_s), mu_(mu), sigma_(sigma) {
  TWFD_CHECK(floor_s >= 0 && sigma >= 0);
}
double LogNormalDelay::sample(Xoshiro256& rng) {
  return floor_ + rng.lognormal(mu_, sigma_);
}
std::unique_ptr<DelayModel> LogNormalDelay::clone() const {
  return std::make_unique<LogNormalDelay>(*this);
}

ParetoDelay::ParetoDelay(double floor_s, double xm_s, double alpha)
    : floor_(floor_s), xm_(xm_s), alpha_(alpha) {
  TWFD_CHECK(floor_s >= 0 && xm_s > 0 && alpha > 0);
}
double ParetoDelay::sample(Xoshiro256& rng) {
  return floor_ + rng.pareto(xm_, alpha_) - xm_;
}
std::unique_ptr<DelayModel> ParetoDelay::clone() const {
  return std::make_unique<ParetoDelay>(*this);
}

ArCongestionDelay::ArCongestionDelay(double floor_s, double scale_s, double rho,
                                     double sigma_level, double jitter_sigma)
    : floor_(floor_s), scale_(scale_s), rho_(rho), jitter_sigma_(jitter_sigma) {
  TWFD_CHECK(floor_s >= 0 && scale_s > 0);
  TWFD_CHECK(rho >= 0.0 && rho < 1.0);
  TWFD_CHECK(sigma_level >= 0 && jitter_sigma >= 0);
  sigma_step_ = sigma_level * std::sqrt(1.0 - rho * rho);
}

double ArCongestionDelay::sample(Xoshiro256& rng) {
  level_ = rho_ * level_ + rng.normal(0.0, sigma_step_);
  const double jitter =
      jitter_sigma_ > 0 ? rng.lognormal(0.0, jitter_sigma_) : 1.0;
  return floor_ + scale_ * std::exp(level_) * jitter;
}

std::unique_ptr<DelayModel> ArCongestionDelay::clone() const {
  return std::make_unique<ArCongestionDelay>(*this);
}

SpikeMixDelay::SpikeMixDelay(std::unique_ptr<DelayModel> base,
                             std::unique_ptr<DelayModel> spike, double spike_prob)
    : base_(std::move(base)), spike_(std::move(spike)), spike_prob_(spike_prob) {
  TWFD_CHECK(base_ && spike_ && spike_prob >= 0.0 && spike_prob <= 1.0);
}
double SpikeMixDelay::sample(Xoshiro256& rng) {
  // Draw the branch first so the base model consumes the same variate
  // stream regardless of the spike probability.
  const bool spike = rng.bernoulli(spike_prob_);
  return spike ? spike_->sample(rng) : base_->sample(rng);
}
std::unique_ptr<DelayModel> SpikeMixDelay::clone() const {
  return std::make_unique<SpikeMixDelay>(base_->clone(), spike_->clone(), spike_prob_);
}

}  // namespace twfd::trace

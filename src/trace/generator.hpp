// Synthetic heartbeat trace generation.
//
// A trace is generated regime-by-regime: each regime has a delay model, a
// loss model and an optional stall process. Stalls model path outages /
// buffer flushes: every message sent while a stall is active is held until
// the stall ends and then delivered (FIFO), which is what produces genuine
// silence gaps at the monitor — i.i.d. delay spikes alone cannot, because
// the following on-time heartbeat would mask them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "trace/delay_model.hpp"
#include "trace/heartbeat.hpp"
#include "trace/loss_model.hpp"

namespace twfd::trace {

/// Outage process: with `prob_per_msg`, a stall of duration uniform in
/// [min_s, max_s] begins at that message's send time.
struct StallSpec {
  double prob_per_msg = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
};

/// One contiguous generation regime ("stable", "burst", "worm", ...).
struct Regime {
  std::string label;
  std::int64_t count = 0;
  std::unique_ptr<DelayModel> delay;
  std::unique_ptr<LossModel> loss;
  StallSpec stall;
};

class TraceGenerator {
 public:
  /// `interval` is the sender's Delta_i; `clock_skew` maps sender to
  /// receiver clock; `seed` makes generation fully deterministic.
  TraceGenerator(std::string name, Tick interval, Tick clock_skew, std::uint64_t seed);

  TraceGenerator& add_regime(Regime regime);

  /// Enforce FIFO delivery (default true): arrivals are clamped to be
  /// strictly increasing, as on a single network path.
  TraceGenerator& set_fifo(bool fifo) {
    fifo_ = fifo;
    return *this;
  }

  /// Runs the generation. Can be called once.
  [[nodiscard]] Trace generate();

  /// Sequence-number range [from_seq, to_seq] of each regime, available
  /// after generate(); drives Table-I style subsample analysis.
  struct Boundary {
    std::string label;
    std::int64_t from_seq = 0;
    std::int64_t to_seq = 0;
  };
  [[nodiscard]] const std::vector<Boundary>& boundaries() const noexcept {
    return boundaries_;
  }

 private:
  std::string name_;
  Tick interval_;
  Tick clock_skew_;
  Xoshiro256 rng_;
  bool fifo_ = true;
  bool generated_ = false;
  std::vector<Regime> regimes_;
  std::vector<Boundary> boundaries_;
};

}  // namespace twfd::trace

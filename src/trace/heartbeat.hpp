// Heartbeat traces.
//
// The paper's entire evaluation replays logged heartbeat arrival times
// through each detector (Section IV-A). A Trace is the log of one
// monitored link: every heartbeat p sent, with its send timestamp (p's
// clock), and either its arrival timestamp (q's clock) or a lost marker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace twfd::trace {

/// One heartbeat as the monitor experienced (or failed to experience) it.
struct HeartbeatRecord {
  /// 1-based sequence number, strictly increasing with send order.
  std::int64_t seq = 0;
  /// Send timestamp on the *sender's* clock.
  Tick send_time = 0;
  /// Arrival timestamp on the *receiver's* clock; kTickInfinity when lost.
  Tick arrival_time = kTickInfinity;
  /// True when the network dropped the message.
  bool lost = false;
};

/// The full heartbeat log of one monitored link, ordered by sequence number.
class Trace {
 public:
  Trace() = default;
  Trace(std::string name, Tick interval, Tick clock_skew = 0)
      : name_(std::move(name)), interval_(interval), clock_skew_(clock_skew) {
    TWFD_CHECK(interval > 0);
  }

  /// Human-readable scenario name ("wan", "lan", ...).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The heartbeat inter-send interval Delta_i the sender used.
  [[nodiscard]] Tick interval() const noexcept { return interval_; }
  /// receiver_clock = sender_clock + skew (known exactly for synthetic
  /// traces; the algorithms never rely on it, but the evaluator uses it to
  /// express send times on the receiver clock when measuring T_D).
  [[nodiscard]] Tick clock_skew() const noexcept { return clock_skew_; }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const HeartbeatRecord& operator[](std::size_t i) const {
    return records_[i];
  }
  [[nodiscard]] const std::vector<HeartbeatRecord>& records() const noexcept {
    return records_;
  }

  void reserve(std::size_t n) { records_.reserve(n); }

  /// Appends a record; seq must exceed the previous record's seq.
  void push(const HeartbeatRecord& r) {
    TWFD_CHECK_MSG(records_.empty() || r.seq > records_.back().seq,
                   "trace seq must be strictly increasing");
    TWFD_CHECK(r.lost == (r.arrival_time == kTickInfinity));
    records_.push_back(r);
  }

  /// Indices of delivered heartbeats sorted by arrival time (the order the
  /// monitor observes them; UDP may reorder). Ties keep sequence order.
  [[nodiscard]] std::vector<std::uint32_t> delivery_order() const;

  /// Sub-trace covering records with seq in [from_seq, to_seq] (inclusive),
  /// used for the Table I subsample analysis.
  [[nodiscard]] Trace slice(std::int64_t from_seq, std::int64_t to_seq) const;

  /// Send time of record i expressed on the receiver's clock.
  [[nodiscard]] Tick send_time_receiver_clock(std::size_t i) const {
    return records_[i].send_time + clock_skew_;
  }

 private:
  std::string name_;
  Tick interval_ = ticks_from_ms(100);
  Tick clock_skew_ = 0;
  std::vector<HeartbeatRecord> records_;
};

}  // namespace twfd::trace

#include "trace/scenario.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace twfd::trace {
namespace {

// Table I boundaries of the paper's 5,845,712-sample WAN trace.
constexpr double kPaperTotal = 5'845'712.0;
constexpr double kStable1End = 2'900'000.0;
constexpr double kBurstEnd = 2'930'000.0;
constexpr double kWormEnd = 4'860'000.0;

// Stable WAN regime: ~50 ms one-way floor plus autocorrelated congestion
// (AR(1) level, ~3 s correlation time at a 100 ms cadence) and per-packet
// jitter, with occasional micro-bursts of loss so that even the stable
// periods produce some mistakes at aggressive detection times, as in the
// paper's Figure 8.
Regime stable_regime(std::string label, std::int64_t count) {
  Regime r;
  r.label = std::move(label);
  r.count = count;
  r.delay = std::make_unique<ArCongestionDelay>(
      /*floor=*/0.050, /*scale=*/0.008, /*rho=*/0.90, /*sigma_level=*/0.55,
      /*jitter_sigma=*/0.15);
  r.loss = std::make_unique<GilbertElliottLoss>(/*p_good_to_bad=*/0.0015,
                                                /*p_bad_to_good=*/0.35,
                                                /*loss_good=*/0.0005,
                                                /*loss_bad=*/0.60);
  r.stall = {/*prob_per_msg=*/2e-5, /*min_s=*/0.15, /*max_s=*/0.9};
  return r;
}

}  // namespace

WanScenario::WanScenario() : WanScenario(Params{}) {}

WanScenario::WanScenario(Params params) : params_(params) {
  TWFD_CHECK(params_.samples >= 1000);
}

Trace WanScenario::build() {
  const auto n = static_cast<double>(params_.samples);
  const auto n_stable1 = static_cast<std::int64_t>(n * (kStable1End / kPaperTotal));
  const auto n_burst =
      static_cast<std::int64_t>(n * ((kBurstEnd - kStable1End) / kPaperTotal));
  const auto n_worm =
      static_cast<std::int64_t>(n * ((kWormEnd - kBurstEnd) / kPaperTotal));
  const std::int64_t n_stable2 = params_.samples - n_stable1 - n_burst - n_worm;

  TraceGenerator gen("wan", params_.interval, params_.clock_skew, params_.seed);

  gen.add_regime(stable_regime("Stable 1", n_stable1));

  // Burst period: correlated loss bursts (mean bad run ~18 heartbeats,
  // i.e. ~1.8 s of silence) plus heavy-tailed delay spikes and frequent
  // short stalls — the regime 2W-FD is designed for (Section III-A).
  {
    Regime r;
    r.label = "Burst";
    r.count = n_burst;
    r.delay = std::make_unique<ParetoDelay>(0.050, 0.012, 1.6);
    r.loss = std::make_unique<GilbertElliottLoss>(/*p_good_to_bad=*/0.05,
                                                  /*p_bad_to_good=*/0.055,
                                                  /*loss_good=*/0.02,
                                                  /*loss_bad=*/0.93);
    r.stall = {/*prob_per_msg=*/0.002, /*min_s=*/0.3, /*max_s=*/2.5};
    gen.add_regime(std::move(r));
  }

  // Worm period: the W32/Netsky outbreak — a long stretch of frequent,
  // rapid-onset congestion bursts (a few seconds each: correlation time
  // ~1 s at the 100 ms cadence) plus elevated correlated loss. Burst
  // durations exceed the heartbeat interval, which is precisely the
  // regime of Section III-A where single-window estimation breaks: the
  // long window cannot follow a burst, and an accrual detector's
  // 1000-sample distribution fit straddles burst and calm.
  {
    Regime r;
    r.label = "Worm";
    r.count = n_worm;
    r.delay = std::make_unique<ArCongestionDelay>(
        /*floor=*/0.055, /*scale=*/0.012, /*rho=*/0.90, /*sigma_level=*/0.6,
        /*jitter_sigma=*/0.15);
    r.loss = std::make_unique<GilbertElliottLoss>(/*p_good_to_bad=*/0.004,
                                                  /*p_bad_to_good=*/0.25,
                                                  /*loss_good=*/0.006,
                                                  /*loss_bad=*/0.30);
    r.stall = {/*prob_per_msg=*/0.003, /*min_s=*/0.15, /*max_s=*/2.0};
    gen.add_regime(std::move(r));
  }

  gen.add_regime(stable_regime("Stable 2", n_stable2));

  Trace t = gen.generate();
  periods_.clear();
  for (const auto& b : gen.boundaries()) {
    periods_.push_back({b.label, b.from_seq, b.to_seq});
  }
  return t;
}

LanScenario::LanScenario() : LanScenario(Params{}) {}

LanScenario::LanScenario(Params params) : params_(params) {
  TWFD_CHECK(params_.samples >= 1000);
}

Trace LanScenario::build() {
  TraceGenerator gen("lan", params_.interval, params_.clock_skew, params_.seed);

  // Published LAN trace statistics: ~100 us average delay, very small
  // variance, zero loss, largest inter-reception gap ~1.5 s (reproduced
  // here by very rare stalls).
  Regime r;
  r.label = "LAN";
  r.count = params_.samples;
  r.delay = std::make_unique<NormalDelay>(100e-6, 12e-6, 40e-6);
  r.loss = std::make_unique<BernoulliLoss>(0.0);
  r.stall = {/*prob_per_msg=*/params_.stall_prob, /*min_s=*/0.8, /*max_s=*/1.5};
  gen.add_regime(std::move(r));

  return gen.generate();
}

}  // namespace twfd::trace

// Trace statistics: the network-behaviour inputs of Chen's configuration
// procedure (Section V-A1: loss probability p_L and delay variance V(D))
// plus descriptive statistics used by the benches and examples.
//
// As the paper notes, V(D) is estimated from the variance of (arrival -
// send) across messages: an unknown constant clock skew shifts every
// sample equally and cancels out of the variance.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "trace/heartbeat.hpp"

namespace twfd::trace {

struct TraceStats {
  std::int64_t sent = 0;        ///< heartbeats the sender emitted
  std::int64_t delivered = 0;   ///< heartbeats the monitor received
  double loss_probability = 0;  ///< p_L estimate
  double delay_mean_s = 0;      ///< mean of (arrival - send) minus skew, s
  double delay_variance_s2 = 0; ///< V(D) estimate, s^2 (skew-invariant)
  double delay_stddev_s = 0;
  double delay_min_s = 0;
  double delay_max_s = 0;
  double interarrival_mean_s = 0;    ///< between consecutive deliveries
  double interarrival_max_s = 0;
  double duration_s = 0;  ///< send-span of the trace
};

/// Computes the statistics above over the whole trace. `skew_known`
/// controls whether delay_mean/min/max are reported skew-corrected (true
/// for synthetic traces) or raw (what a real monitor without synchronised
/// clocks would see).
[[nodiscard]] TraceStats compute_stats(const Trace& trace, bool skew_known = true);

/// Incremental estimator of p_L and V(D) that a live monitor can maintain
/// from the heartbeats it receives, exactly as Section V-A1 prescribes.
class NetworkEstimator {
 public:
  /// Feed one delivered heartbeat: sender timestamp (sender clock) and
  /// arrival (receiver clock).
  void on_heartbeat(std::int64_t seq, Tick send_time, Tick arrival_time);

  /// p_L: missing / highest sequence seen.
  [[nodiscard]] double loss_probability() const noexcept;
  /// V(D) in seconds^2 (skew-invariant).
  [[nodiscard]] double delay_variance_s2() const noexcept;
  [[nodiscard]] std::int64_t highest_seq() const noexcept { return highest_seq_; }
  [[nodiscard]] std::int64_t received() const noexcept { return received_; }

  void reset();

 private:
  std::int64_t highest_seq_ = 0;
  std::int64_t received_ = 0;
  // Welford over (arrival - send) in seconds.
  std::int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace twfd::trace

#include "trace/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace twfd::trace {
namespace {

constexpr char kMagic[8] = {'T', 'W', 'F', 'D', 'T', 'R', 'C', '1'};

void put_u64(std::ostream& os, std::uint64_t v) {
  std::array<unsigned char, 8> b{};
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(b.data()), 8);
}

void put_i64(std::ostream& os, std::int64_t v) {
  put_u64(os, static_cast<std::uint64_t>(v));
}

std::uint64_t get_u64(std::istream& is) {
  std::array<unsigned char, 8> b{};
  is.read(reinterpret_cast<char*>(b.data()), 8);
  if (!is) throw std::runtime_error("trace archive truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::int64_t get_i64(std::istream& is) { return static_cast<std::int64_t>(get_u64(is)); }

}  // namespace

void save_binary(const Trace& trace, std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  put_i64(os, trace.interval());
  put_i64(os, trace.clock_skew());
  put_u64(os, trace.name().size());
  os.write(trace.name().data(), static_cast<std::streamsize>(trace.name().size()));
  put_u64(os, trace.size());
  for (const auto& r : trace.records()) {
    put_i64(os, r.seq);
    put_i64(os, r.send_time);
    put_i64(os, r.lost ? 0 : r.arrival_time);
    os.put(r.lost ? '\1' : '\0');
  }
}

void save_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  save_binary(trace, f);
}

Trace load_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("not a TWFDTRC1 trace archive");
  }
  const Tick interval = get_i64(is);
  const Tick skew = get_i64(is);
  const std::uint64_t name_len = get_u64(is);
  if (name_len > 4096) throw std::runtime_error("trace name too long");
  std::string name(name_len, '\0');
  is.read(name.data(), static_cast<std::streamsize>(name_len));
  const std::uint64_t count = get_u64(is);
  Trace t(name, interval, skew);
  t.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    HeartbeatRecord r;
    r.seq = get_i64(is);
    r.send_time = get_i64(is);
    const std::int64_t arrival = get_i64(is);
    const int lost = is.get();
    if (lost == std::istream::traits_type::eof()) {
      throw std::runtime_error("trace archive truncated");
    }
    r.lost = lost != 0;
    r.arrival_time = r.lost ? kTickInfinity : arrival;
    t.push(r);
  }
  return t;
}

Trace load_binary_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  return load_binary(f);
}

void save_csv(const Trace& trace, std::ostream& os) {
  os << "seq,send_ns,arrival_ns,lost\n";
  for (const auto& r : trace.records()) {
    os << r.seq << ',' << r.send_time << ',';
    if (!r.lost) os << r.arrival_time;
    os << ',' << (r.lost ? 1 : 0) << '\n';
  }
}

Trace load_csv(std::istream& is, std::string name, Tick interval, Tick clock_skew) {
  Trace t(std::move(name), interval, clock_skew);
  std::string line;
  if (!std::getline(is, line)) throw std::runtime_error("empty CSV");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string cell;
    HeartbeatRecord r;
    if (!std::getline(ss, cell, ',')) throw std::runtime_error("bad CSV row");
    r.seq = std::stoll(cell);
    if (!std::getline(ss, cell, ',')) throw std::runtime_error("bad CSV row");
    r.send_time = std::stoll(cell);
    if (!std::getline(ss, cell, ',')) throw std::runtime_error("bad CSV row");
    const bool has_arrival = !cell.empty();
    const std::int64_t arrival = has_arrival ? std::stoll(cell) : 0;
    if (!std::getline(ss, cell, ',')) throw std::runtime_error("bad CSV row");
    r.lost = cell == "1";
    r.arrival_time = r.lost ? kTickInfinity : arrival;
    t.push(r);
  }
  return t;
}

}  // namespace twfd::trace

#include "trace/analysis.hpp"

#include <algorithm>

#include "common/quantile.hpp"

namespace twfd::trace {

GapAnalysis analyze_gaps(const Trace& trace) {
  GapAnalysis out;
  P2Quantile p50(0.5), p90(0.9), p99(0.99), p999(0.999);
  double sum = 0;
  const double nominal = to_seconds(trace.interval());

  Tick prev = kTickNegInfinity;
  for (auto idx : trace.delivery_order()) {
    const Tick a = trace[idx].arrival_time;
    if (prev != kTickNegInfinity) {
      const double gap = to_seconds(a - prev);
      ++out.gaps;
      sum += gap;
      out.max_s = std::max(out.max_s, gap);
      p50.add(gap);
      p90.add(gap);
      p99.add(gap);
      p999.add(gap);
      if (gap > 2 * nominal) ++out.over_2x;
      if (gap > 5 * nominal) ++out.over_5x;
      if (gap > 10 * nominal) ++out.over_10x;
    }
    prev = a;
  }
  if (out.gaps > 0) {
    out.mean_s = sum / static_cast<double>(out.gaps);
    out.p50_s = p50.value();
    out.p90_s = p90.value();
    out.p99_s = p99.value();
    out.p999_s = p999.value();
  }
  return out;
}

LossRunAnalysis analyze_loss_runs(const Trace& trace) {
  LossRunAnalysis out;
  std::size_t current = 0;
  auto close_run = [&] {
    if (current == 0) return;
    ++out.runs;
    ++out.histogram[current];
    out.max_run_length = std::max(out.max_run_length, current);
    current = 0;
  };
  for (const auto& r : trace.records()) {
    if (r.lost) {
      ++out.lost_total;
      ++current;
    } else {
      close_run();
    }
  }
  close_run();
  if (out.runs > 0) {
    out.mean_run_length =
        static_cast<double>(out.lost_total) / static_cast<double>(out.runs);
  }
  return out;
}

}  // namespace twfd::trace

// Message loss models.
//
// Bernoulli gives independent loss (Chen's p_L assumption); Gilbert-Elliott
// gives the correlated bursts that motivate 2W-FD (Section III-A: bursts
// whose duration exceeds the heartbeat interval break Chen's adaptation).
#pragma once

#include <memory>

#include "common/rng.hpp"

namespace twfd::trace {

/// Decides, per message in send order, whether the network drops it.
class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True if the next message is lost. Called once per message, in order.
  virtual bool lost(Xoshiro256& rng) = 0;
  [[nodiscard]] virtual std::unique_ptr<LossModel> clone() const = 0;
};

/// Independent loss with probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  bool lost(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<LossModel> clone() const override;

 private:
  double p_;
};

/// Two-state Markov (Gilbert-Elliott) loss: a Good state with loss
/// probability `loss_good` and a Bad state with `loss_bad`; transitions
/// happen per message with probabilities `p_good_to_bad` / `p_bad_to_good`.
/// Expected bad-burst length in messages is 1 / p_bad_to_good.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good, double loss_good,
                     double loss_bad);
  bool lost(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<LossModel> clone() const override;

  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

}  // namespace twfd::trace

// Deterministic discrete-event network simulator.
//
// A SimWorld owns virtual global time and an event queue; SimEndpoints are
// processes with their own (skewed, drifting) local clocks, datagram
// transports and timer services — the exact Runtime interfaces the live
// UDP event loop provides, so service components run unchanged here.
// Unidirectional links carry the same delay/loss models as the trace
// generator. Everything is seeded, so runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/runtime.hpp"
#include "common/time.hpp"
#include "net/timer_wheel.hpp"
#include "trace/delay_model.hpp"
#include "trace/loss_model.hpp"

namespace twfd::sim {

class SimWorld;

/// A simulated process: local clock (skew + drift), transport, timers.
class SimEndpoint final : public Clock, public Transport, public TimerService {
 public:
  // Clock: local = skew + global * (1 + drift).
  [[nodiscard]] Tick now() const override;

  // Transport.
  void send(PeerId to, std::span<const std::byte> data) override;
  void set_receive_handler(ReceiveHandler handler) override;

  // TimerService (local-clock deadlines).
  TimerId schedule_at(Tick when, std::function<void()> fn) override;
  void cancel(TimerId id) override;
  bool reschedule(TimerId id, Tick when) override;

  [[nodiscard]] PeerId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Runtime runtime() noexcept { return {this, this, this}; }

  /// Global-time equivalent of a local-clock instant.
  [[nodiscard]] Tick to_global(Tick local) const;

 private:
  friend class SimWorld;
  SimEndpoint(SimWorld* world, PeerId id, std::string name, Tick skew, double drift);

  SimWorld* world_;
  PeerId id_;
  std::string name_;
  Tick skew_;
  double drift_;
  ReceiveHandler on_receive_;
};

/// Link properties from one endpoint to another.
struct LinkParams {
  std::unique_ptr<trace::DelayModel> delay;
  std::unique_ptr<trace::LossModel> loss;
  /// Clamp deliveries to FIFO order (single network path).
  bool fifo = true;
  /// Bottleneck bandwidth in bytes/second (0 = infinite). Each datagram
  /// occupies the link for size/bandwidth; queued datagrams wait behind
  /// it, which produces naturally *correlated* delays under load — the
  /// congestion mechanism behind Section III-A's bursty traffic.
  double bandwidth_bytes_per_s = 0.0;
};

/// Convenience: symmetric low-jitter link.
[[nodiscard]] LinkParams lan_link();
/// Convenience: lossy, jittery WAN-ish link.
[[nodiscard]] LinkParams wan_link();

class SimWorld {
 public:
  explicit SimWorld(std::uint64_t seed = 1);
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  /// Creates a process. `skew` and `drift` shape its local clock.
  SimEndpoint& add_endpoint(std::string name, Tick skew = 0, double drift = 0.0);

  /// Installs the unidirectional link from -> to (replacing any previous).
  void connect(const SimEndpoint& from, const SimEndpoint& to, LinkParams params);

  /// Symmetric convenience: installs a->b and b->a with cloned models.
  void connect_both(const SimEndpoint& a, const SimEndpoint& b,
                    const LinkParams& prototype);

  /// Removes the unidirectional link from -> to; subsequent sends are
  /// dropped (models a network partition). No-op if absent.
  void disconnect(const SimEndpoint& from, const SimEndpoint& to);
  /// Removes both directions.
  void disconnect_both(const SimEndpoint& a, const SimEndpoint& b);

  /// Global virtual time.
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Processes the next event (earliest of pending timers and network
  /// deliveries; timers win exact ties); false when nothing remains.
  bool step();

  /// Runs events with timestamp <= `global_deadline`, then advances the
  /// clock to the deadline.
  void run_until(Tick global_deadline);

  /// Runs until the queue drains or `max_events` were processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Pending work: queued network deliveries plus armed timers.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size() + wheel_.size();
  }

  /// Total datagrams handed to links / delivered (for load accounting).
  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_delivered() const noexcept {
    return delivered_;
  }

  /// Timer-lifecycle accounting, mirroring net::EventLoop::stats().timers
  /// so live and replay runs are comparable on the same counters.
  [[nodiscard]] const TimerStats& timer_stats() const noexcept {
    return timer_stats_;
  }
  /// Timers scheduled but not yet fired or cancelled.
  [[nodiscard]] std::size_t live_timer_count() const noexcept {
    return wheel_.size();
  }

 private:
  friend class SimEndpoint;

  // Network deliveries only — timers live in the wheel.
  struct Event {
    Tick at;
    std::uint64_t order;  // FIFO tiebreak for equal timestamps
    std::function<void()> fn;
  };
  struct EventCmp {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.order > b.order;
    }
  };
  struct Link {
    LinkParams params;
    Tick last_delivery = kTickNegInfinity;
    Tick busy_until = kTickNegInfinity;  // bottleneck queue head
  };

  void post(Tick at_global, std::function<void()> fn);
  void dispatch_send(PeerId from, PeerId to, std::vector<std::byte> data);
  TimerId schedule_local(SimEndpoint& ep, Tick local_when, std::function<void()> fn);
  void cancel_timer(TimerId id);
  bool reschedule_timer(SimEndpoint& ep, TimerId id, Tick local_when);

  Tick now_ = 0;
  std::uint64_t order_counter_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCmp> queue_;
  std::vector<std::unique_ptr<SimEndpoint>> endpoints_;
  std::map<std::pair<PeerId, PeerId>, Link> links_;
  TimerStats timer_stats_;
  // Timers share net::TimerWheel with the socket loop — identical
  // placement, fire order and counters, which is what keeps sim and live
  // runs step-for-step comparable. Declared after timer_stats_.
  net::TimerWheel wheel_{0, &timer_stats_};
  Xoshiro256 rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace twfd::sim

#include "sim/sim_world.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace twfd::sim {

// ---------------------------------------------------------------------------
// SimEndpoint
// ---------------------------------------------------------------------------

SimEndpoint::SimEndpoint(SimWorld* world, PeerId id, std::string name, Tick skew,
                         double drift)
    : world_(world), id_(id), name_(std::move(name)), skew_(skew), drift_(drift) {
  TWFD_CHECK_MSG(drift > -0.5 && drift < 0.5, "unphysical clock drift");
}

Tick SimEndpoint::now() const {
  const double local =
      static_cast<double>(skew_) + static_cast<double>(world_->now()) * (1.0 + drift_);
  return static_cast<Tick>(local);
}

Tick SimEndpoint::to_global(Tick local) const {
  const double g = (static_cast<double>(local) - static_cast<double>(skew_)) /
                   (1.0 + drift_);
  return static_cast<Tick>(g);
}

void SimEndpoint::send(PeerId to, std::span<const std::byte> data) {
  world_->dispatch_send(id_, to, std::vector<std::byte>(data.begin(), data.end()));
}

void SimEndpoint::set_receive_handler(ReceiveHandler handler) {
  on_receive_ = std::move(handler);
}

TimerId SimEndpoint::schedule_at(Tick when, std::function<void()> fn) {
  return world_->schedule_local(*this, when, std::move(fn));
}

void SimEndpoint::cancel(TimerId id) { world_->cancel_timer(id); }

bool SimEndpoint::reschedule(TimerId id, Tick when) {
  return world_->reschedule_timer(*this, id, when);
}

// ---------------------------------------------------------------------------
// Link prototypes
// ---------------------------------------------------------------------------

LinkParams lan_link() {
  LinkParams p;
  p.delay = std::make_unique<trace::NormalDelay>(100e-6, 12e-6, 40e-6);
  p.loss = std::make_unique<trace::BernoulliLoss>(0.0);
  return p;
}

LinkParams wan_link() {
  LinkParams p;
  p.delay = std::make_unique<trace::LogNormalDelay>(0.050, std::log(0.008), 0.45);
  p.loss = std::make_unique<trace::BernoulliLoss>(0.01);
  return p;
}

// ---------------------------------------------------------------------------
// SimWorld
// ---------------------------------------------------------------------------

SimWorld::SimWorld(std::uint64_t seed) : rng_(seed) {}
SimWorld::~SimWorld() = default;

SimEndpoint& SimWorld::add_endpoint(std::string name, Tick skew, double drift) {
  const PeerId id = endpoints_.size() + 1;
  endpoints_.emplace_back(
      new SimEndpoint(this, id, std::move(name), skew, drift));
  return *endpoints_.back();
}

void SimWorld::connect(const SimEndpoint& from, const SimEndpoint& to,
                       LinkParams params) {
  TWFD_CHECK(params.delay && params.loss);
  links_[{from.id(), to.id()}] = Link{std::move(params), kTickNegInfinity};
}

void SimWorld::connect_both(const SimEndpoint& a, const SimEndpoint& b,
                            const LinkParams& prototype) {
  LinkParams ab{prototype.delay->clone(), prototype.loss->clone(), prototype.fifo,
                prototype.bandwidth_bytes_per_s};
  LinkParams ba{prototype.delay->clone(), prototype.loss->clone(), prototype.fifo,
                prototype.bandwidth_bytes_per_s};
  connect(a, b, std::move(ab));
  connect(b, a, std::move(ba));
}

void SimWorld::disconnect(const SimEndpoint& from, const SimEndpoint& to) {
  links_.erase({from.id(), to.id()});
}

void SimWorld::disconnect_both(const SimEndpoint& a, const SimEndpoint& b) {
  disconnect(a, b);
  disconnect(b, a);
}

void SimWorld::post(Tick at_global, std::function<void()> fn) {
  TWFD_CHECK_MSG(at_global >= now_, "event scheduled in the past");
  queue_.push(Event{at_global, order_counter_++, std::move(fn)});
}

void SimWorld::dispatch_send(PeerId from, PeerId to, std::vector<std::byte> data) {
  ++sent_;
  const auto it = links_.find({from, to});
  if (it == links_.end()) return;  // unroutable: silently dropped, like UDP
  Link& link = it->second;
  if (link.params.loss->lost(rng_)) return;

  // Bottleneck queueing: the datagram first waits for the link, holds it
  // for its serialization time, then experiences the path delay.
  Tick depart = now_;
  if (link.params.bandwidth_bytes_per_s > 0.0) {
    const double ser_s =
        static_cast<double>(data.size()) / link.params.bandwidth_bytes_per_s;
    depart = std::max(now_, link.busy_until) + ticks_from_seconds(ser_s);
    link.busy_until = depart;
  }
  Tick arrival = depart + ticks_from_seconds(link.params.delay->sample(rng_));
  if (link.params.fifo && arrival <= link.last_delivery) {
    arrival = link.last_delivery + ticks_from_us(1);
  }
  link.last_delivery = arrival;

  TWFD_CHECK(to >= 1 && to <= endpoints_.size());
  SimEndpoint* dest = endpoints_[to - 1].get();
  post(arrival, [this, dest, from, payload = std::move(data)]() {
    ++delivered_;
    if (dest->on_receive_) {
      // Arrival = delivery instant on the destination's local clock,
      // matching the live runtime's "stamp at RX" semantics.
      dest->on_receive_(from, std::span<const std::byte>(payload),
                        dest->now());
    }
  });
}

TimerId SimWorld::schedule_local(SimEndpoint& ep, Tick local_when,
                                 std::function<void()> fn) {
  // Clamp to "no earlier than now": a local deadline already in the past
  // (drift, or the caller passing now()) fires on the next step, never
  // rewinds virtual time.
  const Tick global_when = std::max(now_, ep.to_global(local_when));
  return wheel_.schedule(global_when, InlineFunction(std::move(fn)));
}

void SimWorld::cancel_timer(TimerId id) { wheel_.cancel(id); }

bool SimWorld::reschedule_timer(SimEndpoint& ep, TimerId id, Tick local_when) {
  const Tick global_when = std::max(now_, ep.to_global(local_when));
  return wheel_.reschedule(id, global_when);
}

bool SimWorld::step() {
  const Tick timer_at = wheel_.next_deadline();
  const Tick event_at = queue_.empty() ? kTickInfinity : queue_.top().at;
  if (timer_at == kTickInfinity && event_at == kTickInfinity) return false;

  if (timer_at <= event_at && timer_at != kTickInfinity) {
    // Timers win exact timer-vs-delivery ties; among equal-deadline
    // timers the wheel fires in schedule FIFO order — the same total
    // order the old unified queue produced for timer events.
    now_ = std::max(now_, timer_at);
    wheel_.advance_to(now_);
    InlineFunction fn;
    const bool popped = wheel_.pop_due(fn);
    TWFD_CHECK_MSG(popped, "next_deadline promised a due timer");
    fn();
    return true;
  }

  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  auto& top = const_cast<Event&>(queue_.top());
  const Tick at = top.at;
  auto fn = std::move(top.fn);
  queue_.pop();
  TWFD_CHECK(at >= now_);
  now_ = at;
  fn();
  return true;
}

void SimWorld::run_until(Tick global_deadline) {
  for (;;) {
    const Tick timer_at = wheel_.next_deadline();
    const Tick event_at = queue_.empty() ? kTickInfinity : queue_.top().at;
    const Tick next = std::min(timer_at, event_at);
    if (next == kTickInfinity || next > global_deadline) break;
    step();
  }
  now_ = std::max(now_, global_deadline);
}

std::size_t SimWorld::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace twfd::sim
